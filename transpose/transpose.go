// Package transpose implements an out-of-core matrix transpose on the
// simulated cluster, built on a single linear FG pipeline per node. The
// paper closes by suggesting that FG's machinery "would be suitable for the
// design of out-of-core algorithms other than sorting" (Section VIII);
// transposition — the permutation at the heart of columnsort's even steps,
// out-of-core FFTs, and relational pivots — is the classic example.
//
// The R x C element matrix is stored row-major with each node holding a
// contiguous band of R/P rows; the transposed C x R matrix is produced in
// the same layout (node i holds transposed rows [i*C/P, (i+1)*C/P)). Each
// pipeline round reads a tile of rows, rearranges it so each destination
// node's elements are contiguous in column-major order, exchanges tiles
// with an all-to-all, and writes the received columns — a read, permute,
// communicate, write pipeline whose structure mirrors a csort pass, with
// perfectly balanced, predetermined communication.
package transpose

import (
	"fmt"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/records"
)

// Spec describes one transpose job.
type Spec struct {
	// Format is the element layout (elements are records; the key is the
	// payload that moves).
	Format records.Format
	// Rows and Cols give the input matrix shape.
	Rows, Cols int
	// BandRows is the tile height each pipeline round processes. It must
	// divide each node's band of Rows/P rows.
	BandRows int
	// InputName and OutputName are the per-disk file names.
	InputName, OutputName string
}

// DefaultSpec returns a small square job.
func DefaultSpec() Spec {
	return Spec{
		Format:     records.NewFormat(records.MinRecordSize),
		Rows:       512,
		Cols:       512,
		BandRows:   32,
		InputName:  "matrix",
		OutputName: "matrix.T",
	}
}

// Validate checks the spec against a cluster of p nodes.
func (s Spec) Validate(p int) error {
	if s.Rows <= 0 || s.Cols <= 0 {
		return fmt.Errorf("transpose: non-positive shape %dx%d", s.Rows, s.Cols)
	}
	if p <= 0 {
		return fmt.Errorf("transpose: non-positive node count %d", p)
	}
	if s.Rows%p != 0 || s.Cols%p != 0 {
		return fmt.Errorf("transpose: %dx%d does not divide among %d nodes", s.Rows, s.Cols, p)
	}
	if s.BandRows <= 0 || (s.Rows/p)%s.BandRows != 0 {
		return fmt.Errorf("transpose: band of %d rows does not divide the per-node %d rows",
			s.BandRows, s.Rows/p)
	}
	if s.InputName == "" || s.OutputName == "" || s.InputName == s.OutputName {
		return fmt.Errorf("transpose: input %q and output %q must be distinct non-empty names",
			s.InputName, s.OutputName)
	}
	return nil
}

// Generate fills every node's input band with fill(row, col) as each
// element's key. Generation bypasses simulated disk cost (setup, not
// computation).
func Generate(c *cluster.Cluster, s Spec, fill func(row, col int) uint64) error {
	if err := s.Validate(c.P()); err != nil {
		return err
	}
	size := s.Format.Size
	rowsPerNode := s.Rows / c.P()
	return c.Run(func(n *cluster.Node) error {
		data := make([]byte, rowsPerNode*s.Cols*size)
		base := n.Rank() * rowsPerNode
		for r := 0; r < rowsPerNode; r++ {
			for col := 0; col < s.Cols; col++ {
				s.Format.SetKey(s.Format.At(data, r*s.Cols+col), fill(base+r, col))
			}
		}
		n.Disk.Import(s.InputName, data)
		return nil
	})
}

// Run transposes the matrix on one node; call it from every node inside
// cluster.Run.
func Run(n *cluster.Node, s Spec) error {
	if err := s.Validate(n.P()); err != nil {
		return err
	}
	f := s.Format
	size := f.Size
	p, rank := n.P(), n.Rank()
	colsPerNode := s.Cols / p
	rowsPerNode := s.Rows / p
	band := s.BandRows
	rounds := rowsPerNode / band
	bandBytes := band * s.Cols * size
	pieceBytes := band * colsPerNode * size // what each node exchanges with each peer per round
	comm := n.Comm("transpose")

	nw := fg.NewNetwork(fmt.Sprintf("transpose@%d", rank))
	nw.OnFail(func(error) { n.Cluster().Abort() })
	pipe := nw.AddPipeline("main",
		fg.Buffers(4), fg.BufferBytes(bandBytes), fg.Rounds(rounds))

	pipe.AddStage("read", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.N = bandBytes
		return n.Disk.ReadAt(s.InputName, b.Data[:bandBytes], int64(b.Round)*int64(bandBytes))
	})
	pipe.AddStage("permute", func(ctx *fg.Ctx, b *fg.Buffer) error {
		// Rearrange the band so each destination node's elements are
		// contiguous and column-major: receiver writes become one
		// contiguous run per transposed row.
		aux := b.Aux()
		o := 0
		for d := 0; d < p; d++ {
			for c := d * colsPerNode; c < (d+1)*colsPerNode; c++ {
				for r := 0; r < band; r++ {
					copy(aux[o:], b.Data[(r*s.Cols+c)*size:(r*s.Cols+c+1)*size])
					o += size
				}
			}
		}
		b.SwapAux()
		return nil
	})
	pipe.AddStage("communicate", func(ctx *fg.Ctx, b *fg.Buffer) error {
		parts := make([][]byte, p)
		for d := 0; d < p; d++ {
			parts[d] = b.Data[d*pieceBytes : (d+1)*pieceBytes]
		}
		recv := comm.Alltoall(parts)
		o := 0
		for src := 0; src < p; src++ {
			if len(recv[src]) != pieceBytes {
				return fmt.Errorf("unbalanced transpose exchange: %d bytes from node %d, want %d",
					len(recv[src]), src, pieceBytes)
			}
			o += copy(b.Data[o:], recv[src])
		}
		b.N = o
		return nil
	})
	pipe.AddStage("write", func(ctx *fg.Ctx, b *fg.Buffer) error {
		// From src node, this round carries band-row elements of each of my
		// transposed rows, already contiguous: one write per (src, local
		// transposed row).
		runBytes := band * size
		for src := 0; src < p; src++ {
			srcRowBase := src*rowsPerNode + b.Round*band
			for lc := 0; lc < colsPerNode; lc++ {
				off := int64(lc)*int64(s.Rows*size) + int64(srcRowBase*size)
				from := src*pieceBytes + lc*runBytes
				if err := n.Disk.WriteAt(s.OutputName, b.Data[from:from+runBytes], off); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return nw.Run()
}

// Verify checks the transposed output against fill: element (t, r) of the
// output must equal fill(r, t). It reads the disks outside the simulation's
// cost model.
func Verify(c *cluster.Cluster, s Spec, fill func(row, col int) uint64) error {
	if err := s.Validate(c.P()); err != nil {
		return err
	}
	size := s.Format.Size
	colsPerNode := s.Cols / c.P()
	for rank, d := range c.Disks() {
		data := d.Export(s.OutputName)
		if len(data) != colsPerNode*s.Rows*size {
			return fmt.Errorf("transpose: node %d output holds %d bytes, want %d",
				rank, len(data), colsPerNode*s.Rows*size)
		}
		base := rank * colsPerNode
		for lt := 0; lt < colsPerNode; lt++ {
			for r := 0; r < s.Rows; r++ {
				got := s.Format.KeyAt(data, lt*s.Rows+r)
				if want := fill(r, base+lt); got != want {
					return fmt.Errorf("transpose: element (%d,%d) = %#x, want %#x",
						base+lt, r, got, want)
				}
			}
		}
	}
	return nil
}
