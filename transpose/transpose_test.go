package transpose

import (
	"testing"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/records"
)

// fill gives every element a unique, position-derived key.
func fill(row, col int) uint64 {
	return uint64(row)<<20 | uint64(col)
}

func runTranspose(t *testing.T, s Spec, p int) {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: p})
	if err := Generate(c, s, fill); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(n *cluster.Node) error { return Run(n, s) })
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(c, s, fill); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeSquare(t *testing.T) {
	s := DefaultSpec()
	s.Rows, s.Cols, s.BandRows = 128, 128, 16
	runTranspose(t, s, 4)
}

func TestTransposeRectangular(t *testing.T) {
	s := DefaultSpec()
	s.Rows, s.Cols, s.BandRows = 256, 64, 8
	runTranspose(t, s, 4)

	s.Rows, s.Cols, s.BandRows = 64, 256, 16
	runTranspose(t, s, 4)
}

func TestTransposeSingleNode(t *testing.T) {
	s := DefaultSpec()
	s.Rows, s.Cols, s.BandRows = 64, 64, 64
	runTranspose(t, s, 1)
}

func TestTransposeLargeElements(t *testing.T) {
	s := DefaultSpec()
	s.Format = records.NewFormat(64)
	s.Rows, s.Cols, s.BandRows = 64, 64, 8
	runTranspose(t, s, 4)
}

func TestTransposeSingleRound(t *testing.T) {
	// BandRows equal to the whole per-node band: one round.
	s := DefaultSpec()
	s.Rows, s.Cols, s.BandRows = 64, 128, 16
	runTranspose(t, s, 4)
}

func TestTransposeManyNodes(t *testing.T) {
	s := DefaultSpec()
	s.Rows, s.Cols, s.BandRows = 256, 256, 8
	runTranspose(t, s, 8)
}

func TestValidateRejections(t *testing.T) {
	base := DefaultSpec()
	cases := []struct {
		name string
		mut  func(*Spec)
		p    int
	}{
		{"zero rows", func(s *Spec) { s.Rows = 0 }, 4},
		{"rows not divisible", func(s *Spec) { s.Rows = 513 }, 4},
		{"cols not divisible", func(s *Spec) { s.Cols = 514 }, 4},
		{"band too big", func(s *Spec) { s.BandRows = 512 }, 4},
		{"band not dividing", func(s *Spec) { s.BandRows = 48 }, 4},
		{"zero nodes", func(s *Spec) {}, 0},
		{"name clash", func(s *Spec) { s.OutputName = s.InputName }, 4},
	}
	for _, c := range cases {
		s := base
		c.mut(&s)
		if err := s.Validate(c.p); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	s := DefaultSpec()
	s.Rows, s.Cols, s.BandRows = 64, 64, 16
	c := cluster.New(cluster.Config{Nodes: 4})
	if err := Generate(c, s, fill); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(n *cluster.Node) error { return Run(n, s) }); err != nil {
		t.Fatal(err)
	}
	d := c.Node(2).Disk
	data := d.Export(s.OutputName)
	data[17] ^= 0xff
	d.Import(s.OutputName, data)
	if err := Verify(c, s, fill); err == nil {
		t.Fatal("corrupted transpose accepted")
	}
}

func TestDoubleTransposeIsIdentity(t *testing.T) {
	// Transpose twice: the second output must equal the original input.
	s := DefaultSpec()
	s.Rows, s.Cols, s.BandRows = 128, 64, 16
	c := cluster.New(cluster.Config{Nodes: 4})
	if err := Generate(c, s, fill); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(n *cluster.Node) error { return Run(n, s) }); err != nil {
		t.Fatal(err)
	}
	back := Spec{
		Format: s.Format, Rows: s.Cols, Cols: s.Rows, BandRows: 16,
		InputName: s.OutputName, OutputName: "matrix.TT",
	}
	if err := c.Run(func(n *cluster.Node) error { return Run(n, back) }); err != nil {
		t.Fatal(err)
	}
	// Verify matrix.TT as a transpose of the transpose: element (r, c) of
	// it must be fill(r, c).
	if err := Verify(c, back, func(row, col int) uint64 { return fill(col, row) }); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeBalancedIO(t *testing.T) {
	// Every node reads and writes exactly its share.
	s := DefaultSpec()
	s.Rows, s.Cols, s.BandRows = 128, 128, 16
	c := cluster.New(cluster.Config{Nodes: 4})
	if err := Generate(c, s, fill); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(n *cluster.Node) error { return Run(n, s) }); err != nil {
		t.Fatal(err)
	}
	share := int64(s.Rows / 4 * s.Cols * s.Format.Size)
	for rank, d := range c.Disks() {
		st := d.Stats()
		if st.BytesRead != share || st.BytesWritten != share {
			t.Errorf("node %d moved read=%d write=%d bytes, want %d each",
				rank, st.BytesRead, st.BytesWritten, share)
		}
	}
}
