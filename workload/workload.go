// Package workload generates record inputs with the key distributions used
// in the paper's evaluation (Section VI): uniform random, all keys equal,
// standard normal, and Poisson with lambda = 1. It also provides adversarial
// distributions designed to elicit highly unbalanced communication in pass 1
// of dsort, matching the skew experiment the paper mentions but does not
// detail.
//
// Generation is deterministic given a seed, and per-node streams are
// independent (node rank is folded into the stream seed), so a cluster can
// generate its input in parallel and the result does not depend on the
// number of generating goroutines.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/fg-go/fg/records"
)

// Distribution identifies a key distribution.
type Distribution int

const (
	// Uniform draws keys uniformly from the full 64-bit range.
	Uniform Distribution = iota
	// AllEqual gives every record the same key.
	AllEqual
	// StdNormal draws keys from a standard normal distribution, mapped to
	// uint64 by the order-preserving float encoding.
	StdNormal
	// Poisson draws keys from a Poisson distribution with lambda = 1;
	// nearly all mass falls on a handful of small integers, producing
	// massive duplication.
	Poisson
	// SkewOneNode is adversarial: almost every key falls in a narrow range,
	// so in dsort nearly all records stream toward one node in pass 1.
	SkewOneNode
	// SkewZipf is adversarial: key popularity follows a Zipf-like law, so a
	// few nodes receive far more than the average volume in pass 1.
	SkewZipf
)

// Distributions lists the four distributions evaluated in Figure 8, in the
// order the paper presents them.
var Distributions = []Distribution{Uniform, AllEqual, StdNormal, Poisson}

// SkewDistributions lists the adversarial distributions for the unbalanced
// communication experiment.
var SkewDistributions = []Distribution{SkewOneNode, SkewZipf}

// String returns the distribution's display name as used in the paper.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform random"
	case AllEqual:
		return "all equal"
	case StdNormal:
		return "std normal"
	case Poisson:
		return "poisson"
	case SkewOneNode:
		return "skew one-node"
	case SkewZipf:
		return "skew zipf"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution maps a command-line name to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "allequal", "all-equal":
		return AllEqual, nil
	case "normal", "stdnormal", "std-normal":
		return StdNormal, nil
	case "poisson":
		return Poisson, nil
	case "skew-one-node", "skewonenode":
		return SkewOneNode, nil
	case "skew-zipf", "skewzipf":
		return SkewZipf, nil
	default:
		return 0, fmt.Errorf("workload: unknown distribution %q", s)
	}
}

// A Generator produces the record stream for one node of the cluster.
type Generator struct {
	format records.Format
	dist   Distribution
	node   uint32
	seq    uint64
	rng    *rand.Rand
	zipf   *rand.Zipf
}

// NewGenerator returns a generator for the given node's share of an input.
// Streams for different (seed, node) pairs are independent.
func NewGenerator(f records.Format, d Distribution, seed int64, node uint32) *Generator {
	streamSeed := seed*0x5deece66d + int64(node)*0x2545f4914f6cdd1d + 1
	rng := rand.New(rand.NewSource(streamSeed))
	g := &Generator{format: f, dist: d, node: node, rng: rng}
	if d == SkewZipf {
		// s=1.5, v=1 over a modest universe of distinct keys: the head key
		// alone draws a large constant fraction of all records.
		g.zipf = rand.NewZipf(rng, 1.5, 1, 1<<20)
	}
	return g
}

// Node returns the node rank this generator produces records for.
func (g *Generator) Node() uint32 { return g.node }

// Seq returns the sequence number the next generated record will carry.
func (g *Generator) Seq() uint64 { return g.seq }

// NextKey draws the next key from the distribution.
func (g *Generator) NextKey() uint64 {
	switch g.dist {
	case Uniform:
		return g.rng.Uint64()
	case AllEqual:
		return 0x4242424242424242
	case StdNormal:
		return records.FloatKey(g.rng.NormFloat64())
	case Poisson:
		return poissonSample(g.rng, 1.0)
	case SkewOneNode:
		// 95% of keys land in a sliver that is far narrower than 1/P of the
		// key space for any practical P; the rest are uniform so splitters
		// still exist.
		if g.rng.Float64() < 0.95 {
			const base = uint64(1) << 62
			return base + uint64(g.rng.Intn(1<<16))
		}
		return g.rng.Uint64()
	case SkewZipf:
		return g.zipf.Uint64()
	default:
		panic(fmt.Sprintf("workload: invalid distribution %d", int(g.dist)))
	}
}

// Fill writes complete records into buf, which must hold a whole number of
// records. Each record gets a fresh key; if the format carries identifiers,
// each record is stamped with its origin (node, seq). Fill returns the
// number of records written.
func (g *Generator) Fill(buf []byte) int {
	n := g.format.Count(len(buf))
	for i := 0; i < n; i++ {
		rec := g.format.At(buf, i)
		g.format.SetKey(rec, g.NextKey())
		if g.format.HasID() {
			g.format.StampID(rec, records.MakeID(g.node, g.seq))
		}
		fillPayload(rec[records.KeySize:], g.node, g.seq)
		g.seq++
	}
	return n
}

// fillPayload deterministically fills payload bytes beyond the identifier
// slot, so larger records carry non-trivial content.
func fillPayload(p []byte, node uint32, seq uint64) {
	start := 0
	if len(p) >= 8 {
		start = 8 // identifier slot, stamped separately
	}
	x := uint64(node)*0x9e3779b97f4a7c15 + seq
	for i := start; i < len(p); i++ {
		x = x*6364136223846793005 + 1442695040888963407
		p[i] = byte(x >> 56)
	}
}

// poissonSample draws from Poisson(lambda) by Knuth's product-of-uniforms
// method, which is exact and fast for small lambda.
func poissonSample(rng *rand.Rand, lambda float64) uint64 {
	limit := math.Exp(-lambda)
	var k uint64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}
