package workload

import (
	"math"
	"testing"

	"github.com/fg-go/fg/records"
)

func genKeys(t *testing.T, d Distribution, n int) []uint64 {
	t.Helper()
	g := NewGenerator(records.NewFormat(16), d, 1, 0)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = g.NextKey()
	}
	return keys
}

func TestUniformSpread(t *testing.T) {
	keys := genKeys(t, Uniform, 10000)
	// Bucket the top 3 bits; each of the 8 buckets should get roughly 1/8.
	var buckets [8]int
	for _, k := range keys {
		buckets[k>>61]++
	}
	for b, c := range buckets {
		if c < 1000 || c > 1600 {
			t.Errorf("bucket %d holds %d of 10000 uniform keys; expected ~1250", b, c)
		}
	}
}

func TestAllEqual(t *testing.T) {
	keys := genKeys(t, AllEqual, 1000)
	for _, k := range keys {
		if k != keys[0] {
			t.Fatal("AllEqual produced differing keys")
		}
	}
}

func TestStdNormalShape(t *testing.T) {
	keys := genKeys(t, StdNormal, 20000)
	var sum, sumSq float64
	for _, k := range keys {
		x := records.KeyFloat(k)
		sum += x
		sumSq += x * x
	}
	n := float64(len(keys))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal sample mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal sample variance = %f, want ~1", variance)
	}
}

func TestPoissonShape(t *testing.T) {
	keys := genKeys(t, Poisson, 20000)
	var sum float64
	small := 0
	for _, k := range keys {
		sum += float64(k)
		if k <= 4 {
			small++
		}
	}
	mean := sum / float64(len(keys))
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("poisson sample mean = %f, want ~1 (lambda)", mean)
	}
	if frac := float64(small) / float64(len(keys)); frac < 0.99 {
		t.Errorf("only %.3f of Poisson(1) keys are <= 4; expected nearly all", frac)
	}
}

func TestSkewOneNodeConcentration(t *testing.T) {
	keys := genKeys(t, SkewOneNode, 10000)
	const base = uint64(1) << 62
	in := 0
	for _, k := range keys {
		if k >= base && k < base+1<<16 {
			in++
		}
	}
	if frac := float64(in) / float64(len(keys)); frac < 0.9 {
		t.Errorf("only %.3f of skew-one-node keys fall in the hot sliver", frac)
	}
}

func TestSkewZipfHeadHeavy(t *testing.T) {
	keys := genKeys(t, SkewZipf, 10000)
	counts := map[uint64]int{}
	for _, k := range keys {
		counts[k]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / float64(len(keys)); frac < 0.2 {
		t.Errorf("most popular zipf key has only %.3f of mass; expected a heavy head", frac)
	}
}

func TestDeterminism(t *testing.T) {
	for _, d := range append(append([]Distribution{}, Distributions...), SkewDistributions...) {
		a := genKeys(t, d, 100)
		b := genKeys(t, d, 100)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%v: generation is not deterministic at index %d", d, i)
				break
			}
		}
	}
}

func TestNodeStreamsDiffer(t *testing.T) {
	f := records.NewFormat(16)
	g0 := NewGenerator(f, Uniform, 1, 0)
	g1 := NewGenerator(f, Uniform, 1, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if g0.NextKey() == g1.NextKey() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("node streams coincide on %d of 100 draws", same)
	}
}

func TestFillStampsProvenance(t *testing.T) {
	f := records.NewFormat(16)
	g := NewGenerator(f, Uniform, 1, 5)
	buf := make([]byte, f.Bytes(10))
	if n := g.Fill(buf); n != 10 {
		t.Fatalf("Fill returned %d, want 10", n)
	}
	for i := 0; i < 10; i++ {
		node, seq := records.SplitID(f.IDAt(buf, i))
		if node != 5 || seq != uint64(i) {
			t.Errorf("record %d stamped (%d, %d), want (5, %d)", i, node, seq, i)
		}
	}
	if g.Seq() != 10 {
		t.Errorf("Seq() = %d after 10 records", g.Seq())
	}
	// A second Fill continues the sequence.
	g.Fill(buf)
	if node, seq := records.SplitID(f.IDAt(buf, 0)); node != 5 || seq != 10 {
		t.Errorf("second Fill starts at (%d, %d), want (5, 10)", node, seq)
	}
}

func TestFillLargeRecordPayloadNontrivial(t *testing.T) {
	f := records.NewFormat(64)
	g := NewGenerator(f, Uniform, 1, 0)
	buf := make([]byte, f.Bytes(4))
	g.Fill(buf)
	// Bytes beyond the id slot should not all be zero.
	allZero := true
	for _, b := range f.PayloadAt(buf, 0)[8:] {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Error("64-byte record payload is all zeros")
	}
}

func TestParseDistribution(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Distribution
	}{
		{"uniform", Uniform}, {"all-equal", AllEqual}, {"allequal", AllEqual},
		{"normal", StdNormal}, {"stdnormal", StdNormal}, {"poisson", Poisson},
		{"skew-one-node", SkewOneNode}, {"skew-zipf", SkewZipf},
	} {
		got, err := ParseDistribution(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDistribution(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseDistribution("bogus"); err == nil {
		t.Error("ParseDistribution(bogus) succeeded")
	}
}

func TestStringNames(t *testing.T) {
	for _, d := range []Distribution{Uniform, AllEqual, StdNormal, Poisson, SkewOneNode, SkewZipf} {
		if d.String() == "" {
			t.Errorf("distribution %d has empty name", int(d))
		}
	}
}

func TestFillKeysOnlyFormat(t *testing.T) {
	// An 8-byte record is all key: Fill must not try to stamp identifiers.
	f := records.NewFormat(8)
	g := NewGenerator(f, Uniform, 1, 0)
	buf := make([]byte, f.Bytes(16))
	if n := g.Fill(buf); n != 16 {
		t.Fatalf("Fill returned %d", n)
	}
	if g.Seq() != 16 {
		t.Errorf("Seq = %d", g.Seq())
	}
}

func TestGeneratorAccessors(t *testing.T) {
	g := NewGenerator(records.NewFormat(16), Poisson, 3, 9)
	if g.Node() != 9 {
		t.Errorf("Node = %d", g.Node())
	}
	if g.Seq() != 0 {
		t.Errorf("fresh Seq = %d", g.Seq())
	}
}
