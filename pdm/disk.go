// Package pdm provides the storage substrate for the FG sorting programs: a
// simulated per-node disk with a calibrated latency model, a simple named
// file layer on top of it, and a Parallel Disk Model (PDM) striped file that
// spans all the disks of a cluster (block b lives on disk b mod P, as in
// Vitter and Shriver's model).
//
// The paper ran on one Ultra-320 SCSI disk per node, accessed through the C
// stdio interface. What FG cares about is that disk operations have latency
// that pipelining can hide, and that a node's single disk serializes its
// operations. The simulated disk preserves exactly that: each operation
// costs a fixed positional (seek) latency plus a bandwidth-proportional
// transfer time, operations on one disk are serialized as by a single head,
// and the calling goroutine sleeps for the simulated duration — so, like a
// pthread blocked in read(2), it yields the processor to other pipeline
// stages. Byte counters record the I/O volume per disk, which the
// experiment harness uses to reproduce the paper's claim that csort performs
// roughly 50% more I/O than dsort.
package pdm

import (
	"fmt"
	"sync"
	"time"
)

// DiskModel gives the simulated cost of disk operations.
type DiskModel struct {
	// SeekLatency is charged once per operation, modeling positioning time.
	SeekLatency time.Duration
	// BytesPerSecond is the sequential transfer rate; zero means transfers
	// are free and only seek latency is charged.
	BytesPerSecond float64
}

// Cost returns the simulated duration of one operation moving n bytes.
func (m DiskModel) Cost(n int) time.Duration {
	d := m.SeekLatency
	if m.BytesPerSecond > 0 {
		d += time.Duration(float64(n) / m.BytesPerSecond * float64(time.Second))
	}
	return d
}

// NullDiskModel charges nothing; useful in unit tests.
var NullDiskModel = DiskModel{}

// DefaultDiskModel approximates a single 2000s-era SCSI disk, scaled for
// laptop-sized experiments: 0.2 ms positioning, 100 MB/s sequential.
var DefaultDiskModel = DiskModel{
	SeekLatency:    200 * time.Microsecond,
	BytesPerSecond: 100e6,
}

// Counters accumulates traffic statistics for one disk.
type Counters struct {
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
	// Busy is the total simulated time the disk head was occupied.
	Busy time.Duration
}

// Add merges another set of counters into c.
func (c *Counters) Add(o Counters) {
	c.ReadOps += o.ReadOps
	c.WriteOps += o.WriteOps
	c.BytesRead += o.BytesRead
	c.BytesWritten += o.BytesWritten
	c.Busy += o.Busy
}

// TotalBytes returns bytes read plus bytes written.
func (c Counters) TotalBytes() int64 { return c.BytesRead + c.BytesWritten }

// A Disk is a simulated local disk holding named files. All methods are safe
// for concurrent use; operations are serialized per disk, as by one head.
type Disk struct {
	model DiskModel

	mu    sync.Mutex // guards the fields below
	files map[string]*fileData
	stats Counters
	fault func(op, name string, off int64) error

	head CostGate // serializes the simulated busy time of the single head
}

type fileData struct {
	data []byte
}

// NewDisk returns an empty disk with the given cost model.
func NewDisk(model DiskModel) *Disk {
	return &Disk{model: model, files: make(map[string]*fileData)}
}

// Model returns the disk's cost model.
func (d *Disk) Model() DiskModel { return d.model }

// Stats returns a snapshot of the disk's traffic counters.
func (d *Disk) Stats() Counters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the traffic counters, e.g. between experiment passes.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Counters{}
}

// Remove deletes a file if it exists.
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// Size returns the current size of a file, or 0 if it does not exist.
func (d *Disk) Size(name string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[name]; ok {
		return int64(len(f.data))
	}
	return 0
}

// WriteAt writes p into the named file at offset off, creating or growing
// the file as needed. It blocks for the simulated duration of the write.
func (d *Disk) WriteAt(name string, p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("pdm: negative offset %d writing %q", off, name)
	}
	if err := d.checkFault("write", name, off); err != nil {
		return err
	}
	d.mu.Lock()
	f := d.files[name]
	if f == nil {
		f = &fileData{}
		d.files[name] = f
	}
	if need := int(off) + len(p); need > len(f.data) {
		if need <= cap(f.data) {
			f.data = f.data[:need]
		} else {
			grown := make([]byte, need, grow(cap(f.data), need))
			copy(grown, f.data)
			f.data = grown
		}
	}
	copy(f.data[off:], p)
	cost := d.model.Cost(len(p))
	d.stats.WriteOps++
	d.stats.BytesWritten += int64(len(p))
	d.stats.Busy += cost
	d.mu.Unlock()

	// The head is modeled as busy for the whole operation; holding the lock
	// while sleeping would also block same-disk readers, which is correct
	// for a single head, but it would additionally serialize metadata
	// queries. Sleep after releasing the lock and rely on the head mutex.
	d.occupyHead(cost)
	return nil
}

// ReadAt fills p from the named file at offset off. The file must contain
// the full range. It blocks for the simulated duration of the read.
func (d *Disk) ReadAt(name string, p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("pdm: negative offset %d reading %q", off, name)
	}
	if err := d.checkFault("read", name, off); err != nil {
		return err
	}
	d.mu.Lock()
	f := d.files[name]
	if f == nil {
		d.mu.Unlock()
		return fmt.Errorf("pdm: file %q does not exist", name)
	}
	if int(off)+len(p) > len(f.data) {
		n := len(f.data)
		d.mu.Unlock()
		return fmt.Errorf("pdm: read [%d,%d) beyond end of %q (size %d)",
			off, off+int64(len(p)), name, n)
	}
	copy(p, f.data[off:])
	cost := d.model.Cost(len(p))
	d.stats.ReadOps++
	d.stats.BytesRead += int64(len(p))
	d.stats.Busy += cost
	d.mu.Unlock()

	d.occupyHead(cost)
	return nil
}

// occupyHead charges the simulated duration of an operation through the
// head's cost gate, which serializes concurrent operations so that two
// stages hitting the same disk cannot overlap their simulated transfer
// times, and which compensates for scheduler sleep overshoot.
func (d *Disk) occupyHead(cost time.Duration) {
	d.head.Charge(cost)
}

// grow returns a capacity at least need, doubling from cur to amortize.
func grow(cur, need int) int {
	if cur == 0 {
		cur = 1024
	}
	for cur < need {
		cur *= 2
	}
	return cur
}

// Import stores data as the named file's full contents without charging any
// simulated cost. It exists for experiment setup — generating a sort's
// input is not part of the measured computation.
func (d *Disk) Import(name string, data []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := &fileData{data: make([]byte, len(data))}
	copy(f.data, data)
	d.files[name] = f
}

// Export returns a copy of the named file's contents without charging any
// simulated cost. It exists for verification — checking a sort's output is
// not part of the measured computation. Export of a missing file returns
// nil.
func (d *Disk) Export(name string) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.files[name]
	if f == nil {
		return nil
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out
}

// SetFault installs a fault injector: before every read or write, fn is
// called with the operation ("read" or "write"), the file name, and the
// offset; a non-nil return fails the operation with that error. Passing nil
// clears the injector. Tests use it to prove that I/O errors surface
// through pipelines instead of hanging them.
func (d *Disk) SetFault(fn func(op, name string, off int64) error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = fn
}

// checkFault consults the injector. It is called outside d.mu so an
// injector that adds latency stalls only its own operation, not metadata
// queries on the same disk.
func (d *Disk) checkFault(op, name string, off int64) error {
	d.mu.Lock()
	fn := d.fault
	d.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(op, name, off)
}
