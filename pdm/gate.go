package pdm

import (
	"sync"
	"time"
)

// A CostGate serializes a simulated device (a disk head, a NIC) and charges
// simulated busy time against wall-clock time. Charges accumulate as debt
// and are paid with one sleep whenever the debt reaches a small quantum;
// the actual slept duration — which on most schedulers overshoots the
// request — is subtracted from the debt, which may go negative and absorb
// the overshoot. The long-run wall-clock rate therefore matches the model
// exactly, even for operations much shorter than the scheduler's timer
// resolution, while the gate's mutex still serializes concurrent users as
// a single device would.
type CostGate struct {
	mu   sync.Mutex
	debt time.Duration
}

// gateQuantum is the debt level that triggers an actual sleep.
const gateQuantum = time.Millisecond

// Charge adds a simulated duration to the device and blocks the caller for
// the debt-adjusted equivalent wall-clock time.
func (g *CostGate) Charge(d time.Duration) {
	if d <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.debt += d
	if g.debt < gateQuantum {
		return
	}
	start := time.Now()
	time.Sleep(g.debt)
	g.debt -= time.Since(start)
}
