package pdm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDiskWriteReadRoundTrip(t *testing.T) {
	d := NewDisk(NullDiskModel)
	want := []byte("hello out-of-core world")
	if err := d.WriteAt("f", want, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := d.ReadAt("f", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("round trip: got %q, want %q", got, want)
	}
}

func TestDiskSparseWriteGrowsFile(t *testing.T) {
	d := NewDisk(NullDiskModel)
	if err := d.WriteAt("f", []byte{0xff}, 100); err != nil {
		t.Fatal(err)
	}
	if got := d.Size("f"); got != 101 {
		t.Fatalf("Size = %d, want 101", got)
	}
	// The gap reads back as zeros.
	gap := make([]byte, 100)
	if err := d.ReadAt("f", gap, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range gap {
		if b != 0 {
			t.Fatalf("gap byte %d = %#x, want 0", i, b)
		}
	}
}

func TestDiskOverwrite(t *testing.T) {
	d := NewDisk(NullDiskModel)
	if err := d.WriteAt("f", []byte("aaaaaaaa"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt("f", []byte("bb"), 3); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := d.ReadAt("f", got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaabbaaa" {
		t.Errorf("after overwrite: %q", got)
	}
}

func TestDiskReadErrors(t *testing.T) {
	d := NewDisk(NullDiskModel)
	if err := d.ReadAt("missing", make([]byte, 1), 0); err == nil {
		t.Error("read of missing file succeeded")
	}
	if err := d.WriteAt("f", []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt("f", make([]byte, 4), 0); err == nil {
		t.Error("read beyond EOF succeeded")
	}
	if err := d.ReadAt("f", make([]byte, 1), -1); err == nil {
		t.Error("read at negative offset succeeded")
	}
	if err := d.WriteAt("f", make([]byte, 1), -1); err == nil {
		t.Error("write at negative offset succeeded")
	}
}

func TestDiskRemove(t *testing.T) {
	d := NewDisk(NullDiskModel)
	if err := d.WriteAt("f", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	d.Remove("f")
	if d.Size("f") != 0 {
		t.Error("file survives Remove")
	}
	if err := d.ReadAt("f", make([]byte, 1), 0); err == nil {
		t.Error("removed file is readable")
	}
}

func TestDiskCounters(t *testing.T) {
	d := NewDisk(NullDiskModel)
	if err := d.WriteAt("f", make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt("f", make([]byte, 50), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt("f", make([]byte, 70), 10); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.WriteOps != 2 || s.BytesWritten != 150 {
		t.Errorf("write counters: %+v", s)
	}
	if s.ReadOps != 1 || s.BytesRead != 70 {
		t.Errorf("read counters: %+v", s)
	}
	if s.TotalBytes() != 220 {
		t.Errorf("TotalBytes = %d, want 220", s.TotalBytes())
	}
	d.ResetStats()
	if d.Stats().TotalBytes() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{ReadOps: 1, WriteOps: 2, BytesRead: 3, BytesWritten: 4, Busy: 5}
	b := Counters{ReadOps: 10, WriteOps: 20, BytesRead: 30, BytesWritten: 40, Busy: 50}
	a.Add(b)
	want := Counters{ReadOps: 11, WriteOps: 22, BytesRead: 33, BytesWritten: 44, Busy: 55}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}

func TestDiskModelCost(t *testing.T) {
	m := DiskModel{SeekLatency: time.Millisecond, BytesPerSecond: 1e6}
	if got := m.Cost(0); got != time.Millisecond {
		t.Errorf("Cost(0) = %v, want 1ms", got)
	}
	// 1000 bytes at 1 MB/s is 1 ms transfer + 1 ms seek.
	if got := m.Cost(1000); got != 2*time.Millisecond {
		t.Errorf("Cost(1000) = %v, want 2ms", got)
	}
	if got := NullDiskModel.Cost(1 << 20); got != 0 {
		t.Errorf("null model Cost = %v, want 0", got)
	}
}

func TestDiskLatencyIsCharged(t *testing.T) {
	d := NewDisk(DiskModel{SeekLatency: 2 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := d.WriteAt("f", []byte{1}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The cost gate compensates sleep overshoot, so total wall time tracks
	// the modeled 10ms closely but may sit a hair under it.
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Errorf("5 writes with 2ms seeks took only %v", elapsed)
	}
	if busy := d.Stats().Busy; busy < 10*time.Millisecond {
		t.Errorf("Busy = %v, want >= 10ms", busy)
	}
}

func TestDiskHeadSerializesOperations(t *testing.T) {
	// Two goroutines issue 5 operations of 2 ms each; a single head must
	// take at least ~20 ms in total, not ~10 ms.
	d := NewDisk(DiskModel{SeekLatency: 2 * time.Millisecond})
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := d.WriteAt(fmt.Sprintf("f%d", g), []byte{1}, int64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("10 serialized 2ms ops finished in %v; head is not serializing", elapsed)
	}
}

func TestDiskConcurrentAccessIsSafe(t *testing.T) {
	d := NewDisk(NullDiskModel)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("f%d", g%2)
			buf := []byte{byte(g)}
			for i := 0; i < 500; i++ {
				if err := d.WriteAt(name, buf, int64(i%64)); err != nil {
					t.Error(err)
					return
				}
				if err := d.ReadAt(name, buf, int64(i%64)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStripedFileGeometry(t *testing.T) {
	s := NewStripedFile("out", 100, 4)
	cases := []struct {
		block    int64
		owner    int
		localOff int64
	}{{0, 0, 0}, {1, 1, 0}, {3, 3, 0}, {4, 0, 100}, {5, 1, 100}, {11, 3, 200}}
	for _, c := range cases {
		if got := s.OwnerOfBlock(c.block); got != c.owner {
			t.Errorf("OwnerOfBlock(%d) = %d, want %d", c.block, got, c.owner)
		}
		if got := s.LocalOffsetOfBlock(c.block); got != c.localOff {
			t.Errorf("LocalOffsetOfBlock(%d) = %d, want %d", c.block, got, c.localOff)
		}
	}
	if got := s.BlockOfOffset(399); got != 3 {
		t.Errorf("BlockOfOffset(399) = %d, want 3", got)
	}
	if got := s.BlockOfOffset(400); got != 4 {
		t.Errorf("BlockOfOffset(400) = %d, want 4", got)
	}
}

func TestStripedFilePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStripedFile(0 block) did not panic")
		}
	}()
	NewStripedFile("x", 0, 4)
}

func TestExtentsSplitAtBlockBoundaries(t *testing.T) {
	s := NewStripedFile("out", 100, 4)
	ext := s.Extents(250, 300) // covers blocks 2,3,4,5 partially
	wantLens := []int{50, 100, 100, 50}
	wantDisks := []int{2, 3, 0, 1}
	if len(ext) != 4 {
		t.Fatalf("got %d extents, want 4: %+v", len(ext), ext)
	}
	off := int64(250)
	for i, e := range ext {
		if e.Length != wantLens[i] || e.Disk != wantDisks[i] || e.GlobalOff != off {
			t.Errorf("extent %d = %+v, want len %d disk %d gOff %d",
				i, e, wantLens[i], wantDisks[i], off)
		}
		off += int64(e.Length)
	}
}

func TestExtentsCoverRangeQuick(t *testing.T) {
	s := NewStripedFile("out", 64, 5)
	f := func(off uint16, length uint16) bool {
		ext := s.Extents(int64(off), int(length))
		covered := 0
		next := int64(off)
		for _, e := range ext {
			if e.GlobalOff != next || e.Length <= 0 || e.Length > s.BlockBytes {
				return false
			}
			if e.Disk != int(e.GlobalBlock%5) {
				return false
			}
			next += int64(e.Length)
			covered += e.Length
		}
		return covered == int(length)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStripedReadWriteRoundTrip(t *testing.T) {
	const P = 4
	s := NewStripedFile("out", 128, P)
	disks := make([]*Disk, P)
	for i := range disks {
		disks[i] = NewDisk(NullDiskModel)
	}
	rng := rand.New(rand.NewSource(3))
	want := make([]byte, 128*10+37) // non-block-aligned total
	rng.Read(want)

	// Write in odd-sized chunks at increasing offsets.
	off := int64(0)
	for off < int64(len(want)) {
		n := 1 + rng.Intn(300)
		if off+int64(n) > int64(len(want)) {
			n = int(int64(len(want)) - off)
		}
		if err := s.WriteAt(disks, want[off:off+int64(n)], off); err != nil {
			t.Fatal(err)
		}
		off += int64(n)
	}

	got := make([]byte, len(want))
	if err := s.ReadAt(disks, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("striped round trip mismatch")
	}

	// Every disk holds its PDM share and nothing more.
	for i, d := range disks {
		if got, want := d.Size(s.Name), s.LocalBytes(int64(len(want)), i); got != want {
			t.Errorf("disk %d holds %d bytes, want %d", i, got, want)
		}
	}
}

func TestStripedWrongDiskCount(t *testing.T) {
	s := NewStripedFile("out", 128, 4)
	if err := s.WriteAt(make([]*Disk, 3), []byte{1}, 0); err == nil {
		t.Error("WriteAt with wrong disk count succeeded")
	}
	if err := s.ReadAt(make([]*Disk, 3), []byte{1}, 0); err == nil {
		t.Error("ReadAt with wrong disk count succeeded")
	}
}

func TestLocalBytesSumsToTotalQuick(t *testing.T) {
	s := NewStripedFile("out", 64, 7)
	f := func(total uint16) bool {
		var sum int64
		for d := 0; d < 7; d++ {
			sum += s.LocalBytes(int64(total), d)
		}
		return sum == int64(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalBytesExact(t *testing.T) {
	s := NewStripedFile("out", 100, 4)
	// 6 full blocks + 30-byte tail in block 6 (disk 2).
	total := int64(630)
	want := []int64{200, 200, 130, 100}
	for d := 0; d < 4; d++ {
		if got := s.LocalBytes(total, d); got != want[d] {
			t.Errorf("LocalBytes(disk %d) = %d, want %d", d, got, want[d])
		}
	}
}

func TestImportExportAreFreeAndFaithful(t *testing.T) {
	d := NewDisk(DiskModel{SeekLatency: time.Second}) // would be very slow if charged
	payload := []byte("setup data")
	start := time.Now()
	d.Import("in", payload)
	got := d.Export("in")
	if time.Since(start) > 100*time.Millisecond {
		t.Error("Import/Export charged simulated latency")
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("Export = %q", got)
	}
	if d.Stats().TotalBytes() != 0 {
		t.Error("Import/Export moved the traffic counters")
	}
	if d.Export("missing") != nil {
		t.Error("Export of missing file is non-nil")
	}
}

func TestFaultInjection(t *testing.T) {
	d := NewDisk(NullDiskModel)
	if err := d.WriteAt("f", []byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("injected")
	d.SetFault(func(op, name string, off int64) error {
		if op == "read" && name == "f" {
			return boom
		}
		return nil
	})
	if err := d.ReadAt("f", make([]byte, 4), 0); err != boom {
		t.Errorf("read returned %v, want injected fault", err)
	}
	// Writes to f still succeed; reads of other files too.
	if err := d.WriteAt("f", []byte("x"), 0); err != nil {
		t.Errorf("write hit the read-only fault: %v", err)
	}
	if err := d.WriteAt("g", []byte("y"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt("g", make([]byte, 1), 0); err != nil {
		t.Errorf("read of other file failed: %v", err)
	}
	// Clearing the injector restores service.
	d.SetFault(nil)
	if err := d.ReadAt("f", make([]byte, 4), 0); err != nil {
		t.Errorf("read after clearing fault failed: %v", err)
	}
}

func TestFaultDoesNotCount(t *testing.T) {
	d := NewDisk(NullDiskModel)
	d.SetFault(func(op, name string, off int64) error { return fmt.Errorf("no") })
	d.ReadAt("f", make([]byte, 1), 0)
	d.WriteAt("f", make([]byte, 1), 0)
	if d.Stats().TotalBytes() != 0 || d.Stats().ReadOps != 0 || d.Stats().WriteOps != 0 {
		t.Errorf("failed operations moved the counters: %+v", d.Stats())
	}
}

func TestCostGateChargesAtModeledRate(t *testing.T) {
	// 100 charges of 200us must take ~20ms of wall time despite each being
	// far below the scheduler's sleep resolution — the debt compensation.
	var g CostGate
	start := time.Now()
	for i := 0; i < 100; i++ {
		g.Charge(200 * time.Microsecond)
	}
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond {
		t.Errorf("100x200us charges took only %v", elapsed)
	}
	if elapsed > 60*time.Millisecond {
		t.Errorf("100x200us charges took %v; overshoot not compensated", elapsed)
	}
}

func TestCostGateZeroAndNegativeFree(t *testing.T) {
	var g CostGate
	start := time.Now()
	for i := 0; i < 1000; i++ {
		g.Charge(0)
		g.Charge(-time.Second)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Error("zero/negative charges cost wall time")
	}
}

func TestCostGateSerializesUsers(t *testing.T) {
	var g CostGate
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Charge(5 * time.Millisecond)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("4x5ms concurrent charges finished in %v; gate is not serializing", elapsed)
	}
}
