package pdm

import "fmt"

// A StripedFile is a single logical file laid out across the disks of a
// cluster in Parallel Disk Model order: the file is divided into fixed-size
// blocks, and block b resides on disk b mod P at local block index b div P.
// Both sorting programs in the paper produce their output in this order.
//
// A StripedFile value describes the layout; it does not perform I/O itself.
// Nodes read and write their local portions through their own *Disk using
// the offsets this type computes, and route remote portions over the
// interconnect — exactly the distinction the sorting programs must manage.
type StripedFile struct {
	// Name of the per-disk backing file holding this striped file's blocks.
	Name string
	// BlockBytes is the stripe unit.
	BlockBytes int
	// Disks is P, the number of disks in the cluster.
	Disks int
}

// NewStripedFile describes a striped file with the given block size over P
// disks. It panics on non-positive parameters.
func NewStripedFile(name string, blockBytes, disks int) StripedFile {
	if blockBytes <= 0 || disks <= 0 {
		panic(fmt.Sprintf("pdm: invalid striped file geometry: block %d, disks %d", blockBytes, disks))
	}
	return StripedFile{Name: name, BlockBytes: blockBytes, Disks: disks}
}

// OwnerOfBlock returns the disk holding global block b.
func (s StripedFile) OwnerOfBlock(b int64) int {
	return int(b % int64(s.Disks))
}

// LocalOffsetOfBlock returns the byte offset, within the owning disk's
// backing file, of global block b.
func (s StripedFile) LocalOffsetOfBlock(b int64) int64 {
	return b / int64(s.Disks) * int64(s.BlockBytes)
}

// BlockOfOffset returns the global block containing global byte offset off.
func (s StripedFile) BlockOfOffset(off int64) int64 {
	return off / int64(s.BlockBytes)
}

// An Extent is a contiguous global byte range that lives entirely on one
// disk, expressed in both global and disk-local coordinates.
type Extent struct {
	Disk        int   // owning disk
	GlobalOff   int64 // start offset in the logical file
	LocalOff    int64 // start offset in the disk's backing file
	Length      int   // bytes
	GlobalBlock int64 // global block index containing this extent
}

// Extents splits the global byte range [off, off+length) into per-disk
// extents in increasing global order. Callers use it to route writes of
// merged output to the disks that own each piece.
func (s StripedFile) Extents(off int64, length int) []Extent {
	if off < 0 || length < 0 {
		panic(fmt.Sprintf("pdm: invalid extent range off=%d length=%d", off, length))
	}
	var out []Extent
	bb := int64(s.BlockBytes)
	for length > 0 {
		b := off / bb
		within := off % bb
		n := int(bb - within)
		if n > length {
			n = length
		}
		out = append(out, Extent{
			Disk:        s.OwnerOfBlock(b),
			GlobalOff:   off,
			LocalOff:    s.LocalOffsetOfBlock(b) + within,
			Length:      n,
			GlobalBlock: b,
		})
		off += int64(n)
		length -= n
	}
	return out
}

// WriteAt writes p at global offset off, routing each piece to the owning
// disk. disks[i] must be disk i of the cluster. It is intended for
// single-process tests and tools; the distributed sorts route remote pieces
// over the interconnect instead.
func (s StripedFile) WriteAt(disks []*Disk, p []byte, off int64) error {
	if len(disks) != s.Disks {
		return fmt.Errorf("pdm: striped file spans %d disks, got %d", s.Disks, len(disks))
	}
	for _, e := range s.Extents(off, len(p)) {
		rel := e.GlobalOff - off
		if err := disks[e.Disk].WriteAt(s.Name, p[rel:rel+int64(e.Length)], e.LocalOff); err != nil {
			return err
		}
	}
	return nil
}

// ReadAt fills p from global offset off, gathering each piece from the
// owning disk.
func (s StripedFile) ReadAt(disks []*Disk, p []byte, off int64) error {
	if len(disks) != s.Disks {
		return fmt.Errorf("pdm: striped file spans %d disks, got %d", s.Disks, len(disks))
	}
	for _, e := range s.Extents(off, len(p)) {
		rel := e.GlobalOff - off
		if err := disks[e.Disk].ReadAt(s.Name, p[rel:rel+int64(e.Length)], e.LocalOff); err != nil {
			return err
		}
	}
	return nil
}

// LocalBytes returns how many bytes of a striped file of the given total
// size reside on the given disk.
func (s StripedFile) LocalBytes(totalBytes int64, disk int) int64 {
	bb := int64(s.BlockBytes)
	fullBlocks := totalBytes / bb
	tail := totalBytes % bb
	p := int64(s.Disks)
	n := fullBlocks / p * bb
	// Blocks are dealt round-robin from disk 0, so disks 0..rem-1 hold one
	// extra full block.
	if rem := fullBlocks % p; int64(disk) < rem {
		n += bb
	}
	if tail > 0 && s.OwnerOfBlock(fullBlocks) == disk {
		n += tail
	}
	return n
}
