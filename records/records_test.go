package records

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewFormatPanicsOnTinyRecord(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFormat(4) did not panic")
		}
	}()
	NewFormat(4)
}

func TestKeyRoundTrip(t *testing.T) {
	f := NewFormat(16)
	rec := make([]byte, 16)
	for _, key := range []uint64{0, 1, math.MaxUint64, 0xdeadbeefcafef00d} {
		f.SetKey(rec, key)
		if got := f.Key(rec); got != key {
			t.Errorf("Key round trip: got %#x, want %#x", got, key)
		}
	}
}

func TestKeyOrderMatchesByteOrder(t *testing.T) {
	// Big-endian keys must compare the same as raw bytes so block-level code
	// can compare records without decoding.
	f := NewFormat(16)
	a := make([]byte, 16)
	b := make([]byte, 16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		ka, kb := rng.Uint64(), rng.Uint64()
		f.SetKey(a, ka)
		f.SetKey(b, kb)
		byteLess := string(a[:8]) < string(b[:8])
		if byteLess != (ka < kb) {
			t.Fatalf("byte order disagrees with key order for %#x vs %#x", ka, kb)
		}
	}
}

func TestCountAndBytes(t *testing.T) {
	f := NewFormat(64)
	if got := f.Count(640); got != 10 {
		t.Errorf("Count(640) = %d, want 10", got)
	}
	if got := f.Bytes(10); got != 640 {
		t.Errorf("Bytes(10) = %d, want 640", got)
	}
}

func TestCountPanicsOnPartialRecord(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Count on a partial record did not panic")
		}
	}()
	NewFormat(16).Count(17)
}

func TestAtAndKeyAt(t *testing.T) {
	f := NewFormat(16)
	data := make([]byte, f.Bytes(8))
	for i := 0; i < 8; i++ {
		f.SetKey(f.At(data, i), uint64(100+i))
	}
	for i := 0; i < 8; i++ {
		if got := f.KeyAt(data, i); got != uint64(100+i) {
			t.Errorf("KeyAt(%d) = %d, want %d", i, got, 100+i)
		}
	}
	if !f.IsSorted(data) {
		t.Error("ascending keys reported unsorted")
	}
	f.SetKey(f.At(data, 3), 0)
	if f.IsSorted(data) {
		t.Error("descending pair reported sorted")
	}
}

func TestLess(t *testing.T) {
	f := NewFormat(16)
	data := make([]byte, f.Bytes(2))
	f.SetKey(f.At(data, 0), 5)
	f.SetKey(f.At(data, 1), 7)
	if !f.Less(data, 0, 1) || f.Less(data, 1, 0) || f.Less(data, 0, 0) {
		t.Error("Less gives wrong order for keys 5, 7")
	}
}

func TestPayloadAt(t *testing.T) {
	f := NewFormat(16)
	data := make([]byte, f.Bytes(2))
	p := f.PayloadAt(data, 1)
	if len(p) != 8 {
		t.Fatalf("payload length = %d, want 8", len(p))
	}
	p[0] = 0xab
	if data[16+8] != 0xab {
		t.Error("payload slice does not alias record storage")
	}
}

func TestExtKeyOrdering(t *testing.T) {
	cases := []struct {
		a, b records
		want int
	}{
		{records{1, 0, 0}, records{2, 0, 0}, -1},
		{records{2, 0, 0}, records{1, 9, 9}, +1},
		{records{1, 1, 0}, records{1, 2, 0}, -1},
		{records{1, 1, 5}, records{1, 1, 6}, -1},
		{records{1, 1, 5}, records{1, 1, 5}, 0},
	}
	for _, c := range cases {
		a := ExtKey{c.a[0], uint32(c.a[1]), c.a[2]}
		b := ExtKey{c.b[0], uint32(c.b[1]), c.b[2]}
		if got := a.Compare(b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", a, b, got, c.want)
		}
		if got := a.Less(b); got != (c.want < 0) {
			t.Errorf("Less(%v, %v) = %v, want %v", a, b, got, c.want < 0)
		}
	}
}

type records [3]uint64

func TestMaxExtKeyIsMaximal(t *testing.T) {
	if MaxExtKey.Less(ExtKey{math.MaxUint64, math.MaxUint32, math.MaxUint64 - 1}) {
		t.Error("MaxExtKey not maximal")
	}
	if MaxExtKey.Less(MaxExtKey) {
		t.Error("MaxExtKey less than itself")
	}
}

func TestExtKeyEncodeDecodeQuick(t *testing.T) {
	f := func(key uint64, node uint32, seq uint64) bool {
		e := ExtKey{Key: key, Node: node, Seq: seq}
		buf := EncodeExtKey(nil, e)
		if len(buf) != ExtKeySize {
			return false
		}
		return DecodeExtKey(buf) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtKeyWireOrderMatchesCompare(t *testing.T) {
	// The big-endian wire encoding must order the same way as Compare, so
	// splitter handling can compare encodings directly if it wants to.
	f := func(a, b ExtKey) bool {
		wa := string(EncodeExtKey(nil, a))
		wb := string(EncodeExtKey(nil, b))
		switch a.Compare(b) {
		case -1:
			return wa < wb
		case 0:
			return wa == wb
		default:
			return wa > wb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatKeyPreservesOrder(t *testing.T) {
	xs := []float64{math.Inf(-1), -1e300, -2.5, -1, -math.SmallestNonzeroFloat64,
		0, math.SmallestNonzeroFloat64, 0.5, 1, 3.25, 1e300, math.Inf(1)}
	for i := 1; i < len(xs); i++ {
		if FloatKey(xs[i-1]) >= FloatKey(xs[i]) {
			t.Errorf("FloatKey order violated at %g < %g", xs[i-1], xs[i])
		}
	}
}

func TestFloatKeyRoundTripQuick(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN has no round-trip identity
		}
		return KeyFloat(FloatKey(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatKeyMatchesSortOrderQuick(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return (a < b) == (FloatKey(a) < FloatKey(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeSplitIDRoundTrip(t *testing.T) {
	cases := []struct {
		node uint32
		seq  uint64
	}{{0, 0}, {15, 12345}, {1 << 20, MaxIDSeq}}
	for _, c := range cases {
		node, seq := SplitID(MakeID(c.node, c.seq))
		if node != c.node || seq != c.seq {
			t.Errorf("SplitID(MakeID(%d, %d)) = (%d, %d)", c.node, c.seq, node, seq)
		}
	}
}

func TestMakeIDPanicsOnHugeSeq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakeID with out-of-range seq did not panic")
		}
	}()
	MakeID(0, MaxIDSeq+1)
}

func TestIDStamping(t *testing.T) {
	f := NewFormat(16)
	if !f.HasID() {
		t.Fatal("16-byte format should carry an identifier")
	}
	data := make([]byte, f.Bytes(3))
	for i := 0; i < 3; i++ {
		f.StampID(f.At(data, i), MakeID(7, uint64(i)))
	}
	for i := 0; i < 3; i++ {
		node, seq := SplitID(f.IDAt(data, i))
		if node != 7 || seq != uint64(i) {
			t.Errorf("record %d carries id (%d, %d)", i, node, seq)
		}
	}
}

func TestSmallFormatHasNoID(t *testing.T) {
	f := NewFormat(8)
	if f.HasID() {
		t.Fatal("8-byte format cannot carry an identifier")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StampID on keys-only format did not panic")
		}
	}()
	f.StampID(make([]byte, 8), 1)
}

func TestFingerprintOrderIndependent(t *testing.T) {
	f := NewFormat(16)
	const n = 200
	data := make([]byte, f.Bytes(n))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		f.SetKey(f.At(data, i), rng.Uint64())
		f.StampID(f.At(data, i), MakeID(3, uint64(i)))
	}
	before := f.Fingerprint(data)

	perm := rng.Perm(n)
	shuffled := make([]byte, len(data))
	for i, j := range perm {
		copy(f.At(shuffled, j), f.At(data, i))
	}
	if got := f.Fingerprint(shuffled); !got.Equal(before) {
		t.Errorf("fingerprint changed under permutation: %v vs %v", got, before)
	}
}

func TestFingerprintDetectsMutation(t *testing.T) {
	f := NewFormat(16)
	const n = 64
	data := make([]byte, f.Bytes(n))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		f.SetKey(f.At(data, i), rng.Uint64())
		f.StampID(f.At(data, i), MakeID(0, uint64(i)))
	}
	before := f.Fingerprint(data)
	f.SetKey(f.At(data, 17), f.KeyAt(data, 17)+1)
	if f.Fingerprint(data).Equal(before) {
		t.Error("fingerprint failed to detect a key mutation")
	}
}

func TestFingerprintMerge(t *testing.T) {
	f := NewFormat(16)
	const n = 100
	data := make([]byte, f.Bytes(n))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		f.SetKey(f.At(data, i), rng.Uint64())
		f.StampID(f.At(data, i), MakeID(1, uint64(i)))
	}
	whole := f.Fingerprint(data)
	half := f.Bytes(n / 2)
	left := f.Fingerprint(data[:half])
	right := f.Fingerprint(data[half:])
	left.Merge(right)
	if !left.Equal(whole) {
		t.Errorf("merged fingerprint %v differs from whole %v", left, whole)
	}
}

func TestFingerprintCount(t *testing.T) {
	f := NewFormat(16)
	data := make([]byte, f.Bytes(5))
	for i := 0; i < 5; i++ {
		f.StampID(f.At(data, i), uint64(i))
	}
	if got := f.Fingerprint(data).Count; got != 5 {
		t.Errorf("fingerprint count = %d, want 5", got)
	}
}

func TestIsSortedAgreesWithSort(t *testing.T) {
	f := NewFormat(16)
	const n = 128
	data := make([]byte, f.Bytes(n))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		f.SetKey(f.At(data, i), rng.Uint64()%16) // duplicates likely
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = f.KeyAt(data, i)
	}
	sorted := sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if got := f.IsSorted(data); got != sorted {
		t.Errorf("IsSorted = %v, sort.SliceIsSorted = %v", got, sorted)
	}
}
