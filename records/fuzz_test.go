package records

import (
	"testing"
)

// FuzzExtKeyRoundTrip checks that every extended key survives encoding and
// that wire order always agrees with Compare.
func FuzzExtKeyRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint32(0), uint64(0), uint64(1), uint32(1), uint64(1))
	f.Add(^uint64(0), ^uint32(0), ^uint64(0), uint64(42), uint32(7), uint64(9))
	f.Fuzz(func(t *testing.T, k1 uint64, n1 uint32, s1 uint64, k2 uint64, n2 uint32, s2 uint64) {
		a := ExtKey{Key: k1, Node: n1, Seq: s1}
		b := ExtKey{Key: k2, Node: n2, Seq: s2}
		if DecodeExtKey(EncodeExtKey(nil, a)) != a {
			t.Fatalf("round trip lost %v", a)
		}
		wa := string(EncodeExtKey(nil, a))
		wb := string(EncodeExtKey(nil, b))
		switch a.Compare(b) {
		case -1:
			if wa >= wb {
				t.Fatalf("wire order disagrees: %v < %v", a, b)
			}
		case 0:
			if wa != wb {
				t.Fatalf("equal keys encode differently")
			}
		case 1:
			if wa <= wb {
				t.Fatalf("wire order disagrees: %v > %v", a, b)
			}
		}
	})
}

// FuzzFloatKeyOrder checks the order-preserving float encoding across
// arbitrary bit patterns.
func FuzzFloatKeyOrder(f *testing.F) {
	f.Add(0.0, 1.0)
	f.Add(-1.5, 1.5)
	f.Fuzz(func(t *testing.T, x, y float64) {
		if x != x || y != y { // NaN
			return
		}
		if (x < y) != (FloatKey(x) < FloatKey(y)) {
			t.Fatalf("FloatKey order broken for %g vs %g", x, y)
		}
		if KeyFloat(FloatKey(x)) != x {
			t.Fatalf("FloatKey round trip lost %g", x)
		}
	})
}
