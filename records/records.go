// Package records defines the fixed-size record format used throughout the
// FG sorting programs.
//
// A record consists of an 8-byte sort key followed by an arbitrary payload;
// the paper's experiments use 16-byte and 64-byte records. Keys are stored
// big-endian so that bytes.Compare on the first 8 bytes agrees with uint64
// comparison; this lets block-level operations move records without decoding
// them.
//
// The package also implements extended keys (Section V of the paper): a
// record's key augmented with its origin node and sequence number so that
// every extended key in the input is unique. Splitters are extended keys;
// comparing records to splitters through their extended keys guarantees a
// deterministic, near-balanced partition even when many sort keys are equal.
package records

import (
	"encoding/binary"
	"fmt"
	"math"
)

// KeySize is the size in bytes of the sort key at the start of every record.
const KeySize = 8

// MinRecordSize is the smallest legal record: a bare key.
const MinRecordSize = KeySize

// Format describes a fixed-size record layout.
type Format struct {
	// Size is the total record size in bytes, including the key.
	Size int
}

// NewFormat returns a Format for records of the given total size.
// It panics if size is smaller than MinRecordSize.
func NewFormat(size int) Format {
	if size < MinRecordSize {
		panic(fmt.Sprintf("records: record size %d smaller than key size %d", size, KeySize))
	}
	return Format{Size: size}
}

// Key extracts the sort key of the record starting at rec[0].
func (f Format) Key(rec []byte) uint64 {
	return binary.BigEndian.Uint64(rec[:KeySize])
}

// SetKey stores key at the front of rec.
func (f Format) SetKey(rec []byte, key uint64) {
	binary.BigEndian.PutUint64(rec[:KeySize], key)
}

// Count returns how many whole records fit in n bytes.
// It panics if n is not a multiple of the record size.
func (f Format) Count(n int) int {
	if n%f.Size != 0 {
		panic(fmt.Sprintf("records: %d bytes is not a whole number of %d-byte records", n, f.Size))
	}
	return n / f.Size
}

// Bytes returns the number of bytes occupied by n records.
func (f Format) Bytes(n int) int { return n * f.Size }

// At returns the sub-slice of data holding record i.
func (f Format) At(data []byte, i int) []byte {
	return data[i*f.Size : (i+1)*f.Size]
}

// KeyAt returns the sort key of record i within data.
func (f Format) KeyAt(data []byte, i int) uint64 {
	return binary.BigEndian.Uint64(data[i*f.Size:])
}

// Less reports whether record i sorts strictly before record j within data,
// comparing by sort key only.
func (f Format) Less(data []byte, i, j int) bool {
	return f.KeyAt(data, i) < f.KeyAt(data, j)
}

// PayloadAt returns the payload (everything after the key) of record i.
func (f Format) PayloadAt(data []byte, i int) []byte {
	return data[i*f.Size+KeySize : (i+1)*f.Size]
}

// IsSorted reports whether the records in data are in nondecreasing key order.
func (f Format) IsSorted(data []byte) bool {
	n := f.Count(len(data))
	for i := 1; i < n; i++ {
		if f.KeyAt(data, i) < f.KeyAt(data, i-1) {
			return false
		}
	}
	return true
}

// ExtKey is an extended key: the sort key plus the record's provenance,
// which makes every extended key in an input unique. Extended keys never
// become part of a record; they exist only while deciding where to send it
// (paper, Section V).
type ExtKey struct {
	Key  uint64 // the record's sort key
	Node uint32 // rank of the node the record originated on
	Seq  uint64 // index of the record within its origin node's input
}

// Less reports whether e orders strictly before o, comparing
// (Key, Node, Seq) lexicographically.
func (e ExtKey) Less(o ExtKey) bool {
	if e.Key != o.Key {
		return e.Key < o.Key
	}
	if e.Node != o.Node {
		return e.Node < o.Node
	}
	return e.Seq < o.Seq
}

// Compare returns -1, 0, or +1 according to the lexicographic order of
// (Key, Node, Seq).
func (e ExtKey) Compare(o ExtKey) int {
	switch {
	case e.Less(o):
		return -1
	case o.Less(e):
		return +1
	default:
		return 0
	}
}

// String formats the extended key for diagnostics.
func (e ExtKey) String() string {
	return fmt.Sprintf("(%#x,n%d,#%d)", e.Key, e.Node, e.Seq)
}

// MaxExtKey is an extended key that orders at or after every extended key
// that can occur in an input.
var MaxExtKey = ExtKey{Key: math.MaxUint64, Node: math.MaxUint32, Seq: math.MaxUint64}

// ExtKeySize is the wire size of an encoded extended key.
const ExtKeySize = 8 + 4 + 8

// EncodeExtKey appends the wire form of e to dst and returns the result.
func EncodeExtKey(dst []byte, e ExtKey) []byte {
	var buf [ExtKeySize]byte
	binary.BigEndian.PutUint64(buf[0:8], e.Key)
	binary.BigEndian.PutUint32(buf[8:12], e.Node)
	binary.BigEndian.PutUint64(buf[12:20], e.Seq)
	return append(dst, buf[:]...)
}

// DecodeExtKey decodes one extended key from the front of src.
func DecodeExtKey(src []byte) ExtKey {
	return ExtKey{
		Key:  binary.BigEndian.Uint64(src[0:8]),
		Node: binary.BigEndian.Uint32(src[8:12]),
		Seq:  binary.BigEndian.Uint64(src[12:20]),
	}
}

// FloatKey maps a float64 to a uint64 whose unsigned order matches the
// float's numeric order (NaNs order after +Inf). It is the standard
// order-preserving bit trick: positive floats get their sign bit flipped;
// negative floats get all bits flipped.
func FloatKey(x float64) uint64 {
	b := math.Float64bits(x)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// KeyFloat inverts FloatKey.
func KeyFloat(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}
