package records

import (
	"encoding/binary"
	"fmt"
)

// Records whose payload is at least 8 bytes (total size >= 16) can carry a
// unique identifier in the first 8 payload bytes. The sorting programs stamp
// every generated record with its origin so that verification can confirm
// the output is a permutation of the input without keeping a copy of it.

// idSeqBits is how many bits of the identifier hold the sequence number;
// the remaining high bits hold the origin node rank.
const idSeqBits = 40

// MaxIDSeq is the largest per-node sequence number an identifier can carry.
const MaxIDSeq = 1<<idSeqBits - 1

// MakeID packs an origin node rank and per-node sequence number into a
// unique 64-bit record identifier.
func MakeID(node uint32, seq uint64) uint64 {
	if seq > MaxIDSeq {
		panic(fmt.Sprintf("records: sequence number %d exceeds %d", seq, uint64(MaxIDSeq)))
	}
	return uint64(node)<<idSeqBits | seq
}

// SplitID unpacks an identifier produced by MakeID.
func SplitID(id uint64) (node uint32, seq uint64) {
	return uint32(id >> idSeqBits), id & MaxIDSeq
}

// HasID reports whether records of this format have room for an identifier.
func (f Format) HasID() bool { return f.Size >= KeySize+8 }

// StampID writes id into the identifier slot of record rec.
// It panics if the format has no room for an identifier.
func (f Format) StampID(rec []byte, id uint64) {
	if !f.HasID() {
		panic("records: format too small to carry an identifier")
	}
	binary.BigEndian.PutUint64(rec[KeySize:KeySize+8], id)
}

// ID returns the identifier stamped on rec.
func (f Format) ID(rec []byte) uint64 {
	if !f.HasID() {
		panic("records: format too small to carry an identifier")
	}
	return binary.BigEndian.Uint64(rec[KeySize : KeySize+8])
}

// IDAt returns the identifier of record i within data.
func (f Format) IDAt(data []byte, i int) uint64 {
	return f.ID(f.At(data, i))
}

// Fingerprint returns an order-independent fingerprint of the records in
// data: a commutative mix of each record's key and identifier. Two byte
// streams that contain the same multiset of (key, id) pairs have equal
// fingerprints regardless of record order, so comparing the fingerprint of
// a sort's input against its output checks that the output is (with high
// probability) a permutation of the input.
func (f Format) Fingerprint(data []byte) Fingerprint {
	var fp Fingerprint
	n := f.Count(len(data))
	for i := 0; i < n; i++ {
		fp.Add(f.KeyAt(data, i), f.IDAt(data, i))
	}
	return fp
}

// A Fingerprint accumulates an order-independent digest of (key, id) pairs.
// The zero value is ready to use, and fingerprints of disjoint data combine
// with Merge.
type Fingerprint struct {
	Count uint64 // number of records folded in
	Sum   uint64 // commutative mixed sum
	Xor   uint64 // commutative mixed xor
}

// Add folds one (key, id) pair into the fingerprint.
func (fp *Fingerprint) Add(key, id uint64) {
	h := mix64(key*0x9e3779b97f4a7c15 ^ id)
	fp.Count++
	fp.Sum += h
	fp.Xor ^= h
}

// Merge folds another fingerprint into fp.
func (fp *Fingerprint) Merge(o Fingerprint) {
	fp.Count += o.Count
	fp.Sum += o.Sum
	fp.Xor ^= o.Xor
}

// Equal reports whether two fingerprints are identical.
func (fp Fingerprint) Equal(o Fingerprint) bool { return fp == o }

// String formats the fingerprint for diagnostics.
func (fp Fingerprint) String() string {
	return fmt.Sprintf("{n=%d sum=%#x xor=%#x}", fp.Count, fp.Sum, fp.Xor)
}

// mix64 is the SplitMix64 finalizer, a cheap strong 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
