// Package bench holds the benchmark harness that regenerates the paper's
// evaluation: one benchmark per figure cell and per in-text claim. Run
//
//	go test -bench=. -benchmem
//
// at the module root. Each iteration performs a complete sort of a fresh
// simulated cluster's data and verifies the output; the reported ns/op is
// the full sort's wall time under the calibrated latency models, so the
// ratios between benchmarks reproduce the shape of Figure 8. cmd/fgexp
// renders the same comparisons as the paper's stacked per-pass charts.
package bench

import (
	"fmt"
	"testing"

	"github.com/fg-go/fg/internal/harness"
	"github.com/fg-go/fg/workload"
)

// benchParams scales the experiment to keep a full `go test -bench=.`
// under a few minutes: 16 nodes, 2^18 records.
func benchParams(recordSize int) harness.Params {
	pr := harness.DefaultParams()
	pr.TotalRecords = 1 << 18
	pr.RecordSize = recordSize
	pr.ColumnsPerNode = 2 // keeps the columnsort matrix tall at bench scale
	return pr
}

// runSort is one benchmark body: repeat full verified sorts. One untimed
// warmup run absorbs allocator growth so the timed iterations are stable.
func runSort(b *testing.B, pr harness.Params, prog harness.Program, dist workload.Distribution, buffers int) {
	b.Helper()
	if _, err := pr.Run(prog, dist, buffers); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(pr.TotalRecords * int64(pr.RecordSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pr.Run(prog, dist, buffers)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Total().Nanoseconds()), "sim-ns/sort")
		}
	}
}

// BenchmarkFig8a reproduces Figure 8(a): dsort vs csort, 16-byte records,
// four key distributions.
func BenchmarkFig8a(b *testing.B) {
	pr := benchParams(16)
	for _, dist := range workload.Distributions {
		for _, prog := range []harness.Program{harness.Dsort, harness.Csort} {
			b.Run(fmt.Sprintf("%s/%s", sanitize(dist.String()), prog), func(b *testing.B) {
				runSort(b, pr, prog, dist, 0)
			})
		}
	}
}

// BenchmarkFig8b reproduces Figure 8(b): the same comparison with 64-byte
// records.
func BenchmarkFig8b(b *testing.B) {
	pr := benchParams(64)
	for _, dist := range workload.Distributions {
		for _, prog := range []harness.Program{harness.Dsort, harness.Csort} {
			b.Run(fmt.Sprintf("%s/%s", sanitize(dist.String()), prog), func(b *testing.B) {
				runSort(b, pr, prog, dist, 0)
			})
		}
	}
}

// BenchmarkSkew reproduces the in-text experiment on input distributions
// designed to elicit highly unbalanced communication in dsort's pass 1.
func BenchmarkSkew(b *testing.B) {
	pr := benchParams(16)
	for _, dist := range workload.SkewDistributions {
		for _, prog := range []harness.Program{harness.Dsort, harness.Csort} {
			b.Run(fmt.Sprintf("%s/%s", sanitize(dist.String()), prog), func(b *testing.B) {
				runSort(b, pr, prog, dist, 0)
			})
		}
	}
}

// BenchmarkLinearAblation reproduces the Section VIII question: dsort with
// FG's multiple pipelines versus dsort restricted to a single linear
// pipeline per node.
func BenchmarkLinearAblation(b *testing.B) {
	// The I/O-bound ablation calibration (see harness.AblationParams and
	// EXPERIMENTS.md): fewer simulated nodes so host compute does not mask
	// the latency hiding under test.
	pr := harness.AblationParams()
	for _, dist := range []workload.Distribution{workload.Uniform, workload.SkewOneNode} {
		for _, prog := range []harness.Program{harness.Dsort, harness.DsortLinear} {
			b.Run(fmt.Sprintf("%s/%s", sanitize(dist.String()), prog), func(b *testing.B) {
				runSort(b, pr, prog, dist, 0)
			})
		}
	}
}

// BenchmarkOverlap measures what FG's buffer pool buys: pool size 1
// serializes each pipeline's stages (no overlap), the default pool
// overlaps them.
func BenchmarkOverlap(b *testing.B) {
	pr := harness.AblationParams()
	for _, prog := range []harness.Program{harness.Dsort, harness.Csort} {
		for _, cfg := range []struct {
			name    string
			buffers int
		}{{"pipelined", 0}, {"serialized", 1}} {
			b.Run(fmt.Sprintf("%s/%s", prog, cfg.name), func(b *testing.B) {
				runSort(b, pr, prog, workload.Uniform, cfg.buffers)
			})
		}
	}
}

// BenchmarkIntraBufferParallelism measures what the multicore compute
// kernels buy end to end: the same Figure-8 uniform cells with the
// Parallelism knob left at all-cores ("parallel") versus pinned to the
// serial kernels ("serial"). On a multicore host the parallel rows shrink
// the synchronous sort/permute/merge stages that the pipelines cannot
// hide; on a single-core host the knob resolves to the serial paths and
// the rows coincide. Kernel-level speedups are isolated in
// internal/sortalgo's BenchmarkKernel* pairs.
func BenchmarkIntraBufferParallelism(b *testing.B) {
	for _, mode := range []struct {
		name        string
		parallelism int
	}{{"parallel", 0}, {"serial", 1}} {
		pr := benchParams(16)
		pr.Parallelism = mode.parallelism
		for _, prog := range []harness.Program{harness.Dsort, harness.Csort} {
			b.Run(fmt.Sprintf("%s/%s", prog, mode.name), func(b *testing.B) {
				runSort(b, pr, prog, workload.Uniform, 0)
			})
		}
	}
}

// BenchmarkPassCoalescing reproduces the Section III observation: the
// three-pass csort against the four-pass implementation it coalesced.
func BenchmarkPassCoalescing(b *testing.B) {
	pr := benchParams(16)
	for _, prog := range []harness.Program{harness.Csort, harness.Csort4} {
		b.Run(string(prog), func(b *testing.B) {
			runSort(b, pr, prog, workload.Uniform, 0)
		})
	}
}

// BenchmarkIOVolume reports the disk traffic of both programs as ancillary
// metrics (bytes moved per data byte), reproducing the claim that csort
// performs roughly 50% more disk I/O.
func BenchmarkIOVolume(b *testing.B) {
	pr := benchParams(16)
	data := float64(pr.TotalRecords * int64(pr.RecordSize))
	for _, prog := range []harness.Program{harness.Dsort, harness.Csort} {
		b.Run(string(prog), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := pr.Run(prog, workload.Uniform, 0)
				if err != nil {
					b.Fatal(err)
				}
				last = float64(res.Disk.TotalBytes())
			}
			b.ReportMetric(last/data, "diskbytes/databyte")
		})
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '-'
		}
		out = append(out, r)
	}
	return string(out)
}
