// Package mergetree implements a tournament (winner) tree for multiway
// merging: given k input streams, it reports in O(log k) per record which
// stream currently holds the smallest key. dsort's merge stage uses it to
// choose, among the buffers it has accepted along its vertical pipelines,
// "the smallest value not yet chosen" (paper, Section IV).
package mergetree

import "math"

// closedKey orders after every real key; closed leaves also carry a flag so
// a real MaxUint64 key is still distinguishable.
const closedKey = math.MaxUint64

// A Tree tracks the minimum key across k leaves. Leaves start closed; open
// them with Set and retire them with Close. Not safe for concurrent use —
// a merge stage is a single thread, per FG's model.
type Tree struct {
	k      int
	leaves int // power of two >= k
	keys   []uint64
	open   []bool
	// node v of the internal tree holds the leaf index winning the
	// tournament over its subtree; node 1 is the root.
	winner []int
}

// New creates a tree over k leaves, all initially closed.
func New(k int) *Tree {
	if k < 1 {
		panic("mergetree: need at least one leaf")
	}
	leaves := 1
	for leaves < k {
		leaves *= 2
	}
	t := &Tree{
		k:      k,
		leaves: leaves,
		keys:   make([]uint64, leaves),
		open:   make([]bool, leaves),
		winner: make([]int, 2*leaves),
	}
	for i := range t.keys {
		t.keys[i] = closedKey
	}
	for v := range t.winner {
		t.winner[v] = -1
	}
	// Build the initial (all-closed) tournament.
	for i := 0; i < leaves; i++ {
		t.winner[leaves+i] = i
	}
	for v := leaves - 1; v >= 1; v-- {
		t.winner[v] = t.playoff(t.winner[2*v], t.winner[2*v+1])
	}
	return t
}

// K returns the number of leaves.
func (t *Tree) K() int { return t.k }

// playoff returns the winning (smaller-key) leaf of two contestants.
// Closed leaves lose to open ones; ties go to the lower index, making the
// merge deterministic.
func (t *Tree) playoff(a, b int) int {
	ao, bo := t.open[a], t.open[b]
	switch {
	case ao && !bo:
		return a
	case bo && !ao:
		return b
	case !ao && !bo:
		if a < b {
			return a
		}
		return b
	}
	if t.keys[b] < t.keys[a] || (t.keys[a] == t.keys[b] && b < a) {
		return b
	}
	return a
}

// replay recomputes the tournament along leaf i's path to the root.
func (t *Tree) replay(i int) {
	v := (t.leaves + i) / 2
	for v >= 1 {
		t.winner[v] = t.playoff(t.winner[2*v], t.winner[2*v+1])
		v /= 2
	}
}

// Set opens leaf i (if closed) and gives it the key of its stream's current
// record. Call it again whenever the stream advances.
func (t *Tree) Set(i int, key uint64) {
	t.checkLeaf(i)
	t.keys[i] = key
	t.open[i] = true
	t.replay(i)
}

// Close retires leaf i: its stream is exhausted.
func (t *Tree) Close(i int) {
	t.checkLeaf(i)
	t.open[i] = false
	t.keys[i] = closedKey
	t.replay(i)
}

// IsOpen reports whether leaf i currently competes.
func (t *Tree) IsOpen(i int) bool {
	t.checkLeaf(i)
	return t.open[i]
}

// Min returns the leaf holding the smallest key and that key. ok is false
// when every leaf is closed.
func (t *Tree) Min() (leaf int, key uint64, ok bool) {
	w := t.winner[1]
	if w < 0 || !t.open[w] {
		return 0, 0, false
	}
	return w, t.keys[w], true
}

func (t *Tree) checkLeaf(i int) {
	if i < 0 || i >= t.k {
		panic("mergetree: leaf index out of range")
	}
}
