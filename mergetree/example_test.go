package mergetree_test

import (
	"fmt"

	"github.com/fg-go/fg/mergetree"
)

// Merging three sorted streams: the tree always names the stream holding
// the smallest current key.
func Example() {
	streams := [][]uint64{
		{1, 5, 9},
		{2, 3, 8},
		{4, 6, 7},
	}
	pos := make([]int, len(streams))
	t := mergetree.New(len(streams))
	for i, s := range streams {
		t.Set(i, s[0])
	}
	for {
		i, key, ok := t.Min()
		if !ok {
			break
		}
		fmt.Print(key, " ")
		pos[i]++
		if pos[i] < len(streams[i]) {
			t.Set(i, streams[i][pos[i]])
		} else {
			t.Close(i)
		}
	}
	fmt.Println()
	// Output:
	// 1 2 3 4 5 6 7 8 9
}
