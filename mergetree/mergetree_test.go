package mergetree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnZeroLeaves(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAllClosedInitially(t *testing.T) {
	tr := New(5)
	if _, _, ok := tr.Min(); ok {
		t.Fatal("fresh tree reports an open minimum")
	}
	for i := 0; i < 5; i++ {
		if tr.IsOpen(i) {
			t.Errorf("leaf %d open at start", i)
		}
	}
}

func TestSingleLeaf(t *testing.T) {
	tr := New(1)
	tr.Set(0, 99)
	leaf, key, ok := tr.Min()
	if !ok || leaf != 0 || key != 99 {
		t.Fatalf("Min = (%d, %d, %v)", leaf, key, ok)
	}
	tr.Close(0)
	if _, _, ok := tr.Min(); ok {
		t.Fatal("closed tree reports a minimum")
	}
}

func TestMinTracksSmallest(t *testing.T) {
	tr := New(4)
	tr.Set(0, 30)
	tr.Set(1, 10)
	tr.Set(2, 20)
	if leaf, key, _ := tr.Min(); leaf != 1 || key != 10 {
		t.Fatalf("Min = (%d, %d), want (1, 10)", leaf, key)
	}
	tr.Set(1, 50) // stream 1 advanced past the others
	if leaf, key, _ := tr.Min(); leaf != 2 || key != 20 {
		t.Fatalf("after advance Min = (%d, %d), want (2, 20)", leaf, key)
	}
	tr.Close(2)
	if leaf, _, _ := tr.Min(); leaf != 0 {
		t.Fatalf("after close Min leaf = %d, want 0", leaf)
	}
}

func TestTiesGoToLowestLeaf(t *testing.T) {
	tr := New(6)
	tr.Set(4, 7)
	tr.Set(2, 7)
	tr.Set(5, 7)
	if leaf, _, _ := tr.Min(); leaf != 2 {
		t.Fatalf("tie broken toward leaf %d, want 2", leaf)
	}
}

func TestMaxKeyStillMerges(t *testing.T) {
	// An open leaf holding MaxUint64 must still be reported.
	tr := New(2)
	tr.Set(0, ^uint64(0))
	leaf, key, ok := tr.Min()
	if !ok || leaf != 0 || key != ^uint64(0) {
		t.Fatalf("Min = (%d, %#x, %v)", leaf, key, ok)
	}
}

func TestLeafRangeChecked(t *testing.T) {
	tr := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Set did not panic")
		}
	}()
	tr.Set(3, 1)
}

// mergeWithTree drains k sorted streams through a Tree and returns the
// merged sequence.
func mergeWithTree(streams [][]uint64) []uint64 {
	tr := New(len(streams))
	pos := make([]int, len(streams))
	for i, s := range streams {
		if len(s) > 0 {
			tr.Set(i, s[0])
		}
	}
	var out []uint64
	for {
		i, key, ok := tr.Min()
		if !ok {
			return out
		}
		out = append(out, key)
		pos[i]++
		if pos[i] < len(streams[i]) {
			tr.Set(i, streams[i][pos[i]])
		} else {
			tr.Close(i)
		}
	}
}

func TestFullMergeVariousK(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, k := range []int{1, 2, 3, 7, 8, 9, 100, 257} {
		streams := make([][]uint64, k)
		var all []uint64
		for i := range streams {
			n := rng.Intn(50)
			for j := 0; j < n; j++ {
				v := uint64(rng.Intn(1000))
				streams[i] = append(streams[i], v)
				all = append(all, v)
			}
			sort.Slice(streams[i], func(a, b int) bool { return streams[i][a] < streams[i][b] })
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		got := mergeWithTree(streams)
		if len(got) != len(all) {
			t.Fatalf("k=%d: merged %d values, want %d", k, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("k=%d: position %d = %d, want %d", k, i, got[i], all[i])
			}
		}
	}
}

func TestMergeQuick(t *testing.T) {
	fn := func(raw [][]uint8) bool {
		if len(raw) == 0 {
			return true
		}
		streams := make([][]uint64, len(raw))
		var all []uint64
		for i, r := range raw {
			for _, v := range r {
				streams[i] = append(streams[i], uint64(v))
				all = append(all, uint64(v))
			}
			sort.Slice(streams[i], func(a, b int) bool { return streams[i][a] < streams[i][b] })
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		got := mergeWithTree(streams)
		if len(got) != len(all) {
			return false
		}
		for i := range got {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReopenAfterClose(t *testing.T) {
	tr := New(3)
	tr.Set(0, 5)
	tr.Close(0)
	tr.Set(0, 8)
	if leaf, key, ok := tr.Min(); !ok || leaf != 0 || key != 8 {
		t.Fatalf("reopened leaf not reported: (%d, %d, %v)", leaf, key, ok)
	}
}
