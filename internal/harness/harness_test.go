package harness

import (
	"strings"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/dsort"
	"github.com/fg-go/fg/pdm"
	"github.com/fg-go/fg/workload"
)

// tinyParams runs fast enough for unit tests: 4 nodes, 2^12 records, cheap
// but non-zero latency models so timings are meaningful.
func tinyParams() Params {
	return Params{
		Nodes:          4,
		TotalRecords:   1 << 12,
		RecordSize:     16,
		ColumnsPerNode: 2,
		Seed:           7,
		Disk:           pdm.DiskModel{SeekLatency: 50 * time.Microsecond, BytesPerSecond: 200e6},
		Network:        cluster.NetworkModel{Latency: 10 * time.Microsecond, BytesPerSecond: 500e6},
		Verify:         true,
	}
}

func TestSpecGeometry(t *testing.T) {
	pr := tinyParams()
	spec, err := pr.Spec(workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	// One PDM block = one csort column.
	if spec.RecordsPerBlock != int(pr.TotalRecords)/(pr.Nodes*pr.ColumnsPerNode) {
		t.Errorf("block = %d records", spec.RecordsPerBlock)
	}
	pr.TotalRecords = 1001 // not divisible into 8 columns
	if _, err := pr.Spec(workload.Uniform); err == nil {
		t.Error("indivisible geometry accepted")
	}
}

func TestRunAllProgramsVerified(t *testing.T) {
	pr := tinyParams()
	for _, prog := range []Program{Dsort, Csort, Csort4, DsortLinear} {
		res, err := pr.Run(prog, workload.Poisson, 0)
		if err != nil {
			t.Fatalf("%s: %v", prog, err)
		}
		if res.Total() <= 0 {
			t.Errorf("%s reports non-positive total time", prog)
		}
		if res.Disk.TotalBytes() == 0 {
			t.Errorf("%s reports zero disk traffic", prog)
		}
	}
}

func TestRunUnknownProgram(t *testing.T) {
	pr := tinyParams()
	if _, err := pr.Run(Program("qsort"), workload.Uniform, 0); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestFigure8CellsAndFormat(t *testing.T) {
	pr := tinyParams()
	cells, err := pr.Figure8([]workload.Distribution{workload.Uniform}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("%d cells", len(cells))
	}
	c := cells[0]
	if c.Ratio() <= 0 {
		t.Error("ratio not positive")
	}
	if len(c.Dsort.Passes) != 3 || len(c.Csort.Passes) != 3 {
		t.Errorf("pass counts: dsort %d, csort %d", len(c.Dsort.Passes), len(c.Csort.Passes))
	}
	table := FormatFigure8("test", cells)
	if !strings.Contains(table, "uniform") || !strings.Contains(table, "%") {
		t.Errorf("table missing fields:\n%s", table)
	}
}

func TestCsortMovesFiftyPercentMoreIO(t *testing.T) {
	pr := tinyParams()
	d, err := pr.Run(Dsort, workload.Uniform, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := pr.Run(Csort, workload.Uniform, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(cs.Disk.TotalBytes()) / float64(d.Disk.TotalBytes())
	// csort: 6x data volume; dsort: 4x plus sampling. Expect ~1.5.
	if ratio < 1.40 || ratio > 1.55 {
		t.Errorf("csort/dsort I/O ratio = %.3f, want ~1.5", ratio)
	}
}

func TestAverageSmoothsTrials(t *testing.T) {
	pr := tinyParams()
	res, err := pr.average(Dsort, workload.Uniform, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passes) != 3 {
		t.Fatalf("averaged result has %d passes", len(res.Passes))
	}
}

func TestWarmupRuns(t *testing.T) {
	pr := tinyParams()
	pr.TotalRecords = 1 << 13 // /8 leaves a tall enough matrix at cpn=1
	if err := pr.Warmup(); err != nil {
		t.Fatalf("warmup failed: %v", err)
	}
}

func TestAblationParamsAreValid(t *testing.T) {
	pr := AblationParams()
	if _, err := pr.Spec(workload.Uniform); err != nil {
		t.Fatalf("ablation params produce invalid spec: %v", err)
	}
	if pr.Nodes >= DefaultParams().Nodes {
		t.Error("ablation calibration should use fewer nodes than the default")
	}
}

func TestBalanceHelper(t *testing.T) {
	pr := tinyParams()
	b, err := pr.Balance(workload.AllEqual, 32)
	if err != nil {
		t.Fatal(err)
	}
	if b < 1.0 || b > 1.3 {
		t.Errorf("balance = %.3f; expected near 1.0 for all-equal keys", b)
	}
}

func TestCsort4RunsUnderHarness(t *testing.T) {
	pr := tinyParams()
	res, err := pr.Run(Csort4, workload.Uniform, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passes) != 4 {
		t.Errorf("csort4 reports %d passes", len(res.Passes))
	}
}

func TestRunDsortWith(t *testing.T) {
	pr := tinyParams()
	res, err := pr.RunDsortWith(workload.Uniform, func(cfg *dsort.Config) {
		cfg.RunRecords = 128
		cfg.MergeRecords = 32
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passes) != 3 {
		t.Errorf("custom dsort reports %d phases", len(res.Passes))
	}
}
