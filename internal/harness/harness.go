// Package harness drives the paper's experiments: it builds simulated
// clusters, generates inputs, runs the sorting programs, verifies their
// output, and formats the comparisons that Figure 8 and the in-text claims
// report.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/colsort"
	"github.com/fg-go/fg/dsort"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/internal/splitter"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/pdm"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/supervise"
	"github.com/fg-go/fg/workload"
)

// Params fixes the machine and workload scale of an experiment, standing in
// for the paper's 16-node Beowulf cluster sorting 64 GB.
type Params struct {
	Nodes          int
	TotalRecords   int64
	RecordSize     int
	ColumnsPerNode int // csort geometry; also fixes the PDM block (one column)
	Seed           int64
	Disk           pdm.DiskModel
	Network        cluster.NetworkModel
	Verify         bool

	// Parallelism is handed to every program's config as its intra-buffer
	// parallelism knob (dsort.Config.Parallelism, colsort.Plan.Parallelism):
	// 0 uses all cores, 1 pins the compute kernels to their serial paths.
	// The serial-vs-parallel end-to-end benchmarks flip this and nothing
	// else.
	Parallelism int

	// AutoTune is handed to every program's config
	// (dsort.Config.AutoTune, colsort.Plan.AutoTune): when enabled, a
	// run-time tuner adjusts the compute stages' worker counts and each
	// pipeline's circulating buffers, with Parallelism as the starting
	// point. The zero value keeps the static knobs.
	AutoTune fg.AutoTune

	// Observe, if non-nil, is handed to every program's config, so all of a
	// run's networks share one trace timeline and metrics registry. When it
	// carries a Tracer, the harness additionally records every node's
	// blocking cluster communication as comm events on that timeline, and
	// when it carries a Metrics registry, the cluster's per-node traffic
	// counters are registered with it.
	Observe *fg.Observe

	// Transport selects the cluster transport. The zero value keeps the
	// in-process backend; Kind "tcp" moves inter-rank messages over real
	// sockets, and with Peers set the run spans OS processes — each process
	// hosts Rank, generates that rank's input share, runs that rank's
	// program, and takes part in a distributed verification instead of
	// reading every disk locally.
	Transport cluster.TransportConfig

	// OnCluster, if non-nil, is called with each freshly built cluster
	// before the program runs — the hook chaos tests use to install
	// network fault injectors (cluster.SetNetFault).
	OnCluster func(*cluster.Cluster)

	// Health enables heartbeat failure detection on every cluster the
	// harness builds: a peer silent past the dead threshold aborts the job
	// with cluster.ErrPeerDead instead of stalling it. The zero value
	// disables detection.
	Health cluster.HealthConfig

	// CheckpointDir, if non-empty, roots a fg.DirCheckpoint there and
	// hands it to every program run, so completed passes are saved and a
	// restarted run resumes at the last pass boundary every rank
	// checkpointed. The directory must be shared by all processes of a
	// multi-process job (same path on one machine, for the loopback TCP
	// jobs the tests run).
	CheckpointDir string

	// Telemetry, when Interval > 0, starts the cluster telemetry plane on
	// every cluster the harness builds: each local rank publishes a
	// RankTelemetry record per interval toward the aggregator rank, and
	// pull requests for black boxes and profiles are served. When Collect
	// and Blackbox are unset, the harness fills them from Observe — stage
	// taxonomy, pool occupancy, and knob positions from the metrics
	// registry, stall reports from the watchdog, the flight recorder as
	// the black box. The zero value disables the plane.
	Telemetry cluster.TelemetryConfig

	// OnTelemetry, if non-nil, receives each freshly started telemetry
	// plane — the hook the fleet-view HTTP server
	// (ClusterTelemetry.SetPlane) uses to follow the current cluster.
	OnTelemetry func(*cluster.Telemetry)

	// Supervise, if greater than 1, wraps each Run in supervise.Run with
	// that many total attempts: a run that dies retryably (peer death,
	// abort, comm error) is torn down, backed off, rebuilt, and resumed
	// from checkpoints. 0 or 1 runs the program exactly once, as before.
	Supervise int

	// SuperviseLog, if non-nil, receives the supervisor's per-attempt
	// progress lines.
	SuperviseLog io.Writer

	// OnSuperviseReport, if non-nil, receives the supervisor's structured
	// report when a supervised Run (Supervise > 1) concludes — the soak
	// harness reads attempt counts and per-attempt errors from it instead
	// of scraping the log.
	OnSuperviseReport func(supervise.Report)
}

// ensureTelemetryObserve gives a telemetry-armed run a metrics registry
// when it has none: the fleet collector reads stage taxonomy out of
// Observe.Metrics, so without one a rank's records would carry comm
// counters but no stages and the fleet view could never name its
// bottleneck. The receiver is a value, so the patched bundle is local to
// this run; a caller-supplied bundle is shallow-copied, never mutated.
func (pr *Params) ensureTelemetryObserve() {
	if pr.Telemetry.Interval <= 0 || (pr.Observe != nil && pr.Observe.Metrics != nil) {
		return
	}
	o := fg.Observe{}
	if pr.Observe != nil {
		o = *pr.Observe
	}
	o.Metrics = fg.NewMetricsRegistry()
	pr.Observe = &o
}

// instrument wires the Observe bundle into a freshly built cluster. The
// returned detach function removes the per-node communication observers;
// call it when the run is over so a long-lived tracer is not fed by a dead
// cluster.
func (pr Params) instrument(c *cluster.Cluster) func() {
	o := pr.Observe
	detachTelemetry := pr.startTelemetry(c)
	if o == nil {
		return detachTelemetry
	}
	if o.Metrics != nil {
		o.Metrics.RegisterFunc(func(emit fg.EmitFunc) { c.EmitMetrics(emit) })
		o.Metrics.RegisterPeerHealth(func() []fg.PeerHealth {
			ps := c.PeerHealth()
			if len(ps) == 0 {
				return nil
			}
			now := time.Now()
			out := make([]fg.PeerHealth, len(ps))
			for i, p := range ps {
				out[i] = fg.PeerHealth{
					Rank:        p.Rank,
					LastSeenAge: now.Sub(p.LastSeen),
					Monitored:   p.Monitored,
					Suspect:     p.Suspect,
					Dead:        p.Dead,
				}
			}
			return out
		})
		prevDetach := detachTelemetry
		detachTelemetry = func() {
			o.Metrics.RegisterPeerHealth(nil)
			prevDetach()
		}
	}
	tr := o.Tracer
	fr := o.Flight
	if tr == nil && fr == nil {
		return detachTelemetry
	}
	for _, n := range c.Local() {
		pipe := fmt.Sprintf("node%d", n.Rank())
		n.SetCommObserver(func(op string, peer, nbytes int, xfer int64, start, end time.Time) {
			e := fg.Event{
				Stage:    "comm." + op,
				Pipeline: pipe,
				Kind:     fg.EventComm,
				Round:    -1,
				Bytes:    int64(nbytes),
				Xfer:     xfer,
			}
			if tr != nil {
				e.Start, e.End = tr.Span(start, end)
				tr.Record(e)
			}
			if fr != nil {
				e.Start, e.End = fr.Span(start, end)
				fr.Record(e)
			}
		})
	}
	return func() {
		for _, n := range c.Local() {
			n.SetCommObserver(nil)
		}
		detachTelemetry()
	}
}

// startTelemetry starts the cluster's telemetry plane when Params asks for
// one, filling the fg-side callbacks from Observe. The returned detach
// function unhooks the collector's watchdog and completion wrappers (the
// plane itself stops with the cluster's Close). Telemetry is best-effort
// by contract, so a plane that fails to start degrades to staleness at the
// aggregator rather than failing the run.
func (pr Params) startTelemetry(c *cluster.Cluster) func() {
	if pr.Telemetry.Interval <= 0 {
		return func() {}
	}
	cfg := pr.Telemetry
	detach := func() {}
	if cfg.Collect == nil {
		fc := newFleetCollector(pr.Observe)
		cfg.Collect = fc.collectFor(c)
		if cfg.Blackbox == nil {
			cfg.Blackbox = fc.blackbox()
		}
		detach = fc.restore
	}
	t, err := c.StartTelemetry(cfg)
	if err == nil && t != nil && pr.OnTelemetry != nil {
		pr.OnTelemetry(t)
	}
	return detach
}

// DefaultParams mirrors the paper's machine at laptop scale: 16 nodes and
// 2^20 records. The disk and network rates are scaled down along with the
// dataset (the paper sorted 64 GB on ~50 MB/s disks and 2 Gb/s Myrinet) so
// that the simulated cluster stays I/O- and communication-bound, as the
// real testbed was; with full-rate models a laptop-sized dataset would be
// compute-bound and the pass structure would not dominate the timings.
func DefaultParams() Params {
	return Params{
		Nodes:          16,
		TotalRecords:   1 << 20,
		RecordSize:     16,
		ColumnsPerNode: 4,
		Seed:           1,
		Disk:           pdm.DiskModel{SeekLatency: 200 * time.Microsecond, BytesPerSecond: 10e6},
		Network:        cluster.NetworkModel{Latency: 30 * time.Microsecond, BytesPerSecond: 50e6},
		Verify:         true,
	}
}

// Warmup runs each program once at reduced scale, unverified and
// untimed, so a process's first measured run does not absorb allocator and
// scheduler warmup.
func (pr Params) Warmup() error {
	pr.TotalRecords /= 8
	pr.ColumnsPerNode = 1 // keep the columnsort matrix tall at reduced N
	pr.Verify = false
	for _, prog := range []Program{Dsort, Csort} {
		if _, err := pr.Run(prog, workload.Uniform, 0); err != nil {
			return err
		}
	}
	return nil
}

// Spec builds the job specification for a distribution under these params.
// The PDM block is one csort column so both programs emit identical striped
// layouts.
func (pr Params) Spec(dist workload.Distribution) (oocsort.Spec, error) {
	s := oocsort.DefaultSpec()
	s.Format = records.NewFormat(pr.RecordSize)
	s.TotalRecords = pr.TotalRecords
	s.Distribution = dist
	s.Seed = pr.Seed
	cols := int64(pr.Nodes * pr.ColumnsPerNode)
	if pr.TotalRecords%cols != 0 {
		return s, fmt.Errorf("harness: %d records do not divide into %d columns", pr.TotalRecords, cols)
	}
	s.RecordsPerBlock = int(pr.TotalRecords / cols)
	return s, nil
}

// NewCluster builds a fresh cluster for one run on the configured
// transport. Close it when the run is over.
func (pr Params) NewCluster() (*cluster.Cluster, error) {
	return cluster.Open(cluster.Config{
		Nodes:     pr.Nodes,
		Disk:      pr.Disk,
		Network:   pr.Network,
		Transport: pr.Transport,
		Health:    pr.Health,
	})
}

// checkpoint opens the configured checkpoint store, or returns nil when
// checkpointing is off.
func (pr Params) checkpoint() (fg.Checkpoint, error) {
	if pr.CheckpointDir == "" {
		return nil, nil
	}
	return fg.NewDirCheckpoint(pr.CheckpointDir)
}

// Program identifies a sorting program the harness can run.
type Program string

const (
	Dsort       Program = "dsort"
	Csort       Program = "csort"
	Csort4      Program = "csort4"
	DsortLinear Program = "dsort-linear"
)

// Run executes one program on a fresh cluster under the given distribution
// and returns node 0's result (barriers make it cluster-representative),
// with traffic totals attached. buffers <= 0 selects each program's
// default pool size. With Supervise > 1 the run is driven by the job
// supervisor: a retryable failure tears the cluster down and a fresh
// attempt resumes from the checkpoints in CheckpointDir.
func (pr Params) Run(prog Program, dist workload.Distribution, buffers int) (oocsort.Result, error) {
	if pr.Supervise <= 1 {
		return pr.runOnce(prog, dist, buffers)
	}
	var res oocsort.Result
	rep := supervise.Run(supervise.Job{
		Name: fmt.Sprintf("%s/%v", prog, dist),
		Run: func(int) ([]string, error) {
			var err error
			res, err = pr.runOnce(prog, dist, buffers)
			return res.Resumed, err
		},
	}, supervise.Policy{
		MaxAttempts: pr.Supervise,
		Observe:     pr.Observe,
		Log:         pr.SuperviseLog,
	})
	if pr.OnSuperviseReport != nil {
		pr.OnSuperviseReport(rep)
	}
	return res, rep.Err
}

// runOnce is one unsupervised attempt: fresh cluster, input, program,
// verification, teardown.
func (pr Params) runOnce(prog Program, dist workload.Distribution, buffers int) (oocsort.Result, error) {
	pr.ensureTelemetryObserve()
	spec, err := pr.Spec(dist)
	if err != nil {
		return oocsort.Result{}, err
	}
	ck, err := pr.checkpoint()
	if err != nil {
		return oocsort.Result{}, err
	}
	// Collect garbage left by earlier runs before the timed region so one
	// experiment's heap does not tax the next one's pass timings.
	runtime.GC()
	c, err := pr.NewCluster()
	if err != nil {
		return oocsort.Result{}, err
	}
	defer c.Close()
	if pr.OnCluster != nil {
		pr.OnCluster(c)
	}
	fp, err := oocsort.GenerateInput(c, spec)
	if err != nil {
		return oocsort.Result{}, err
	}
	oocsort.CollectDiskStats(c)
	oocsort.CollectCommStats(c)
	detach := pr.instrument(c)
	defer detach()

	results := make([]oocsort.Result, pr.Nodes)
	err = c.Run(func(n *cluster.Node) error {
		var res oocsort.Result
		var err error
		switch prog {
		case Dsort:
			cfg := dsort.DefaultConfig(spec, pr.Nodes)
			cfg.Parallelism = pr.Parallelism
			cfg.AutoTune = pr.AutoTune
			cfg.Observe = pr.Observe
			cfg.Checkpoint = ck
			if buffers > 0 {
				cfg.Buffers = buffers
			}
			res, err = dsort.Run(n, cfg)
		case DsortLinear:
			cfg := dsort.DefaultConfig(spec, pr.Nodes)
			cfg.Parallelism = pr.Parallelism
			cfg.AutoTune = pr.AutoTune
			cfg.Observe = pr.Observe
			if buffers > 0 {
				cfg.Buffers = buffers
			}
			res, err = dsort.RunLinear(n, cfg)
		case Csort, Csort4:
			pl, perr := colsort.NewPlan(spec, pr.Nodes, pr.ColumnsPerNode)
			if perr != nil {
				return perr
			}
			pl.Parallelism = pr.Parallelism
			pl.AutoTune = pr.AutoTune
			pl.Observe = pr.Observe
			pl.Checkpoint = ck
			b := colsort.DefaultPipelineBuffers
			if buffers > 0 {
				b = buffers
			}
			if prog == Csort4 {
				res, err = colsort.RunFourPassBuffers(n, pl, b)
			} else {
				res, err = colsort.RunBuffers(n, pl, b)
			}
		default:
			return fmt.Errorf("harness: unknown program %q", prog)
		}
		results[n.Rank()] = res
		return err
	})
	if err != nil {
		return oocsort.Result{}, err
	}
	if pr.Verify {
		if err := pr.verify(c, spec, fp); err != nil {
			return oocsort.Result{}, fmt.Errorf("harness: %s on %v: %w", prog, dist, err)
		}
	}
	res := results[c.Local()[0].Rank()]
	res.Disk = oocsort.CollectDiskStats(c)
	res.Comm = oocsort.CollectCommStats(c)
	return res, nil
}

// verify checks the sorted output: directly when every rank's disk is in
// this process, collectively (check.DistributedOutput) when the job spans
// processes.
func (pr Params) verify(c *cluster.Cluster, spec oocsort.Spec, fp records.Fingerprint) error {
	if c.AllLocal() {
		return check.Output(c, spec, fp)
	}
	return c.Run(func(n *cluster.Node) error {
		return check.DistributedOutput(n, spec, fp)
	})
}

// Cell is one column pair of Figure 8: dsort and csort on one distribution.
type Cell struct {
	Dist  workload.Distribution
	Dsort oocsort.Result
	Csort oocsort.Result
}

// Ratio returns dsort's total time as a fraction of csort's.
func (c Cell) Ratio() float64 {
	if c.Csort.Total() == 0 {
		return 0
	}
	return float64(c.Dsort.Total()) / float64(c.Csort.Total())
}

// Figure8 runs dsort and csort on every distribution in dists (averaging
// `trials` runs of each, as the paper averages three) and returns one cell
// per distribution.
func (pr Params) Figure8(dists []workload.Distribution, trials int) ([]Cell, error) {
	if trials < 1 {
		trials = 1
	}
	var cells []Cell
	for _, dist := range dists {
		d, err := pr.average(Dsort, dist, trials)
		if err != nil {
			return nil, err
		}
		cs, err := pr.average(Csort, dist, trials)
		if err != nil {
			return nil, err
		}
		cells = append(cells, Cell{Dist: dist, Dsort: d, Csort: cs})
	}
	return cells, nil
}

// average runs a program several times and averages its pass durations.
func (pr Params) average(prog Program, dist workload.Distribution, trials int) (oocsort.Result, error) {
	var acc oocsort.Result
	for t := 0; t < trials; t++ {
		res, err := pr.Run(prog, dist, 0)
		if err != nil {
			return acc, err
		}
		if t == 0 {
			acc = res
			continue
		}
		for i := range acc.Passes {
			acc.Passes[i].Duration += res.Passes[i].Duration
		}
		acc.Disk.Add(res.Disk)
	}
	for i := range acc.Passes {
		acc.Passes[i].Duration /= time.Duration(trials)
	}
	return acc, nil
}

// FormatFigure8 renders cells as the stacked per-pass table of Figure 8.
func FormatFigure8(title string, cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s  %-28s  %-28s  %s\n", "distribution", "dsort (per pass)", "csort (per pass)", "dsort/csort")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-16s  %-28s  %-28s  %6.2f%%\n",
			c.Dist, passStack(c.Dsort), passStack(c.Csort), 100*c.Ratio())
	}
	return b.String()
}

func passStack(r oocsort.Result) string {
	parts := make([]string, 0, len(r.Passes)+1)
	for _, p := range r.Passes {
		parts = append(parts, fmt.Sprintf("%s=%s", strings.TrimPrefix(p.Name, "pass"), fmtDur(p.Duration)))
	}
	return fmt.Sprintf("%s (%s)", fmtDur(r.Total()), strings.Join(parts, " "))
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// AblationParams returns the machine calibration for the overlap and
// single-linear-pipeline ablations: fewer simulated nodes and slower
// devices, so that — even with all simulated nodes sharing the host's
// cores — per-node disk, network, and compute costs are comparable and
// the latency hiding under test is what dominates the wall clock, as it
// did on the paper's testbed. The Figure 8 calibration aims instead at
// faithful dsort/csort pass ratios at 16 nodes.
func AblationParams() Params {
	pr := DefaultParams()
	pr.Nodes = 4
	pr.TotalRecords = 1 << 18
	pr.ColumnsPerNode = 2
	pr.Disk = pdm.DiskModel{SeekLatency: 500 * time.Microsecond, BytesPerSecond: 5e6}
	pr.Network = cluster.NetworkModel{Latency: 100 * time.Microsecond, BytesPerSecond: 8e6}
	return pr
}

// Balance reports the partition balance the splitter phase achieves for a
// distribution: the largest partition as a multiple of the average (1.0 is
// perfect). It reproduces the Section V claim that oversampling plus
// extended keys keeps every partition within 10% of the average.
func (pr Params) Balance(dist workload.Distribution, oversample int) (float64, error) {
	spec, err := pr.Spec(dist)
	if err != nil {
		return 0, err
	}
	perNode := int(spec.PerNode(pr.Nodes))
	keys := make([][]uint64, pr.Nodes)
	for n := range keys {
		g := workload.NewGenerator(spec.Format, dist, spec.Seed, uint32(n))
		keys[n] = make([]uint64, perNode)
		for i := range keys[n] {
			keys[n][i] = g.NextKey()
		}
	}
	c := cluster.New(cluster.Config{Nodes: pr.Nodes})
	counts := make([]int64, pr.Nodes)
	countMu := make(chan struct{}, 1)
	countMu <- struct{}{}
	err = c.Run(func(node *cluster.Node) error {
		comm := node.Comm("balance")
		mine := keys[node.Rank()]
		sp, err := splitter.Select(comm, int64(len(mine)), func(idx int64) (uint64, error) {
			return mine[idx], nil
		}, oversample, spec.Seed)
		if err != nil {
			return err
		}
		local := make([]int64, pr.Nodes)
		for i, k := range mine {
			e := records.ExtKey{Key: k, Node: uint32(node.Rank()), Seq: uint64(i)}
			local[splitter.Partition(sp, e)]++
		}
		<-countMu
		for d, v := range local {
			counts[d] += v
		}
		countMu <- struct{}{}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var max int64
	for _, v := range counts {
		if v > max {
			max = v
		}
	}
	avg := float64(pr.TotalRecords) / float64(pr.Nodes)
	return float64(max) / avg, nil
}

// RunDsortWith runs dsort with a configuration derived from the default by
// mutate, on a fresh verified cluster. The buffer-size sensitivity
// experiment uses it to reproduce the paper's methodological note that all
// reported results use "the best choices of buffer sizes".
func (pr Params) RunDsortWith(dist workload.Distribution, mutate func(*dsort.Config)) (oocsort.Result, error) {
	pr.ensureTelemetryObserve()
	spec, err := pr.Spec(dist)
	if err != nil {
		return oocsort.Result{}, err
	}
	runtime.GC()
	c, err := pr.NewCluster()
	if err != nil {
		return oocsort.Result{}, err
	}
	defer c.Close()
	if pr.OnCluster != nil {
		pr.OnCluster(c)
	}
	fp, err := oocsort.GenerateInput(c, spec)
	if err != nil {
		return oocsort.Result{}, err
	}
	oocsort.CollectDiskStats(c)
	oocsort.CollectCommStats(c)
	detach := pr.instrument(c)
	defer detach()
	cfg := dsort.DefaultConfig(spec, pr.Nodes)
	cfg.Parallelism = pr.Parallelism
	cfg.AutoTune = pr.AutoTune
	cfg.Observe = pr.Observe
	if ck, err := pr.checkpoint(); err != nil {
		return oocsort.Result{}, err
	} else {
		cfg.Checkpoint = ck
	}
	mutate(&cfg)
	results := make([]oocsort.Result, pr.Nodes)
	err = c.Run(func(n *cluster.Node) error {
		res, err := dsort.Run(n, cfg)
		results[n.Rank()] = res
		return err
	})
	if err != nil {
		return oocsort.Result{}, err
	}
	if pr.Verify {
		if err := pr.verify(c, spec, fp); err != nil {
			return oocsort.Result{}, err
		}
	}
	res := results[c.Local()[0].Rank()]
	res.Disk = oocsort.CollectDiskStats(c)
	res.Comm = oocsort.CollectCommStats(c)
	return res, nil
}
