package harness

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/workload"
)

// fastHealth is a failure-detector calibration tight enough for unit tests:
// death declared ~150ms after silence, with a generous startup grace so a
// slow test runner never sees a false positive on ranks that were simply
// not scheduled yet.
func fastHealth() cluster.HealthConfig {
	return cluster.HealthConfig{
		Interval:     10 * time.Millisecond,
		SuspectAfter: 50 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
		StartupGrace: 5 * time.Second,
	}
}

// TestCheckpointResumeSkipsCompletedPasses reruns a checkpointed job in the
// same directory and expects the second run to skip straight past every
// checkpointed pass while still producing verified output.
func TestCheckpointResumeSkipsCompletedPasses(t *testing.T) {
	cases := []struct {
		prog    Program
		resumed []string
	}{
		{Dsort, []string{"pass1"}},
		{Csort, []string{"pass1", "pass2"}},
		{Csort4, []string{"pass1", "pass2", "pass3"}},
	}
	for _, tc := range cases {
		t.Run(string(tc.prog), func(t *testing.T) {
			pr := tinyParams()
			pr.CheckpointDir = t.TempDir()
			first, err := pr.Run(tc.prog, workload.Uniform, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(first.Resumed) != 0 {
				t.Errorf("fresh run resumed %v", first.Resumed)
			}
			second, err := pr.Run(tc.prog, workload.Uniform, 0)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Join(second.Resumed, ",") != strings.Join(tc.resumed, ",") {
				t.Errorf("second run resumed %v, want %v", second.Resumed, tc.resumed)
			}
		})
	}
	check.NoLeakedGoroutines(t)
}

// TestSupervisedDsortSurvivesPeerDeathMidPass2 is the single-process version
// of the kill-chaos acceptance test: a dsort run loses rank 2 to a
// (simulated) partition at the exact moment the first pass-2 output block
// hits a disk — after every rank has committed its pass-1 checkpoint. The
// heartbeat detector must convert the silence into a PeerDeathError, the
// supervisor must tear the attempt down and retry, and the retry must
// resume from the pass-1 checkpoints and produce verified output.
func TestSupervisedDsortSurvivesPeerDeathMidPass2(t *testing.T) {
	pr := tinyParams()
	pr.CheckpointDir = t.TempDir()
	pr.Supervise = 3
	pr.Health = fastHealth()
	var log bytes.Buffer
	pr.SuperviseLog = &log

	spec, err := pr.Spec(workload.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	// Arm a one-shot trigger: the first write to the output file anywhere in
	// the cluster partitions rank 2. Output writes happen only in pass 2, and
	// pass 2 starts only after the pass-1 closing barrier — by which point
	// every rank's pass-1 checkpoint is committed.
	var armed atomic.Bool
	armed.Store(true)
	pr.OnCluster = func(c *cluster.Cluster) {
		for _, n := range c.Local() {
			n.Disk.SetFault(func(op, name string, off int64) error {
				if op == "write" && name == spec.OutputName && armed.CompareAndSwap(true, false) {
					c.SetPartitioned(2, true)
				}
				return nil
			})
		}
	}

	res, err := pr.Run(Dsort, workload.Uniform, 0)
	if err != nil {
		t.Fatalf("supervised run failed: %v\n%s", err, log.String())
	}
	if strings.Join(res.Resumed, ",") != "pass1" {
		t.Errorf("winning attempt resumed %v, want [pass1]", res.Resumed)
	}
	s := log.String()
	if !strings.Contains(s, "declared dead") {
		t.Errorf("supervisor log does not attribute the failure to peer death:\n%s", s)
	}
	if !strings.Contains(s, "retrying in") {
		t.Errorf("supervisor log shows no retry:\n%s", s)
	}
	check.NoLeakedGoroutines(t)
}
