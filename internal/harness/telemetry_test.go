package harness

// Tests for the fleet telemetry wiring: the collector that turns the fg
// registry into wire records, the /cluster HTTP endpoints, and — the
// acceptance tests for the tentpole — a two-process TCP sort whose rank-0
// fleet view names the governing rank and stage, and a chaos run whose
// remote stall surfaces as a cross-rank diagnosis at the aggregator.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/workload"
)

func TestRankOfNetwork(t *testing.T) {
	cases := []struct {
		name string
		rank int
		ok   bool
	}{
		{"dsort.p1@3", 3, true},
		{"csort.gather@0", 0, true},
		{"no-suffix", 0, false},
		{"bad@rank", 0, false},
		{"negative@-1", 0, false},
	}
	for _, c := range cases {
		rank, ok := rankOfNetwork(c.name)
		if ok != c.ok || (ok && rank != c.rank) {
			t.Errorf("rankOfNetwork(%q) = (%d, %v), want (%d, %v)", c.name, rank, ok, c.rank, c.ok)
		}
	}
}

// TestFleetCollectorStallLifecycle: a watchdog stall report is captured
// under the stalled network's rank, rides the collected record, and clears
// when that network finishes.
func TestFleetCollectorStallLifecycle(t *testing.T) {
	o := &fg.Observe{Watchdog: &fg.WatchdogConfig{}}
	fc := newFleetCollector(o)
	o.Watchdog.OnStall(fg.StallReport{
		Network: "dsort.p2@1",
		Culprit: "merge",
		Stalled: 2 * time.Second,
	})
	rec := fc.collect(1, false)
	if rec.Stall == nil || rec.Stall.Culprit != "merge" || rec.Stall.StalledNS != int64(2*time.Second) {
		t.Fatalf("stall not collected: %+v", rec.Stall)
	}
	if other := fc.collect(0, false); other.Stall != nil {
		t.Fatalf("stall leaked to rank 0: %+v", other.Stall)
	}
	// A different network finishing must not clear it; the stalled one must.
	o.OnStats(fg.NetworkStats{Name: "dsort.p1@1"})
	if rec := fc.collect(1, false); rec.Stall == nil {
		t.Fatal("unrelated network finish cleared the stall")
	}
	o.OnStats(fg.NetworkStats{Name: "dsort.p2@1"})
	if rec := fc.collect(1, false); rec.Stall != nil {
		t.Fatal("stalled network finished but the stall survived")
	}
	// restore unhooks: a new stall no longer lands in the collector.
	fc.restore()
	if o.Watchdog.OnStall != nil {
		o.Watchdog.OnStall(fg.StallReport{Network: "dsort.p3@1", Culprit: "x"})
	}
	if rec := fc.collect(1, false); rec.Stall != nil {
		t.Fatal("restore left the stall hook installed")
	}
}

// TestClusterTelemetryInproc: an in-process dsort with the plane on — the
// fleet view fills from the real fg registry, every rank reports, the
// bottleneck names a stage, the metrics endpoint carries fleet_ series, and
// the blackbox endpoint pulls a flight-recorder dump.
func TestClusterTelemetryInproc(t *testing.T) {
	ct, err := ServeClusterTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	// Before any run the endpoints answer 503, not garbage.
	resp, err := http.Get("http://" + ct.Addr() + "/cluster/status.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-run status.json answered %d, want 503", resp.StatusCode)
	}

	obs := &fg.Observe{Metrics: fg.NewMetricsRegistry(), Flight: fg.NewFlightRecorder(0)}
	pr := DefaultParams()
	pr.Nodes = 2
	pr.TotalRecords = 1 << 12
	pr.RecordSize = 16
	pr.Parallelism = 1
	pr.Verify = false
	pr.Observe = obs
	pr.Telemetry = cluster.TelemetryConfig{Interval: 2 * time.Millisecond}
	pr.OnTelemetry = ct.SetPlane
	if _, err := pr.Run(Dsort, workload.Uniform, 0); err != nil {
		t.Fatal(err)
	}

	// The plane stopped with the cluster, but the aggregator retains the
	// last record per rank — the view outlives the run.
	var st cluster.ClusterStatus
	if err := getJSON(ct.Addr(), "/cluster/status.json", &st); err != nil {
		t.Fatal(err)
	}
	if st.P != 2 || len(st.Ranks) != 2 {
		t.Fatalf("fleet view P=%d ranks=%d, want 2", st.P, len(st.Ranks))
	}
	for _, rs := range st.Ranks {
		if !rs.Reported || rs.Record == nil {
			t.Fatalf("rank %d never reported", rs.Rank)
		}
		if rs.Record.Program != "dsort" {
			t.Errorf("rank %d program %q, want dsort", rs.Rank, rs.Record.Program)
		}
		if len(rs.Record.Stages) == 0 {
			t.Errorf("rank %d record carries no stages", rs.Rank)
		}
	}
	if st.Bottleneck.Rank < 0 || st.Bottleneck.Stage == "" {
		t.Fatalf("fleet bottleneck names no governing rank+stage: %+v", st.Bottleneck)
	}
	t.Logf("fleet view: %s", st.Bottleneck.String())

	metrics := getBody(t, ct.Addr(), "/cluster/metrics")
	for _, want := range []string{"fleet_rank_fresh", "fleet_stage_work_seconds_total", "fleet_bottleneck_governing"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/cluster/metrics missing %s", want)
		}
	}

	bb := getBody(t, ct.Addr(), "/cluster/blackbox?rank=0")
	if !strings.Contains(bb, "traceEvents") {
		t.Errorf("blackbox pull is not a Chrome trace: %.80s", bb)
	}
}

// getJSON fetches and decodes one endpoint.
func getJSON(addr, path string, v any) error {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %d: %s", path, resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func getBody(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

// reserveLoopbackPort picks a free port the same way spawnTCPJob does for
// the rank addresses.
func reserveLoopbackPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestClusterTelemetryTwoProcessTCP is the tentpole acceptance test: two
// OS processes run csort over real TCP, rank 1's records reach rank 0 over
// the control connection, and rank 0's /cluster/status.json names the
// governing rank and stage for the whole job.
func TestClusterTelemetryTwoProcessTCP(t *testing.T) {
	addr := reserveLoopbackPort(t)
	children := spawnTCPJob(t, 2, func(rank int) []string {
		// A job big enough to watch live: the 4K-record fault-test sort
		// finishes inside one telemetry interval.
		env := []string{"FG_TCP_TELEMETRY=10ms", "FG_TCP_LINGER=60s",
			"FG_TCP_STACKDUMP=30s", "FG_TCP_RECORDS=262144"}
		if rank == 0 {
			env = append(env, "FG_TCP_CLUSTER_ADDR="+addr)
		}
		return env
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st cluster.ClusterStatus
		err := getJSON(addr, "/cluster/status.json", &st)
		if err == nil && len(st.Ranks) == 2 &&
			st.Ranks[0].Reported && st.Ranks[1].Reported &&
			st.Bottleneck.Rank >= 0 && st.Bottleneck.Stage != "" {
			t.Logf("fleet view across 2 processes: %s", st.Bottleneck.String())
			metrics := getBody(t, addr, "/cluster/metrics")
			if !strings.Contains(metrics, `fleet_rank_fresh{rank="1"}`) {
				t.Error("/cluster/metrics carries no rank-1 series")
			}
			return
		}
		if time.Now().After(deadline) {
			for rank, ch := range children {
				t.Logf("rank %d stdout:\n%s\nstderr:\n%s", rank, ch.stdout.String(), ch.stderr.String())
			}
			doc, _ := json.Marshal(st)
			t.Fatalf("fleet view never named a governing rank+stage (last err: %v)\nlast view: %s", err, doc)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterTelemetryRemoteStallDiagnosis is the chaos acceptance test: a
// connection killed mid-frame stalls the job in one process, that rank's
// stall record reaches the aggregator in the other, and the fleet view's
// diagnosis names the stalled rank and stage — a cross-rank story assembled
// in one place.
func TestClusterTelemetryRemoteStallDiagnosis(t *testing.T) {
	addr := reserveLoopbackPort(t)
	children := spawnTCPJob(t, 2, func(rank int) []string {
		env := []string{"FG_TCP_TELEMETRY=10ms", "FG_TCP_LINGER=60s", "FG_TCP_STALL=1500ms"}
		if rank == 0 {
			env = append(env, "FG_TCP_CLUSTER_ADDR="+addr, "FG_TCP_FAULT=closemid")
		}
		return env
	})
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st cluster.ClusterStatus
		err := getJSON(addr, "/cluster/status.json", &st)
		if err == nil {
			for _, d := range st.Diagnosis {
				if strings.Contains(d, `stage "`) &&
					(strings.Contains(d, "blocked") || strings.Contains(d, "stalled")) {
					t.Logf("cross-rank diagnosis: %q", st.Diagnosis)
					return
				}
			}
		}
		if time.Now().After(deadline) {
			for rank, ch := range children {
				t.Logf("rank %d stdout:\n%s\nstderr:\n%s", rank, ch.stdout.String(), ch.stderr.String())
			}
			t.Fatalf("no stall diagnosis ever surfaced (last err: %v, diagnosis: %q)", err, st.Diagnosis)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
