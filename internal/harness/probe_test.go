package harness

import (
	"os"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/pdm"
	"github.com/fg-go/fg/workload"
)

// TestProbeTimings is a manual probe, enabled with FG_PROBE=1, for
// calibrating the experiment models. It is not part of the regular suite.
func TestProbeTimings(t *testing.T) {
	if os.Getenv("FG_PROBE") == "" {
		t.Skip("set FG_PROBE=1 to run the timing probe")
	}
	pr := DefaultParams()
	pr.TotalRecords = 1 << 19
	pr.Verify = false

	configs := []struct {
		name string
		disk pdm.DiskModel
		net  cluster.NetworkModel
	}{
		{"default", pr.Disk, pr.Network},
		{"slow10", pdm.DiskModel{SeekLatency: 200e3, BytesPerSecond: 10e6}, cluster.NetworkModel{Latency: 30e3, BytesPerSecond: 50e6}},
		{"slow5", pdm.DiskModel{SeekLatency: 200e3, BytesPerSecond: 5e6}, cluster.NetworkModel{Latency: 30e3, BytesPerSecond: 25e6}},
	}
	for _, c := range configs {
		pr.Disk, pr.Network = c.disk, c.net
		for _, prog := range []Program{Csort, Dsort} {
			start := time.Now()
			res, err := pr.Run(prog, workload.Uniform, 0)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-8s %-6s wall=%-8v %v", c.name, prog, time.Since(start).Round(time.Millisecond), res)
		}
	}
}

// TestProbeRepeat is a manual probe (FG_PROBE=1) that runs one program
// repeatedly in-process to expose warmup effects.
func TestProbeRepeat(t *testing.T) {
	if os.Getenv("FG_PROBE") == "" {
		t.Skip("set FG_PROBE=1 to run")
	}
	pr := DefaultParams()
	pr.Verify = false
	pr.RecordSize = 64
	for i := 0; i < 4; i++ {
		res, err := pr.Run(Dsort, workload.Uniform, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("dsort uniform-64 trial %d: %v", i, res)
	}
}
