package harness

// Two-process csort over real TCP: the acceptance tests for the transport
// seam. The test binary re-executes itself as the second process (the
// FG_TCP_CHILD_RANK environment variable routes the child into runTCPChild
// before any test runs), so "go test" alone proves a sort can span OS
// processes, produce a merged Chrome trace with cross-process flow arrows,
// and keep its failure story straight under injected wire faults:
//
//   - a connection killed mid-frame loses a message; the stall watchdog —
//     not a hang — ends the run, naming the stalled stage;
//   - a merely slow network does not trip the watchdog (no false stall).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/faultinject"
	"github.com/fg-go/fg/workload"
)

// Child exit codes, distinct from go test's own.
const (
	childExitStall    = 3 // watchdog reported a stall
	childExitRunError = 4 // the sort itself failed
)

func TestMain(m *testing.M) {
	if os.Getenv("FG_TCP_CHILD_RANK") != "" {
		os.Exit(runTCPChild())
	}
	if os.Getenv("FG_KILL_CHILD_RANK") != "" {
		os.Exit(runKillChild())
	}
	os.Exit(m.Run())
}

// tcpChildParams is the job both processes agree on: small enough to run
// in milliseconds, big enough that csort's passes exchange bulk column
// frames over the wire.
func tcpChildParams(rank int, peers []string) Params {
	return Params{
		Nodes:          2,
		TotalRecords:   1 << 12,
		RecordSize:     16,
		ColumnsPerNode: 1,
		Seed:           7,
		Verify:         true,
		Parallelism:    1,
		Transport: cluster.TransportConfig{
			Kind:        cluster.TransportTCP,
			Peers:       peers,
			Rank:        rank,
			DialTimeout: 10 * time.Second,
		},
	}
}

// runTCPChild is one rank's process, configured entirely by environment:
// FG_TCP_CHILD_RANK, FG_TCP_PEERS (comma-separated rank addresses),
// FG_TCP_TRACE (Chrome trace output path), FG_TCP_STALL (watchdog arm
// duration), FG_TCP_FAULT ("closemid" kills a bulk-frame connection
// mid-write; "delay" slows every frame without losing any).
func runTCPChild() int {
	rank, err := strconv.Atoi(os.Getenv("FG_TCP_CHILD_RANK"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad FG_TCP_CHILD_RANK: %v\n", err)
		return 2
	}
	peers := strings.Split(os.Getenv("FG_TCP_PEERS"), ",")
	var stallAfter time.Duration
	if v := os.Getenv("FG_TCP_STALL"); v != "" {
		if stallAfter, err = time.ParseDuration(v); err != nil {
			fmt.Fprintf(os.Stderr, "bad FG_TCP_STALL: %v\n", err)
			return 2
		}
	}
	pr := tcpChildParams(rank, peers)

	// FG_TCP_RECORDS scales the job: the telemetry acceptance test needs a
	// run long enough to observe live, not the millisecond sort the fault
	// tests want.
	if v := os.Getenv("FG_TCP_RECORDS"); v != "" {
		n, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad FG_TCP_RECORDS %q\n", v)
			return 2
		}
		pr.TotalRecords = n
	}

	// FG_TCP_TELEMETRY arms the cluster telemetry plane at the given
	// interval; FG_TCP_CLUSTER_ADDR (the aggregator rank's process only)
	// additionally serves the fleet view for the parent test to scrape.
	var telemetryIv time.Duration
	if v := os.Getenv("FG_TCP_TELEMETRY"); v != "" {
		if telemetryIv, err = time.ParseDuration(v); err != nil {
			fmt.Fprintf(os.Stderr, "bad FG_TCP_TELEMETRY: %v\n", err)
			return 2
		}
	}
	clusterAddr := os.Getenv("FG_TCP_CLUSTER_ADDR")
	if clusterAddr != "" && telemetryIv <= 0 {
		telemetryIv = 10 * time.Millisecond
	}

	// FG_TCP_STACKDUMP dumps every goroutine to stderr after the given
	// delay — a child wedged past that point explains itself in the parent
	// test's failure output instead of dying silently at cleanup.
	if v := os.Getenv("FG_TCP_STACKDUMP"); v != "" {
		if d, derr := time.ParseDuration(v); derr == nil {
			go func() {
				time.Sleep(d)
				_ = pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
			}()
		}
	}

	obs, ct, finish, err := ObserveCLI("", os.Getenv("FG_TCP_TRACE"), "", clusterAddr, stallAfter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "observe: %v\n", err)
		return 2
	}
	if telemetryIv > 0 && obs == nil {
		// A rank with no observe flags of its own still needs a metrics
		// registry when the plane is on, or its records would carry comm
		// counters but no stage taxonomy.
		obs = &fg.Observe{Metrics: fg.NewMetricsRegistry()}
	}
	pr.Observe = obs
	if telemetryIv > 0 {
		pr.Telemetry = cluster.TelemetryConfig{Interval: telemetryIv}
		pr.OnTelemetry = ct.SetPlane
	}

	switch fault := os.Getenv("FG_TCP_FAULT"); fault {
	case "":
	case "closemid":
		// Kill the connection under the first bulk (>= 8 KiB) data frame:
		// one column of records vanishes mid-pass.
		inj := faultinject.New(faultinject.Config{FailN: 1})
		pr.OnCluster = func(c *cluster.Cluster) {
			c.SetNetFault(inj.NetHook(cluster.NetFaultCloseMidFrame, 8<<10))
		}
	case "delay":
		// A slow network: every frame pays 1 ms, nothing is lost.
		inj := faultinject.New(faultinject.Config{Latency: time.Millisecond})
		pr.OnCluster = func(c *cluster.Cluster) {
			c.SetNetFault(inj.NetHook(cluster.NetFaultNone, 0))
		}
	default:
		fmt.Fprintf(os.Stderr, "bad FG_TCP_FAULT %q\n", fault)
		return 2
	}

	var cl atomic.Pointer[cluster.Cluster]
	onCluster := pr.OnCluster
	pr.OnCluster = func(c *cluster.Cluster) {
		cl.Store(c)
		if onCluster != nil {
			onCluster(c)
		}
	}
	if obs != nil && obs.Watchdog != nil {
		// A stalled child must end decisively so the parent can assert on
		// the exit code instead of racing a hung process — and it must take
		// the whole job down: its peers may be parked in a collective
		// (a barrier between passes, the verify gather) that the watchdog
		// does not watch and that its exit alone would never release.
		// Abort propagation is synchronous, so the control frames are on
		// the wire before this process dies.
		inner := obs.Watchdog.OnStall
		obs.Watchdog.OnStall = func(rep fg.StallReport) {
			inner(rep)
			if telemetryIv > 0 {
				// With the telemetry plane running, give the publisher a few
				// intervals to ship the stall record to the aggregator before
				// the abort tears the plane down — the cross-rank diagnosis
				// is the point of the telemetry chaos test.
				time.Sleep(20 * telemetryIv)
			}
			if c := cl.Load(); c != nil {
				c.Abort()
			}
			if telemetryIv <= 0 {
				os.Exit(childExitStall)
			}
			// In telemetry mode the abort alone ends the run; the process
			// stays alive through FG_TCP_LINGER so the parent can scrape the
			// aggregator's retained fleet view.
		}
	}

	_, err = pr.Run(Csort, workload.Uniform, 0)
	// FG_TCP_LINGER holds the process (and its fleet-view server) open after
	// the run so the parent test can scrape the retained records. The error,
	// if any, is reported before the linger so a hung parent can read it.
	if err != nil {
		fmt.Fprintf(os.Stderr, "csort over tcp: %v\n", err)
	}
	if v := os.Getenv("FG_TCP_LINGER"); v != "" {
		if d, perr := time.ParseDuration(v); perr == nil {
			time.Sleep(d)
		}
	}
	if ferr := finish(err); ferr != nil && err == nil {
		err = ferr
		fmt.Fprintf(os.Stderr, "csort over tcp: %v\n", err)
	}
	if err != nil {
		return childExitRunError
	}
	return 0
}

// tcpChild is one spawned rank process and its captured output.
type tcpChild struct {
	cmd            *exec.Cmd
	stdout, stderr bytes.Buffer
	done           chan error
}

// spawnTCPJob reserves one loopback port per rank and starts every rank as
// a separate OS process of this test binary.
func spawnTCPJob(t *testing.T, ranks int, extraEnv func(rank int) []string) []*tcpChild {
	t.Helper()
	peers := make([]string, ranks)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		peers[i] = ln.Addr().String()
		ln.Close()
	}
	children := make([]*tcpChild, ranks)
	for rank := range children {
		ch := &tcpChild{done: make(chan error, 1)}
		ch.cmd = exec.Command(os.Args[0], "-test.run=^$")
		// A stalled child dumps its flight-recorder black box into its
		// working directory; keep that out of the package tree.
		ch.cmd.Dir = t.TempDir()
		ch.cmd.Stdout = &ch.stdout
		ch.cmd.Stderr = &ch.stderr
		ch.cmd.Env = append(os.Environ(),
			"FG_TCP_CHILD_RANK="+strconv.Itoa(rank),
			"FG_TCP_PEERS="+strings.Join(peers, ","),
		)
		if extraEnv != nil {
			ch.cmd.Env = append(ch.cmd.Env, extraEnv(rank)...)
		}
		if err := ch.cmd.Start(); err != nil {
			t.Fatalf("start rank %d: %v", rank, err)
		}
		go func(ch *tcpChild) { ch.done <- ch.cmd.Wait() }(ch)
		children[rank] = ch
		t.Cleanup(func() { ch.cmd.Process.Kill() })
	}
	return children
}

// waitChild returns the child's exit code, killing it at the deadline.
func waitChild(t *testing.T, rank int, ch *tcpChild, timeout time.Duration) int {
	t.Helper()
	select {
	case err := <-ch.done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("rank %d: %v", rank, err)
		return -1
	case <-time.After(timeout):
		ch.cmd.Process.Kill()
		t.Fatalf("rank %d still running after %v\nstdout:\n%s\nstderr:\n%s",
			rank, timeout, ch.stdout.String(), ch.stderr.String())
		return -1
	}
}

// TestTwoProcessCsortTCP is the tentpole acceptance test: a two-process
// csort over loopback TCP completes, verifies collectively, and the two
// per-process Chrome traces merge into one timeline whose flow arrows
// cross process boundaries — the same transfer ID observed at the sender
// in one process and the receiver in the other.
func TestTwoProcessCsortTCP(t *testing.T) {
	dir := t.TempDir()
	traces := []string{filepath.Join(dir, "rank0.json"), filepath.Join(dir, "rank1.json")}
	children := spawnTCPJob(t, 2, func(rank int) []string {
		return []string{"FG_TCP_TRACE=" + traces[rank]}
	})
	for rank, ch := range children {
		if code := waitChild(t, rank, ch, 60*time.Second); code != 0 {
			t.Fatalf("rank %d exited %d\nstdout:\n%s\nstderr:\n%s",
				rank, code, ch.stdout.String(), ch.stderr.String())
		}
	}

	files := make([]*os.File, len(traces))
	for i, path := range traces {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("rank %d wrote no trace: %v", i, err)
		}
		defer f.Close()
		files[i] = f
	}
	var merged bytes.Buffer
	if err := fg.MergeChromeTraces(&merged, files[0], files[1]); err != nil {
		t.Fatalf("merge: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
			ID  string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	sends := map[string]int{}
	recvs := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			sends[ev.ID] = ev.Pid
		case "f":
			recvs[ev.ID] = ev.Pid
		}
	}
	if len(sends) == 0 {
		t.Fatal("merged trace has no flow events; a two-process csort must communicate")
	}
	crossProcess := 0
	for id, spid := range sends {
		if rpid, ok := recvs[id]; ok && rpid != spid {
			crossProcess++
		}
	}
	if crossProcess == 0 {
		t.Fatalf("no flow arrow crosses processes (%d sends, %d recvs)", len(sends), len(recvs))
	}
	t.Logf("merged trace: %d flows, %d crossing processes", len(sends), crossProcess)
}

// TestTwoProcessCsortTCPConnDropStall: with a connection killed mid-frame
// under a bulk column transfer, the run must not hang and must not succeed
// — the watchdog in at least one process names the stalled stage and exits.
func TestTwoProcessCsortTCPConnDropStall(t *testing.T) {
	children := spawnTCPJob(t, 2, func(rank int) []string {
		env := []string{"FG_TCP_STALL=1500ms"}
		if rank == 0 {
			env = append(env, "FG_TCP_FAULT=closemid")
		}
		return env
	})
	stalled := 0
	for rank, ch := range children {
		code := waitChild(t, rank, ch, 60*time.Second)
		switch code {
		case childExitStall:
			stalled++
			errOut := ch.stderr.String()
			if !strings.Contains(errOut, "stalled for") || !strings.Contains(errOut, "stage") {
				t.Errorf("rank %d stalled without naming a stage:\n%s", rank, errOut)
			}
		case 0, childExitRunError:
			// The un-stalled peer may finish with an abort error or be the
			// stalled side's victim; either is fine as long as someone's
			// watchdog spoke.
		default:
			t.Errorf("rank %d exited %d\nstderr:\n%s", rank, code, ch.stderr.String())
		}
	}
	if stalled == 0 {
		for rank, ch := range children {
			t.Logf("rank %d stderr:\n%s", rank, ch.stderr.String())
		}
		t.Fatal("no process's watchdog reported the lost message")
	}
}

// TestTwoProcessCsortTCPSlowNetworkNoFalseStall: a network that is merely
// slow (1 ms per frame, nothing lost) must complete with the watchdog
// armed and silent — the companion that keeps the stall detector honest.
func TestTwoProcessCsortTCPSlowNetworkNoFalseStall(t *testing.T) {
	children := spawnTCPJob(t, 2, func(rank int) []string {
		return []string{"FG_TCP_STALL=2s", "FG_TCP_FAULT=delay"}
	})
	for rank, ch := range children {
		if code := waitChild(t, rank, ch, 60*time.Second); code != 0 {
			t.Fatalf("rank %d exited %d on a merely slow network\nstderr:\n%s",
				rank, code, ch.stderr.String())
		}
		if out := ch.stderr.String(); strings.Contains(out, "stalled") {
			t.Errorf("rank %d reported a false stall:\n%s", rank, out)
		}
	}
}
