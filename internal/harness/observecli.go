package harness

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/fg-go/fg/fg"
)

// BlackBoxPath is where ObserveCLI dumps the flight recorder when a run
// stalls or panics: a Chrome-trace "black box" of the final moments.
const BlackBoxPath = "fg-blackbox.json"

// ObserveCLI builds the fg.Observe bundle behind the commands' -metrics,
// -trace-out, -status-addr, and -stall-after flags. It returns the bundle
// (nil when every argument is zero, so an unobserved run costs nothing) and
// a finish function taking the run's error; finish prints node 0's
// bottleneck reports, writes the Chrome trace file, dumps the flight
// recorder if the run died on a panic, and stops the HTTP servers.
//
// metricsAddr, when non-empty, is a host:port to serve Prometheus metrics
// and expvar on for the duration of the run (":0" picks a free port).
// traceOut, when non-empty, is the path the Chrome trace-event JSON is
// written to — atomically, via a temp file and rename, so a run killed
// mid-write never leaves a truncated file; load it in chrome://tracing or
// https://ui.perfetto.dev. statusAddr, when non-empty, serves the live
// /status and /status.json endpoints (plus /metrics) on its own address.
// stallAfter, when positive, arms a progress watchdog on every network: a
// stretch of stallAfter with no stage completing a round prints a
// StallReport naming the suspected culprit and dumps the flight recorder
// to BlackBoxPath.
//
// clusterAddr, when non-empty, additionally serves the fleet view —
// /cluster/status.json, /cluster/metrics, /cluster/blackbox, and
// /cluster/profile — on its own address, and the returned
// *ClusterTelemetry (nil otherwise) is to be wired into the run via
// Params.OnTelemetry so the server follows the current cluster's
// telemetry plane. The view fills in only on the process hosting the
// aggregator rank; other ranks' servers answer 503.
//
// Whenever any flag is set, a flight recorder rides along: the last few
// thousand events are retained even when full tracing is off, so the black
// box has something to say.
func ObserveCLI(metricsAddr, traceOut, statusAddr, clusterAddr string, stallAfter time.Duration) (*fg.Observe, *ClusterTelemetry, func(runErr error) error, error) {
	if metricsAddr == "" && traceOut == "" && statusAddr == "" && clusterAddr == "" && stallAfter <= 0 {
		return nil, nil, func(error) error { return nil }, nil
	}
	o := &fg.Observe{}
	var mu sync.Mutex
	var reports []string
	o.OnStats = func(st fg.NetworkStats) {
		// One report per network of node 0; barriers make it representative.
		if !strings.HasSuffix(st.Name, "@0") {
			return
		}
		mu.Lock()
		reports = append(reports, fmt.Sprintf("%s: %s", st.Name, st.Bottleneck()))
		mu.Unlock()
	}
	o.Flight = fg.NewFlightRecorder(0)
	var servers []io.Closer
	closeServers := func() error {
		var err error
		for _, s := range servers {
			if cerr := s.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}
	if metricsAddr != "" || statusAddr != "" || clusterAddr != "" {
		o.Metrics = fg.NewMetricsRegistry()
	}
	if metricsAddr != "" {
		server, err := o.Metrics.Serve(metricsAddr)
		if err != nil {
			return nil, nil, nil, err
		}
		servers = append(servers, server)
		fmt.Printf("serving metrics on http://%s/metrics (Prometheus) and /debug/vars (expvar)\n", server.Addr())
	}
	if statusAddr != "" && statusAddr != metricsAddr {
		server, err := o.Metrics.Serve(statusAddr)
		if err != nil {
			_ = closeServers()
			return nil, nil, nil, err
		}
		servers = append(servers, server)
		fmt.Printf("serving live status on http://%s/status (text) and /status.json\n", server.Addr())
	} else if statusAddr != "" {
		fmt.Printf("live status shares the metrics address: /status and /status.json\n")
	}
	var ct *ClusterTelemetry
	if clusterAddr != "" {
		var err error
		ct, err = ServeClusterTelemetry(clusterAddr)
		if err != nil {
			_ = closeServers()
			return nil, nil, nil, err
		}
		servers = append(servers, ct)
		fmt.Printf("serving fleet view on http://%s/cluster/status.json and /cluster/metrics\n", ct.Addr())
	}
	if traceOut != "" {
		o.Tracer = fg.NewTracer(1 << 21)
	}
	writeBlackBox := func(why string) {
		err := writeFileAtomic(BlackBoxPath, func(w io.Writer) error {
			return o.Flight.WriteChromeTrace(w)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "black box write failed: %v\n", err)
			return
		}
		fmt.Printf("black box (%s) written to %s: last %d events; load it in chrome://tracing\n",
			why, BlackBoxPath, o.Flight.Len())
	}
	if stallAfter > 0 {
		interval := stallAfter / 4
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		o.Watchdog = &fg.WatchdogConfig{
			Interval:   interval,
			StallAfter: stallAfter,
			OnStall: func(rep fg.StallReport) {
				fmt.Fprint(os.Stderr, rep.String())
				mu.Lock()
				writeBlackBox("stall")
				mu.Unlock()
			},
		}
	}
	finish := func(runErr error) error {
		mu.Lock()
		for _, r := range reports {
			fmt.Println(r)
		}
		var pe *fg.PanicError
		if errors.As(runErr, &pe) {
			writeBlackBox("panic in stage " + pe.Stage)
		}
		mu.Unlock()
		if o.Tracer != nil {
			if err := writeFileAtomic(traceOut, o.Tracer.WriteChromeTrace); err != nil {
				_ = closeServers()
				return err
			}
			fmt.Printf("trace written to %s (%d events", traceOut, len(o.Tracer.Events()))
			if d := o.Tracer.Dropped(); d > 0 {
				fmt.Printf(", %d dropped", d)
			}
			fmt.Println("); load it in chrome://tracing or https://ui.perfetto.dev")
		}
		return closeServers()
	}
	return o, ct, finish, nil
}

// writeFileAtomic writes via a temp file in the target's directory and
// renames it into place, so readers never see a partial file and a killed
// writer never leaves a truncated one.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
