package harness

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"github.com/fg-go/fg/fg"
)

// ObserveCLI builds the fg.Observe bundle behind the commands' -metrics and
// -trace-out flags. It returns the bundle (nil when both arguments are
// empty, so an unobserved run costs nothing) and a finish function that
// prints node 0's bottleneck reports, writes the Chrome trace file, and
// stops the metrics server.
//
// metricsAddr, when non-empty, is a host:port to serve Prometheus metrics
// and expvar on for the duration of the run (":0" picks a free port).
// traceOut, when non-empty, is the path the Chrome trace-event JSON is
// written to; load it in chrome://tracing or https://ui.perfetto.dev.
func ObserveCLI(metricsAddr, traceOut string) (*fg.Observe, func() error, error) {
	if metricsAddr == "" && traceOut == "" {
		return nil, func() error { return nil }, nil
	}
	o := &fg.Observe{}
	var mu sync.Mutex
	var reports []string
	o.OnStats = func(st fg.NetworkStats) {
		// One report per network of node 0; barriers make it representative.
		if !strings.HasSuffix(st.Name, "@0") {
			return
		}
		mu.Lock()
		reports = append(reports, fmt.Sprintf("%s: %s", st.Name, st.Bottleneck()))
		mu.Unlock()
	}
	var server *fg.MetricsServer
	if metricsAddr != "" {
		o.Metrics = fg.NewMetricsRegistry()
		var err error
		server, err = o.Metrics.Serve(metricsAddr)
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("serving metrics on http://%s/metrics (Prometheus) and /debug/vars (expvar)\n", server.Addr())
	}
	if traceOut != "" {
		o.Tracer = fg.NewTracer(1 << 21)
	}
	finish := func() error {
		mu.Lock()
		for _, r := range reports {
			fmt.Println(r)
		}
		mu.Unlock()
		if o.Tracer != nil {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			if err := o.Tracer.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("trace written to %s (%d events", traceOut, len(o.Tracer.Events()))
			if d := o.Tracer.Dropped(); d > 0 {
				fmt.Printf(", %d dropped", d)
			}
			fmt.Println("); load it in chrome://tracing or https://ui.perfetto.dev")
		}
		if server != nil {
			return server.Close()
		}
		return nil
	}
	return o, finish, nil
}
