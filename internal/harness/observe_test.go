package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/workload"
)

// decodeChromeTrace parses a Chrome trace-event JSON document and returns
// the thread-row names and the per-kind X-event counts, failing the test on
// malformed structure (the -trace-out acceptance criterion: valid JSON,
// monotonic ts, all stages present).
func decodeChromeTrace(t *testing.T, raw []byte) (rows map[string]bool, kinds map[string]int) {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	rows = map[string]bool{}
	kinds = map[string]int{}
	lastTs := -1.0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if n, ok := ev.Args["name"].(string); ok {
				rows[n] = true
			}
		case "X":
			if ev.Ts < lastTs {
				t.Fatalf("X events out of ts order: %v after %v", ev.Ts, lastTs)
			}
			lastTs = ev.Ts
			if ev.Dur < 0 {
				t.Fatalf("negative duration on %q", ev.Name)
			}
			kinds[ev.Cat]++
		case "s", "f":
			// Flow events linking a send to its recv; not ts-ordered with X.
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	return rows, kinds
}

// hasRow reports whether some thread row's name contains sub.
func hasRow(rows map[string]bool, sub string) bool {
	for r := range rows {
		if strings.Contains(r, sub) {
			return true
		}
	}
	return false
}

func TestDsortChromeTraceRoundTrip(t *testing.T) {
	pr := tinyParams()
	pr.Nodes = 2
	pr.ColumnsPerNode = 1
	tr := fg.NewTracer(1 << 20)
	pr.Observe = &fg.Observe{Tracer: tr}
	if _, err := pr.Run(Dsort, workload.Uniform, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	rows, kinds := decodeChromeTrace(t, buf.Bytes())
	// Every pass-1 and pass-2 round stage of node 0 must have a row, as
	// must the comm timeline the harness records per node.
	for _, stage := range []string{"read", "permute", "sort", "write", "merge", "node0/comm.send", "node0/comm.recv"} {
		if !hasRow(rows, stage) {
			t.Errorf("trace has no row for %q (rows: %v)", stage, rows)
		}
	}
	if kinds["work"] == 0 || kinds["comm"] == 0 {
		t.Errorf("trace lacks work or comm events: %v", kinds)
	}
	if tr.Dropped() > 0 {
		t.Errorf("tracer dropped %d events at this tiny scale", tr.Dropped())
	}
}

func TestCsortChromeTraceRoundTrip(t *testing.T) {
	pr := tinyParams()
	pr.Nodes = 2
	pr.ColumnsPerNode = 1
	tr := fg.NewTracer(1 << 20)
	pr.Observe = &fg.Observe{Tracer: tr}
	if _, err := pr.Run(Csort, workload.Uniform, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	rows, kinds := decodeChromeTrace(t, buf.Bytes())
	if len(rows) == 0 || kinds["work"] == 0 {
		t.Fatalf("csort trace empty: rows=%v kinds=%v", rows, kinds)
	}
	if !hasRow(rows, "comm.") {
		t.Errorf("csort trace has no comm rows: %v", rows)
	}
}

// TestObserveMetricsAndStats exercises the other two Observe channels on a
// real program: the registry scrapes cluster counters and OnStats sees one
// snapshot per network.
func TestObserveMetricsAndStats(t *testing.T) {
	pr := tinyParams()
	pr.Nodes = 2
	pr.ColumnsPerNode = 1
	reg := fg.NewMetricsRegistry()
	var mu sync.Mutex
	var finished []string
	pr.Observe = &fg.Observe{
		Metrics: reg,
		OnStats: func(st fg.NetworkStats) {
			mu.Lock()
			finished = append(finished, st.Name)
			mu.Unlock()
			if st.Wall <= 0 {
				t.Errorf("network %s finished with zero wall time", st.Name)
			}
		},
	}
	if _, err := pr.Run(Dsort, workload.Uniform, 0); err != nil {
		t.Fatal(err)
	}
	// Two nodes, two passes: four networks finished.
	mu.Lock()
	n := len(finished)
	mu.Unlock()
	if n != 4 {
		t.Errorf("OnStats saw %d networks, want 4 (%v)", n, finished)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cluster_bytes_sent_total",
		"cluster_send_wait_seconds_total",
		"cluster_recv_wait_seconds_total",
		"fg_stage_rounds_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("registry scrape missing %s", want)
		}
	}
}

// TestObserveCLITraceOutAtomicWrite drives the CLI observability bundle end
// to end: the -trace-out file must appear as a complete, valid Chrome trace
// with no temp-file debris left beside it (the write goes through a temp
// file and rename).
func TestObserveCLITraceOutAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	obs, _, finish, err := ObserveCLI("", path, "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if obs == nil || obs.Tracer == nil || obs.Flight == nil {
		t.Fatalf("bundle incomplete: %+v", obs)
	}
	pr := tinyParams()
	pr.Nodes = 2
	pr.ColumnsPerNode = 1
	pr.Observe = obs
	if _, err := pr.Run(Dsort, workload.Uniform, 0); err != nil {
		t.Fatal(err)
	}
	if err := finish(nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	rows, kinds := decodeChromeTrace(t, raw)
	if len(rows) == 0 || kinds["work"] == 0 || kinds["comm"] == 0 {
		t.Errorf("trace incomplete: rows=%v kinds=%v", rows, kinds)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "trace.json" {
			t.Errorf("debris left beside the trace: %s", e.Name())
		}
	}
}

// TestObserveCLIAllOff checks the pay-nothing contract: no flags, no bundle.
func TestObserveCLIAllOff(t *testing.T) {
	obs, _, finish, err := ObserveCLI("", "", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if obs != nil {
		t.Errorf("zero flags built a bundle: %+v", obs)
	}
	if finish == nil {
		t.Fatal("finish is nil")
	}
	if err := finish(nil); err != nil {
		t.Errorf("no-op finish errored: %v", err)
	}
}
