package harness

// Fleet telemetry wiring. The cluster's telemetry plane (cluster.Telemetry)
// cannot import fg, so this file supplies its two missing halves: a
// collector that snapshots the fg side of a rank's state (stage taxonomy,
// pool occupancy, knob positions, stall reports) out of the run's Observe
// bundle, and the HTTP server that exposes the aggregator's fleet view at
// /cluster/status.json and /cluster/metrics, with on-demand evidence at
// /cluster/blackbox and /cluster/profile.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
)

// rankOfNetwork parses the "@<rank>" suffix the programs append to every
// network name ("dsort.p1@3" -> 3).
func rankOfNetwork(name string) (int, bool) {
	i := strings.LastIndexByte(name, '@')
	if i < 0 {
		return 0, false
	}
	r, err := strconv.Atoi(name[i+1:])
	if err != nil || r < 0 {
		return 0, false
	}
	return r, true
}

// stuckFor is the park threshold the collector classifies stage states
// against: a stage parked longer reads blocked, shorter reads running. It
// matches the status endpoint's threshold, so the fleet view and the
// node-local /status agree on what "blocked" means.
const stuckFor = time.Second

// A fleetCollector builds the fg-side half of a rank's telemetry record
// from the run's Observe bundle, and tracks the latest watchdog stall
// report per rank so the record can carry it. One collector serves one
// cluster; instrument builds it and detaches its hooks when the run ends.
type fleetCollector struct {
	o *fg.Observe

	mu     sync.Mutex
	stalls map[int]*rankStall

	// restore undoes the OnStall/OnStats wrapping; called from detach so
	// back-to-back runs do not chain handlers without bound.
	restore func()
}

type rankStall struct {
	network string
	rec     cluster.StallRecord
}

// newFleetCollector hooks the bundle's watchdog and completion callbacks
// (wrapping, not replacing, whatever is installed) so stall reports are
// captured per rank and cleared when the stalled network finishes.
func newFleetCollector(o *fg.Observe) *fleetCollector {
	fc := &fleetCollector{o: o, stalls: map[int]*rankStall{}, restore: func() {}}
	if o == nil {
		return fc
	}
	prevStats := o.OnStats
	o.OnStats = func(st fg.NetworkStats) {
		fc.networkFinished(st.Name)
		if prevStats != nil {
			prevStats(st)
		}
	}
	fc.restore = func() { o.OnStats = prevStats }
	if o.Watchdog != nil {
		prevStall := o.Watchdog.OnStall
		o.Watchdog.OnStall = func(rep fg.StallReport) {
			fc.observeStall(rep)
			if prevStall != nil {
				prevStall(rep)
			}
		}
		prevRestore := fc.restore
		fc.restore = func() {
			o.Watchdog.OnStall = prevStall
			prevRestore()
		}
	}
	return fc
}

// observeStall reduces a watchdog report to its wire form and files it
// under the reporting network's rank.
func (fc *fleetCollector) observeStall(rep fg.StallReport) {
	rank, ok := rankOfNetwork(rep.Network)
	if !ok {
		return
	}
	rec := cluster.StallRecord{
		Network:         rep.Network,
		Culprit:         rep.Culprit,
		CulpritPipeline: rep.CulpritPipeline,
		Reason:          rep.Reason,
		StalledNS:       int64(rep.Stalled),
		AtUnixNano:      time.Now().UnixNano(),
	}
	for _, s := range rep.Stages {
		if s.Stage == rep.Culprit && s.Pipeline == rep.CulpritPipeline {
			rec.CulpritState = s.State
			break
		}
	}
	fc.mu.Lock()
	fc.stalls[rank] = &rankStall{network: rep.Network, rec: rec}
	fc.mu.Unlock()
}

// networkFinished clears a rank's stall once the network that reported it
// completes — a finished network is by definition no longer stalled.
func (fc *fleetCollector) networkFinished(name string) {
	rank, ok := rankOfNetwork(name)
	if !ok {
		return
	}
	fc.mu.Lock()
	if s := fc.stalls[rank]; s != nil && s.network == name {
		delete(fc.stalls, rank)
	}
	fc.mu.Unlock()
}

// collectFor returns the Collect callback for one cluster. Auto-tuner
// state is process-scoped (tuners carry no rank), so it is attributed to
// the process's first local rank — exactly right in the one-rank-per-
// process deployments the fleet view exists for, and a documented
// representative otherwise.
func (fc *fleetCollector) collectFor(c *cluster.Cluster) func(rank int) cluster.RankTelemetry {
	tunerRank := -1
	if local := c.Local(); len(local) > 0 {
		tunerRank = local[0].Rank()
	}
	return func(rank int) cluster.RankTelemetry {
		return fc.collect(rank, rank == tunerRank)
	}
}

// collect assembles the fg-side fields of one rank's record from the
// metrics registry's registered networks, filtered by the rank suffix in
// their names.
func (fc *fleetCollector) collect(rank int, tunerOwner bool) cluster.RankTelemetry {
	var rec cluster.RankTelemetry
	if fc.o != nil && fc.o.Metrics != nil {
		var bestRunning, bestAny cluster.BottleneckRecord
		for _, nw := range fc.o.Metrics.Networks() {
			st := nw.Stats()
			r, ok := rankOfNetwork(st.Name)
			if !ok || r != rank {
				continue
			}
			if rec.Program == "" {
				if i := strings.IndexByte(st.Name, '.'); i > 0 {
					rec.Program = st.Name[:i]
				}
			}
			health := st.Classify(stuckFor)
			for i, s := range st.Stages {
				sr := cluster.StageRecord{
					Stage:      s.Stage,
					Pipeline:   s.Pipeline,
					Network:    st.Name,
					Rounds:     s.Rounds,
					QueueLen:   s.QueueLen,
					QueueCap:   s.QueueCap,
					SlowPushes: s.SlowPushes,
					InStateNS:  int64(s.InState),
					WorkNS:     int64(s.Work),
					WaitNS:     int64(s.AcceptWait),
				}
				if i < len(health) {
					sr.State = health[i].State
				}
				rec.Stages = append(rec.Stages, sr)
			}
			for _, p := range st.Pipelines {
				rec.Pipelines = append(rec.Pipelines, cluster.PipelineRecord{
					Name:             p.Name,
					Network:          st.Name,
					Rounds:           p.Rounds,
					PoolIdle:         p.PoolIdle,
					PoolCap:          p.PoolCap,
					Buffers:          p.Buffers,
					EffectiveBuffers: p.EffectiveBuffers,
				})
			}
			if b := st.Bottleneck(); b.Stage != "" {
				br := cluster.BottleneckRecord{
					Network:     st.Name,
					Stage:       b.Stage,
					Pipeline:    b.Pipeline,
					WorkNS:      int64(b.Work),
					Utilization: b.Utilization,
					Overlap:     b.Overlap,
				}
				if st.Running && br.WorkNS > bestRunning.WorkNS {
					bestRunning = br
				}
				if br.WorkNS > bestAny.WorkNS {
					bestAny = br
				}
			}
		}
		// The governing stage of the rank: prefer the live network (old
		// passes' finished networks stay registered and would otherwise
		// dominate forever); fall back to the biggest finished one so a
		// completed run still reports what governed it.
		if bestRunning.Stage != "" {
			rec.Bottleneck = bestRunning
		} else {
			rec.Bottleneck = bestAny
		}
		if tunerOwner {
			workers := map[string]int{}
			var stages []string
			for _, t := range fc.o.Metrics.Tuners() {
				rec.Adjustments += t.Adjustments()
				for _, k := range t.KnobStates() {
					if _, seen := workers[k.Stage]; !seen {
						stages = append(stages, k.Stage)
					}
					workers[k.Stage] = k.Workers // last tuner wins: the newest pass
				}
			}
			for _, s := range stages {
				rec.Knobs = append(rec.Knobs, cluster.KnobRecord{Stage: s, Workers: workers[s]})
			}
		}
	}
	fc.mu.Lock()
	if s := fc.stalls[rank]; s != nil {
		cp := s.rec
		rec.Stall = &cp
	}
	fc.mu.Unlock()
	return rec
}

// blackbox returns the Blackbox callback for the telemetry pull RPC: the
// flight recorder's Chrome-trace dump, or nil when the bundle has no
// recorder.
func (fc *fleetCollector) blackbox() func(w io.Writer) error {
	if fc.o == nil || fc.o.Flight == nil {
		return nil
	}
	fl := fc.o.Flight
	return func(w io.Writer) error { return fl.WriteChromeTrace(w) }
}

// A ClusterTelemetry is the fleet view's HTTP server, the cmds' end of the
// -cluster-status-addr flag. It serves:
//
//	/cluster/status.json  the aggregator's fleet view (cluster.ClusterStatus)
//	/cluster/metrics      the same view as rank-labeled Prometheus series
//	/cluster/blackbox     ?rank=N[&stall=1]: a rank's flight recorder, pulled
//	                      on demand (stall=1 returns the one auto-pulled at
//	                      the rank's last stall)
//	/cluster/profile      ?rank=N&kind=cpu|heap: a pprof profile pulled from
//	                      the rank's process
//
// The server outlives any one cluster — fgexp builds many — so it holds a
// swappable pointer to the current telemetry plane; SetPlane (wired through
// Params.OnTelemetry) installs each fresh cluster's. On a process that does
// not host the aggregator rank the endpoints answer 503: the fleet view
// lives where the records flow.
type ClusterTelemetry struct {
	reg *fg.MetricsRegistry
	ln  net.Listener
	srv *http.Server

	mu    sync.Mutex
	plane *cluster.Telemetry
}

// ServeClusterTelemetry starts the fleet-view server on addr (":0" picks a
// free port). The view is empty until SetPlane installs a telemetry plane.
func ServeClusterTelemetry(addr string) (*ClusterTelemetry, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("harness: cluster status listener: %w", err)
	}
	ct := &ClusterTelemetry{ln: ln, reg: fg.NewMetricsRegistry()}
	ct.reg.RegisterFunc(func(emit fg.EmitFunc) {
		if a := ct.aggregator(); a != nil {
			a.EmitMetrics(emit)
		}
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/status.json", ct.handleStatus)
	mux.Handle("/cluster/metrics", ct.reg)
	mux.HandleFunc("/cluster/blackbox", ct.handleBlackbox)
	mux.HandleFunc("/cluster/profile", ct.handleProfile)
	ct.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = ct.srv.Serve(ln) }()
	return ct, nil
}

// SetPlane installs the current cluster's telemetry plane; nil-safe so the
// harness can hand it whatever StartTelemetry returned.
func (ct *ClusterTelemetry) SetPlane(t *cluster.Telemetry) {
	if ct == nil || t == nil {
		return
	}
	ct.mu.Lock()
	ct.plane = t
	ct.mu.Unlock()
}

func (ct *ClusterTelemetry) telemetry() *cluster.Telemetry {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.plane
}

func (ct *ClusterTelemetry) aggregator() *cluster.TelemetryAggregator {
	return ct.telemetry().Aggregator()
}

// Addr returns the server's bound address.
func (ct *ClusterTelemetry) Addr() string { return ct.ln.Addr().String() }

// Close stops the server.
func (ct *ClusterTelemetry) Close() error {
	if ct == nil {
		return nil
	}
	return ct.srv.Close()
}

func (ct *ClusterTelemetry) handleStatus(w http.ResponseWriter, _ *http.Request) {
	a := ct.aggregator()
	if a == nil {
		http.Error(w, "no telemetry aggregator in this process (is this the aggregator rank, and has a run started?)",
			http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(a.Status())
}

// pullRank parses the mandatory rank query parameter.
func pullRank(r *http.Request) (int, error) {
	v := r.URL.Query().Get("rank")
	if v == "" {
		return 0, errors.New("missing rank parameter")
	}
	rank, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad rank %q", v)
	}
	return rank, nil
}

func (ct *ClusterTelemetry) handleBlackbox(w http.ResponseWriter, r *http.Request) {
	t := ct.telemetry()
	if t == nil {
		http.Error(w, "telemetry not running", http.StatusServiceUnavailable)
		return
	}
	rank, err := pullRank(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var data []byte
	if r.URL.Query().Get("stall") != "" {
		if a := t.Aggregator(); a != nil {
			data, err = a.StallBlackbox(rank)
		} else {
			err = errors.New("no aggregator in this process")
		}
	} else {
		data, err = t.Pull(rank, cluster.PullBlackbox, 0)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (ct *ClusterTelemetry) handleProfile(w http.ResponseWriter, r *http.Request) {
	t := ct.telemetry()
	if t == nil {
		http.Error(w, "telemetry not running", http.StatusServiceUnavailable)
		return
	}
	rank, err := pullRank(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var kind string
	switch k := r.URL.Query().Get("kind"); k {
	case "cpu":
		kind = cluster.PullCPUProfile
	case "heap", "":
		kind = cluster.PullHeapProfile
	default:
		http.Error(w, fmt.Sprintf("unknown profile kind %q (want cpu or heap)", k), http.StatusBadRequest)
		return
	}
	data, err := t.Pull(rank, kind, 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}
