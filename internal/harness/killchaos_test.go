package harness

// The kill -9 acceptance test for the resilience stack: a two-process dsort
// over real TCP loses rank 1 to SIGKILL in the middle of pass 2 — after
// every rank has committed its pass-1 checkpoint — and must finish anyway.
// The pieces under test, end to end:
//
//   - rank 0's heartbeat detector notices the silence and aborts the
//     attempt with a PeerDeathError (no watchdog is armed; nothing else
//     would end the wait promptly);
//   - rank 0's supervisor tears the attempt down, backs off, and retries;
//   - a replacement rank-1 process joins at the same address, both ranks
//     vote to resume from the shared checkpoint directory, and pass 2 runs
//     again from the pass-1 run files;
//   - the ranks verify the output collectively (check.DistributedOutput
//     inside the harness), and each process polices its own goroutine
//     shutdown before exiting 0.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/internal/faultinject"
	"github.com/fg-go/fg/pdm"
	"github.com/fg-go/fg/workload"
)

// childExitLeak: the job succeeded but module goroutines were still alive
// after a generous unwind window.
const childExitLeak = 5

// runKillChild is one rank of the kill-chaos job, configured by
// environment: FG_KILL_CHILD_RANK, FG_TCP_PEERS, FG_KILL_CKPT (the shared
// checkpoint directory), and — only in the sacrificial first rank-1
// process — FG_KILL_ON, the 1-based output-file disk operation to die on.
func runKillChild() int {
	rank, err := strconv.Atoi(os.Getenv("FG_KILL_CHILD_RANK"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad FG_KILL_CHILD_RANK: %v\n", err)
		return 2
	}
	pr := tcpChildParams(rank, strings.Split(os.Getenv("FG_TCP_PEERS"), ","))
	pr.CheckpointDir = os.Getenv("FG_KILL_CKPT")
	pr.Supervise = 3
	pr.SuperviseLog = os.Stderr
	// Slow the simulated disks so each pass spans many heartbeat intervals:
	// the victim must live long enough to be heard from (warming the control
	// connections), so that its death is detected on the DeadAfter path
	// rather than waited out under startup grace.
	pr.Disk = pdm.DiskModel{SeekLatency: 200 * time.Microsecond, BytesPerSecond: 200e3}
	pr.Health = cluster.HealthConfig{
		Interval:     25 * time.Millisecond,
		SuspectAfter: 150 * time.Millisecond,
		DeadAfter:    600 * time.Millisecond,
		// Generous: the replacement process and rank 0's retry attempt find
		// each other on their own schedule.
		StartupGrace: 30 * time.Second,
	}
	spec, err := pr.Spec(workload.Uniform)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spec: %v\n", err)
		return 2
	}
	if v := os.Getenv("FG_KILL_ON"); v != "" {
		killOn, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad FG_KILL_ON: %v\n", err)
			return 2
		}
		// Scope the injector to the output file: dsort touches it only in
		// pass 2, so candidate #1 is the first pass-2 output write — by
		// which point the pass-1 closing barrier guarantees every rank's
		// pass-1 checkpoint is committed. SIGKILL lands mid-write.
		inj := faultinject.New(faultinject.Config{KillOn: killOn})
		hook := inj.DiskHook(spec.OutputName)
		pr.OnCluster = func(c *cluster.Cluster) {
			for _, n := range c.Local() {
				n.Disk.SetFault(hook)
			}
		}
	}
	res, err := pr.Run(Dsort, workload.Uniform, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsort over tcp: %v\n", err)
		return childExitRunError
	}
	if leaked := check.LeakedGoroutines(5 * time.Second); len(leaked) > 0 {
		fmt.Fprintf(os.Stderr, "leaked %d goroutine(s):\n%s\n",
			len(leaked), strings.Join(leaked, "\n\n"))
		return childExitLeak
	}
	fmt.Printf("resumed=%s\n", strings.Join(res.Resumed, ","))
	return 0
}

// watchBuf is an io.Writer that accumulates output and signals (once) when
// a marker substring appears — how the parent sequences the replacement
// spawn off the supervisor's own progress lines.
type watchBuf struct {
	mu    sync.Mutex
	b     bytes.Buffer
	match string
	seen  chan struct{}
	once  sync.Once
}

func newWatchBuf(match string) *watchBuf {
	return &watchBuf{match: match, seen: make(chan struct{})}
}

func (w *watchBuf) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.b.Write(p)
	if w.match != "" && strings.Contains(w.b.String(), w.match) {
		w.once.Do(func() { close(w.seen) })
	}
	return len(p), nil
}

func (w *watchBuf) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// spawnKillChild starts one rank of the kill-chaos job. stderr goes to the
// given watchBuf so the parent can react to supervisor lines as they appear.
func spawnKillChild(t *testing.T, rank int, peers []string, ckpt string, stderr *watchBuf, extraEnv ...string) *tcpChild {
	t.Helper()
	ch := &tcpChild{done: make(chan error, 1)}
	ch.cmd = exec.Command(os.Args[0], "-test.run=^$")
	ch.cmd.Dir = t.TempDir()
	ch.cmd.Stdout = &ch.stdout
	ch.cmd.Stderr = stderr
	ch.cmd.Env = append(os.Environ(),
		"FG_KILL_CHILD_RANK="+strconv.Itoa(rank),
		"FG_TCP_PEERS="+strings.Join(peers, ","),
		"FG_KILL_CKPT="+ckpt,
	)
	ch.cmd.Env = append(ch.cmd.Env, extraEnv...)
	if err := ch.cmd.Start(); err != nil {
		t.Fatalf("start rank %d: %v", rank, err)
	}
	go func() { ch.done <- ch.cmd.Wait() }()
	t.Cleanup(func() { ch.cmd.Process.Kill() })
	return ch
}

// TestTwoProcessDsortTCPKillDashNine: rank 1 of a two-process TCP dsort is
// SIGKILLed mid-pass-2; heartbeats detect it, the supervisor retries, a
// replacement rank-1 process resumes from the pass-1 checkpoint, and the
// job completes with collectively verified output and clean shutdowns.
func TestTwoProcessDsortTCPKillDashNine(t *testing.T) {
	peers := make([]string, 2)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		peers[i] = ln.Addr().String()
		ln.Close()
	}
	ckpt := t.TempDir()

	stderr0 := newWatchBuf("attempt 1: failed")
	rank0 := spawnKillChild(t, 0, peers, ckpt, stderr0)
	victimErr := newWatchBuf("")
	victim := spawnKillChild(t, 1, peers, ckpt, victimErr, "FG_KILL_ON=1")

	// The victim must die by signal, not exit by its own will.
	if code := waitChild(t, 1, victim, 60*time.Second); code != -1 {
		t.Fatalf("sacrificial rank 1 exited %d, want SIGKILL (-1)\nstderr:\n%s",
			code, victimErr.String())
	}

	// Spawn the replacement only after rank 0's supervisor has logged the
	// failed attempt: by then attempt 1's cluster (listener included) is
	// fully closed, so the replacement can only ever join attempt 2 — no
	// frame can be swallowed by a dying cluster instance.
	select {
	case <-stderr0.seen:
	case <-time.After(60 * time.Second):
		t.Fatalf("rank 0 never reported a failed attempt\nstderr:\n%s", stderr0.String())
	}
	replErr := newWatchBuf("")
	repl := spawnKillChild(t, 1, peers, ckpt, replErr)

	if code := waitChild(t, 1, repl, 120*time.Second); code != 0 {
		t.Fatalf("replacement rank 1 exited %d\nstderr:\n%s", code, replErr.String())
	}
	if code := waitChild(t, 0, rank0, 120*time.Second); code != 0 {
		t.Fatalf("rank 0 exited %d\nstderr:\n%s", code, stderr0.String())
	}

	out0 := stderr0.String()
	// Millisecond-scale silence proves the DeadAfter path fired: the victim
	// was heard from while alive, so its death was aged against the dead
	// threshold, not waited out under the (much longer) startup grace.
	if !regexp.MustCompile(`declared dead after \d+ms`).MatchString(out0) {
		t.Errorf("rank 0 did not declare heartbeat death within the dead threshold:\n%s", out0)
	}
	if !strings.Contains(out0, "retrying in") {
		t.Errorf("rank 0's supervisor never retried:\n%s", out0)
	}
	for _, ch := range []struct {
		name   string
		stdout string
	}{{"rank 0", rank0.stdout.String()}, {"replacement rank 1", repl.stdout.String()}} {
		if !strings.Contains(ch.stdout, "resumed=pass1") {
			t.Errorf("%s did not resume from the pass-1 checkpoint: stdout %q", ch.name, ch.stdout)
		}
	}
	t.Logf("rank 0 supervisor log:\n%s", out0)
}
