// Package faultinject provides a deterministic, seeded fault injector for
// chaos-testing FG programs. An Injector decides, per operation, whether to
// inject an error and how much latency to add; hooks adapt one injector to
// the substrate's hook points — pdm.Disk.SetFault for disk I/O and
// cluster.Node.SetFault for interprocessor communication. One injector may
// be shared by many disks and nodes: its counters are global, so a
// fail-N-then-succeed schedule spans the whole cluster deterministically.
package faultinject

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"github.com/fg-go/fg/cluster"
)

// Config parameterizes an Injector. Zero values disable each mechanism.
type Config struct {
	// Seed makes probabilistic decisions reproducible. Zero seeds from a
	// fixed default, so two injectors with identical configs make identical
	// decisions given identical operation orders.
	Seed int64
	// FailN fails the first N candidate operations, then lets every later
	// one succeed — the deterministic schedule for proving that retries
	// absorb transient faults.
	FailN int
	// ErrProb fails each candidate operation independently with this
	// probability, after any FailN budget is spent.
	ErrProb float64
	// Latency is added to every candidate operation, injected fault or not,
	// by sleeping in the caller.
	Latency time.Duration
	// HangOn, if positive, hangs the HangOn-th candidate operation (1-based,
	// counted across the whole cluster): the calling goroutine blocks inside
	// the hook until Release is called, then the operation proceeds
	// normally. This simulates the silent-stall failure mode — a send or
	// disk op that neither completes nor errors — which a watchdog must
	// detect. Exactly one operation hangs per injector.
	HangOn int64
	// KillOn, if positive, SIGKILLs the whole process on the KillOn-th
	// candidate operation — the real thing, not a simulation: no deferred
	// functions run, no connections are closed gracefully, the kernel
	// reaps the process mid-write. It is the chaos plan behind the
	// process-kill tests: a child process runs with KillOn set, the parent
	// watches it vanish, and the survivors' heartbeat detectors must
	// notice. Meaningless (and dangerous) outside a sacrificial child
	// process; never set it in the test-runner process itself.
	KillOn int64
}

// A Fault is an injected error. It is transient by construction: retrying
// the operation may succeed.
type Fault struct {
	// Op is the operation that was failed ("read", "write", "send", "recv").
	Op string
	// Seq is the 1-based index of this fault among all faults injected.
	Seq int64
}

func (e *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected fault #%d on %s", e.Seq, e.Op)
}

// An Injector decides the fate of operations. All methods are safe for
// concurrent use.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	ops      int64
	injected int64
	hung     int64

	hang        chan struct{}
	releaseOnce sync.Once
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x600df00d
	}
	return &Injector{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		hang: make(chan struct{}),
	}
}

// Op records one candidate operation and decides its fate: it sleeps the
// configured latency, hangs if this is the HangOn-th candidate (until
// Release), then returns an injected *Fault or nil.
func (in *Injector) Op(op string) error {
	if in.cfg.Latency > 0 {
		time.Sleep(in.cfg.Latency)
	}
	in.mu.Lock()
	in.ops++
	if in.cfg.KillOn > 0 && in.ops == in.cfg.KillOn {
		in.mu.Unlock()
		kill()
	}
	hangNow := in.cfg.HangOn > 0 && in.ops == in.cfg.HangOn
	if hangNow {
		in.hung++
	}
	fail := in.injected < int64(in.cfg.FailN)
	if !fail && in.cfg.ErrProb > 0 {
		fail = in.rng.Float64() < in.cfg.ErrProb
	}
	if fail {
		in.injected++
	}
	seq := in.injected
	in.mu.Unlock()
	if hangNow {
		// Block outside the lock so the rest of the cluster keeps going (and
		// hanging, as the stall propagates) while this goroutine is stuck.
		<-in.hang
	}
	if !fail {
		return nil
	}
	return &Fault{Op: op, Seq: seq}
}

// Release unblocks a goroutine hung by HangOn; the hung operation then
// proceeds normally, so a released run can complete and be verified.
// Idempotent, and safe to call even if nothing ever hung.
func (in *Injector) Release() {
	in.releaseOnce.Do(func() { close(in.hang) })
}

// Hung returns how many operations the injector has hung (0 or 1).
func (in *Injector) Hung() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hung
}

// Ops returns how many candidate operations the injector has seen.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Injected returns how many faults the injector has injected.
func (in *Injector) Injected() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// DiskHook adapts the injector to pdm.Disk.SetFault. If names are given,
// only operations on those file names are candidates; others pass
// untouched. Filtering by name scopes chaos to one program's files — e.g.
// dsort's runs file — leaving setup and verification I/O alone.
func (in *Injector) DiskHook(names ...string) func(op, name string, off int64) error {
	return func(op, name string, off int64) error {
		if len(names) > 0 && !contains(names, name) {
			return nil
		}
		return in.Op(op)
	}
}

// CommHook adapts the injector to cluster.Node.SetFault. If ops are given
// ("send", "recv"), only those operations are candidates.
func (in *Injector) CommHook(ops ...string) func(op string, peer int, nbytes int) error {
	return func(op string, peer int, nbytes int) error {
		if len(ops) > 0 && !contains(ops, op) {
			return nil
		}
		return in.Op(op)
	}
}

// NetHook adapts the injector to cluster.Cluster.SetNetFault, turning the
// injector's fail schedule into wire-level faults on the TCP transport:
// each outgoing frame of at least minBytes payload is a candidate, and a
// candidate the injector fails suffers the given action (drop the frame,
// close the connection, or close it mid-frame). The minBytes filter scopes
// chaos to bulk data traffic, leaving small control messages (barriers,
// verification gathers) alone. Config.Latency applies to every candidate
// frame, failed or not, which makes NetHook with action
// cluster.NetFaultNone a slow-network simulator.
func (in *Injector) NetHook(action cluster.NetFault, minBytes int) cluster.NetFaultHook {
	return func(src, dst, nbytes int) cluster.NetFault {
		if nbytes < minBytes {
			return cluster.NetFaultNone
		}
		if in.Op("net") != nil {
			return action
		}
		return cluster.NetFaultNone
	}
}

// kill delivers SIGKILL to this process. os.Process.Kill sends SIGKILL on
// Unix, which cannot be caught or cleaned up after — exactly the abrupt
// death the resilience layer must survive. The select backstop keeps the
// goroutine from returning in the instant before the signal lands.
func kill() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill()
	}
	select {}
}

// PartitionChurn simulates a flapping network link to one rank: the rank is
// partitioned (frames and heartbeats silently dropped at every receiver)
// for down, healed for up, repeated cycles times — or until the returned
// stop function is called, which also waits for the churn goroutine and
// heals the partition. cycles <= 0 churns until stopped. Pair a churn of
// down < the cluster's DeadAfter with a running job to prove transient
// partitions do not kill anyone; push down past DeadAfter to prove
// sustained ones do.
func PartitionChurn(c *cluster.Cluster, rank int, down, up time.Duration, cycles int) (stop func()) {
	stopc := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer c.SetPartitioned(rank, false)
		for i := 0; cycles <= 0 || i < cycles; i++ {
			c.SetPartitioned(rank, true)
			select {
			case <-time.After(down):
			case <-stopc:
				return
			}
			c.SetPartitioned(rank, false)
			select {
			case <-time.After(up):
			case <-stopc:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopc) })
		<-done
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
