package faultinject

import (
	"errors"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
)

func TestFailNThenSucceed(t *testing.T) {
	in := New(Config{FailN: 3})
	for i := 0; i < 3; i++ {
		err := in.Op("read")
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("op %d: got %v, want a *Fault", i, err)
		}
		if f.Seq != int64(i+1) {
			t.Errorf("op %d: Seq = %d, want %d", i, f.Seq, i+1)
		}
		if f.Op != "read" {
			t.Errorf("op %d: Op = %q, want read", i, f.Op)
		}
	}
	for i := 0; i < 10; i++ {
		if err := in.Op("read"); err != nil {
			t.Fatalf("op after budget spent failed: %v", err)
		}
	}
	if in.Ops() != 13 || in.Injected() != 3 {
		t.Errorf("counters = (%d ops, %d injected), want (13, 3)", in.Ops(), in.Injected())
	}
}

func TestErrProbIsSeededAndDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		in := New(Config{Seed: seed, ErrProb: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Op("write") != nil
		}
		return out
	}
	a, b := run(17), run(17)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(18)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decisions")
	}
	hits := 0
	for _, v := range a {
		if v {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Errorf("ErrProb 0.3 injected %d/%d faults", hits, len(a))
	}
}

func TestZeroConfigNeverInjects(t *testing.T) {
	in := New(Config{})
	for i := 0; i < 100; i++ {
		if err := in.Op("read"); err != nil {
			t.Fatalf("zero config injected: %v", err)
		}
	}
	if in.Injected() != 0 {
		t.Errorf("Injected = %d, want 0", in.Injected())
	}
}

func TestDiskHookFiltersByName(t *testing.T) {
	in := New(Config{FailN: 100})
	hook := in.DiskHook("dsort.runs")
	if err := hook("write", "input.dat", 0); err != nil {
		t.Errorf("unmatched name injected: %v", err)
	}
	if err := hook("write", "dsort.runs", 0); err == nil {
		t.Error("matched name not injected")
	}
	if in.Ops() != 1 {
		t.Errorf("filtered-out op counted: Ops = %d, want 1", in.Ops())
	}
	// No filter: every name is a candidate.
	all := New(Config{FailN: 1}).DiskHook()
	if err := all("read", "anything", 0); err == nil {
		t.Error("unfiltered hook did not inject")
	}
}

func TestCommHookFiltersByOp(t *testing.T) {
	in := New(Config{FailN: 100})
	hook := in.CommHook("send")
	if err := hook("recv", 1, 0); err != nil {
		t.Errorf("unmatched op injected: %v", err)
	}
	if err := hook("send", 1, 64); err == nil {
		t.Error("matched op not injected")
	}
}

func TestLatencyIsAdded(t *testing.T) {
	in := New(Config{Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Op("read"); err != nil {
		t.Fatalf("latency-only config injected: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("op returned after %v, want >= 20ms", d)
	}
}

func TestHangOnBlocksUntilRelease(t *testing.T) {
	in := New(Config{HangOn: 2})
	if err := in.Op("write"); err != nil {
		t.Fatalf("op before the hang point failed: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- in.Op("write") }()
	select {
	case err := <-done:
		t.Fatalf("the HangOn-th op returned (%v) before Release", err)
	case <-time.After(100 * time.Millisecond):
	}
	if got := in.Hung(); got != 1 {
		t.Errorf("Hung = %d while an op is blocked, want 1", got)
	}
	in.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("released op failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("op still blocked after Release")
	}
	// Later ops pass untouched, the hang fires at most once, and Release
	// stays idempotent.
	for i := 0; i < 5; i++ {
		if err := in.Op("write"); err != nil {
			t.Fatalf("op after release failed: %v", err)
		}
	}
	if got := in.Hung(); got != 1 {
		t.Errorf("Hung = %d after release, want 1", got)
	}
	in.Release()
}

func TestReleaseWithoutHangIsSafe(t *testing.T) {
	in := New(Config{})
	in.Release()
	in.Release()
	if err := in.Op("read"); err != nil {
		t.Fatalf("op after no-op release failed: %v", err)
	}
	if in.Hung() != 0 {
		t.Errorf("Hung = %d with no HangOn configured", in.Hung())
	}
}

func TestNetHookFiltersAndFires(t *testing.T) {
	in := New(Config{FailN: 1})
	hook := in.NetHook(cluster.NetFaultCloseConn, 100)
	// Frames below the size floor are never candidates.
	for i := 0; i < 3; i++ {
		if got := hook(0, 1, 50); got != cluster.NetFaultNone {
			t.Fatalf("small frame got fault %v", got)
		}
	}
	if in.Ops() != 0 {
		t.Fatalf("small frames consumed %d candidate ops", in.Ops())
	}
	// The first big-enough frame eats the FailN budget and gets the action.
	if got := hook(0, 1, 100); got != cluster.NetFaultCloseConn {
		t.Fatalf("first bulk frame got %v, want CloseConn", got)
	}
	// Later frames pass.
	if got := hook(1, 0, 4096); got != cluster.NetFaultNone {
		t.Fatalf("post-budget frame got %v, want None", got)
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", in.Injected())
	}
}
