package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, width := range []int{0, 1, 2, runtime.NumCPU(), 2*runtime.NumCPU() + 1} {
		for _, n := range []int{0, 1, 2, 3, 17, 1000} {
			ran := make([]atomic.Int32, n)
			Do(n, width, func(i int) { ran[i].Add(1) })
			for i := range ran {
				if got := ran[i].Load(); got != 1 {
					t.Fatalf("width=%d n=%d: task %d ran %d times", width, n, i, got)
				}
			}
		}
	}
}

func TestDoConcurrentCallers(t *testing.T) {
	// Several goroutines hammer the shared pool at once; every caller must
	// still see all of its own tasks complete.
	const callers, tasks = 8, 256
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func() {
			var sum atomic.Int64
			Do(tasks, 4, func(i int) { sum.Add(int64(i)) })
			want := int64(tasks * (tasks - 1) / 2)
			if got := sum.Load(); got != want {
				errs <- errors.New("caller saw incomplete work")
				return
			}
			errs <- nil
		}()
	}
	for c := 0; c < callers; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDoReraisesPanicOnCaller(t *testing.T) {
	sentinel := errors.New("injected fault")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in task did not reach the caller")
		}
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %T, want *TaskPanic", r)
		}
		if !errors.Is(tp, sentinel) {
			t.Fatalf("TaskPanic does not unwrap to the panic value: %v", tp.Value)
		}
		if len(tp.Stack) == 0 {
			t.Fatal("TaskPanic carries no stack")
		}
	}()
	Do(64, 4, func(i int) {
		if i == 13 {
			panic(sentinel)
		}
	})
}

func TestDoPanicStillCompletesSiblings(t *testing.T) {
	// A panic must not strand the caller: Do returns (by panicking) only
	// after every claimed task has finished, and no goroutine leaks blocked
	// on the job.
	var completed atomic.Int32
	func() {
		defer func() { recover() }()
		Do(100, 4, func(i int) {
			if i == 0 {
				panic("boom")
			}
			completed.Add(1)
		})
	}()
	// At least some siblings ran; the exact count depends on scheduling
	// (tasks claimed after the panic is observed are skipped by design).
	if completed.Load() == 0 && runtime.NumCPU() > 1 {
		t.Log("all siblings skipped; acceptable but unusual")
	}
}

func TestDefaultWidth(t *testing.T) {
	if DefaultWidth() != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWidth=%d, want GOMAXPROCS=%d", DefaultWidth(), runtime.GOMAXPROCS(0))
	}
}

func BenchmarkDoOverhead(b *testing.B) {
	// The fixed cost of fanning a trivial 8-task job through the pool —
	// the floor below which kernels must prefer their serial paths.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Do(8, 0, func(int) {})
	}
}
