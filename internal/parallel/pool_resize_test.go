package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolGrowsWithGOMAXPROCS is the regression test for the latent
// sized-at-init bug: the first Do of a process's life used to freeze the
// pool at GOMAXPROCS-1 workers forever, so a server that raised GOMAXPROCS
// (or simply made its first tiny kernel call early, under a small test
// setting) ran every later network's kernels nearly serial. The pool must
// re-check its size on every acquisition.
func TestPoolGrowsWithGOMAXPROCS(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skip("needs >= 4 CPUs to observe growth")
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)

	// Freeze-at-init trigger: size the pool while GOMAXPROCS is small.
	Do(8, 2, func(int) {})

	runtime.GOMAXPROCS(4)
	// The barrier only releases once `want` tasks are inside fn at the same
	// time; with a pool still frozen at 1 worker (GOMAXPROCS(2)-1), at most
	// 2 goroutines can ever be inside and the barrier would time out.
	const want = 4
	var inside atomic.Int32
	var max atomic.Int32
	deadline := time.Now().Add(5 * time.Second)
	Do(want, want, func(int) {
		n := inside.Add(1)
		defer inside.Add(-1)
		for {
			cur := max.Load()
			if n <= cur || max.CompareAndSwap(cur, n) {
				break
			}
		}
		for max.Load() < want && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
	})
	if got := max.Load(); got < want {
		t.Fatalf("observed at most %d concurrent tasks after raising GOMAXPROCS to 4; pool did not grow", got)
	}
	if w := Workers(); w < 3 {
		t.Fatalf("Workers() = %d after GOMAXPROCS(4), want >= 3", w)
	}
}

// TestPoolShrinksWhenGOMAXPROCSDrops drives the retirement path: after the
// target falls, workers finishing a job excuse themselves until the pool
// matches it again.
func TestPoolShrinksWhenGOMAXPROCSDrops(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skip("needs >= 4 CPUs to observe shrink")
	}
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	Do(16, 4, func(int) {})

	runtime.GOMAXPROCS(2)
	deadline := time.Now().Add(5 * time.Second)
	for Workers() > 1 && time.Now().Before(deadline) {
		// Each acquisition republishes the lower target; each job gives the
		// surplus workers a retirement point.
		Do(8, 2, func(int) {})
		time.Sleep(time.Millisecond)
	}
	if w := Workers(); w > 1 {
		t.Fatalf("Workers() = %d after GOMAXPROCS(2), want 1", w)
	}
}

// TestConcurrentNetworksRacePoolAcquisition models the daemon's steady
// state: many networks' stages hit the pool at once, from a cold pool, each
// expecting its own tasks to complete exactly once — while GOMAXPROCS churns
// underneath them. This is the "two networks racing pool acquisition"
// regression test at the layer where the race lives.
func TestConcurrentNetworksRacePoolAcquisition(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	const networks, rounds, tasks = 6, 20, 64
	var wg sync.WaitGroup
	fail := make(chan string, networks)
	for nw := 0; nw < networks; nw++ {
		wg.Add(1)
		go func(nw int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if nw == 0 {
					// One "network" flaps the target while the rest compute.
					runtime.GOMAXPROCS(2 + r%3)
				}
				ran := make([]atomic.Int32, tasks)
				Do(tasks, 4, func(i int) { ran[i].Add(1) })
				for i := range ran {
					if ran[i].Load() != 1 {
						fail <- "a task ran a wrong number of times"
						return
					}
				}
			}
		}(nw)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}
