// Package parallel provides the shared, bounded worker pool behind the
// intra-buffer data-parallel kernels in internal/sortalgo. FG's pipelines
// already overlap I/O, communication, and computation across stages; this
// package adds the remaining axis the paper's Section II gestures at —
// "when threads can run concurrently on multiple cores" — by letting one
// synchronous compute stage spread the work on a single buffer across the
// machine's cores.
//
// The pool is deliberately global and bounded: it holds GOMAXPROCS-1
// long-lived workers, started lazily on first use, resized whenever
// GOMAXPROCS has moved since (a long-running server may raise it after the
// first kernel call), and reused for every kernel invocation thereafter,
// so a sort stage that runs thousands of rounds never spawns per-round
// goroutines. Because every caller of Do
// shares the same workers, concurrent stages — including replicas created
// with fg.Stage.Replicate — divide the machine between them instead of
// oversubscribing it: total kernel concurrency never exceeds the pool size
// plus the number of calling stage goroutines.
//
// Panic safety follows the fg conventions: a panic inside a task is
// captured on the worker, re-raised on the Do caller wrapped in a
// *TaskPanic (which unwraps to the original error, keeping errors.Is/As
// chains intact), and therefore surfaces through fg's stage-level panic
// isolation as a *fg.PanicError naming the stage that called the kernel.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWidth returns the default number of concurrent executors a kernel
// should use: GOMAXPROCS at the time of the call. On a single-core machine
// this is 1, which makes every kernel fall back to its serial path.
func DefaultWidth() int {
	return runtime.GOMAXPROCS(0)
}

// A TaskPanic is re-raised on the Do caller when a task function panicked,
// possibly on a pool worker whose stack the caller never sees; it carries
// that original stack. fg's panic isolation will wrap it once more into a
// *fg.PanicError naming the calling stage.
type TaskPanic struct {
	// Value is the value the task passed to panic.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("parallel: task panicked: %v\n%s", p.Value, p.Stack)
}

// Unwrap exposes the panic value to errors.Is/As when it was an error.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// A job is one Do invocation: n tasks claimed by atomic increment, a
// completion count, and the first panic observed.
type job struct {
	fn        func(int)
	n         int64
	next      atomic.Int64
	remaining atomic.Int64
	done      chan struct{}
	panicked  atomic.Pointer[TaskPanic]
}

// help claims and runs tasks until none remain. After a sibling has
// panicked, remaining tasks are claimed but skipped so the job still
// drains promptly and deterministically reaches done.
func (j *job) help() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		if j.panicked.Load() == nil {
			j.run(int(i))
		} else if j.remaining.Add(-1) == 0 {
			close(j.done)
		}
	}
}

func (j *job) run(i int) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, false)]
			j.panicked.CompareAndSwap(nil, &TaskPanic{Value: r, Stack: buf})
		}
		if j.remaining.Add(-1) == 0 {
			close(j.done)
		}
	}()
	j.fn(i)
}

// The global pool. Workers block on wake; a Do that wants helpers drops
// its job pointer into the channel once per helper it could use. A worker
// that picks up a job whose tasks are already exhausted returns to the
// channel immediately, so stale wakeups are harmless.
//
// The pool used to be sized exactly once, at the first Do of the process's
// life — a latent bug for long-running multi-network servers, where
// GOMAXPROCS may be raised after a small early kernel call has already
// frozen the pool at its initial size (and every network thereafter would
// silently run its kernels nearly serial). Sizing is now re-checked on
// every acquisition under a mutex: the pool grows to the current
// GOMAXPROCS-1 when the target has risen, and oversized workers retire
// themselves after finishing a job when it has fallen. Acquisition is safe
// for any number of networks racing Do concurrently.
const poolWakeCap = 256

var (
	poolMu      sync.Mutex
	poolWorkers int          // workers currently alive
	poolTarget  atomic.Int64 // desired worker count; workers above it retire
	wake        chan *job
)

// poolWorker serves jobs until the pool has shrunk past this worker.
func poolWorker() {
	for j := range wake {
		j.help()
		poolMu.Lock()
		if int64(poolWorkers) > poolTarget.Load() {
			poolWorkers--
			poolMu.Unlock()
			return
		}
		poolMu.Unlock()
	}
}

// pool sizes the worker pool for the current GOMAXPROCS and returns its
// size and wake channel. Safe for concurrent callers; cheap when the size
// is already right (one mutex round trip).
func pool() (int, chan *job) {
	target := runtime.GOMAXPROCS(0) - 1
	if target < 1 {
		// Even on a single-core machine keep one worker so tests (and
		// the race detector) exercise real cross-goroutine execution
		// when a width above 1 is requested explicitly.
		target = 1
	}
	poolMu.Lock()
	if wake == nil {
		wake = make(chan *job, poolWakeCap)
	}
	poolTarget.Store(int64(target))
	for poolWorkers < target {
		poolWorkers++
		go poolWorker()
	}
	size := poolWorkers
	poolMu.Unlock()
	return size, wake
}

// Workers reports the current size of the shared worker pool (0 before the
// first Do that wanted helpers). Exposed so a long-running service can put
// the pool's size next to its per-job metrics.
func Workers() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolWorkers
}

// Do runs fn(i) for every i in [0, n) and returns when all calls have
// completed. At most width goroutines execute tasks concurrently: the
// calling goroutine plus up to width-1 shared pool workers (fewer if the
// pool is smaller or its workers are busy serving other callers — the
// bound is global, which is what prevents concurrent stages from
// oversubscribing the machine). width <= 0 selects DefaultWidth. With
// width 1 — or n 1 — fn runs inline on the caller with no pool traffic at
// all, which is the kernels' serial fallback.
//
// If any task panics, Do completes the claims, skips unstarted tasks, and
// re-raises the first panic on the caller as a *TaskPanic.
func Do(n, width int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if width <= 0 {
		width = DefaultWidth()
	}
	if width > n {
		width = n
	}
	if width == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	size, wake := pool()
	j := &job{fn: fn, n: int64(n), done: make(chan struct{})}
	j.remaining.Store(int64(n))
	helpers := width - 1
	if helpers > size {
		helpers = size
	}
	for h := 0; h < helpers; h++ {
		select {
		case wake <- j:
		default:
			h = helpers // channel full: every worker already has a wakeup pending
		}
	}
	j.help()
	<-j.done
	if p := j.panicked.Load(); p != nil {
		panic(p)
	}
}
