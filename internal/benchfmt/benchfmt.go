// Package benchfmt is the shared vocabulary for the repo's performance
// records: the parsed form of `go test -bench` text output, the JSON report
// document cmd/benchjson emits (BENCH_kernels.json, BENCH_baseline.json),
// and the append-only history file (BENCH_history.jsonl) that strings those
// reports into a cross-PR perf curve. cmd/benchjson writes reports,
// cmd/benchgate gates against them, and the soak harness appends its
// per-scenario results as benchmark-shaped entries so one file carries the
// whole trajectory — kernels and cluster soaks alike.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line: the name, the iteration count, and
// every reported metric (ns/op, MB/s, B/op, allocs/op, and any custom
// b.ReportMetric unit).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is a whole benchmark document. Label and Time are set only on
// history lines.
type Report struct {
	Label      string   `json:"label,omitempty"`
	Time       string   `json:"time,omitempty"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Packages   []string `json:"packages,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// ParseLine parses one result line of the standard benchmark format:
//
//	BenchmarkName-8    100    11064025 ns/op    189.43 MB/s    5 B/op    0 allocs/op
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	if !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// Parse reads `go test -bench` text output and assembles a Report: header
// lines (goos/goarch/cpu/pkg) become environment metadata, benchmark lines
// become entries, and everything else (ok/FAIL/PASS, blanks) is ignored — a
// FAIL still fails CI through go test's own exit code.
func Parse(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Packages = append(rep.Packages, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := ParseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// LoadReport reads a JSON report document from path. Unknown top-level keys
// (the _note atop BENCH_baseline.json) are tolerated.
func LoadReport(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// AppendHistory appends rep as one compact JSON line at the end of path,
// stamped with the label and the current UTC time — the accumulation step
// that turns per-run reports into a cross-PR curve.
func AppendHistory(path string, rep Report, label string) error {
	rep.Label = label
	rep.Time = time.Now().UTC().Format(time.RFC3339)
	line, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return err
	}
	return nil
}

// ReadHistory parses every line of a history file, oldest first. Lines that
// fail to parse are skipped (the file is append-only and hand-merged across
// branches; one mangled line must not blind the trend gate to the rest),
// and their count is returned alongside.
func ReadHistory(path string) (entries []Report, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rep Report
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			skipped++
			continue
		}
		entries = append(entries, rep)
	}
	if err := sc.Err(); err != nil {
		return entries, skipped, err
	}
	return entries, skipped, nil
}
