package spsc

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCapacityRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {1000, 1024},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestFIFOSingleThreaded(t *testing.T) {
	r := New[int](4)
	done := make(chan struct{})
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) failed below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		v, err := r.Pop(done)
		if err != nil || v != i {
			t.Fatalf("Pop = %d, %v; want %d, nil", v, err, i)
		}
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("Len after drain = %d, want 0", got)
	}
}

func TestBatchOps(t *testing.T) {
	r := New[int](8)
	in := []int{10, 11, 12, 13, 14}
	if n := r.TryPushN(in); n != 5 {
		t.Fatalf("TryPushN = %d, want 5", n)
	}
	// Only 3 slots remain.
	if n := r.TryPushN([]int{20, 21, 22, 23, 24}); n != 3 {
		t.Fatalf("TryPushN into 3 free slots = %d, want 3", n)
	}
	dst := make([]int, 6)
	if n := r.TryPopN(dst); n != 6 {
		t.Fatalf("TryPopN = %d, want 6", n)
	}
	want := []int{10, 11, 12, 13, 14, 20}
	for i, v := range want {
		if dst[i] != v {
			t.Fatalf("TryPopN[%d] = %d, want %d", i, dst[i], v)
		}
	}
	if n := r.TryPopN(dst); n != 2 {
		t.Fatalf("second TryPopN = %d, want 2", n)
	}
	if dst[0] != 21 || dst[1] != 22 {
		t.Fatalf("second TryPopN = %v, want [21 22 ...]", dst[:2])
	}
}

// TestFIFOProperty is the quick-check: for any (capacity, count, batch
// sizes) the ring delivers exactly the pushed sequence.
func TestFIFOProperty(t *testing.T) {
	f := func(capRaw uint8, countRaw uint16, batchRaw uint8) bool {
		capacity := int(capRaw%64) + 1
		count := int(countRaw % 4096)
		batch := int(batchRaw%8) + 1
		r := New[int](capacity)
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]int, batch)
			for i := 0; i < count; {
				n := batch
				if count-i < n {
					n = count - i
				}
				for j := 0; j < n; j++ {
					buf[j] = i + j
				}
				sent := 0
				for sent < n {
					sent += r.TryPushN(buf[sent:n])
					if sent < n {
						runtime.Gosched()
					}
				}
				i += n
			}
		}()
		ok := true
		for i := 0; i < count; i++ {
			v, err := r.Pop(done)
			if err != nil || v != i {
				ok = false
				break
			}
		}
		wg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestHammerConcurrentPushPop is the -race hammer: a producer and a
// consumer run flat out through a small ring (maximizing wrap-arounds and
// full/empty transitions, so both park paths are exercised), and the
// sequence must come out intact.
func TestHammerConcurrentPushPop(t *testing.T) {
	const n = 200000
	r := New[int](4)
	done := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := r.Push(i, done); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < n; i++ {
		v, err := r.Pop(done)
		if err != nil {
			t.Fatalf("Pop(%d): %v", i, err)
		}
		if v != i {
			t.Fatalf("Pop = %d, want %d (FIFO violated)", v, i)
		}
	}
	if err := <-errs; err != nil {
		t.Fatalf("producer: %v", err)
	}
}

// TestAbortReleasesParkedSides closes done mid-stream and requires both a
// parked producer (full ring) and a parked consumer (empty ring) to return
// ErrDone promptly.
func TestAbortReleasesParkedSides(t *testing.T) {
	// Parked producer: fill the ring, then push once more.
	r := New[int](2)
	done := make(chan struct{})
	for r.TryPush(0) {
	}
	pushed := make(chan error, 1)
	go func() { pushed <- r.Push(99, done) }()
	time.Sleep(10 * time.Millisecond) // let it pass the spin phase and park
	close(done)
	select {
	case err := <-pushed:
		if err != ErrDone {
			t.Fatalf("parked Push returned %v, want ErrDone", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked Push not released by done")
	}

	// Parked consumer: empty ring.
	r2 := New[int](2)
	done2 := make(chan struct{})
	popped := make(chan error, 1)
	go func() {
		_, err := r2.Pop(done2)
		popped <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(done2)
	select {
	case err := <-popped:
		if err != ErrDone {
			t.Fatalf("parked Pop returned %v, want ErrDone", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked Pop not released by done")
	}
}

// TestAbortMidStreamUnderLoad aborts while a push/pop hammer is in full
// flight; both sides must unwind without deadlock and without the race
// detector firing. As with fg's queues, done releases *blocked* operations
// — a side that never blocks must watch done itself, as fg's source does —
// so the loops here check it between operations.
func TestAbortMidStreamUnderLoad(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := New[int](8)
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if err := r.Push(i, done); err != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			prev := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				v, err := r.Pop(done)
				if err != nil {
					return
				}
				if v != prev+1 {
					t.Errorf("trial %d: got %d after %d", trial, v, prev)
					return
				}
				prev = v
			}
		}()
		time.Sleep(time.Duration(trial) * 100 * time.Microsecond)
		close(done)
		finished := make(chan struct{})
		go func() { wg.Wait(); close(finished) }()
		select {
		case <-finished:
		case <-time.After(10 * time.Second):
			t.Fatalf("trial %d: goroutines not released after abort", trial)
		}
	}
}

// TestPointerSlotsAreCleared checks popped slots drop their references so
// the ring does not pin dead buffers.
func TestPointerSlotsAreCleared(t *testing.T) {
	r := New[*int](2)
	v := new(int)
	r.TryPush(v)
	r.TryPop()
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatalf("slot %d still holds a reference after pop", i)
		}
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := New[int](1024)
	done := make(chan struct{})
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		for i := 0; i < b.N; i++ {
			_ = r.Push(i, done)
		}
	}()
	for i := 0; i < b.N; i++ {
		_, _ = r.Pop(done)
	}
}
