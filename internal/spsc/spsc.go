// Package spsc provides a bounded lock-free single-producer
// single-consumer ring buffer, the raw-speed hand-off primitive the fg
// queue layer selects for straight-line pipeline segments (one producing
// stage, one consuming stage).
//
// The design is the classic cache-conscious SPSC ring (FastFlow's
// uSPSC/Lamport lineage): a power-of-two slot array indexed by free-running
// head and tail counters, each owned exclusively by one side and published
// with an atomic store. Each side also keeps a non-atomic cache of the
// other side's counter, refreshed only when the cached value says the ring
// looks full (producer) or empty (consumer) — so in steady state a hand-off
// is one slot write and one atomic store, with no shared-line ping-pong
// beyond the unavoidable slot transfer. The counter pairs live on separate
// cache lines to keep the producer's and consumer's written state from
// false-sharing.
//
// Memory ordering: Go's sync/atomic operations are sequentially consistent
// (Go memory model, "APIs"), which subsumes the release store / acquire
// load this structure needs. The producer writes buf[tail&mask] and then
// tail.Store(tail+1); a consumer that observes the new tail via head-side
// tail.Load() therefore observes the slot write (store-release /
// load-acquire pairing). Slot reuse is safe symmetrically: the consumer
// reads the slot, then head.Store(head+1); the producer re-checks head
// before overwriting a slot, so the read always happens-before the
// overwrite.
//
// Blocking Push/Pop spin briefly and then park on a one-token signal
// channel. The park protocol is a Dekker-style flag handshake made safe by
// sequential consistency: the waiter stores its wait flag, re-checks the
// ring, and only then blocks; the other side publishes its counter first
// and checks the flag after, so at least one of the two observes the other
// and no wakeup is lost. A stale token left in the channel costs one
// spurious loop iteration, never correctness. Both blocking operations also
// select on a caller-supplied done channel, so an aborting fg network
// releases parked stages exactly as the channel-backed queues do.
package spsc

import (
	"errors"
	"runtime"
	"sync/atomic"
)

// ErrDone is returned by Push and Pop when the done channel closes while
// the operation is blocked (or about to block).
var ErrDone = errors.New("spsc: done channel closed")

const cacheLine = 64

// spins is how many times a blocking operation re-tries (yielding the
// processor each round) before parking on the signal channel. Hand-offs in
// a busy pipeline resolve within a few yields; parking is the cold path.
const spins = 128

// A Ring is a bounded SPSC queue of T. Exactly one goroutine may push and
// exactly one may pop; Len and Cap are safe from any goroutine. The zero
// value is unusable; create with New.
type Ring[T any] struct {
	buf  []T
	mask uint64

	_ [cacheLine]byte

	// Consumer-owned line: its position, its cache of the producer's
	// position, and its parked flag.
	head      atomic.Uint64
	tailCache uint64
	consWait  atomic.Uint32

	_ [cacheLine]byte

	// Producer-owned line.
	tail      atomic.Uint64
	headCache uint64
	prodWait  atomic.Uint32

	_ [cacheLine]byte

	consCh chan struct{} // producer -> parked consumer, capacity 1
	prodCh chan struct{} // consumer -> parked producer, capacity 1
}

// New creates a ring holding at least capacity elements (rounded up to a
// power of two). It panics if capacity < 1.
func New[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		panic("spsc: capacity must be at least 1")
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Ring[T]{
		buf:    make([]T, size),
		mask:   uint64(size - 1),
		consCh: make(chan struct{}, 1),
		prodCh: make(chan struct{}, 1),
	}
}

// Cap returns the ring's capacity (the rounded-up power of two).
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of elements currently queued. It is an
// instantaneous snapshot, exact when called from the producer or consumer
// and approximate from elsewhere.
func (r *Ring[T]) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t <= h {
		return 0
	}
	return int(t - h)
}

// TryPush enqueues v if there is room, without blocking.
func (r *Ring[T]) TryPush(v T) bool {
	t := r.tail.Load()
	if t-r.headCache >= uint64(len(r.buf)) {
		r.headCache = r.head.Load()
		if t-r.headCache >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	r.wakeConsumer()
	return true
}

// TryPushN enqueues as many elements of vs as fit, front first, publishing
// them with a single atomic store (one hand-off for the whole batch). It
// returns how many were enqueued.
func (r *Ring[T]) TryPushN(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	t := r.tail.Load()
	space := uint64(len(r.buf)) - (t - r.headCache)
	if space < uint64(len(vs)) {
		r.headCache = r.head.Load()
		space = uint64(len(r.buf)) - (t - r.headCache)
	}
	n := len(vs)
	if uint64(n) > space {
		n = int(space)
	}
	if n == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		r.buf[(t+uint64(i))&r.mask] = vs[i]
	}
	r.tail.Store(t + uint64(n))
	r.wakeConsumer()
	return n
}

// TryPop dequeues the next element if one is queued, without blocking.
func (r *Ring[T]) TryPop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h >= r.tailCache {
		r.tailCache = r.tail.Load()
		if h >= r.tailCache {
			return zero, false
		}
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // drop the reference for GC
	r.head.Store(h + 1)
	r.wakeProducer()
	return v, true
}

// TryPopN dequeues up to len(dst) elements into dst, publishing the
// consumption with a single atomic store. It returns how many were
// dequeued.
func (r *Ring[T]) TryPopN(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	var zero T
	h := r.head.Load()
	avail := r.tailCache - h
	if avail < uint64(len(dst)) {
		r.tailCache = r.tail.Load()
		avail = r.tailCache - h
	}
	n := len(dst)
	if uint64(n) > avail {
		n = int(avail)
	}
	if n == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		idx := (h + uint64(i)) & r.mask
		dst[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	r.head.Store(h + uint64(n))
	r.wakeProducer()
	return n
}

// Push enqueues v, blocking while the ring is full. It returns ErrDone if
// done closes first. A nil done never unblocks a full ring; fg always
// passes the network's done channel.
func (r *Ring[T]) Push(v T, done <-chan struct{}) error {
	for i := 0; i < spins; i++ {
		if r.TryPush(v) {
			return nil
		}
		runtime.Gosched()
	}
	for {
		r.prodWait.Store(1)
		if r.TryPush(v) {
			r.prodWait.Store(0)
			return nil
		}
		select {
		case <-r.prodCh:
		case <-done:
			r.prodWait.Store(0)
			return ErrDone
		}
	}
}

// Pop dequeues the next element, blocking while the ring is empty. It
// returns ErrDone if done closes first.
func (r *Ring[T]) Pop(done <-chan struct{}) (T, error) {
	for i := 0; i < spins; i++ {
		if v, ok := r.TryPop(); ok {
			return v, nil
		}
		runtime.Gosched()
	}
	var zero T
	for {
		r.consWait.Store(1)
		if v, ok := r.TryPop(); ok {
			r.consWait.Store(0)
			return v, nil
		}
		select {
		case <-r.consCh:
		case <-done:
			r.consWait.Store(0)
			return zero, ErrDone
		}
	}
}

// wakeConsumer hands a token to a parked consumer. The flag check runs
// after the tail store above it (sequential consistency), pairing with the
// consumer's flag-store-then-recheck, so a consumer that missed the new
// element is guaranteed to see the token.
func (r *Ring[T]) wakeConsumer() {
	if r.consWait.Load() != 0 {
		select {
		case r.consCh <- struct{}{}:
		default:
		}
	}
}

func (r *Ring[T]) wakeProducer() {
	if r.prodWait.Load() != 0 {
		select {
		case r.prodCh <- struct{}{}:
		default:
		}
	}
}
