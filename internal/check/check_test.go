package check

import (
	"sort"
	"strings"
	"testing"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/workload"
)

// makeSortedOutput builds a cluster whose disks hold a correctly sorted,
// striped output for the spec, and returns the input fingerprint.
func makeSortedOutput(t *testing.T, s oocsort.Spec, p int) (*cluster.Cluster, records.Fingerprint) {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: p})
	fp, err := oocsort.GenerateInput(c, s)
	if err != nil {
		t.Fatal(err)
	}
	// Collect all input records, sort them in memory, and write the result
	// through the striped layout.
	var all []byte
	for _, d := range c.Disks() {
		all = append(all, d.Export(s.InputName)...)
	}
	f := s.Format
	n := f.Count(len(all))
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return f.KeyAt(all, idx[a]) < f.KeyAt(all, idx[b]) })
	sorted := make([]byte, len(all))
	for out, in := range idx {
		copy(f.At(sorted, out), f.At(all, in))
	}
	if err := s.Output(p).WriteAt(c.Disks(), sorted, 0); err != nil {
		t.Fatal(err)
	}
	return c, fp
}

func testSpec() oocsort.Spec {
	s := oocsort.DefaultSpec()
	s.TotalRecords = 1 << 10
	s.RecordsPerBlock = 64
	s.Distribution = workload.Poisson
	return s
}

func TestOutputAcceptsCorrectResult(t *testing.T) {
	s := testSpec()
	c, fp := makeSortedOutput(t, s, 4)
	if err := Output(c, s, fp); err != nil {
		t.Fatalf("correct output rejected: %v", err)
	}
}

func TestReadOutputReassemblesGlobalOrder(t *testing.T) {
	s := testSpec()
	c, _ := makeSortedOutput(t, s, 4)
	data, err := ReadOutput(c, s)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != s.TotalBytes() {
		t.Fatalf("reassembled %d bytes, want %d", len(data), s.TotalBytes())
	}
	if !s.Format.IsSorted(data) {
		t.Fatal("reassembled output not in global order")
	}
}

func TestOutputDetectsUnsorted(t *testing.T) {
	s := testSpec()
	c, fp := makeSortedOutput(t, s, 4)
	// Corrupt one record's key on disk 2 without changing the multiset...
	// swapping two distant records breaks sortedness but keeps the
	// fingerprint intact, proving the order check (not the fingerprint)
	// catches it.
	d := c.Node(2).Disk
	data := d.Export(s.OutputName)
	f := s.Format
	lo, hi := f.At(data, 0), f.At(data, f.Count(len(data))-1)
	tmp := make([]byte, f.Size)
	copy(tmp, lo)
	copy(lo, hi)
	copy(hi, tmp)
	d.Import(s.OutputName, data)
	err := Output(c, s, fp)
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("unsorted output accepted (err=%v)", err)
	}
}

func TestOutputDetectsWrongMultiset(t *testing.T) {
	s := testSpec()
	c, fp := makeSortedOutput(t, s, 4)
	// Duplicate a record over its neighbour: still sorted, wrong multiset.
	d := c.Node(1).Disk
	data := d.Export(s.OutputName)
	f := s.Format
	copy(f.At(data, 1), f.At(data, 0))
	d.Import(s.OutputName, data)
	err := Output(c, s, fp)
	if err == nil || !strings.Contains(err.Error(), "permutation") {
		t.Fatalf("tampered output accepted (err=%v)", err)
	}
}

func TestOutputDetectsWrongSize(t *testing.T) {
	s := testSpec()
	c, fp := makeSortedOutput(t, s, 4)
	d := c.Node(3).Disk
	data := d.Export(s.OutputName)
	d.Import(s.OutputName, data[:len(data)-s.Format.Size])
	if err := Output(c, s, fp); err == nil {
		t.Fatal("truncated output accepted")
	}
}

func TestOutputSingleNode(t *testing.T) {
	s := testSpec()
	c, fp := makeSortedOutput(t, s, 1)
	if err := Output(c, s, fp); err != nil {
		t.Fatalf("single-node output rejected: %v", err)
	}
}
