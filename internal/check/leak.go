package check

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePath identifies this repository's frames in goroutine stacks.
const modulePath = "github.com/fg-go/fg"

// NoLeakedGoroutines registers a cleanup that fails the test if any
// goroutine running this module's code is still alive when the test ends.
// Goroutines take a moment to unwind after Network.Run or Cluster.Run
// returns, so the check polls before declaring a leak. Call it at the top
// of tests that exercise error shutdown, cancellation, or failed builds —
// the paths where a stranded stage or source goroutine would otherwise go
// unnoticed. Not safe for tests running in parallel with other FG tests.
func NoLeakedGoroutines(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = moduleGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("check: %d goroutine(s) leaked:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// moduleGoroutines returns the stacks of live goroutines (other than the
// caller's) that have a frame in this module.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := strings.Split(string(buf), "\n\n")
	var out []string
	for i, g := range stacks {
		if i == 0 {
			continue // the current goroutine, running this check
		}
		if !strings.Contains(g, modulePath) {
			continue
		}
		out = append(out, g)
	}
	return out
}
