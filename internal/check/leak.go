package check

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePath identifies this repository's frames in goroutine stacks.
const modulePath = "github.com/fg-go/fg"

// NoLeakedGoroutines registers a cleanup that fails the test if any
// goroutine running this module's code is still alive when the test ends.
// Goroutines take a moment to unwind after Network.Run or Cluster.Run
// returns, so the check polls before declaring a leak. Call it at the top
// of tests that exercise error shutdown, cancellation, or failed builds —
// the paths where a stranded stage or source goroutine would otherwise go
// unnoticed. Not safe for tests running in parallel with other FG tests.
func NoLeakedGoroutines(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		if leaked := LeakedGoroutines(5 * time.Second); len(leaked) > 0 {
			t.Errorf("check: %d goroutine(s) leaked:\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}

// LeakedGoroutines polls until no goroutine is running this module's code
// or the timeout elapses, then returns the stacks of the stragglers (nil if
// everything unwound). It is the assertion behind NoLeakedGoroutines,
// exported separately for sacrificial child processes that must police
// their own shutdown without a testing.T.
func LeakedGoroutines(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		leaked := moduleGoroutines()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// moduleGoroutines returns the stacks of live goroutines (other than the
// caller's) that have a frame in this module.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	stacks := strings.Split(string(buf), "\n\n")
	var out []string
	for i, g := range stacks {
		if i == 0 {
			continue // the current goroutine, running this check
		}
		if !strings.Contains(g, modulePath) {
			continue
		}
		if strings.Contains(g, "testing.(*M).Run") {
			// The main goroutine of a package with its own TestMain carries a
			// module frame for the whole run; it is the test driver, never a
			// leak.
			continue
		}
		if strings.Contains(g, "internal/parallel.poolWorker") {
			// The shared kernel worker pool is process-lifetime by design:
			// its workers idle on the wake channel between jobs and retire
			// only when GOMAXPROCS drops. A run that engaged the multicore
			// kernels leaves them parked there; that is the pool working,
			// not a leak. (The pool's own tests police its sizing.)
			continue
		}
		out = append(out, g)
	}
	return out
}
