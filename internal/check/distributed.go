package check

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/records"
)

// DistributedOutput verifies a sorted, PDM-striped output without any
// process ever seeing the whole file — the collective counterpart of
// Output, for jobs whose ranks span OS processes. Every rank calls it
// (inside cluster.Run); localIn is the rank's share of the input
// fingerprint, as returned by oocsort.GenerateInput in that rank's process.
//
// Each rank checks its own stripe locally — size, and that every block is
// internally sorted — then gathers to rank 0 just the first and last key of
// each block plus input/output fingerprints: O(blocks) bytes instead of
// O(records). Striping places global block g on disk g mod P, so rank 0
// reconstructs the global block order from the per-rank boundary keys,
// checks that consecutive blocks do not overlap, and that the merged output
// fingerprint equals the merged input fingerprint. The verdict is broadcast
// so every rank returns the same error.
func DistributedOutput(n *cluster.Node, s oocsort.Spec, localIn records.Fingerprint) error {
	comm := n.Comm("check-distributed")
	payload := localStripeSummary(n, s, localIn)
	parts := comm.Gather(0, payload)
	var verdict []byte
	if n.Rank() == 0 {
		if err := judgeStripes(s, n.P(), parts); err != nil {
			verdict = []byte(err.Error())
		}
	}
	verdict = comm.Bcast(0, verdict)
	if len(verdict) != 0 {
		return errors.New(string(verdict))
	}
	return nil
}

// localStripeSummary checks this rank's stripe and encodes its summary:
//
//	u32 errLen, errLen bytes   local failure, if any (rest absent)
//	3 x u64                    local input fingerprint
//	3 x u64                    local output fingerprint
//	u64 numBlocks, then numBlocks x (u64 first, u64 last) boundary keys
func localStripeSummary(n *cluster.Node, s oocsort.Spec, localIn records.Fingerprint) []byte {
	fail := func(err error) []byte {
		msg := err.Error()
		out := binary.BigEndian.AppendUint32(nil, uint32(len(msg)))
		return append(out, msg...)
	}
	sf := s.Output(n.P())
	data := n.Disk.Export(s.OutputName)
	if want := sf.LocalBytes(s.TotalBytes(), n.Rank()); int64(len(data)) != want {
		return fail(fmt.Errorf("check: rank %d holds %d output bytes, want %d", n.Rank(), len(data), want))
	}
	blockBytes := s.RecordsPerBlock * s.Format.Size
	out := binary.BigEndian.AppendUint32(nil, 0) // no local error
	var fp records.Fingerprint
	if s.Format.HasID() {
		fp = s.Format.Fingerprint(data)
	}
	for _, v := range []uint64{localIn.Count, localIn.Sum, localIn.Xor, fp.Count, fp.Sum, fp.Xor} {
		out = binary.BigEndian.AppendUint64(out, v)
	}
	numBlocks := (len(data) + blockBytes - 1) / blockBytes
	out = binary.BigEndian.AppendUint64(out, uint64(numBlocks))
	for k := 0; k < numBlocks; k++ {
		lo := k * blockBytes
		hi := min(lo+blockBytes, len(data))
		block := data[lo:hi]
		cnt := s.Format.Count(len(block))
		for i := 1; i < cnt; i++ {
			if s.Format.KeyAt(block, i) < s.Format.KeyAt(block, i-1) {
				return fail(fmt.Errorf("check: rank %d block %d out of order at record %d", n.Rank(), k, i))
			}
		}
		out = binary.BigEndian.AppendUint64(out, s.Format.KeyAt(block, 0))
		out = binary.BigEndian.AppendUint64(out, s.Format.KeyAt(block, cnt-1))
	}
	return out
}

// judgeStripes combines the per-rank summaries at rank 0.
func judgeStripes(s oocsort.Spec, p int, parts [][]byte) error {
	type stripe struct {
		first, last []uint64
	}
	var inFP, outFP records.Fingerprint
	stripes := make([]stripe, p)
	for rank, part := range parts {
		if len(part) < 4 {
			return fmt.Errorf("check: rank %d sent a truncated summary", rank)
		}
		if errLen := binary.BigEndian.Uint32(part); errLen != 0 {
			if int(errLen) > len(part)-4 {
				return fmt.Errorf("check: rank %d sent a truncated error", rank)
			}
			return errors.New(string(part[4 : 4+errLen]))
		}
		part = part[4:]
		if len(part) < 7*8 {
			return fmt.Errorf("check: rank %d sent a truncated summary", rank)
		}
		u64 := func() uint64 {
			v := binary.BigEndian.Uint64(part)
			part = part[8:]
			return v
		}
		inFP.Merge(records.Fingerprint{Count: u64(), Sum: u64(), Xor: u64()})
		outFP.Merge(records.Fingerprint{Count: u64(), Sum: u64(), Xor: u64()})
		numBlocks := int(u64())
		if len(part) != numBlocks*16 {
			return fmt.Errorf("check: rank %d summary holds %d bytes for %d blocks", rank, len(part), numBlocks)
		}
		st := stripe{first: make([]uint64, numBlocks), last: make([]uint64, numBlocks)}
		for k := 0; k < numBlocks; k++ {
			st.first[k], st.last[k] = u64(), u64()
		}
		stripes[rank] = st
	}
	// Global block g lives on disk g mod P as local block g div P; walk the
	// blocks in global order and require non-overlapping key ranges.
	prevSet := false
	var prevLast uint64
	var totalBlocks int
	for _, st := range stripes {
		totalBlocks += len(st.first)
	}
	for g := 0; g < totalBlocks; g++ {
		st := stripes[g%p]
		k := g / p
		if k >= len(st.first) {
			return fmt.Errorf("check: global block %d missing from rank %d", g, g%p)
		}
		if prevSet && st.first[k] < prevLast {
			return fmt.Errorf("check: block %d starts at key %#x, before block %d's last key %#x",
				g, st.first[k], g-1, prevLast)
		}
		prevLast, prevSet = st.last[k], true
	}
	if s.Format.HasID() && !outFP.Equal(inFP) {
		return fmt.Errorf("check: output is not a permutation of the input: %v vs %v", outFP, inFP)
	}
	return nil
}
