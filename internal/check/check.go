// Package check verifies sorting program output: that the striped output
// file has exactly the right size, is globally sorted in PDM order, and is
// a permutation of the input (by order-independent fingerprint). The checks
// read the simulated disks directly, outside the measured computation.
package check

import (
	"fmt"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/records"
)

// ReadOutput reassembles the sorted output into one byte slice in global
// (PDM-striped) order. It requires every rank's disk in this process; a
// multi-process job verifies with DistributedOutput instead.
func ReadOutput(c *cluster.Cluster, s oocsort.Spec) ([]byte, error) {
	if !c.AllLocal() {
		return nil, fmt.Errorf("check: ReadOutput needs every rank's disk local; use DistributedOutput")
	}
	sf := s.Output(c.P())
	total := s.TotalBytes()
	locals := make([][]byte, c.P())
	for i, d := range c.Disks() {
		locals[i] = d.Export(s.OutputName)
		if want := sf.LocalBytes(total, i); int64(len(locals[i])) != want {
			return nil, fmt.Errorf("check: disk %d holds %d output bytes, want %d",
				i, len(locals[i]), want)
		}
	}
	out := make([]byte, 0, total)
	for _, e := range sf.Extents(0, int(total)) {
		out = append(out, locals[e.Disk][e.LocalOff:e.LocalOff+int64(e.Length)]...)
	}
	return out, nil
}

// Output verifies the sorted output of a completed sort. want is the input
// fingerprint from oocsort.GenerateInput; it is ignored for record formats
// too small to carry identifiers.
func Output(c *cluster.Cluster, s oocsort.Spec, want records.Fingerprint) error {
	data, err := ReadOutput(c, s)
	if err != nil {
		return err
	}
	if int64(len(data)) != s.TotalBytes() {
		return fmt.Errorf("check: output holds %d bytes, want %d", len(data), s.TotalBytes())
	}
	n := s.Format.Count(len(data))
	for i := 1; i < n; i++ {
		if s.Format.KeyAt(data, i) < s.Format.KeyAt(data, i-1) {
			return fmt.Errorf("check: output out of order at record %d: %#x < %#x",
				i, s.Format.KeyAt(data, i), s.Format.KeyAt(data, i-1))
		}
	}
	if s.Format.HasID() {
		if got := s.Format.Fingerprint(data); !got.Equal(want) {
			return fmt.Errorf("check: output is not a permutation of the input: %v vs %v", got, want)
		}
	}
	return nil
}
