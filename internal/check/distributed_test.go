package check

import (
	"strings"
	"testing"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/records"
)

// inputShares computes each rank's share of the input fingerprint from its
// disk, the way each process's own GenerateInput call would in a
// multi-process job.
func inputShares(c *cluster.Cluster, s oocsort.Spec) []records.Fingerprint {
	shares := make([]records.Fingerprint, c.P())
	for i, n := range c.Local() {
		shares[i] = s.Format.Fingerprint(n.Disk.Export(s.InputName))
	}
	return shares
}

func TestDistributedOutputAcceptsCorrectResult(t *testing.T) {
	s := testSpec()
	c, _ := makeSortedOutput(t, s, 4)
	shares := inputShares(c, s)
	err := c.Run(func(n *cluster.Node) error {
		return DistributedOutput(n, s, shares[n.Rank()])
	})
	if err != nil {
		t.Fatalf("correct output rejected: %v", err)
	}
}

func TestDistributedOutputDetectsUnsorted(t *testing.T) {
	s := testSpec()
	c, _ := makeSortedOutput(t, s, 4)
	shares := inputShares(c, s)
	// Swap the first and last record on one disk: blocks stay fingerprints
	// stay, order breaks — caught either inside a block or at a boundary.
	d := c.Node(2).Disk
	data := d.Export(s.OutputName)
	f := s.Format
	lo, hi := f.At(data, 0), f.At(data, f.Count(len(data))-1)
	tmp := make([]byte, f.Size)
	copy(tmp, lo)
	copy(lo, hi)
	copy(hi, tmp)
	d.Import(s.OutputName, data)
	err := c.Run(func(n *cluster.Node) error {
		return DistributedOutput(n, s, shares[n.Rank()])
	})
	if err == nil || !(strings.Contains(err.Error(), "out of order") || strings.Contains(err.Error(), "before block")) {
		t.Fatalf("unsorted output accepted (err=%v)", err)
	}
}

func TestDistributedOutputDetectsBoundaryOverlap(t *testing.T) {
	s := testSpec()
	c, _ := makeSortedOutput(t, s, 4)
	shares := inputShares(c, s)
	// Nudge one block's first key below the previous block's last key,
	// keeping the block internally sorted: only the cross-block boundary
	// check can see this. Use rank 1's last local block — late in global
	// order, where keys are large — so key 0 is unambiguously too small
	// (early Poisson blocks are full of genuine zeros).
	d := c.Node(1).Disk // holds global blocks 1, 5, 9, ...
	data := d.Export(s.OutputName)
	f := s.Format
	localBlocks := len(data) / (s.RecordsPerBlock * f.Size)
	rec := f.At(data, (localBlocks-1)*s.RecordsPerBlock)
	for i := 0; i < records.KeySize; i++ {
		rec[i] = 0 // key 0 sorts before everything
	}
	d.Import(s.OutputName, data)
	err := c.Run(func(n *cluster.Node) error {
		return DistributedOutput(n, s, shares[n.Rank()])
	})
	if err == nil || !strings.Contains(err.Error(), "before block") {
		t.Fatalf("overlapping blocks accepted (err=%v)", err)
	}
}

func TestDistributedOutputDetectsWrongMultiset(t *testing.T) {
	s := testSpec()
	c, _ := makeSortedOutput(t, s, 4)
	shares := inputShares(c, s)
	d := c.Node(1).Disk
	data := d.Export(s.OutputName)
	f := s.Format
	copy(f.At(data, 1), f.At(data, 0))
	d.Import(s.OutputName, data)
	err := c.Run(func(n *cluster.Node) error {
		return DistributedOutput(n, s, shares[n.Rank()])
	})
	if err == nil || !strings.Contains(err.Error(), "permutation") {
		t.Fatalf("tampered output accepted (err=%v)", err)
	}
}

func TestDistributedOutputDetectsWrongSize(t *testing.T) {
	s := testSpec()
	c, _ := makeSortedOutput(t, s, 4)
	shares := inputShares(c, s)
	d := c.Node(3).Disk
	data := d.Export(s.OutputName)
	d.Import(s.OutputName, data[:len(data)-s.Format.Size])
	err := c.Run(func(n *cluster.Node) error {
		return DistributedOutput(n, s, shares[n.Rank()])
	})
	if err == nil || !strings.Contains(err.Error(), "output bytes") {
		t.Fatalf("truncated output accepted (err=%v)", err)
	}
}
