// Package splitter implements dsort's preprocessing phase: selecting the
// P-1 splitters that partition the input among the nodes, by the
// oversampling technique of Blelloch et al. and Seshadri & Naughton
// (paper, Section V).
//
// Splitters are extended keys — a sort key plus the sampled record's origin
// node and sequence number — so that even when many records share a key,
// the partition boundaries cut deterministically between records and the
// partitions stay near-balanced. The extended keys never become part of any
// record; they exist only while deciding where each record is sent.
package splitter

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/records"
)

// DefaultOversample is the number of samples each node contributes per
// partition boundary. 32 keeps every partition within a few percent of the
// average for the paper's distributions.
const DefaultOversample = 32

// A Sampler yields the sort key of the local record with the given index.
// dsort backs it with single-record disk reads; the sampling volume is tiny
// (the paper reports the phase's time as negligible).
type Sampler func(idx int64) (uint64, error)

// Select runs the sampling phase. Every node of the cluster calls Select
// with its local record count and sampler; every node returns the same
// P-1 splitters, sorted ascending. oversample <= 0 selects
// DefaultOversample. seed makes the sampled indices deterministic.
func Select(comm *cluster.Comm, localCount int64, sample Sampler, oversample int, seed int64) ([]records.ExtKey, error) {
	if oversample <= 0 {
		oversample = DefaultOversample
	}
	p := comm.P()
	rank := comm.Rank()

	// Each node samples oversample*(P-1) local records at random positions
	// (with replacement; duplicates are harmless thanks to extended keys).
	nSamples := oversample * (p - 1)
	rng := rand.New(rand.NewSource(seed ^ int64(rank)*0x9e3779b9))
	local := make([]records.ExtKey, 0, nSamples)
	if localCount > 0 {
		for i := 0; i < nSamples; i++ {
			idx := rng.Int63n(localCount)
			key, err := sample(idx)
			if err != nil {
				return nil, fmt.Errorf("splitter: sampling record %d on node %d: %w", idx, rank, err)
			}
			local = append(local, records.ExtKey{Key: key, Node: uint32(rank), Seq: uint64(idx)})
		}
	}

	// Gather all samples at node 0, choose evenly spaced splitters, and
	// broadcast them.
	var wire []byte
	for _, e := range local {
		wire = EncodeExtKeys(wire, e)
	}
	gathered := comm.Gather(0, wire)

	var chosen []byte
	if rank == 0 {
		var all []records.ExtKey
		for _, w := range gathered {
			all = append(all, DecodeExtKeys(w)...)
		}
		if len(all) < p-1 {
			return nil, fmt.Errorf("splitter: only %d samples for %d partitions", len(all), p)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
		for i := 1; i < p; i++ {
			// The i-th splitter sits at the i/P quantile of the sample.
			chosen = EncodeExtKeys(chosen, all[i*len(all)/p])
		}
	}
	out := DecodeExtKeys(comm.Bcast(0, chosen))
	if len(out) != p-1 {
		return nil, fmt.Errorf("splitter: broadcast delivered %d splitters, want %d", len(out), p-1)
	}
	return out, nil
}

// Partition returns the partition (node rank) a record with extended key e
// belongs to: partition i receives keys in (splitters[i-1], splitters[i]],
// with the first and last intervals open-ended.
func Partition(splitters []records.ExtKey, e records.ExtKey) int {
	// The first splitter >= e marks the partition; all splitters < e lie in
	// earlier partitions.
	return sort.Search(len(splitters), func(i int) bool { return !splitters[i].Less(e) })
}

// EncodeExtKeys appends the wire form of the given extended keys to dst.
func EncodeExtKeys(dst []byte, keys ...records.ExtKey) []byte {
	for _, e := range keys {
		dst = records.EncodeExtKey(dst, e)
	}
	return dst
}

// DecodeExtKeys parses a concatenation of encoded extended keys.
func DecodeExtKeys(src []byte) []records.ExtKey {
	if len(src)%records.ExtKeySize != 0 {
		panic("splitter: truncated extended-key encoding")
	}
	out := make([]records.ExtKey, 0, len(src)/records.ExtKeySize)
	for off := 0; off < len(src); off += records.ExtKeySize {
		out = append(out, records.DecodeExtKey(src[off:]))
	}
	return out
}
