package splitter

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/workload"
)

func TestPartitionBoundaries(t *testing.T) {
	sp := []records.ExtKey{
		{Key: 10, Node: 0, Seq: 0},
		{Key: 20, Node: 1, Seq: 5},
		{Key: 30, Node: 2, Seq: 9},
	}
	cases := []struct {
		e    records.ExtKey
		want int
	}{
		{records.ExtKey{Key: 5}, 0},
		{records.ExtKey{Key: 10, Node: 0, Seq: 0}, 0}, // equal to splitter: inclusive left
		{records.ExtKey{Key: 10, Node: 0, Seq: 1}, 1}, // just past it
		{records.ExtKey{Key: 15}, 1},
		{records.ExtKey{Key: 20, Node: 1, Seq: 5}, 1},
		{records.ExtKey{Key: 20, Node: 1, Seq: 6}, 2},
		{records.ExtKey{Key: 25}, 2},
		{records.ExtKey{Key: 30, Node: 2, Seq: 9}, 2},
		{records.ExtKey{Key: 31}, 3},
		{records.MaxExtKey, 3},
	}
	for _, c := range cases {
		if got := Partition(sp, c.e); got != c.want {
			t.Errorf("Partition(%v) = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestPartitionNoSplitters(t *testing.T) {
	if got := Partition(nil, records.ExtKey{Key: 5}); got != 0 {
		t.Errorf("single-node partition = %d, want 0", got)
	}
}

func TestEncodeDecodeExtKeys(t *testing.T) {
	keys := []records.ExtKey{{Key: 1, Node: 2, Seq: 3}, {Key: 4, Node: 5, Seq: 6}}
	wire := EncodeExtKeys(nil, keys...)
	got := DecodeExtKeys(wire)
	if len(got) != 2 || got[0] != keys[0] || got[1] != keys[1] {
		t.Fatalf("round trip: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("truncated decode did not panic")
		}
	}()
	DecodeExtKeys(wire[:5])
}

// runSelect generates per-node key sets from dist and runs Select on a
// simulated cluster, returning the splitters and the per-node keys.
func runSelect(t *testing.T, p int, perNode int, dist workload.Distribution, oversample int) ([]records.ExtKey, [][]uint64) {
	t.Helper()
	f := records.NewFormat(16)
	keys := make([][]uint64, p)
	for n := 0; n < p; n++ {
		g := workload.NewGenerator(f, dist, 99, uint32(n))
		for i := 0; i < perNode; i++ {
			keys[n] = append(keys[n], g.NextKey())
		}
	}
	c := cluster.New(cluster.Config{Nodes: p})
	var mu sync.Mutex
	var splitters []records.ExtKey
	err := c.Run(func(node *cluster.Node) error {
		comm := node.Comm("splitters")
		mine := keys[node.Rank()]
		sp, err := Select(comm, int64(len(mine)), func(idx int64) (uint64, error) {
			return mine[idx], nil
		}, oversample, 7)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if splitters == nil {
			splitters = sp
		} else if len(sp) != len(splitters) {
			return fmt.Errorf("node %d got %d splitters", node.Rank(), len(sp))
		} else {
			for i := range sp {
				if sp[i] != splitters[i] {
					return fmt.Errorf("node %d disagrees on splitter %d", node.Rank(), i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return splitters, keys
}

func TestSelectReturnsSortedSplittersOnAllNodes(t *testing.T) {
	sp, _ := runSelect(t, 8, 2000, workload.Uniform, 0)
	if len(sp) != 7 {
		t.Fatalf("got %d splitters, want 7", len(sp))
	}
	if !sort.SliceIsSorted(sp, func(i, j int) bool { return sp[i].Less(sp[j]) }) {
		t.Fatal("splitters not sorted")
	}
}

// partitionImbalance computes max partition size over average when routing
// all keys by extended key against the splitters.
func partitionImbalance(p int, splitters []records.ExtKey, keys [][]uint64) float64 {
	counts := make([]int, p)
	total := 0
	for n := range keys {
		for i, k := range keys[n] {
			e := records.ExtKey{Key: k, Node: uint32(n), Seq: uint64(i)}
			counts[Partition(splitters, e)]++
			total++
		}
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	return float64(maxCount) * float64(p) / float64(total)
}

func TestPartitionBalanceAcrossDistributions(t *testing.T) {
	// Paper, Section V: "In our experiments, all partition sizes were at
	// most 10% greater than the average." We allow a touch more slack at
	// this much smaller scale.
	const p, perNode = 16, 4000
	for _, dist := range workload.Distributions {
		sp, keys := runSelect(t, p, perNode, dist, 64)
		if imb := partitionImbalance(p, sp, keys); imb > 1.15 {
			t.Errorf("%v: max partition is %.2fx the average", dist, imb)
		}
	}
}

func TestAllEqualKeysStillBalance(t *testing.T) {
	// The degenerate case that motivates extended keys: every key equal.
	const p, perNode = 8, 2000
	sp, keys := runSelect(t, p, perNode, workload.AllEqual, 64)
	if imb := partitionImbalance(p, sp, keys); imb > 1.15 {
		t.Errorf("all-equal keys: max partition is %.2fx the average (extended keys should balance)", imb)
	}
}

func TestSelectSingleNode(t *testing.T) {
	sp, _ := runSelect(t, 1, 100, workload.Uniform, 0)
	if len(sp) != 0 {
		t.Fatalf("single node wants no splitters, got %d", len(sp))
	}
}

func TestSelectPropagatesSamplerError(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2})
	err := c.Run(func(node *cluster.Node) error {
		comm := node.Comm("s")
		_, err := Select(comm, 10, func(idx int64) (uint64, error) {
			return 0, fmt.Errorf("disk exploded")
		}, 4, 1)
		if err == nil {
			return fmt.Errorf("node %d: sampler error swallowed", node.Rank())
		}
		return nil
	})
	// Node 0 errors before its collectives; node 1 may too. Either way Run
	// must surface an error-free outcome here because both nodes return nil
	// only when Select failed as expected.
	if err != nil {
		t.Fatal(err)
	}
}
