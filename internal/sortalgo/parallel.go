package sortalgo

// Multicore kernels: parallel variants of the sort, merge, and partition
// primitives, built on the shared worker pool in internal/parallel. Each
// kernel takes a workers knob — the maximum number of concurrent executors
// and the shard count — with 0 meaning parallel.DefaultWidth (GOMAXPROCS)
// and 1 forcing the serial path. All parallel variants produce output
// byte-identical to their serial counterparts, including stability on
// duplicate keys; the property tests in parallel_test.go hold them to
// that.
//
// The serial-fallback thresholds below were tuned against the kernel
// microbenchmarks (see DESIGN.md, "Multicore kernels"): a parallel round
// trip through the pool costs single-digit microseconds per phase barrier,
// and a radix pass over ~4K 16-byte records completes in about that time,
// so sharding only pays once a buffer comfortably exceeds the barrier cost
// times the pass count.

import (
	"sync"

	"github.com/fg-go/fg/internal/parallel"
	"github.com/fg-go/fg/records"
)

var (
	// parallelSortMinRecords is the buffer size below which
	// SortRecordsParallel runs the serial sort: under ~32K records the
	// per-pass fan-out/merge barriers outweigh the sharded counting.
	parallelSortMinRecords = 32 << 10
	// parallelMergeMinRecords is the total size below which
	// MergeSortedParallel merges serially; a two-way merge is one linear
	// pass, so it tolerates less overhead than the 8-pass radix sort.
	parallelMergeMinRecords = 32 << 10
	// parallelPartitionMinRecords is the threshold for PartitionRecords;
	// classification does a binary search per record, so it parallelizes
	// profitably a little earlier than the sort.
	parallelPartitionMinRecords = 16 << 10
	// minShardRecords keeps shards coarse: each worker gets at least this
	// many records per phase, or fewer shards are used.
	minShardRecords = 4 << 10
)

// shardCount decides how many shards (and concurrent executors) to use for
// n records at the given width and threshold. A result below 2 means "run
// the serial path".
func shardCount(n, workers, minRecords int) int {
	if workers <= 0 {
		workers = parallel.DefaultWidth()
	}
	if n < minRecords || workers < 2 {
		return 1
	}
	s := n / minShardRecords
	if s > workers {
		s = workers
	}
	return s
}

// scratch pools — satellite of the same PR: the kernels run once per
// pipeline round for the whole life of a sort, so their per-call tables
// (histograms, shard bounds, partition indexes) are recycled instead of
// re-allocated. See the -benchmem numbers in the kernel benchmarks.

var intsPool = sync.Pool{New: func() any { return new([]int) }}

func getInts(n int) *[]int {
	p := intsPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, n)
	}
	*p = (*p)[:n]
	return p
}

var int32sPool = sync.Pool{New: func() any { return new([]int32) }}

func getInt32s(n int) *[]int32 {
	p := int32sPool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

// SortRecordsParallel is SortRecords with intra-buffer parallelism: a
// stable multicore LSD radix sort. Records are split into contiguous
// shards; each pass histograms the shards in parallel, prefix-sums the
// per-shard counts into disjoint scatter regions (value-major,
// shard-minor, which is what preserves stability), and scatters the shards
// in parallel — no locks, because every (shard, byte value) pair owns a
// disjoint destination range. Buffers below the tuned threshold, and any
// call with workers == 1, take the serial path and produce identical
// bytes.
func SortRecordsParallel(f records.Format, data, scratch []byte, workers int) {
	n := f.Count(len(data))
	if n < 2 {
		return
	}
	if len(scratch) < len(data) {
		panic("sortalgo: scratch smaller than data")
	}
	shards := shardCount(n, workers, parallelSortMinRecords)
	if shards < 2 {
		SortRecords(f, data, scratch)
		return
	}
	parallelRadixSort(f, data, scratch[:len(data)], n, shards)
}

func parallelRadixSort(f records.Format, data, scratch []byte, n, shards int) {
	size := f.Size
	src, dst := data, scratch

	boundsP := getInts(shards + 1)
	countsP := getInts(shards * 256)
	defer intsPool.Put(boundsP)
	defer intsPool.Put(countsP)
	bounds, counts := *boundsP, *countsP
	for s := 0; s <= shards; s++ {
		bounds[s] = s * n / shards
	}

	swaps := 0
	for byteIdx := records.KeySize - 1; byteIdx >= 0; byteIdx-- {
		byteIdx := byteIdx
		from := src
		// Per-shard histograms of this pass's key byte.
		parallel.Do(shards, shards, func(s int) {
			c := counts[s*256 : (s+1)*256]
			for v := range c {
				c[v] = 0
			}
			lo, hi := bounds[s], bounds[s+1]
			for i := lo; i < hi; i++ {
				c[from[i*size+byteIdx]]++
			}
		})
		// Serial join: total per value, skip constant passes, and turn the
		// histograms into scatter offsets, value-major then shard-minor so
		// shard s's records of value v land after shard s-1's — within a
		// shard records keep input order, hence global stability.
		skip := false
		for v := 0; v < 256; v++ {
			total := 0
			for s := 0; s < shards; s++ {
				total += counts[s*256+v]
			}
			if total == n {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		pos := 0
		for v := 0; v < 256; v++ {
			for s := 0; s < shards; s++ {
				c := counts[s*256+v]
				counts[s*256+v] = pos
				pos += c
			}
		}
		// Parallel scatter into disjoint regions.
		to := dst
		parallel.Do(shards, shards, func(s int) {
			off := counts[s*256 : (s+1)*256]
			lo, hi := bounds[s], bounds[s+1]
			for i := lo; i < hi; i++ {
				v := from[i*size+byteIdx]
				copy(to[off[v]*size:], from[i*size:(i+1)*size])
				off[v]++
			}
		})
		src, dst = dst, src
		swaps++
	}
	if swaps%2 == 1 {
		out := src
		parallel.Do(shards, shards, func(s int) {
			lo, hi := bounds[s]*size, bounds[s+1]*size
			copy(data[lo:hi], out[lo:hi])
		})
	}
}

// KeyUpperBound returns the number of records in the sorted sequence data
// whose key is <= key: the index of the first record ordering strictly
// after key. It is the key-split primitive behind MergeSortedParallel and
// dsort's bulk-emitting merge stage.
func KeyUpperBound(f records.Format, data []byte, key uint64) int {
	lo, hi := 0, f.Count(len(data))
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.KeyAt(data, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mergeSplit returns how many of the first k records of the stable merge
// of a and b come from a. The returned i (with j = k-i) is the unique
// split satisfying a[i-1] <= b[j] and b[j-1] < a[i]: ties go to a, exactly
// as MergeSorted resolves them, so cutting both inputs at (i, j) and
// merging the halves independently reproduces the serial merge
// byte-for-byte.
func mergeSplit(f records.Format, a, b []byte, na, nb, k int) int {
	lo, hi := k-nb, na
	if lo < 0 {
		lo = 0
	}
	if hi > k {
		hi = k
	}
	for lo < hi {
		i := int(uint(lo+hi) >> 1)
		j := k - i - 1
		// Does a[i] come after b[j] in the stable merge? Only when
		// b's key is strictly smaller (a wins ties).
		if f.KeyAt(b, j) < f.KeyAt(a, i) {
			hi = i
		} else {
			lo = i + 1
		}
	}
	return lo
}

// MergeSortedParallel is MergeSorted with intra-buffer parallelism: the
// output is cut into near-equal ranges, each range's sources are found by
// the mergeSplit key binary search, and the ranges are merged
// independently on the shared pool. Output bytes are identical to
// MergeSorted's, including a-before-b order on equal keys.
func MergeSortedParallel(f records.Format, a, b, dst []byte, workers int) {
	if len(dst) < len(a)+len(b) {
		panic("sortalgo: merge destination too small")
	}
	na, nb := f.Count(len(a)), f.Count(len(b))
	total := na + nb
	parts := shardCount(total, workers, parallelMergeMinRecords)
	if parts < 2 {
		MergeSorted(f, a, b, dst)
		return
	}
	size := f.Size
	cutsP := getInts(2 * (parts + 1))
	defer intsPool.Put(cutsP)
	ai := (*cutsP)[: parts+1 : parts+1]
	bi := (*cutsP)[parts+1:]
	ai[0], bi[0] = 0, 0 // pooled memory arrives dirty
	for t := 1; t < parts; t++ {
		k := t * total / parts
		ai[t] = mergeSplit(f, a, b, na, nb, k)
		bi[t] = k - ai[t]
	}
	ai[parts], bi[parts] = na, nb
	parallel.Do(parts, parts, func(t int) {
		alo, ahi := ai[t], ai[t+1]
		blo, bhi := bi[t], bi[t+1]
		MergeSorted(f, a[alo*size:ahi*size], b[blo*size:bhi*size],
			dst[(alo+blo)*size:(ahi+bhi)*size])
	})
}

// PartitionRecords rearranges the records of data into dst so that records
// of the same partition are contiguous and partitions appear in index
// order; within a partition records keep their input order (the scatter is
// stable, which dsort's extended-key semantics rely on). classify returns
// the partition of record i and must be safe for concurrent calls with
// distinct i. The returned slice holds each partition's record count —
// freshly allocated, because dsort attaches it to the buffer as Meta and
// it outlives the call.
//
// Above the tuned threshold the classification and scatter phases shard
// across the worker pool exactly like the radix sort's counting passes:
// per-shard partition histograms, a serial prefix over (partition, shard),
// then a scatter into disjoint regions.
func PartitionRecords(f records.Format, data, dst []byte, parts int, classify func(i int) int, workers int) []int {
	n := f.Count(len(data))
	if len(dst) < len(data) {
		panic("sortalgo: partition destination too small")
	}
	counts := make([]int, parts)
	if n == 0 {
		return counts
	}
	size := f.Size
	shards := shardCount(n, workers, parallelPartitionMinRecords)

	partOfP := getInt32s(n)
	defer int32sPool.Put(partOfP)
	partOf := *partOfP

	if shards < 2 {
		for i := 0; i < n; i++ {
			d := classify(i)
			partOf[i] = int32(d)
			counts[d]++
		}
		offsetsP := getInts(parts)
		defer intsPool.Put(offsetsP)
		offsets := *offsetsP
		pos := 0
		for d := 0; d < parts; d++ {
			offsets[d] = pos
			pos += counts[d]
		}
		for i := 0; i < n; i++ {
			d := partOf[i]
			copy(dst[offsets[d]*size:], data[i*size:(i+1)*size])
			offsets[d]++
		}
		return counts
	}

	boundsP := getInts(shards + 1)
	shardCountsP := getInts(shards * parts)
	defer intsPool.Put(boundsP)
	defer intsPool.Put(shardCountsP)
	bounds, shardCounts := *boundsP, *shardCountsP
	for s := 0; s <= shards; s++ {
		bounds[s] = s * n / shards
	}
	parallel.Do(shards, shards, func(s int) {
		c := shardCounts[s*parts : (s+1)*parts]
		for d := range c {
			c[d] = 0
		}
		lo, hi := bounds[s], bounds[s+1]
		for i := lo; i < hi; i++ {
			d := classify(i)
			partOf[i] = int32(d)
			c[d]++
		}
	})
	pos := 0
	for d := 0; d < parts; d++ {
		for s := 0; s < shards; s++ {
			c := shardCounts[s*parts+d]
			shardCounts[s*parts+d] = pos
			pos += c
			counts[d] += c
		}
	}
	parallel.Do(shards, shards, func(s int) {
		off := shardCounts[s*parts : (s+1)*parts]
		lo, hi := bounds[s], bounds[s+1]
		for i := lo; i < hi; i++ {
			d := partOf[i]
			copy(dst[off[d]*size:], data[i*size:(i+1)*size])
			off[d]++
		}
	})
	return counts
}
