package sortalgo

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fg-go/fg/records"
)

func randomRecords(f records.Format, n int, keySpace uint64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, f.Bytes(n))
	for i := 0; i < n; i++ {
		rec := f.At(data, i)
		key := rng.Uint64()
		if keySpace > 0 {
			key %= keySpace
		}
		f.SetKey(rec, key)
		if f.HasID() {
			f.StampID(rec, records.MakeID(0, uint64(i)))
		}
	}
	return data
}

func checkSortedPermutation(t *testing.T, f records.Format, before, after []byte) {
	t.Helper()
	if !f.IsSorted(after) {
		t.Fatal("output is not sorted")
	}
	if f.HasID() {
		if !f.Fingerprint(after).Equal(f.Fingerprint(before)) {
			t.Fatal("output is not a permutation of the input")
		}
	}
}

func TestSortRecordsMatchesOracle(t *testing.T) {
	for _, size := range []int{16, 64} {
		for _, n := range []int{0, 1, 2, 63, 64, 65, 1000} {
			for _, space := range []uint64{0, 1, 7, 1 << 40} {
				f := records.NewFormat(size)
				data := randomRecords(f, n, space, int64(n)*7+int64(space%97)+int64(size))
				before := append([]byte(nil), data...)
				SortRecords(f, data, make([]byte, len(data)))

				oracle := append([]byte(nil), before...)
				SortRecordsComparison(f, oracle)
				if !bytes.Equal(data, oracle) {
					t.Fatalf("size=%d n=%d space=%d: radix sort disagrees with comparison sort", size, n, space)
				}
				checkSortedPermutation(t, f, before, data)
			}
		}
	}
}

func TestSortRecordsStable(t *testing.T) {
	// Equal keys must keep their input order: with all keys equal, the ids
	// must come out in input order.
	f := records.NewFormat(16)
	const n = 500
	data := make([]byte, f.Bytes(n))
	for i := 0; i < n; i++ {
		f.SetKey(f.At(data, i), 42)
		f.StampID(f.At(data, i), uint64(i))
	}
	SortRecords(f, data, make([]byte, len(data)))
	for i := 0; i < n; i++ {
		if f.IDAt(data, i) != uint64(i) {
			t.Fatalf("stability broken at %d: id %d", i, f.IDAt(data, i))
		}
	}
}

func TestSortRecordsPanicsOnSmallScratch(t *testing.T) {
	f := records.NewFormat(16)
	data := randomRecords(f, 100, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("small scratch did not panic")
		}
	}()
	SortRecords(f, data, make([]byte, 10))
}

func TestSortRecordsQuick(t *testing.T) {
	f := records.NewFormat(16)
	fn := func(keys []uint64) bool {
		data := make([]byte, f.Bytes(len(keys)))
		for i, k := range keys {
			f.SetKey(f.At(data, i), k)
			f.StampID(f.At(data, i), uint64(i))
		}
		before := f.Fingerprint(data)
		SortRecords(f, data, make([]byte, len(data)))
		return f.IsSorted(data) && f.Fingerprint(data).Equal(before)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeSorted(t *testing.T) {
	f := records.NewFormat(16)
	a := randomRecords(f, 300, 1000, 5)
	b := randomRecords(f, 200, 1000, 6)
	SortRecords(f, a, make([]byte, len(a)))
	SortRecords(f, b, make([]byte, len(b)))
	dst := make([]byte, len(a)+len(b))
	MergeSorted(f, a, b, dst)
	if !f.IsSorted(dst) {
		t.Fatal("merged output unsorted")
	}
	var want records.Fingerprint
	want.Merge(f.Fingerprint(a))
	want.Merge(f.Fingerprint(b))
	if !f.Fingerprint(dst).Equal(want) {
		t.Fatal("merge lost or duplicated records")
	}
}

func TestMergeSortedEmptySides(t *testing.T) {
	f := records.NewFormat(16)
	a := randomRecords(f, 10, 100, 7)
	SortRecords(f, a, make([]byte, len(a)))
	dst := make([]byte, len(a))
	MergeSorted(f, a, nil, dst)
	if !bytes.Equal(dst, a) {
		t.Error("merge with empty right side altered data")
	}
	MergeSorted(f, nil, a, dst)
	if !bytes.Equal(dst, a) {
		t.Error("merge with empty left side altered data")
	}
}

func TestMergeSortedStability(t *testing.T) {
	f := records.NewFormat(16)
	mk := func(id uint64) []byte {
		rec := make([]byte, 16)
		f.SetKey(rec, 9)
		f.StampID(rec, id)
		return rec
	}
	a := append(mk(1), mk(2)...)
	b := append(mk(3), mk(4)...)
	dst := make([]byte, len(a)+len(b))
	MergeSorted(f, a, b, dst)
	for i, want := range []uint64{1, 2, 3, 4} {
		if got := f.IDAt(dst, i); got != want {
			t.Fatalf("position %d holds id %d, want %d (a-side must win ties)", i, got, want)
		}
	}
}

func TestMergeSortedPanicsOnSmallDst(t *testing.T) {
	f := records.NewFormat(16)
	a := randomRecords(f, 4, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("small destination did not panic")
		}
	}()
	MergeSorted(f, a, a, make([]byte, len(a)))
}

func BenchmarkRadixSort16B(b *testing.B) {
	f := records.NewFormat(16)
	orig := randomRecords(f, 1<<14, 0, 1)
	data := make([]byte, len(orig))
	scratch := make([]byte, len(orig))
	b.SetBytes(int64(len(orig)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, orig)
		SortRecords(f, data, scratch)
	}
}

func BenchmarkComparisonSort16B(b *testing.B) {
	f := records.NewFormat(16)
	orig := randomRecords(f, 1<<14, 0, 1)
	data := make([]byte, len(orig))
	b.SetBytes(int64(len(orig)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, orig)
		SortRecordsComparison(f, data)
	}
}
