// Package sortalgo provides the in-memory sorting kernels the pipeline
// stages use: a stable LSD radix sort on fixed-size records keyed by their
// 8-byte big-endian prefix, and a two-way merge for columnsort's
// sorted-halves step. The sort stages of both csort and dsort are pure
// computation on one buffer at a time; keeping them fast maximizes the
// latency-hiding the pipelines can achieve.
package sortalgo

import (
	"sort"
	"sync"

	"github.com/fg-go/fg/records"
)

// SortRecords sorts the records in data by key, in place, using scratch as
// auxiliary space. scratch must be at least len(data) bytes; pipeline
// stages pass their buffer's Aux. The sort is stable.
func SortRecords(f records.Format, data, scratch []byte) {
	n := f.Count(len(data))
	if n < 2 {
		return
	}
	if len(scratch) < len(data) {
		panic("sortalgo: scratch smaller than data")
	}
	if n < 64 {
		insertionSort(f, data, scratch)
		return
	}
	radixSort(f, data, scratch[:len(data)], n)
}

// insertionSort handles small inputs where radix setup costs dominate.
// It uses one record's worth of scratch as the swap temporary.
func insertionSort(f records.Format, data, scratch []byte) {
	n := f.Count(len(data))
	size := f.Size
	tmp := scratch[:size]
	for i := 1; i < n; i++ {
		key := f.KeyAt(data, i)
		j := i - 1
		for j >= 0 && f.KeyAt(data, j) > key {
			j--
		}
		j++
		if j == i {
			continue
		}
		copy(tmp, f.At(data, i))
		copy(data[(j+1)*size:(i+1)*size], data[j*size:i*size])
		copy(f.At(data, j), tmp)
	}
}

// radixSort is a byte-wise LSD radix sort over the 8-byte key. Passes whose
// byte is constant across all records are skipped, which makes narrow key
// distributions (all-equal, Poisson) nearly free.
func radixSort(f records.Format, data, scratch []byte, n int) {
	size := f.Size
	src, dst := data, scratch
	swaps := 0
	// Keys are big-endian at offsets 0..7 of each record; LSD goes from
	// byte 7 (least significant) to byte 0.
	for byteIdx := records.KeySize - 1; byteIdx >= 0; byteIdx-- {
		var count [256]int
		for i := 0; i < n; i++ {
			count[src[i*size+byteIdx]]++
		}
		skip := false
		for _, c := range count {
			if c == n {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		pos := 0
		var offset [256]int
		for v := 0; v < 256; v++ {
			offset[v] = pos
			pos += count[v]
		}
		for i := 0; i < n; i++ {
			v := src[i*size+byteIdx]
			copy(dst[offset[v]*size:], src[i*size:(i+1)*size])
			offset[v]++
		}
		src, dst = dst, src
		swaps++
	}
	if swaps%2 == 1 {
		copy(data, src[:n*size])
	}
}

// recordSlicePool recycles the sorter header and its one-record swap
// temporary across calls: comparison sorts run once per pipeline round for
// the life of a sort, and the pool keeps them allocation-free at steady
// state (see the -benchmem kernel benchmarks).
var recordSlicePool = sync.Pool{New: func() any { return new(recordSlice) }}

// SortRecordsComparison sorts data with the standard library's comparison
// sort; the tests use it as an independent oracle, and callers can prefer
// it for very large records where moving whole records per radix pass is
// costly.
func SortRecordsComparison(f records.Format, data []byte) {
	n := f.Count(len(data))
	size := f.Size
	r := recordSlicePool.Get().(*recordSlice)
	if cap(r.tmp) < size {
		r.tmp = make([]byte, size)
	}
	r.f, r.data, r.tmp, r.n, r.size = f, data, r.tmp[:size], n, size
	sort.Stable(r)
	r.data = nil // do not retain the caller's buffer
	recordSlicePool.Put(r)
}

type recordSlice struct {
	f    records.Format
	data []byte
	tmp  []byte
	n    int
	size int
}

func (r *recordSlice) Len() int           { return r.n }
func (r *recordSlice) Less(i, j int) bool { return r.f.Less(r.data, i, j) }
func (r *recordSlice) Swap(i, j int) {
	a, b := r.f.At(r.data, i), r.f.At(r.data, j)
	copy(r.tmp, a)
	copy(a, b)
	copy(b, r.tmp)
}

// MergeSorted merges the two sorted record sequences a and b into dst,
// which must hold len(a)+len(b) bytes. The merge is stable: on equal keys,
// records of a precede records of b.
func MergeSorted(f records.Format, a, b, dst []byte) {
	na, nb := f.Count(len(a)), f.Count(len(b))
	if len(dst) < len(a)+len(b) {
		panic("sortalgo: merge destination too small")
	}
	size := f.Size
	i, j, o := 0, 0, 0
	for i < na && j < nb {
		if f.KeyAt(b, j) < f.KeyAt(a, i) {
			copy(dst[o*size:], f.At(b, j))
			j++
		} else {
			copy(dst[o*size:], f.At(a, i))
			i++
		}
		o++
	}
	if i < na {
		copy(dst[o*size:], a[i*size:])
	}
	if j < nb {
		copy(dst[o*size:], b[j*size:])
	}
}
