package sortalgo

import (
	"bytes"
	"runtime"
	"testing"
	"testing/quick"

	"github.com/fg-go/fg/records"
)

// workerCounts are the widths every parallel-vs-serial test sweeps:
// forced-serial, minimal parallelism, the machine's width, and
// oversubscription beyond it.
func workerCounts() []int {
	return []int{1, 2, runtime.NumCPU(), 2*runtime.NumCPU() + 1}
}

// lowerThresholds drops the serial-fallback thresholds so the parallel
// code paths run even on the small inputs property tests use, restoring
// the tuned values afterwards.
func lowerThresholds(t *testing.T) {
	t.Helper()
	sortMin, mergeMin, partMin, shardMin := parallelSortMinRecords, parallelMergeMinRecords, parallelPartitionMinRecords, minShardRecords
	parallelSortMinRecords, parallelMergeMinRecords, parallelPartitionMinRecords, minShardRecords = 8, 8, 8, 2
	t.Cleanup(func() {
		parallelSortMinRecords, parallelMergeMinRecords, parallelPartitionMinRecords, minShardRecords = sortMin, mergeMin, partMin, shardMin
	})
}

func recordsFromKeys(f records.Format, keys []uint64) []byte {
	data := make([]byte, f.Bytes(len(keys)))
	for i, k := range keys {
		rec := f.At(data, i)
		f.SetKey(rec, k)
		if f.HasID() {
			f.StampID(rec, records.MakeID(0, uint64(i)))
		}
	}
	return data
}

// TestSortRecordsParallelMatchesSerial is the byte-identity property: for
// any input and any worker count, the parallel radix sort must produce
// exactly the bytes the serial sort produces. Because every record carries
// a unique id, byte identity also proves stability on duplicate keys.
func TestSortRecordsParallelMatchesSerial(t *testing.T) {
	lowerThresholds(t)
	f := records.NewFormat(16)
	for _, workers := range workerCounts() {
		workers := workers
		fn := func(keys []uint64, narrow bool) bool {
			if narrow { // force long runs of duplicate keys
				for i := range keys {
					keys[i] %= 4
				}
			}
			want := recordsFromKeys(f, keys)
			got := append([]byte(nil), want...)
			SortRecords(f, want, make([]byte, len(want)))
			SortRecordsParallel(f, got, make([]byte, len(got)), workers)
			return bytes.Equal(got, want)
		}
		if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}

// TestSortRecordsParallelLarge exercises the tuned (un-lowered) thresholds
// with a buffer big enough to shard for real, on every worker count.
func TestSortRecordsParallelLarge(t *testing.T) {
	f := records.NewFormat(16)
	const n = 48 << 10 // above parallelSortMinRecords
	for _, space := range []uint64{0, 1, 5, 1 << 40} {
		orig := randomRecords(f, n, space, int64(space)+11)
		want := append([]byte(nil), orig...)
		SortRecords(f, want, make([]byte, len(want)))
		for _, workers := range workerCounts() {
			got := append([]byte(nil), orig...)
			SortRecordsParallel(f, got, make([]byte, len(got)), workers)
			if !bytes.Equal(got, want) {
				t.Fatalf("space=%d workers=%d: parallel sort diverges from serial", space, workers)
			}
		}
	}
}

func TestMergeSortedParallelMatchesSerial(t *testing.T) {
	lowerThresholds(t)
	f := records.NewFormat(16)
	for _, workers := range workerCounts() {
		workers := workers
		fn := func(ka, kb []uint64, narrow bool) bool {
			if narrow {
				for i := range ka {
					ka[i] %= 3
				}
				for i := range kb {
					kb[i] %= 3
				}
			}
			a := recordsFromKeys(f, ka)
			b := recordsFromKeys(f, kb)
			SortRecords(f, a, make([]byte, len(a)))
			SortRecords(f, b, make([]byte, len(b)))
			want := make([]byte, len(a)+len(b))
			got := make([]byte, len(a)+len(b))
			MergeSorted(f, a, b, want)
			MergeSortedParallel(f, a, b, got, workers)
			return bytes.Equal(got, want)
		}
		if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}

// TestMergeSortedParallelAllEqual pins the stability corner directly: with
// every key equal, the merge must emit all of a then all of b, at every
// worker count, so the key-split cuts may not interleave the sides.
func TestMergeSortedParallelAllEqual(t *testing.T) {
	lowerThresholds(t)
	f := records.NewFormat(16)
	const na, nb = 700, 500
	mk := func(n, node int) []byte {
		data := make([]byte, f.Bytes(n))
		for i := 0; i < n; i++ {
			f.SetKey(f.At(data, i), 77)
			f.StampID(f.At(data, i), records.MakeID(uint32(node), uint64(i)))
		}
		return data
	}
	a, b := mk(na, 1), mk(nb, 2)
	for _, workers := range workerCounts() {
		dst := make([]byte, len(a)+len(b))
		MergeSortedParallel(f, a, b, dst, workers)
		for i := 0; i < na+nb; i++ {
			wantNode, wantSeq := uint32(1), uint64(i)
			if i >= na {
				wantNode, wantSeq = 2, uint64(i-na)
			}
			node, seq := records.SplitID(f.IDAt(dst, i))
			if node != wantNode || seq != wantSeq {
				t.Fatalf("workers=%d: position %d holds (n%d,#%d), want (n%d,#%d)",
					workers, i, node, seq, wantNode, wantSeq)
			}
		}
	}
}

func TestKeyUpperBound(t *testing.T) {
	f := records.NewFormat(16)
	keys := []uint64{1, 3, 3, 3, 9, 9, 12}
	data := recordsFromKeys(f, keys)
	for _, tc := range []struct {
		key  uint64
		want int
	}{{0, 0}, {1, 1}, {2, 1}, {3, 4}, {8, 4}, {9, 6}, {12, 7}, {99, 7}} {
		if got := KeyUpperBound(f, data, tc.key); got != tc.want {
			t.Errorf("KeyUpperBound(%d) = %d, want %d", tc.key, got, tc.want)
		}
	}
	if got := KeyUpperBound(f, nil, 5); got != 0 {
		t.Errorf("KeyUpperBound on empty data = %d, want 0", got)
	}
}

// partitionOracle is the original serial permute: counting sort on the
// partition index.
func partitionOracle(f records.Format, data []byte, parts int, classify func(i int) int) ([]byte, []int) {
	n := f.Count(len(data))
	size := f.Size
	counts := make([]int, parts)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		idx[i] = classify(i)
		counts[idx[i]]++
	}
	offsets := make([]int, parts)
	pos := 0
	for d := 0; d < parts; d++ {
		offsets[d] = pos
		pos += counts[d]
	}
	out := make([]byte, len(data))
	for i := 0; i < n; i++ {
		d := idx[i]
		copy(out[offsets[d]*size:], data[i*size:(i+1)*size])
		offsets[d]++
	}
	return out, counts
}

func TestPartitionRecordsMatchesOracle(t *testing.T) {
	lowerThresholds(t)
	f := records.NewFormat(16)
	for _, workers := range workerCounts() {
		workers := workers
		fn := func(keys []uint64, parts8 uint8) bool {
			parts := int(parts8%16) + 1
			data := recordsFromKeys(f, keys)
			classify := func(i int) int { return int(f.KeyAt(data, i) % uint64(parts)) }
			want, wantCounts := partitionOracle(f, data, parts, classify)
			dst := make([]byte, len(data))
			gotCounts := PartitionRecords(f, data, dst, parts, classify, workers)
			if !bytes.Equal(dst, want) {
				return false
			}
			for d := range wantCounts {
				if gotCounts[d] != wantCounts[d] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}

func TestPartitionRecordsLarge(t *testing.T) {
	f := records.NewFormat(16)
	const n, parts = 40 << 10, 16
	data := randomRecords(f, n, 0, 99)
	classify := func(i int) int { return int(f.KeyAt(data, i) % parts) }
	want, _ := partitionOracle(f, data, parts, classify)
	for _, workers := range workerCounts() {
		dst := make([]byte, len(data))
		PartitionRecords(f, data, dst, parts, classify, workers)
		if !bytes.Equal(dst, want) {
			t.Fatalf("workers=%d: parallel partition diverges from oracle", workers)
		}
	}
}

// benchRecords is the kernel benchmark size: records per buffer. 2^17
// 16-byte records is 2 MiB — the scale of a dsort run buffer at the
// paper's full workload, and far above the serial-fallback thresholds.
const benchRecords = 1 << 17

func benchSort(b *testing.B, workers int) {
	f := records.NewFormat(16)
	orig := randomRecords(f, benchRecords, 0, 1)
	data := make([]byte, len(orig))
	scratch := make([]byte, len(orig))
	b.SetBytes(int64(len(orig)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, orig)
		SortRecordsParallel(f, data, scratch, workers)
	}
}

// BenchmarkKernelSortSerial vs BenchmarkKernelSortParallel is the
// acceptance pair: uniform 16-byte records at bench buffer size; the
// parallel variant should run >= 2x faster on a >= 4-core machine.
func BenchmarkKernelSortSerial(b *testing.B)   { benchSort(b, 1) }
func BenchmarkKernelSortParallel(b *testing.B) { benchSort(b, 0) }

func benchMerge(b *testing.B, workers int) {
	f := records.NewFormat(16)
	a := randomRecords(f, benchRecords/2, 0, 2)
	c := randomRecords(f, benchRecords/2, 0, 3)
	SortRecords(f, a, make([]byte, len(a)))
	SortRecords(f, c, make([]byte, len(c)))
	dst := make([]byte, len(a)+len(c))
	b.SetBytes(int64(len(dst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeSortedParallel(f, a, c, dst, workers)
	}
}

func BenchmarkKernelMergeSerial(b *testing.B)   { benchMerge(b, 1) }
func BenchmarkKernelMergeParallel(b *testing.B) { benchMerge(b, 0) }

func benchPartition(b *testing.B, workers int) {
	f := records.NewFormat(16)
	const parts = 16
	data := randomRecords(f, benchRecords, 0, 4)
	dst := make([]byte, len(data))
	classify := func(i int) int { return int(f.KeyAt(data, i) % parts) }
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PartitionRecords(f, data, dst, parts, classify, workers)
	}
}

func BenchmarkKernelPartitionSerial(b *testing.B)   { benchPartition(b, 1) }
func BenchmarkKernelPartitionParallel(b *testing.B) { benchPartition(b, 0) }

// BenchmarkKernelComparisonSortPooled tracks the sync.Pool satellite: the
// comparison sort's allocs/op must stay at zero at steady state.
func BenchmarkKernelComparisonSortPooled(b *testing.B) {
	f := records.NewFormat(16)
	orig := randomRecords(f, 1<<12, 0, 5)
	data := make([]byte, len(orig))
	b.SetBytes(int64(len(orig)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, orig)
		SortRecordsComparison(f, data)
	}
}
