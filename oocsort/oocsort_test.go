package oocsort

import (
	"strings"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/workload"
)

func validSpec() Spec {
	s := DefaultSpec()
	s.TotalRecords = 1 << 12
	s.RecordsPerBlock = 256
	return s
}

func TestValidateAcceptsDefault(t *testing.T) {
	if err := validSpec().Validate(4); err != nil {
		t.Fatalf("default spec rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		p    int
	}{
		{"zero records", func(s *Spec) { s.TotalRecords = 0 }, 4},
		{"negative records", func(s *Spec) { s.TotalRecords = -5 }, 4},
		{"indivisible", func(s *Spec) { s.TotalRecords = 1<<12 + 1 }, 4},
		{"zero block", func(s *Spec) { s.RecordsPerBlock = 0 }, 4},
		{"zero nodes", func(s *Spec) {}, 0},
		{"empty input name", func(s *Spec) { s.InputName = "" }, 4},
		{"same names", func(s *Spec) { s.OutputName = s.InputName }, 4},
	}
	for _, c := range cases {
		s := validSpec()
		c.mut(&s)
		if err := s.Validate(c.p); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSpecGeometryHelpers(t *testing.T) {
	s := validSpec()
	if got := s.PerNode(4); got != 1024 {
		t.Errorf("PerNode = %d, want 1024", got)
	}
	if got := s.TotalBytes(); got != (1<<12)*16 {
		t.Errorf("TotalBytes = %d", got)
	}
	out := s.Output(4)
	if out.BlockBytes != 256*16 || out.Disks != 4 || out.Name != s.OutputName {
		t.Errorf("Output geometry: %+v", out)
	}
}

func TestGenerateInputWritesEveryNode(t *testing.T) {
	s := validSpec()
	c := cluster.New(cluster.Config{Nodes: 4})
	fp, err := GenerateInput(c, s)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Count != uint64(s.TotalRecords) {
		t.Errorf("fingerprint covers %d records, want %d", fp.Count, s.TotalRecords)
	}
	var merged records.Fingerprint
	for rank, d := range c.Disks() {
		data := d.Export(s.InputName)
		if int64(len(data)) != s.PerNode(4)*16 {
			t.Errorf("node %d input holds %d bytes", rank, len(data))
		}
		merged.Merge(s.Format.Fingerprint(data))
	}
	if !merged.Equal(fp) {
		t.Error("returned fingerprint does not match the data on disk")
	}
}

func TestGenerateInputDeterministic(t *testing.T) {
	s := validSpec()
	var fps [2]records.Fingerprint
	for i := range fps {
		c := cluster.New(cluster.Config{Nodes: 4})
		fp, err := GenerateInput(c, s)
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = fp
	}
	if !fps[0].Equal(fps[1]) {
		t.Error("same seed produced different inputs")
	}
}

func TestGenerateInputRejectsBadSpec(t *testing.T) {
	s := validSpec()
	s.TotalRecords = 3 // not divisible by 4
	c := cluster.New(cluster.Config{Nodes: 4})
	if _, err := GenerateInput(c, s); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestResultAccounting(t *testing.T) {
	r := Result{
		Program: "x",
		Passes: []PassTiming{
			{Name: "a", Duration: 100 * time.Millisecond},
			{Name: "b", Duration: 250 * time.Millisecond},
		},
	}
	if r.Total() != 350*time.Millisecond {
		t.Errorf("Total = %v", r.Total())
	}
	if r.Pass("b") != 250*time.Millisecond || r.Pass("zz") != 0 {
		t.Error("Pass lookup wrong")
	}
	s := r.String()
	if !strings.Contains(s, "x:") || !strings.Contains(s, "a ") {
		t.Errorf("String() = %q", s)
	}
}

func TestCollectStatsSumAndReset(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2})
	err := c.Run(func(n *cluster.Node) error {
		if err := n.Disk.WriteAt("f", make([]byte, 100), 0); err != nil {
			return err
		}
		if n.Rank() == 0 {
			n.Send(1, 1, make([]byte, 10))
		} else {
			n.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	disk := CollectDiskStats(c)
	if disk.BytesWritten != 200 {
		t.Errorf("collected %d written bytes, want 200", disk.BytesWritten)
	}
	comm := CollectCommStats(c)
	if comm.BytesSent != 10 || comm.BytesRecvd != 10 {
		t.Errorf("collected comm stats %+v", comm)
	}
	// Counters must be reset.
	if CollectDiskStats(c).TotalBytes() != 0 {
		t.Error("disk stats not reset")
	}
	if CollectCommStats(c).BytesSent != 0 {
		t.Error("comm stats not reset")
	}
}

func TestGenerateInputAllDistributions(t *testing.T) {
	for _, dist := range append(append([]workload.Distribution{}, workload.Distributions...), workload.SkewDistributions...) {
		s := validSpec()
		s.Distribution = dist
		c := cluster.New(cluster.Config{Nodes: 4})
		if _, err := GenerateInput(c, s); err != nil {
			t.Errorf("%v: %v", dist, err)
		}
	}
}
