// Package oocsort defines the common contract the out-of-core sorting
// programs (csort and dsort) share: the job specification, the input layout
// on the cluster's disks, and the striped output layout in Parallel Disk
// Model order. Keeping the contract in one place lets the two programs —
// and any future out-of-core algorithm built on FG — be driven and verified
// by the same harness.
package oocsort

import (
	"fmt"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/pdm"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/workload"
)

// Spec describes one sorting job. Both sorting programs take the same input
// (a flat file of records on each node's disk, N/P records per node) and
// must produce the same output (a single striped file in PDM order holding
// all N records sorted by key).
type Spec struct {
	// Format is the record layout; the paper evaluates 16- and 64-byte
	// records.
	Format records.Format
	// TotalRecords is N, the cluster-wide record count. It must be
	// divisible by the node count.
	TotalRecords int64
	// RecordsPerBlock is the PDM stripe unit of the output file, in
	// records.
	RecordsPerBlock int
	// InputName and OutputName are the per-disk file names of the unsorted
	// input and the striped sorted output.
	InputName, OutputName string
	// Distribution and Seed control input generation.
	Distribution workload.Distribution
	Seed         int64
}

// DefaultSpec returns a laptop-scale specification mirroring the paper's
// 16-byte-record experiments.
func DefaultSpec() Spec {
	return Spec{
		Format:          records.NewFormat(16),
		TotalRecords:    1 << 18,
		RecordsPerBlock: 1 << 12,
		InputName:       "input",
		OutputName:      "output",
		Distribution:    workload.Uniform,
		Seed:            1,
	}
}

// Validate checks the spec against a cluster of p nodes.
func (s Spec) Validate(p int) error {
	if s.Format.Size < records.MinRecordSize {
		return fmt.Errorf("oocsort: invalid record size %d", s.Format.Size)
	}
	if s.TotalRecords <= 0 {
		return fmt.Errorf("oocsort: non-positive record count %d", s.TotalRecords)
	}
	if p <= 0 {
		return fmt.Errorf("oocsort: non-positive node count %d", p)
	}
	if s.TotalRecords%int64(p) != 0 {
		return fmt.Errorf("oocsort: %d records do not divide among %d nodes", s.TotalRecords, p)
	}
	if s.RecordsPerBlock <= 0 {
		return fmt.Errorf("oocsort: non-positive block size %d", s.RecordsPerBlock)
	}
	if s.InputName == "" || s.OutputName == "" || s.InputName == s.OutputName {
		return fmt.Errorf("oocsort: input %q and output %q must be distinct non-empty names",
			s.InputName, s.OutputName)
	}
	return nil
}

// PerNode returns N/P, each node's share of the input.
func (s Spec) PerNode(p int) int64 { return s.TotalRecords / int64(p) }

// TotalBytes returns the byte size of the whole dataset.
func (s Spec) TotalBytes() int64 { return s.TotalRecords * int64(s.Format.Size) }

// Output describes the striped output file across p disks.
func (s Spec) Output(p int) pdm.StripedFile {
	return pdm.NewStripedFile(s.OutputName, s.RecordsPerBlock*s.Format.Size, p)
}

// GenerateInput fills every local node's input file with its share of
// records drawn from the spec's distribution, and returns the fingerprint
// of the generated records (for formats that carry identifiers; otherwise a
// zero fingerprint). With every rank local that is the whole input's
// fingerprint; in a multi-process job it is this process's share, which
// check.DistributedOutput combines across processes. Generation bypasses
// the simulated disk cost: it is setup, not part of any measured pass.
func GenerateInput(c *cluster.Cluster, s Spec) (records.Fingerprint, error) {
	if err := s.Validate(c.P()); err != nil {
		return records.Fingerprint{}, err
	}
	perNode := s.PerNode(c.P())
	fps := make([]records.Fingerprint, c.P())
	err := c.Run(func(n *cluster.Node) error {
		g := workload.NewGenerator(s.Format, s.Distribution, s.Seed, uint32(n.Rank()))
		data := make([]byte, s.Format.Bytes(int(perNode)))
		g.Fill(data)
		n.Disk.Import(s.InputName, data)
		if s.Format.HasID() {
			fps[n.Rank()] = s.Format.Fingerprint(data)
		}
		return nil
	})
	if err != nil {
		return records.Fingerprint{}, err
	}
	var fp records.Fingerprint
	for _, f := range fps {
		fp.Merge(f)
	}
	return fp, nil
}

// PassTiming records the wall-clock duration of one named phase of a
// sorting program, in the simulated cluster's time.
type PassTiming struct {
	Name     string
	Duration time.Duration
}

// Result reports a completed sort.
type Result struct {
	Program string
	Passes  []PassTiming
	// Resumed names the passes skipped by restoring a checkpoint instead
	// of recomputing; empty for a from-scratch run. A resumed pass still
	// appears in Passes, its duration being the restore time.
	Resumed []string
	// Disk and network traffic accumulated across the whole run.
	Disk pdm.Counters
	Comm cluster.CommStats
}

// Total returns the sum of the pass durations.
func (r Result) Total() time.Duration {
	var t time.Duration
	for _, p := range r.Passes {
		t += p.Duration
	}
	return t
}

// Pass returns the duration of the named pass, or zero.
func (r Result) Pass(name string) time.Duration {
	for _, p := range r.Passes {
		if p.Name == name {
			return p.Duration
		}
	}
	return 0
}

// String renders the result like the per-pass stacks of Figure 8.
func (r Result) String() string {
	out := fmt.Sprintf("%s: total %v", r.Program, r.Total().Round(time.Millisecond))
	for _, p := range r.Passes {
		out += fmt.Sprintf(" | %s %v", p.Name, p.Duration.Round(time.Millisecond))
	}
	return out
}

// CollectDiskStats sums the disk counters across the cluster's local nodes
// and resets them, so successive sorts on the same cluster report
// independent traffic. In a multi-process job each process reports the
// traffic of the ranks it hosts.
func CollectDiskStats(c *cluster.Cluster) pdm.Counters {
	var total pdm.Counters
	for _, n := range c.Local() {
		total.Add(n.Disk.Stats())
		n.Disk.ResetStats()
	}
	return total
}

// CollectCommStats sums the communication counters across the cluster's
// local nodes and resets them.
func CollectCommStats(c *cluster.Cluster) cluster.CommStats {
	var total cluster.CommStats
	for _, n := range c.Local() {
		s := n.Stats()
		total.MessagesSent += s.MessagesSent
		total.BytesSent += s.BytesSent
		total.MessagesRecvd += s.MessagesRecvd
		total.BytesRecvd += s.BytesRecvd
		total.SendBusy += s.SendBusy
		total.SendWait += s.SendWait
		total.RecvWait += s.RecvWait
		total.Reconnects += s.Reconnects
		n.ResetStats()
	}
	return total
}
