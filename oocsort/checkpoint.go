package oocsort

// Checkpoint plumbing shared by the sorting programs. A pass boundary is a
// barrier: every rank has materialized its share of the pass's output on
// its (simulated) disk. Checkpointing a pass means exporting those
// artifacts plus a small state blob into an fg.Checkpoint keyed by (rank,
// pass); resuming means deciding — collectively, because a pass is a
// cluster-wide phase — that every rank holds a valid checkpoint, and
// importing the artifacts back instead of recomputing them.

import (
	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
)

// AgreeResume decides collectively whether the job may skip a pass: each
// rank votes with the validity of its own checkpoint, the votes are
// allgathered, and the pass is skipped only on a unanimous yes. Unanimity
// keeps the decision deterministic and identical on every rank — a single
// rank with a missing or torn checkpoint (the one that died mid-save)
// forces the whole pass to rerun, which is always correct because pass
// inputs are either regenerable or themselves checkpointed. Call it from
// every rank, like any collective.
func AgreeResume(c *cluster.Comm, local bool) bool {
	vote := []byte{0}
	if local {
		vote[0] = 1
	}
	for _, v := range c.Allgather(vote) {
		if len(v) != 1 || v[0] == 0 {
			return false
		}
	}
	return true
}

// SavePass checkpoints one completed pass: the caller's state blob plus the
// named files exported from the node's disk. Export bypasses the simulated
// disk cost — a checkpoint is durability bookkeeping, not part of the
// modeled I/O.
func SavePass(ck fg.Checkpoint, n *cluster.Node, pass string, state []byte, files ...string) error {
	m := make(map[string][]byte, len(files))
	for _, name := range files {
		m[name] = n.Disk.Export(name)
	}
	return ck.Save(n.Rank(), pass, state, m)
}

// RestorePass validates the checkpoint for (rank, pass), imports its files
// back onto the node's disk, and returns the state blob.
func RestorePass(ck fg.Checkpoint, n *cluster.Node, pass string) ([]byte, error) {
	state, files, err := ck.Restore(n.Rank(), pass)
	if err != nil {
		return nil, err
	}
	for name, data := range files {
		n.Disk.Import(name, data)
	}
	return state, nil
}
