package colsort

import (
	"fmt"
	"strings"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/sortalgo"
	"github.com/fg-go/fg/oocsort"
)

// csort: the three-pass out-of-core columnsort. Each pass runs one copy of
// a single linear FG pipeline per node (Figure 3 of the paper); all
// communication is balanced and predetermined, and every node reads and
// writes exactly the average volume of data — the three properties Section
// III credits the program with.
//
// Pass 1 performs steps 1-2 (sort columns; transpose and reshape), pass 2
// performs steps 3-4 (sort; the inverse permutation), and pass 3 coalesces
// steps 5-8 (sort; shift down half a column; merge the two sorted halves;
// shift back) so that only three read/write sweeps over the data remain.
//
// One engineering liberty, documented in DESIGN.md: the records a node
// receives during the transpose of passes 1 and 2 are appended to each
// destination column in arrival order rather than scattered to their exact
// rows, because the next pass begins by sorting every column anyway. This
// keeps the disk writes of each round contiguous without changing any
// pass's I/O or communication volume.

// File names of the intermediate matrices between passes.
const (
	tempFile1 = "csort.t1"
	tempFile2 = "csort.t2"
)

// DefaultPipelineBuffers is the per-pipeline buffer pool used by csort's
// passes. Three buffers is the minimum that keeps pass 3's cross-node
// shift ripple flowing; one more gives the read stage headroom.
const DefaultPipelineBuffers = 4

// Run executes csort on one node; call it from every node of the cluster
// inside cluster.Run. It returns the node's per-pass timings (barriers
// align the passes, so every node reports cluster-wide pass times).
func Run(n *cluster.Node, pl Plan) (oocsort.Result, error) {
	return RunBuffers(n, pl, DefaultPipelineBuffers)
}

// RunBuffers is Run with an explicit per-pipeline buffer-pool size; the
// overlap ablation uses pool size 1 to serialize the stages.
func RunBuffers(n *cluster.Node, pl Plan, buffers int) (oocsort.Result, error) {
	res := oocsort.Result{Program: "csort"}
	pl.tuner = fg.NewAutoTuner(pl.AutoTune)
	pl.Observe.AttachTuner(pl.tuner)
	barrier := n.Comm("csort.barrier")

	passes := []colPass{
		{"csort.pass1", []string{tempFile1}, func() error {
			return pl.runTransposePass(n, "csort.p1", pl.Spec.InputName, tempFile1, buffers,
				// Step 2: column-major rank m = j*R + i lands at row-major
				// rank m, in column m mod S.
				func(j, i int) int { return (j*pl.R + i) % pl.S })
		}},
		{"csort.pass2", []string{tempFile2}, func() error {
			return pl.runTransposePass(n, "csort.p2", tempFile1, tempFile2, buffers,
				// Step 4: row-major rank q = i*S + j lands at column-major
				// rank q, in column q div R.
				func(j, i int) int { return (i*pl.S + j) / pl.R })
		}},
		{"csort.pass3", nil, func() error {
			return pl.runMergePass(n, tempFile2, buffers)
		}},
	}
	if err := pl.runPasses(n, barrier, &res, passes); err != nil {
		return res, err
	}
	n.Disk.Remove(tempFile1)
	n.Disk.Remove(tempFile2)
	return res, nil
}

// A colPass is one pass of a columnsort variant: its checkpoint key, the
// files it materializes (nil for the final, output-writing pass, which is
// never checkpointed — rerunning it from the previous boundary is the
// recovery a supervisor wants), and the pass body.
type colPass struct {
	name      string
	artifacts []string
	run       func() error
}

// runPasses drives a columnsort pass sequence with checkpoint/restart at
// every interior boundary. With a Checkpoint configured it first finds the
// highest pass every rank holds a valid checkpoint for — the vote is
// collective, so all ranks resume (or not) together — restores that pass's
// artifacts, and runs only the remainder; each completed interior pass is
// checkpointed before its closing barrier, so once any rank has entered
// pass i+1, every rank's pass-i checkpoint is committed.
func (pl Plan) runPasses(n *cluster.Node, barrier *cluster.Comm, res *oocsort.Result, passes []colPass) error {
	first := 0
	if pl.Checkpoint != nil {
		for i := len(passes) - 1; i >= 0 && first == 0; i-- {
			if passes[i].artifacts == nil {
				continue
			}
			if !oocsort.AgreeResume(barrier, pl.Checkpoint.Completed(n.Rank(), passes[i].name)) {
				continue
			}
			start := time.Now()
			if _, err := oocsort.RestorePass(pl.Checkpoint, n, passes[i].name); err != nil {
				return fmt.Errorf("colsort: restoring %s on node %d: %w", passes[i].name, n.Rank(), err)
			}
			for _, p := range passes[:i] {
				res.Passes = append(res.Passes, oocsort.PassTiming{Name: passName(p.name)})
				res.Resumed = append(res.Resumed, passName(p.name))
			}
			res.Passes = append(res.Passes,
				oocsort.PassTiming{Name: passName(passes[i].name), Duration: time.Since(start)})
			res.Resumed = append(res.Resumed, passName(passes[i].name))
			first = i + 1
		}
	}
	for _, pass := range passes[first:] {
		barrier.Barrier()
		start := time.Now()
		if err := pass.run(); err != nil {
			return fmt.Errorf("colsort: %s on node %d: %w", passName(pass.name), n.Rank(), err)
		}
		if pl.Checkpoint != nil && pass.artifacts != nil {
			if err := oocsort.SavePass(pl.Checkpoint, n, pass.name, nil, pass.artifacts...); err != nil {
				return fmt.Errorf("colsort: checkpointing %s on node %d: %w", passName(pass.name), n.Rank(), err)
			}
		}
		barrier.Barrier()
		res.Passes = append(res.Passes,
			oocsort.PassTiming{Name: passName(pass.name), Duration: time.Since(start)})
	}
	return nil
}

// passName strips the program prefix from a checkpoint key, recovering the
// short pass name Results have always reported ("pass1", not
// "csort.pass1").
func passName(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// runTransposePass runs one read-sort-communicate-permute-write pass. dest
// gives the destination column of the record at row i of the *sorted*
// column j; both the sending and the receiving side evaluate it, so no
// destination metadata travels with the data.
func (pl Plan) runTransposePass(n *cluster.Node, commName, inFile, outFile string, buffers int, dest func(j, i int) int) error {
	f := pl.Spec.Format
	size := f.Size
	R, S, P, rank := pl.R, pl.S, pl.P, n.Rank()
	colBytes := pl.ColumnBytes()
	segBytes := f.Bytes(R / P) // bytes each node exchanges with each peer per round
	chunkRecs := R * P / S     // records appended to each local column per round
	chunkBytes := f.Bytes(chunkRecs)
	comm := n.Comm(commName)

	nw := fg.NewNetwork(fmt.Sprintf("%s@%d", commName, rank))
	nw.OnFail(func(error) { n.Cluster().Abort() })
	finish := pl.Observe.Attach(nw)
	defer finish()
	defer pl.tuner.Tune(nw)()
	p := nw.AddPipeline("main",
		fg.Buffers(buffers), fg.BufferBytes(colBytes), fg.Rounds(pl.ColumnsPerNode()))

	p.AddStage("read", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.N = colBytes
		return n.Disk.ReadAt(inFile, b.Data[:colBytes], int64(b.Round)*int64(colBytes))
	})
	sortWorkers := pl.workersFn("sort")
	p.AddStage("sort", func(ctx *fg.Ctx, b *fg.Buffer) error {
		sortalgo.SortRecordsParallel(f, b.Bytes(), b.Aux(), sortWorkers())
		return nil
	})
	p.AddStage("communicate", func(ctx *fg.Ctx, b *fg.Buffer) error {
		j := pl.Column(rank, b.Round)
		parts := make([][]byte, P)
		for d := range parts {
			parts[d] = make([]byte, 0, segBytes)
		}
		for i := 0; i < R; i++ {
			d := dest(j, i) % P
			parts[d] = append(parts[d], f.At(b.Data, i)...)
		}
		recv := comm.Alltoall(parts)
		off := 0
		for src := 0; src < P; src++ {
			if len(recv[src]) != segBytes {
				return fmt.Errorf("unbalanced transpose: %d bytes from node %d, want %d",
					len(recv[src]), src, segBytes)
			}
			off += copy(b.Data[off:], recv[src])
		}
		b.N = off
		return nil
	})
	p.AddStage("permute", func(ctx *fg.Ctx, b *fg.Buffer) error {
		// Group the received records by destination column: replay each
		// source column's enumeration and pick out the records that came
		// here. Within a column, arrival order suffices — the next pass
		// sorts every column first thing.
		aux := b.Aux()
		fill := make([]int, S/P)
		for src := 0; src < P; src++ {
			jsrc := pl.Column(src, b.Round)
			seg := b.Data[src*segBytes : (src+1)*segBytes]
			next := 0
			for i := 0; i < R; i++ {
				dc := dest(jsrc, i)
				if dc%P != rank {
					continue
				}
				l := dc / P
				copy(aux[l*chunkBytes+fill[l]*size:], seg[next*size:(next+1)*size])
				fill[l]++
				next++
			}
		}
		b.SwapAux()
		b.N = colBytes
		return nil
	})
	p.AddStage("write", func(ctx *fg.Ctx, b *fg.Buffer) error {
		for l := 0; l < S/P; l++ {
			off := int64(l)*int64(colBytes) + int64(b.Round)*int64(chunkBytes)
			if err := n.Disk.WriteAt(outFile, b.Data[l*chunkBytes:(l+1)*chunkBytes], off); err != nil {
				return err
			}
		}
		return nil
	})
	return nw.Run()
}

// p3meta carries pass 3's per-column communication state on the buffer.
type p3meta struct {
	in   []byte // bottom half of column j-1, received during the shift
	keep []byte // column S-1 only: its bottom half, kept local as the
	// top of phantom shifted column S
}

// runMergePass runs pass 3: steps 5-8. For column j (sorted by the sort
// stage), the shift stage sends its bottom half to the owner of shifted
// column j+1 and receives the bottom half of column j-1; the merge stage
// merges the received half with its own top half, yielding shifted column
// j sorted (step 7); the send-top and assemble stages then undo the shift,
// completing output column j = bottom(shifted j) ++ top(shifted j+1); and
// the write stage writes the column, which is exactly one PDM block of the
// striped output owned by this node.
func (pl Plan) runMergePass(n *cluster.Node, inFile string, buffers int) error {
	f := pl.Spec.Format
	R, S, rank := pl.R, pl.S, n.Rank()
	colBytes := pl.ColumnBytes()
	halfBytes := f.Bytes(R / 2)
	shift := n.Comm("csort.shift")
	unshift := n.Comm("csort.unshift")
	out := pl.Spec.OutputName

	nw := fg.NewNetwork(fmt.Sprintf("csort.p3@%d", rank))
	nw.OnFail(func(error) { n.Cluster().Abort() })
	finish := pl.Observe.Attach(nw)
	defer finish()
	defer pl.tuner.Tune(nw)()
	p := nw.AddPipeline("main",
		fg.Buffers(buffers), fg.BufferBytes(colBytes), fg.Rounds(pl.ColumnsPerNode()))

	p.AddStage("read", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.N = colBytes
		return n.Disk.ReadAt(inFile, b.Data[:colBytes], int64(b.Round)*int64(colBytes))
	})
	sortWorkers := pl.workersFn("sort")
	p.AddStage("sort", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 5
		sortalgo.SortRecordsParallel(f, b.Bytes(), b.Aux(), sortWorkers())
		return nil
	})
	p.AddStage("shift", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 6
		j := pl.Column(rank, b.Round)
		m := &p3meta{}
		bottom := b.Data[halfBytes:colBytes]
		if j < S-1 {
			shift.Send(pl.Owner(j+1), int64(j+1), bottom)
		} else {
			// Shifted column S is bottom(col S-1) plus +inf padding; its
			// only consumer is this node's own assemble stage.
			m.keep = append([]byte(nil), bottom...)
		}
		if j > 0 {
			m.in = shift.Recv(pl.Owner(j-1), int64(j))
		}
		b.Meta = m
		return nil
	})
	mergeWorkers := pl.workersFn("merge")
	p.AddStage("merge", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 7
		m := b.Meta.(*p3meta)
		if m.in == nil {
			// Shifted column 0 is -inf padding plus top(col 0), already
			// sorted; its real records are the buffer's top half.
			b.N = halfBytes
			return nil
		}
		aux := b.Aux()
		sortalgo.MergeSortedParallel(f, m.in, b.Data[:halfBytes], aux[:colBytes], mergeWorkers())
		b.SwapAux()
		b.N = colBytes
		return nil
	})
	p.AddStage("send-top", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 8, outbound
		j := pl.Column(rank, b.Round)
		if j > 0 {
			unshift.Send(pl.Owner(j-1), int64(j-1), b.Data[:halfBytes])
		}
		return nil
	})
	p.AddStage("assemble", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 8, inbound
		j := pl.Column(rank, b.Round)
		m := b.Meta.(*p3meta)
		head := b.Data[halfBytes:colBytes] // bottom(shifted j)
		if j == 0 {
			head = b.Data[:halfBytes]
		}
		tail := m.keep // top(shifted j+1)
		if j < S-1 {
			tail = unshift.Recv(pl.Owner(j+1), int64(j))
		}
		if len(tail) != halfBytes {
			return fmt.Errorf("unshift for column %d delivered %d bytes, want %d", j, len(tail), halfBytes)
		}
		aux := b.Aux()
		copy(aux, head)
		copy(aux[halfBytes:], tail)
		b.SwapAux()
		b.N = colBytes
		return nil
	})
	p.AddStage("write", func(ctx *fg.Ctx, b *fg.Buffer) error {
		j := pl.Column(rank, b.Round)
		return n.Disk.WriteAt(out, b.Bytes(), int64(pl.LocalIndex(j))*int64(colBytes))
	})
	return nw.Run()
}
