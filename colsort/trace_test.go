package colsort

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/workload"
)

// TestTwoNodeMergedTraceLinksSendsToRecvs is the cross-node correlation
// acceptance test: a two-node csort run recorded with one tracer per node
// (as separate processes would record), merged with fg.MergeChromeTraces,
// must contain flow events linking every send to its matching receive by
// transfer ID — and vice versa, with no orphans.
func TestTwoNodeMergedTraceLinksSendsToRecvs(t *testing.T) {
	const p, cpn = 2, 1
	spec := oocsort.DefaultSpec()
	spec.Format = records.NewFormat(16)
	spec.TotalRecords = 1024
	spec.Distribution = workload.Uniform
	spec.Seed = 99
	spec.RecordsPerBlock = int(spec.TotalRecords) / (p * cpn)
	pl, err := NewPlan(spec, p, cpn)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.Config{Nodes: p})
	if _, err := oocsort.GenerateInput(c, spec); err != nil {
		t.Fatal(err)
	}

	// One tracer per node, fed by that node's comm observer only — the
	// same shape as per-process trace files on a real cluster.
	tracers := make([]*fg.Tracer, p)
	for i := 0; i < p; i++ {
		tr := fg.NewTracer(1 << 20)
		tracers[i] = tr
		n := c.Node(i)
		pipe := fmt.Sprintf("node%d", i)
		n.SetCommObserver(func(op string, peer, nbytes int, xfer int64, start, end time.Time) {
			s, e := tr.Span(start, end)
			tr.Record(fg.Event{
				Stage: "comm." + op, Pipeline: pipe, Kind: fg.EventComm,
				Round: -1, Bytes: int64(nbytes), Xfer: xfer, Start: s, End: e,
			})
		})
	}
	err = c.Run(func(node *cluster.Node) error {
		_, err := Run(node, pl)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p; i++ {
		c.Node(i).SetCommObserver(nil)
	}

	var files [p]bytes.Buffer
	for i, tr := range tracers {
		if err := tr.WriteChromeTrace(&files[i]); err != nil {
			t.Fatal(err)
		}
	}
	var merged bytes.Buffer
	if err := fg.MergeChromeTraces(&merged, &files[0], &files[1]); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			ID   string         `json:"id"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}

	processes := map[string]bool{}
	sends := map[string]int{} // flow ID -> pid of the sending process
	recvs := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				if n, ok := ev.Args["name"].(string); ok {
					processes[n] = true
				}
			}
		case "s":
			if ev.ID == "" {
				t.Fatal("send flow event has no ID")
			}
			if _, dup := sends[ev.ID]; dup {
				t.Errorf("transfer ID %s starts two flows", ev.ID)
			}
			sends[ev.ID] = ev.Pid
		case "f":
			if _, dup := recvs[ev.ID]; dup {
				t.Errorf("transfer ID %s finishes two flows", ev.ID)
			}
			recvs[ev.ID] = ev.Pid
		}
	}
	for _, want := range []string{"node 0", "node 1"} {
		if !processes[want] {
			t.Errorf("merged trace has no process %q (have %v)", want, processes)
		}
	}
	if len(sends) == 0 {
		t.Fatal("merged trace has no flow events; a two-node csort must communicate")
	}
	for id := range sends {
		if _, ok := recvs[id]; !ok {
			t.Errorf("send flow %s has no matching receive", id)
		}
	}
	for id := range recvs {
		if _, ok := sends[id]; !ok {
			t.Errorf("receive flow %s has no matching send", id)
		}
	}
	// Cross-node messages must link events in different merged processes.
	crossNode := 0
	for id, spid := range sends {
		if rpid, ok := recvs[id]; ok && rpid != spid {
			crossNode++
		}
	}
	if crossNode == 0 {
		t.Error("no flow crosses nodes; the merge did not correlate the two files")
	}
}
