package colsort

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/workload"
)

func TestCheckGeometry(t *testing.T) {
	if err := CheckGeometry(128, 8); err != nil {
		t.Errorf("128x8 rejected: %v", err)
	}
	for _, c := range []struct{ r, s int }{
		{0, 4}, {4, 0}, {127, 8}, {100, 8}, {64, 8}, {16, 4},
	} {
		if err := CheckGeometry(c.r, c.s); err == nil {
			t.Errorf("%dx%d accepted", c.r, c.s)
		}
	}
}

func TestSortInMemorySmall(t *testing.T) {
	f := records.NewFormat(16)
	const r, s = 128, 8
	for _, dist := range workload.Distributions {
		g := workload.NewGenerator(f, dist, 3, 0)
		data := make([]byte, f.Bytes(r*s))
		g.Fill(data)
		want := f.Fingerprint(data)
		if err := SortInMemory(f, data, r, s); err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		if !f.IsSorted(data) {
			t.Errorf("%v: output unsorted", dist)
		}
		if !f.Fingerprint(data).Equal(want) {
			t.Errorf("%v: output not a permutation of input", dist)
		}
	}
}

func TestSortInMemoryLarger(t *testing.T) {
	f := records.NewFormat(16)
	const r, s = 512, 16 // r = 2(s-1)^2 + slack
	g := workload.NewGenerator(f, workload.Uniform, 11, 0)
	data := make([]byte, f.Bytes(r*s))
	g.Fill(data)
	want := f.Fingerprint(data)
	if err := SortInMemory(f, data, r, s); err != nil {
		t.Fatal(err)
	}
	if !f.IsSorted(data) || !f.Fingerprint(data).Equal(want) {
		t.Error("512x16 columnsort failed")
	}
}

func TestSortInMemoryRejectsBadSize(t *testing.T) {
	f := records.NewFormat(16)
	if err := SortInMemory(f, make([]byte, f.Bytes(10)), 128, 8); err == nil {
		t.Error("mismatched matrix size accepted")
	}
}

func testSpec(n int64, blk int, dist workload.Distribution) oocsort.Spec {
	s := oocsort.DefaultSpec()
	s.TotalRecords = n
	s.RecordsPerBlock = blk
	s.Distribution = dist
	return s
}

func TestNewPlanValidation(t *testing.T) {
	spec := testSpec(1024, 128, workload.Uniform)
	pl, err := NewPlan(spec, 4, 2)
	if err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if pl.S != 8 || pl.R != 128 {
		t.Fatalf("plan geometry %dx%d", pl.R, pl.S)
	}
	if pl.ColumnsPerNode() != 2 || pl.ColumnBytes() != 128*16 {
		t.Error("plan helpers wrong")
	}

	// Wrong block size.
	if _, err := NewPlan(testSpec(1024, 64, workload.Uniform), 4, 2); err == nil {
		t.Error("block != column accepted")
	}
	// Not tall enough: r=32, s=8 fails 2(s-1)^2.
	if _, err := NewPlan(testSpec(256, 32, workload.Uniform), 4, 2); err == nil {
		t.Error("short matrix accepted")
	}
	// Zero columns per node.
	if _, err := NewPlan(spec, 4, 0); err == nil {
		t.Error("columnsPerNode=0 accepted")
	}
}

func TestPlanOwnershipStriped(t *testing.T) {
	spec := testSpec(1024, 128, workload.Uniform)
	pl, err := NewPlan(spec, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < pl.S; j++ {
		if pl.Owner(j) != j%4 {
			t.Errorf("column %d owned by %d", j, pl.Owner(j))
		}
	}
	for rank := 0; rank < 4; rank++ {
		for round := 0; round < 2; round++ {
			j := pl.Column(rank, round)
			if pl.Owner(j) != rank || pl.LocalIndex(j) != round {
				t.Errorf("column %d: owner %d local %d", j, pl.Owner(j), pl.LocalIndex(j))
			}
		}
	}
}

// runCsort generates input, runs csort, and verifies the striped output.
func runCsort(t *testing.T, p, cpn int, n int64, recSize int, dist workload.Distribution) oocsort.Result {
	t.Helper()
	spec := oocsort.DefaultSpec()
	spec.Format = records.NewFormat(recSize)
	spec.TotalRecords = n
	spec.Distribution = dist
	spec.Seed = 42
	spec.RecordsPerBlock = int(n) / (p * cpn)
	pl, err := NewPlan(spec, p, cpn)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.Config{Nodes: p})
	fp, err := oocsort.GenerateInput(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]oocsort.Result, p)
	err = c.Run(func(node *cluster.Node) error {
		res, err := Run(node, pl)
		results[node.Rank()] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Output(c, spec, fp); err != nil {
		t.Fatal(err)
	}
	return results[0]
}

func TestCsortSortsAllDistributions(t *testing.T) {
	for _, dist := range workload.Distributions {
		dist := dist
		t.Run(dist.String(), func(t *testing.T) {
			runCsort(t, 4, 2, 1024, 16, dist)
		})
	}
}

func TestCsortSkewDistributions(t *testing.T) {
	for _, dist := range workload.SkewDistributions {
		runCsort(t, 4, 2, 1024, 16, dist)
	}
}

func TestCsortLargeRecords(t *testing.T) {
	runCsort(t, 4, 2, 1024, 64, workload.Uniform)
}

func TestCsortSingleNode(t *testing.T) {
	// P=1, one column: the degenerate S=1 case exercises the phantom
	// shifted column S.
	runCsort(t, 1, 1, 512, 16, workload.Uniform)
}

func TestCsortSingleColumnPerNode(t *testing.T) {
	runCsort(t, 4, 1, 512, 16, workload.StdNormal)
}

func TestCsortManyColumns(t *testing.T) {
	// 16 columns across 4 nodes; r = 4096/16 = 256 < 2*15^2 = 450 would
	// fail, so use taller: N = 16384 -> r = 1024.
	runCsort(t, 4, 4, 16384, 16, workload.Uniform)
}

func TestCsortEightNodes(t *testing.T) {
	runCsort(t, 8, 2, 1<<14, 16, workload.Poisson)
}

func TestCsortReportsThreePasses(t *testing.T) {
	res := runCsort(t, 4, 2, 1024, 16, workload.Uniform)
	if len(res.Passes) != 3 {
		t.Fatalf("csort reports %d passes, want 3", len(res.Passes))
	}
	names := []string{"pass1", "pass2", "pass3"}
	for i, p := range res.Passes {
		if p.Name != names[i] {
			t.Errorf("pass %d named %q", i, p.Name)
		}
	}
	if res.Total() <= 0 {
		t.Error("csort total time not positive")
	}
}

func TestCsortIOVolume(t *testing.T) {
	// Each pass reads and writes the full dataset once: 3 passes = 6x the
	// data volume, the basis of the paper's "50% more I/O than dsort".
	spec := oocsort.DefaultSpec()
	spec.TotalRecords = 1024
	spec.RecordsPerBlock = 128
	pl, err := NewPlan(spec, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.Config{Nodes: 4})
	if _, err := oocsort.GenerateInput(c, spec); err != nil {
		t.Fatal(err)
	}
	oocsort.CollectDiskStats(c) // reset
	err = c.Run(func(node *cluster.Node) error {
		_, err := Run(node, pl)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	io := oocsort.CollectDiskStats(c)
	want := 6 * spec.TotalBytes()
	if io.TotalBytes() != want {
		t.Errorf("csort moved %d disk bytes, want exactly %d (6x data)", io.TotalBytes(), want)
	}
}

func TestCsortDeterministicOutput(t *testing.T) {
	// Two runs over the same input produce byte-identical striped output.
	spec := oocsort.DefaultSpec()
	spec.TotalRecords = 1024
	spec.RecordsPerBlock = 128
	spec.Distribution = workload.Poisson
	pl, err := NewPlan(spec, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var outs [2][]byte
	for trial := 0; trial < 2; trial++ {
		c := cluster.New(cluster.Config{Nodes: 4})
		if _, err := oocsort.GenerateInput(c, spec); err != nil {
			t.Fatal(err)
		}
		err = c.Run(func(node *cluster.Node) error {
			_, err := Run(node, pl)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		outs[trial], err = check.ReadOutput(c, spec)
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(outs[0]) != string(outs[1]) {
		t.Error("csort output differs between identical runs")
	}
}

func TestCsortWithRandomizedGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		p := []int{2, 4}[rng.Intn(2)]
		cpn := 1 + rng.Intn(2)
		s := p * cpn
		// Choose r as a multiple of s that satisfies tallness.
		minR := 2 * (s - 1) * (s - 1)
		r := ((minR+s)/s + 1 + rng.Intn(3)) * s
		if r%2 == 1 {
			r *= 2
		}
		runCsort(t, p, cpn, int64(r*s), 16, workload.Uniform)
	}
}

func TestCsortSurfacesDiskFailure(t *testing.T) {
	spec := testSpec(1024, 128, workload.Uniform)
	pl, err := NewPlan(spec, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.Config{Nodes: 4})
	if _, err := oocsort.GenerateInput(c, spec); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Disks() {
		d.SetFault(func(op, name string, off int64) error {
			if op == "read" && name == spec.InputName {
				return fmt.Errorf("injected disk failure")
			}
			return nil
		})
	}
	done := make(chan error, 1)
	go func() {
		done <- c.Run(func(node *cluster.Node) error {
			_, err := Run(node, pl)
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("csort succeeded despite failing disks")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("csort hung on a disk failure")
	}
}

// runCsort4 mirrors runCsort for the four-pass implementation.
func runCsort4(t *testing.T, p, cpn int, n int64, recSize int, dist workload.Distribution) oocsort.Result {
	t.Helper()
	spec := oocsort.DefaultSpec()
	spec.Format = records.NewFormat(recSize)
	spec.TotalRecords = n
	spec.Distribution = dist
	spec.Seed = 42
	spec.RecordsPerBlock = int(n) / (p * cpn)
	pl, err := NewPlan(spec, p, cpn)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.Config{Nodes: p})
	fp, err := oocsort.GenerateInput(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]oocsort.Result, p)
	err = c.Run(func(node *cluster.Node) error {
		res, err := RunFourPass(node, pl)
		results[node.Rank()] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Output(c, spec, fp); err != nil {
		t.Fatal(err)
	}
	return results[0]
}

func TestCsort4SortsAllDistributions(t *testing.T) {
	for _, dist := range workload.Distributions {
		dist := dist
		t.Run(dist.String(), func(t *testing.T) {
			runCsort4(t, 4, 2, 1024, 16, dist)
		})
	}
}

func TestCsort4SingleNode(t *testing.T) {
	runCsort4(t, 1, 1, 512, 16, workload.Uniform)
}

func TestCsort4SingleColumnPerNode(t *testing.T) {
	runCsort4(t, 4, 1, 512, 16, workload.Poisson)
}

func TestCsort4LargeRecords(t *testing.T) {
	runCsort4(t, 4, 2, 1024, 64, workload.StdNormal)
}

func TestCsort4EightNodes(t *testing.T) {
	runCsort4(t, 8, 2, 1<<14, 16, workload.Uniform)
}

func TestCsort4ReportsFourPasses(t *testing.T) {
	res := runCsort4(t, 4, 2, 1024, 16, workload.Uniform)
	if res.Program != "csort4" || len(res.Passes) != 4 {
		t.Fatalf("four-pass result: %+v", res)
	}
}

func TestCsort4IOVolumeExceedsThreePass(t *testing.T) {
	// Four passes move ~8x the data (the phantom half-column adds a little
	// and the padding hole saves a little); three passes move exactly 6x.
	spec := oocsort.DefaultSpec()
	spec.TotalRecords = 4096
	spec.RecordsPerBlock = 512
	pl, err := NewPlan(spec, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(four bool) int64 {
		c := cluster.New(cluster.Config{Nodes: 4})
		if _, err := oocsort.GenerateInput(c, spec); err != nil {
			t.Fatal(err)
		}
		oocsort.CollectDiskStats(c)
		err := c.Run(func(node *cluster.Node) error {
			if four {
				_, err := RunFourPass(node, pl)
				return err
			}
			_, err := Run(node, pl)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return oocsort.CollectDiskStats(c).TotalBytes()
	}
	three, four := run(false), run(true)
	ratio := float64(four) / float64(three)
	if ratio < 1.30 || ratio > 1.40 {
		t.Errorf("four-pass/three-pass I/O = %.3f, want ~4/3", ratio)
	}
}
