package colsort

import (
	"fmt"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/sortalgo"
	"github.com/fg-go/fg/oocsort"
)

// The four-pass out-of-core columnsort (Figure 3 of the paper): each pair
// of consecutive columnsort steps becomes one read-...-write pass. The
// paper introduces this "relatively simple" implementation first and then
// observes that the communicate, permute, and write stages of the third
// pass together with the read stage of the fourth "just shift each column
// down by the height of half a column", coalescing them into the three-pass
// csort. Keeping the four-pass program lets the harness quantify exactly
// what that observation bought: one full read+write sweep over the data.
//
// Pass 1: steps 1-2 (sort; transpose and reshape).
// Pass 2: steps 3-4 (sort; the inverse permutation).
// Pass 3: steps 5-6 (sort; shift down half a column), writing the shifted
// matrix — including the phantom column S fed by column S-1's bottom half.
// Pass 4: steps 7-8 (sort the shifted columns; shift back up), writing the
// striped output.

const (
	tempFile4p1 = "csort4.t1"
	tempFile4p2 = "csort4.t2"
	tempFile4p3 = "csort4.t3"
)

// RunFourPass executes the four-pass columnsort on one node; call it from
// every node inside cluster.Run.
func RunFourPass(n *cluster.Node, pl Plan) (oocsort.Result, error) {
	return RunFourPassBuffers(n, pl, DefaultPipelineBuffers)
}

// RunFourPassBuffers is RunFourPass with an explicit buffer-pool size.
func RunFourPassBuffers(n *cluster.Node, pl Plan, buffers int) (oocsort.Result, error) {
	res := oocsort.Result{Program: "csort4"}
	barrier := n.Comm("csort4.barrier")

	passes := []colPass{
		{"csort4.pass1", []string{tempFile4p1}, func() error {
			return pl.runTransposePass(n, "csort4.p1", pl.Spec.InputName, tempFile4p1, buffers,
				func(j, i int) int { return (j*pl.R + i) % pl.S })
		}},
		{"csort4.pass2", []string{tempFile4p2}, func() error {
			return pl.runTransposePass(n, "csort4.p2", tempFile4p1, tempFile4p2, buffers,
				func(j, i int) int { return (i*pl.S + j) / pl.R })
		}},
		{"csort4.pass3", []string{tempFile4p3}, func() error { return pl.runShiftPass(n, tempFile4p2, tempFile4p3, buffers) }},
		{"csort4.pass4", nil, func() error { return pl.runUnshiftPass(n, tempFile4p3, buffers) }},
	}
	if err := pl.runPasses(n, barrier, &res, passes); err != nil {
		return res, err
	}
	n.Disk.Remove(tempFile4p1)
	n.Disk.Remove(tempFile4p2)
	n.Disk.Remove(tempFile4p3)
	return res, nil
}

// runShiftPass performs steps 5-6: sort each column, then write the shifted
// matrix. Node x's output file holds its shifted columns in fixed slots of
// one column each: slot l = shifted column l*P + rank = [bottom(col j-1) |
// top(col j)]. Shifted column 0's first half is -inf padding, left as an
// unwritten hole; node P-1 appends the phantom shifted column S's real
// content (bottom of column S-1) after its regular slots.
func (pl Plan) runShiftPass(n *cluster.Node, inFile, outFile string, buffers int) error {
	f := pl.Spec.Format
	R, S, rank := pl.R, pl.S, n.Rank()
	colBytes := pl.ColumnBytes()
	halfBytes := f.Bytes(R / 2)
	shift := n.Comm("csort4.shift")

	nw := fg.NewNetwork(fmt.Sprintf("csort4.p3@%d", rank))
	nw.OnFail(func(error) { n.Cluster().Abort() })
	finish := pl.Observe.Attach(nw)
	defer finish()
	p := nw.AddPipeline("main",
		fg.Buffers(buffers), fg.BufferBytes(colBytes), fg.Rounds(pl.ColumnsPerNode()))

	p.AddStage("read", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.N = colBytes
		return n.Disk.ReadAt(inFile, b.Data[:colBytes], int64(b.Round)*int64(colBytes))
	})
	p.AddStage("sort", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 5
		sortalgo.SortRecordsParallel(f, b.Bytes(), b.Aux(), pl.Parallelism)
		return nil
	})
	p.AddStage("communicate", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 6
		j := pl.Column(rank, b.Round)
		bottom := b.Data[halfBytes:colBytes]
		if j < S-1 {
			shift.Send(pl.Owner(j+1), int64(j+1), bottom)
			b.Meta = []byte(nil)
		} else {
			b.Meta = append([]byte(nil), bottom...) // phantom column S
		}
		if j > 0 {
			in := shift.Recv(pl.Owner(j-1), int64(j))
			if len(in) != halfBytes {
				return fmt.Errorf("shift for column %d delivered %d bytes, want %d", j, len(in), halfBytes)
			}
			// Place the received bottom half of column j-1 above this
			// column's top half: the buffer becomes shifted column j.
			copy(b.Aux(), in)
			copy(b.Aux()[halfBytes:], b.Data[:halfBytes])
			b.SwapAux()
		} else {
			// Shifted column 0: -inf padding above top(col 0); keep only
			// the real half, to be written into the slot's second half.
			copy(b.Aux(), b.Data[:halfBytes])
			b.SwapAux()
			b.N = halfBytes
		}
		return nil
	})
	p.AddStage("write", func(ctx *fg.Ctx, b *fg.Buffer) error {
		j := pl.Column(rank, b.Round)
		slot := int64(b.Round) * int64(colBytes)
		off := slot
		if j == 0 {
			off += int64(halfBytes) // leave the padding hole
		}
		if err := n.Disk.WriteAt(outFile, b.Bytes(), off); err != nil {
			return err
		}
		if keep, ok := b.Meta.([]byte); ok && len(keep) > 0 {
			// Phantom shifted column S, appended after the regular slots.
			extra := int64(pl.ColumnsPerNode()) * int64(colBytes)
			return n.Disk.WriteAt(outFile, keep, extra)
		}
		return nil
	})
	return nw.Run()
}

// runUnshiftPass performs steps 7-8: sort each shifted column, then shift
// back up, assembling final column j = bottom(shifted j) ++ top(shifted
// j+1) and writing it as this node's PDM block of the striped output.
func (pl Plan) runUnshiftPass(n *cluster.Node, inFile string, buffers int) error {
	f := pl.Spec.Format
	R, S, rank := pl.R, pl.S, n.Rank()
	colBytes := pl.ColumnBytes()
	halfBytes := f.Bytes(R / 2)
	unshift := n.Comm("csort4.unshift")
	out := pl.Spec.OutputName

	nw := fg.NewNetwork(fmt.Sprintf("csort4.p4@%d", rank))
	nw.OnFail(func(error) { n.Cluster().Abort() })
	finish := pl.Observe.Attach(nw)
	defer finish()
	p := nw.AddPipeline("main",
		fg.Buffers(buffers), fg.BufferBytes(colBytes), fg.Rounds(pl.ColumnsPerNode()))

	p.AddStage("read", func(ctx *fg.Ctx, b *fg.Buffer) error {
		j := pl.Column(rank, b.Round)
		slot := int64(b.Round) * int64(colBytes)
		if j == 0 {
			// Only the real half exists; the padding hole stays on disk.
			b.N = halfBytes
			return n.Disk.ReadAt(inFile, b.Data[:halfBytes], slot+int64(halfBytes))
		}
		b.N = colBytes
		return n.Disk.ReadAt(inFile, b.Data[:colBytes], slot)
	})
	p.AddStage("sort", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 7
		sortalgo.SortRecordsParallel(f, b.Bytes(), b.Aux(), pl.Parallelism)
		return nil
	})
	p.AddStage("send-top", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 8, outbound
		j := pl.Column(rank, b.Round)
		if j > 0 {
			unshift.Send(pl.Owner(j-1), int64(j-1), b.Data[:halfBytes])
		}
		return nil
	})
	p.AddStage("assemble", func(ctx *fg.Ctx, b *fg.Buffer) error { // step 8, inbound
		j := pl.Column(rank, b.Round)
		head := b.Data[halfBytes:colBytes] // bottom(shifted j)
		if j == 0 {
			head = b.Data[:halfBytes]
		}
		var tail []byte
		if j < S-1 {
			tail = unshift.Recv(pl.Owner(j+1), int64(j))
		} else {
			// top(shifted S) = bottom(col S-1), stored after the regular
			// slots by pass 3 — and already sorted.
			tail = make([]byte, halfBytes)
			extra := int64(pl.ColumnsPerNode()) * int64(colBytes)
			if err := n.Disk.ReadAt(inFile, tail, extra); err != nil {
				return err
			}
		}
		if len(tail) != halfBytes {
			return fmt.Errorf("unshift for column %d delivered %d bytes, want %d", j, len(tail), halfBytes)
		}
		aux := b.Aux()
		copy(aux, head)
		copy(aux[halfBytes:], tail)
		b.SwapAux()
		b.N = colBytes
		return nil
	})
	p.AddStage("write", func(ctx *fg.Ctx, b *fg.Buffer) error {
		j := pl.Column(rank, b.Round)
		return n.Disk.WriteAt(out, b.Bytes(), int64(pl.LocalIndex(j))*int64(colBytes))
	})
	return nw.Run()
}
