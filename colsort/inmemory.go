// Package colsort implements Leighton's columnsort and the three-pass
// out-of-core columnsort program ("csort") of Chaudhry and Cormen, built on
// single linear FG pipelines — the baseline the paper compares dsort
// against (Section III).
//
// Columnsort arranges N records as an r x s matrix ("tall and thin":
// r >= 2(s-1)^2) stored in column-major order and sorts them into
// column-major order in eight steps. Odd steps sort every column; even
// steps apply fixed permutations: step 2 transposes and reshapes, step 4
// inverts it, steps 6 and 8 shift the matrix down and up by half a column.
package colsort

import (
	"fmt"

	"github.com/fg-go/fg/internal/sortalgo"
	"github.com/fg-go/fg/records"
)

// CheckGeometry verifies Leighton's requirements for an r x s columnsort:
// r divisible by s, r even, and r >= 2(s-1)^2.
func CheckGeometry(r, s int) error {
	if r <= 0 || s <= 0 {
		return fmt.Errorf("colsort: non-positive geometry %dx%d", r, s)
	}
	if r%2 != 0 {
		return fmt.Errorf("colsort: r=%d must be even for the half-column shift", r)
	}
	if r%s != 0 {
		return fmt.Errorf("colsort: r=%d must be divisible by s=%d", r, s)
	}
	if r < 2*(s-1)*(s-1) {
		return fmt.Errorf("colsort: r=%d < 2(s-1)^2=%d; the matrix is not tall enough", r, 2*(s-1)*(s-1))
	}
	return nil
}

// SortInMemory sorts data — interpreted as an r x s matrix of records in
// column-major order — using the eight steps of columnsort executed in
// memory. It exists as the executable specification that the out-of-core
// program is tested against, and as a readable statement of the algorithm.
func SortInMemory(f records.Format, data []byte, r, s int) error {
	if err := CheckGeometry(r, s); err != nil {
		return err
	}
	if f.Count(len(data)) != r*s {
		return fmt.Errorf("colsort: %d records do not fill a %dx%d matrix", f.Count(len(data)), r, s)
	}
	scratch := make([]byte, len(data))
	sortCols := func() {
		for j := 0; j < s; j++ {
			col := data[f.Bytes(j*r):f.Bytes((j+1)*r)]
			sortalgo.SortRecords(f, col, scratch)
		}
	}

	// Steps 1-2: sort columns, then transpose and reshape — the record at
	// column-major rank m moves to row-major rank m, i.e. to column-major
	// rank (m mod s)*r + m div s.
	sortCols()
	permute(f, data, scratch, r*s, func(m int) int { return (m%s)*r + m/s })

	// Steps 3-4: sort columns, then reshape and transpose — the inverse of
	// step 2. The record at row-major rank q, which sits at column-major
	// rank (q mod s)*r + q div s, moves to column-major rank q; implement
	// it as a gather.
	sortCols()
	gather(f, data, scratch, r*s, func(q int) int { return (q%s)*r + q/s })

	// Steps 5-8: sort columns; shift down r/2; sort; shift back. On the
	// column-major linear array the three last steps together equal sorting
	// every window of r records that straddles a column boundary.
	sortCols()
	half := r / 2
	for j := 1; j < s; j++ {
		window := data[f.Bytes(j*r-half):f.Bytes(j*r+half)]
		sortalgo.SortRecords(f, window, scratch)
	}
	return nil
}

// permute moves the record at rank m to rank dest(m), via scratch.
func permute(f records.Format, data, scratch []byte, n int, dest func(int) int) {
	size := f.Size
	for m := 0; m < n; m++ {
		copy(scratch[dest(m)*size:], data[m*size:(m+1)*size])
	}
	copy(data, scratch[:n*size])
}

// gather fills rank q of data from rank src(q), via scratch.
func gather(f records.Format, data, scratch []byte, n int, src func(int) int) {
	size := f.Size
	for q := 0; q < n; q++ {
		copy(scratch[q*size:], data[src(q)*size:src(q)*size+size])
	}
	copy(data, scratch[:n*size])
}
