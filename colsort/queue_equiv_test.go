package colsort

import (
	"fmt"
	"runtime"
	"testing"
	"testing/quick"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/workload"
)

// csortOutput runs csort on a fresh simulated cluster and returns the
// reassembled striped output. Columnsort is oblivious — its comparison
// pattern is fixed by the geometry, not the data — so the output bytes are
// deterministic and comparable across builds.
func csortOutput(t *testing.T, spec oocsort.Spec, p, cpn int) []byte {
	t.Helper()
	pl, err := NewPlan(spec, p, cpn)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.Config{Nodes: p})
	if _, err := oocsort.GenerateInput(c, spec); err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(node *cluster.Node) error {
		_, err := Run(node, pl)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := check.ReadOutput(c, spec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCsortRingMatchesChannelBytes is the ring-vs-channel equivalence
// property for csort: for random workload seeds and at GOMAXPROCS 1, 2,
// and NumCPU, a build on lock-free SPSC rings must produce byte-identical
// output to a build forced onto channel queues.
func TestCsortRingMatchesChannelBytes(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, procs := range gomaxprocsLevels() {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prevProcs)
			property := func(seed uint8) bool {
				spec := oocsort.DefaultSpec()
				spec.TotalRecords = 1024
				spec.RecordsPerBlock = 128
				spec.Distribution = workload.Poisson
				spec.Seed = int64(seed)
				ringOut := csortOutput(t, spec, 4, 2)
				prev := fg.UseChannelQueues(true)
				chanOut := csortOutput(t, spec, 4, 2)
				fg.UseChannelQueues(prev)
				if string(ringOut) != string(chanOut) {
					t.Logf("seed %d: output differs between ring and channel builds", seed)
					return false
				}
				return true
			}
			if err := quick.Check(property, &quick.Config{MaxCount: 2}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// gomaxprocsLevels returns {1, 2, NumCPU} without duplicates.
func gomaxprocsLevels() []int {
	levels := []int{1}
	for _, n := range []int{2, runtime.NumCPU()} {
		if n > levels[len(levels)-1] {
			levels = append(levels, n)
		}
	}
	return levels
}
