package colsort

import (
	"fmt"

	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/oocsort"
)

// A Plan fixes the columnsort geometry for a job on a P-node cluster: the
// N records form an R x S matrix in column-major order, with column j owned
// by node j mod P (columns are striped across the nodes, so the cross-node
// dependencies of the half-column shift ripple by a single round instead of
// serializing the cluster).
type Plan struct {
	Spec oocsort.Spec
	P    int // nodes
	S    int // total columns, a multiple of P
	R    int // rows (records per column)

	// Parallelism bounds the intra-buffer parallelism of the compute
	// stages: every pass's column sort and pass 3's sorted-halves merge
	// use the multicore kernels in internal/sortalgo with up to this many
	// workers from the process-wide shared pool. 0 (the default) means
	// GOMAXPROCS; 1 forces the serial kernels. See DESIGN.md, "Multicore
	// kernels".
	Parallelism int

	// AutoTune, when enabled, attaches a run-time self-tuner to every
	// network csort builds: it samples each pass's bottleneck and pool
	// occupancy and adjusts the sort and merge stages' worker counts and
	// the pipeline's circulating-buffer count within the configured bounds.
	// Parallelism becomes the initial worker count rather than a fixed
	// one. The zero value disables tuning.
	AutoTune fg.AutoTune

	// Observe, if non-nil, is attached to every network csort builds (one
	// per pass per node), putting all of them on one trace timeline and
	// metrics registry. Nil observes nothing and costs nothing.
	Observe *fg.Observe

	// Checkpoint, if non-nil, records each interior pass's output matrix
	// after the pass completes, and lets a restarted job resume at the
	// highest pass boundary every rank holds a valid checkpoint for
	// (decided collectively with oocsort.AgreeResume). The final pass,
	// which writes the striped output, is never checkpointed. Nil disables
	// checkpointing.
	Checkpoint fg.Checkpoint

	// tuner is created once per run from AutoTune and travels with the
	// Plan's value copies into the passes; nil when tuning is disabled.
	tuner *fg.AutoTuner
}

// workersFn returns the per-round worker-count source for the named compute
// stage: the tuner's knob (one atomic load per round) when AutoTune is
// enabled, else the static Parallelism.
func (pl Plan) workersFn(stage string) func() int {
	if k := pl.tuner.Knob(stage, pl.Parallelism); k != nil {
		return k.Workers
	}
	p := pl.Parallelism
	return func() int { return p }
}

// NewPlan validates a job against the columnsort constraints and returns
// its geometry. columnsPerNode sets S = columnsPerNode * P, which is also
// the number of pipeline rounds each pass runs per node.
func NewPlan(spec oocsort.Spec, p, columnsPerNode int) (Plan, error) {
	if err := spec.Validate(p); err != nil {
		return Plan{}, err
	}
	if columnsPerNode < 1 {
		return Plan{}, fmt.Errorf("colsort: need at least one column per node, got %d", columnsPerNode)
	}
	s := columnsPerNode * p
	if spec.TotalRecords%int64(s) != 0 {
		return Plan{}, fmt.Errorf("colsort: %d records do not divide into %d columns", spec.TotalRecords, s)
	}
	r := int(spec.TotalRecords / int64(s))
	if err := CheckGeometry(r, s); err != nil {
		return Plan{}, err
	}
	if r%s != 0 {
		return Plan{}, fmt.Errorf("colsort: r=%d must be divisible by s=%d for the transpose chunks", r, s)
	}
	if spec.RecordsPerBlock != r {
		return Plan{}, fmt.Errorf("colsort: csort stripes its output in whole columns; RecordsPerBlock must be %d (one column), got %d",
			r, spec.RecordsPerBlock)
	}
	return Plan{Spec: spec, P: p, S: s, R: r}, nil
}

// ColumnsPerNode returns S/P, the per-node round count of each pass.
func (pl Plan) ColumnsPerNode() int { return pl.S / pl.P }

// ColumnBytes returns the byte size of one column.
func (pl Plan) ColumnBytes() int { return pl.Spec.Format.Bytes(pl.R) }

// Owner returns the node owning column j.
func (pl Plan) Owner(j int) int { return j % pl.P }

// Column returns the global column a node processes in the given round.
func (pl Plan) Column(rank, round int) int { return round*pl.P + rank }

// LocalIndex returns where column j sits among its owner's columns.
func (pl Plan) LocalIndex(j int) int { return j / pl.P }
