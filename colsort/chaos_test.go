package colsort

import (
	"errors"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/internal/faultinject"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/workload"
)

// TestChaosCsortCommFaultFailsCleanly injects a single communication fault
// into node 0. Sends are not idempotent, so csort cannot retry them: the
// run must fail cleanly — the injected fault surfacing through the comm
// panic, the fg panic guard, and the cluster abort — without hanging the
// other nodes' blocked receives or leaking goroutines.
func TestChaosCsortCommFaultFailsCleanly(t *testing.T) {
	check.NoLeakedGoroutines(t)
	const p, cpn = 4, 2
	spec := oocsort.DefaultSpec()
	spec.Format = records.NewFormat(16)
	spec.TotalRecords = 1024
	spec.Distribution = workload.Uniform
	spec.Seed = 42
	spec.RecordsPerBlock = int(spec.TotalRecords) / (p * cpn)
	pl, err := NewPlan(spec, p, cpn)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.Config{Nodes: p})
	if _, err := oocsort.GenerateInput(c, spec); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{FailN: 1, Seed: 5})
	c.Node(0).SetFault(inj.CommHook("send"))

	start := time.Now()
	err = c.Run(func(node *cluster.Node) error {
		_, err := Run(node, pl)
		return err
	})
	if err == nil {
		t.Fatal("csort succeeded despite an injected communication fault")
	}
	var f *faultinject.Fault
	if !errors.As(err, &f) {
		t.Errorf("error does not carry the injected fault: %v", err)
	}
	var ce *cluster.CommError
	if !errors.As(err, &ce) {
		t.Errorf("error does not carry the CommError context: %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("failure took %v to surface", d)
	}
}
