// Outofcoretranspose: FG beyond sorting (paper, Section VIII). Transposes
// an out-of-core matrix distributed across a simulated cluster with a
// read -> permute -> communicate -> write pipeline per node — the same
// balanced, predetermined structure as a csort pass — and verifies every
// element landed transposed.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/pdm"
	"github.com/fg-go/fg/transpose"
)

func main() {
	var (
		nodes = flag.Int("nodes", 4, "cluster size P")
		rows  = flag.Int("rows", 1024, "matrix rows")
		cols  = flag.Int("cols", 512, "matrix columns")
		band  = flag.Int("band", 64, "rows per pipeline round")
	)
	flag.Parse()

	s := transpose.DefaultSpec()
	s.Rows, s.Cols, s.BandRows = *rows, *cols, *band

	c := cluster.New(cluster.Config{
		Nodes:   *nodes,
		Disk:    pdm.DiskModel{SeekLatency: 200 * time.Microsecond, BytesPerSecond: 20e6},
		Network: cluster.NetworkModel{Latency: 30 * time.Microsecond, BytesPerSecond: 100e6},
	})

	fill := func(row, col int) uint64 { return uint64(row)<<20 | uint64(col) }
	if err := transpose.Generate(c, s, fill); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	err := c.Run(func(n *cluster.Node) error { return transpose.Run(n, s) })
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if err := transpose.Verify(c, s, fill); err != nil {
		log.Fatal(err)
	}
	var io int64
	for _, d := range c.Disks() {
		io += d.Stats().TotalBytes()
	}
	fmt.Printf("transposed a %dx%d matrix (%d KiB) on %d nodes in %v\n",
		s.Rows, s.Cols, s.Rows*s.Cols*s.Format.Size>>10, *nodes, elapsed.Round(time.Millisecond))
	fmt.Printf("disk traffic %d bytes (2.0x the data: one read, one write per element)\n", io)
	fmt.Println("output verified: every element (r,c) now lives at (c,r)")
}
