// Mergestreams: multiple intersecting pipelines and virtual stages, the
// structure of Figure 5.
//
// Many small sorted runs live on a simulated disk. One vertical pipeline
// per run reads it in small buffers; all vertical pipelines intersect at a
// single merge stage, which drains them into large buffers of a horizontal
// pipeline whose write stage stores the merged output. The vertical
// pipelines are members of a virtual group: however many runs there are,
// their read stages share one goroutine and one queue — FG's answer to
// "hundreds of pipelines would need thousands of threads".
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/mergetree"
	"github.com/fg-go/fg/pdm"
)

func main() {
	var (
		runs    = flag.Int("runs", 100, "number of sorted runs to merge")
		perRun  = flag.Int("per-run", 4096, "values per run")
		vBufVal = flag.Int("vbuf", 256, "values per vertical buffer (small)")
		hBufVal = flag.Int("hbuf", 8192, "values per horizontal buffer (large)")
	)
	flag.Parse()

	disk := pdm.NewDisk(pdm.DiskModel{SeekLatency: 100 * time.Microsecond, BytesPerSecond: 200e6})

	// Lay down k sorted runs: run i holds i, i+k, i+2k, ... so the merged
	// output is exactly 0..k*perRun-1 and trivially checkable.
	k := *runs
	buf := make([]byte, 8**perRun)
	for i := 0; i < k; i++ {
		for j := 0; j < *perRun; j++ {
			binary.BigEndian.PutUint64(buf[8*j:], uint64(j*k+i))
		}
		disk.Import(fmt.Sprintf("run.%d", i), buf)
	}

	before := runtime.NumGoroutine()
	nw := fg.NewNetwork("mergestreams")

	vg := nw.AddVirtualGroup("verticals")
	verticals := make([]*fg.Pipeline, k)
	vBufBytes := 8 * *vBufVal
	for i := 0; i < k; i++ {
		i := i
		rounds := (*perRun + *vBufVal - 1) / *vBufVal
		verticals[i] = vg.AddPipeline(fmt.Sprintf("run%d", i),
			fg.Buffers(2), fg.BufferBytes(vBufBytes), fg.Rounds(rounds))
		verticals[i].AddStage("read", func(ctx *fg.Ctx, b *fg.Buffer) error {
			off := b.Round * vBufBytes
			cnt := vBufBytes
			if off+cnt > 8**perRun {
				cnt = 8**perRun - off
			}
			b.N = cnt
			return disk.ReadAt(fmt.Sprintf("run.%d", i), b.Data[:cnt], int64(off))
		})
	}

	horiz := nw.AddPipeline("horizontal",
		fg.Buffers(3), fg.BufferBytes(8**hBufVal), fg.Unlimited())

	merge := fg.NewStage("merge", func(ctx *fg.Ctx) error {
		heads := make([]*fg.Buffer, k)
		idx := make([]int, k)
		tree := mergetree.New(k)
		advance := func(i int) {
			if heads[i] != nil {
				ctx.Convey(heads[i])
			}
			if b, ok := ctx.AcceptFrom(verticals[i]); ok {
				heads[i], idx[i] = b, 0
				tree.Set(i, binary.BigEndian.Uint64(b.Data))
			} else {
				heads[i] = nil
				tree.Close(i)
			}
		}
		for i := range verticals {
			advance(i)
		}
		ob, ok := ctx.AcceptFrom(horiz)
		if !ok {
			return fmt.Errorf("no horizontal buffers")
		}
		for {
			i, v, live := tree.Min()
			if !live {
				break
			}
			binary.BigEndian.PutUint64(ob.Data[ob.N:], v)
			ob.N += 8
			if ob.N == ob.Cap() {
				ctx.Convey(ob)
				if ob, ok = ctx.AcceptFrom(horiz); !ok {
					return fmt.Errorf("horizontal pipeline dried up")
				}
			}
			idx[i]++
			if 8*idx[i] == heads[i].N {
				advance(i)
			} else {
				tree.Set(i, binary.BigEndian.Uint64(heads[i].Data[8*idx[i]:]))
			}
		}
		if ob.N > 0 {
			ctx.Convey(ob)
		}
		return nil
	})
	for _, v := range verticals {
		v.Add(merge)
	}
	horiz.Add(merge)

	written := 0
	during := 0
	horiz.AddStage("write", func(ctx *fg.Ctx, b *fg.Buffer) error {
		during = runtime.NumGoroutine() // sample while the network is live
		if err := disk.WriteAt("merged", b.Bytes(), int64(written)); err != nil {
			return err
		}
		written += b.N
		return nil
	})
	start := time.Now()
	if err := nw.Run(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Verify the merged output is 0..k*perRun-1.
	out := disk.Export("merged")
	total := k * *perRun
	if len(out) != 8*total {
		log.Fatalf("merged %d bytes, want %d", len(out), 8*total)
	}
	for i := 0; i < total; i++ {
		if v := binary.BigEndian.Uint64(out[8*i:]); v != uint64(i) {
			log.Fatalf("merged value %d is %d", i, v)
		}
	}

	fmt.Printf("merged %d runs x %d values in %v — output verified sorted\n",
		k, *perRun, elapsed.Round(time.Millisecond))
	fmt.Printf("goroutines before building the network: %d; while running: about %d\n", before, during)
	fmt.Printf("with %d vertical pipelines, non-virtual FG would need ~%d stage threads;\n", k, 3*k)
	fmt.Println("the virtual group runs all their reads, sources, and sinks on 3 goroutines.")
}
