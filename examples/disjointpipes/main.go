// Disjointpipes: multiple disjoint pipelines for unbalanced communication,
// the structure of Figure 4.
//
// Two simulated nodes redistribute a skewed dataset: node 0 holds most of
// the records that belong on node 1, and vice versa — but the split is
// lopsided, so each node sends and receives at different rates. A single
// pipeline would have to accept and convey buffers at different rates
// through its communication stage; instead each node runs a *send* pipeline
// (acquire -> process -> send) and a disjoint *receive* pipeline (receive
// -> process -> save), each with its own source, sink, buffer pool, and
// buffer size.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/pdm"
)

func main() {
	var (
		blocks = flag.Int("blocks", 32, "blocks each node acquires")
		skew   = flag.Int("skew", 4, "node 0 keeps 1 of this many values; the rest go to node 1")
	)
	flag.Parse()

	c := cluster.New(cluster.Config{
		Nodes:   2,
		Disk:    pdm.DiskModel{SeekLatency: time.Millisecond, BytesPerSecond: 100e6},
		Network: cluster.NetworkModel{Latency: 200 * time.Microsecond, BytesPerSecond: 100e6},
	})

	const valsPerBlock = 1024
	received := make([]int, 2)

	start := time.Now()
	err := c.Run(func(n *cluster.Node) error {
		comm := n.Comm("exchange")
		other := 1 - n.Rank()
		nw := fg.NewNetwork(fmt.Sprintf("disjoint@%d", n.Rank()))

		// Send pipeline: acquire values, decide which node each belongs
		// to, ship the foreign ones. Node 0's values are mostly foreign
		// (the skew), node 1's mostly local — unbalanced communication.
		send := nw.AddPipeline("send",
			fg.Buffers(3), fg.BufferBytes(8*valsPerBlock), fg.Rounds(*blocks))
		send.AddStage("acquire", func(ctx *fg.Ctx, b *fg.Buffer) error {
			for i := 0; i < valsPerBlock; i++ {
				v := uint64(b.Round*valsPerBlock + i)
				binary.BigEndian.PutUint64(b.Data[8*i:], v)
			}
			b.N = 8 * valsPerBlock
			return nil
		})
		send.AddStage("process", func(ctx *fg.Ctx, b *fg.Buffer) error {
			// Partition into keep/ship halves, out of place.
			aux := b.Aux()
			keep, ship := 0, 0
			for off := 0; off < b.N; off += 8 {
				v := binary.BigEndian.Uint64(b.Data[off:])
				foreign := v%uint64(*skew) != 0
				if n.Rank() == 1 {
					foreign = !foreign
				}
				if foreign {
					ship++
					copy(aux[b.N-8*ship:], b.Data[off:off+8])
				} else {
					copy(aux[8*keep:], b.Data[off:off+8])
					keep++
				}
			}
			b.SwapAux()
			b.Meta = keep
			return nil
		})
		send.AddStage("send", func(ctx *fg.Ctx, b *fg.Buffer) error {
			keep := b.Meta.(int)
			comm.SendAny(other, 1, b.Data[8*keep:b.N])
			if b.Round == *blocks-1 {
				comm.SendAny(other, 1, nil) // end-of-data marker
			}
			return nil
		})

		// Receive pipeline: completely separate rates and buffer size.
		recv := nw.AddPipeline("receive",
			fg.Buffers(2), fg.BufferBytes(8*valsPerBlock*2), fg.Unlimited())
		recv.AddFreeStage("receive", func(ctx *fg.Ctx) error {
			b, ok := ctx.Accept()
			if !ok {
				return fmt.Errorf("no receive buffers")
			}
			for {
				_, msg := comm.RecvAny(1)
				if len(msg) == 0 {
					break
				}
				for len(msg) > 0 {
					cp := copy(b.Data[b.N:], msg)
					b.N += cp
					msg = msg[cp:]
					if b.N == b.Cap() {
						ctx.Convey(b)
						if b, ok = ctx.Accept(); !ok {
							return fmt.Errorf("receive pipeline dried up")
						}
					}
				}
			}
			if b.N > 0 {
				ctx.Convey(b)
			}
			return nil
		})
		recv.AddStage("save", func(ctx *fg.Ctx, b *fg.Buffer) error {
			received[n.Rank()] += b.N / 8
			return n.Disk.WriteAt("incoming", b.Bytes(), int64(received[n.Rank()]*8)-int64(b.N))
		})

		return nw.Run()
	})
	if err != nil {
		log.Fatal(err)
	}

	total := 2 * *blocks * valsPerBlock
	fmt.Printf("redistributed %d values between 2 nodes in %v\n",
		total, time.Since(start).Round(time.Millisecond))
	for rank := 0; rank < 2; rank++ {
		fmt.Printf("node %d received %5d values (%.0f%% of its input volume) — unbalanced by design\n",
			rank, received[rank], 100*float64(received[rank])/float64(*blocks*valsPerBlock))
	}
	fmt.Println("\nEach node ran two disjoint pipelines with independent pools and")
	fmt.Println("buffer sizes; the send pace and the receive pace never had to agree.")
}
