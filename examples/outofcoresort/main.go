// Outofcoresort: the paper end to end. Runs dsort and csort on a simulated
// cluster, prints the per-pass breakdown of Figure 8 for one distribution,
// and verifies that both programs produced the same sorted, striped output.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/colsort"
	"github.com/fg-go/fg/dsort"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/pdm"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/workload"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 8, "cluster size P")
		logRecs = flag.Int("records", 18, "log2 of total records N")
		recSize = flag.Int("record-size", 16, "record size in bytes (>= 8)")
		distArg = flag.String("dist", "uniform", "key distribution: uniform, all-equal, normal, poisson, skew-one-node, skew-zipf")
		cpn     = flag.Int("cpn", 2, "csort columns per node")
	)
	flag.Parse()

	dist, err := workload.ParseDistribution(*distArg)
	if err != nil {
		log.Fatal(err)
	}

	spec := oocsort.DefaultSpec()
	spec.Format = records.NewFormat(*recSize)
	spec.TotalRecords = 1 << *logRecs
	spec.Distribution = dist
	spec.RecordsPerBlock = int(spec.TotalRecords) / (*nodes * *cpn)

	// A modestly slow simulated machine so the pass structure dominates.
	newCluster := func() *cluster.Cluster {
		return cluster.New(cluster.Config{
			Nodes:   *nodes,
			Disk:    pdm.DiskModel{SeekLatency: 200e3, BytesPerSecond: 10e6},
			Network: cluster.NetworkModel{Latency: 30e3, BytesPerSecond: 50e6},
		})
	}

	fmt.Printf("sorting %d records of %d bytes (%s keys) on %d simulated nodes\n\n",
		spec.TotalRecords, spec.Format.Size, dist, *nodes)

	// --- dsort -----------------------------------------------------------
	c := newCluster()
	fp, err := oocsort.GenerateInput(c, spec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dsort.DefaultConfig(spec, *nodes)
	dres := make([]oocsort.Result, *nodes)
	err = c.Run(func(n *cluster.Node) error {
		r, err := dsort.Run(n, cfg)
		dres[n.Rank()] = r
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dres[0])
	verify(c, spec, fp)

	// --- csort -----------------------------------------------------------
	c = newCluster()
	if fp, err = oocsort.GenerateInput(c, spec); err != nil {
		log.Fatal(err)
	}
	plan, err := colsort.NewPlan(spec, *nodes, *cpn)
	if err != nil {
		log.Fatal(err)
	}
	cres := make([]oocsort.Result, *nodes)
	err = c.Run(func(n *cluster.Node) error {
		r, err := colsort.Run(n, plan)
		cres[n.Rank()] = r
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cres[0])
	verify(c, spec, fp)

	fmt.Printf("\ndsort took %.2f%% of csort's time (paper: 74.26%%-85.06%%)\n",
		100*float64(dres[0].Total())/float64(cres[0].Total()))
}

// verify re-reads the striped output and checks global sortedness and that
// it is a permutation of the input.
func verify(c *cluster.Cluster, spec oocsort.Spec, want records.Fingerprint) {
	sf := spec.Output(c.P())
	data := make([]byte, spec.TotalBytes())
	if err := sf.ReadAt(c.Disks(), data, 0); err != nil {
		log.Fatal(err)
	}
	if !spec.Format.IsSorted(data) {
		log.Fatal("output is not globally sorted")
	}
	if got := spec.Format.Fingerprint(data); !got.Equal(want) {
		log.Fatal("output is not a permutation of the input")
	}
	fmt.Println("  output verified: globally sorted, PDM-striped, permutation of input")
}
