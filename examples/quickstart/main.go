// Quickstart: a single linear FG pipeline, the structure of Figures 1-2.
//
// The program processes an out-of-core "file" on a simulated disk in
// blocks: a read stage fetches each block, a compute stage transforms it,
// and a write stage stores the result — three stages, each in its own
// goroutine, overlapping the disk latency of reads and writes with the
// computation. A small pool of buffers circulates source -> stages -> sink
// -> source, so memory stays constant no matter how large the file is.
//
// Run it twice to see what FG buys: once with the default pool (overlapped)
// and once with -buffers 1 (stages serialized).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/pdm"
)

func main() {
	var (
		blocks  = flag.Int("blocks", 64, "number of blocks to process")
		blockKB = flag.Int("block-kb", 64, "block size in KiB")
		buffers = flag.Int("buffers", 3, "pipeline buffer pool size (1 = no overlap)")
	)
	flag.Parse()

	// Two simulated disks — input on one, output on the other, as in a
	// copy between devices — each 2 ms positioning, 50 MB/s: slow enough
	// that overlap is visible to the naked eye. (A single disk would
	// serialize the reads and writes on its one head no matter how well
	// the pipeline overlaps them.)
	model := pdm.DiskModel{SeekLatency: 2 * time.Millisecond, BytesPerSecond: 50e6}
	in := pdm.NewDisk(model)
	out := pdm.NewDisk(model)
	blockBytes := *blockKB << 10
	data := make([]byte, blockBytes)
	for i := 0; i < *blocks; i++ {
		for j := range data {
			data[j] = byte('a' + (i+j)%26)
		}
		in.Import(fmt.Sprintf("in.%d", i), data)
	}

	nw := fg.NewNetwork("quickstart")
	p := nw.AddPipeline("main",
		fg.Buffers(*buffers), fg.BufferBytes(blockBytes), fg.Rounds(*blocks))

	p.AddStage("read", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.N = blockBytes
		return in.ReadAt(fmt.Sprintf("in.%d", b.Round), b.Data[:b.N], 0)
	})
	p.AddStage("compute", func(ctx *fg.Ctx, b *fg.Buffer) error {
		for i, c := range b.Bytes() { // uppercase the block
			if 'a' <= c && c <= 'z' {
				b.Data[i] = c - 'a' + 'A'
			}
		}
		return nil
	})
	p.AddStage("write", func(ctx *fg.Ctx, b *fg.Buffer) error {
		return out.WriteAt(fmt.Sprintf("out.%d", b.Round), b.Bytes(), 0)
	})

	start := time.Now()
	if err := nw.Run(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("processed %d blocks of %d KiB with %d buffers in %v\n",
		*blocks, *blockKB, *buffers, elapsed.Round(time.Millisecond))
	fmt.Printf("input disk busy %v, output disk busy %v\n",
		in.Stats().Busy.Round(time.Millisecond), out.Stats().Busy.Round(time.Millisecond))
	fmt.Println()
	fmt.Print(nw.Stats())
	fmt.Println("\nTry -buffers 1: with a single buffer the three stages can never")
	fmt.Println("work concurrently, and the run takes roughly the sum of the two")
	fmt.Println("disks' busy times instead of their maximum.")
}
