module github.com/fg-go/fg

go 1.22
