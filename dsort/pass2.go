package dsort

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/sortalgo"
	"github.com/fg-go/fg/mergetree"
)

// pass2 merges this node's sorted runs into one sorted stream, then
// load-balances and stripes it across the cluster (Figure 7). The vertical
// pipelines — one per run, virtual so k runs cost one thread per stage —
// intersect at the merge stage, which fills buffers of the horizontal
// pipeline; the horizontal send stage disperses each merged block to the
// node owning its striped location; and a disjoint receive pipeline
// accepts incoming pieces and writes them to the local share of the output.
func pass2(n *cluster.Node, cfg Config, runLens []int) error {
	f := cfg.Spec.Format
	size := f.Size
	p, rank := n.P(), n.Rank()
	comm := n.Comm("dsort.p2")
	coll := n.Comm("dsort.p2coll")
	const tagOut = 1

	// Exchange partition sizes so every node knows where its merged stream
	// begins in the global sorted order — the basis of the load-balancing.
	var partRecs int64
	for _, l := range runLens {
		partRecs += int64(l)
	}
	var wire [8]byte
	binary.BigEndian.PutUint64(wire[:], uint64(partRecs))
	sizes := coll.Allgather(wire[:])
	var start, total int64
	for r, w := range sizes {
		v := int64(binary.BigEndian.Uint64(w))
		if r < rank {
			start += v
		}
		total += v
	}
	if total != cfg.Spec.TotalRecords {
		return fmt.Errorf("partitions hold %d records, want %d", total, cfg.Spec.TotalRecords)
	}

	out := cfg.Spec.Output(p)
	totalBytes := cfg.Spec.TotalBytes()
	expectedLocal := out.LocalBytes(totalBytes, rank)

	vBufBytes := f.Bytes(cfg.MergeRecords)
	hBufBytes := f.Bytes(cfg.OutRecords)
	hRounds := int((partRecs + int64(cfg.OutRecords) - 1) / int64(cfg.OutRecords))

	nw := fg.NewNetwork(fmt.Sprintf("dsort.p2@%d", rank))
	nw.OnFail(func(error) { n.Cluster().Abort() })
	finish := cfg.Observe.Attach(nw)
	defer finish()
	defer cfg.tuner.Tune(nw)()

	// Vertical pipelines: one per sorted run, reading the run in small
	// chunks. All are members of one virtual group, so FG serves their
	// read stages (and sources and sinks) with single threads.
	k := len(runLens)
	verticals := make([]*fg.Pipeline, k)
	runBytes := f.Bytes(cfg.RunRecords)
	if k > 0 {
		vg := nw.AddVirtualGroup("runs")
		for i := 0; i < k; i++ {
			i := i
			lenBytes := f.Bytes(runLens[i])
			rounds := (lenBytes + vBufBytes - 1) / vBufBytes
			// Vertical buffers are small and their read rounds cheap, so the
			// slot runner conveys them toward the merge two at a time — the
			// batched hand-off publishes once per pair, and flushes the
			// moment its input runs dry.
			verticals[i] = vg.AddPipeline(fmt.Sprintf("run%d", i),
				fg.Buffers(3), fg.BufferBytes(vBufBytes), fg.Rounds(rounds),
				fg.Batch(2))
			verticals[i].AddStage("read", cfg.diskStage(func(ctx *fg.Ctx, b *fg.Buffer) error {
				off := b.Round * vBufBytes
				cnt := vBufBytes
				if off+cnt > lenBytes {
					cnt = lenBytes - off
				}
				b.N = cnt
				return n.Disk.ReadAt(runsFile, b.Data[:cnt], int64(i)*int64(runBytes)+int64(off))
			}))
		}
	}

	horiz := nw.AddPipeline("horizontal",
		fg.Buffers(cfg.Buffers), fg.BufferBytes(hBufBytes), fg.Rounds(hRounds))

	merge := fg.NewStage("merge", func(ctx *fg.Ctx) error {
		// Repeatedly choose the smallest key not yet chosen among the
		// buffers accepted along the vertical pipelines, copying it into
		// the next position of the output buffer from the horizontal
		// pipeline's source.
		heads := make([]*fg.Buffer, k)
		idx := make([]int, k)
		tree := mergetree.New(k + 1) // k may be 0; the tree needs >= 1 leaf
		advance := func(i int) error {
			if heads[i] != nil {
				ctx.Convey(heads[i]) // spent input buffer, to its own sink
			}
			if b, ok := ctx.AcceptFrom(verticals[i]); ok {
				heads[i] = b
				idx[i] = 0
				tree.Set(i, f.KeyAt(b.Data, 0))
			} else {
				heads[i] = nil
				tree.Close(i)
			}
			return nil
		}
		for i := 0; i < k; i++ {
			if err := advance(i); err != nil {
				return err
			}
		}
		var ob *fg.Buffer
		for {
			i, _, ok := tree.Min()
			if !ok {
				break
			}
			if ob == nil {
				b, ok := ctx.AcceptFrom(horiz)
				if !ok {
					return fmt.Errorf("horizontal pipeline dried up with records remaining")
				}
				ob = b
			}
			// Emit an extent, not a record: everything the leading run can
			// contribute before any other run's current key — found with
			// the same key binary search that splits the parallel two-way
			// merge — moves in one copy, and the tournament tree is
			// consulted per extent instead of per record. Closing leaf i
			// makes the tree report the runner-up key; Set/Close below
			// reopens or retires the leaf. Uniformly interleaved runs
			// degrade to single-record extents, while duplicate-heavy and
			// pre-partitioned inputs (and the single-run tail) collapse to
			// block copies.
			limit := uint64(math.MaxUint64)
			tree.Close(i)
			if _, k2, ok2 := tree.Min(); ok2 {
				limit = k2
			}
			rest := heads[i].Data[idx[i]*size : heads[i].N]
			m := sortalgo.KeyUpperBound(f, rest, limit) // >= 1: the lead key is <= limit
			if space := (ob.Cap() - ob.N) / size; m > space {
				m = space
			}
			copy(ob.Data[ob.N:], rest[:m*size])
			ob.N += m * size
			idx[i] += m
			if ob.N == ob.Cap() {
				ctx.Convey(ob)
				ob = nil
			}
			if idx[i]*size == heads[i].N {
				if err := advance(i); err != nil {
					return err
				}
			} else {
				tree.Set(i, f.KeyAt(heads[i].Data, idx[i]))
			}
		}
		if ob != nil && ob.N > 0 {
			ctx.Convey(ob)
		}
		return nil
	})
	for _, v := range verticals {
		v.Add(merge)
	}
	horiz.Add(merge)

	horiz.AddFreeStage("send", func(ctx *fg.Ctx) error {
		// The merged stream's global byte offset starts at this node's
		// partition start; each extent goes to the disk owning its striped
		// block, framed as [8-byte local offset | payload].
		gOff := start * int64(size)
		for {
			b, ok := ctx.Accept()
			if !ok {
				break
			}
			for _, e := range out.Extents(gOff, b.N) {
				msg := make([]byte, 8+e.Length)
				binary.BigEndian.PutUint64(msg, uint64(e.LocalOff))
				rel := e.GlobalOff - gOff
				copy(msg[8:], b.Data[rel:rel+int64(e.Length)])
				comm.SendAny(e.Disk, tagOut, msg)
			}
			gOff += int64(b.N)
			ctx.Convey(b)
		}
		for d := 0; d < p; d++ {
			comm.SendAny(d, tagOut, nil)
		}
		return nil
	})

	// Disjoint receive pipeline: buffers sized to hold whole incoming
	// extents plus their framing.
	recv := nw.AddPipeline("receive",
		fg.Buffers(cfg.Buffers), fg.BufferBytes(hBufBytes+4096), fg.Unlimited())
	recv.AddFreeStage("receive", func(ctx *fg.Ctx) error {
		b, ok := ctx.Accept()
		if !ok {
			return fmt.Errorf("receive pipeline has no buffers")
		}
		var got int64
		for done := 0; done < p; {
			_, msg := comm.RecvAny(tagOut)
			if len(msg) == 0 {
				done++
				continue
			}
			got += int64(len(msg) - 8)
			framed := 4 + len(msg)
			if b.N+framed > b.Cap() {
				ctx.Convey(b)
				if b, ok = ctx.Accept(); !ok {
					return fmt.Errorf("receive pipeline dried up")
				}
			}
			if framed > b.Cap() {
				return fmt.Errorf("extent of %d bytes exceeds receive buffer", len(msg))
			}
			binary.BigEndian.PutUint32(b.Data[b.N:], uint32(len(msg)))
			copy(b.Data[b.N+4:], msg)
			b.N += framed
		}
		if b.N > 0 {
			ctx.Convey(b)
		}
		if got != expectedLocal {
			return fmt.Errorf("received %d output bytes, want %d", got, expectedLocal)
		}
		return nil
	})
	// Rewriting the same extents at the same offsets is idempotent, so the
	// whole unpack-and-write round can be retried.
	recv.AddStage("write", cfg.diskStage(func(ctx *fg.Ctx, b *fg.Buffer) error {
		for pos := 0; pos < b.N; {
			mlen := int(binary.BigEndian.Uint32(b.Data[pos:]))
			off := int64(binary.BigEndian.Uint64(b.Data[pos+4:]))
			payload := b.Data[pos+12 : pos+4+mlen]
			if err := n.Disk.WriteAt(cfg.Spec.OutputName, payload, off); err != nil {
				return err
			}
			pos += 4 + mlen
		}
		return nil
	}))

	return nw.Run()
}
