package dsort

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/internal/faultinject"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/workload"
)

// TestChaosDsortHangTriggersWatchdog is the acceptance test for the stall
// watchdog: a dsort run with an injected hang fault — a runs-file write
// that neither completes nor errors — must produce an OnStall report naming
// the hung stage as the blocked-on-put culprit, plus a parseable black-box
// Chrome trace from the flight recorder. Releasing the hang then lets the
// run complete and verify, proving the detection had no side effects.
func TestChaosDsortHangTriggersWatchdog(t *testing.T) {
	check.NoLeakedGoroutines(t)
	p := 2
	cfg := testConfig(1<<11, p, 16, workload.Uniform)

	fr := fg.NewFlightRecorder(0)
	reports := make(chan fg.StallReport, 16)
	cfg.Observe = &fg.Observe{
		Flight: fr,
		Watchdog: &fg.WatchdogConfig{
			Interval:   50 * time.Millisecond,
			StallAfter: 300 * time.Millisecond,
			OnStall: func(r fg.StallReport) {
				select {
				case reports <- r:
				default:
				}
			},
		},
	}

	c := cluster.New(cluster.Config{Nodes: p})
	fp, err := oocsort.GenerateInput(c, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	// Hang the first runs-file operation cluster-wide: pass 1's write stage
	// parks inside its function, the stall propagates, and nothing errors.
	inj := faultinject.New(faultinject.Config{HangOn: 1})
	for _, d := range c.Disks() {
		d.SetFault(inj.DiskHook(runsFile))
	}
	defer inj.Release() // unhang even if an assertion bails out early

	done := make(chan error, 1)
	go func() {
		done <- c.Run(func(node *cluster.Node) error {
			_, err := Run(node, cfg)
			return err
		})
	}()

	var rep fg.StallReport
	select {
	case rep = <-reports:
	case <-time.After(30 * time.Second):
		t.Fatal("watchdog never reported the hung run")
	}

	if !strings.HasPrefix(rep.Network, "dsort.p1@") {
		t.Errorf("stall reported on network %q, want a pass-1 network", rep.Network)
	}
	if rep.Culprit != "write" {
		t.Errorf("culprit = %q, want the hung write stage\n%s", rep.Culprit, rep)
	}
	culpritBlocked := false
	for _, s := range rep.Stages {
		if s.Stage == rep.Culprit && s.State == fg.HealthBlockedOnPut {
			culpritBlocked = true
		}
	}
	if !culpritBlocked {
		t.Errorf("culprit is not classified blocked-on-put:\n%s", rep)
	}

	// The black box must be a parseable Chrome trace of the final moments.
	var box bytes.Buffer
	if err := fr.WriteChromeTrace(&box); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(box.Bytes(), &doc); err != nil {
		t.Fatalf("black box is not valid JSON: %v", err)
	}
	events := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			events++
		}
	}
	if events == 0 {
		t.Error("black box holds no events from the run")
	}

	inj.Release()
	if err := <-done; err != nil {
		t.Fatalf("dsort failed after the hang was released: %v", err)
	}
	if got := inj.Hung(); got != 1 {
		t.Errorf("injector hung %d operations, want 1", got)
	}
	for _, d := range c.Disks() {
		d.SetFault(nil)
	}
	if err := check.Output(c, cfg.Spec, fp); err != nil {
		t.Fatalf("output not sorted after the released run: %v", err)
	}
}

// TestChaosDsortSlowDiskNoFalseStall is the false-positive boundary at
// system scale: injected per-operation latency well under StallAfter slows
// every runs-file access but never pauses progress long enough to count as
// a stall, so the watchdog must stay silent and the run must verify.
func TestChaosDsortSlowDiskNoFalseStall(t *testing.T) {
	check.NoLeakedGoroutines(t)
	p := 2
	cfg := testConfig(1<<11, p, 16, workload.Uniform)

	var mu sync.Mutex
	var fired []fg.StallReport
	cfg.Observe = &fg.Observe{
		Watchdog: &fg.WatchdogConfig{
			Interval:   25 * time.Millisecond,
			StallAfter: 5 * time.Second, // far above the injected 10ms per op
			OnStall: func(r fg.StallReport) {
				mu.Lock()
				fired = append(fired, r)
				mu.Unlock()
			},
		},
	}

	c := cluster.New(cluster.Config{Nodes: p})
	fp, err := oocsort.GenerateInput(c, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{Latency: 10 * time.Millisecond})
	for _, d := range c.Disks() {
		d.SetFault(inj.DiskHook(runsFile))
	}
	err = c.Run(func(node *cluster.Node) error {
		_, err := Run(node, cfg)
		return err
	})
	if err != nil {
		t.Fatalf("dsort under injected latency failed: %v", err)
	}
	mu.Lock()
	n := len(fired)
	var first string
	if n > 0 {
		first = fired[0].String()
	}
	mu.Unlock()
	if n != 0 {
		t.Errorf("watchdog fired %d times on a slow but progressing run; first report:\n%s", n, first)
	}
	for _, d := range c.Disks() {
		d.SetFault(nil)
	}
	if err := check.Output(c, cfg.Spec, fp); err != nil {
		t.Fatal(err)
	}
}
