// Package dsort implements the paper's out-of-core distribution sort. A
// preprocessing phase selects splitters by oversampling; pass 1 partitions
// and distributes the records among the nodes, leaving sorted runs on each
// node's disk; pass 2 merges each node's runs and load-balances and stripes
// the output across the cluster.
//
// dsort is the program the paper built FG's multiple-pipeline extensions
// for. Pass 1 runs disjoint send and receive pipelines on each node,
// because the rate at which a node sends records almost certainly differs
// from the rate at which it receives them (Figure 6). Pass 2 runs one
// virtual vertical pipeline per sorted run, all intersecting at a merge
// stage that feeds a horizontal pipeline, whose send stage disperses the
// merged records to the nodes owning their striped blocks; a disjoint
// receive pipeline accepts and writes them (Figure 7).
package dsort

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/oocsort"
)

// Config parameterizes a dsort run. All sizes are in records.
type Config struct {
	Spec oocsort.Spec

	// RunRecords is the length of the sorted runs pass 1 creates, which is
	// also the buffer size of both pass-1 pipelines (the paper uses equal
	// buffer sizes in the send and receive pipelines).
	RunRecords int
	// MergeRecords is the buffer size of pass 2's vertical pipelines.
	// Vertical buffers are small — there may be many vertical pipelines —
	// while each sorted run is many times this size.
	MergeRecords int
	// OutRecords is the buffer size of pass 2's horizontal and receive
	// pipelines, typically much larger than MergeRecords (Section IV).
	OutRecords int
	// Oversample is the per-boundary sampling factor of the splitter phase.
	Oversample int
	// Buffers is the pool size of every non-vertical pipeline; vertical
	// pipelines use two buffers each. The overlap ablation sets it to 1.
	Buffers int

	// Parallelism bounds the intra-buffer parallelism of the compute
	// stages: pass 1's permute and run sort and pass 2's merge use the
	// multicore kernels in internal/sortalgo with up to this many workers
	// from the process-wide shared pool. 0 (the default) means
	// GOMAXPROCS; 1 forces the serial kernels, which the
	// serial-vs-parallel benchmarks compare against. Unlike
	// fg.Stage.Replicate, intra-buffer parallelism preserves buffer order
	// and adds no buffer-pool pressure; see DESIGN.md, "Multicore
	// kernels".
	Parallelism int

	// Retry, when MaxAttempts > 1, wraps every disk-touching round stage
	// (pass 1's read and write, pass 2's run reads and output writes) with
	// fg.Retry, so transient I/O faults are absorbed by backoff instead of
	// aborting a long sort. Communication stages are never retried: their
	// sends are not idempotent. The zero value disables retries.
	Retry fg.RetryPolicy

	// AutoTune, when enabled, attaches a run-time self-tuner to every
	// network dsort builds: the tuner samples each network's bottleneck and
	// pool occupancy and adjusts the compute stages' worker counts (pass
	// 1's permute and run sort) and each pipeline's circulating-buffer
	// count within the configured bounds — recovering from a mis-set
	// Parallelism or Buffers without a restart. Parallelism becomes the
	// initial worker count rather than a fixed one. The zero value
	// disables tuning.
	AutoTune fg.AutoTune

	// Observe, if non-nil, is attached to every network dsort builds (one
	// per pass per node), putting all of them on one trace timeline and
	// metrics registry. Nil observes nothing and costs nothing.
	Observe *fg.Observe

	// Checkpoint, if non-nil, records pass 1's result (the sorted runs
	// file and the run lengths) after the pass-1 barrier, and lets a
	// restarted job skip sampling and pass 1 entirely: at startup every
	// rank votes with the validity of its own checkpoint, and on a
	// unanimous yes (oocsort.AgreeResume) the runs are restored instead of
	// recomputed. Pass 2 is never checkpointed — it is the final pass, and
	// rerunning it from restored runs is exactly the recovery the
	// supervisor wants. Nil disables checkpointing.
	Checkpoint fg.Checkpoint

	// tuner is created once per Run from AutoTune and travels with the
	// Config's value copies into the passes; nil when tuning is disabled.
	tuner *fg.AutoTuner
}

// workersFn returns the per-round worker-count source for the named compute
// stage: the tuner's knob (one atomic load per round) when AutoTune is
// enabled, else the static Parallelism.
func (cfg Config) workersFn(stage string) func() int {
	if k := cfg.tuner.Knob(stage, cfg.Parallelism); k != nil {
		return k.Workers
	}
	p := cfg.Parallelism
	return func() int { return p }
}

// diskStage wraps a disk-touching round stage with the configured retry
// policy, or returns it unchanged when retries are disabled.
func (cfg Config) diskStage(fn fg.RoundFunc) fg.RoundFunc {
	if cfg.Retry.MaxAttempts > 1 {
		return fg.Retry(fn, cfg.Retry)
	}
	return fn
}

// DefaultConfig returns buffer sizes tuned the way the paper describes:
// pass-1 buffers equal in both pipelines, small vertical buffers, large
// horizontal buffers.
func DefaultConfig(spec oocsort.Spec, p int) Config {
	perNode := int(spec.PerNode(p))
	run := perNode / 8
	if run < 1 {
		run = perNode
	}
	if run < 1 {
		run = 1
	}
	merge := run / 4
	if merge < 1 {
		merge = 1
	}
	out := spec.RecordsPerBlock
	if out < 1024 {
		out = 1024
	}
	return Config{
		Spec:         spec,
		RunRecords:   run,
		MergeRecords: merge,
		OutRecords:   out,
		Oversample:   0, // splitter.DefaultOversample
		Buffers:      4,
	}
}

// Validate checks the configuration against a cluster of p nodes.
func (cfg Config) Validate(p int) error {
	if err := cfg.Spec.Validate(p); err != nil {
		return err
	}
	if cfg.RunRecords < 1 || cfg.MergeRecords < 1 || cfg.OutRecords < 1 {
		return fmt.Errorf("dsort: buffer sizes must be positive: run=%d merge=%d out=%d",
			cfg.RunRecords, cfg.MergeRecords, cfg.OutRecords)
	}
	if cfg.Buffers < 1 {
		return fmt.Errorf("dsort: need at least one buffer per pipeline, got %d", cfg.Buffers)
	}
	if cfg.Parallelism < 0 {
		return fmt.Errorf("dsort: negative parallelism %d", cfg.Parallelism)
	}
	return nil
}

// runsFile is the per-node file holding pass 1's sorted runs; run i
// occupies the fixed slot [i*RunRecords, ...) so partial final runs leave
// gaps rather than shifting their successors.
const runsFile = "dsort.runs"

// Run executes dsort on one node; call it from every node of the cluster
// inside cluster.Run. It returns the node's per-phase timings (barriers
// align the phases, so every node reports cluster-wide times).
func Run(n *cluster.Node, cfg Config) (oocsort.Result, error) {
	res := oocsort.Result{Program: "dsort"}
	if err := cfg.Validate(n.P()); err != nil {
		return res, err
	}
	cfg.tuner = fg.NewAutoTuner(cfg.AutoTune)
	cfg.Observe.AttachTuner(cfg.tuner)
	barrier := n.Comm("dsort.barrier")

	barrier.Barrier()
	var runLens []int
	if cfg.Checkpoint != nil &&
		oocsort.AgreeResume(barrier, cfg.Checkpoint.Completed(n.Rank(), "dsort.pass1")) {
		// Every rank holds a valid pass-1 checkpoint: restore the sorted
		// runs and skip sampling and pass 1. The splitters are not needed
		// again — pass 2 runs entirely off the runs and their lengths.
		start := time.Now()
		var err error
		runLens, err = restorePass1(n, cfg)
		if err != nil {
			return res, fmt.Errorf("dsort: restoring pass 1 on node %d: %w", n.Rank(), err)
		}
		barrier.Barrier()
		res.Passes = append(res.Passes,
			oocsort.PassTiming{Name: "sampling"},
			oocsort.PassTiming{Name: "pass1", Duration: time.Since(start)})
		res.Resumed = append(res.Resumed, "pass1")
	} else {
		start := time.Now()
		splitters, err := selectSplitters(n, cfg)
		if err != nil {
			return res, fmt.Errorf("dsort: sampling on node %d: %w", n.Rank(), err)
		}
		barrier.Barrier()
		res.Passes = append(res.Passes, oocsort.PassTiming{Name: "sampling", Duration: time.Since(start)})

		start = time.Now()
		runLens, err = pass1(n, cfg, splitters)
		if err != nil {
			return res, fmt.Errorf("dsort: pass 1 on node %d: %w", n.Rank(), err)
		}
		if cfg.Checkpoint != nil {
			// Saved before the barrier: once any rank enters pass 2, every
			// rank's pass-1 checkpoint is committed.
			if err := savePass1(n, cfg, runLens); err != nil {
				return res, fmt.Errorf("dsort: checkpointing pass 1 on node %d: %w", n.Rank(), err)
			}
		}
		barrier.Barrier()
		res.Passes = append(res.Passes, oocsort.PassTiming{Name: "pass1", Duration: time.Since(start)})
	}

	start := time.Now()
	if err := pass2(n, cfg, runLens); err != nil {
		return res, fmt.Errorf("dsort: pass 2 on node %d: %w", n.Rank(), err)
	}
	barrier.Barrier()
	res.Passes = append(res.Passes, oocsort.PassTiming{Name: "pass2", Duration: time.Since(start)})

	n.Disk.Remove(runsFile)
	return res, nil
}

// savePass1 checkpoints the pass-1 boundary: the sorted-runs file and the
// run lengths pass 2 needs to find them.
func savePass1(n *cluster.Node, cfg Config, runLens []int) error {
	state, err := json.Marshal(runLens)
	if err != nil {
		return err
	}
	return oocsort.SavePass(cfg.Checkpoint, n, "dsort.pass1", state, runsFile)
}

// restorePass1 imports the checkpointed runs back onto the node's disk and
// returns the run lengths.
func restorePass1(n *cluster.Node, cfg Config) ([]int, error) {
	state, err := oocsort.RestorePass(cfg.Checkpoint, n, "dsort.pass1")
	if err != nil {
		return nil, err
	}
	var runLens []int
	if err := json.Unmarshal(state, &runLens); err != nil {
		return nil, fmt.Errorf("run lengths corrupt: %w", err)
	}
	return runLens, nil
}
