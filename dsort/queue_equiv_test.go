package dsort

import (
	"fmt"
	"runtime"
	"testing"
	"testing/quick"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/workload"
)

// dsortKeySequence runs dsort on a fresh simulated cluster and returns the
// key of every output record in global PDM order. dsort's output *bytes*
// are not comparable across runs — the arrival order of equal-keyed records
// depends on message timing — but the sorted key sequence is fully
// determined by the input.
func dsortKeySequence(t *testing.T, cfg Config, p int) []uint64 {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: p})
	if _, err := oocsort.GenerateInput(c, cfg.Spec); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(node *cluster.Node) error {
		_, err := Run(node, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := check.ReadOutput(c, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	f := cfg.Spec.Format
	keys := make([]uint64, f.Count(len(out)))
	for i := range keys {
		keys[i] = f.KeyAt(out, i)
	}
	return keys
}

// TestDsortRingMatchesChannelKeys is the ring-vs-channel equivalence
// property for dsort: for random workload seeds and at GOMAXPROCS 1, 2, and
// NumCPU, a build on lock-free SPSC rings must deliver the same sorted key
// sequence as a build forced onto channel queues. The two builds are
// supposed to be semantically identical; this is the test that keeps them
// so.
func TestDsortRingMatchesChannelKeys(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, procs := range gomaxprocsLevels() {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prevProcs)
			property := func(seed uint8) bool {
				cfg := testConfig(1<<12, 4, 16, workload.Poisson)
				cfg.Spec.Seed = int64(seed)
				ringKeys := dsortKeySequence(t, cfg, 4)
				prev := fg.UseChannelQueues(true)
				chanKeys := dsortKeySequence(t, cfg, 4)
				fg.UseChannelQueues(prev)
				if len(ringKeys) != len(chanKeys) {
					t.Logf("seed %d: %d keys on rings, %d on channels", seed, len(ringKeys), len(chanKeys))
					return false
				}
				for i := range ringKeys {
					if ringKeys[i] != chanKeys[i] {
						t.Logf("seed %d: key %d differs between ring and channel builds", seed, i)
						return false
					}
				}
				return true
			}
			if err := quick.Check(property, &quick.Config{MaxCount: 2}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// gomaxprocsLevels returns {1, 2, NumCPU} without duplicates.
func gomaxprocsLevels() []int {
	levels := []int{1}
	for _, n := range []int{2, runtime.NumCPU()} {
		if n > levels[len(levels)-1] {
			levels = append(levels, n)
		}
	}
	return levels
}
