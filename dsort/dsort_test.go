package dsort

import (
	"fmt"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/records"
	"github.com/fg-go/fg/workload"
)

func testConfig(n int64, p int, recSize int, dist workload.Distribution) Config {
	spec := oocsort.DefaultSpec()
	spec.Format = records.NewFormat(recSize)
	spec.TotalRecords = n
	spec.RecordsPerBlock = int(n / int64(4*p)) // a few blocks per node
	if spec.RecordsPerBlock < 1 {
		spec.RecordsPerBlock = 1
	}
	spec.Distribution = dist
	spec.Seed = 17
	return DefaultConfig(spec, p)
}

// runDsort generates input, runs dsort on a simulated cluster, verifies the
// striped output, and returns node 0's result.
func runDsort(t *testing.T, cfg Config, p int) oocsort.Result {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: p})
	fp, err := oocsort.GenerateInput(c, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]oocsort.Result, p)
	err = c.Run(func(node *cluster.Node) error {
		res, err := Run(node, cfg)
		results[node.Rank()] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Output(c, cfg.Spec, fp); err != nil {
		t.Fatal(err)
	}
	return results[0]
}

func TestDsortSortsAllDistributions(t *testing.T) {
	for _, dist := range workload.Distributions {
		dist := dist
		t.Run(dist.String(), func(t *testing.T) {
			runDsort(t, testConfig(1<<12, 4, 16, dist), 4)
		})
	}
}

func TestDsortSkewDistributions(t *testing.T) {
	// The adversarial inputs that make pass-1 communication highly
	// unbalanced — the case FG's disjoint pipelines exist for.
	for _, dist := range workload.SkewDistributions {
		dist := dist
		t.Run(dist.String(), func(t *testing.T) {
			runDsort(t, testConfig(1<<12, 4, 16, dist), 4)
		})
	}
}

func TestDsortLargeRecords(t *testing.T) {
	runDsort(t, testConfig(1<<12, 4, 64, workload.Uniform), 4)
}

func TestDsortSingleNode(t *testing.T) {
	runDsort(t, testConfig(1<<10, 1, 16, workload.Uniform), 1)
}

func TestDsortManyNodes(t *testing.T) {
	runDsort(t, testConfig(1<<14, 16, 16, workload.StdNormal), 16)
}

func TestDsortTinyRuns(t *testing.T) {
	// Force many runs per node so pass 2 exercises many virtual pipelines.
	cfg := testConfig(1<<12, 4, 16, workload.Uniform)
	cfg.RunRecords = 64
	cfg.MergeRecords = 16
	runDsort(t, cfg, 4)
}

func TestDsortSingleRun(t *testing.T) {
	// Run size larger than any partition: each node merges a single run.
	cfg := testConfig(1<<12, 4, 16, workload.Uniform)
	cfg.RunRecords = 1 << 12
	runDsort(t, cfg, 4)
}

func TestDsortOneBuffer(t *testing.T) {
	// The overlap ablation configuration must still be correct.
	cfg := testConfig(1<<12, 4, 16, workload.Uniform)
	cfg.Buffers = 1
	runDsort(t, cfg, 4)
}

func TestDsortUnalignedSizes(t *testing.T) {
	// Records per node not divisible by buffer or block sizes.
	spec := oocsort.DefaultSpec()
	spec.TotalRecords = 4 * 997 // prime per node
	spec.RecordsPerBlock = 100
	spec.Distribution = workload.Poisson
	cfg := DefaultConfig(spec, 4)
	cfg.RunRecords = 130
	cfg.MergeRecords = 17
	cfg.OutRecords = 230
	runDsort(t, cfg, 4)
}

func TestDsortReportsThreePhases(t *testing.T) {
	res := runDsort(t, testConfig(1<<12, 4, 16, workload.Uniform), 4)
	want := []string{"sampling", "pass1", "pass2"}
	if len(res.Passes) != len(want) {
		t.Fatalf("dsort reports %d phases, want %d", len(res.Passes), len(want))
	}
	for i, p := range res.Passes {
		if p.Name != want[i] {
			t.Errorf("phase %d named %q, want %q", i, p.Name, want[i])
		}
	}
}

func TestDsortIOVolumeTwoPasses(t *testing.T) {
	// dsort reads and writes the data twice (plus trivial sampling reads):
	// the one-fewer-pass advantage behind Figure 8.
	cfg := testConfig(1<<12, 4, 16, workload.Uniform)
	c := cluster.New(cluster.Config{Nodes: 4})
	if _, err := oocsort.GenerateInput(c, cfg.Spec); err != nil {
		t.Fatal(err)
	}
	oocsort.CollectDiskStats(c)
	err := c.Run(func(node *cluster.Node) error {
		_, err := Run(node, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	io := oocsort.CollectDiskStats(c)
	data := cfg.Spec.TotalBytes()
	min, max := 4*data, 4*data+data/10 // sampling reads add a sliver
	if io.TotalBytes() < min || io.TotalBytes() > max {
		t.Errorf("dsort moved %d disk bytes, want about %d (4x data)", io.TotalBytes(), 4*data)
	}
}

func TestDsortPartitionBalance(t *testing.T) {
	// Section V: "In our experiments, all partition sizes were at most 10%
	// greater than the average." Verify via per-node received volumes.
	cfg := testConfig(1<<14, 8, 16, workload.AllEqual)
	c := cluster.New(cluster.Config{Nodes: 8})
	if _, err := oocsort.GenerateInput(c, cfg.Spec); err != nil {
		t.Fatal(err)
	}
	partRecs := make([]int64, 8)
	err := c.Run(func(node *cluster.Node) error {
		splitters, err := selectSplitters(node, cfg)
		if err != nil {
			return err
		}
		runLens, err := pass1(node, cfg, splitters)
		if err != nil {
			return err
		}
		var sum int64
		for _, l := range runLens {
			sum += int64(l)
		}
		partRecs[node.Rank()] = sum
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(cfg.Spec.TotalRecords) / 8
	for rank, got := range partRecs {
		if f := float64(got) / avg; f > 1.15 {
			t.Errorf("node %d holds %.2fx the average partition (all-equal keys)", rank, f)
		}
	}
}

func TestDsortValidation(t *testing.T) {
	cfg := testConfig(1<<10, 4, 16, workload.Uniform)
	cfg.RunRecords = 0
	if err := cfg.Validate(4); err == nil {
		t.Error("zero run size accepted")
	}
	cfg = testConfig(1<<10, 4, 16, workload.Uniform)
	cfg.Buffers = 0
	if err := cfg.Validate(4); err == nil {
		t.Error("zero buffers accepted")
	}
	cfg = testConfig(1<<10, 4, 16, workload.Uniform)
	cfg.Spec.TotalRecords = 1023 // not divisible by 4
	if err := cfg.Validate(4); err == nil {
		t.Error("indivisible record count accepted")
	}
}

func TestDsortDeterministicKeySequence(t *testing.T) {
	// Unlike csort, dsort is not oblivious: the arrival order of records
	// with equal keys depends on message timing, so the output bytes may
	// differ between runs. The sorted *key sequence*, however, is fully
	// determined by the input.
	cfg := testConfig(1<<12, 4, 16, workload.Poisson)
	f := cfg.Spec.Format
	var keySeqs [2][]uint64
	for trial := 0; trial < 2; trial++ {
		c := cluster.New(cluster.Config{Nodes: 4})
		if _, err := oocsort.GenerateInput(c, cfg.Spec); err != nil {
			t.Fatal(err)
		}
		err := c.Run(func(node *cluster.Node) error {
			_, err := Run(node, cfg)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		out, cerr := check.ReadOutput(c, cfg.Spec)
		if cerr != nil {
			t.Fatal(cerr)
		}
		keys := make([]uint64, f.Count(len(out)))
		for i := range keys {
			keys[i] = f.KeyAt(out, i)
		}
		keySeqs[trial] = keys
	}
	for i := range keySeqs[0] {
		if keySeqs[0][i] != keySeqs[1][i] {
			t.Fatalf("key sequence differs at %d between identical runs", i)
		}
	}
}

func TestDsortAgainstCsortOutput(t *testing.T) {
	// Both programs must produce byte-identical striped output for formats
	// with unique keys... keys are not unique, so compare keys only: the
	// sorted key sequence is unique even when record order among equal keys
	// is not.
	cfg := testConfig(1<<12, 4, 16, workload.Poisson)
	c := cluster.New(cluster.Config{Nodes: 4})
	fp, err := oocsort.GenerateInput(c, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(node *cluster.Node) error {
		_, err := Run(node, cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Output(c, cfg.Spec, fp); err != nil {
		t.Fatal(err)
	}
	dsortOut, err := check.ReadOutput(c, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	// The per-record keys in PDM order are fully determined by the input.
	f := cfg.Spec.Format
	keys := make([]uint64, f.Count(len(dsortOut)))
	for i := range keys {
		keys[i] = f.KeyAt(dsortOut, i)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("key order violated at %d", i)
		}
	}
}

// runDsortLinear mirrors runDsort for the single-linear-pipeline variant.
func runDsortLinear(t *testing.T, cfg Config, p int) oocsort.Result {
	t.Helper()
	c := cluster.New(cluster.Config{Nodes: p})
	fp, err := oocsort.GenerateInput(c, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]oocsort.Result, p)
	err = c.Run(func(node *cluster.Node) error {
		res, err := RunLinear(node, cfg)
		results[node.Rank()] = res
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Output(c, cfg.Spec, fp); err != nil {
		t.Fatal(err)
	}
	return results[0]
}

func TestDsortLinearSortsAllDistributions(t *testing.T) {
	for _, dist := range workload.Distributions {
		dist := dist
		t.Run(dist.String(), func(t *testing.T) {
			runDsortLinear(t, testConfig(1<<12, 4, 16, dist), 4)
		})
	}
}

func TestDsortLinearSkew(t *testing.T) {
	for _, dist := range workload.SkewDistributions {
		runDsortLinear(t, testConfig(1<<12, 4, 16, dist), 4)
	}
}

func TestDsortLinearSingleNode(t *testing.T) {
	runDsortLinear(t, testConfig(1<<10, 1, 16, workload.Uniform), 1)
}

func TestDsortLinearManyRuns(t *testing.T) {
	cfg := testConfig(1<<12, 4, 16, workload.Uniform)
	cfg.RunRecords = 64
	cfg.MergeRecords = 16
	runDsortLinear(t, cfg, 4)
}

func TestDsortLinearLargeRecords(t *testing.T) {
	runDsortLinear(t, testConfig(1<<12, 4, 64, workload.StdNormal), 4)
}

func TestDsortLinearReportsPhases(t *testing.T) {
	res := runDsortLinear(t, testConfig(1<<12, 4, 16, workload.Uniform), 4)
	if res.Program != "dsort-linear" || len(res.Passes) != 3 {
		t.Fatalf("linear result: %+v", res)
	}
}

// failDisks injects a read fault for the given file on every node.
func failDisks(c *cluster.Cluster, file string, afterOps int) {
	for _, d := range c.Disks() {
		d := d
		var ops int
		d.SetFault(func(op, name string, off int64) error {
			if name != file {
				return nil
			}
			ops++
			if ops > afterOps {
				return fmt.Errorf("injected disk failure on %s", name)
			}
			return nil
		})
	}
}

func TestDsortSurfacesDiskFailure(t *testing.T) {
	// A failing input disk must abort the run with an error — promptly, not
	// by hanging the cluster. The fault fires on every node before any
	// cross-node data dependency forms.
	cfg := testConfig(1<<12, 4, 16, workload.Uniform)
	c := cluster.New(cluster.Config{Nodes: 4})
	if _, err := oocsort.GenerateInput(c, cfg.Spec); err != nil {
		t.Fatal(err)
	}
	failDisks(c, cfg.Spec.InputName, 0)
	done := make(chan error, 1)
	go func() {
		done <- c.Run(func(node *cluster.Node) error {
			_, err := Run(node, cfg)
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dsort succeeded despite failing disks")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("dsort hung on a disk failure")
	}
}

func TestDsortSingleNodeRunFileFailure(t *testing.T) {
	// On one node there are no cross-node dependencies, so a failure in the
	// middle of the program (the runs file, written by pass 1's receive
	// pipeline) must surface cleanly too.
	cfg := testConfig(1<<10, 1, 16, workload.Uniform)
	c := cluster.New(cluster.Config{Nodes: 1})
	if _, err := oocsort.GenerateInput(c, cfg.Spec); err != nil {
		t.Fatal(err)
	}
	failDisks(c, "dsort.runs", 2)
	err := c.Run(func(node *cluster.Node) error {
		_, err := Run(node, cfg)
		return err
	})
	if err == nil {
		t.Fatal("dsort succeeded despite a failing runs file")
	}
}

func TestDsortUnderTightMailboxes(t *testing.T) {
	// A tiny mailbox forces senders to block on receiver backpressure; the
	// disjoint pipelines must keep draining and the sort must complete.
	cfg := testConfig(1<<12, 4, 16, workload.SkewOneNode)
	c := cluster.New(cluster.Config{Nodes: 4, MailboxDepth: 4})
	fp, err := oocsort.GenerateInput(c, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- c.Run(func(node *cluster.Node) error {
			_, err := Run(node, cfg)
			return err
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("dsort deadlocked under mailbox backpressure")
	}
	if err := check.Output(c, cfg.Spec, fp); err != nil {
		t.Fatal(err)
	}
}
