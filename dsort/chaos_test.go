package dsort

import (
	"errors"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/internal/faultinject"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/workload"
)

// TestChaosDsortRetriesAbsorbTransientFaults injects a deterministic budget
// of transient disk faults into the runs file and shows that retryable disk
// stages sort correctly anyway. The injector is shared across all nodes, so
// 6 faults are spread cluster-wide; with 8 attempts per round, no stage can
// exhaust its retries even if every fault lands on one round.
func TestChaosDsortRetriesAbsorbTransientFaults(t *testing.T) {
	check.NoLeakedGoroutines(t)
	p := 2
	cfg := testConfig(1<<11, p, 16, workload.Uniform)
	cfg.Retry = fg.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Jitter:      0.2,
		Seed:        7,
	}

	c := cluster.New(cluster.Config{Nodes: p})
	fp, err := oocsort.GenerateInput(c, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	// Install the chaos after input generation, scoped to the runs file so
	// setup and verification I/O stay clean.
	inj := faultinject.New(faultinject.Config{FailN: 6, Seed: 11})
	for _, d := range c.Disks() {
		d.SetFault(inj.DiskHook(runsFile))
	}

	err = c.Run(func(node *cluster.Node) error {
		_, err := Run(node, cfg)
		return err
	})
	if err != nil {
		t.Fatalf("dsort under chaos failed despite retries: %v", err)
	}
	if got := inj.Injected(); got != 6 {
		t.Errorf("injected %d faults, want the full budget of 6", got)
	}
	for _, d := range c.Disks() {
		d.SetFault(nil)
	}
	if err := check.Output(c, cfg.Spec, fp); err != nil {
		t.Fatalf("output not sorted after chaos run: %v", err)
	}
}

// TestChaosDsortNoRetriesFailsCleanly injects an inexhaustible fault stream
// into node 0's disk with retries disabled: Run must return the injected
// fault promptly — the cross-node abort releasing every other node's
// blocked communication — and leak no goroutines.
func TestChaosDsortNoRetriesFailsCleanly(t *testing.T) {
	check.NoLeakedGoroutines(t)
	p := 2
	cfg := testConfig(1<<11, p, 16, workload.Uniform)

	c := cluster.New(cluster.Config{Nodes: p})
	if _, err := oocsort.GenerateInput(c, cfg.Spec); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{FailN: 1 << 30, Seed: 11})
	c.Node(0).Disk.SetFault(inj.DiskHook(runsFile))

	start := time.Now()
	err := c.Run(func(node *cluster.Node) error {
		_, err := Run(node, cfg)
		return err
	})
	if err == nil {
		t.Fatal("dsort succeeded despite unrecoverable disk faults")
	}
	var f *faultinject.Fault
	if !errors.As(err, &f) {
		t.Errorf("error does not carry the injected fault: %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("failure took %v to surface", d)
	}
}
