package dsort

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/sortalgo"
	"github.com/fg-go/fg/mergetree"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/records"
)

// RunLinear executes dsort restricted to a single linear pipeline per node
// per pass — the comparison implementation Section VIII of the paper
// proposes in order to quantify what the multiple-pipeline extensions buy.
//
// With only one pipeline, the stages that receive data cannot run at their
// own pace: the communication stage of pass 1 must interleave draining
// incoming records with sending, and must sort and write full runs inline;
// the merge stage of pass 2 must read run chunks synchronously whenever one
// empties, with no pipeline prefetching them. The extensive bookkeeping in
// this file is itself part of the reproduction: it is the programming
// burden the paper says the extensions remove.
func RunLinear(n *cluster.Node, cfg Config) (oocsort.Result, error) {
	res := oocsort.Result{Program: "dsort-linear"}
	if err := cfg.Validate(n.P()); err != nil {
		return res, err
	}
	cfg.tuner = fg.NewAutoTuner(cfg.AutoTune)
	cfg.Observe.AttachTuner(cfg.tuner)
	barrier := n.Comm("dsortlin.barrier")

	barrier.Barrier()
	start := time.Now()
	splitters, err := selectSplitters(n, cfg)
	if err != nil {
		return res, fmt.Errorf("dsort-linear: sampling on node %d: %w", n.Rank(), err)
	}
	barrier.Barrier()
	res.Passes = append(res.Passes, oocsort.PassTiming{Name: "sampling", Duration: time.Since(start)})

	start = time.Now()
	runLens, err := pass1Linear(n, cfg, splitters)
	if err != nil {
		return res, fmt.Errorf("dsort-linear: pass 1 on node %d: %w", n.Rank(), err)
	}
	barrier.Barrier()
	res.Passes = append(res.Passes, oocsort.PassTiming{Name: "pass1", Duration: time.Since(start)})

	start = time.Now()
	if err := pass2Linear(n, cfg, runLens); err != nil {
		return res, fmt.Errorf("dsort-linear: pass 2 on node %d: %w", n.Rank(), err)
	}
	barrier.Barrier()
	res.Passes = append(res.Passes, oocsort.PassTiming{Name: "pass2", Duration: time.Since(start)})

	n.Disk.Remove(runsFile)
	return res, nil
}

// pass1Linear is pass 1 on one pipeline: read -> permute -> commio, where
// commio sends this buffer's partitions, opportunistically drains whatever
// has arrived, and sorts and writes each run inline as it fills.
func pass1Linear(n *cluster.Node, cfg Config, splitters []records.ExtKey) ([]int, error) {
	f := cfg.Spec.Format
	p, rank := n.P(), n.Rank()
	perNode := cfg.Spec.PerNode(p)
	bufRecs := cfg.RunRecords
	bufBytes := f.Bytes(bufRecs)
	sendRounds := int((perNode + int64(bufRecs) - 1) / int64(bufRecs))
	comm := n.Comm("dsortlin.p1")
	const tagData = 1

	// Run accumulation state, owned by the commio stage.
	runBuf := make([]byte, bufBytes)
	scratch := make([]byte, bufBytes)
	fill := 0
	var runLens []int
	flushRun := func() error {
		if fill == 0 {
			return nil
		}
		sortalgo.SortRecordsParallel(f, runBuf[:fill], scratch, cfg.Parallelism)
		off := int64(len(runLens)) * int64(bufBytes)
		runLens = append(runLens, f.Count(fill))
		fill = 0
		return n.Disk.WriteAt(runsFile, runBuf[:f.Bytes(runLens[len(runLens)-1])], off)
	}
	ingest := func(msg []byte) error {
		for len(msg) > 0 {
			c := copy(runBuf[fill:], msg)
			fill += c
			msg = msg[c:]
			if fill == bufBytes {
				if err := flushRun(); err != nil {
					return err
				}
			}
		}
		return nil
	}

	nw := fg.NewNetwork(fmt.Sprintf("dsortlin.p1@%d", rank))
	nw.OnFail(func(error) { n.Cluster().Abort() })
	finish := cfg.Observe.Attach(nw)
	defer finish()
	defer cfg.tuner.Tune(nw)()
	pipe := nw.AddPipeline("main",
		fg.Buffers(cfg.Buffers), fg.BufferBytes(bufBytes), fg.Rounds(sendRounds))
	pipe.AddStage("read", func(ctx *fg.Ctx, b *fg.Buffer) error {
		off := int64(b.Round) * int64(bufRecs)
		cnt := int64(bufRecs)
		if off+cnt > perNode {
			cnt = perNode - off
		}
		b.N = f.Bytes(int(cnt))
		return n.Disk.ReadAt(cfg.Spec.InputName, b.Data[:b.N], off*int64(f.Size))
	})
	pipe.AddStage("permute", permuteStage(f, p, rank, bufRecs, splitters, cfg.workersFn("permute")))
	pipe.AddStage("send", func(ctx *fg.Ctx, b *fg.Buffer) error {
		counts := b.Meta.([]int)
		off := 0
		for d := 0; d < p; d++ {
			if counts[d] > 0 {
				comm.SendAny(d, tagData, b.Data[off:off+f.Bytes(counts[d])])
				off += f.Bytes(counts[d])
			}
		}
		if b.Round == sendRounds-1 {
			for d := 0; d < p; d++ {
				comm.SendAny(d, tagData, nil)
			}
		}
		return nil
	})
	// All receiving, run sorting, and run writing happen inline in this one
	// stage — the serialization a single linear pipeline forces.
	doneMarkers := 0
	pipe.AddFreeStage("recvio", func(ctx *fg.Ctx) error {
		for {
			b, ok := ctx.Accept()
			if !ok {
				break
			}
			ctx.Convey(b)
			// Drain whatever has arrived so far without blocking.
			for {
				_, msg, ok := comm.TryRecvAny(tagData)
				if !ok {
					break
				}
				if len(msg) == 0 {
					doneMarkers++
					continue
				}
				if err := ingest(msg); err != nil {
					return err
				}
			}
		}
		for doneMarkers < p {
			_, msg := comm.RecvAny(tagData)
			if len(msg) == 0 {
				doneMarkers++
				continue
			}
			if err := ingest(msg); err != nil {
				return err
			}
		}
		return flushRun()
	})

	if err := nw.Run(); err != nil {
		return nil, err
	}
	return runLens, nil
}

// pass2Linear is pass 2 on one pipeline: a merge stage that synchronously
// reads run chunks as they empty, followed by a commio stage that sends the
// merged blocks to their striped owners, drains and writes incoming pieces,
// and finishes with a blocking drain.
func pass2Linear(n *cluster.Node, cfg Config, runLens []int) error {
	f := cfg.Spec.Format
	size := f.Size
	p, rank := n.P(), n.Rank()
	comm := n.Comm("dsortlin.p2")
	coll := n.Comm("dsortlin.p2coll")
	const tagOut = 1

	var partRecs int64
	for _, l := range runLens {
		partRecs += int64(l)
	}
	var wire [8]byte
	binary.BigEndian.PutUint64(wire[:], uint64(partRecs))
	sizes := coll.Allgather(wire[:])
	var start, total int64
	for r, w := range sizes {
		v := int64(binary.BigEndian.Uint64(w))
		if r < rank {
			start += v
		}
		total += v
	}
	if total != cfg.Spec.TotalRecords {
		return fmt.Errorf("partitions hold %d records, want %d", total, cfg.Spec.TotalRecords)
	}

	out := cfg.Spec.Output(p)
	totalBytes := cfg.Spec.TotalBytes()
	expectedLocal := out.LocalBytes(totalBytes, rank)
	hBufBytes := f.Bytes(cfg.OutRecords)
	hRounds := int((partRecs + int64(cfg.OutRecords) - 1) / int64(cfg.OutRecords))
	runBytes := f.Bytes(cfg.RunRecords)
	vBufBytes := f.Bytes(cfg.MergeRecords)

	// Merge state: one synchronously loaded chunk per run.
	k := len(runLens)
	chunks := make([][]byte, k)
	chunkOff := make([]int, k) // bytes of the run consumed so far
	cursor := make([]int, k)   // records consumed within the chunk
	tree := mergetree.New(k + 1)
	load := func(i int) error {
		lenBytes := f.Bytes(runLens[i])
		if chunkOff[i] >= lenBytes {
			tree.Close(i)
			return nil
		}
		cnt := vBufBytes
		if chunkOff[i]+cnt > lenBytes {
			cnt = lenBytes - chunkOff[i]
		}
		if chunks[i] == nil {
			chunks[i] = make([]byte, vBufBytes)
		}
		if err := n.Disk.ReadAt(runsFile, chunks[i][:cnt], int64(i)*int64(runBytes)+int64(chunkOff[i])); err != nil {
			return err
		}
		chunks[i] = chunks[i][:cnt]
		chunkOff[i] += cnt
		cursor[i] = 0
		tree.Set(i, f.KeyAt(chunks[i], 0))
		return nil
	}

	nw := fg.NewNetwork(fmt.Sprintf("dsortlin.p2@%d", rank))
	nw.OnFail(func(error) { n.Cluster().Abort() })
	finish := cfg.Observe.Attach(nw)
	defer finish()
	pipe := nw.AddPipeline("main",
		fg.Buffers(cfg.Buffers), fg.BufferBytes(hBufBytes+4096), fg.Rounds(hRounds))

	pipe.AddFreeStage("merge", func(ctx *fg.Ctx) error {
		for i := 0; i < k; i++ {
			if err := load(i); err != nil {
				return err
			}
		}
		for {
			b, ok := ctx.Accept()
			if !ok {
				return nil
			}
			for b.N+size <= hBufBytes {
				i, _, ok := tree.Min()
				if !ok {
					break
				}
				copy(b.Data[b.N:], chunks[i][cursor[i]*size:(cursor[i]+1)*size])
				b.N += size
				cursor[i]++
				if cursor[i]*size == len(chunks[i]) {
					if err := load(i); err != nil {
						return err
					}
				} else {
					tree.Set(i, f.KeyAt(chunks[i], cursor[i]))
				}
			}
			ctx.Convey(b)
		}
	})

	writeExtents := func(msg []byte) error {
		off := int64(binary.BigEndian.Uint64(msg))
		return n.Disk.WriteAt(cfg.Spec.OutputName, msg[8:], off)
	}
	var received int64
	doneMarkers := 0
	pipe.AddFreeStage("commio", func(ctx *fg.Ctx) error {
		gOff := start * int64(size)
		for {
			b, ok := ctx.Accept()
			if !ok {
				break
			}
			for _, e := range out.Extents(gOff, b.N) {
				msg := make([]byte, 8+e.Length)
				binary.BigEndian.PutUint64(msg, uint64(e.LocalOff))
				rel := e.GlobalOff - gOff
				copy(msg[8:], b.Data[rel:rel+int64(e.Length)])
				comm.SendAny(e.Disk, tagOut, msg)
			}
			gOff += int64(b.N)
			ctx.Convey(b)
			for { // opportunistic drain
				_, msg, ok := comm.TryRecvAny(tagOut)
				if !ok {
					break
				}
				if len(msg) == 0 {
					doneMarkers++
					continue
				}
				received += int64(len(msg) - 8)
				if err := writeExtents(msg); err != nil {
					return err
				}
			}
		}
		for d := 0; d < p; d++ {
			comm.SendAny(d, tagOut, nil)
		}
		for doneMarkers < p {
			_, msg := comm.RecvAny(tagOut)
			if len(msg) == 0 {
				doneMarkers++
				continue
			}
			received += int64(len(msg) - 8)
			if err := writeExtents(msg); err != nil {
				return err
			}
		}
		if received != expectedLocal {
			return fmt.Errorf("received %d output bytes, want %d", received, expectedLocal)
		}
		return nil
	})

	return nw.Run()
}
