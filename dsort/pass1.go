package dsort

import (
	"fmt"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/sortalgo"
	"github.com/fg-go/fg/internal/splitter"
	"github.com/fg-go/fg/records"
)

// selectSplitters runs the preprocessing phase: every node samples its
// local input at random positions (paying the single-record disk reads) and
// the cluster agrees on P-1 extended-key splitters.
func selectSplitters(n *cluster.Node, cfg Config) ([]records.ExtKey, error) {
	f := cfg.Spec.Format
	comm := n.Comm("dsort.sample")
	rec := make([]byte, f.Size)
	return splitter.Select(comm, cfg.Spec.PerNode(n.P()), func(idx int64) (uint64, error) {
		if err := n.Disk.ReadAt(cfg.Spec.InputName, rec, idx*int64(f.Size)); err != nil {
			return 0, err
		}
		return f.Key(rec), nil
	}, cfg.Oversample, cfg.Spec.Seed)
}

// permuteStage returns the round function that rearranges a buffer so that
// records of the same partition are contiguous: a stable partition scatter
// on the partition index, out of place through the auxiliary buffer (the
// FG feature the paper's permute stage relies on). The extended key —
// (key, origin node, input position) — decides each record's partition; it
// never becomes part of the record. The classification and scatter run on
// the shared worker pool with up to workers() executors
// (sortalgo.PartitionRecords; workers <= 1 is the serial counting sort);
// the count is re-read each round so an auto-tuner knob takes effect
// mid-run. The per-partition counts travel with the buffer as its Meta.
func permuteStage(f records.Format, p, rank, bufRecs int, splitters []records.ExtKey, workers func() int) fg.RoundFunc {
	return func(ctx *fg.Ctx, b *fg.Buffer) error {
		base := int64(b.Round) * int64(bufRecs)
		data := b.Bytes()
		counts := sortalgo.PartitionRecords(f, data, b.Aux()[:b.N], p, func(i int) int {
			e := records.ExtKey{Key: f.KeyAt(data, i), Node: uint32(rank), Seq: uint64(base) + uint64(i)}
			return splitter.Partition(splitters, e)
		}, workers())
		b.SwapAux()
		b.Meta = counts
		return nil
	}
}

// pass1 partitions and distributes the records (Figure 6): a send pipeline
// (read -> permute -> send) and a disjoint receive pipeline (receive ->
// sort -> write) run concurrently on each node. It returns the lengths of
// the sorted runs this node's receive pipeline wrote.
func pass1(n *cluster.Node, cfg Config, splitters []records.ExtKey) ([]int, error) {
	f := cfg.Spec.Format
	size := f.Size
	p, rank := n.P(), n.Rank()
	perNode := cfg.Spec.PerNode(p)
	bufRecs := cfg.RunRecords
	bufBytes := f.Bytes(bufRecs)
	sendRounds := int((perNode + int64(bufRecs) - 1) / int64(bufRecs))
	comm := n.Comm("dsort.p1")
	const tagData = 1

	nw := fg.NewNetwork(fmt.Sprintf("dsort.p1@%d", rank))
	nw.OnFail(func(error) { n.Cluster().Abort() })
	finish := cfg.Observe.Attach(nw)
	defer finish()
	defer cfg.tuner.Tune(nw)()

	send := nw.AddPipeline("send",
		fg.Buffers(cfg.Buffers), fg.BufferBytes(bufBytes), fg.Rounds(sendRounds))
	send.AddStage("read", cfg.diskStage(func(ctx *fg.Ctx, b *fg.Buffer) error {
		off := int64(b.Round) * int64(bufRecs)
		cnt := int64(bufRecs)
		if off+cnt > perNode {
			cnt = perNode - off
		}
		b.N = f.Bytes(int(cnt))
		return n.Disk.ReadAt(cfg.Spec.InputName, b.Data[:b.N], off*int64(size))
	}))
	send.AddStage("permute", permuteStage(f, p, rank, bufRecs, splitters, cfg.workersFn("permute")))
	send.AddStage("send", func(ctx *fg.Ctx, b *fg.Buffer) error {
		counts := b.Meta.([]int)
		off := 0
		for d := 0; d < p; d++ {
			if counts[d] > 0 {
				comm.SendAny(d, tagData, b.Data[off:off+f.Bytes(counts[d])])
				off += f.Bytes(counts[d])
			}
		}
		if b.Round == sendRounds-1 {
			// Tell every node this sender is done (zero-length marker).
			for d := 0; d < p; d++ {
				comm.SendAny(d, tagData, nil)
			}
		}
		return nil
	})

	recv := nw.AddPipeline("receive",
		fg.Buffers(cfg.Buffers), fg.BufferBytes(bufBytes), fg.Unlimited())
	var runLens []int
	recv.AddFreeStage("receive", func(ctx *fg.Ctx) error {
		b, ok := ctx.Accept()
		if !ok {
			return fmt.Errorf("receive pipeline has no buffers")
		}
		for done := 0; done < p; {
			_, msg := comm.RecvAny(tagData)
			if len(msg) == 0 {
				done++
				continue
			}
			for len(msg) > 0 {
				c := copy(b.Data[b.N:], msg)
				b.N += c
				msg = msg[c:]
				if b.N == b.Cap() {
					ctx.Convey(b)
					if b, ok = ctx.Accept(); !ok {
						return fmt.Errorf("receive pipeline dried up")
					}
				}
			}
		}
		if b.N > 0 {
			ctx.Convey(b)
		}
		return nil
	})
	sortWorkers := cfg.workersFn("sort")
	recv.AddStage("sort", func(ctx *fg.Ctx, b *fg.Buffer) error {
		// Each full buffer becomes one sorted run, ordered by the records'
		// original (non-extended) keys. The multicore radix sort spreads
		// the buffer across the shared worker pool; while the receive
		// stage blocks on the network, the sort stage can use the idle
		// cores.
		sortalgo.SortRecordsParallel(f, b.Bytes(), b.Aux(), sortWorkers())
		return nil
	})
	// Only the disk write is retried; the run-length bookkeeping must
	// happen exactly once per round.
	writeRun := cfg.diskStage(func(ctx *fg.Ctx, b *fg.Buffer) error {
		return n.Disk.WriteAt(runsFile, b.Bytes(), int64(b.Round)*int64(bufBytes))
	})
	recv.AddStage("write", func(ctx *fg.Ctx, b *fg.Buffer) error {
		if b.Round != len(runLens) {
			return fmt.Errorf("run %d written out of order (have %d runs)", b.Round, len(runLens))
		}
		runLens = append(runLens, f.Count(b.N))
		return writeRun(ctx, b)
	})

	if err := nw.Run(); err != nil {
		return nil, err
	}
	return runLens, nil
}
