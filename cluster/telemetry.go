package cluster

// Cluster-wide telemetry plane. Single-process observability (Stats,
// Bottleneck, /status, the watchdog) answers "what is this process doing";
// a multi-process job needs the same answer for the fleet: which rank and
// stage govern the job's wall clock, which ranks are stale or dead, and —
// when a stall report fires on rank 2 — whether the cause is rank 2's disk
// or rank 5's silence.
//
// Every rank periodically snapshots its live state into a compact,
// versioned wire record (RankTelemetry) and ships it to one aggregator
// rank over a reserved control tag. Telemetry frames ride
// Transport.DeliverControl, the same never-blocks path heartbeats use, so
// a fleet drowning in data backpressure still reports; a slow or dead peer
// degrades gracefully — its entry in the fleet view goes stale, stamped
// with its age, and nothing about the job fails because of it. The
// aggregator (TelemetryAggregator, on the rank that hosts it) keeps the
// latest record per rank and derives the fleet view: per-rank staleness
// and bottleneck, a cluster-level Bottleneck naming the governing rank and
// stage, and a cross-correlated Diagnosis that joins one rank's stall
// report with the fleet's failure-detector state ("rank 2 stage merge
// blocked-on-recv; peer rank 5 is suspect").
//
// The plane also carries an on-demand pull RPC: the aggregator can fetch a
// remote rank's flight-recorder black box or a pprof CPU/heap profile,
// and does so automatically (once per stall episode) when a record arrives
// carrying a fresh stall report — so a hung fleet yields one correlated
// bundle of evidence instead of N disconnected stderr dumps.
//
// Layering: this package cannot import fg, so the fg-side state (stage
// stats, knob positions, watchdog taxonomy) enters through the Collect
// callback, which internal/harness builds from the fg metrics registry.
// The HTTP endpoints (/cluster/status.json, /cluster/metrics) live in the
// harness for the same reason.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Reserved control tags for the telemetry plane, siblings of healthTag in
// the negative tag space application tags can never reach (comm.go's FNV
// hash clears the sign bit). All of them are intercepted in
// Cluster.deliverLocal before the mailbox layer, so the data path pays one
// sign compare for the whole control plane.
const (
	// telemetryTag carries a rank's periodic RankTelemetry record.
	telemetryTag int64 = healthTag + 1
	// telemetryPullTag carries a pullRequest from the aggregator.
	telemetryPullTag int64 = healthTag + 2
	// telemetryReplyTag carries the PullReply back.
	telemetryReplyTag int64 = healthTag + 3
)

// TelemetryVersion is the wire-record version stamped into every
// RankTelemetry. A receiver drops records from a newer version than it
// understands (counted, never fatal), so mixed-version fleets degrade to
// staleness instead of misdecoding.
const TelemetryVersion = 1

// StageRecord is one stage's state in a telemetry record: the watchdog's
// classified taxonomy plus the counters the bottleneck analysis needs.
type StageRecord struct {
	Stage    string `json:"stage"`
	Pipeline string `json:"pipeline"`
	Network  string `json:"network"`
	// State is one of the fg watchdog taxonomy strings: running,
	// blocked-on-get, blocked-on-put, starved, done, idle.
	State      string `json:"state"`
	Rounds     int64  `json:"rounds"`
	QueueLen   int    `json:"queue_len"`
	QueueCap   int    `json:"queue_cap"`
	SlowPushes int64  `json:"slow_pushes,omitempty"`
	InStateNS  int64  `json:"in_state_ns"`
	WorkNS     int64  `json:"work_ns"`
	WaitNS     int64  `json:"wait_ns"`
}

// PipelineRecord is one pipeline's pool occupancy and progress.
type PipelineRecord struct {
	Name             string `json:"name"`
	Network          string `json:"network"`
	Rounds           int64  `json:"rounds"`
	PoolIdle         int    `json:"pool_idle"`
	PoolCap          int    `json:"pool_cap"`
	Buffers          int    `json:"buffers"`
	EffectiveBuffers int    `json:"effective_buffers"`
}

// KnobRecord is one autotuner worker knob's current position.
type KnobRecord struct {
	Stage   string `json:"stage"`
	Workers int    `json:"workers"`
}

// PeerRecord is one rank's liveness as the reporting rank sees it — the
// reporting process's own failure-detector state, shipped so the
// aggregator can cross-correlate a stall on rank A with A's view of B.
type PeerRecord struct {
	Rank             int   `json:"rank"`
	LastSeenUnixNano int64 `json:"last_seen_unix_nano"`
	Monitored        bool  `json:"monitored"`
	Suspect          bool  `json:"suspect,omitempty"`
	Dead             bool  `json:"dead,omitempty"`
}

// CommRecord is the reporting rank's communication counters (CommStats,
// flattened for the wire).
type CommRecord struct {
	MessagesSent  int64 `json:"messages_sent"`
	BytesSent     int64 `json:"bytes_sent"`
	MessagesRecvd int64 `json:"messages_recvd"`
	BytesRecvd    int64 `json:"bytes_recvd"`
	SendWaitNS    int64 `json:"send_wait_ns"`
	RecvWaitNS    int64 `json:"recv_wait_ns"`
	SendsBlocked  int64 `json:"sends_blocked"`
	RecvsBlocked  int64 `json:"recvs_blocked"`
	Reconnects    int64 `json:"reconnects"`
}

// BottleneckRecord names the stage governing one rank's wall clock, the
// per-rank reduction of fg's BottleneckReport.
type BottleneckRecord struct {
	Network     string  `json:"network,omitempty"`
	Stage       string  `json:"stage,omitempty"`
	Pipeline    string  `json:"pipeline,omitempty"`
	WorkNS      int64   `json:"work_ns"`
	Utilization float64 `json:"utilization"`
	Overlap     float64 `json:"overlap"`
}

// StallRecord is a watchdog stall report, reduced for the wire: the
// culprit and its classification, not the goroutine dump (that is what the
// pull RPC fetches on demand).
type StallRecord struct {
	Network         string `json:"network"`
	Culprit         string `json:"culprit"`
	CulpritPipeline string `json:"culprit_pipeline,omitempty"`
	CulpritState    string `json:"culprit_state,omitempty"`
	Reason          string `json:"reason,omitempty"`
	StalledNS       int64  `json:"stalled_ns"`
	AtUnixNano      int64  `json:"at_unix_nano"`
}

// RankTelemetry is the versioned wire record one rank publishes per
// interval: everything the fleet view needs, nothing it can pull on
// demand. The Collect callback fills the fg-side fields; the cluster fills
// V, Rank, Seq, SentUnixNano, Peers, and Comm itself.
type RankTelemetry struct {
	V            int    `json:"v"`
	Rank         int    `json:"rank"`
	Seq          int64  `json:"seq"`
	SentUnixNano int64  `json:"sent_unix_nano"`
	Program      string `json:"program,omitempty"`

	Stages    []StageRecord    `json:"stages,omitempty"`
	Pipelines []PipelineRecord `json:"pipelines,omitempty"`

	Knobs       []KnobRecord `json:"knobs,omitempty"`
	Adjustments int64        `json:"adjustments,omitempty"`

	Peers []PeerRecord `json:"peers,omitempty"`
	Comm  CommRecord   `json:"comm"`

	Bottleneck BottleneckRecord `json:"bottleneck"`
	// Stall is the rank's most recent watchdog stall report, if any; it
	// stays attached until the harness clears it (the network finished or
	// progress resumed).
	Stall *StallRecord `json:"stall,omitempty"`
}

// Pull kinds for Telemetry.Pull: what an aggregator can fetch from a
// remote rank on demand.
const (
	// PullBlackbox fetches the rank's flight-recorder dump (the
	// TelemetryConfig.Blackbox callback's output — a Chrome trace in the
	// harness).
	PullBlackbox = "blackbox"
	// PullCPUProfile captures and fetches a pprof CPU profile
	// (TelemetryConfig.CPUProfileDuration long).
	PullCPUProfile = "cpuprofile"
	// PullHeapProfile fetches a pprof heap profile.
	PullHeapProfile = "heapprofile"
)

// TelemetryConfig parameterizes a cluster's telemetry plane. The zero
// value disables it entirely: no goroutine, no frames, no hot-path cost
// beyond the sign compare the control plane already pays.
type TelemetryConfig struct {
	// Interval is the publish period; every local rank snapshots and ships
	// one record per interval. Zero disables telemetry.
	Interval time.Duration
	// Aggregator is the rank that hosts the fleet aggregator; records flow
	// toward it. Default 0.
	Aggregator int
	// StaleAfter is the record age past which the fleet view marks a rank
	// stale. Zero defaults to 3×Interval.
	StaleAfter time.Duration
	// Collect, if set, fills the fg-side fields of rank's record (stages,
	// pipelines, knobs, bottleneck, stall). It runs on the telemetry
	// goroutine once per local rank per interval and must be safe for
	// concurrent use with the run it observes. Nil leaves those fields
	// empty — comm counters and peer health still flow.
	Collect func(rank int) RankTelemetry
	// Blackbox, if set, answers PullBlackbox requests by writing the
	// rank's flight-recorder dump. Nil makes blackbox pulls error.
	Blackbox func(w io.Writer) error
	// CPUProfileDuration is how long a PullCPUProfile request samples.
	// Zero defaults to 1s.
	CPUProfileDuration time.Duration
	// PullTimeout bounds a Pull round trip (and the automatic
	// stall-triggered blackbox pull). Zero defaults to 5s.
	PullTimeout time.Duration
	// NoPullOnStall disables the automatic blackbox pull the aggregator
	// performs when a record arrives carrying a fresh stall report.
	NoPullOnStall bool
}

func (cfg TelemetryConfig) withDefaults() TelemetryConfig {
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.Interval
	}
	if cfg.CPUProfileDuration <= 0 {
		cfg.CPUProfileDuration = time.Second
	}
	if cfg.PullTimeout <= 0 {
		cfg.PullTimeout = 5 * time.Second
	}
	return cfg
}

// StartTelemetry starts the cluster's telemetry plane: one goroutine that
// publishes every local rank's record per cfg.Interval and serves pull
// requests, plus — iff cfg.Aggregator is a rank this process hosts — the
// fleet aggregator, reachable via Telemetry.Aggregator. A non-positive
// Interval returns (nil, nil): telemetry off, and every method of the nil
// *Telemetry is a safe no-op. Starting twice is an error. The plane stops
// with the cluster's Close (or on abort).
func (c *Cluster) StartTelemetry(cfg TelemetryConfig) (*Telemetry, error) {
	if cfg.Interval <= 0 {
		return nil, nil
	}
	if cfg.Aggregator < 0 || cfg.Aggregator >= c.P() {
		return nil, fmt.Errorf("cluster: telemetry aggregator rank %d outside [0, %d)", cfg.Aggregator, c.P())
	}
	t := &Telemetry{
		c:     c,
		cfg:   cfg.withDefaults(),
		pulls: make(chan pullWork, 16),
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	if c.nodes[t.cfg.Aggregator] != nil {
		t.agg = &TelemetryAggregator{t: t, ranks: map[int]*rankEntry{}}
	}
	if !c.telemetry.CompareAndSwap(nil, t) {
		return nil, errors.New("cluster: telemetry already started")
	}
	go t.run()
	return t, nil
}

// Telemetry returns the cluster's running telemetry plane, or nil.
func (c *Cluster) Telemetry() *Telemetry { return c.telemetry.Load() }

// A Telemetry is one process's end of the telemetry plane: the publisher
// for its local ranks, the pull-request server, and (on the process
// hosting the aggregator rank) the fleet aggregator.
type Telemetry struct {
	c   *Cluster
	cfg TelemetryConfig
	agg *TelemetryAggregator // non-nil iff cfg.Aggregator is hosted here

	seq     atomic.Int64
	pullSeq atomic.Int64
	pending sync.Map // pull id int64 -> chan PullReply
	pulls   chan pullWork

	published  atomic.Int64 // records shipped (or locally ingested)
	decodeErrs atomic.Int64 // inbound records dropped as undecodable/newer-version

	trackMu  sync.Mutex
	stopped  bool
	wg       sync.WaitGroup // pull handlers and auto-pulls
	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{}
}

// Aggregator returns the fleet aggregator, or nil when cfg.Aggregator is
// hosted by another process (or on a nil Telemetry).
func (t *Telemetry) Aggregator() *TelemetryAggregator {
	if t == nil {
		return nil
	}
	return t.agg
}

// Published returns how many records this process has shipped (counting
// local ingestion on the aggregator's own process).
func (t *Telemetry) Published() int64 {
	if t == nil {
		return 0
	}
	return t.published.Load()
}

// stop ends the publisher and waits for it and every in-flight pull
// handler; idempotent. Called from Cluster.Close.
func (t *Telemetry) stop() {
	if t == nil {
		return
	}
	t.trackMu.Lock()
	t.stopped = true
	t.trackMu.Unlock()
	t.stopOnce.Do(func() { close(t.stopc) })
	<-t.done
	t.wg.Wait()
}

// goTracked runs fn on a tracked goroutine unless the plane has stopped,
// so stop() can wait for every handler without racing new ones.
func (t *Telemetry) goTracked(fn func()) bool {
	t.trackMu.Lock()
	if t.stopped {
		t.trackMu.Unlock()
		return false
	}
	t.wg.Add(1)
	t.trackMu.Unlock()
	go func() {
		defer t.wg.Done()
		fn()
	}()
	return true
}

func (t *Telemetry) run() {
	defer close(t.done)
	tick := time.NewTicker(t.cfg.Interval)
	defer tick.Stop()
	// Publish immediately so the fleet view warms in one interval, not
	// two; a soak driver's first scrape should already see every rank.
	t.publishOnce()
	for {
		select {
		case <-t.stopc:
			// Graceful stop: ship one last record per local rank so the
			// retained fleet view reflects the run's end, not its warm-up. A
			// job shorter than one interval would otherwise strand the
			// aggregator with first-tick records — or, for a remote rank
			// whose control connection was still dialing at the first
			// publish, nothing at all.
			t.flushFinal()
			return
		case <-t.c.aborted:
			// The job is dead; the aggregator's last records remain
			// readable but nothing new flows.
			return
		case w := <-t.pulls:
			t.goTracked(func() { t.servePull(w) })
		case <-tick.C:
			t.publishOnce()
		}
	}
}

// flushFinal publishes every local rank's record once more, briefly
// retrying remote delivery while the control connection finishes dialing.
// Bounded (and abandoned outright on abort) so it cannot hold up Close for
// more than a few tens of milliseconds against an unreachable aggregator.
func (t *Telemetry) flushFinal() {
	for _, n := range t.c.local {
		rec := t.snapshotRank(n)
		if t.agg != nil {
			t.agg.ingestRecord(rec, time.Now())
			t.published.Add(1)
			continue
		}
		data, err := json.Marshal(&rec)
		if err != nil {
			continue
		}
		f := Frame{Src: n.rank, Dst: t.cfg.Aggregator, Tag: telemetryTag, Data: data}
		for attempt := 0; attempt < 20; attempt++ {
			if t.c.transport.DeliverControl(f) == nil {
				t.published.Add(1)
				break
			}
			select {
			case <-t.c.aborted:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
}

// publishOnce snapshots and ships one record per local rank. Errors are
// ignored: telemetry is best-effort by contract, and a record that cannot
// be delivered surfaces at the aggregator as staleness.
func (t *Telemetry) publishOnce() {
	for _, n := range t.c.local {
		rec := t.snapshotRank(n)
		if t.agg != nil {
			t.agg.ingestRecord(rec, time.Now())
			t.published.Add(1)
			continue
		}
		data, err := json.Marshal(&rec)
		if err != nil {
			continue
		}
		f := Frame{Src: n.rank, Dst: t.cfg.Aggregator, Tag: telemetryTag, Data: data}
		if t.c.transport.DeliverControl(f) == nil {
			t.published.Add(1)
		}
	}
}

// snapshotRank builds rank n's record: the Collect callback's fg-side
// fields plus the cluster's own (comm counters, peer health, stamps).
func (t *Telemetry) snapshotRank(n *Node) RankTelemetry {
	var rec RankTelemetry
	if t.cfg.Collect != nil {
		rec = t.cfg.Collect(n.rank)
	}
	rec.V = TelemetryVersion
	rec.Rank = n.rank
	rec.Seq = t.seq.Add(1)
	rec.SentUnixNano = time.Now().UnixNano()
	s := n.Stats()
	rec.Comm = CommRecord{
		MessagesSent:  s.MessagesSent,
		BytesSent:     s.BytesSent,
		MessagesRecvd: s.MessagesRecvd,
		BytesRecvd:    s.BytesRecvd,
		SendWaitNS:    int64(s.SendWait),
		RecvWaitNS:    int64(s.RecvWait),
		SendsBlocked:  s.SendsBlocked,
		RecvsBlocked:  s.RecvsBlocked,
		Reconnects:    s.Reconnects,
	}
	for _, p := range t.c.PeerHealth() {
		rec.Peers = append(rec.Peers, PeerRecord{
			Rank:             p.Rank,
			LastSeenUnixNano: p.LastSeen.UnixNano(),
			Monitored:        p.Monitored,
			Suspect:          p.Suspect,
			Dead:             p.Dead,
		})
	}
	return rec
}

// deliver handles an inbound control frame from the telemetry tag space;
// called from Cluster.deliverLocal on a transport read goroutine, so it
// must never block.
func (t *Telemetry) deliver(f Frame) {
	switch f.Tag {
	case telemetryTag:
		if t.agg == nil {
			return // not the aggregator; a stray record is dropped
		}
		var rec RankTelemetry
		if err := json.Unmarshal(f.Data, &rec); err != nil || rec.V > TelemetryVersion {
			t.decodeErrs.Add(1)
			return
		}
		t.agg.ingestRecord(rec, time.Now())
	case telemetryPullTag:
		var req pullRequest
		if err := json.Unmarshal(f.Data, &req); err != nil {
			t.decodeErrs.Add(1)
			return
		}
		select {
		case t.pulls <- pullWork{req: req, from: f.Src}:
		default:
			// A full pull queue sheds load; the requester times out.
		}
	case telemetryReplyTag:
		var rep PullReply
		if err := json.Unmarshal(f.Data, &rep); err != nil {
			t.decodeErrs.Add(1)
			return
		}
		if ch, ok := t.pending.Load(rep.ID); ok {
			select {
			case ch.(chan PullReply) <- rep:
			default:
			}
		}
	}
}

// pullRequest is the on-demand fetch request the aggregator sends.
type pullRequest struct {
	ID   int64  `json:"id"`
	Kind string `json:"kind"`
}

// pullWork is one inbound request queued for the telemetry goroutine.
type pullWork struct {
	req  pullRequest
	from int
}

// PullReply is the answer to a pull request: the artifact bytes, or the
// error that prevented capturing them.
type PullReply struct {
	ID   int64  `json:"id"`
	Kind string `json:"kind"`
	Rank int    `json:"rank"`
	Data []byte `json:"data,omitempty"`
	Err  string `json:"err,omitempty"`
}

// Pull fetches an artifact (PullBlackbox, PullCPUProfile, PullHeapProfile)
// from the process hosting rank. Local ranks are captured directly; remote
// ones go over the pull RPC, retrying DeliverControl (which refuses rather
// than blocks while a control connection dials) until the reply arrives or
// timeout elapses. A zero timeout uses TelemetryConfig.PullTimeout.
func (t *Telemetry) Pull(rank int, kind string, timeout time.Duration) ([]byte, error) {
	if t == nil {
		return nil, errors.New("cluster: telemetry not running")
	}
	if rank < 0 || rank >= t.c.P() {
		return nil, fmt.Errorf("cluster: pull from invalid rank %d", rank)
	}
	if timeout <= 0 {
		timeout = t.cfg.PullTimeout
	}
	if t.c.nodes[rank] != nil {
		return t.capture(kind)
	}
	id := t.pullSeq.Add(1)
	ch := make(chan PullReply, 1)
	t.pending.Store(id, ch)
	defer t.pending.Delete(id)

	data, err := json.Marshal(pullRequest{ID: id, Kind: kind})
	if err != nil {
		return nil, err
	}
	src := t.c.local[0].rank
	f := Frame{Src: src, Dst: rank, Tag: telemetryPullTag, Data: data}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	retry := time.NewTicker(50 * time.Millisecond)
	defer retry.Stop()
	sent := t.c.transport.DeliverControl(f) == nil
	for {
		select {
		case rep := <-ch:
			if rep.Err != "" {
				return nil, fmt.Errorf("cluster: pull %s from rank %d: %s", kind, rank, rep.Err)
			}
			return rep.Data, nil
		case <-deadline.C:
			return nil, fmt.Errorf("cluster: pull %s from rank %d: timed out after %v", kind, rank, timeout)
		case <-t.stopc:
			return nil, errTransportClosed
		case <-t.c.aborted:
			return nil, ErrAborted
		case <-retry.C:
			// DeliverControl refuses while the control connection dials in
			// the background; keep knocking until the reply window closes.
			if !sent {
				sent = t.c.transport.DeliverControl(f) == nil
			}
		}
	}
}

// servePull captures the requested artifact and ships the reply back,
// best-effort, on a tracked goroutine (a CPU profile takes seconds).
func (t *Telemetry) servePull(w pullWork) {
	rep := PullReply{ID: w.req.ID, Kind: w.req.Kind, Rank: t.c.local[0].rank}
	data, err := t.capture(w.req.Kind)
	if err != nil {
		rep.Err = err.Error()
	} else {
		rep.Data = data
	}
	buf, err := json.Marshal(&rep)
	if err != nil {
		return
	}
	f := Frame{Src: rep.Rank, Dst: w.from, Tag: telemetryReplyTag, Data: buf}
	deadline := time.After(t.cfg.PullTimeout)
	for t.c.transport.DeliverControl(f) != nil {
		select {
		case <-t.stopc:
			return
		case <-t.c.aborted:
			return
		case <-deadline:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// capture produces one artifact locally.
func (t *Telemetry) capture(kind string) ([]byte, error) {
	switch kind {
	case PullBlackbox:
		if t.cfg.Blackbox == nil {
			return nil, errors.New("no blackbox source configured")
		}
		var buf bytes.Buffer
		if err := t.cfg.Blackbox(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case PullCPUProfile:
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			return nil, err
		}
		select {
		case <-time.After(t.cfg.CPUProfileDuration):
		case <-t.stopc:
		}
		pprof.StopCPUProfile()
		return buf.Bytes(), nil
	case PullHeapProfile:
		p := pprof.Lookup("heap")
		if p == nil {
			return nil, errors.New("no heap profile available")
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 0); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("unknown pull kind %q", kind)
	}
}

// A TelemetryAggregator maintains the fleet view on the rank that hosts
// it: the latest record per rank, each stamped with its arrival time so
// staleness is the aggregator's clock against its own observation — no
// cross-process clock comparison.
type TelemetryAggregator struct {
	t *Telemetry

	mu    sync.Mutex
	ranks map[int]*rankEntry
}

type rankEntry struct {
	rec     RankTelemetry
	arrived time.Time

	// Stall-triggered evidence: the blackbox auto-pulled when a record
	// carrying a fresh stall arrived, keyed by the stall's timestamp so
	// one episode pulls once.
	pulledStall int64
	pulling     bool
	blackbox    []byte
	blackboxErr string
}

// ingestRecord stores the freshest record per rank and, when it carries a
// stall report not yet investigated, kicks off the automatic blackbox
// pull. Called from the local publisher or a transport read goroutine.
func (a *TelemetryAggregator) ingestRecord(rec RankTelemetry, now time.Time) {
	a.mu.Lock()
	e := a.ranks[rec.Rank]
	if e == nil {
		e = &rankEntry{}
		a.ranks[rec.Rank] = e
	}
	if rec.Seq >= e.rec.Seq {
		e.rec = rec
		e.arrived = now
	}
	var pull bool
	if rec.Stall != nil && !a.t.cfg.NoPullOnStall &&
		rec.Stall.AtUnixNano > e.pulledStall && !e.pulling {
		e.pulledStall = rec.Stall.AtUnixNano
		e.pulling = true
		pull = true
	}
	a.mu.Unlock()
	if pull {
		rank := rec.Rank
		started := a.t.goTracked(func() {
			data, err := a.t.Pull(rank, PullBlackbox, 0)
			a.mu.Lock()
			defer a.mu.Unlock()
			if e := a.ranks[rank]; e != nil {
				e.pulling = false
				e.blackbox = data
				e.blackboxErr = ""
				if err != nil {
					e.blackboxErr = err.Error()
				}
			}
		})
		if !started {
			a.mu.Lock()
			e.pulling = false
			a.mu.Unlock()
		}
	}
}

// StallBlackbox returns the blackbox auto-pulled for rank's most recent
// stall episode, or the error that prevented fetching it.
func (a *TelemetryAggregator) StallBlackbox(rank int) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := a.ranks[rank]
	if e == nil || (e.blackbox == nil && e.blackboxErr == "") {
		return nil, fmt.Errorf("cluster: no stall blackbox for rank %d", rank)
	}
	if e.blackboxErr != "" {
		return nil, errors.New(e.blackboxErr)
	}
	return e.blackbox, nil
}

// RankStatus is one rank's entry in the fleet view.
type RankStatus struct {
	Rank int `json:"rank"`
	// Reported is false for a rank the aggregator has never heard from.
	Reported bool `json:"reported"`
	// AgeNS is how long ago the rank's latest record arrived; Stale marks
	// it older than StaleAfter. A stale or missing rank degrades the view,
	// never the job.
	AgeNS int64 `json:"age_ns"`
	Stale bool  `json:"stale,omitempty"`
	// Suspect and Dead are the aggregator process's own failure-detector
	// view of this rank.
	Suspect bool `json:"suspect,omitempty"`
	Dead    bool `json:"dead,omitempty"`
	// Bottleneck is the rank's own governing stage, from its record.
	Bottleneck BottleneckRecord `json:"bottleneck"`
	Stall      *StallRecord     `json:"stall,omitempty"`
	// Record is the rank's full latest wire record.
	Record *RankTelemetry `json:"record,omitempty"`
}

// ClusterBottleneck names the rank and stage governing the whole job: the
// fleet-wide argmax of per-rank governing work. Rank is -1 when no rank
// has reported any stage work.
type ClusterBottleneck struct {
	Rank        int     `json:"rank"`
	Network     string  `json:"network,omitempty"`
	Stage       string  `json:"stage,omitempty"`
	Pipeline    string  `json:"pipeline,omitempty"`
	WorkNS      int64   `json:"work_ns"`
	Utilization float64 `json:"utilization"`
}

func (b ClusterBottleneck) String() string {
	if b.Rank < 0 {
		return "cluster bottleneck: (no stage work reported)"
	}
	return fmt.Sprintf("cluster bottleneck: rank %d stage %q on %q (%s) work=%v util=%.0f%%",
		b.Rank, b.Stage, b.Pipeline, b.Network,
		time.Duration(b.WorkNS).Round(time.Millisecond), 100*b.Utilization)
}

// ClusterStatus is the fleet view document served at /cluster/status.json.
type ClusterStatus struct {
	V              int          `json:"v"`
	P              int          `json:"p"`
	AggregatorRank int          `json:"aggregator_rank"`
	IntervalNS     int64        `json:"interval_ns"`
	StaleAfterNS   int64        `json:"stale_after_ns"`
	AtUnixNano     int64        `json:"at_unix_nano"`
	Aborted        bool         `json:"aborted,omitempty"`
	Ranks          []RankStatus `json:"ranks"`
	// Bottleneck names the governing rank and stage for the whole job.
	Bottleneck ClusterBottleneck `json:"bottleneck"`
	// Diagnosis cross-correlates stall reports with the fleet's
	// failure-detector state, one line per finding.
	Diagnosis []string `json:"diagnosis,omitempty"`
}

// Status assembles the fleet view: every rank's staleness, bottleneck, and
// stall state, the cluster-level bottleneck, and the cross-correlated
// diagnosis. Safe to call at any time from any goroutine.
func (a *TelemetryAggregator) Status() ClusterStatus {
	now := time.Now()
	st := ClusterStatus{
		V:              TelemetryVersion,
		P:              a.t.c.P(),
		AggregatorRank: a.t.cfg.Aggregator,
		IntervalNS:     int64(a.t.cfg.Interval),
		StaleAfterNS:   int64(a.t.cfg.StaleAfter),
		AtUnixNano:     now.UnixNano(),
		Aborted:        a.t.c.Aborted(),
	}
	health := map[int]PeerStatus{}
	for _, p := range a.t.c.PeerHealth() {
		health[p.Rank] = p
	}
	a.mu.Lock()
	for r := 0; r < st.P; r++ {
		rs := RankStatus{Rank: r}
		if h, ok := health[r]; ok && h.Monitored {
			rs.Suspect = h.Suspect
			rs.Dead = h.Dead
		}
		if e, ok := a.ranks[r]; ok {
			rec := e.rec
			rs.Reported = true
			rs.AgeNS = int64(now.Sub(e.arrived))
			rs.Stale = rs.AgeNS > int64(a.t.cfg.StaleAfter)
			rs.Bottleneck = rec.Bottleneck
			rs.Stall = rec.Stall
			rs.Record = &rec
		}
		st.Ranks = append(st.Ranks, rs)
	}
	a.mu.Unlock()
	st.Bottleneck = clusterBottleneck(st.Ranks)
	st.Diagnosis = diagnoseFleet(st.Ranks)
	return st
}

// Bottleneck returns the cluster-level governing rank and stage — the
// paper's governing-stage quantity lifted to the fleet.
func (a *TelemetryAggregator) Bottleneck() ClusterBottleneck {
	return a.Status().Bottleneck
}

// clusterBottleneck picks the governing rank: the argmax of per-rank
// governing-stage work, preferring fresh ranks (a stale record may
// describe a rank that died mid-climb, but it is still the best evidence
// available when nothing fresh beats it).
func clusterBottleneck(ranks []RankStatus) ClusterBottleneck {
	best := ClusterBottleneck{Rank: -1}
	pick := func(onlyFresh bool) {
		for _, rs := range ranks {
			if !rs.Reported || rs.Bottleneck.Stage == "" {
				continue
			}
			if onlyFresh && rs.Stale {
				continue
			}
			if rs.Bottleneck.WorkNS > best.WorkNS || best.Rank < 0 {
				best = ClusterBottleneck{
					Rank:        rs.Rank,
					Network:     rs.Bottleneck.Network,
					Stage:       rs.Bottleneck.Stage,
					Pipeline:    rs.Bottleneck.Pipeline,
					WorkNS:      rs.Bottleneck.WorkNS,
					Utilization: rs.Bottleneck.Utilization,
				}
			}
		}
	}
	pick(true)
	if best.Rank < 0 {
		pick(false)
	}
	return best
}

// diagnoseFleet joins each rank's stall report with the liveness evidence:
// the stalled rank's own peer view (who it thinks is suspect or dead) and
// the aggregator's staleness stamps. The output is the cross-correlated
// story a hung fleet owes its operator — "rank 2 stage merge
// blocked-on-recv; peer rank 5 is suspect" — instead of N disconnected
// stderr dumps.
func diagnoseFleet(ranks []RankStatus) []string {
	var out []string
	for _, rs := range ranks {
		if rs.Stall != nil {
			verb := "stalled"
			switch rs.Stall.CulpritState {
			case "blocked-on-put":
				verb = "blocked-on-send"
				if rs.Record != nil && rs.Record.Comm.RecvsBlocked > 0 && rs.Record.Comm.SendsBlocked == 0 {
					verb = "blocked-on-recv"
				}
			case "blocked-on-get", "starved":
				verb = "blocked-on-recv"
			}
			line := fmt.Sprintf("rank %d stage %q %s for %v (%s)",
				rs.Rank, rs.Stall.Culprit, verb,
				time.Duration(rs.Stall.StalledNS).Round(time.Millisecond), rs.Stall.Network)
			if suspects := suspectPeers(rs); suspects != "" {
				line += " — " + suspects
			}
			out = append(out, line)
		}
		if rs.Dead {
			out = append(out, fmt.Sprintf("rank %d is declared dead by the failure detector", rs.Rank))
		} else if rs.Suspect {
			out = append(out, fmt.Sprintf("rank %d is suspect (silent past the suspect threshold)", rs.Rank))
		} else if rs.Reported && rs.Stale {
			out = append(out, fmt.Sprintf("rank %d telemetry is stale (%v old) — slow, partitioned, or dead",
				rs.Rank, time.Duration(rs.AgeNS).Round(time.Millisecond)))
		} else if !rs.Reported {
			out = append(out, fmt.Sprintf("rank %d has never reported telemetry", rs.Rank))
		}
	}
	return out
}

// suspectPeers renders the stalled rank's own view of who went quiet.
func suspectPeers(rs RankStatus) string {
	if rs.Record == nil {
		return ""
	}
	var sus, dead []string
	for _, p := range rs.Record.Peers {
		if !p.Monitored {
			continue
		}
		if p.Dead {
			dead = append(dead, strconv.Itoa(p.Rank))
		} else if p.Suspect {
			sus = append(sus, strconv.Itoa(p.Rank))
		}
	}
	switch {
	case len(dead) > 0 && len(sus) > 0:
		return fmt.Sprintf("it sees rank(s) %s dead and %s suspect", join(dead), join(sus))
	case len(dead) > 0:
		return fmt.Sprintf("it sees rank(s) %s dead", join(dead))
	case len(sus) > 0:
		return fmt.Sprintf("it sees rank(s) %s suspect", join(sus))
	}
	return ""
}

func join(s []string) string {
	sort.Strings(s)
	out := ""
	for i, v := range s {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// EmitMetrics feeds the fleet view to emit as rank-labeled samples — the
// /cluster/metrics collector. The signature matches what
// fg.MetricsRegistry.RegisterFunc accepts, without this package importing
// fg. Samples carry the fleet_ prefix to distinguish the aggregated view
// from each process's node-local fg_/cluster_ series.
func (a *TelemetryAggregator) EmitMetrics(emit func(name string, labels map[string]string, value float64)) {
	st := a.Status()
	rl := func(rank int) map[string]string {
		return map[string]string{"rank": strconv.Itoa(rank)}
	}
	for _, rs := range st.Ranks {
		fresh := 0.0
		if rs.Reported && !rs.Stale {
			fresh = 1
		}
		emit("fleet_rank_fresh", rl(rs.Rank), fresh)
		emit("fleet_rank_age_seconds", rl(rs.Rank), time.Duration(rs.AgeNS).Seconds())
		stalled := 0.0
		if rs.Stall != nil {
			stalled = 1
		}
		emit("fleet_rank_stalled", rl(rs.Rank), stalled)
		suspect, dead := 0.0, 0.0
		if rs.Suspect {
			suspect = 1
		}
		if rs.Dead {
			dead = 1
		}
		emit("fleet_rank_suspect", rl(rs.Rank), suspect)
		emit("fleet_rank_dead", rl(rs.Rank), dead)
		if rs.Record == nil {
			continue
		}
		rec := rs.Record
		emit("fleet_rank_telemetry_seq", rl(rs.Rank), float64(rec.Seq))
		emit("fleet_comm_messages_sent_total", rl(rs.Rank), float64(rec.Comm.MessagesSent))
		emit("fleet_comm_bytes_sent_total", rl(rs.Rank), float64(rec.Comm.BytesSent))
		emit("fleet_comm_messages_recvd_total", rl(rs.Rank), float64(rec.Comm.MessagesRecvd))
		emit("fleet_comm_bytes_recvd_total", rl(rs.Rank), float64(rec.Comm.BytesRecvd))
		emit("fleet_comm_sends_blocked", rl(rs.Rank), float64(rec.Comm.SendsBlocked))
		emit("fleet_comm_recvs_blocked", rl(rs.Rank), float64(rec.Comm.RecvsBlocked))
		emit("fleet_comm_reconnects_total", rl(rs.Rank), float64(rec.Comm.Reconnects))
		emit("fleet_autotune_adjustments_total", rl(rs.Rank), float64(rec.Adjustments))
		for _, k := range rec.Knobs {
			emit("fleet_autotune_workers",
				map[string]string{"rank": strconv.Itoa(rs.Rank), "stage": k.Stage}, float64(k.Workers))
		}
		for _, s := range rec.Stages {
			l := map[string]string{
				"rank": strconv.Itoa(rs.Rank), "network": s.Network, "stage": s.Stage,
			}
			emit("fleet_stage_work_seconds_total", l, time.Duration(s.WorkNS).Seconds())
			emit("fleet_stage_rounds_total", l, float64(s.Rounds))
			emit("fleet_stage_queue_len", l, float64(s.QueueLen))
		}
		emit("fleet_bottleneck_work_seconds", rl(rs.Rank), time.Duration(rs.Bottleneck.WorkNS).Seconds())
	}
	for _, rs := range st.Ranks {
		governing := 0.0
		if rs.Rank == st.Bottleneck.Rank {
			governing = 1
		}
		emit("fleet_bottleneck_governing", rl(rs.Rank), governing)
	}
	emit("fleet_telemetry_decode_errors_total", map[string]string{}, float64(a.t.decodeErrs.Load()))
}
