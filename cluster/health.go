package cluster

// Heartbeat-based failure detection. The fail-fast machinery of the abort
// path handles the failures the transport can see: a dial that is refused,
// a write that errors. What it cannot see is a peer that simply stops — a
// kill -9'd process whose kernel quietly resets nothing, a partitioned
// switch port that blackholes bytes. Without liveness detection those
// failures surface as stalls, and a stall report names a symptom ("recv
// blocked 30s"), not a cause. The health monitor closes that gap: every
// rank beats every other rank on a reserved control tag at a fixed
// interval, a per-peer last-seen clock ages the silence, and a peer silent
// past the dead threshold is declared dead — the cluster aborts with a
// PeerDeathError, so every blocked Send and Recv returns a prompt
// CommError wrapping ErrPeerDead instead of waiting for a watchdog to
// guess.
//
// Heartbeats are multiplexed over the Transport seam as ordinary frames
// with the reserved healthTag, so any conforming backend carries them; they
// are intercepted in Cluster.deliverLocal before the mailbox layer, so they
// cost the data path one tag compare and no allocation. Sends go through
// Transport.DeliverControl, which must not block on data backpressure: a
// receiver that is merely slow (full mailboxes, saturated byte budget) must
// keep proving it is alive, or backpressure would read as death.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPeerDead is wrapped by the CommError that releases blocked operations
// when the failure detector declares a peer dead. Match it with errors.Is
// to tell node death from a plain abort; the full story (which rank, how
// long silent) is the PeerDeathError in the same chain.
var ErrPeerDead = errors.New("cluster: peer declared dead")

// A PeerDeathError is the abort cause recorded when the failure detector
// gives up on a peer. It wraps ErrPeerDead, not ErrAborted, so
// Cluster.Run's root-cause selection attributes the job's failure to the
// dead peer rather than to the teardown it triggered.
type PeerDeathError struct {
	// Rank is the peer declared dead.
	Rank int
	// Silence is how long the peer had been silent when declared.
	Silence time.Duration
}

func (e *PeerDeathError) Error() string {
	return fmt.Sprintf("cluster: rank %d declared dead after %v without a heartbeat",
		e.Rank, e.Silence.Round(time.Millisecond))
}

func (e *PeerDeathError) Unwrap() error { return ErrPeerDead }

// healthTag is the reserved control tag heartbeat frames travel under.
// Application tags are never negative (user-facing tags pass through the
// FNV hash in comm.go, which clears the sign bit), so the mailbox layer
// can claim the negative tag space for transport control.
const healthTag int64 = -1 << 62

// HealthConfig parameterizes the failure detector. The zero value disables
// it entirely: no goroutine, no frames, no hot-path cost beyond a tag
// compare that never matches.
type HealthConfig struct {
	// Interval is the heartbeat period; every local rank beats every other
	// rank once per interval. Zero disables failure detection.
	Interval time.Duration
	// SuspectAfter is the silence after which a peer is marked suspect in
	// PeerHealth and the metrics — observable but with no enforcement.
	// Zero defaults to 3×Interval.
	SuspectAfter time.Duration
	// DeadAfter is the silence after which a peer is declared dead and the
	// job aborted with a PeerDeathError. Zero defaults to 10×Interval.
	DeadAfter time.Duration
	// StartupGrace extends DeadAfter for peers never heard from at all, so
	// the processes of one job may start (or a supervised replacement may
	// be respawned) in any order without being declared dead on arrival.
	// Zero defaults to the larger of DeadAfter and 10 seconds.
	StartupGrace time.Duration
}

// withDefaults fills the derived thresholds.
func (h HealthConfig) withDefaults() HealthConfig {
	if h.SuspectAfter <= 0 {
		h.SuspectAfter = 3 * h.Interval
	}
	if h.DeadAfter <= 0 {
		h.DeadAfter = 10 * h.Interval
	}
	if h.StartupGrace <= 0 {
		h.StartupGrace = 10 * time.Second
		if h.DeadAfter > h.StartupGrace {
			h.StartupGrace = h.DeadAfter
		}
	}
	return h
}

// PeerStatus is one rank's liveness as this process sees it.
type PeerStatus struct {
	Rank     int
	LastSeen time.Time
	// Monitored reports whether this rank is a death-detection candidate
	// here (remote, or locally partitioned). Unmonitored ranks are this
	// process's own: they cannot die without taking the detector with them.
	Monitored bool
	Suspect   bool
	Dead      bool
}

// PeerHealth returns every rank's liveness as this process sees it, or nil
// when failure detection is disabled.
func (c *Cluster) PeerHealth() []PeerStatus {
	if c.health == nil {
		return nil
	}
	return c.health.snapshot()
}

// healthMonitor is the per-process failure detector: one goroutine that
// beats on every tick and ages every monitored peer's silence.
type healthMonitor struct {
	c   *Cluster
	cfg HealthConfig

	lastSeen []atomic.Int64 // unix nanos of the last heartbeat from each rank
	heard    []atomic.Bool  // whether any heartbeat ever arrived from each rank
	suspect  []atomic.Bool
	dead     []atomic.Bool

	sent  atomic.Int64
	recvd atomic.Int64

	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{}
}

func newHealthMonitor(c *Cluster, cfg HealthConfig) *healthMonitor {
	p := c.P()
	return &healthMonitor{
		c:        c,
		cfg:      cfg,
		lastSeen: make([]atomic.Int64, p),
		heard:    make([]atomic.Bool, p),
		suspect:  make([]atomic.Bool, p),
		dead:     make([]atomic.Bool, p),
		stopc:    make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (m *healthMonitor) start() {
	now := time.Now().UnixNano()
	for i := range m.lastSeen {
		m.lastSeen[i].Store(now)
	}
	go m.run()
}

// stop ends the monitor and waits for its goroutine; idempotent.
func (m *healthMonitor) stop() {
	m.stopOnce.Do(func() { close(m.stopc) })
	<-m.done
}

func (m *healthMonitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopc:
			return
		case <-m.c.aborted:
			// The job is dead either way; beating a corpse helps nobody.
			return
		case <-t.C:
			m.beat()
			m.check()
		}
	}
}

// beat sends one heartbeat from every local rank to every other rank.
// Errors are ignored: a missed beat is exactly what the receiving end's
// detector exists to notice.
func (m *healthMonitor) beat() {
	for _, src := range m.c.local {
		for dst := 0; dst < m.c.P(); dst++ {
			if dst == src.rank {
				continue
			}
			f := Frame{Src: src.rank, Dst: dst, Tag: healthTag}
			if err := m.c.transport.DeliverControl(f); err == nil {
				m.sent.Add(1)
			}
		}
	}
}

// observe records a heartbeat from rank src; called from deliverLocal on
// the receiving transport's goroutine. It must stay allocation-free: it is
// the only heartbeat cost adjacent to the data path.
func (m *healthMonitor) observe(src int) {
	m.recvd.Add(1)
	m.heard[src].Store(true)
	m.lastSeen[src].Store(time.Now().UnixNano())
}

// check ages every monitored peer's silence, marking suspects and
// declaring at most one death (the abort it triggers ends the job; naming
// one culprit beats naming everyone the teardown swept up).
func (m *healthMonitor) check() {
	now := time.Now()
	for r := 0; r < m.c.P(); r++ {
		if !m.monitored(r) {
			// A rank that stopped being monitored (a healed partition) sheds
			// any suspicion accrued while it was cut off.
			m.suspect[r].Store(false)
			continue
		}
		silence := now.Sub(time.Unix(0, m.lastSeen[r].Load()))
		deadAfter := m.cfg.DeadAfter
		if !m.heard[r].Load() && m.cfg.StartupGrace > deadAfter {
			deadAfter = m.cfg.StartupGrace
		}
		if silence >= deadAfter {
			m.declareDead(r, silence)
			return
		}
		m.suspect[r].Store(silence >= m.cfg.SuspectAfter)
	}
}

// monitored reports whether rank r is a death-detection candidate for this
// process: hosted elsewhere, or hosted here but partitioned away (the
// chaos seam that lets single-process tests exercise peer death).
func (m *healthMonitor) monitored(r int) bool {
	return m.c.nodes[r] == nil || m.c.isPartitioned(r)
}

func (m *healthMonitor) declareDead(r int, silence time.Duration) {
	m.dead[r].Store(true)
	m.suspect[r].Store(false)
	err := &PeerDeathError{Rank: r, Silence: silence}
	if hook := m.c.onPeerDeath.Load(); hook != nil {
		(*hook)(r, err)
	}
	m.c.AbortWith(err)
}

func (m *healthMonitor) snapshot() []PeerStatus {
	out := make([]PeerStatus, m.c.P())
	for r := range out {
		out[r] = PeerStatus{
			Rank:      r,
			LastSeen:  time.Unix(0, m.lastSeen[r].Load()),
			Monitored: m.monitored(r),
			Suspect:   m.suspect[r].Load(),
			Dead:      m.dead[r].Load(),
		}
	}
	return out
}

// emitMetrics reports the detector's counters; called from
// Cluster.EmitMetrics.
func (m *healthMonitor) emitMetrics(emit func(name string, labels map[string]string, value float64)) {
	suspects, deaths := 0, 0
	for r := 0; r < m.c.P(); r++ {
		if m.suspect[r].Load() {
			suspects++
		}
		if m.dead[r].Load() {
			deaths++
		}
	}
	none := map[string]string{}
	emit("cluster_heartbeats_sent_total", none, float64(m.sent.Load()))
	emit("cluster_heartbeats_recvd_total", none, float64(m.recvd.Load()))
	emit("cluster_peers_suspect", none, float64(suspects))
	emit("cluster_peers_dead", none, float64(deaths))
	// Per-peer rows, so a scrape of any one rank shows which peer went
	// quiet, not just that one did.
	now := time.Now()
	for _, p := range m.snapshot() {
		if !p.Monitored {
			continue
		}
		l := func() map[string]string {
			return map[string]string{"peer": fmt.Sprintf("%d", p.Rank)}
		}
		emit("fg_peer_last_seen_seconds", l(), now.Sub(p.LastSeen).Seconds())
		emit("fg_peer_suspect", l(), b2f(p.Suspect))
		emit("fg_peer_dead", l(), b2f(p.Dead))
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
