package cluster

import (
	"errors"
	"testing"
	"time"
)

// TestAbortReleasesBlockedRecv: node 1 blocks forever in Recv while node 0
// fails. Run must auto-abort the cluster, release the blocked receive, and
// return node 0's root-cause error — not the abort it triggered.
func TestAbortReleasesBlockedRecv(t *testing.T) {
	sentinel := errors.New("node 0 gave up")
	c := New(Config{Nodes: 2})
	start := time.Now()
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			time.Sleep(10 * time.Millisecond) // let node 1 reach the Recv
			return sentinel
		}
		n.Recv(0, 1) // nothing will ever arrive
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v, want root cause %v", err, sentinel)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("abort took %v to release the blocked Recv", d)
	}
}

// TestAbortReleasesBlockedRecvAny mirrors the above for the any-source
// receive, which dsort's receive pipelines block in.
func TestAbortReleasesBlockedRecvAny(t *testing.T) {
	sentinel := errors.New("node 0 gave up")
	c := New(Config{Nodes: 2})
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			return sentinel
		}
		n.RecvAny(1)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v, want root cause %v", err, sentinel)
	}
}

// TestAbortReleasesBlockedSend: with a tiny mailbox, a sender blocks on a
// full mailbox; an abort must release it too.
func TestAbortReleasesBlockedSend(t *testing.T) {
	sentinel := errors.New("receiver died")
	c := New(Config{Nodes: 2, MailboxDepth: 1})
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			n.Send(1, 1, []byte("a")) // fills the depth-1 mailbox
			n.Send(1, 1, []byte("b")) // blocks: nobody receives
			return nil
		}
		time.Sleep(10 * time.Millisecond)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v, want root cause %v", err, sentinel)
	}
}

// TestSetFaultKillsOperation: an injected fault surfaces as a CommError
// panic, which Cluster.Run converts into an error preserving the chain.
func TestSetFaultKillsOperation(t *testing.T) {
	sentinel := errors.New("injected send fault")
	c := New(Config{Nodes: 2})
	c.Node(0).SetFault(func(op string, peer, nbytes int) error {
		if op == "send" {
			return sentinel
		}
		return nil
	})
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			n.Send(1, 1, []byte("x"))
			return nil
		}
		n.Recv(0, 1)
		return nil
	})
	var ce *CommError
	if !errors.As(err, &ce) {
		t.Fatalf("Run = %v, want a CommError in the chain", err)
	}
	if ce.Op != "send" || ce.Rank != 0 || ce.Peer != 1 {
		t.Errorf("CommError = %+v, want op=send rank=0 peer=1", ce)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("injected error lost from the chain: %v", err)
	}
}

// TestRunReturnsLowestRankRootCause: when several nodes fail, the reported
// error is the lowest-ranked non-abort error, so the root cause is stable.
func TestRunReturnsLowestRankRootCause(t *testing.T) {
	errA := errors.New("node 1 failed")
	c := New(Config{Nodes: 3})
	err := c.Run(func(n *Node) error {
		switch n.Rank() {
		case 1:
			return errA
		case 2:
			n.Recv(0, 9) // released by abort, reports ErrAborted
			return nil
		}
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("Run = %v, want %v", err, errA)
	}
	if errors.Is(err, ErrAborted) {
		t.Errorf("abort fallout reported instead of the root cause: %v", err)
	}
}
