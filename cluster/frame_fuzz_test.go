package cluster

import (
	"bytes"
	"testing"
)

// FuzzFrameCodec drives the TCP wire codec from both directions. Structured
// inputs prove the round trip (encode → decode reproduces every field);
// arbitrary byte strings prove the decoder is total — it either rejects
// cleanly with a *frameError or accepts a frame whose re-encoding is
// byte-identical to what it consumed (the canonical-form property, which is
// what makes "decoder accepts it" a safe definition of "well-formed").
func FuzzFrameCodec(f *testing.F) {
	// Structured seeds: kinds, flags, boundary ranks, empty and non-empty
	// payloads, plus raw junk for the decoder direction.
	f.Add(appendFrame(nil, frameKindData, Frame{Src: 0, Dst: 1, Tag: 7, Xfer: 1, Data: []byte("hello")}))
	f.Add(appendFrame(nil, frameKindData, Frame{Src: 3, Dst: 3, Tag: -1, Xfer: 1<<40 | 9, Any: true, Data: nil}))
	f.Add(appendFrame(nil, frameKindData, Frame{Src: 1<<31 - 1, Dst: 0, Tag: 1 << 62, Xfer: -5, Data: bytes.Repeat([]byte{0xAB}, 300)}))
	f.Add(appendFrame(nil, frameKindAbort, Frame{Src: 2, Dst: 0}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 26, 3})                           // unknown kind
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0, 0, 0}) // absurd length
	f.Add(bytes.Repeat([]byte{0}, frameHeaderLen))          // kind 0, all-zero header

	f.Fuzz(func(t *testing.T, raw []byte) {
		kind, fr, n, err := decodeFrame(raw)
		if err != nil {
			// A rejected input must not have consumed anything.
			if n != 0 {
				t.Fatalf("decode error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < frameHeaderLen || n > len(raw) {
			t.Fatalf("decoded %d bytes of a %d-byte input", n, len(raw))
		}
		// Canonical form: re-encoding the accepted frame reproduces exactly
		// the bytes the decoder consumed.
		re := appendFrame(nil, kind, fr)
		if !bytes.Equal(re, raw[:n]) {
			t.Fatalf("re-encode mismatch:\n consumed %x\n re-encoded %x", raw[:n], re)
		}
		// And the re-encoding decodes back to the same frame (round trip).
		kind2, fr2, n2, err := decodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if kind2 != kind || n2 != n || fr2.Src != fr.Src || fr2.Dst != fr.Dst ||
			fr2.Tag != fr.Tag || fr2.Xfer != fr.Xfer || fr2.Any != fr.Any ||
			!bytes.Equal(fr2.Data, fr.Data) {
			t.Fatalf("round trip changed the frame: %+v -> %+v", fr, fr2)
		}
		// Invariants the transport relies on.
		if kind == frameKindAbort && len(fr.Data) != 0 {
			t.Fatal("decoder accepted an abort frame with a payload")
		}
		if fr.Src < 0 || fr.Dst < 0 {
			t.Fatalf("decoder produced negative rank: src=%d dst=%d", fr.Src, fr.Dst)
		}
	})
}
