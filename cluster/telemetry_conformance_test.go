package cluster

// Telemetry-plane contract tests, run per backend from the transport
// conformance table: control-tag frames are FIFO-independent of data
// traffic, never block behind a full per-peer backpressure budget, and are
// cleanly released on abort and shutdown. These drive
// Transport.DeliverControl directly because an all-local cluster's
// publisher short-circuits to the aggregator without touching the wire.

import (
	"encoding/json"
	"io"
	"testing"
	"time"
)

// conformTelemetryBackpressure: with the data path saturated — a sender
// parked on a full mailbox and an exhausted in-flight budget — a telemetry
// control frame still goes through, promptly, and reaches the aggregator.
// This is the plane's core promise: a fleet drowning in backpressure still
// reports.
func conformTelemetryBackpressure(t *testing.T, kind string) {
	c := openConformance(t, kind, 2, 1, 64)
	tel, err := c.StartTelemetry(TelemetryConfig{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	// Saturate the data path 0->1: nobody receives, so the sender parks on
	// backpressure and stays parked until the abort at the end.
	released := make(chan struct{})
	go func() {
		defer close(released)
		expectAbortErr(t, "blocked data send", func() {
			n := c.Node(0)
			payload := make([]byte, 1024)
			for {
				n.Send(1, 9, payload)
			}
		})
	}()
	time.Sleep(100 * time.Millisecond)

	// Ship a telemetry record 1->0 over the control path the way a remote
	// publisher would. Every DeliverControl call must return promptly —
	// refusing (TCP control connection still dialing) is allowed, blocking
	// is not.
	rec := RankTelemetry{V: TelemetryVersion, Rank: 1, Seq: 1 << 40, Program: "conformance"}
	data, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	f := Frame{Src: 1, Dst: 0, Tag: telemetryTag, Data: data}
	deadline := time.Now().Add(10 * time.Second)
	for {
		start := time.Now()
		err := c.transport.DeliverControl(f)
		if blocked := time.Since(start); blocked > 2*time.Second {
			t.Fatalf("DeliverControl blocked %v behind data backpressure", blocked)
		}
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("control frame never delivered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The frame must reach the aggregator despite the saturated data path.
	agg := tel.Aggregator()
	ingestDeadline := time.Now().Add(5 * time.Second)
	for {
		rs := agg.Status().Ranks[1]
		if rs.Reported && rs.Record.Seq == 1<<40 {
			if rs.Record.Program != "conformance" {
				t.Fatalf("record corrupted: program %q", rs.Record.Program)
			}
			break
		}
		if time.Now().After(ingestDeadline) {
			t.Fatal("control frame delivered but never ingested by the aggregator")
		}
		time.Sleep(5 * time.Millisecond)
	}

	c.Abort()
	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not release the blocked data sender")
	}
}

// conformTelemetryAbort: an aborted job stops the publisher promptly, and
// the aggregator's last fleet view survives, marked aborted — the evidence
// outlives the job.
func conformTelemetryAbort(t *testing.T, kind string) {
	c := openConformance(t, kind, 2, 0, 0)
	tel, err := c.StartTelemetry(TelemetryConfig{Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tel.Published() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("publisher never shipped a record")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.Abort()
	select {
	case <-tel.done:
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not stop the telemetry publisher")
	}
	st := tel.Aggregator().Status()
	if !st.Aborted {
		t.Fatal("fleet view does not mark the job aborted")
	}
	if !st.Ranks[0].Reported {
		t.Fatal("aggregator lost its records on abort")
	}
}

// conformTelemetryShutdown: Close with an active telemetry plane — records
// flowing, a pull served — leaves no cluster goroutine running.
func conformTelemetryShutdown(t *testing.T, kind string) {
	before := countClusterGoroutines()
	c := openConformance(t, kind, 2, 0, 0)
	tel, err := c.StartTelemetry(TelemetryConfig{
		Interval: 2 * time.Millisecond,
		Blackbox: func(w io.Writer) error {
			_, err := io.WriteString(w, "bb")
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tel.Published() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("publisher never shipped a record")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := tel.Pull(1, PullBlackbox, time.Second); err != nil {
		t.Fatalf("local pull: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := countClusterGoroutines(); n <= before {
			return
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("telemetry goroutines leaked after Close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
