package cluster

import (
	"fmt"
	"testing"
)

// BenchmarkTransportSendRecv measures one-way send/recv throughput between
// two ranks for each backend, 64 KiB messages — the shape of csort's bulk
// column traffic. The inproc backend runs with the null network model so
// the numbers compare mailbox machinery against real loopback sockets, not
// against the simulated wire's deliberate sleeps.
func BenchmarkTransportSendRecv(b *testing.B) {
	const msgSize = 64 << 10
	for _, kind := range []string{TransportInproc, TransportTCP} {
		b.Run(fmt.Sprintf("%s-%dKiB", kind, msgSize>>10), func(b *testing.B) {
			c, err := Open(Config{Nodes: 2, Transport: TransportConfig{Kind: kind}})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			payload := make([]byte, msgSize)
			// Warm-up: one exchange outside the timer, so the lazy first
			// dial and the receive arena's first chunk don't dominate a 1x
			// run — CI's baseline gates the steady-state per-message cost.
			warm := make(chan struct{})
			go func() { c.Node(1).Recv(0, 1); close(warm) }()
			c.Node(0).Send(1, 1, payload)
			<-warm
			done := make(chan struct{})
			go func() {
				defer close(done)
				n := c.Node(1)
				for i := 0; i < b.N; i++ {
					n.Recv(0, 1)
				}
			}()
			b.SetBytes(msgSize)
			b.ResetTimer()
			n := c.Node(0)
			for i := 0; i < b.N; i++ {
				n.Send(1, 1, payload)
			}
			<-done
		})
	}
}
