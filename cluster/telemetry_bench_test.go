package cluster

import (
	"encoding/json"
	"testing"
	"time"
)

// BenchmarkTelemetryOverhead pins the telemetry plane's cost at its three
// seams. The "off" case is the contract that matters most: a telemetry-
// tagged frame entering deliverLocal on a process with no plane running —
// the whole price the plane charges the data path is one sign compare and
// a nil atomic load, and it must stay allocation-free. "publish" is one
// full snapshot-and-ingest of every local rank (the per-interval cost of
// the publisher goroutine, aggregator-local). "ingest" is the aggregator
// decoding and storing one remote rank's wire record, the per-record cost
// on a transport read goroutine.
func BenchmarkTelemetryOverhead(b *testing.B) {
	// An interval long enough that the plane's own ticker never fires
	// during the benchmark: only the measured calls touch it.
	idle := TelemetryConfig{Interval: time.Hour}

	b.Run("off", func(b *testing.B) {
		c := New(Config{Nodes: 2})
		defer c.Close()
		f := Frame{Src: 1, Dst: 0, Tag: telemetryTag}
		settle()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.deliverLocal(f, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("publish", func(b *testing.B) {
		c := New(Config{Nodes: 2})
		defer c.Close()
		tel, err := c.StartTelemetry(idle)
		if err != nil {
			b.Fatal(err)
		}
		settle()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tel.publishOnce()
		}
	})

	b.Run("ingest", func(b *testing.B) {
		c := New(Config{Nodes: 2})
		defer c.Close()
		if _, err := c.StartTelemetry(idle); err != nil {
			b.Fatal(err)
		}
		rec := RankTelemetry{V: TelemetryVersion, Rank: 1, Seq: 1 << 40, Program: "bench"}
		data, err := json.Marshal(&rec)
		if err != nil {
			b.Fatal(err)
		}
		f := Frame{Src: 1, Dst: 0, Tag: telemetryTag, Data: data}
		settle()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.deliverLocal(f, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
