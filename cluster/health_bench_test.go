package cluster

import (
	"runtime"
	"testing"
	"time"
)

// BenchmarkHeartbeatOverhead pins the failure detector's cost where it
// matters: adjacent to the data path. The "observe" case is the receiving
// side — a heartbeat frame entering deliverLocal, intercepted before the
// mailbox layer — and must stay allocation-free, because it runs on the
// transport's read goroutines between data frames. The "beat" case is one
// full fan-out of heartbeats from every local rank (the per-tick cost of
// the monitor goroutine, inproc backend), also allocation-free.
func BenchmarkHeartbeatOverhead(b *testing.B) {
	// An interval long enough that the monitor's own ticker never fires
	// during the benchmark: only the measured calls touch the detector.
	idle := HealthConfig{Interval: time.Hour}

	b.Run("observe", func(b *testing.B) {
		c := New(Config{Nodes: 2, Health: idle})
		defer c.Close()
		f := Frame{Src: 1, Dst: 0, Tag: healthTag}
		settle()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.deliverLocal(f, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("beat", func(b *testing.B) {
		c := New(Config{Nodes: 4, Health: idle})
		defer c.Close()
		settle()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.health.beat()
		}
	})
}

// settle lets cluster-startup goroutines (monitor, transport readers)
// finish their launch-time allocations before the timer starts. allocs/op
// is a process-wide malloc delta; at CI's -benchtime=1x the measured
// window is microseconds, and a monitor goroutine still booting would be
// charged to the single iteration.
func settle() {
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
}
