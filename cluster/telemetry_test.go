package cluster

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTestTelemetry opens an all-local inproc cluster with the telemetry
// plane running and the aggregator on rank 0.
func startTestTelemetry(t *testing.T, nodes int, cfg TelemetryConfig) (*Cluster, *Telemetry) {
	t.Helper()
	c, err := Open(Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	tel, err := c.StartTelemetry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tel == nil {
		t.Fatal("StartTelemetry returned nil with a positive interval")
	}
	return c, tel
}

// TestTelemetryDisabled: a zero config is free — no plane, and every method
// of the nil *Telemetry is a safe no-op.
func TestTelemetryDisabled(t *testing.T) {
	c, err := Open(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tel, err := c.StartTelemetry(TelemetryConfig{})
	if err != nil || tel != nil {
		t.Fatalf("zero config: got (%v, %v), want (nil, nil)", tel, err)
	}
	if c.Telemetry() != nil {
		t.Fatal("cluster reports a telemetry plane that was never started")
	}
	var nilTel *Telemetry
	if nilTel.Aggregator() != nil || nilTel.Published() != 0 {
		t.Fatal("nil Telemetry methods are not no-ops")
	}
	nilTel.stop()
	if _, err := nilTel.Pull(0, PullBlackbox, time.Second); err == nil {
		t.Fatal("Pull on nil Telemetry succeeded")
	}
}

// TestTelemetryDoubleStart: a second StartTelemetry is rejected, as is an
// aggregator rank outside the cluster.
func TestTelemetryDoubleStart(t *testing.T) {
	c, _ := startTestTelemetry(t, 2, TelemetryConfig{Interval: time.Hour})
	if _, err := c.StartTelemetry(TelemetryConfig{Interval: time.Hour}); err == nil {
		t.Fatal("second StartTelemetry succeeded")
	}
	c2, err := Open(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.StartTelemetry(TelemetryConfig{Interval: time.Hour, Aggregator: 99}); err == nil {
		t.Fatal("out-of-range aggregator rank accepted")
	}
}

// TestTelemetryPublishesAllRanks: within a startup interval every local
// rank's record reaches the aggregator, filled by the Collect callback, and
// the fleet bottleneck names the governing rank and stage.
func TestTelemetryPublishesAllRanks(t *testing.T) {
	const P = 4
	c, tel := startTestTelemetry(t, P, TelemetryConfig{
		Interval: 5 * time.Millisecond,
		Collect: func(rank int) RankTelemetry {
			return RankTelemetry{
				Program: "test",
				Bottleneck: BottleneckRecord{
					Network: "test@0", Stage: "merge", Pipeline: "p", WorkNS: int64(rank+1) * 1e6,
				},
			}
		},
	})
	agg := tel.Aggregator()
	if agg == nil {
		t.Fatal("aggregator rank 0 is local but Aggregator() is nil")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := agg.Status()
		reported := 0
		for _, rs := range st.Ranks {
			if rs.Reported {
				reported++
			}
		}
		if reported == P {
			if st.P != P || st.AggregatorRank != 0 {
				t.Fatalf("status header P=%d agg=%d", st.P, st.AggregatorRank)
			}
			// The fleet bottleneck is the rank with the most governing
			// work: rank P-1 by construction.
			if st.Bottleneck.Rank != P-1 || st.Bottleneck.Stage != "merge" {
				t.Fatalf("fleet bottleneck %+v, want rank %d stage merge", st.Bottleneck, P-1)
			}
			if !strings.Contains(st.Bottleneck.String(), "merge") {
				t.Fatalf("bottleneck string %q", st.Bottleneck.String())
			}
			if agg.Bottleneck().Rank != P-1 {
				t.Fatalf("Bottleneck() disagrees with Status().Bottleneck")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d ranks reported", reported, P)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if tel.Published() == 0 {
		t.Fatal("Published() == 0 after records arrived")
	}
	_ = c
}

// TestTelemetryVersionSkew: an inbound record from a newer wire version is
// dropped and counted, never ingested — mixed fleets degrade to staleness,
// not misdecoding. Undecodable frames count the same way.
func TestTelemetryVersionSkew(t *testing.T) {
	_, tel := startTestTelemetry(t, 2, TelemetryConfig{Interval: time.Hour})
	rec := RankTelemetry{V: TelemetryVersion + 1, Rank: 1, Seq: 1 << 40}
	data, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	tel.deliver(Frame{Src: 1, Dst: 0, Tag: telemetryTag, Data: data})
	tel.deliver(Frame{Src: 1, Dst: 0, Tag: telemetryTag, Data: []byte("not json")})
	if got := tel.decodeErrs.Load(); got != 2 {
		t.Fatalf("decodeErrs = %d, want 2", got)
	}
	if rs := tel.Aggregator().Status().Ranks[1]; rs.Reported && rs.Record.Seq == 1<<40 {
		t.Fatal("newer-version record was ingested")
	}
}

// TestTelemetryStaleness: a record's age is measured against the
// aggregator's own arrival clock, and past StaleAfter the rank reads stale
// with a diagnosis line — degradation, not failure.
func TestTelemetryStaleness(t *testing.T) {
	_, tel := startTestTelemetry(t, 2, TelemetryConfig{
		Interval:   time.Hour,
		StaleAfter: 50 * time.Millisecond,
	})
	agg := tel.Aggregator()
	agg.ingestRecord(RankTelemetry{V: TelemetryVersion, Rank: 1, Seq: 1 << 40}, time.Now().Add(-time.Minute))
	st := agg.Status()
	rs := st.Ranks[1]
	if !rs.Reported || !rs.Stale || rs.AgeNS < int64(50*time.Millisecond) {
		t.Fatalf("rank 1 status {reported:%v stale:%v age:%v}, want reported and stale",
			rs.Reported, rs.Stale, time.Duration(rs.AgeNS))
	}
	found := false
	for _, d := range st.Diagnosis {
		if strings.Contains(d, "rank 1") && strings.Contains(d, "stale") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no staleness diagnosis in %q", st.Diagnosis)
	}
}

// TestTelemetrySeqRegression: an out-of-order record (smaller Seq) never
// replaces a fresher one.
func TestTelemetrySeqRegression(t *testing.T) {
	_, tel := startTestTelemetry(t, 2, TelemetryConfig{Interval: time.Hour})
	agg := tel.Aggregator()
	now := time.Now()
	agg.ingestRecord(RankTelemetry{V: TelemetryVersion, Rank: 1, Seq: 1000, Program: "new"}, now)
	agg.ingestRecord(RankTelemetry{V: TelemetryVersion, Rank: 1, Seq: 999, Program: "old"}, now)
	if got := agg.Status().Ranks[1].Record.Program; got != "new" {
		t.Fatalf("stale record replaced fresh one: program %q", got)
	}
}

// TestClusterBottleneckPrefersFresh: a stale rank's enormous work total
// must not govern while any fresh rank reports work; with nothing fresh it
// may (best evidence available).
func TestClusterBottleneckPrefersFresh(t *testing.T) {
	stale := RankStatus{Rank: 0, Reported: true, Stale: true,
		Bottleneck: BottleneckRecord{Stage: "huge", WorkNS: 100}}
	fresh := RankStatus{Rank: 1, Reported: true,
		Bottleneck: BottleneckRecord{Stage: "small", WorkNS: 10}}
	b := clusterBottleneck([]RankStatus{stale, fresh})
	if b.Rank != 1 || b.Stage != "small" {
		t.Fatalf("governing %+v, want fresh rank 1", b)
	}
	b = clusterBottleneck([]RankStatus{stale})
	if b.Rank != 0 || b.Stage != "huge" {
		t.Fatalf("governing %+v, want stale fallback rank 0", b)
	}
	b = clusterBottleneck(nil)
	if b.Rank != -1 {
		t.Fatalf("governing %+v on no evidence, want rank -1", b)
	}
	if !strings.Contains(b.String(), "no stage work") {
		t.Fatalf("empty bottleneck string %q", b.String())
	}
}

// TestDiagnoseFleetCrossCorrelation: the fleet diagnosis joins one rank's
// stall report with that rank's own failure-detector view — the "rank 2
// stage merge blocked-on-recv from rank 5, which is dead" story.
func TestDiagnoseFleetCrossCorrelation(t *testing.T) {
	stalled := RankStatus{
		Rank:     2,
		Reported: true,
		Stall: &StallRecord{
			Network: "dsort.p2@2", Culprit: "merge", CulpritState: "blocked-on-get",
			StalledNS: int64(3 * time.Second),
		},
		Record: &RankTelemetry{
			Peers: []PeerRecord{
				{Rank: 5, Monitored: true, Dead: true},
				{Rank: 3, Monitored: true, Suspect: true},
				{Rank: 0, Monitored: false, Dead: true}, // unmonitored: ignored
			},
		},
	}
	dead := RankStatus{Rank: 5, Reported: false, Dead: true}
	lines := diagnoseFleet([]RankStatus{stalled, dead})
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		`rank 2 stage "merge" blocked-on-recv`,
		"rank(s) 5 dead",
		"3 suspect",
		"rank 5 is declared dead",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("diagnosis %q missing %q", joined, want)
		}
	}
	// A blocked-on-put culprit on a rank whose comm counters show only
	// blocked receives reads blocked-on-recv, not blocked-on-send.
	recvBound := RankStatus{
		Rank: 1, Reported: true,
		Stall:  &StallRecord{Network: "n@1", Culprit: "commio", CulpritState: "blocked-on-put"},
		Record: &RankTelemetry{Comm: CommRecord{RecvsBlocked: 2}},
	}
	lines = diagnoseFleet([]RankStatus{recvBound})
	if !strings.Contains(strings.Join(lines, "\n"), "blocked-on-recv") {
		t.Fatalf("recv-bound put culprit diagnosed as %q", lines)
	}
}

// TestTelemetryLocalPulls: the pull kinds against local ranks — the
// blackbox callback round-trips, the heap profile is non-empty, and an
// unknown kind or out-of-range rank errors cleanly.
func TestTelemetryLocalPulls(t *testing.T) {
	const blackbox = `{"trace":"events"}`
	_, tel := startTestTelemetry(t, 2, TelemetryConfig{
		Interval: time.Hour,
		Blackbox: func(w io.Writer) error {
			_, err := io.WriteString(w, blackbox)
			return err
		},
	})
	data, err := tel.Pull(0, PullBlackbox, time.Second)
	if err != nil || string(data) != blackbox {
		t.Fatalf("blackbox pull: %q, %v", data, err)
	}
	heap, err := tel.Pull(1, PullHeapProfile, time.Second)
	if err != nil || len(heap) == 0 {
		t.Fatalf("heap pull: %d bytes, %v", len(heap), err)
	}
	if _, err := tel.Pull(0, "nonsense", time.Second); err == nil {
		t.Fatal("unknown pull kind succeeded")
	}
	if _, err := tel.Pull(99, PullBlackbox, time.Second); err == nil {
		t.Fatal("pull from out-of-range rank succeeded")
	}
}

// TestTelemetryStallAutoPull: a record carrying a fresh stall report makes
// the aggregator pull that rank's blackbox exactly once per episode.
func TestTelemetryStallAutoPull(t *testing.T) {
	var mu sync.Mutex
	pullCount := 0
	_, tel := startTestTelemetry(t, 2, TelemetryConfig{
		Interval: time.Hour,
		Blackbox: func(w io.Writer) error {
			mu.Lock()
			pullCount++
			mu.Unlock()
			_, err := io.WriteString(w, "blackbox-bytes")
			return err
		},
	})
	agg := tel.Aggregator()
	rec := RankTelemetry{
		V: TelemetryVersion, Rank: 0, Seq: 1000,
		Stall: &StallRecord{Network: "n@0", Culprit: "merge", AtUnixNano: time.Now().UnixNano()},
	}
	agg.ingestRecord(rec, time.Now())
	deadline := time.Now().Add(5 * time.Second)
	for {
		if data, err := agg.StallBlackbox(0); err == nil {
			if string(data) != "blackbox-bytes" {
				t.Fatalf("stall blackbox %q", data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stall never triggered a blackbox pull")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The same episode re-reported must not pull again.
	rec.Seq = 1001
	agg.ingestRecord(rec, time.Now())
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	got := pullCount
	mu.Unlock()
	if got != 1 {
		t.Fatalf("stall episode pulled %d times, want 1", got)
	}
	if _, err := agg.StallBlackbox(1); err == nil {
		t.Fatal("StallBlackbox for a rank with no stall succeeded")
	}
}
