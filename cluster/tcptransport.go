package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP backend. Where the in-process transport writes a channel, this
// one moves the same frames over real sockets, so the communication latency
// FG's pipelines exist to hide is real rather than simulated, and the ranks
// of one job can live in different OS processes (or machines).
//
// Topology: each local rank owns one listener; for every (local source,
// destination) pair a connection is dialed lazily on first use and kept —
// the connection pool — with a dedicated writer goroutine draining that
// peer's send queue into a buffered socket write (flushing whenever the
// queue runs dry, so small frames coalesce but never linger). A failed
// connection is redialed by the next Deliver; frames accepted before the
// failure are lost, not replayed — the transport is at-most-once after a
// fault, and a resulting stall is the progress watchdog's to name.
//
// Backpressure: a per-peer byte budget (MaxInflightBytes) bounds how much a
// sender may have queued ahead of the socket; past it, Deliver blocks, just
// as a full mailbox blocks the in-process sender. End to end the receiver's
// bounded mailbox still governs: a full mailbox parks the reader goroutine,
// TCP flow control fills, the writer stalls, the budget drains, and the
// sending stage blocks — the same behaviour a pthread blocked in MPI_Send
// shows, which is the property FG's overlap depends on.
//
// Failure semantics: dial failures, write errors, and injected faults
// surface from Deliver as errors, which Node.Send wraps in a CommError
// panic — the same shape injected faults take — so the existing retry and
// watchdog machinery applies unchanged. An abort is propagated to remote
// processes as a control frame on a fresh short-lived connection, releasing
// their blocked operations too.

const (
	defaultMaxInflightBytes = 8 << 20
	defaultDialTimeout      = 10 * time.Second
	tcpIOBufSize            = 64 << 10
	abortDialTimeout        = 2 * time.Second
	peerDrainTimeout        = 2 * time.Second

	// Control-plane timeouts (heartbeats). Dials are asynchronous and
	// short: beats are dropped until the connection lands, which is fine —
	// the receiving end's StartupGrace covers connection establishment.
	// Writes get a deadline because a write that cannot complete within it
	// means the receiver has stopped draining even 30-byte frames, which is
	// precisely the condition heartbeats should fail on.
	ctlDialTimeout  = time.Second
	ctlWriteTimeout = time.Second

	// Reconnect backoff for the data-plane writer (ensureConn): a flapping
	// or restarting peer is redialed with jittered exponential delays
	// instead of a tight fixed-interval loop, still bounded overall by
	// DialTimeout.
	reconnectBaseDelay = 25 * time.Millisecond
	reconnectMaxDelay  = time.Second
)

type tcpTransport struct {
	cfg TransportConfig
	c   *Cluster

	// addrs[r] is rank r's listen address: configured for multi-process
	// jobs, discovered from the ephemeral listeners in all-local mode.
	addrs     []string
	listeners []net.Listener

	// xferSeq[src] feeds NextXfer; the rank is folded into the high bits so
	// IDs from different processes never collide without coordination.
	xferSeq []atomic.Int64

	closed    chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	peers map[peerKey]*tcpPeer
	ctls  map[int]*tcpCtl       // per-destination control-plane senders
	conns map[net.Conn]struct{} // accepted (inbound) connections
	wg    sync.WaitGroup        // accept loops, readers, writers, ctl dials

	// rng feeds the reconnect backoff's jitter; guarded by rngMu because
	// several peers may be backing off at once.
	rngMu sync.Mutex
	rng   *rand.Rand

	fault   atomic.Pointer[NetFaultHook]
	dropped atomic.Int64 // frames lost to failed or closing connections
}

type peerKey struct{ src, dst int }

func newTCPTransport(cfg TransportConfig) *tcpTransport {
	if cfg.MaxInflightBytes <= 0 {
		cfg.MaxInflightBytes = defaultMaxInflightBytes
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	return &tcpTransport{
		cfg:    cfg,
		closed: make(chan struct{}),
		peers:  make(map[peerKey]*tcpPeer),
		ctls:   make(map[int]*tcpCtl),
		conns:  make(map[net.Conn]struct{}),
		rng:    rand.New(rand.NewSource(0x7ec0ec0)),
	}
}

func (t *tcpTransport) Start(c *Cluster) error {
	t.c = c
	p := c.P()
	t.xferSeq = make([]atomic.Int64, p)
	if t.cfg.Peers != nil {
		t.addrs = append([]string(nil), t.cfg.Peers...)
	} else {
		t.addrs = make([]string, p)
	}
	for _, n := range c.Local() {
		addr := "127.0.0.1:0"
		if t.cfg.Peers != nil {
			addr = t.cfg.Peers[n.Rank()]
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Close()
			return fmt.Errorf("cluster: rank %d listen %s: %w", n.Rank(), addr, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs[n.Rank()] = ln.Addr().String()
		t.wg.Add(1)
		go t.acceptLoop(ln)
	}
	return nil
}

// Addrs returns the resolved listen address of every rank this process
// hosts (indexed by rank; remote ranks keep their configured address).
// All-local clusters use it to discover the ephemeral ports.
func (t *tcpTransport) Addrs() []string { return append([]string(nil), t.addrs...) }

// NextXfer salts the per-source sequence with the rank so that IDs minted
// by separate processes stay unique cluster-wide: trace merging only needs
// the two ends of one transfer to agree and distinct transfers to differ.
func (t *tcpTransport) NextXfer(src int) int64 {
	return int64(src+1)<<40 | t.xferSeq[src].Add(1)
}

func (t *tcpTransport) setFault(h NetFaultHook) {
	if h == nil {
		t.fault.Store(nil)
		return
	}
	t.fault.Store(&h)
}

func (t *tcpTransport) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.isClosed() {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

func (t *tcpTransport) isClosed() bool {
	select {
	case <-t.closed:
		return true
	default:
		return false
	}
}

// Receive-buffer pooling. Every inbound frame needs a fresh body buffer —
// the payload is handed through the mailbox to the application, which owns
// it indefinitely, so the transport can never take the buffer back. What it
// can do is stop paying one heap allocation per frame: each readLoop carves
// bodies out of large pooled chunks, so a stream of 64 KiB column frames
// costs one allocation per chunk (recvArenaChunkSize/bodyLen frames)
// instead of one per frame. A chunk is garbage once every slice carved from
// it is dropped; to keep a long-lived small message (a gathered verdict an
// application retains) from pinning a whole chunk, bodies below
// recvArenaMinCarve allocate exactly, and bodies too large to amortize
// (more than a quarter chunk would recycle the chunk too fast to matter)
// do too.
const (
	recvArenaChunkSize = 1 << 20
	recvArenaMinCarve  = 4 << 10
	recvArenaMaxCarve  = recvArenaChunkSize / 4
)

// recvArena is a bump allocator over pooled chunks. It is used by exactly
// one readLoop goroutine, so it needs no locking; the chunk pool behind it
// is shared so short-lived connections (control-plane redials) do not each
// strand a fresh chunk.
type recvArena struct {
	chunk []byte
	off   int
}

var recvChunkPool = sync.Pool{
	New: func() any { return make([]byte, recvArenaChunkSize) },
}

// alloc returns a zero-free buffer of n bytes. Carved buffers are full
// slices (length == capacity) so an append by the receiving application can
// never bleed into a neighbouring frame's body.
func (a *recvArena) alloc(n int) []byte {
	if n < recvArenaMinCarve || n > recvArenaMaxCarve {
		return make([]byte, n)
	}
	if a.off+n > len(a.chunk) {
		// The old chunk is NOT returned to the pool: frames carved from it
		// are live in mailboxes or application hands. It becomes garbage
		// when the last of them is dropped.
		a.chunk = recvChunkPool.Get().([]byte)
		a.off = 0
	}
	b := a.chunk[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

// release hands the arena's unused tail capacity back to the pool when a
// readLoop ends. Only a never-carved chunk may be recycled — once a single
// frame body aliases it, ownership is shared with the application.
func (a *recvArena) release() {
	if a.chunk != nil && a.off == 0 {
		recvChunkPool.Put(a.chunk)
	}
	a.chunk = nil
}

// frameObserver, when set, sees the raw wire bytes (length prefix included)
// of every frame a readLoop decodes, before decoding. It is a seam for
// corpus-capture tests — the fuzz corpus for the frame codec is harvested
// from live soak runs through it — and must stay nil in production runs;
// the atomic load it costs the read path is a pointer compare per frame.
var frameObserver atomic.Pointer[func(frame []byte)]

// SetFrameObserver installs fn as the process-wide inbound-frame observer
// (nil removes it). The observer runs on read-loop goroutines and must not
// retain the slice past the call; copy if needed.
func SetFrameObserver(fn func(frame []byte)) {
	if fn == nil {
		frameObserver.Store(nil)
		return
	}
	frameObserver.Store(&fn)
}

// readLoop decodes frames off one inbound connection and delivers them to
// the local mailboxes. A decode error or EOF ends the connection quietly:
// an unexpected drop is not an abort (the peer may be retrying), it is a
// potential stall, and stalls are the watchdog's jurisdiction.
func (t *tcpTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, tcpIOBufSize)
	var arena recvArena
	defer arena.release()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		bodyLen := uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3])
		if bodyLen < frameBodyLen || bodyLen > frameBodyLen+maxFramePayload {
			return
		}
		body := arena.alloc(int(bodyLen))
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		if obs := frameObserver.Load(); obs != nil {
			raw := append(append(make([]byte, 0, len(hdr)+len(body)), hdr[:]...), body...)
			(*obs)(raw)
		}
		kind, f, err := decodeFrameBody(body)
		if err != nil {
			return
		}
		switch kind {
		case frameKindAbort:
			t.c.Abort()
			return
		case frameKindData:
			if err := t.c.deliverLocal(f, t.closed); err != nil {
				t.dropped.Add(1)
				return
			}
		}
	}
}

// peer returns (creating and starting on first use) the sender-side state
// for the (src, dst) pair.
func (t *tcpTransport) peer(src, dst int) *tcpPeer {
	key := peerKey{src, dst}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[key]
	if p == nil {
		p = &tcpPeer{
			t:      t,
			src:    src,
			dst:    dst,
			budget: newByteBudget(t.cfg.MaxInflightBytes),
			q:      make(chan queuedFrame, 256),
			qdone:  make(chan struct{}),
		}
		t.peers[key] = p
		t.wg.Add(1)
		go p.writeLoop()
	}
	return p
}

func (t *tcpTransport) Deliver(f Frame) error {
	if f.Dst == f.Src {
		// Self-sends go through shared memory, free, exactly as in-process
		// (and as MPI self-sends through the local buffer).
		src := t.c.nodes[f.Src]
		src.stats.sendsBlocked.Add(1)
		defer src.stats.sendsBlocked.Add(-1)
		return t.c.deliverLocal(f, t.closed)
	}
	act := NetFaultNone
	if h := t.fault.Load(); h != nil {
		act = (*h)(f.Src, f.Dst, len(f.Data))
		if act == NetFaultDrop {
			return fmt.Errorf("tcp: injected drop of %d-byte frame %d->%d", len(f.Data), f.Src, f.Dst)
		}
	}
	p := t.peer(f.Src, f.Dst)
	if err := p.ensureConn(); err != nil {
		return err
	}
	cost := frameWireBytes(f)
	src := t.c.nodes[f.Src]
	src.stats.sendsBlocked.Add(1)
	defer src.stats.sendsBlocked.Add(-1)
	if err := p.budget.acquire(cost, t.c.aborted, t.closed); err != nil {
		return err
	}
	select {
	case p.q <- queuedFrame{f: f, act: act}:
		return nil
	case <-t.c.aborted:
		p.budget.release(cost)
		return ErrAborted
	case <-t.closed:
		p.budget.release(cost)
		return errTransportClosed
	}
}

// DeliverControl sends a heartbeat frame on the destination's dedicated
// control connection — never the data connection, whose socket buffer may
// legitimately be full of bulk data behind a slow-but-alive receiver. The
// first call kicks off an asynchronous dial and reports the beat missed;
// write failures reset the connection so the next beat redials. The
// receiving process's accept loop cannot tell a control connection from a
// data one, and does not need to: the frames carry healthTag and are
// intercepted before the mailbox layer.
func (t *tcpTransport) DeliverControl(f Frame) error {
	if t.isClosed() {
		return errTransportClosed
	}
	if h := t.fault.Load(); h != nil {
		// Heartbeats are subject to wire faults like any frame: a simulated
		// partition that drops data but spares liveness would prove nothing.
		if act := (*h)(f.Src, f.Dst, len(f.Data)); act != NetFaultNone {
			return fmt.Errorf("tcp: injected fault on control frame %d->%d", f.Src, f.Dst)
		}
	}
	t.mu.Lock()
	ctl := t.ctls[f.Dst]
	if ctl == nil {
		ctl = &tcpCtl{t: t, dst: f.Dst}
		t.ctls[f.Dst] = ctl
	}
	t.mu.Unlock()
	return ctl.send(f)
}

// tcpCtl is the control-plane sender toward one destination process: a
// single long-lived connection reserved for frames that must not queue
// behind bulk data. All local ranks' heartbeats to that destination share
// it.
type tcpCtl struct {
	t   *tcpTransport
	dst int

	mu      sync.Mutex
	conn    net.Conn
	dialing bool
	buf     []byte // reusable encode buffer; beats must not allocate per tick
}

var errCtlNotConnected = errors.New("tcp: control connection not established yet")

func (c *tcpCtl) send(f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if !c.dialing {
			c.t.mu.Lock()
			if !c.t.isClosed() {
				c.dialing = true
				c.t.wg.Add(1)
				go c.dial()
			}
			c.t.mu.Unlock()
		}
		return errCtlNotConnected
	}
	c.conn.SetWriteDeadline(time.Now().Add(ctlWriteTimeout))
	c.buf = appendFrame(c.buf[:0], frameKindData, f)
	if _, err := c.conn.Write(c.buf); err != nil {
		c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// dial establishes the control connection in the background; beats in the
// meantime are simply missed.
func (c *tcpCtl) dial() {
	defer c.t.wg.Done()
	conn, err := net.DialTimeout("tcp", c.t.addrs[c.dst], ctlDialTimeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dialing = false
	if err != nil {
		return
	}
	if c.t.isClosed() {
		conn.Close()
		return
	}
	c.conn = conn
}

// close releases the control connection, if any.
func (c *tcpCtl) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// PropagateAbort tells every remote process to abort too, each on a fresh
// short-lived connection so the control frame cannot sit behind a stalled
// data stream. Best-effort but synchronous (bounded by the dial and write
// deadlines): when it returns, every reachable peer has the control frame —
// a process that aborts and immediately exits must not strand its peers in
// a collective that will never complete.
func (t *tcpTransport) PropagateAbort() {
	localSrc := 0
	if len(t.c.local) > 0 {
		localSrc = t.c.local[0].Rank()
	}
	var wg sync.WaitGroup
	for r, addr := range t.addrs {
		if t.c.nodes[r] != nil || addr == "" {
			continue
		}
		wg.Add(1)
		go func(r int, addr string) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, abortDialTimeout)
			if err != nil {
				return
			}
			defer conn.Close()
			conn.SetWriteDeadline(time.Now().Add(abortDialTimeout))
			conn.Write(appendFrame(nil, frameKindAbort, Frame{Src: localSrc, Dst: r}))
		}(r, addr)
	}
	wg.Wait()
}

func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		for _, ln := range t.listeners {
			ln.Close()
		}
		t.mu.Lock()
		for conn := range t.conns {
			conn.Close()
		}
		peers := make([]*tcpPeer, 0, len(t.peers))
		for _, p := range t.peers {
			peers = append(peers, p)
		}
		ctls := make([]*tcpCtl, 0, len(t.ctls))
		for _, ctl := range t.ctls {
			ctls = append(ctls, ctl)
		}
		t.mu.Unlock()
		for _, p := range peers {
			p.close()
		}
		for _, ctl := range ctls {
			ctl.close()
		}
		t.wg.Wait()
	})
	return nil
}

// Dropped returns how many frames the transport lost to failed or closing
// connections — nonzero only after a fault or an abort.
func (t *tcpTransport) Dropped() int64 { return t.dropped.Load() }

// queuedFrame is one entry in a peer's send queue; act carries an injected
// connection fault for the writer to execute on this frame.
type queuedFrame struct {
	f   Frame
	act NetFault
}

// A tcpPeer is the sender side of one (source, destination) pair: the
// connection, the dedicated writer goroutine's queue, and the in-flight
// byte budget. The writer outlives connection failures — a sticky error
// makes it drop frames (releasing their budget, so senders see errors
// rather than deadlock) until a Deliver redials.
type tcpPeer struct {
	t      *tcpTransport
	src    int
	dst    int
	budget *byteBudget
	q      chan queuedFrame

	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	gen  int // connection generation; fail() ignores stale generations
	err  error

	closeOnce sync.Once
	qdone     chan struct{}
}

// ensureConn dials (or redials, after a failure) the destination,
// retrying with jittered exponential backoff until DialTimeout so that the
// processes of one job may start in any order and a flapping peer is not
// hammered in a tight loop. It holds the peer lock for the duration:
// concurrent senders to the same destination need the same connection
// anyway. A successful redial after a failure counts as a reconnect,
// reported through the source node's stats and CommObserver.
func (p *tcpPeer) ensureConn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil && p.err == nil {
		return nil
	}
	redial := p.conn != nil || p.gen > 0
	if p.conn != nil {
		p.conn.Close()
		p.conn, p.bw = nil, nil
	}
	addr := p.t.addrs[p.dst]
	start := time.Now()
	deadline := start.Add(p.t.cfg.DialTimeout)
	for attempt := 0; ; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			p.conn = conn
			p.bw = bufio.NewWriterSize(conn, tcpIOBufSize)
			p.gen++
			p.err = nil
			if redial {
				if n := p.t.c.nodes[p.src]; n != nil {
					n.stats.reconnects.Add(1)
					n.observe("reconnect", p.dst, 0, 0, start)
				}
			}
			return nil
		}
		if time.Now().After(deadline) {
			p.err = err
			return fmt.Errorf("tcp: dial rank %d (%s): %w", p.dst, addr, err)
		}
		select {
		case <-time.After(p.t.reconnectDelay(attempt)):
		case <-p.t.c.aborted:
			return ErrAborted
		case <-p.t.closed:
			return errTransportClosed
		}
	}
}

// reconnectDelay returns the backoff before redial attempt `attempt`
// (0-based): exponential from reconnectBaseDelay, capped at
// reconnectMaxDelay, and jittered uniformly over [d/2, d) so peers that
// failed together do not redial in lockstep.
func (t *tcpTransport) reconnectDelay(attempt int) time.Duration {
	d := reconnectMaxDelay
	if attempt < 10 { // 25ms << 10 already exceeds any sane cap
		if e := reconnectBaseDelay << uint(attempt); e < d {
			d = e
		}
	}
	t.rngMu.Lock()
	u := t.rng.Float64()
	t.rngMu.Unlock()
	half := d / 2
	return half + time.Duration(u*float64(half))
}

// fail records a connection failure, unless a newer generation has already
// been dialed.
func (p *tcpPeer) fail(gen int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gen != gen || p.err != nil {
		return
	}
	p.err = err
	if p.conn != nil {
		p.conn.Close()
	}
}

// close ends the peer after the transport's closed channel is shut: it
// bounds the writer's final drain with a write deadline (a dead receiver
// must not hang Close), waits for the writer to finish, then releases the
// connection.
func (p *tcpPeer) close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.SetWriteDeadline(time.Now().Add(peerDrainTimeout))
		}
		p.mu.Unlock()
		<-p.qdone
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	})
}

// writeLoop drains the queue into the socket for the life of the
// transport. Each frame is written against the connection generation
// current at dequeue time, so a redial under a failed generation is picked
// up without restarting the goroutine. On close it first drains frames
// already accepted into the queue — Deliver returned success for them, and
// a rank that sends its last message and immediately closes (the end of a
// job) must not strand that message short of the wire.
func (p *tcpPeer) writeLoop() {
	defer p.t.wg.Done()
	defer close(p.qdone)
	for {
		select {
		case <-p.t.closed:
			for {
				select {
				case qf := <-p.q:
					p.writeOne(qf)
				default:
					p.mu.Lock()
					if p.bw != nil && p.err == nil {
						p.bw.Flush()
					}
					p.mu.Unlock()
					return
				}
			}
		case qf := <-p.q:
			p.writeOne(qf)
		}
	}
}

func (p *tcpPeer) writeOne(qf queuedFrame) {
	defer p.budget.release(frameWireBytes(qf.f))
	p.mu.Lock()
	conn, bw, gen, err := p.conn, p.bw, p.gen, p.err
	p.mu.Unlock()
	if err != nil || conn == nil {
		p.t.dropped.Add(1)
		return
	}
	switch qf.act {
	case NetFaultCloseConn:
		p.fail(gen, fmt.Errorf("tcp: injected close of connection to rank %d", p.dst))
		p.t.dropped.Add(1)
		return
	case NetFaultCloseMidFrame:
		var hdr [frameHeaderLen]byte
		encodeFrameHeader(&hdr, frameKindData, qf.f)
		bw.Write(hdr[:])
		bw.Write(qf.f.Data[:len(qf.f.Data)/2])
		bw.Flush()
		p.fail(gen, fmt.Errorf("tcp: injected mid-frame close of connection to rank %d", p.dst))
		p.t.dropped.Add(1)
		return
	}
	var hdr [frameHeaderLen]byte
	encodeFrameHeader(&hdr, frameKindData, qf.f)
	if _, werr := bw.Write(hdr[:]); werr != nil {
		p.fail(gen, werr)
		p.t.dropped.Add(1)
		return
	}
	if _, werr := bw.Write(qf.f.Data); werr != nil {
		p.fail(gen, werr)
		p.t.dropped.Add(1)
		return
	}
	// Flush when the queue runs dry: batches under load, prompt when idle.
	if len(p.q) == 0 {
		if werr := bw.Flush(); werr != nil {
			p.fail(gen, werr)
		}
	}
}

// byteBudget is a small weighted semaphore bounding in-flight bytes toward
// one peer. Oversized requests (a frame bigger than the whole budget) are
// admitted when the budget is completely free, so a large message blocks
// later senders instead of deadlocking itself.
type byteBudget struct {
	mu    sync.Mutex
	avail int
	max   int
	wake  chan struct{}
}

func newByteBudget(max int) *byteBudget {
	return &byteBudget{avail: max, max: max, wake: make(chan struct{}, 1)}
}

func (b *byteBudget) acquire(n int, aborted, closed <-chan struct{}) error {
	if n > b.max {
		n = b.max
	}
	for {
		b.mu.Lock()
		if b.avail >= n {
			b.avail -= n
			leftover := b.avail > 0
			b.mu.Unlock()
			if leftover {
				// Cascade the wakeup: another waiter may fit in what's left.
				select {
				case b.wake <- struct{}{}:
				default:
				}
			}
			return nil
		}
		b.mu.Unlock()
		select {
		case <-b.wake:
		case <-aborted:
			return ErrAborted
		case <-closed:
			return errTransportClosed
		}
	}
}

func (b *byteBudget) release(n int) {
	if n > b.max {
		n = b.max
	}
	b.mu.Lock()
	b.avail += n
	if b.avail > b.max {
		b.avail = b.max
	}
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}
