package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/fg-go/fg/pdm"
)

func testCluster(p int) *Cluster {
	return New(Config{Nodes: p, Disk: pdm.NullDiskModel, Network: NullNetworkModel})
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 0 nodes did not panic")
		}
	}()
	New(Config{Nodes: 0})
}

func TestRunVisitsEveryNode(t *testing.T) {
	c := testCluster(8)
	var mu sync.Mutex
	seen := map[int]bool{}
	err := c.Run(func(n *Node) error {
		mu.Lock()
		seen[n.Rank()] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !seen[i] {
			t.Errorf("node %d never ran", i)
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	c := testCluster(4)
	want := fmt.Errorf("boom")
	err := c.Run(func(n *Node) error {
		if n.Rank() == 2 {
			return want
		}
		return nil
	})
	if err != want {
		t.Errorf("Run returned %v, want %v", err, want)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		if n.Rank() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic was not converted to an error")
	}
}

func TestSendRecvBasic(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			n.Send(1, 7, []byte("ping"))
			if got := n.Recv(1, 8); string(got) != "pong" {
				return fmt.Errorf("got %q", got)
			}
		} else {
			if got := n.Recv(0, 7); string(got) != "ping" {
				return fmt.Errorf("got %q", got)
			}
			n.Send(0, 8, []byte("pong"))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			buf := []byte("original")
			n.Send(1, 1, buf)
			copy(buf, "clobber!")
			n.Send(1, 2, nil) // flush marker
		} else {
			got := n.Recv(0, 1)
			n.Recv(0, 2)
			if string(got) != "original" {
				return fmt.Errorf("message aliased sender buffer: %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	c := testCluster(1)
	err := c.Run(func(n *Node) error {
		n.Send(0, 5, []byte("loop"))
		if got := n.Recv(0, 5); string(got) != "loop" {
			return fmt.Errorf("self-send got %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsKeepStreamsSeparate(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			n.Send(1, 2, []byte("two"))
			n.Send(1, 1, []byte("one"))
		} else {
			// Receive in the opposite order of sending; tags must select.
			if got := n.Recv(0, 1); string(got) != "one" {
				return fmt.Errorf("tag 1 delivered %q", got)
			}
			if got := n.Recv(0, 2); string(got) != "two" {
				return fmt.Errorf("tag 2 delivered %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerSourceAndTag(t *testing.T) {
	c := testCluster(2)
	const msgs = 200
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				n.Send(1, 3, []byte{byte(i)})
			}
		} else {
			for i := 0; i < msgs; i++ {
				if got := n.Recv(0, 3); got[0] != byte(i) {
					return fmt.Errorf("message %d arrived as %d", i, got[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	c := testCluster(1)
	err := c.Run(func(n *Node) error {
		if _, ok := n.TryRecv(0, 9); ok {
			return fmt.Errorf("TryRecv returned a phantom message")
		}
		n.Send(0, 9, []byte("x"))
		got, ok := n.TryRecv(0, 9)
		if !ok || string(got) != "x" {
			return fmt.Errorf("TryRecv = %q, %v", got, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		if n.Rank() != 0 {
			return nil
		}
		defer func() { recover() }()
		n.Send(5, 0, nil)
		return fmt.Errorf("send to rank 5 of 2 did not panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNetworkLatencyCharged(t *testing.T) {
	c := New(Config{
		Nodes:   2,
		Network: NetworkModel{Latency: 2 * time.Millisecond},
	})
	start := time.Now()
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			for i := 0; i < 5; i++ {
				n.Send(1, 0, []byte("x"))
			}
		} else {
			for i := 0; i < 5; i++ {
				n.Recv(0, 0)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("5 sends with 2ms latency finished in %v", elapsed)
	}
	if busy := c.Node(0).Stats().SendBusy; busy < 10*time.Millisecond {
		t.Errorf("SendBusy = %v, want >= 10ms", busy)
	}
}

func TestSelfSendIsFree(t *testing.T) {
	c := New(Config{
		Nodes:   1,
		Network: NetworkModel{Latency: 50 * time.Millisecond},
	})
	start := time.Now()
	err := c.Run(func(n *Node) error {
		n.Send(0, 0, []byte("x"))
		n.Recv(0, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("self-send paid network latency: %v", elapsed)
	}
}

func TestCommStats(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			n.Send(1, 0, make([]byte, 100))
		} else {
			n.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := c.Node(0).Stats(), c.Node(1).Stats()
	if s0.MessagesSent != 1 || s0.BytesSent != 100 {
		t.Errorf("sender stats %+v", s0)
	}
	if s1.MessagesRecvd != 1 || s1.BytesRecvd != 100 {
		t.Errorf("receiver stats %+v", s1)
	}
	c.Node(0).ResetStats()
	if c.Node(0).Stats().MessagesSent != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestCommNamespacesIsolate(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		a, b := n.Comm("alpha"), n.Comm("beta")
		if n.Rank() == 0 {
			b.Send(1, 0, []byte("from-beta"))
			a.Send(1, 0, []byte("from-alpha"))
		} else {
			if got := a.Recv(0, 0); string(got) != "from-alpha" {
				return fmt.Errorf("alpha comm delivered %q", got)
			}
			if got := b.Recv(0, 0); string(got) != "from-beta" {
				return fmt.Errorf("beta comm delivered %q", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	c := testCluster(8)
	var before, after sync.WaitGroup
	before.Add(8)
	var count int32
	var mu sync.Mutex
	err := c.Run(func(n *Node) error {
		comm := n.Comm("bar")
		mu.Lock()
		count++
		mu.Unlock()
		before.Done()
		comm.Barrier()
		mu.Lock()
		defer mu.Unlock()
		if count != 8 {
			return fmt.Errorf("node %d passed barrier with count %d", n.Rank(), count)
		}
		return nil
	})
	after.Wait()
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	c := testCluster(5)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("bc")
		var data []byte
		if n.Rank() == 2 {
			data = []byte("payload")
		}
		got := comm.Bcast(2, data)
		if string(got) != "payload" {
			return fmt.Errorf("node %d got %q", n.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	c := testCluster(4)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("g")
		got := comm.Gather(1, []byte{byte(n.Rank() * 10)})
		if n.Rank() != 1 {
			if got != nil {
				return fmt.Errorf("non-root received %v", got)
			}
			return nil
		}
		for src, piece := range got {
			if len(piece) != 1 || piece[0] != byte(src*10) {
				return fmt.Errorf("gathered piece %d = %v", src, piece)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	c := testCluster(4)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("ag")
		got := comm.Allgather([]byte{byte(n.Rank())})
		for src, piece := range got {
			if len(piece) != 1 || piece[0] != byte(src) {
				return fmt.Errorf("node %d: piece %d = %v", n.Rank(), src, piece)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallVaryingSizes(t *testing.T) {
	const P = 4
	c := testCluster(P)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("a2a")
		// Node r sends r+d+1 copies of byte r to node d.
		parts := make([][]byte, P)
		for d := 0; d < P; d++ {
			parts[d] = bytes.Repeat([]byte{byte(n.Rank())}, n.Rank()+d+1)
		}
		got := comm.Alltoall(parts)
		for src, piece := range got {
			want := bytes.Repeat([]byte{byte(src)}, src+n.Rank()+1)
			if !bytes.Equal(piece, want) {
				return fmt.Errorf("node %d: from %d got %v, want %v", n.Rank(), src, piece, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallRepeatedRounds(t *testing.T) {
	const P = 4
	c := testCluster(P)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("rounds")
		for round := 0; round < 20; round++ {
			parts := make([][]byte, P)
			for d := 0; d < P; d++ {
				parts[d] = []byte{byte(n.Rank()), byte(round)}
			}
			got := comm.Alltoall(parts)
			for src, piece := range got {
				if piece[0] != byte(src) || piece[1] != byte(round) {
					return fmt.Errorf("round %d: from %d got %v", round, src, piece)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvReplace(t *testing.T) {
	const P = 4
	c := testCluster(P)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("srr")
		// Rotate a value around the ring.
		buf := []byte{byte(n.Rank())}
		dst := (n.Rank() + 1) % P
		src := (n.Rank() + P - 1) % P
		comm.SendrecvReplace(buf, dst, src, 0)
		if buf[0] != byte(src) {
			return fmt.Errorf("node %d: buffer holds %d, want %d", n.Rank(), buf[0], src)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentP2PWithinNode(t *testing.T) {
	// Two goroutines per node exchange on distinct tags simultaneously —
	// the thread-safety requirement from Section II of the paper.
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("mt")
		other := 1 - n.Rank()
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				tag := int64(100 + g)
				for i := 0; i < 100; i++ {
					comm.Send(other, tag, []byte{byte(g), byte(i)})
					got := comm.Recv(other, tag)
					if got[0] != byte(g) || got[1] != byte(i) {
						errs[g] = fmt.Errorf("stream %d message %d corrupted: %v", g, i, got)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDisksAccessor(t *testing.T) {
	c := testCluster(3)
	disks := c.Disks()
	if len(disks) != 3 {
		t.Fatalf("Disks() returned %d entries", len(disks))
	}
	for i, d := range disks {
		if d != c.Node(i).Disk {
			t.Errorf("Disks()[%d] is not node %d's disk", i, i)
		}
	}
}

func TestNetworkModelCost(t *testing.T) {
	m := NetworkModel{Latency: time.Millisecond, BytesPerSecond: 1e6}
	if got := m.Cost(1000); got != 2*time.Millisecond {
		t.Errorf("Cost(1000) = %v, want 2ms", got)
	}
	if got := NullNetworkModel.Cost(1 << 30); got != 0 {
		t.Errorf("null model Cost = %v", got)
	}
}

func TestAnySourceReceive(t *testing.T) {
	const P = 5
	c := testCluster(P)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("any")
		// Everyone sends one message to node 0.
		comm.SendAny(0, 42, []byte{byte(n.Rank())})
		if n.Rank() != 0 {
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < P; i++ {
			src, data := comm.RecvAny(42)
			if len(data) != 1 || int(data[0]) != src {
				return fmt.Errorf("message from %d carries %v", src, data)
			}
			if seen[src] {
				return fmt.Errorf("duplicate message from %d", src)
			}
			seen[src] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceDoesNotMixWithP2P(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("mix")
		if n.Rank() == 0 {
			comm.Send(1, 7, []byte("p2p"))
			comm.SendAny(1, 7, []byte("any"))
		} else {
			if got := comm.Recv(0, 7); string(got) != "p2p" {
				return fmt.Errorf("Recv got %q", got)
			}
			if src, got := comm.RecvAny(7); src != 0 || string(got) != "any" {
				return fmt.Errorf("RecvAny got %q from %d", got, src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceEmptyPayload(t *testing.T) {
	// Zero-length messages act as end-of-data markers in dsort.
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("eod")
		if n.Rank() == 0 {
			comm.SendAny(1, 1, nil)
		} else {
			src, data := comm.RecvAny(1)
			if src != 0 || len(data) != 0 {
				return fmt.Errorf("marker arrived as %d bytes from %d", len(data), src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvAny(t *testing.T) {
	c := testCluster(2)
	err := c.Run(func(n *Node) error {
		comm := n.Comm("tra")
		if n.Rank() == 0 {
			if _, _, ok := comm.TryRecvAny(3); ok {
				return fmt.Errorf("phantom any-source message")
			}
			comm.Send(1, 9, nil) // let node 1 proceed
			comm.Recv(1, 9)
			src, data, ok := comm.TryRecvAny(3)
			if !ok || src != 1 || string(data) != "hi" {
				return fmt.Errorf("TryRecvAny = %q from %d, ok=%v", data, src, ok)
			}
		} else {
			comm.Recv(0, 9)
			comm.SendAny(0, 3, []byte("hi"))
			comm.Send(0, 9, nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMailboxBackpressure(t *testing.T) {
	// With a tiny mailbox, a sender outpacing its receiver must block
	// rather than buffer unboundedly — and resume when the receiver drains.
	c := New(Config{Nodes: 2, MailboxDepth: 2})
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			for i := 0; i < 50; i++ {
				n.Send(1, 1, []byte{byte(i)})
			}
		} else {
			time.Sleep(10 * time.Millisecond) // let the sender hit the limit
			for i := 0; i < 50; i++ {
				if got := n.Recv(0, 1); got[0] != byte(i) {
					return fmt.Errorf("message %d arrived as %d", i, got[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallPropertyRandomSizes(t *testing.T) {
	// Property: for random per-destination payload sizes, every byte
	// arrives exactly once at the right place with the right content.
	const P = 5
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		sizes := make([][]int, P) // sizes[src][dst]
		for s := range sizes {
			sizes[s] = make([]int, P)
			for d := range sizes[s] {
				sizes[s][d] = rng.Intn(200)
			}
		}
		c := testCluster(P)
		err := c.Run(func(n *Node) error {
			comm := n.Comm("prop")
			parts := make([][]byte, P)
			for d := 0; d < P; d++ {
				parts[d] = make([]byte, sizes[n.Rank()][d])
				for i := range parts[d] {
					parts[d][i] = byte(n.Rank()*31 + d*7 + i)
				}
			}
			got := comm.Alltoall(parts)
			for src := 0; src < P; src++ {
				if len(got[src]) != sizes[src][n.Rank()] {
					return fmt.Errorf("from %d: %d bytes, want %d", src, len(got[src]), sizes[src][n.Rank()])
				}
				for i, v := range got[src] {
					if v != byte(src*31+n.Rank()*7+i) {
						return fmt.Errorf("from %d: byte %d corrupted", src, i)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCollectivesInterleaveWithP2P(t *testing.T) {
	// A barrier-bcast-gather sequence must not disturb concurrent
	// point-to-point traffic on the same nodes.
	const P = 4
	c := testCluster(P)
	err := c.Run(func(n *Node) error {
		coll := n.Comm("coll")
		p2p := n.Comm("p2p")
		done := make(chan error, 1)
		go func() {
			other := (n.Rank() + 1) % P
			prev := (n.Rank() + P - 1) % P
			for i := 0; i < 50; i++ {
				p2p.Send(other, 9, []byte{byte(i)})
				if got := p2p.Recv(prev, 9); got[0] != byte(i) {
					done <- fmt.Errorf("p2p message %d corrupted", i)
					return
				}
			}
			done <- nil
		}()
		for i := 0; i < 10; i++ {
			coll.Barrier()
			v := coll.Bcast(0, []byte{byte(i)})
			if v[0] != byte(i) {
				return fmt.Errorf("bcast %d corrupted", i)
			}
			coll.Gather(0, []byte{byte(n.Rank())})
		}
		return <-done
	})
	if err != nil {
		t.Fatal(err)
	}
}
