// Package cluster simulates the distributed-memory cluster the paper ran
// on: P nodes, each with its own disk, connected by an interconnect with
// latency and bandwidth. Node programs are ordinary Go functions; the
// goroutines of one node's FG pipelines communicate with other nodes
// through a thread-safe, MPI-like message-passing interface (the paper used
// ChaMPIon/Pro, a thread-safe commercial MPI, for the same reason: FG runs
// one thread per pipeline stage, and several stages may communicate at
// once).
//
// The network model charges each message a fixed latency plus a
// size-proportional transfer time, and serializes the transfers of each
// sending node as a single NIC would. A goroutine paying the cost sleeps,
// which — just like a pthread blocked in MPI_Send — yields the processor to
// the node's other pipeline stages. That preserved blocking behaviour is
// what lets FG's pipelines overlap communication with I/O and computation,
// so it is the property the simulation takes care to keep.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fg-go/fg/pdm"
)

// ErrAborted is the error carried by the panic that releases a blocked
// Send or Recv when the cluster job is aborted (see Cluster.Abort). Match
// it with errors.Is to tell a node that failed on its own from one that
// was torn down because a peer failed.
var ErrAborted = errors.New("cluster: job aborted")

// A CommError is the error attached to the panic raised when a
// communication operation is killed — by an injected fault (Node.SetFault)
// or by a cluster abort. Communication methods have no error returns, as
// in MPI, so faults surface as panics; inside an FG network the stage's
// runner recovers the panic and converts it into a clean network error.
type CommError struct {
	// Op is the operation: "send" or "recv".
	Op string
	// Rank is the node performing the operation.
	Rank int
	// Peer is the destination (sends) or source (receives); -1 for an
	// any-source receive.
	Peer int
	// Err is the underlying cause: ErrAborted or an injected fault.
	Err error
}

func (e *CommError) Error() string {
	return fmt.Sprintf("cluster: node %d %s (peer %d): %v", e.Rank, e.Op, e.Peer, e.Err)
}

func (e *CommError) Unwrap() error { return e.Err }

// NetworkModel gives the simulated cost of interprocessor communication.
type NetworkModel struct {
	// Latency is charged once per message.
	Latency time.Duration
	// BytesPerSecond is the per-link transfer rate; zero means transfers
	// are free and only latency is charged.
	BytesPerSecond float64
}

// Cost returns the simulated duration of sending one message of n bytes.
func (m NetworkModel) Cost(n int) time.Duration {
	d := m.Latency
	if m.BytesPerSecond > 0 {
		d += time.Duration(float64(n) / m.BytesPerSecond * float64(time.Second))
	}
	return d
}

// NullNetworkModel charges nothing; useful in unit tests.
var NullNetworkModel = NetworkModel{}

// DefaultNetworkModel approximates the paper's 2 Gb/s Myrinet, scaled for
// laptop-sized experiments: 30 us latency, 250 MB/s per link.
var DefaultNetworkModel = NetworkModel{
	Latency:        30 * time.Microsecond,
	BytesPerSecond: 250e6,
}

// Config describes a cluster job.
type Config struct {
	// Nodes is P, the number of nodes.
	Nodes int
	// Disk is the cost model for every node's disk.
	Disk pdm.DiskModel
	// Network is the interconnect cost model. It applies to the in-process
	// transport only; over TCP the wire's own latency is the cost.
	Network NetworkModel
	// MailboxDepth bounds how many undelivered messages one (source, tag)
	// mailbox buffers before further sends to it block. Zero selects a
	// generous default.
	MailboxDepth int
	// Transport selects how inter-rank messages move. The zero value keeps
	// the in-process backend (channel mailboxes plus the simulated
	// interconnect); see TransportConfig for the TCP backend, which can
	// split the job's ranks across OS processes.
	Transport TransportConfig
	// Health configures heartbeat-based failure detection; the zero value
	// (Interval 0) disables it, costing nothing. See HealthConfig.
	Health HealthConfig
}

const defaultMailboxDepth = 1024

// A Cluster is one process's view of a cluster job: the nodes this process
// hosts, plus a transport that reaches the rest. With the in-process
// transport (the default) every rank is local and the interconnect is
// simulated; with the TCP transport ranks may be spread across processes.
type Cluster struct {
	cfg       Config
	nodes     []*Node // indexed by rank; nil for ranks hosted elsewhere
	local     []*Node // the non-nil entries of nodes, in rank order
	transport Transport

	// transferSeq assigns cluster-wide monotonic transfer IDs for the
	// in-process transport: every Send or SendAny takes the next one, and
	// the matching Recv observes the same ID, so traces recorded on
	// different nodes can be correlated transfer by transfer (see
	// fg.MergeChromeTraces). The TCP transport mints its own IDs (salted by
	// source rank) because processes cannot share one atomic.
	transferSeq atomic.Int64

	abortOnce sync.Once
	aborted   chan struct{}
	// abortCause, set (at most once, before aborted closes) by AbortWith,
	// names why the job died; nil means a plain Abort and reads as
	// ErrAborted. Blocked operations released by the abort panic with it.
	abortCause atomic.Pointer[error]

	// parts[r] marks rank r as partitioned: deliverLocal silently drops
	// every frame — data and heartbeats — to or from r, simulating a
	// network partition at the receiver. See SetPartitioned.
	parts []atomic.Bool

	health      *healthMonitor // nil unless Config.Health enables heartbeats
	onPeerDeath atomic.Pointer[func(rank int, err error)]

	// telemetry is the running telemetry plane, installed by
	// StartTelemetry; nil costs the control-frame dispatch one nil check.
	telemetry atomic.Pointer[Telemetry]

	closeOnce sync.Once
	closeErr  error
}

// Open builds a cluster of cfg.Nodes nodes and starts its transport. With
// the TCP transport in multi-process form (TransportConfig.Peers set) the
// returned cluster hosts only rank cfg.Transport.Rank; otherwise it hosts
// all ranks. Callers of communication methods on remote ranks' nodes will
// find Node(i) == nil. Close the cluster when done.
func Open(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: invalid node count %d", cfg.Nodes)
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = defaultMailboxDepth
	}
	ranks, err := cfg.Transport.localRanks(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	tr, err := newTransport(cfg.Transport)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, transport: tr, aborted: make(chan struct{})}
	c.nodes = make([]*Node, cfg.Nodes)
	c.parts = make([]atomic.Bool, cfg.Nodes)
	for _, r := range ranks {
		n := &Node{
			rank:      r,
			cluster:   c,
			Disk:      pdm.NewDisk(cfg.Disk),
			mailboxes: make(map[mailboxKey]chan message),
		}
		c.nodes[r] = n
		c.local = append(c.local, n)
	}
	// Install the health monitor before the transport starts: the moment a
	// listener is up, an inbound heartbeat from an eager peer can reach
	// deliverLocal, which must see a fully built monitor (or a committed
	// nil).
	if cfg.Health.Interval > 0 {
		c.health = newHealthMonitor(c, cfg.Health.withDefaults())
	}
	if err := tr.Start(c); err != nil {
		return nil, err
	}
	if c.health != nil {
		c.health.start()
	}
	return c, nil
}

// New builds a cluster of cfg.Nodes nodes, panicking on a bad config —
// the original constructor, still the right call for all-local clusters
// whose configs are correct by construction. See Open for error returns.
func New(cfg Config) *Cluster {
	c, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the number of nodes in the whole job, local or not.
func (c *Cluster) P() int { return c.cfg.Nodes }

// Node returns node i, or nil if rank i is hosted by another process.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Local returns the nodes this process hosts, in rank order. With the
// in-process transport that is every node; in a multi-process TCP job it
// is the one rank this process runs.
func (c *Cluster) Local() []*Node { return c.local }

// AllLocal reports whether this process hosts every rank of the job —
// true for the in-process transport and for all-local TCP clusters, false
// in multi-process form. Tools that inspect the whole machine from outside
// (whole-output verification, cross-node stat aggregation) require it.
func (c *Cluster) AllLocal() bool { return len(c.local) == len(c.nodes) }

// Aborted reports whether the job has been aborted.
func (c *Cluster) Aborted() bool {
	select {
	case <-c.aborted:
		return true
	default:
		return false
	}
}

// Close shuts the cluster's transport down: listeners, connections, and
// every transport goroutine. It is idempotent. In-process clusters have
// nothing to release, so existing callers that never Close stay correct;
// TCP clusters should always be closed.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		if t := c.telemetry.Load(); t != nil {
			t.stop()
		}
		if c.health != nil {
			c.health.stop()
		}
		c.closeErr = c.transport.Close()
	})
	return c.closeErr
}

// Disks returns the nodes' disks indexed by rank, for tools and verifiers
// that inspect the whole simulated machine from outside. Ranks hosted by
// other processes have nil entries; see AllLocal.
func (c *Cluster) Disks() []*pdm.Disk {
	out := make([]*pdm.Disk, len(c.nodes))
	for i, n := range c.nodes {
		if n != nil {
			out[i] = n.Disk
		}
	}
	return out
}

// Abort tears the whole job down, the analogue of MPI_Abort: every Send or
// Recv that is blocked (or subsequently attempted) panics with a CommError
// wrapping ErrAborted. Inside an FG network that panic becomes a clean
// stage error, so each node's Network.Run returns promptly instead of
// waiting forever for a failed peer's messages. Abort is idempotent.
// Cluster.Run calls it automatically when any node's function fails. In a
// multi-process job the abort is propagated (best-effort) to the peers, so
// their blocked operations are released too.
func (c *Cluster) Abort() { c.AbortWith(nil) }

// AbortWith is Abort carrying a cause: every blocked or subsequent Send and
// Recv panics with a CommError wrapping cause instead of plain ErrAborted,
// so the teardown's origin — a peer declared dead, say — survives into the
// error every node reports. A nil cause (or a cause that loses the race to
// an earlier abort) reads as ErrAborted. Remote processes always observe
// plain ErrAborted: the propagated control frame carries no cause.
func (c *Cluster) AbortWith(cause error) {
	c.abortOnce.Do(func() {
		if cause != nil {
			c.abortCause.Store(&cause)
		}
		close(c.aborted)
		c.transport.PropagateAbort()
	})
}

// abortErr returns the error blocked operations die with: the AbortWith
// cause if one was recorded, otherwise ErrAborted.
func (c *Cluster) abortErr() error {
	if p := c.abortCause.Load(); p != nil {
		return *p
	}
	return ErrAborted
}

// abortPanic raises the panic for an operation killed by Abort.
func (n *Node) abortPanic(op string, peer int) {
	panic(&CommError{Op: op, Rank: n.rank, Peer: peer, Err: n.cluster.abortErr()})
}

// SetPartitioned isolates (or, with false, heals) rank r at this process's
// receiver: while set, deliverLocal silently drops every frame to or from r
// — bulk data and heartbeats alike — which is what a partitioned switch
// port looks like: sends appear to succeed and nothing arrives. It is a
// chaos seam for failure-detection tests on any backend; in a multi-process
// job each process decides its own view, as a real partition would. With
// heartbeats enabled, a partitioned local rank becomes a death-detection
// candidate like a remote one.
func (c *Cluster) SetPartitioned(r int, on bool) {
	c.parts[r].Store(on)
}

// isPartitioned reports whether rank r is currently isolated at this
// process.
func (c *Cluster) isPartitioned(r int) bool { return c.parts[r].Load() }

// Run executes fn once per local node, each invocation on its own
// goroutine, and waits for all of them. A panic on a node goroutine is
// recovered and reported as that node's error. The first failing node
// aborts the whole job (see Abort) so that no peer blocks forever on its
// messages; Run then returns the lowest-ranked error that is a root cause
// — one not itself produced by the abort — falling back to the first error
// of any kind. In a multi-process job each process's Run covers only the
// ranks it hosts.
func (c *Cluster) Run(fn func(*Node) error) error {
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for _, n := range c.local {
		i := n.rank
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if err, ok := r.(error); ok {
						errs[i] = fmt.Errorf("cluster: node %d panicked: %w", i, err)
					} else {
						errs[i] = fmt.Errorf("cluster: node %d panicked: %v", i, r)
					}
				}
				if errs[i] != nil {
					c.Abort()
				}
			}()
			errs[i] = fn(n)
		}(i, n)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
	}
	return first
}

// CommStats accumulates one node's traffic counters.
type CommStats struct {
	MessagesSent  int64
	BytesSent     int64
	MessagesRecvd int64
	BytesRecvd    int64
	// SendBusy is the total simulated time this node's NIC spent
	// transmitting.
	SendBusy time.Duration
	// SendWait and RecvWait are the total wall time the node's goroutines
	// spent blocked inside Send/SendAny (including the simulated transfer)
	// and Recv/RecvAny respectively. Summed across the goroutines of an FG
	// network they show how much communication latency the pipelines had to
	// hide.
	SendWait time.Duration
	RecvWait time.Duration
	// SendsBlocked and RecvsBlocked are instantaneous gauges: how many of
	// the node's goroutines are parked inside a Send (mailbox full) or a
	// Recv (no message) right now. A stall watchdog reads them to tell a
	// hung communication from a hung disk.
	SendsBlocked int64
	RecvsBlocked int64
	// Reconnects counts TCP connections this node redialed after a
	// failure (the first dial of a connection is not a reconnect). Always
	// zero on the in-process transport.
	Reconnects int64
}

// commCounters is the lock-free backing store for CommStats: the hot
// communication paths add to atomics so a Stats snapshot (a metrics scrape
// mid-run, say) never contends with them.
type commCounters struct {
	msgsSent   atomic.Int64
	bytesSent  atomic.Int64
	msgsRecvd  atomic.Int64
	bytesRecvd atomic.Int64
	sendBusy   atomic.Int64 // ns
	sendWait   atomic.Int64 // ns
	recvWait   atomic.Int64 // ns

	// Instantaneous gauges, incremented entering the blocking region of a
	// send/recv and decremented leaving it (on every path, abort included).
	sendsBlocked atomic.Int64
	recvsBlocked atomic.Int64

	reconnects atomic.Int64
}

// A CommObserver is called after each completed blocking communication
// operation. op is "send" or "recv", peer the destination or source rank
// (-1 for any-source receives), nbytes the payload size, xfer the
// cluster-wide transfer ID the message carries (the sender's and the
// receiver's observations of one message share it), and [start, end) the
// operation's wall-clock interval, blocking included. Observers run on
// the communicating goroutine and must be fast and safe for concurrent
// calls; the experiment harness uses one to put comm intervals on an
// fg.Tracer timeline. Non-blocking TryRecv variants are not observed.
type CommObserver func(op string, peer, nbytes int, xfer int64, start, end time.Time)

// A Node is one simulated cluster node. Its methods are safe for use from
// any number of the node's goroutines concurrently.
type Node struct {
	rank    int
	cluster *Cluster
	Disk    *pdm.Disk

	mu        sync.Mutex
	mailboxes map[mailboxKey]chan message
	fault     func(op string, peer int, nbytes int) error

	stats commCounters
	obs   atomic.Pointer[CommObserver]

	anyMu    sync.Mutex
	anyBoxes map[anyMailboxKey]chan message

	nic pdm.CostGate // serializes simulated transmit time, one NIC per node
}

type mailboxKey struct {
	src int
	tag int64
}

// message is one mailbox entry: the payload plus the source rank (needed
// by any-source receives) and the transfer ID assigned at the send, which
// rides along so the receiver observes the same ID.
type message struct {
	src  int
	xfer int64
	data []byte
}

// Rank returns this node's rank in [0, P).
func (n *Node) Rank() int { return n.rank }

// P returns the cluster size.
func (n *Node) P() int { return n.cluster.cfg.Nodes }

// Cluster returns the cluster this node belongs to.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Stats returns a snapshot of the node's communication counters. It is
// lock-free and safe to call at any time, including concurrently with the
// node's communication.
func (n *Node) Stats() CommStats {
	return CommStats{
		MessagesSent:  n.stats.msgsSent.Load(),
		BytesSent:     n.stats.bytesSent.Load(),
		MessagesRecvd: n.stats.msgsRecvd.Load(),
		BytesRecvd:    n.stats.bytesRecvd.Load(),
		SendBusy:      time.Duration(n.stats.sendBusy.Load()),
		SendWait:      time.Duration(n.stats.sendWait.Load()),
		RecvWait:      time.Duration(n.stats.recvWait.Load()),
		SendsBlocked:  n.stats.sendsBlocked.Load(),
		RecvsBlocked:  n.stats.recvsBlocked.Load(),
		Reconnects:    n.stats.reconnects.Load(),
	}
}

// ResetStats zeroes the node's communication counters.
func (n *Node) ResetStats() {
	n.stats.msgsSent.Store(0)
	n.stats.bytesSent.Store(0)
	n.stats.msgsRecvd.Store(0)
	n.stats.bytesRecvd.Store(0)
	n.stats.sendBusy.Store(0)
	n.stats.sendWait.Store(0)
	n.stats.recvWait.Store(0)
	n.stats.reconnects.Store(0)
}

// SetCommObserver installs (or, with nil, removes) an observer for this
// node's blocking communication operations.
func (n *Node) SetCommObserver(f CommObserver) {
	if f == nil {
		n.obs.Store(nil)
		return
	}
	n.obs.Store(&f)
}

// observe reports one completed operation to the observer, if any.
func (n *Node) observe(op string, peer, nbytes int, xfer int64, start time.Time) {
	if f := n.obs.Load(); f != nil {
		(*f)(op, peer, nbytes, xfer, start, time.Now())
	}
}

// SetFault installs a fault injector on this node's communication: before
// every Send, SendAny, Recv, or RecvAny, fn is called with the operation
// ("send" or "recv"), the peer rank (-1 for any-source receives), and the
// payload size (0 for receives). A non-nil return kills the operation with
// a panic carrying a CommError — the MPI-style interface has no error
// returns — which FG's panic isolation converts into a network error.
// Passing nil clears the injector. Non-blocking TryRecv variants are not
// subject to injection.
func (n *Node) SetFault(fn func(op string, peer int, nbytes int) error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fault = fn
}

// checkFault consults the injector; it panics with a CommError if the
// injector kills the operation.
func (n *Node) checkFault(op string, peer, nbytes int) {
	n.mu.Lock()
	fn := n.fault
	n.mu.Unlock()
	if fn == nil {
		return
	}
	if err := fn(op, peer, nbytes); err != nil {
		panic(&CommError{Op: op, Rank: n.rank, Peer: peer, Err: err})
	}
}

// mailbox returns (creating if needed) the channel buffering messages from
// src with the given tag.
func (n *Node) mailbox(src int, tag int64) chan message {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := mailboxKey{src, tag}
	mb := n.mailboxes[key]
	if mb == nil {
		mb = make(chan message, n.cluster.cfg.MailboxDepth)
		n.mailboxes[key] = mb
	}
	return mb
}

// deliverLocal places a frame in the destination node's mailbox, blocking
// until the mailbox has room (the receiver-side backpressure every
// transport shares). It returns ErrAborted if the job aborts first, or
// errTransportClosed if the optional cancel channel closes first — the TCP
// transport passes its shutdown channel so Close can release readers
// parked on a full mailbox; the in-process transport passes nil.
func (c *Cluster) deliverLocal(f Frame, cancel <-chan struct{}) error {
	if f.Src < 0 || f.Src >= len(c.parts) || f.Dst < 0 || f.Dst >= len(c.parts) {
		return fmt.Errorf("cluster: frame ranks %d->%d outside [0, %d)", f.Src, f.Dst, len(c.parts))
	}
	// A simulated partition swallows the frame before any observable
	// effect; the sender cannot tell (its bytes left the NIC), which is the
	// failure mode heartbeats exist to detect.
	if c.parts[f.Src].Load() || c.parts[f.Dst].Load() {
		return nil
	}
	// Control frames (the reserved negative tag space — heartbeats and the
	// telemetry plane) never touch a mailbox: they update their subsystem
	// and vanish, so the whole control plane costs the data path one sign
	// compare.
	if f.Tag < 0 {
		c.deliverControl(f)
		return nil
	}
	dst := c.nodes[f.Dst]
	if dst == nil {
		return fmt.Errorf("cluster: rank %d is not hosted by this process", f.Dst)
	}
	var mb chan message
	if f.Any {
		mb = dst.anyMailbox(f.Tag)
	} else {
		mb = dst.mailbox(f.Src, f.Tag)
	}
	m := message{src: f.Src, xfer: f.Xfer, data: f.Data}
	if cancel == nil {
		select {
		case mb <- m:
			return nil
		case <-c.aborted:
			return ErrAborted
		}
	}
	select {
	case mb <- m:
		return nil
	case <-c.aborted:
		return ErrAborted
	case <-cancel:
		return errTransportClosed
	}
}

// deliverControl dispatches one reserved-tag control frame. Unknown
// control tags are dropped: a newer peer speaking a control protocol this
// build lacks degrades to silence, never to a mis-routed mailbox write.
func (c *Cluster) deliverControl(f Frame) {
	switch f.Tag {
	case healthTag:
		if c.health != nil {
			c.health.observe(f.Src)
		}
	case telemetryTag, telemetryPullTag, telemetryReplyTag:
		if t := c.telemetry.Load(); t != nil {
			t.deliver(f)
		}
	}
}

// sendFrame is the shared body of Send and SendAny: fault check, abort
// preflight, copy, transfer-ID mint, transport delivery, stats, observer.
func (n *Node) sendFrame(dst int, tag int64, any bool, data []byte) {
	if dst < 0 || dst >= n.P() {
		panic(fmt.Sprintf("cluster: node %d sending to invalid rank %d", n.rank, dst))
	}
	n.checkFault("send", dst, len(data))
	// Abort preflight: a send attempted after the job aborted must fail
	// deterministically rather than race the abort against a mailbox that
	// still has room.
	if n.cluster.Aborted() {
		n.abortPanic("send", dst)
	}
	msg := make([]byte, len(data))
	copy(msg, data)
	tr := n.cluster.transport
	xfer := tr.NextXfer(n.rank)

	start := time.Now()
	err := tr.Deliver(Frame{Src: n.rank, Dst: dst, Tag: tag, Xfer: xfer, Any: any, Data: msg})
	if err != nil {
		if errors.Is(err, ErrAborted) {
			n.abortPanic("send", dst)
		}
		panic(&CommError{Op: "send", Rank: n.rank, Peer: dst, Err: err})
	}
	n.stats.msgsSent.Add(1)
	n.stats.bytesSent.Add(int64(len(data)))
	n.stats.sendWait.Add(int64(time.Since(start)))
	n.observe("send", dst, len(data), xfer, start)
}

// recvFrame is the shared body of Recv and RecvAny. peer is the reported
// peer rank: src for point-to-point, -1 for any-source.
func (n *Node) recvFrame(mb chan message, peer int) message {
	n.checkFault("recv", peer, 0)
	if n.cluster.Aborted() {
		n.abortPanic("recv", peer)
	}
	start := time.Now()
	var msg message
	n.stats.recvsBlocked.Add(1)
	select {
	case msg = <-mb:
	case <-n.cluster.aborted:
		n.stats.recvsBlocked.Add(-1)
		n.abortPanic("recv", peer)
	}
	n.stats.recvsBlocked.Add(-1)
	n.stats.msgsRecvd.Add(1)
	n.stats.bytesRecvd.Add(int64(len(msg.data)))
	n.stats.recvWait.Add(int64(time.Since(start)))
	n.observe("recv", peer, len(msg.data), msg.xfer, start)
	return msg
}

// Send transmits a copy of data to node dst with the given tag. It blocks
// until the message is accepted for delivery: on the in-process transport
// that includes the simulated transfer duration (self-sends are free, as
// through shared memory); over TCP it includes any wait for the in-flight
// byte budget. After Send returns the caller may reuse data.
func (n *Node) Send(dst int, tag int64, data []byte) {
	n.sendFrame(dst, tag, false, data)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
func (n *Node) Recv(src int, tag int64) []byte {
	if src < 0 || src >= n.P() {
		panic(fmt.Sprintf("cluster: node %d receiving from invalid rank %d", n.rank, src))
	}
	return n.recvFrame(n.mailbox(src, tag), src).data
}

// TryRecv returns a pending message from src with the given tag, or
// (nil, false) if none is waiting.
func (n *Node) TryRecv(src int, tag int64) ([]byte, bool) {
	select {
	case msg := <-n.mailbox(src, tag):
		n.stats.msgsRecvd.Add(1)
		n.stats.bytesRecvd.Add(int64(len(msg.data)))
		return msg.data, true
	default:
		return nil, false
	}
}

// EmitMetrics feeds every node's communication counters to emit, one
// sample per counter labeled by node rank. The signature matches what
// fg.MetricsRegistry.RegisterFunc accepts, without this package importing
// fg:
//
//	registry.RegisterFunc(func(emit fg.EmitFunc) { c.EmitMetrics(emit) })
func (c *Cluster) EmitMetrics(emit func(name string, labels map[string]string, value float64)) {
	for _, n := range c.local {
		s := n.Stats()
		l := func() map[string]string {
			return map[string]string{"node": strconv.Itoa(n.rank)}
		}
		emit("cluster_messages_sent_total", l(), float64(s.MessagesSent))
		emit("cluster_bytes_sent_total", l(), float64(s.BytesSent))
		emit("cluster_messages_recvd_total", l(), float64(s.MessagesRecvd))
		emit("cluster_bytes_recvd_total", l(), float64(s.BytesRecvd))
		emit("cluster_send_busy_seconds_total", l(), s.SendBusy.Seconds())
		emit("cluster_send_wait_seconds_total", l(), s.SendWait.Seconds())
		emit("cluster_recv_wait_seconds_total", l(), s.RecvWait.Seconds())
		emit("cluster_sends_blocked", l(), float64(s.SendsBlocked))
		emit("cluster_recvs_blocked", l(), float64(s.RecvsBlocked))
		emit("cluster_reconnects_total", l(), float64(s.Reconnects))
	}
	if c.health != nil {
		c.health.emitMetrics(emit)
	}
}

// OnPeerDeath registers a hook invoked once, on the failure detector's
// goroutine, when a peer is declared dead — after the cause is recorded
// but concurrent with the abort that releases blocked operations. The hook
// observes (logs, counts); the abort itself needs no help. It must not
// block. A nil fn clears it. Without Config.Health the hook never fires.
func (c *Cluster) OnPeerDeath(fn func(rank int, err error)) {
	if fn == nil {
		c.onPeerDeath.Store(nil)
		return
	}
	c.onPeerDeath.Store(&fn)
}
