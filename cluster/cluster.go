// Package cluster simulates the distributed-memory cluster the paper ran
// on: P nodes, each with its own disk, connected by an interconnect with
// latency and bandwidth. Node programs are ordinary Go functions; the
// goroutines of one node's FG pipelines communicate with other nodes
// through a thread-safe, MPI-like message-passing interface (the paper used
// ChaMPIon/Pro, a thread-safe commercial MPI, for the same reason: FG runs
// one thread per pipeline stage, and several stages may communicate at
// once).
//
// The network model charges each message a fixed latency plus a
// size-proportional transfer time, and serializes the transfers of each
// sending node as a single NIC would. A goroutine paying the cost sleeps,
// which — just like a pthread blocked in MPI_Send — yields the processor to
// the node's other pipeline stages. That preserved blocking behaviour is
// what lets FG's pipelines overlap communication with I/O and computation,
// so it is the property the simulation takes care to keep.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"github.com/fg-go/fg/pdm"
)

// NetworkModel gives the simulated cost of interprocessor communication.
type NetworkModel struct {
	// Latency is charged once per message.
	Latency time.Duration
	// BytesPerSecond is the per-link transfer rate; zero means transfers
	// are free and only latency is charged.
	BytesPerSecond float64
}

// Cost returns the simulated duration of sending one message of n bytes.
func (m NetworkModel) Cost(n int) time.Duration {
	d := m.Latency
	if m.BytesPerSecond > 0 {
		d += time.Duration(float64(n) / m.BytesPerSecond * float64(time.Second))
	}
	return d
}

// NullNetworkModel charges nothing; useful in unit tests.
var NullNetworkModel = NetworkModel{}

// DefaultNetworkModel approximates the paper's 2 Gb/s Myrinet, scaled for
// laptop-sized experiments: 30 us latency, 250 MB/s per link.
var DefaultNetworkModel = NetworkModel{
	Latency:        30 * time.Microsecond,
	BytesPerSecond: 250e6,
}

// Config describes a simulated cluster.
type Config struct {
	// Nodes is P, the number of nodes.
	Nodes int
	// Disk is the cost model for every node's disk.
	Disk pdm.DiskModel
	// Network is the interconnect cost model.
	Network NetworkModel
	// MailboxDepth bounds how many undelivered messages one (source, tag)
	// mailbox buffers before further sends to it block. Zero selects a
	// generous default.
	MailboxDepth int
}

const defaultMailboxDepth = 1024

// A Cluster is a set of simulated nodes sharing an interconnect.
type Cluster struct {
	cfg   Config
	nodes []*Node
}

// New builds a cluster of cfg.Nodes nodes. It panics if cfg.Nodes < 1.
func New(cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("cluster: invalid node count %d", cfg.Nodes))
	}
	if cfg.MailboxDepth <= 0 {
		cfg.MailboxDepth = defaultMailboxDepth
	}
	c := &Cluster{cfg: cfg}
	c.nodes = make([]*Node, cfg.Nodes)
	for i := range c.nodes {
		c.nodes[i] = &Node{
			rank:      i,
			cluster:   c,
			Disk:      pdm.NewDisk(cfg.Disk),
			mailboxes: make(map[mailboxKey]chan []byte),
		}
	}
	return c
}

// P returns the number of nodes.
func (c *Cluster) P() int { return c.cfg.Nodes }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Disks returns the nodes' disks indexed by rank, for tools and verifiers
// that inspect the whole simulated machine from outside.
func (c *Cluster) Disks() []*pdm.Disk {
	out := make([]*pdm.Disk, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Disk
	}
	return out
}

// Run executes fn once per node, each invocation on its own goroutine, and
// waits for all of them. It returns the first non-nil error. A panic on a
// node goroutine is recovered and reported as that node's error.
func (c *Cluster) Run(fn func(*Node) error) error {
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("cluster: node %d panicked: %v", i, r)
				}
			}()
			errs[i] = fn(n)
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CommStats accumulates one node's traffic counters.
type CommStats struct {
	MessagesSent  int64
	BytesSent     int64
	MessagesRecvd int64
	BytesRecvd    int64
	// SendBusy is the total simulated time this node's NIC spent
	// transmitting.
	SendBusy time.Duration
}

// A Node is one simulated cluster node. Its methods are safe for use from
// any number of the node's goroutines concurrently.
type Node struct {
	rank    int
	cluster *Cluster
	Disk    *pdm.Disk

	mu        sync.Mutex
	mailboxes map[mailboxKey]chan []byte
	stats     CommStats

	anyMu    sync.Mutex
	anyBoxes map[anyMailboxKey]chan anyMessage

	nic pdm.CostGate // serializes simulated transmit time, one NIC per node
}

type mailboxKey struct {
	src int
	tag int64
}

// Rank returns this node's rank in [0, P).
func (n *Node) Rank() int { return n.rank }

// P returns the cluster size.
func (n *Node) P() int { return n.cluster.cfg.Nodes }

// Cluster returns the cluster this node belongs to.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Stats returns a snapshot of the node's communication counters.
func (n *Node) Stats() CommStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the node's communication counters.
func (n *Node) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = CommStats{}
}

// mailbox returns (creating if needed) the channel buffering messages from
// src with the given tag.
func (n *Node) mailbox(src int, tag int64) chan []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := mailboxKey{src, tag}
	mb := n.mailboxes[key]
	if mb == nil {
		mb = make(chan []byte, n.cluster.cfg.MailboxDepth)
		n.mailboxes[key] = mb
	}
	return mb
}

// Send transmits a copy of data to node dst with the given tag. It blocks
// for the simulated transfer duration (self-sends are free, as through
// shared memory). After Send returns the caller may reuse data.
func (n *Node) Send(dst int, tag int64, data []byte) {
	if dst < 0 || dst >= n.P() {
		panic(fmt.Sprintf("cluster: node %d sending to invalid rank %d", n.rank, dst))
	}
	msg := make([]byte, len(data))
	copy(msg, data)

	if dst != n.rank {
		cost := n.cluster.cfg.Network.Cost(len(data))
		n.nic.Charge(cost)
		n.mu.Lock()
		n.stats.SendBusy += cost
		n.mu.Unlock()
	}

	n.mu.Lock()
	n.stats.MessagesSent++
	n.stats.BytesSent += int64(len(data))
	n.mu.Unlock()

	n.cluster.nodes[dst].mailbox(n.rank, tag) <- msg
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
func (n *Node) Recv(src int, tag int64) []byte {
	if src < 0 || src >= n.P() {
		panic(fmt.Sprintf("cluster: node %d receiving from invalid rank %d", n.rank, src))
	}
	msg := <-n.mailbox(src, tag)
	n.mu.Lock()
	n.stats.MessagesRecvd++
	n.stats.BytesRecvd += int64(len(msg))
	n.mu.Unlock()
	return msg
}

// TryRecv returns a pending message from src with the given tag, or
// (nil, false) if none is waiting.
func (n *Node) TryRecv(src int, tag int64) ([]byte, bool) {
	select {
	case msg := <-n.mailbox(src, tag):
		n.mu.Lock()
		n.stats.MessagesRecvd++
		n.stats.BytesRecvd += int64(len(msg))
		n.mu.Unlock()
		return msg, true
	default:
		return nil, false
	}
}
