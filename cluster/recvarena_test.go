package cluster

import (
	"bytes"
	"testing"
)

// TestRecvArenaCarving checks the allocation-size policy and, critically,
// that carved buffers never overlap: a frame body bleeding into its
// neighbour would corrupt payloads in a way only a soak would catch.
func TestRecvArenaCarving(t *testing.T) {
	var a recvArena
	defer a.release()

	small := a.alloc(recvArenaMinCarve - 1)
	if len(small) != recvArenaMinCarve-1 {
		t.Fatalf("small alloc length %d", len(small))
	}
	if a.chunk != nil {
		t.Fatal("a below-floor alloc must not claim a chunk")
	}
	huge := a.alloc(recvArenaMaxCarve + 1)
	if a.chunk != nil {
		t.Fatal("an above-ceiling alloc must not claim a chunk")
	}
	if cap(huge) != recvArenaMaxCarve+1 {
		t.Fatalf("huge alloc cap %d, want exact", cap(huge))
	}

	// Carve a chunk's worth of mid-size bodies, stamp each, verify none
	// stomped another, and confirm appends cannot reach a neighbour.
	const n = 64 << 10
	var bufs [][]byte
	for i := 0; i < 3*recvArenaChunkSize/n; i++ {
		b := a.alloc(n)
		if len(b) != n || cap(b) != n {
			t.Fatalf("carved alloc len %d cap %d, want %d/%d", len(b), cap(b), n, n)
		}
		for j := range b {
			b[j] = byte(i)
		}
		bufs = append(bufs, b)
	}
	for i, b := range bufs {
		if !bytes.Equal(b, bytes.Repeat([]byte{byte(i)}, n)) {
			t.Fatalf("carved buffer %d was overwritten by a neighbour", i)
		}
	}
}

// TestRecvArenaReleaseRecyclesOnlyVirginChunks: a chunk that ever lent a
// byte to a frame is co-owned by the application and must not re-enter the
// pool on release.
func TestRecvArenaReleaseRecyclesOnlyVirginChunks(t *testing.T) {
	var a recvArena
	a.alloc(recvArenaMinCarve) // claims a chunk and carves from it
	used := a.chunk
	if used == nil {
		t.Fatal("carve did not claim a chunk")
	}
	a.release()
	if a.chunk != nil {
		t.Fatal("release must drop the chunk reference")
	}
	// A fresh arena must not be handed the dirty chunk back; drain the pool
	// a few times to make a collision with `used` overwhelmingly likely to
	// surface if release had recycled it.
	for i := 0; i < 8; i++ {
		var b recvArena
		b.alloc(recvArenaMinCarve)
		if &b.chunk[0] == &used[0] {
			t.Fatal("release recycled a chunk that application slices still alias")
		}
	}
}
