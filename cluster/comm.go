package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sync"
)

// A Comm is a communication context, the analogue of an MPI communicator.
// Each subsystem (a sorting pass, a splitter exchange) creates a Comm with
// its own name on every node; messages and collectives in one Comm never
// collide with those of another, so several pipeline stages can communicate
// concurrently — the property for which the paper required a thread-safe
// MPI implementation.
//
// Point-to-point Send/Recv on a Comm are safe for concurrent use. As with
// MPI communicators, *collective* operations on a given Comm must be called
// by all nodes in the same order, which in practice means one goroutine per
// node drives a given Comm's collectives; concurrent collective users
// should create separate Comms.
type Comm struct {
	n        *Node
	p2pBase  int64
	collBase int64

	mu  sync.Mutex
	seq int64 // collective sequence number
}

// Comm returns a communication context with the given name. Nodes that pass
// the same name get matching contexts.
func (n *Node) Comm(name string) *Comm {
	return &Comm{
		n:        n,
		p2pBase:  hashTag(name, 0x70327032),
		collBase: hashTag(name, 0xc011ec71),
	}
}

// hashTag derives a 64-bit tag-space base from a name and a salt.
func hashTag(name string, salt uint64) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], salt)
	h.Write(b[:])
	h.Write([]byte(name))
	return int64(h.Sum64() &^ (1 << 63))
}

// Node returns the node this Comm belongs to.
func (c *Comm) Node() *Node { return c.n }

// Rank returns the owning node's rank.
func (c *Comm) Rank() int { return c.n.rank }

// P returns the cluster size.
func (c *Comm) P() int { return c.n.P() }

// Send transmits data to dst under this Comm's tag space.
func (c *Comm) Send(dst int, tag int64, data []byte) {
	c.n.Send(dst, c.p2pBase+tag, data)
}

// Recv blocks for a message from src with the given tag.
func (c *Comm) Recv(src int, tag int64) []byte {
	return c.n.Recv(src, c.p2pBase+tag)
}

// TryRecv returns a pending message from src with the given tag, if any.
func (c *Comm) TryRecv(src int, tag int64) ([]byte, bool) {
	return c.n.TryRecv(src, c.p2pBase+tag)
}

// SendrecvReplace sends buf to dst and receives a message of the same size
// from src into buf, the analogue of MPI_Sendrecv_replace (used by csort's
// balanced communication steps).
func (c *Comm) SendrecvReplace(buf []byte, dst, src int, tag int64) {
	c.Send(dst, tag, buf)
	in := c.Recv(src, tag)
	if len(in) != len(buf) {
		panic("cluster: SendrecvReplace received a message of different size")
	}
	copy(buf, in)
}

// nextSeq reserves the next collective sequence number.
func (c *Comm) nextSeq() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

// Barrier blocks until every node has entered it.
func (c *Comm) Barrier() {
	tag := c.collBase + c.nextSeq()
	n := c.n
	if n.rank == 0 {
		for src := 1; src < n.P(); src++ {
			n.Recv(src, tag)
		}
		for dst := 1; dst < n.P(); dst++ {
			n.Send(dst, tag, nil)
		}
	} else {
		n.Send(0, tag, nil)
		n.Recv(0, tag)
	}
}

// Bcast distributes root's data to every node and returns each node's copy.
// Non-root callers pass nil.
func (c *Comm) Bcast(root int, data []byte) []byte {
	tag := c.collBase + c.nextSeq()
	n := c.n
	if n.rank == root {
		for dst := 0; dst < n.P(); dst++ {
			if dst != root {
				n.Send(dst, tag, data)
			}
		}
		out := make([]byte, len(data))
		copy(out, data)
		return out
	}
	return n.Recv(root, tag)
}

// Gather collects every node's data at root, indexed by rank. Non-root
// callers receive nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	tag := c.collBase + c.nextSeq()
	n := c.n
	if n.rank == root {
		out := make([][]byte, n.P())
		own := make([]byte, len(data))
		copy(own, data)
		out[root] = own
		for src := 0; src < n.P(); src++ {
			if src != root {
				out[src] = n.Recv(src, tag)
			}
		}
		return out
	}
	n.Send(root, tag, data)
	return nil
}

// Allgather collects every node's data on every node, indexed by rank.
func (c *Comm) Allgather(data []byte) [][]byte {
	tag := c.collBase + c.nextSeq()
	n := c.n
	// Send to every other node, starting with our successor so the cluster
	// does not converge on one receiver at a time.
	for i := 1; i < n.P(); i++ {
		n.Send((n.rank+i)%n.P(), tag, data)
	}
	out := make([][]byte, n.P())
	own := make([]byte, len(data))
	copy(own, data)
	out[n.rank] = own
	for src := 0; src < n.P(); src++ {
		if src != n.rank {
			out[src] = n.Recv(src, tag)
		}
	}
	return out
}

// Alltoall delivers parts[d] of each node to node d and returns the pieces
// this node received, indexed by source rank. Piece sizes may differ (the
// MPI_Alltoallv generalization). parts must have length P.
func (c *Comm) Alltoall(parts [][]byte) [][]byte {
	n := c.n
	if len(parts) != n.P() {
		panic("cluster: Alltoall requires exactly one part per node")
	}
	tag := c.collBase + c.nextSeq()
	for i := 1; i < n.P(); i++ {
		dst := (n.rank + i) % n.P()
		n.Send(dst, tag, parts[dst])
	}
	out := make([][]byte, n.P())
	own := make([]byte, len(parts[n.rank]))
	copy(own, parts[n.rank])
	out[n.rank] = own
	for src := 0; src < n.P(); src++ {
		if src != n.rank {
			out[src] = n.Recv(src, tag)
		}
	}
	return out
}
