package cluster

// The transport conformance suite: one table of contract tests executed
// against every Transport backend. A backend that passes delivers exactly
// the semantics the mailbox layer promises — FIFO per (source, tag),
// any-source merging, abort releasing blocked operations, transfer-ID
// agreement between the two ends — regardless of whether the bytes moved
// through a channel or a socket. Run one backend alone with
// FG_TRANSPORT=inproc or FG_TRANSPORT=tcp (the CI matrix does both).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// conformanceBackends lists the transports under test, honouring the
// FG_TRANSPORT environment filter.
func conformanceBackends(t *testing.T) []string {
	t.Helper()
	switch env := os.Getenv("FG_TRANSPORT"); env {
	case "":
		return []string{TransportInproc, TransportTCP}
	case TransportInproc, TransportTCP:
		return []string{env}
	default:
		t.Fatalf("FG_TRANSPORT=%q: want inproc or tcp", env)
		return nil
	}
}

// openConformance builds an all-local cluster on the given backend. Small
// mailbox and in-flight budgets make "sender blocked" cheap to arrange.
func openConformance(t *testing.T, kind string, nodes, mailboxDepth, inflight int) *Cluster {
	t.Helper()
	c, err := Open(Config{
		Nodes:        nodes,
		MailboxDepth: mailboxDepth,
		Transport: TransportConfig{
			Kind:             kind,
			MaxInflightBytes: inflight,
		},
	})
	if err != nil {
		t.Fatalf("open %s cluster: %v", kind, err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("close %s cluster: %v", kind, err)
		}
	})
	return c
}

// expectAbortErr runs fn, which must panic with a *CommError wrapping
// ErrAborted, and reports the panic it saw.
func expectAbortErr(t *testing.T, op string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s on aborted cluster did not panic", op)
		}
		var ce *CommError
		err, ok := r.(error)
		if !ok || !errors.As(err, &ce) || !errors.Is(ce, ErrAborted) {
			t.Fatalf("%s on aborted cluster panicked with %v, want CommError{ErrAborted}", op, r)
		}
	}()
	fn()
}

func TestTransportConformance(t *testing.T) {
	for _, kind := range conformanceBackends(t) {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Run("FIFOPerSourceAndTag", func(t *testing.T) { conformFIFO(t, kind) })
			t.Run("AnySourceDelivery", func(t *testing.T) { conformAnySource(t, kind) })
			t.Run("CommIsolation", func(t *testing.T) { conformCommIsolation(t, kind) })
			t.Run("PayloadIntegrity", func(t *testing.T) { conformPayloads(t, kind) })
			t.Run("XferCorrelation", func(t *testing.T) { conformXfer(t, kind) })
			t.Run("AbortReleasesBlockedSend", func(t *testing.T) { conformAbortSend(t, kind) })
			t.Run("AbortReleasesBlockedRecv", func(t *testing.T) { conformAbortRecv(t, kind) })
			t.Run("SendAfterAbortFailsFast", func(t *testing.T) { conformAbortPreflight(t, kind) })
			t.Run("PeerDeathReleasesBlockedOps", func(t *testing.T) { conformPeerDeath(t, kind) })
			t.Run("HeartbeatSurvivesTransientPartition", func(t *testing.T) { conformTransientPartition(t, kind) })
			t.Run("TelemetryUnderBackpressure", func(t *testing.T) { conformTelemetryBackpressure(t, kind) })
			t.Run("TelemetryReleasedOnAbort", func(t *testing.T) { conformTelemetryAbort(t, kind) })
			t.Run("TelemetryCleanShutdown", func(t *testing.T) { conformTelemetryShutdown(t, kind) })
			t.Run("CleanShutdown", func(t *testing.T) { conformShutdown(t, kind) })
		})
	}
}

// conformFIFO: messages from one source on one tag arrive in send order,
// across several concurrent sources and tags.
func conformFIFO(t *testing.T, kind string) {
	const P, msgs = 4, 64
	c := openConformance(t, kind, P, 0, 0)
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			// Receive from every source on both tags; assert per-stream order.
			var wg sync.WaitGroup
			errs := make(chan error, 2*(P-1))
			for src := 1; src < P; src++ {
				for _, tag := range []int64{7, 8} {
					wg.Add(1)
					go func(src int, tag int64) {
						defer wg.Done()
						for i := 0; i < msgs; i++ {
							got := binary.BigEndian.Uint32(n.Recv(src, tag))
							if got != uint32(i) {
								errs <- fmt.Errorf("src %d tag %d: message %d arrived in slot %d", src, tag, got, i)
								return
							}
						}
					}(src, tag)
				}
			}
			wg.Wait()
			close(errs)
			return <-errs
		}
		var buf [4]byte
		for i := 0; i < msgs; i++ {
			binary.BigEndian.PutUint32(buf[:], uint32(i))
			n.Send(0, 7, buf[:])
			n.Send(0, 8, buf[:])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// conformAnySource: RecvAny sees every sender's messages, attributes each
// to its true source, and preserves per-source order.
func conformAnySource(t *testing.T, kind string) {
	const P, msgs = 4, 32
	c := openConformance(t, kind, P, 0, 0)
	err := c.Run(func(n *Node) error {
		const tag = 42
		if n.Rank() == 0 {
			next := make([]uint32, P)
			counts := make([]int, P)
			for i := 0; i < (P-1)*msgs; i++ {
				src, data := n.RecvAny(tag)
				if src < 1 || src >= P {
					return fmt.Errorf("RecvAny reported source %d", src)
				}
				got := binary.BigEndian.Uint32(data)
				if got != next[src] {
					return fmt.Errorf("src %d: message %d arrived in slot %d", src, got, next[src])
				}
				next[src]++
				counts[src]++
			}
			for src := 1; src < P; src++ {
				if counts[src] != msgs {
					return fmt.Errorf("src %d delivered %d messages, want %d", src, counts[src], msgs)
				}
			}
			return nil
		}
		var buf [4]byte
		for i := 0; i < msgs; i++ {
			binary.BigEndian.PutUint32(buf[:], uint32(i))
			n.SendAny(0, tag, buf[:])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// conformCommIsolation: two Comms with different names between the same
// pair of nodes never see each other's traffic, even interleaved.
func conformCommIsolation(t *testing.T, kind string) {
	const msgs = 48
	c := openConformance(t, kind, 2, 0, 0)
	err := c.Run(func(n *Node) error {
		commA, commB := n.Comm("alpha"), n.Comm("beta")
		if n.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				commA.Send(1, 1, []byte{0xAA, byte(i)})
				commB.Send(1, 1, []byte{0xBB, byte(i)})
			}
			return nil
		}
		var wg sync.WaitGroup
		errs := make(chan error, 2)
		check := func(comm *Comm, want byte) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				got := comm.Recv(0, 1)
				if len(got) != 2 || got[0] != want || got[1] != byte(i) {
					errs <- fmt.Errorf("comm %#x: message %d = %x", want, i, got)
					return
				}
			}
		}
		wg.Add(2)
		go check(commA, 0xAA)
		go check(commB, 0xBB)
		wg.Wait()
		close(errs)
		return <-errs
	})
	if err != nil {
		t.Fatal(err)
	}
}

// conformPayloads: zero-byte and megabyte payloads round-trip intact, and
// the receiver's copy is independent of the sender's buffer.
func conformPayloads(t *testing.T, kind string) {
	c := openConformance(t, kind, 2, 0, 0)
	sizes := []int{0, 1, 30, 4096, 1 << 20}
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			for i, size := range sizes {
				data := make([]byte, size)
				for j := range data {
					data[j] = byte(i + j)
				}
				n.Send(1, int64(i), data)
				for j := range data {
					data[j] = 0xFF // sender reuses its buffer immediately
				}
			}
			return nil
		}
		for i, size := range sizes {
			got := n.Recv(0, int64(i))
			if len(got) != size {
				return fmt.Errorf("size %d: received %d bytes", size, len(got))
			}
			want := make([]byte, size)
			for j := range want {
				want[j] = byte(i + j)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("size %d: payload corrupted", size)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// conformXfer: the sender's and receiver's observations of each message
// carry the same transfer ID, and IDs never repeat — the contract
// fg.MergeChromeTraces' cross-node flow arrows depend on.
func conformXfer(t *testing.T, kind string) {
	const msgs = 40
	c := openConformance(t, kind, 2, 0, 0)
	var mu sync.Mutex
	sent := make(map[int64]int)
	recvd := make(map[int64]int)
	for _, n := range c.Local() {
		n.SetCommObserver(func(op string, peer, nbytes int, xfer int64, start, end time.Time) {
			mu.Lock()
			defer mu.Unlock()
			if op == "send" {
				sent[xfer]++
			} else {
				recvd[xfer]++
			}
		})
	}
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				n.Send(1, 5, []byte{byte(i)})
				n.SendAny(1, 6, []byte{byte(i)})
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			n.Recv(0, 5)
			n.RecvAny(6)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sent) != 2*msgs {
		t.Fatalf("%d distinct sender transfer IDs for %d sends", len(sent), 2*msgs)
	}
	for xfer, count := range sent {
		if count != 1 {
			t.Errorf("transfer ID %d minted %d times", xfer, count)
		}
		if recvd[xfer] != 1 {
			t.Errorf("transfer ID %d observed %d times at the receiver, want 1", xfer, recvd[xfer])
		}
	}
}

// conformAbortSend: a Send blocked on backpressure (full mailbox in-process,
// exhausted in-flight budget over TCP) is released by Abort with
// CommError{ErrAborted}.
func conformAbortSend(t *testing.T, kind string) {
	c := openConformance(t, kind, 2, 1, 64)
	released := make(chan struct{})
	go func() {
		defer close(released)
		expectAbortErr(t, "blocked send", func() {
			n := c.Node(0)
			payload := make([]byte, 1024)
			for i := 0; ; i++ {
				n.Send(1, 9, payload) // nobody receives; must block soon
			}
		})
	}()
	// Give the sender time to fill the mailbox/budget and park.
	time.Sleep(100 * time.Millisecond)
	c.Abort()
	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not release the blocked send")
	}
}

// conformAbortRecv: a Recv blocked on an empty mailbox is released by
// Abort, for both point-to-point and any-source receives.
func conformAbortRecv(t *testing.T, kind string) {
	c := openConformance(t, kind, 2, 0, 0)
	var wg sync.WaitGroup
	wg.Add(2)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		expectAbortErr(t, "blocked recv", func() { c.Node(1).Recv(0, 3) })
	}()
	go func() {
		defer wg.Done()
		expectAbortErr(t, "blocked any-source recv", func() { c.Node(1).RecvAny(4) })
	}()
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	c.Abort()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not release the blocked receives")
	}
}

// conformAbortPreflight is the regression test for the send-after-abort
// race: once the job is aborted, a fresh Send must fail with
// CommError{ErrAborted} deterministically — it used to race the abort
// channel against a mailbox with free space and sometimes "succeed" into a
// mailbox nobody would ever drain. Looped because the old behaviour was
// probabilistic.
func conformAbortPreflight(t *testing.T, kind string) {
	c := openConformance(t, kind, 2, 0, 0)
	c.Abort()
	for i := 0; i < 200; i++ {
		expectAbortErr(t, "send after abort", func() { c.Node(0).Send(1, 2, []byte("x")) })
		expectAbortErr(t, "any-send after abort", func() { c.Node(0).SendAny(1, 2, []byte("x")) })
		expectAbortErr(t, "recv after abort", func() { c.Node(1).Recv(0, 2) })
	}
}

// conformShutdown: after traffic, Close returns and leaves no transport
// goroutine running. internal/check's leak detector can't be used from
// package cluster (import cycle), so this polls the runtime directly.
func conformShutdown(t *testing.T, kind string) {
	before := countClusterGoroutines()
	c := openConformance(t, kind, 3, 0, 0)
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			for i := 1; i < 3; i++ {
				n.Recv(i, 1)
			}
			return nil
		}
		n.Send(0, 1, make([]byte, 4096))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := countClusterGoroutines(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("transport goroutines leaked after Close:\n%s", buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// countClusterGoroutines counts live goroutines with a cluster-package
// frame on their stack.
func countClusterGoroutines() int {
	buf := make([]byte, 1<<20)
	stacks := string(buf[:runtime.Stack(buf, true)])
	count := 0
	for _, g := range strings.Split(stacks, "\n\n") {
		if strings.Contains(g, "fg/cluster.") && !strings.Contains(g, "countClusterGoroutines") {
			count++
		}
	}
	return count
}

// openHealthConformance builds an all-local cluster with the failure
// detector armed on a fast clock. Small mailbox and in-flight budgets keep
// "sender blocked" cheap to arrange, as in openConformance.
func openHealthConformance(t *testing.T, kind string, nodes int, h HealthConfig) *Cluster {
	t.Helper()
	c, err := Open(Config{
		Nodes:        nodes,
		MailboxDepth: 1,
		Health:       h,
		Transport: TransportConfig{
			Kind:             kind,
			MaxInflightBytes: 64,
		},
	})
	if err != nil {
		t.Fatalf("open %s cluster: %v", kind, err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("close %s cluster: %v", kind, err)
		}
	})
	return c
}

// expectPeerDeadErr runs fn, which must panic with a *CommError wrapping
// ErrPeerDead — the failure detector's signature, distinct from a plain
// abort's ErrAborted.
func expectPeerDeadErr(t *testing.T, op string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s survived peer death without panicking", op)
			return
		}
		var ce *CommError
		err, ok := r.(error)
		if !ok || !errors.As(err, &ce) || !errors.Is(ce, ErrPeerDead) {
			t.Errorf("%s panicked with %v, want CommError{ErrPeerDead}", op, r)
		}
	}()
	fn()
}

// conformPeerDeath: when the failure detector declares a peer dead, every
// blocked operation — point-to-point receive, any-source receive, and a
// send parked on backpressure — must be released with
// CommError{ErrPeerDead}, attributing the failure to the death rather than
// to a generic abort. The dying peer is simulated by partitioning a local
// rank, which silences its heartbeats exactly as SIGKILL would.
func conformPeerDeath(t *testing.T, kind string) {
	h := HealthConfig{
		Interval:     10 * time.Millisecond,
		SuspectAfter: 40 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
		StartupGrace: 10 * time.Second,
	}
	c := openHealthConformance(t, kind, 3, h)
	var wg sync.WaitGroup
	wg.Add(3)
	released := make(chan struct{})
	go func() {
		defer wg.Done()
		expectPeerDeadErr(t, "blocked recv from the dead peer", func() { c.Node(0).Recv(2, 3) })
	}()
	go func() {
		defer wg.Done()
		expectPeerDeadErr(t, "blocked any-source recv", func() { c.Node(1).RecvAny(4) })
	}()
	go func() {
		defer wg.Done()
		expectPeerDeadErr(t, "blocked send", func() {
			n := c.Node(0)
			payload := make([]byte, 32)
			for {
				n.Send(1, 9, payload) // rank 1 never receives; must block soon
			}
		})
	}()
	go func() { wg.Wait(); close(released) }()

	// Let the operations park and a few heartbeat rounds flow, so rank 2
	// has been heard from and its death will age against DeadAfter, not
	// startup grace.
	time.Sleep(60 * time.Millisecond)
	c.SetPartitioned(2, true)
	select {
	case <-released:
	case <-time.After(10 * time.Second):
		t.Fatal("peer death did not release the blocked operations")
	}
	var dead *PeerStatus
	for _, st := range c.PeerHealth() {
		if st.Dead {
			st := st
			dead = &st
		}
	}
	if dead == nil || dead.Rank != 2 {
		t.Errorf("PeerHealth names no dead rank 2: %+v", c.PeerHealth())
	}
}

// conformTransientPartition: a partition shorter than the dead threshold
// must not kill anyone. The detector may mark the silent rank suspect, but
// once the partition heals and heartbeats resume, the rank recovers and
// traffic flows again — the property that separates a failure detector
// from a hair trigger.
func conformTransientPartition(t *testing.T, kind string) {
	h := HealthConfig{
		Interval:     10 * time.Millisecond,
		SuspectAfter: 50 * time.Millisecond,
		DeadAfter:    2 * time.Second,
		StartupGrace: 10 * time.Second,
	}
	c := openHealthConformance(t, kind, 2, h)

	// Traffic before: both directions work.
	c.Node(1).Send(0, 1, []byte("pre"))
	if got := c.Node(0).Recv(1, 1); string(got) != "pre" {
		t.Fatalf("pre-partition payload %q", got)
	}

	// Partition rank 1 while the cluster is quiet: only heartbeats are
	// lost. Hold it well past the suspect threshold and well short of the
	// dead one.
	c.SetPartitioned(1, true)
	suspectDeadline := time.Now().Add(time.Second)
	for {
		if c.PeerHealth()[1].Suspect {
			break
		}
		if time.Now().After(suspectDeadline) {
			t.Fatal("partitioned rank never marked suspect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.SetPartitioned(1, false)

	// Recovery: a resumed heartbeat clears the suspicion and traffic works.
	clearDeadline := time.Now().Add(time.Second)
	for {
		if st := c.PeerHealth()[1]; !st.Suspect && !st.Dead {
			break
		}
		if time.Now().After(clearDeadline) {
			t.Fatalf("healed rank still suspect/dead: %+v", c.PeerHealth()[1])
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Aborted() {
		t.Fatal("transient partition aborted the cluster")
	}
	c.Node(1).Send(0, 2, []byte("post"))
	if got := c.Node(0).Recv(1, 2); string(got) != "post" {
		t.Fatalf("post-heal payload %q", got)
	}
}
