package cluster

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// freeAddrs reserves n distinct loopback addresses by briefly listening on
// ephemeral ports. The listeners are closed before returning, so there is a
// small reuse window — fine for tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// openTCPPair builds a two-rank multi-process-style job inside one test
// process: two Cluster values, each hosting one rank, wired to each other
// over real loopback TCP.
func openTCPPair(t *testing.T) (c0, c1 *Cluster) {
	t.Helper()
	peers := freeAddrs(t, 2)
	open := func(rank int) *Cluster {
		c, err := Open(Config{
			Nodes: 2,
			Transport: TransportConfig{
				Kind:        TransportTCP,
				Peers:       peers,
				Rank:        rank,
				DialTimeout: 5 * time.Second,
			},
		})
		if err != nil {
			t.Fatalf("open rank %d: %v", rank, err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	return open(0), open(1)
}

func TestTCPMultiProcessExchange(t *testing.T) {
	c0, c1 := openTCPPair(t)
	if c0.AllLocal() || c1.AllLocal() {
		t.Fatal("multi-process cluster claims to host every rank")
	}
	if c0.Node(1) != nil || c1.Node(0) != nil {
		t.Fatal("remote rank has a local node")
	}
	payload := bytes.Repeat([]byte{0x5A}, 100_000)
	done := make(chan []byte, 1)
	go func() {
		got := c1.Node(1).Recv(0, 3)
		c1.Node(1).Send(0, 4, []byte("ack"))
		done <- got
	}()
	c0.Node(0).Send(1, 3, payload)
	if ack := c0.Node(0).Recv(1, 4); string(ack) != "ack" {
		t.Fatalf("ack = %q", ack)
	}
	if got := <-done; !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted across processes: %d bytes", len(got))
	}
}

func TestTCPAbortPropagatesAcrossProcesses(t *testing.T) {
	c0, c1 := openTCPPair(t)
	released := make(chan any, 1)
	go func() {
		defer func() { released <- recover() }()
		c1.Node(1).Recv(0, 7) // nothing will ever arrive
	}()
	time.Sleep(50 * time.Millisecond)
	c0.Abort() // rank 0's process aborts; rank 1's must learn over the wire
	select {
	case r := <-released:
		var ce *CommError
		err, ok := r.(error)
		if !ok || !errors.As(err, &ce) || !errors.Is(ce, ErrAborted) {
			t.Fatalf("blocked recv released with %v, want CommError{ErrAborted}", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("abort never reached the peer process")
	}
	if !c1.Aborted() {
		t.Fatal("peer cluster not marked aborted")
	}
}

// TestTCPInjectedDropIsTransient: a dropped frame surfaces as a CommError
// panic at the sender, and a plain retry of the same Send succeeds.
func TestTCPInjectedDropIsTransient(t *testing.T) {
	c, err := Open(Config{Nodes: 2, Transport: TransportConfig{Kind: TransportTCP}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	var failed atomic.Bool
	c.SetNetFault(func(src, dst, nbytes int) NetFault {
		if failed.CompareAndSwap(false, true) {
			return NetFaultDrop
		}
		return NetFaultNone
	})
	send := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = r.(error)
			}
		}()
		c.Node(0).Send(1, 1, []byte("payload"))
		return nil
	}
	var ce *CommError
	if err := send(); !errors.As(err, &ce) || errors.Is(err, ErrAborted) {
		t.Fatalf("first send: %v, want a transient CommError", err)
	}
	if err := send(); err != nil {
		t.Fatalf("retried send: %v", err)
	}
	if got := c.Node(1).Recv(0, 1); string(got) != "payload" {
		t.Fatalf("recv = %q", got)
	}
}

// TestTCPConnectionCloseRecovers: an injected connection close loses the
// frame in flight, but the next Deliver redials and traffic resumes — the
// lost message itself is watchdog territory, not the transport's.
func TestTCPConnectionCloseRecovers(t *testing.T) {
	c, err := Open(Config{Nodes: 2, Transport: TransportConfig{Kind: TransportTCP}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	tr := c.transport.(*tcpTransport)

	// Warm the connection, then kill it under the third message.
	var n atomic.Int64
	c.SetNetFault(func(src, dst, nbytes int) NetFault {
		if n.Add(1) == 3 {
			return NetFaultCloseMidFrame
		}
		return NetFaultNone
	})
	c.Node(0).Send(1, 1, []byte("one"))
	c.Node(0).Send(1, 1, []byte("two"))
	c.Node(0).Send(1, 1, []byte("lost")) // accepted, then dies mid-frame
	// The writer marks the connection failed asynchronously; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for tr.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injected close never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Node(0).Send(1, 1, []byte("four")) // redials
	got := []string{
		string(c.Node(1).Recv(0, 1)),
		string(c.Node(1).Recv(0, 1)),
		string(c.Node(1).Recv(0, 1)),
	}
	want := []string{"one", "two", "four"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("received %q, want %q (the mid-frame casualty must vanish, order must hold)", got, want)
		}
	}
	if tr.Dropped() == 0 {
		t.Fatal("transport did not count the lost frame")
	}
}

// TestTCPSelfSendStaysLocal: a rank sending to itself never touches the
// socket, even on the TCP transport.
func TestTCPSelfSendStaysLocal(t *testing.T) {
	c, err := Open(Config{Nodes: 2, Transport: TransportConfig{Kind: TransportTCP}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetNetFault(func(src, dst, nbytes int) NetFault {
		t.Errorf("self-send reached the wire: %d -> %d", src, dst)
		return NetFaultNone
	})
	c.Node(0).Send(0, 1, []byte("loop"))
	if got := c.Node(0).Recv(0, 1); string(got) != "loop" {
		t.Fatalf("recv = %q", got)
	}
}

func TestTransportConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"inproc with peers", Config{Nodes: 2, Transport: TransportConfig{Kind: TransportInproc, Peers: []string{"a", "b"}}}},
		{"peer count mismatch", Config{Nodes: 3, Transport: TransportConfig{Kind: TransportTCP, Peers: []string{"a", "b"}}}},
		{"rank out of range", Config{Nodes: 2, Transport: TransportConfig{Kind: TransportTCP, Peers: []string{"a", "b"}, Rank: 5}}},
		{"unknown kind", Config{Nodes: 2, Transport: TransportConfig{Kind: "carrier-pigeon"}}},
		{"no nodes", Config{Nodes: 0}},
	}
	for _, tc := range cases {
		if _, err := Open(tc.cfg); err == nil {
			t.Errorf("%s: Open accepted a bad config", tc.name)
		}
	}
}
