package cluster

// Any-source receives, the analogue of MPI_Recv with MPI_ANY_SOURCE.
// dsort's receive stages cannot know which node will send next — the whole
// point of its unbalanced communication — so they pull from a per-tag
// mailbox that merges all senders.

type anyMailboxKey struct {
	tag int64
}

// anyMailbox returns (creating if needed) the any-source channel for tag.
func (n *Node) anyMailbox(tag int64) chan message {
	n.anyMu.Lock()
	defer n.anyMu.Unlock()
	if n.anyBoxes == nil {
		n.anyBoxes = make(map[anyMailboxKey]chan message)
	}
	key := anyMailboxKey{tag}
	mb := n.anyBoxes[key]
	if mb == nil {
		mb = make(chan message, n.cluster.cfg.MailboxDepth)
		n.anyBoxes[key] = mb
	}
	return mb
}

// SendAny transmits a copy of data to dst's any-source mailbox for tag.
// Messages sent with SendAny are received only by RecvAny; they do not mix
// with Send/Recv traffic.
func (n *Node) SendAny(dst int, tag int64, data []byte) {
	n.sendFrame(dst, tag, true, data)
}

// RecvAny blocks until any node's SendAny for this tag arrives, returning
// the sender's rank and the payload.
func (n *Node) RecvAny(tag int64) (src int, data []byte) {
	msg := n.recvFrame(n.anyMailbox(tag), -1)
	return msg.src, msg.data
}

// SendAny transmits data to dst's any-source mailbox under this Comm's tag
// space.
func (c *Comm) SendAny(dst int, tag int64, data []byte) {
	c.n.SendAny(dst, c.p2pBase+tag, data)
}

// RecvAny receives the next any-source message for tag in this Comm's tag
// space.
func (c *Comm) RecvAny(tag int64) (src int, data []byte) {
	return c.n.RecvAny(c.p2pBase + tag)
}

// TryRecvAny returns a pending any-source message for tag, if one is
// waiting. Single-pipeline programs use it to interleave draining incoming
// data with their other duties — the bookkeeping burden the paper ascribes
// to forgoing multiple pipelines.
func (n *Node) TryRecvAny(tag int64) (src int, data []byte, ok bool) {
	select {
	case msg := <-n.anyMailbox(tag):
		n.stats.msgsRecvd.Add(1)
		n.stats.bytesRecvd.Add(int64(len(msg.data)))
		return msg.src, msg.data, true
	default:
		return 0, nil, false
	}
}

// TryRecvAny is the Comm-scoped form of Node.TryRecvAny.
func (c *Comm) TryRecvAny(tag int64) (src int, data []byte, ok bool) {
	return c.n.TryRecvAny(c.p2pBase + tag)
}
