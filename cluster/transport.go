package cluster

import (
	"errors"
	"fmt"
	"time"
)

// A Frame is one transport-level message: the payload of a Send or SendAny
// plus the routing metadata the receiving side needs to put it in the right
// mailbox and to correlate the two ends of the transfer in merged traces.
type Frame struct {
	// Src and Dst are the sending and receiving ranks.
	Src, Dst int
	// Tag selects the mailbox (already offset into the owning Comm's tag
	// space by the caller).
	Tag int64
	// Xfer is the cluster-unique transfer ID; the sender's and receiver's
	// observations of one message share it (see CommObserver).
	Xfer int64
	// Any routes the frame to the destination's any-source mailbox for Tag
	// instead of the (Src, Tag) point-to-point mailbox.
	Any bool
	// Data is the payload. The sender hands ownership to the transport; it
	// is never written after Deliver is called.
	Data []byte
}

// A Transport moves frames between the nodes of one cluster job. The
// mailbox machinery above it — per-(source, tag) FIFO queues, any-source
// merging, blocking receives released by abort — is transport-independent;
// a Transport's whole contract is to take a frame from a local sender and
// make it come out of Cluster.deliverLocal on the process that hosts the
// destination rank, exactly once, in order per (Src, Dst, Tag, Any).
//
// Two implementations exist: the in-process backend (channel writes plus
// the simulated interconnect cost model) and the TCP backend
// (length-prefixed frames over real sockets). The conformance suite in
// conformance_test.go runs the same contract tests against both; any third
// backend should pass it too.
type Transport interface {
	// Start brings the transport up for cluster c: the in-process backend
	// just records c, the TCP backend binds its listeners. It is called
	// once, after the cluster's local nodes are built.
	Start(c *Cluster) error
	// NextXfer returns a fresh cluster-unique transfer ID for a message
	// originating at rank src. IDs are monotonic per source but need not be
	// globally dense — separate processes must not collide, not coordinate.
	NextXfer(src int) int64
	// Deliver routes f toward f.Dst, blocking for backpressure (a full
	// destination mailbox in-process; an exhausted in-flight byte budget
	// over TCP). It returns ErrAborted if the job aborts while blocked, or
	// a transport error (dial failure, broken connection, injected fault)
	// that the caller wraps in a CommError.
	Deliver(f Frame) error
	// DeliverControl routes a small control frame (a heartbeat, tagged in
	// the reserved negative tag space) toward f.Dst, promptly and
	// best-effort: it must never block on data backpressure or on
	// connection establishment — liveness signals that queue behind bulk
	// data would make a slow receiver indistinguishable from a dead one. A
	// non-nil error means the frame was not sent; the caller treats it as
	// a missed beat, not a failure.
	DeliverControl(f Frame) error
	// PropagateAbort tells the job's remote processes to abort,
	// best-effort; releasing this process's blocked operations is the
	// cluster's job, not the transport's. In-process it is a no-op.
	PropagateAbort()
	// Close releases the transport's resources — listeners, connections,
	// and every goroutine it started. It is idempotent, and after it
	// returns no transport goroutine is left running.
	Close() error
}

// Transport kind names for TransportConfig.Kind, also accepted by the
// harness and the fgsort/fgexp -transport flags.
const (
	TransportInproc = "inproc"
	TransportTCP    = "tcp"
)

// TransportConfig selects and parameterizes the cluster's transport.
type TransportConfig struct {
	// Kind names the backend: TransportInproc (the default for "") keeps
	// today's in-process mailboxes with the simulated interconnect;
	// TransportTCP moves every inter-rank message over real sockets.
	Kind string

	// Peers, for the TCP backend, maps rank to listen address
	// ("host:port"), one entry per node, so a job can span OS processes:
	// each process hosts the single rank given by Rank, listens on
	// Peers[Rank], and dials the other entries. Leaving Peers nil hosts
	// every rank in this process, each listening on an ephemeral loopback
	// port — real TCP with zero configuration, for tests and benchmarks.
	Peers []string
	// Rank is this process's rank when Peers is set; ignored otherwise.
	Rank int

	// MaxInflightBytes bounds, per destination, how many frame bytes a
	// sender may have queued toward the socket before further Delivers
	// block — the TCP backend's backpressure, playing the role the bounded
	// mailbox plays in-process. Zero selects a generous default.
	MaxInflightBytes int
	// DialTimeout bounds how long the TCP backend keeps retrying to reach
	// a peer that is not accepting yet (processes of one job start in some
	// order). Zero selects a default.
	DialTimeout time.Duration
}

// localRanks returns the ranks this process hosts under the config.
func (tc TransportConfig) localRanks(nodes int) ([]int, error) {
	all := func() []int {
		out := make([]int, nodes)
		for i := range out {
			out[i] = i
		}
		return out
	}
	switch tc.Kind {
	case "", TransportInproc:
		if tc.Peers != nil {
			return nil, errors.New("cluster: the inproc transport takes no peer addresses")
		}
		return all(), nil
	case TransportTCP:
		if tc.Peers == nil {
			return all(), nil
		}
		if len(tc.Peers) != nodes {
			return nil, fmt.Errorf("cluster: %d peer addresses for %d nodes", len(tc.Peers), nodes)
		}
		if tc.Rank < 0 || tc.Rank >= nodes {
			return nil, fmt.Errorf("cluster: local rank %d outside [0, %d)", tc.Rank, nodes)
		}
		return []int{tc.Rank}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q", tc.Kind)
	}
}

// newTransport builds the configured backend (unstarted).
func newTransport(tc TransportConfig) (Transport, error) {
	switch tc.Kind {
	case "", TransportInproc:
		return &inprocTransport{}, nil
	case TransportTCP:
		return newTCPTransport(tc), nil
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q", tc.Kind)
	}
}

// errTransportClosed is returned by operations cut short because the
// transport was shut down under them.
var errTransportClosed = errors.New("cluster: transport closed")

// inprocTransport is the shared-memory backend: a Deliver charges the
// simulated interconnect cost against the sender's NIC, then writes the
// destination node's mailbox channel directly. It is the original mailbox
// code with the cost model attached, behind the Transport seam.
type inprocTransport struct {
	c *Cluster
}

func (t *inprocTransport) Start(c *Cluster) error {
	t.c = c
	return nil
}

// NextXfer hands out IDs from the cluster-wide sequence: with every rank in
// one process, a single atomic is the cheapest way to be unique.
func (t *inprocTransport) NextXfer(int) int64 { return t.c.transferSeq.Add(1) }

func (t *inprocTransport) Deliver(f Frame) error {
	src := t.c.nodes[f.Src]
	if f.Dst != f.Src {
		// Charge the simulated wire: latency plus size-proportional
		// transfer, serialized through the sending node's one NIC.
		cost := t.c.cfg.Network.Cost(len(f.Data))
		src.nic.Charge(cost)
		src.stats.sendBusy.Add(int64(cost))
	}
	src.stats.sendsBlocked.Add(1)
	defer src.stats.sendsBlocked.Add(-1)
	return t.c.deliverLocal(f, nil)
}

// DeliverControl hands the frame straight to the local delivery path:
// control frames are intercepted there before any mailbox, so this never
// blocks and charges no simulated NIC time — heartbeats are not workload.
func (t *inprocTransport) DeliverControl(f Frame) error {
	return t.c.deliverLocal(f, nil)
}

func (t *inprocTransport) PropagateAbort() {}

func (t *inprocTransport) Close() error { return nil }

// Network fault injection for the wire-level transports. The hook sees
// every frame about to leave the process (self-sends never hit the wire and
// are exempt) and picks a fate for it; internal/faultinject adapts its
// deterministic injector to this signature, and its Latency config doubles
// as a slow-network simulator by sleeping inside the hook.
//
// The in-process backend has no wire, so these faults do not apply to it;
// use Node.SetFault there (drop and delay at the operation level).
type NetFault int

const (
	// NetFaultNone lets the frame through.
	NetFaultNone NetFault = iota
	// NetFaultDrop fails the Deliver with a transient error before the
	// frame is queued; the sender sees a CommError and may retry.
	NetFaultDrop
	// NetFaultCloseConn closes the peer connection instead of writing the
	// frame. The frame is lost; a later Deliver redials.
	NetFaultCloseConn
	// NetFaultCloseMidFrame writes part of the frame and then closes the
	// connection — the reader sees a truncated stream, the message is
	// silently lost, and the resulting stall is the watchdog's to catch.
	NetFaultCloseMidFrame
)

// A NetFaultHook decides the fate of one outgoing frame.
type NetFaultHook func(src, dst, nbytes int) NetFault

// SetNetFault installs (or, with nil, removes) a wire fault hook on the
// cluster's TCP transport. On the in-process transport it is a no-op.
func (c *Cluster) SetNetFault(h NetFaultHook) {
	if t, ok := c.transport.(*tcpTransport); ok {
		t.setFault(h)
	}
}
