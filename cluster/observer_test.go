package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCommObserverXferLinksSendToRecv checks transfer-ID correlation: the
// IDs the sender's observer sees on its sends are exactly the IDs the
// receiver's observer sees on its receives — the property cross-node trace
// merging relies on to draw flow arrows.
func TestCommObserverXferLinksSendToRecv(t *testing.T) {
	const msgs = 50
	c := testCluster(2)
	var mu sync.Mutex
	sent := map[int64]bool{}
	recvd := map[int64]bool{}
	for i := 0; i < 2; i++ {
		n := c.Node(i)
		n.SetCommObserver(func(op string, peer, nbytes int, xfer int64, start, end time.Time) {
			if xfer <= 0 {
				t.Errorf("%s observed non-positive transfer ID %d", op, xfer)
			}
			if end.Before(start) {
				t.Errorf("%s interval ends before it starts", op)
			}
			mu.Lock()
			defer mu.Unlock()
			switch op {
			case "send":
				if sent[xfer] {
					t.Errorf("transfer ID %d observed on two sends", xfer)
				}
				sent[xfer] = true
			case "recv":
				if recvd[xfer] {
					t.Errorf("transfer ID %d observed on two receives", xfer)
				}
				recvd[xfer] = true
			}
		})
	}
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				n.Send(1, 7, []byte{byte(i)})
			}
		} else {
			for i := 0; i < msgs; i++ {
				n.Recv(0, 7)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sent) != msgs || len(recvd) != msgs {
		t.Fatalf("observed %d sends and %d receives, want %d each", len(sent), len(recvd), msgs)
	}
	for id := range sent {
		if !recvd[id] {
			t.Errorf("send transfer ID %d has no matching receive", id)
		}
	}
	// A quiesced cluster has no one parked in a blocking operation.
	for i := 0; i < 2; i++ {
		st := c.Node(i).Stats()
		if st.SendsBlocked != 0 || st.RecvsBlocked != 0 {
			t.Errorf("node %d gauges after run: sendsBlocked=%d recvsBlocked=%d", i, st.SendsBlocked, st.RecvsBlocked)
		}
	}
}

// TestAnySourceObserverCarriesXfer covers the SendAny/RecvAny path: the
// receiver observes peer -1 and the sender's transfer ID.
func TestAnySourceObserverCarriesXfer(t *testing.T) {
	c := testCluster(2)
	var mu sync.Mutex
	sent := map[int64]bool{}
	recvd := map[int64]int{} // xfer -> observed peer
	for i := 0; i < 2; i++ {
		n := c.Node(i)
		n.SetCommObserver(func(op string, peer, nbytes int, xfer int64, start, end time.Time) {
			mu.Lock()
			defer mu.Unlock()
			switch op {
			case "send":
				sent[xfer] = true
			case "recv":
				recvd[xfer] = peer
			}
		})
	}
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			for i := 0; i < 10; i++ {
				n.SendAny(1, 3, []byte("x"))
			}
		} else {
			for i := 0; i < 10; i++ {
				n.RecvAny(3)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sent) != 10 || len(recvd) != 10 {
		t.Fatalf("observed %d sends, %d receives, want 10 each", len(sent), len(recvd))
	}
	for id, peer := range recvd {
		if !sent[id] {
			t.Errorf("any-source receive saw transfer ID %d never sent", id)
		}
		if peer != -1 {
			t.Errorf("any-source receive observed peer %d, want -1", peer)
		}
	}
}

// TestSetCommObserverConcurrentWithTraffic installs and removes observers
// from another goroutine while the nodes communicate flat out. Under -race
// this proves the atomic-pointer protocol; the test asserts only that
// whatever callbacks ran saw sane arguments.
func TestSetCommObserverConcurrentWithTraffic(t *testing.T) {
	const msgs = 2000
	c := testCluster(2)
	var calls atomic.Int64
	obs := func(op string, peer, nbytes int, xfer int64, start, end time.Time) {
		calls.Add(1)
		if op != "send" && op != "recv" {
			t.Errorf("observer saw op %q", op)
		}
		if xfer <= 0 {
			t.Errorf("observer saw transfer ID %d", xfer)
		}
	}
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	for i := 0; i < 2; i++ {
		n := c.Node(i)
		hammer.Add(1)
		go func() {
			defer hammer.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n.SetCommObserver(obs)
				n.SetCommObserver(nil)
			}
		}()
	}
	err := c.Run(func(n *Node) error {
		if n.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				n.Send(1, 9, []byte("m"))
			}
			for i := 0; i < msgs; i++ {
				n.Recv(1, 10)
			}
		} else {
			for i := 0; i < msgs; i++ {
				n.Recv(0, 9)
			}
			for i := 0; i < msgs; i++ {
				n.Send(0, 10, []byte("r"))
			}
		}
		return nil
	})
	close(stop)
	hammer.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n < 0 || n > 4*msgs {
		t.Errorf("observer ran %d times for %d operations", n, 4*msgs)
	}
}
