package cluster

import (
	"encoding/binary"
	"fmt"
)

// The TCP transport's wire format: every message is one length-prefixed
// binary frame. The layout is fixed-width big-endian, so a frame can be
// decoded with two reads (length, then body) and no intermediate parsing
// state:
//
//	[0:4]   uint32  body length (frameBodyLen + payload bytes)
//	[4]     uint8   kind: 1 = data, 2 = abort
//	[5]     uint8   flags: bit 0 = any-source delivery
//	[6:10]  uint32  source rank
//	[10:14] uint32  destination rank
//	[14:22] uint64  tag
//	[22:30] uint64  transfer ID
//	[30:]   payload
//
// The decoder is strict: unknown kinds, undefined flag bits, oversized
// lengths, ranks above MaxInt32, and abort frames carrying a payload are
// all errors, never best-effort guesses — a corrupt or adversarial stream
// must produce a clean frameError, not a panic or a silent misdelivery.
// Strictness also makes the encoding canonical: any byte string the
// decoder accepts re-encodes to exactly itself, the property FuzzFrameCodec
// checks.
const (
	frameKindData  = 1
	frameKindAbort = 2

	frameFlagAny = 1 << 0

	// frameBodyLen is the fixed portion of the body (everything after the
	// length prefix, before the payload).
	frameBodyLen = 26
	// frameHeaderLen is the full header: length prefix plus fixed body.
	frameHeaderLen = 4 + frameBodyLen

	// maxFramePayload bounds a single message; a corrupt length prefix must
	// not make a reader allocate gigabytes.
	maxFramePayload = 1 << 30
)

// A frameError reports a malformed frame.
type frameError struct{ reason string }

func (e *frameError) Error() string { return "cluster: bad frame: " + e.reason }

// encodeFrameHeader fills hdr with the header for a frame of the given
// kind.
func encodeFrameHeader(hdr *[frameHeaderLen]byte, kind byte, f Frame) {
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameBodyLen+len(f.Data)))
	hdr[4] = kind
	hdr[5] = 0
	if f.Any {
		hdr[5] |= frameFlagAny
	}
	binary.BigEndian.PutUint32(hdr[6:10], uint32(f.Src))
	binary.BigEndian.PutUint32(hdr[10:14], uint32(f.Dst))
	binary.BigEndian.PutUint64(hdr[14:22], uint64(f.Tag))
	binary.BigEndian.PutUint64(hdr[22:30], uint64(f.Xfer))
}

// appendFrame appends the full wire form of a frame to dst.
func appendFrame(dst []byte, kind byte, f Frame) []byte {
	var hdr [frameHeaderLen]byte
	encodeFrameHeader(&hdr, kind, f)
	dst = append(dst, hdr[:]...)
	return append(dst, f.Data...)
}

// decodeFrameBody parses the body of a frame (everything after the 4-byte
// length prefix). The returned Frame's Data aliases body.
func decodeFrameBody(body []byte) (kind byte, f Frame, err error) {
	if len(body) < frameBodyLen {
		return 0, Frame{}, &frameError{fmt.Sprintf("body %d bytes, need >= %d", len(body), frameBodyLen)}
	}
	kind = body[0]
	if kind != frameKindData && kind != frameKindAbort {
		return 0, Frame{}, &frameError{fmt.Sprintf("unknown kind %d", kind)}
	}
	flags := body[1]
	if flags&^frameFlagAny != 0 {
		return 0, Frame{}, &frameError{fmt.Sprintf("undefined flag bits %#x", flags)}
	}
	src := binary.BigEndian.Uint32(body[2:6])
	dst := binary.BigEndian.Uint32(body[6:10])
	if src > 1<<31-1 || dst > 1<<31-1 {
		return 0, Frame{}, &frameError{"rank overflows int32"}
	}
	f = Frame{
		Src:  int(src),
		Dst:  int(dst),
		Tag:  int64(binary.BigEndian.Uint64(body[10:18])),
		Xfer: int64(binary.BigEndian.Uint64(body[18:26])),
		Any:  flags&frameFlagAny != 0,
		Data: body[frameBodyLen:],
	}
	if kind == frameKindAbort && len(f.Data) != 0 {
		return 0, Frame{}, &frameError{"abort frame carries a payload"}
	}
	return kind, f, nil
}

// decodeFrame parses one complete frame (length prefix included) from the
// front of b, returning the bytes consumed. The returned Frame's Data
// aliases b.
func decodeFrame(b []byte) (kind byte, f Frame, n int, err error) {
	if len(b) < frameHeaderLen {
		return 0, Frame{}, 0, &frameError{fmt.Sprintf("%d bytes, need >= %d", len(b), frameHeaderLen)}
	}
	bodyLen := binary.BigEndian.Uint32(b[0:4])
	if bodyLen < frameBodyLen {
		return 0, Frame{}, 0, &frameError{fmt.Sprintf("body length %d below minimum %d", bodyLen, frameBodyLen)}
	}
	if bodyLen > frameBodyLen+maxFramePayload {
		return 0, Frame{}, 0, &frameError{fmt.Sprintf("body length %d exceeds limit", bodyLen)}
	}
	if uint64(len(b)-4) < uint64(bodyLen) {
		return 0, Frame{}, 0, &frameError{fmt.Sprintf("truncated: body %d bytes, have %d", bodyLen, len(b)-4)}
	}
	kind, f, err = decodeFrameBody(b[4 : 4+bodyLen])
	if err != nil {
		return 0, Frame{}, 0, err
	}
	return kind, f, 4 + int(bodyLen), nil
}

// frameWireBytes is the size of a frame on the wire, the unit the
// in-flight byte budget is charged in.
func frameWireBytes(f Frame) int { return frameHeaderLen + len(f.Data) }
