// Command fgsoak is the cluster-scale soak and stress driver: it spawns a
// scenario's ranks as real OS processes over loopback TCP, injects the
// plan's faults (disk latency, dropped frames, partitions, kill -9), admits
// replacement processes, and verifies every run end to end. Two modes:
//
//	fgsoak -smoke                         # the 2-rank kill-and-recover staple, every CI run
//	fgsoak -soak                          # every builtin scenario, -trials times, nightly
//	fgsoak -scenario soak/scenarios/x.json  # one scenario file
//	fgsoak -scenario partition-heal         # one builtin, by name
//	fgsoak -list                            # what's checked in
//
// Reports: -out writes the full JSON run report, -history appends a
// benchmark-shaped line (BenchmarkSoak/<scenario>) to BENCH_history.jsonl
// so cmd/benchgate's trend mode watches soak wall clocks alongside kernel
// ns/op. Exit status is the verdict: 0 only if every trial of every
// scenario passed.
//
// The spawned workers are this same binary, re-entered through
// soak.WorkerMain via the FGSOAK_WORKER_CONFIG environment variable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/fg-go/fg/soak"
)

func main() {
	if soak.IsWorker() {
		os.Exit(soak.WorkerMain())
	}

	smoke := flag.Bool("smoke", false, "run the builtin smoke scenario (seconds; every CI run)")
	soakAll := flag.Bool("soak", false, "run every builtin scenario (minutes; nightly)")
	scenario := flag.String("scenario", "", "run one scenario: a file path or a builtin name")
	list := flag.Bool("list", false, "list builtin scenarios and exit")
	trials := flag.Int("trials", 0, "override each scenario's trial count")
	ranks := flag.Int("ranks", 0, "override each scenario's rank count (faults must still fit)")
	out := flag.String("out", "", "write the JSON run report(s) here (\"-\" = stdout)")
	history := flag.String("history", "", "append benchmark-shaped result lines to this history file (e.g. BENCH_history.jsonl)")
	label := flag.String("label", "soak", "label for appended history entries")
	runDir := flag.String("run-dir", "", "root run artifacts here instead of a temp dir (kept for post-mortems)")
	quiet := flag.Bool("q", false, "suppress progress lines; print only verdicts")
	flag.Parse()

	if *list {
		for _, name := range soak.BuiltinNames() {
			s, err := soak.Builtin(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fgsoak: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-20s %d ranks, %s, %d records; %s\n",
				s.Name, s.Ranks, s.Program, s.Records, firstSentence(s.Description))
		}
		return
	}

	var scenarios []soak.Scenario
	load := func(name string) soak.Scenario {
		var s soak.Scenario
		var err error
		if strings.ContainsAny(name, "/.") {
			s, err = soak.LoadScenario(name)
		} else {
			s, err = soak.Builtin(name)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fgsoak: %v\n", err)
			os.Exit(1)
		}
		return s
	}
	switch {
	case *smoke:
		scenarios = append(scenarios, load("smoke"))
	case *soakAll:
		for _, name := range soak.BuiltinNames() {
			if name == "smoke" {
				continue // the smoke staple is subsumed by rank-death-midpass
			}
			scenarios = append(scenarios, load(name))
		}
	case *scenario != "":
		scenarios = append(scenarios, load(*scenario))
	default:
		fmt.Fprintln(os.Stderr, "fgsoak: pick a mode: -smoke, -soak, -scenario, or -list")
		os.Exit(2)
	}

	opt := soak.Options{
		RunDir:     *runDir,
		KeepRunDir: *runDir != "",
		Trials:     *trials,
		Log:        os.Stderr,
	}
	if *quiet {
		opt.Log = nil
	}

	allOK := true
	for _, s := range scenarios {
		if *ranks > 0 {
			s.Ranks = *ranks
			if err := s.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "fgsoak: -ranks %d: %v\n", *ranks, err)
				os.Exit(2)
			}
		}
		rep, err := soak.Run(s, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fgsoak: %s: %v\n", s.Name, err)
			os.Exit(1)
		}
		fmt.Println(rep.Summary())
		if !rep.OK {
			allOK = false
		}
		if *out != "" {
			path := *out
			if path != "-" && len(scenarios) > 1 {
				path = perScenario(path, s.Name)
			}
			if err := rep.WriteJSON(path); err != nil {
				fmt.Fprintf(os.Stderr, "fgsoak: write report: %v\n", err)
				os.Exit(1)
			}
		}
		if *history != "" {
			appended, err := rep.AppendHistory(*history, *label)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fgsoak: append history: %v\n", err)
				os.Exit(1)
			}
			if appended {
				fmt.Printf("history: %s << %s\n", *history, rep.BenchLine())
			}
		}
	}
	if !allOK {
		os.Exit(1)
	}
}

// perScenario derives a per-scenario report path from the -out template:
// reports/soak.json -> reports/soak.partition-heal.json.
func perScenario(path string, name string) string {
	if dot := strings.LastIndex(path, "."); dot > strings.LastIndex(path, "/") {
		return path[:dot] + "." + name + path[dot:]
	}
	return fmt.Sprintf("%s.%s", path, name)
}

func firstSentence(s string) string {
	if i := strings.Index(s, ". "); i > 0 {
		return s[:i+1]
	}
	if len(s) > 100 {
		return s[:100] + "..."
	}
	return s
}
