// Command fgexp regenerates the paper's experiments on the simulated
// cluster: the Figure 8 comparisons of dsort and csort on four key
// distributions and two record sizes, the skewed-input experiment, the
// splitter-balance claim, the I/O-volume claim, the single-linear-pipeline
// ablation (Section VIII), and an overlap ablation that measures what FG's
// pipelining itself buys.
//
// Usage:
//
//	fgexp -exp fig8a,fig8b              # the headline figures
//	fgexp -exp all -records 21 -trials 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/dsort"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/harness"
	"github.com/fg-go/fg/internal/splitter"
	"github.com/fg-go/fg/workload"
)

func main() {
	var (
		exps        = flag.String("exp", "fig8a", "comma-separated experiments: fig8a,fig8b,skew,linear,overlap,iovolume,splitters,passes,buffers,all")
		nodes       = flag.Int("nodes", 16, "cluster size P")
		logRecs     = flag.Int("records", 20, "log2 of the total record count N")
		cpn         = flag.Int("cpn", 4, "csort columns per node (S = cpn*P)")
		trials      = flag.Int("trials", 1, "runs to average per cell (the paper used 3)")
		verify      = flag.Bool("verify", true, "verify every sort's output")
		seed        = flag.Int64("seed", 1, "workload seed")
		par         = flag.Int("parallelism", 0, "intra-buffer kernel workers (0 = all cores, 1 = serial)")
		autotune    = flag.Bool("autotune", false, "let a run-time tuner adjust kernel workers and circulating buffers, starting from -parallelism")
		metrics     = flag.String("metrics", "", "serve Prometheus metrics on this address (host:port, :0 picks a port) to scrape while experiments run")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON file of every run (chrome://tracing, Perfetto)")
		statusAddr  = flag.String("status-addr", "", "serve live pipeline health on this address (/status text, /status.json)")
		clusterAddr = flag.String("cluster-status-addr", "", "serve the fleet view on this address (/cluster/status.json, /cluster/metrics); implies telemetry at -telemetry-interval")
		telemetryIv = flag.Duration("telemetry-interval", 0, "publish a telemetry record per rank at this interval toward the aggregator rank 0 (0 = off unless -cluster-status-addr is set, then 500ms)")
		stallAfter  = flag.Duration("stall-after", 0, "arm a stall watchdog: report and dump a black-box trace after this long with no progress (0 = off)")
		transport   = flag.String("transport", "inproc", "cluster transport: inproc (goroutines and channels) or tcp (real loopback sockets, all ranks in this process)")
		heartbeat   = flag.Duration("heartbeat", 0, "heartbeat interval for peer failure detection; a peer silent for 10 intervals is declared dead and the run aborted (0 = off)")
		ckptDir     = flag.String("checkpoint-dir", "", "commit a checkpoint after each pass under this directory and resume from it on restart")
		supervise   = flag.Int("supervise", 1, "run each sort under a supervisor that retries up to this many attempts on peer death or abort, resuming from checkpoints (1 = no supervisor)")
	)
	flag.Parse()

	pr := harness.DefaultParams()
	pr.Nodes = *nodes
	pr.TotalRecords = 1 << *logRecs
	pr.ColumnsPerNode = *cpn
	pr.Verify = *verify
	pr.Seed = *seed
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "fgexp: -parallelism must be >= 0, got %d\n", *par)
		os.Exit(1)
	}
	pr.Parallelism = *par
	if *autotune {
		pr.AutoTune = fg.DefaultAutoTune()
	}

	switch *transport {
	case "inproc":
	case "tcp":
		pr.Transport.Kind = cluster.TransportTCP
	default:
		fmt.Fprintf(os.Stderr, "fgexp: unknown -transport %q (want inproc or tcp)\n", *transport)
		os.Exit(1)
	}

	if *heartbeat > 0 {
		pr.Health = cluster.HealthConfig{Interval: *heartbeat}
	}
	pr.CheckpointDir = *ckptDir
	if *supervise < 1 {
		fmt.Fprintf(os.Stderr, "fgexp: -supervise must be >= 1, got %d\n", *supervise)
		os.Exit(1)
	}
	if *supervise > 1 {
		pr.Supervise = *supervise
		pr.SuperviseLog = os.Stderr
	}

	trialCount = *trials

	if err := pr.Warmup(); err != nil {
		fmt.Fprintf(os.Stderr, "fgexp: warmup: %v\n", err)
		os.Exit(1)
	}

	// Attach observability after the warmup so its run is not traced.
	obs, ct, finish, err := harness.ObserveCLI(*metrics, *traceOut, *statusAddr, *clusterAddr, *stallAfter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fgexp: %v\n", err)
		os.Exit(1)
	}
	pr.Observe = obs
	if *clusterAddr != "" && *telemetryIv <= 0 {
		*telemetryIv = 500 * time.Millisecond
	}
	if *telemetryIv > 0 {
		pr.Telemetry = cluster.TelemetryConfig{Interval: *telemetryIv}
		pr.OnTelemetry = ct.SetPlane
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	run := func(name string, fn func(harness.Params) error) {
		if !all && !want[name] {
			return
		}
		if err := fn(pr); err != nil {
			fmt.Fprintf(os.Stderr, "fgexp: %s: %v\n", name, err)
			_ = finish(err) // flush the trace and black box before exiting
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig8a", func(pr harness.Params) error { return figure8(pr, 16, "Figure 8(a): 16-byte records") })
	run("fig8b", func(pr harness.Params) error { return figure8(pr, 64, "Figure 8(b): 64-byte records") })
	run("skew", skew)
	run("splitters", splitters)
	run("iovolume", iovolume)
	run("linear", linear)
	run("overlap", overlap)
	run("passes", passes)
	run("buffers", bufferSweep)

	if err := finish(nil); err != nil {
		fmt.Fprintf(os.Stderr, "fgexp: %v\n", err)
		os.Exit(1)
	}
}

// bufferSweep reproduces the paper's methodological note that "all results
// reported here are for the best choices of buffer sizes": it sweeps
// dsort's run length (which sets pass 1's buffer size and the sorted-run
// length) around the default of perNode/8.
func bufferSweep(pr harness.Params) error {
	perNode := int(pr.TotalRecords) / pr.Nodes
	fmt.Printf("dsort buffer-size sensitivity (run length in records), N=%d, P=%d\n",
		pr.TotalRecords, pr.Nodes)
	for _, div := range []int{32, 16, 8, 4, 2} {
		run := perNode / div
		res, err := pr.RunDsortWith(workload.Uniform, func(cfg *dsort.Config) {
			cfg.RunRecords = run
			cfg.MergeRecords = run / 4
			if cfg.MergeRecords < 1 {
				cfg.MergeRecords = 1
			}
		})
		if err != nil {
			return err
		}
		marker := ""
		if div == 8 {
			marker = "  <- default"
		}
		fmt.Printf("  run=%6d (perNode/%-2d): total %v (pass1 %v, pass2 %v)%s\n",
			run, div, res.Total().Round(1e6), res.Pass("pass1").Round(1e6), res.Pass("pass2").Round(1e6), marker)
	}
	return nil
}

// passes quantifies the paper's pass-coalescing observation (Section III):
// the three-pass csort against the "relatively simple" four-pass version it
// was distilled from.
func passes(pr harness.Params) error {
	fmt.Printf("Pass coalescing (Section III): three-pass vs four-pass csort, N=%d, P=%d\n",
		pr.TotalRecords, pr.Nodes)
	three, err := pr.Run(harness.Csort, workload.Uniform, 0)
	if err != nil {
		return err
	}
	four, err := pr.Run(harness.Csort4, workload.Uniform, 0)
	if err != nil {
		return err
	}
	fmt.Printf("  csort  (3 passes): %v, %d disk bytes\n", three.Total().Round(1e6), three.Disk.TotalBytes())
	fmt.Printf("  csort4 (4 passes): %v, %d disk bytes\n", four.Total().Round(1e6), four.Disk.TotalBytes())
	fmt.Printf("  coalescing saves %.1f%% time and %.1f%% disk I/O\n",
		100*(1-float64(three.Total())/float64(four.Total())),
		100*(1-float64(three.Disk.TotalBytes())/float64(four.Disk.TotalBytes())))
	return nil
}

// trialCount is how many runs each Figure 8 cell averages.
var trialCount = 1

func figure8(pr harness.Params, recSize int, title string) error {
	pr.RecordSize = recSize
	cells, err := pr.Figure8(workload.Distributions, trialCount)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatFigure8(fmt.Sprintf("%s, N=%d, P=%d", title, pr.TotalRecords, pr.Nodes), cells))
	lo, hi := 1.0, 0.0
	for _, c := range cells {
		if r := c.Ratio(); r < lo {
			lo = r
		} else if r > hi {
			hi = r
		}
		if c.Ratio() > hi {
			hi = c.Ratio()
		}
	}
	fmt.Printf("dsort/csort ratio band: %.2f%%-%.2f%% (paper: 74.26%%-85.06%%)\n", 100*lo, 100*hi)
	return nil
}

func skew(pr harness.Params) error {
	cells, err := pr.Figure8(workload.SkewDistributions, trialCount)
	if err != nil {
		return err
	}
	fmt.Print(harness.FormatFigure8(
		fmt.Sprintf("Skewed inputs (highly unbalanced pass-1 communication), N=%d, P=%d", pr.TotalRecords, pr.Nodes), cells))
	return nil
}

func splitters(pr harness.Params) error {
	fmt.Printf("Splitter balance (max partition / average; paper claims <= 1.10), N=%d, P=%d\n",
		pr.TotalRecords, pr.Nodes)
	fmt.Printf("%-16s", "distribution")
	factors := []int{8, 16, 32, 64, 128}
	for _, ov := range factors {
		fmt.Printf("  ov=%-4d", ov)
	}
	fmt.Println()
	dists := append(append([]workload.Distribution{}, workload.Distributions...), workload.SkewDistributions...)
	for _, dist := range dists {
		fmt.Printf("%-16s", dist)
		for _, ov := range factors {
			b, err := pr.Balance(dist, ov)
			if err != nil {
				return err
			}
			fmt.Printf("  %-7.3f", b)
		}
		fmt.Println()
	}
	fmt.Printf("(default oversampling factor: %d)\n", splitter.DefaultOversample)
	return nil
}

func iovolume(pr harness.Params) error {
	d, err := pr.Run(harness.Dsort, workload.Uniform, 0)
	if err != nil {
		return err
	}
	c, err := pr.Run(harness.Csort, workload.Uniform, 0)
	if err != nil {
		return err
	}
	data := pr.TotalRecords * int64(pr.RecordSize)
	fmt.Printf("I/O volume (uniform, N=%d, P=%d; data volume %d bytes)\n", pr.TotalRecords, pr.Nodes, data)
	fmt.Printf("  dsort: %12d disk bytes (%.2fx data; 2 passes + sampling)\n",
		d.Disk.TotalBytes(), float64(d.Disk.TotalBytes())/float64(data))
	fmt.Printf("  csort: %12d disk bytes (%.2fx data; 3 passes)\n",
		c.Disk.TotalBytes(), float64(c.Disk.TotalBytes())/float64(data))
	fmt.Printf("  csort/dsort: %.3f (paper: csort performs ~50%% more disk I/O)\n",
		float64(c.Disk.TotalBytes())/float64(d.Disk.TotalBytes()))
	return nil
}

func linear(base harness.Params) error {
	pr := harness.AblationParams()
	pr.Observe = base.Observe
	fmt.Printf("Multiple pipelines vs single linear pipelines (Section VIII), N=%d, P=%d, I/O-bound calibration\n",
		pr.TotalRecords, pr.Nodes)
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Poisson, workload.SkewOneNode} {
		multi, err := pr.Run(harness.Dsort, dist, 0)
		if err != nil {
			return err
		}
		lin, err := pr.Run(harness.DsortLinear, dist, 0)
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s dsort %v, dsort-linear %v (linear/multi = %.2fx)\n",
			dist, multi.Total().Round(1e6), lin.Total().Round(1e6),
			float64(lin.Total())/float64(multi.Total()))
	}
	return nil
}

func overlap(base harness.Params) error {
	pr := harness.AblationParams()
	pr.Observe = base.Observe
	fmt.Printf("Overlap ablation (buffer pool 1 serializes each pipeline's stages), N=%d, P=%d, I/O-bound calibration\n",
		pr.TotalRecords, pr.Nodes)
	for _, prog := range []harness.Program{harness.Dsort, harness.Csort} {
		pipelined, err := pr.Run(prog, workload.Uniform, 0)
		if err != nil {
			return err
		}
		serial, err := pr.Run(prog, workload.Uniform, 1)
		if err != nil {
			return err
		}
		fmt.Printf("  %-6s pipelined %v, serialized %v (speedup %.2fx)\n",
			prog, pipelined.Total().Round(1e6), serial.Total().Round(1e6),
			float64(serial.Total())/float64(pipelined.Total()))
	}
	return nil
}
