// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document, so CI can archive kernel benchmark
// results (BENCH_kernels.json) and future changes can be compared against
// the recorded perf trajectory instead of against memory.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x ./internal/sortalgo | go run ./cmd/benchjson -out BENCH_kernels.json
//
// Every benchmark line becomes one entry carrying all reported metrics
// (ns/op, MB/s, B/op, allocs/op, and any custom b.ReportMetric units).
// Header lines (goos/goarch/cpu/pkg) are captured as environment metadata.
//
// With -append-history the same report is additionally appended as one
// compact JSON line to a history file (BENCH_history.jsonl in CI), stamped
// with -label (a commit SHA) and the current time, so the perf trajectory
// accumulates across commits instead of each run overwriting the last:
//
//	go test -bench=. ... | go run ./cmd/benchjson -out BENCH_kernels.json \
//	    -append-history BENCH_history.jsonl -label "$GITHUB_SHA"
//
// The parsing, the report schema, and the history format live in
// internal/benchfmt, shared with cmd/benchgate (which gates against these
// documents) and the soak harness (which appends its per-scenario results
// to the same history file).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/fg-go/fg/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	history := flag.String("append-history", "", "also append the report as one JSON line to this file")
	label := flag.String("label", "", "label stamped on the history line (e.g. a commit SHA)")
	flag.Parse()

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *history != "" {
		if err := benchfmt.AppendHistory(*history, rep, *label); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
