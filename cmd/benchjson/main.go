// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document, so CI can archive kernel benchmark
// results (BENCH_kernels.json) and future changes can be compared against
// the recorded perf trajectory instead of against memory.
//
// Usage:
//
//	go test -bench=. -benchmem -benchtime=1x ./internal/sortalgo | go run ./cmd/benchjson -out BENCH_kernels.json
//
// Every benchmark line becomes one entry carrying all reported metrics
// (ns/op, MB/s, B/op, allocs/op, and any custom b.ReportMetric units).
// Header lines (goos/goarch/cpu/pkg) are captured as environment metadata.
//
// With -append-history the same report is additionally appended as one
// compact JSON line to a history file (BENCH_history.jsonl in CI), stamped
// with -label (a commit SHA) and the current time, so the perf trajectory
// accumulates across commits instead of each run overwriting the last:
//
//	go test -bench=. ... | go run ./cmd/benchjson -out BENCH_kernels.json \
//	    -append-history BENCH_history.jsonl -label "$GITHUB_SHA"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole document. Label and Time are set only on history
// lines.
type Report struct {
	Label      string   `json:"label,omitempty"`
	Time       string   `json:"time,omitempty"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Packages   []string `json:"packages,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	history := flag.String("append-history", "", "also append the report as one JSON line to this file")
	label := flag.String("label", "", "label stamped on the history line (e.g. a commit SHA)")
	flag.Parse()

	rep := Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Packages = append(rep.Packages, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
		// Everything else (ok/FAIL/PASS, blank lines) is ignored; a FAIL
		// still fails CI through go test's own exit code.
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *history != "" {
		if err := appendHistory(*history, rep, *label); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// appendHistory writes the report as one compact JSON line at the end of
// path, stamped with the label and the current UTC time.
func appendHistory(path string, rep Report, label string) error {
	rep.Label = label
	rep.Time = time.Now().UTC().Format(time.RFC3339)
	line, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return err
	}
	return nil
}

// parseBenchLine parses one result line of the standard benchmark format:
//
//	BenchmarkName-8    100    11064025 ns/op    189.43 MB/s    5 B/op    0 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
