// Command fgsort runs one out-of-core sort — dsort, csort, or the
// single-linear-pipeline dsort variant — on a simulated cluster, prints the
// per-pass timings and traffic, and verifies the output.
//
// Usage:
//
//	fgsort -program dsort -nodes 16 -records 20 -dist poisson
//
// With -transport tcp the ranks talk over real sockets, and -peers/-rank
// place each rank in its own OS process:
//
//	fgsort -program csort -nodes 2 -transport tcp -rank 0 -peers 127.0.0.1:7000,127.0.0.1:7001 &
//	fgsort -program csort -nodes 2 -transport tcp -rank 1 -peers 127.0.0.1:7000,127.0.0.1:7001
//
// Adding -heartbeat, -checkpoint-dir, and -supervise makes a multi-process
// run survive node death: a kill -9'd rank is detected by heartbeats, the
// surviving ranks' supervisors retry, and a relaunched replacement rank
// resumes from the last pass-level checkpoint (see EXPERIMENTS.md for a
// full recipe).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/harness"
	"github.com/fg-go/fg/workload"
)

func main() {
	var (
		program     = flag.String("program", "dsort", "dsort, csort, or dsort-linear")
		nodes       = flag.Int("nodes", 16, "cluster size P")
		logRecs     = flag.Int("records", 18, "log2 of total records N")
		recSize     = flag.Int("record-size", 16, "record size in bytes (>= 8)")
		distArg     = flag.String("dist", "uniform", "key distribution: uniform, all-equal, normal, poisson, skew-one-node, skew-zipf")
		cpn         = flag.Int("cpn", 2, "csort columns per node")
		buffers     = flag.Int("buffers", 0, "per-pipeline buffer pool (0 = program default)")
		verify      = flag.Bool("verify", true, "verify the sorted output")
		seed        = flag.Int64("seed", 1, "workload seed")
		par         = flag.Int("parallelism", 0, "intra-buffer kernel workers (0 = all cores, 1 = serial)")
		diskSeek    = flag.Duration("disk-seek", 0, "override the simulated disk's per-op seek latency; in a multi-process run this is per-rank, so a slow rank 1 is just rank 1's process run with a bigger value (0 = model default)")
		diskBW      = flag.Float64("disk-bw", 0, "override the simulated disk's sequential transfer rate in bytes/second, per-rank like -disk-seek (0 = model default)")
		autotune    = flag.Bool("autotune", false, "let a run-time tuner adjust kernel workers and circulating buffers, starting from -parallelism")
		metrics     = flag.String("metrics", "", "serve Prometheus metrics on this address (host:port, :0 picks a port) to scrape while the run is in flight")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON file of the run (chrome://tracing, Perfetto)")
		statusAddr  = flag.String("status-addr", "", "serve live pipeline health on this address (/status text, /status.json)")
		clusterAddr = flag.String("cluster-status-addr", "", "serve the fleet view on this address (/cluster/status.json, /cluster/metrics); implies telemetry at -telemetry-interval")
		telemetryIv = flag.Duration("telemetry-interval", 0, "publish a telemetry record per rank at this interval toward the aggregator rank 0 (0 = off unless -cluster-status-addr is set, then 500ms)")
		stallAfter  = flag.Duration("stall-after", 0, "arm a stall watchdog: report and dump a black-box trace after this long with no progress (0 = off)")
		transport   = flag.String("transport", "inproc", "cluster transport: inproc (goroutines and channels) or tcp (real sockets)")
		rank        = flag.Int("rank", -1, "with -transport tcp and -peers: this process's rank; each rank runs its own fgsort process")
		peersArg    = flag.String("peers", "", "with -transport tcp: comma-separated host:port listen address per rank (the same list in every process); empty runs all ranks in-process over loopback")
		heartbeat   = flag.Duration("heartbeat", 0, "heartbeat interval for peer failure detection; a peer silent for 10 intervals is declared dead and the job aborted (0 = off)")
		ckptDir     = flag.String("checkpoint-dir", "", "commit a checkpoint after each pass under this directory and resume from it on restart (the same directory in every process)")
		supervise   = flag.Int("supervise", 1, "run the job under a supervisor that retries up to this many attempts on peer death or abort, resuming from checkpoints (1 = no supervisor)")
	)
	flag.Parse()

	// A/B escape hatch for the queue layer (see EXPERIMENTS.md): force the
	// channel-backed queue build instead of lock-free SPSC rings.
	if os.Getenv("FGSORT_CHANNEL_QUEUES") != "" {
		fg.UseChannelQueues(true)
	}

	dist, err := workload.ParseDistribution(*distArg)
	if err != nil {
		log.Fatal(err)
	}

	pr := harness.DefaultParams()
	pr.Nodes = *nodes
	pr.TotalRecords = 1 << *logRecs
	pr.RecordSize = *recSize
	pr.ColumnsPerNode = *cpn
	pr.Verify = *verify
	pr.Seed = *seed
	if *par < 0 {
		log.Fatalf("fgsort: -parallelism must be >= 0, got %d", *par)
	}
	pr.Parallelism = *par
	if *diskSeek > 0 {
		pr.Disk.SeekLatency = *diskSeek
	}
	if *diskBW > 0 {
		pr.Disk.BytesPerSecond = *diskBW
	}
	if *autotune {
		pr.AutoTune = fg.DefaultAutoTune()
	}

	switch *transport {
	case "inproc":
		if *peersArg != "" || *rank >= 0 {
			log.Fatal("fgsort: -peers and -rank require -transport tcp")
		}
	case "tcp":
		pr.Transport.Kind = cluster.TransportTCP
		if *peersArg != "" {
			pr.Transport.Peers = strings.Split(*peersArg, ",")
			pr.Transport.Rank = *rank
			if *rank < 0 {
				log.Fatal("fgsort: -peers needs -rank to say which address is this process")
			}
		} else if *rank >= 0 {
			log.Fatal("fgsort: -rank without -peers; a single process hosts every rank")
		}
	default:
		log.Fatalf("fgsort: unknown -transport %q (want inproc or tcp)", *transport)
	}

	if *heartbeat > 0 {
		pr.Health = cluster.HealthConfig{Interval: *heartbeat}
	}
	pr.CheckpointDir = *ckptDir
	if *supervise < 1 {
		log.Fatalf("fgsort: -supervise must be >= 1, got %d", *supervise)
	}
	if *supervise > 1 {
		pr.Supervise = *supervise
		pr.SuperviseLog = os.Stderr
	}

	obs, ct, finish, err := harness.ObserveCLI(*metrics, *traceOut, *statusAddr, *clusterAddr, *stallAfter)
	if err != nil {
		log.Fatal(err)
	}
	pr.Observe = obs
	if *clusterAddr != "" && *telemetryIv <= 0 {
		*telemetryIv = 500 * time.Millisecond
	}
	if *telemetryIv > 0 {
		pr.Telemetry = cluster.TelemetryConfig{Interval: *telemetryIv}
		pr.OnTelemetry = ct.SetPlane
	}

	res, err := pr.Run(harness.Program(*program), dist, *buffers)
	// Let finish write the trace and black box before a failed run exits.
	if ferr := finish(err); ferr != nil {
		log.Fatal(ferr)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	if *verify {
		fmt.Println("output verified: globally sorted, PDM-striped, permutation of input")
	}
	data := pr.TotalRecords * int64(pr.RecordSize)
	fmt.Printf("disk:    %d ops, %d bytes (%.2fx the data), head busy %v\n",
		res.Disk.ReadOps+res.Disk.WriteOps, res.Disk.TotalBytes(),
		float64(res.Disk.TotalBytes())/float64(data), res.Disk.Busy.Round(time.Millisecond))
	fmt.Printf("network: %d messages, %d bytes sent, NICs busy %v, blocked sending %v / receiving %v\n",
		res.Comm.MessagesSent, res.Comm.BytesSent, res.Comm.SendBusy.Round(time.Millisecond),
		res.Comm.SendWait.Round(time.Millisecond), res.Comm.RecvWait.Round(time.Millisecond))
}
