// Command fgdemo builds and runs a small FG network exercising all three
// pipeline forms — a linear pipeline, disjoint send/receive pipelines, and
// virtual vertical pipelines intersecting at a merge stage — and prints the
// per-stage statistics so the overlap is visible: expensive stages
// accumulate Work while their neighbours accumulate AcceptWait.
//
// Usage:
//
//	fgdemo            # run with overlap
//	fgdemo -buffers 1 # serialize the stages and compare
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/mergetree"
)

func main() {
	var (
		buffers = flag.Int("buffers", 3, "buffer pool per pipeline (1 = no overlap)")
		rounds  = flag.Int("rounds", 24, "rounds per pipeline")
		stageMS = flag.Int("stage-ms", 2, "simulated latency per stage call, in ms")
	)
	flag.Parse()
	lat := time.Duration(*stageMS) * time.Millisecond

	// Part 1: a linear pipeline of three equally slow stages.
	nw := fg.NewNetwork("demo-linear")
	p := nw.AddPipeline("linear", fg.Buffers(*buffers), fg.BufferBytes(8), fg.Rounds(*rounds))
	slow := func(ctx *fg.Ctx, b *fg.Buffer) error {
		time.Sleep(lat)
		return nil
	}
	p.AddStage("alpha", slow)
	p.AddStage("beta", slow)
	p.AddStage("gamma", slow)
	start := time.Now()
	if err := nw.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linear pipeline: %d rounds x 3 stages x %v = %v of stage work, wall %v\n",
		*rounds, lat, time.Duration(*rounds*3)*lat, time.Since(start).Round(time.Millisecond))
	fmt.Print(nw.Stats())

	// Part 2: virtual verticals intersecting a merge stage, Figure 5.
	const k = 8
	nw2 := fg.NewNetwork("demo-merge")
	vg := nw2.AddVirtualGroup("verticals")
	verts := make([]*fg.Pipeline, k)
	for i := 0; i < k; i++ {
		i := i
		verts[i] = vg.AddPipeline(fmt.Sprintf("v%d", i),
			fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(*rounds))
		verts[i].AddStage("produce", func(ctx *fg.Ctx, b *fg.Buffer) error {
			binary.BigEndian.PutUint64(b.Data, uint64(b.Round*k+i))
			b.N = 8
			time.Sleep(lat / 4)
			return nil
		})
	}
	horiz := nw2.AddPipeline("horizontal", fg.Buffers(*buffers), fg.BufferBytes(64), fg.Unlimited())
	merge := fg.NewStage("merge", func(ctx *fg.Ctx) error {
		tree := mergetree.New(k)
		heads := make([]*fg.Buffer, k)
		pull := func(i int) {
			if heads[i] != nil {
				ctx.Convey(heads[i])
			}
			if b, ok := ctx.AcceptFrom(verts[i]); ok {
				heads[i] = b
				tree.Set(i, binary.BigEndian.Uint64(b.Data))
			} else {
				heads[i] = nil
				tree.Close(i)
			}
		}
		for i := 0; i < k; i++ {
			pull(i)
		}
		ob, ok := ctx.AcceptFrom(horiz)
		if !ok {
			return fmt.Errorf("no output buffer")
		}
		for {
			i, v, live := tree.Min()
			if !live {
				break
			}
			binary.BigEndian.PutUint64(ob.Data[ob.N:], v)
			ob.N += 8
			if ob.N == ob.Cap() {
				ctx.Convey(ob)
				if ob, ok = ctx.AcceptFrom(horiz); !ok {
					return fmt.Errorf("output pipeline dried up")
				}
			}
			pull(i)
		}
		if ob.N > 0 {
			ctx.Convey(ob)
		}
		return nil
	})
	for _, v := range verts {
		v.Add(merge)
	}
	horiz.Add(merge)
	var merged []uint64
	horiz.AddStage("consume", func(ctx *fg.Ctx, b *fg.Buffer) error {
		for off := 0; off < b.N; off += 8 {
			merged = append(merged, binary.BigEndian.Uint64(b.Data[off:]))
		}
		return nil
	})
	start = time.Now()
	if err := nw2.Run(); err != nil {
		log.Fatal(err)
	}
	for i, v := range merged {
		if v != uint64(i) {
			log.Fatalf("merge output wrong at %d: %d", i, v)
		}
	}
	fmt.Printf("\n%d virtual pipelines merged %d values, verified, wall %v\n",
		k, len(merged), time.Since(start).Round(time.Millisecond))
	fmt.Print(nw2.Stats())

	// Part 3: a fork-join pipeline with a traced timeline. Odd rounds take
	// a heavy branch, even rounds a light one; the Gantt chart shows the
	// branches working concurrently.
	tr := fg.NewTracer(0)
	nw3 := fg.NewNetwork("demo-fork")
	nw3.SetTracer(tr)
	fp := nw3.AddPipeline("forked", fg.Buffers(*buffers), fg.BufferBytes(8), fg.Rounds(*rounds))
	fp.AddStage("produce", func(ctx *fg.Ctx, b *fg.Buffer) error {
		time.Sleep(lat / 4)
		return nil
	})
	fork := fp.AddFork("classify", 2, func(ctx *fg.Ctx, b *fg.Buffer) (int, error) {
		return b.Round % 2, nil
	})
	fork.Branch(0).AddStage("light", func(ctx *fg.Ctx, b *fg.Buffer) error {
		time.Sleep(lat / 2)
		return nil
	})
	fork.Branch(1).AddStage("heavy", func(ctx *fg.Ctx, b *fg.Buffer) error {
		time.Sleep(2 * lat)
		return nil
	})
	fork.Join()
	fp.AddStage("finish", func(ctx *fg.Ctx, b *fg.Buffer) error { return nil })
	start = time.Now()
	if err := nw3.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfork-join pipeline: %d rounds, wall %v\n", *rounds, time.Since(start).Round(time.Millisecond))
	fmt.Print(tr.Gantt(70))
}
