// Command benchgate compares a fresh kernel-benchmark report (the
// BENCH_kernels.json that cmd/benchjson emits in CI) against the committed
// baseline (BENCH_baseline.json) and fails when a benchmark regresses on a
// metric that a 1x run measures exactly.
//
// Usage:
//
//	go run ./cmd/benchgate -baseline BENCH_baseline.json -current BENCH_kernels.json
//
// The gate is deliberately asymmetric about which metrics it enforces:
//
//   - allocs/op is exact and load-bearing — the pooled kernels are designed
//     to allocate nothing in steady state, so any drift is a real leak into
//     the hot path. A zero baseline must stay zero; a nonzero baseline may
//     grow to at most 1.5x + 8 allocations before the gate trips.
//   - ns/op from a -benchtime=1x run is noise on shared CI runners, so
//     timing drift is reported as an advisory, never a failure.
//
// Benchmark names are compared with the -N GOMAXPROCS suffix stripped, so a
// runner with a different core count still matches the baseline rows.
// Benchmarks present on only one side are advisories too: new benchmarks
// enter the baseline when it is regenerated (see the comment atop
// BENCH_baseline.json), and vanished ones usually mean a rename.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// Result and Report mirror cmd/benchjson's output document.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

// procSuffix is the -N the testing package appends for GOMAXPROCS.
var procSuffix = regexp.MustCompile(`-\d+$`)

func load(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Result, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		m[procSuffix.ReplaceAllString(b.Name, "")] = b
	}
	return m, nil
}

// allocBudget returns the ceiling the current allocs/op must stay under for
// the given baseline value, and whether exceeding it is fatal.
func allocBudget(baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return baseline*1.5 + 8
}

func main() {
	basePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	curPath := flag.String("current", "BENCH_kernels.json", "freshly measured report")
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(*curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("advisory: %s is in the baseline but was not measured (renamed or deleted?)\n", name)
			continue
		}
		ba, bok := b.Metrics["allocs/op"]
		ca, cok := c.Metrics["allocs/op"]
		if bok && cok {
			if limit := allocBudget(ba); ca > limit {
				fmt.Printf("FAIL: %s allocs/op %.0f exceeds baseline %.0f (limit %.0f)\n", name, ca, ba, limit)
				failures++
			}
		}
		bn, bok := b.Metrics["ns/op"]
		cn, cok := c.Metrics["ns/op"]
		if bok && cok && bn > 0 && cn > 2*bn {
			fmt.Printf("advisory: %s ns/op %.0f is %.1fx the baseline %.0f (1x-run timing is noisy; not fatal)\n",
				name, cn, cn/bn, bn)
		}
	}
	extra := make([]string, 0)
	for n := range cur {
		if _, ok := base[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		fmt.Printf("advisory: %s is new (not in the baseline; regenerate BENCH_baseline.json to gate it)\n", n)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d allocation regression(s) against %s\n", failures, *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks checked against %s, no allocation regressions\n", len(names), *basePath)
}
