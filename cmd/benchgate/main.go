// Command benchgate compares a fresh kernel-benchmark report (the
// BENCH_kernels.json that cmd/benchjson emits in CI) against the committed
// baseline (BENCH_baseline.json) and fails when a benchmark regresses on a
// metric that a 1x run measures exactly.
//
// Usage:
//
//	go run ./cmd/benchgate -baseline BENCH_baseline.json -current BENCH_kernels.json
//
// The gate is deliberately asymmetric about which metrics it enforces:
//
//   - allocs/op is exact and load-bearing — the pooled kernels are designed
//     to allocate nothing in steady state, so any drift is a real leak into
//     the hot path. A zero baseline must stay zero; a nonzero baseline may
//     grow to at most 1.5x + 8 allocations before the gate trips.
//   - ns/op from a single -benchtime=1x run is noise on shared CI runners,
//     so one run's timing drift is reported as an advisory, never a failure.
//
// A *sustained* timing regression is a different matter: noise does not
// point the same way run after run. With -trend the gate additionally reads
// the last -trend-last entries of the history file (BENCH_history.jsonl,
// grown by cmd/benchjson and the soak harness) and fails a gated benchmark
// whose ns/op exceeded the baseline by more than -trend-threshold in every
// one of those runs — the cheapest entry of the window must clear the bar,
// so a single lucky run resets the alarm. Fewer than -trend-last recorded
// runs of a benchmark is never a failure; the curve has to accumulate
// before it can be judged.
//
//	go run ./cmd/benchgate -baseline BENCH_baseline.json -current BENCH_kernels.json \
//	    -trend BENCH_history.jsonl -trend-last 5
//
// Benchmark names are compared with the -N GOMAXPROCS suffix stripped, so a
// runner with a different core count still matches the baseline rows.
// Benchmarks present on only one side are advisories too: new benchmarks
// enter the baseline when it is regenerated (see the comment atop
// BENCH_baseline.json), and vanished ones usually mean a rename.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"

	"github.com/fg-go/fg/internal/benchfmt"
)

// procSuffix is the -N the testing package appends for GOMAXPROCS.
var procSuffix = regexp.MustCompile(`-\d+$`)

func load(path string) (map[string]benchfmt.Result, error) {
	rep, err := benchfmt.LoadReport(path)
	if err != nil {
		return nil, err
	}
	m := make(map[string]benchfmt.Result, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		m[procSuffix.ReplaceAllString(b.Name, "")] = b
	}
	return m, nil
}

// allocBudget returns the ceiling the current allocs/op must stay under for
// the given baseline value.
func allocBudget(baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return baseline*1.5 + 8
}

func main() {
	basePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	curPath := flag.String("current", "BENCH_kernels.json", "freshly measured report")
	trendPath := flag.String("trend", "", "history file (BENCH_history.jsonl); when set, gate sustained ns/op regressions over the last -trend-last entries")
	trendLast := flag.Int("trend-last", 5, "how many most-recent history runs of a benchmark must all regress before the trend gate trips")
	trendThreshold := flag.Float64("trend-threshold", 0.15, "fractional ns/op regression over baseline that counts as a regression in the trend window")
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(*curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("advisory: %s is in the baseline but was not measured (renamed or deleted?)\n", name)
			continue
		}
		ba, bok := b.Metrics["allocs/op"]
		ca, cok := c.Metrics["allocs/op"]
		if bok && cok {
			if limit := allocBudget(ba); ca > limit {
				fmt.Printf("FAIL: %s allocs/op %.0f exceeds baseline %.0f (limit %.0f)\n", name, ca, ba, limit)
				failures++
			}
		}
		bn, bok := b.Metrics["ns/op"]
		cn, cok := c.Metrics["ns/op"]
		if bok && cok && bn > 0 && cn > 2*bn {
			fmt.Printf("advisory: %s ns/op %.0f is %.1fx the baseline %.0f (1x-run timing is noisy; not fatal)\n",
				name, cn, cn/bn, bn)
		}
	}
	extra := make([]string, 0)
	for n := range cur {
		if _, ok := base[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		fmt.Printf("advisory: %s is new (not in the baseline; regenerate BENCH_baseline.json to gate it)\n", n)
	}

	if *trendPath != "" {
		failures += gateTrend(*trendPath, base, names, *trendLast, *trendThreshold)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) against %s\n", failures, *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks checked against %s, no regressions\n", len(names), *basePath)
}

// gateTrend fails every gated benchmark whose ns/op exceeded baseline by
// more than threshold in each of its last `last` recorded history runs.
// History entries that do not mention a benchmark simply do not count
// toward its window, so kernel rows and soak rows coexist in one file.
func gateTrend(path string, base map[string]benchfmt.Result, names []string, last int, threshold float64) int {
	if last < 2 {
		last = 2 // one run is noise by definition; a trend needs at least two
	}
	entries, skipped, err := benchfmt.ReadHistory(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("advisory: trend history %s does not exist yet; nothing to gate\n", path)
			return 0
		}
		fmt.Fprintf(os.Stderr, "benchgate: trend: %v\n", err)
		return 1
	}
	if skipped > 0 {
		fmt.Printf("advisory: trend history %s has %d unparseable line(s), skipped\n", path, skipped)
	}
	// Most recent first, per benchmark.
	recent := make(map[string][]float64)
	for i := len(entries) - 1; i >= 0; i-- {
		for _, b := range entries[i].Benchmarks {
			name := procSuffix.ReplaceAllString(b.Name, "")
			if _, gated := base[name]; !gated {
				continue
			}
			if ns, ok := b.Metrics["ns/op"]; ok && len(recent[name]) < last {
				recent[name] = append(recent[name], ns)
			}
		}
	}
	failures := 0
	for _, name := range names {
		bn, ok := base[name].Metrics["ns/op"]
		if !ok || bn <= 0 {
			continue
		}
		window := recent[name]
		if len(window) < last {
			continue // not enough history yet; the curve must accumulate first
		}
		bar := bn * (1 + threshold)
		best := window[0]
		sustained := true
		for _, ns := range window {
			if ns < best {
				best = ns
			}
			if ns <= bar {
				sustained = false
			}
		}
		if sustained {
			fmt.Printf("FAIL: %s ns/op has exceeded baseline %.0f by more than %.0f%% in each of the last %d runs (best of window %.0f)\n",
				name, bn, threshold*100, last, best)
			failures++
		}
	}
	if failures == 0 {
		fmt.Printf("trend: no sustained ns/op regression over the last %d runs of %s\n", last, path)
	}
	return failures
}
