// Command fgd is the FG dataflow daemon: a long-running HTTP service that
// accepts dataflow jobs as JSON specs and runs many FG sorting networks
// concurrently against shared resources — one kernel worker pool, one
// process's worth of simulated disks — behind admission control, per-job
// quotas, a bounded queue with backpressure, per-job cancellation, and
// panic isolation (one failed job never takes the daemon down).
//
//	fgd -addr :8080 -max-jobs 4 -queue 16 &
//	curl -s -d @examples/jobspecs/dsort-small.json localhost:8080/jobs
//	curl -s localhost:8080/jobs/j-000001
//	curl -s localhost:8080/jobs/j-000001/result
//	curl -s localhost:8080/metrics | grep fgd_
//	kill -TERM %1    # graceful drain: running jobs finish, exit 0
//
// On SIGTERM or SIGINT the daemon drains: it stops admitting, rejects
// queued jobs, lets running jobs finish (bounded by -drain-timeout), and
// exits 0 once everything has settled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/fg-go/fg/service"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	maxJobs := flag.Int("max-jobs", 4, "jobs allowed to run concurrently (admission quota)")
	queue := flag.Int("queue", 0, "queued-job bound; past it submits get 429 (0 = 4x max-jobs)")
	dataDir := flag.String("data-dir", "", "root for per-job temp dirs (default: OS temp dir)")
	retain := flag.Int("retain", 1024, "settled jobs kept queryable before pruning")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long a drain waits for running jobs")
	enableFaults := flag.Bool("enable-faults", false, "accept specs with fault blocks (testing only)")

	maxNodes := flag.Int("max-nodes", 64, "per-job simulated cluster size quota (0 = unlimited)")
	maxMB := flag.Int64("max-mb", 1024, "per-job data volume quota, MiB (0 = unlimited)")
	maxWorkers := flag.Int("max-workers", 0, "per-job kernel worker quota (0 = unlimited)")
	maxBuffers := flag.Int("max-buffers", 64, "per-job circulating buffer quota (0 = unlimited)")
	maxAttempts := flag.Int("max-attempts", 5, "per-job supervised attempt quota (0 = unlimited)")
	maxRunSec := flag.Int("max-run-sec", 600, "per-job running wall-clock cap, seconds (0 = unlimited)")
	flag.Parse()

	srv := service.New(service.Config{
		MaxConcurrent: *maxJobs,
		QueueDepth:    *queue,
		DataDir:       *dataDir,
		RetainJobs:    *retain,
		EnableFaults:  *enableFaults,
		Log:           os.Stderr,
		Limits: service.Limits{
			MaxNodes:      *maxNodes,
			MaxBytes:      *maxMB << 20,
			MaxWorkers:    *maxWorkers,
			MaxBuffers:    *maxBuffers,
			MaxAttempts:   *maxAttempts,
			MaxRunSeconds: *maxRunSec,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fgd: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fgd: serving on %s (max-jobs %d)\n", ln.Addr(), *maxJobs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "fgd: %s: draining\n", got)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "fgd: serve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	// Stop the listener only after the drain: in-flight polls keep working
	// while running jobs wind down.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "fgd: shutdown: %v\n", err)
	}
	_ = srv.Close()
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "fgd: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "fgd: drained, exiting")
}
