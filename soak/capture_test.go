package soak

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCaptureFrameCorpus harvests real wire frames from a live smoke run
// into `go test fuzz v1` seed files. It is gated behind the
// FG_CAPTURE_FRAME_CORPUS environment variable (the output directory —
// point it at cluster/testdata/fuzz/FuzzFrameCodec to regenerate the
// checked-in corpus) because it writes into the source tree; without the
// variable it still runs the capture machinery against a temp dir, so the
// seam cannot rot unnoticed.
func TestCaptureFrameCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := os.Getenv("FG_CAPTURE_FRAME_CORPUS")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Setenv(CaptureEnv, dir) // inherited by every spawned worker

	s, err := Builtin("smoke")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("smoke run failed during capture: %+v", rep)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	captured := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "soak-") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(raw), "go test fuzz v1\n[]byte(") {
			t.Errorf("%s is not a fuzz seed: %q", e.Name(), raw[:min(len(raw), 40)])
		}
		captured++
	}
	// A smoke run exchanges at minimum heartbeats and pass-1 partitions;
	// zero captured frames means the observer seam is dead.
	if captured == 0 {
		t.Fatal("live smoke run captured no frames")
	}
	t.Logf("captured %d distinct wire frames into %s", captured, dir)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
