package soak

// The driver side of a soak run: reserve one loopback port per rank, write
// per-rank worker configs, spawn every rank as a real OS process of this
// same binary, schedule the driver-side faults (kill -9 by wall clock,
// replacement spawns), and collect each rank's FGSOAK_RESULT line into a
// structured trial report. The replacement-spawn sequencing follows the
// harness's kill-chaos test: a replacement joins only after rank 0's
// supervisor has logged a failed attempt, by which point the failed
// attempt's cluster — listener included — is fully closed, so the new
// process can only ever join the retry.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/fg-go/fg/cluster"
)

// Options parameterize a driver run.
type Options struct {
	// RunDir roots the run's artifacts (per-rank configs, captured output,
	// checkpoints). Empty creates a temporary directory, removed afterward
	// unless KeepRunDir is set.
	RunDir string
	// KeepRunDir preserves the run directory for post-mortems.
	KeepRunDir bool
	// WorkerArgs are extra argv for spawned workers — the soak tests pass
	// "-test.run=^$" so a re-exec'd test binary runs no tests of its own.
	WorkerArgs []string
	// Log receives human progress lines; nil discards them.
	Log io.Writer
	// Trials overrides the scenario's trial count when positive.
	Trials int
}

func (o Options) log() io.Writer {
	if o.Log == nil {
		return io.Discard
	}
	return o.Log
}

// restartWait bounds how long the driver waits for rank 0's supervisor to
// log a failed attempt before spawning a replacement anyway (a backstop; in
// a healthy run the marker arrives within the death-detection latency).
const restartWait = 20 * time.Second

// Run executes every trial of the scenario and returns the assembled
// report. Trial failures are recorded in the report, not returned as
// errors; the error return is for the driver's own failures (unwritable
// run dir, unspawnable workers).
func Run(s Scenario, opt Options) (RunReport, error) {
	if err := s.Validate(); err != nil {
		return RunReport{}, err
	}
	trials := s.trials()
	if opt.Trials > 0 {
		trials = opt.Trials
	}
	runDir := opt.RunDir
	if runDir == "" {
		dir, err := os.MkdirTemp("", "fgsoak-"+s.Name+"-")
		if err != nil {
			return RunReport{}, err
		}
		runDir = dir
		if !opt.KeepRunDir {
			defer os.RemoveAll(dir)
		}
	} else if err := os.MkdirAll(runDir, 0o755); err != nil {
		return RunReport{}, err
	}

	rep := RunReport{
		Scenario:    s.Name,
		Description: s.Description,
		Program:     s.Program,
		Ranks:       s.Ranks,
		Records:     s.Records,
		RecordSize:  s.recordSize(),
		OK:          true,
	}
	for t := 1; t <= trials; t++ {
		fmt.Fprintf(opt.log(), "soak: %s trial %d/%d starting (%d ranks, %s, %d records)\n",
			s.Name, t, trials, s.Ranks, s.Program, s.Records)
		tr, err := runTrial(s, opt, runDir, t)
		if err != nil {
			return rep, err
		}
		rep.Trials = append(rep.Trials, tr)
		if !tr.OK {
			rep.OK = false
		}
		fmt.Fprintf(opt.log(), "soak: %s trial %d/%d %s in %.1fs (retries=%d restarts=%d reconnects=%d death=%.0fms)\n",
			s.Name, t, trials, verdict(tr.OK), tr.WallMS/1e3, tr.Retries, tr.Restarts, tr.Reconnects, tr.DeathDetectMS)
	}
	return rep, nil
}

func verdict(ok bool) string {
	if ok {
		return "PASSED"
	}
	return "FAILED"
}

// workerProc is one spawned rank process. Both output buffers are
// markWatches — locked writers — because the driver reads rank 0's stdout
// mid-run to find the fleet-view address while the process is still
// streaming into it.
type workerProc struct {
	rank   int
	cmd    *exec.Cmd
	stdout *markWatch
	stderr io.Writer // the supervisor watch for rank 0, plain otherwise
	errBuf *markWatch
}

type procExit struct {
	proc *workerProc
	code int // -1 = killed by signal
}

func runTrial(s Scenario, opt Options, runDir string, trial int) (TrialReport, error) {
	tr := TrialReport{Trial: trial}
	trialDir := filepath.Join(runDir, fmt.Sprintf("trial%d", trial))
	if err := os.MkdirAll(trialDir, 0o755); err != nil {
		return tr, err
	}
	ckptDir := ""
	if s.Checkpoint {
		ckptDir = filepath.Join(trialDir, "ckpt")
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			return tr, err
		}
	}
	peers, err := reservePorts(s.Ranks)
	if err != nil {
		return tr, err
	}

	// Rank 0's stderr is watched for the supervisor's "failed" attempt
	// lines: each one marks a fully torn-down attempt, the safe moment to
	// admit a replacement process.
	watch := newMarkWatch(": failed")

	exitc := make(chan procExit, 4*s.Ranks)
	var spawnMu sync.Mutex
	spawn := func(rank int, kills bool, generation int) (*workerProc, error) {
		cfg := WorkerConfig{
			Scenario:      s,
			Rank:          rank,
			Peers:         peers,
			CheckpointDir: ckptDir,
			EnableKills:   kills,
		}
		raw, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			return nil, err
		}
		cfgPath := filepath.Join(trialDir, fmt.Sprintf("rank%d.gen%d.json", rank, generation))
		if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
			return nil, err
		}
		p := &workerProc{rank: rank, stdout: newMarkWatch("")}
		exe, err := os.Executable()
		if err != nil {
			exe = os.Args[0]
		}
		p.cmd = exec.Command(exe, opt.WorkerArgs...)
		p.cmd.Dir = trialDir
		p.cmd.Stdout = p.stdout
		if rank == 0 {
			p.stderr = watch
			p.errBuf = watch
		} else {
			b := newMarkWatch("")
			p.stderr = b
			p.errBuf = b
		}
		p.cmd.Stderr = p.stderr
		p.cmd.Env = append(os.Environ(), WorkerEnv+"="+cfgPath)
		if err := p.cmd.Start(); err != nil {
			return nil, fmt.Errorf("spawn rank %d: %w", rank, err)
		}
		go func() {
			err := p.cmd.Wait()
			code := 0
			if err != nil {
				code = p.cmd.ProcessState.ExitCode()
			}
			exitc <- procExit{proc: p, code: code}
		}()
		return p, nil
	}

	start := time.Now()
	generation := make([]int, s.Ranks)
	live := make(map[int]*workerProc, s.Ranks)
	for r := 0; r < s.Ranks; r++ {
		p, err := spawn(r, true, 0)
		if err != nil {
			killAll(live)
			return tr, err
		}
		live[r] = p
	}
	defer func() { killAll(live) }()

	// With telemetry in the plan, scrape rank 0's fleet view for the whole
	// trial; the verdict below requires at least one scrape in which every
	// rank reported fresh — "the fleet is visible" is part of what a
	// telemetry-enabled scenario proves.
	var probe *fleetProbe
	if s.Telemetry != nil {
		probe = startFleetProbe(s, live[0].stdout)
		defer probe.stop()
	}

	// Driver-side kill schedule: kill-after faults fire by wall clock.
	var timers []*time.Timer
	for _, f := range s.Faults {
		if f.Kind != FaultKillAfter {
			continue
		}
		rank := f.Rank
		timers = append(timers, time.AfterFunc(time.Duration(f.AfterMS)*time.Millisecond, func() {
			spawnMu.Lock()
			p := live[rank]
			spawnMu.Unlock()
			if p != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
			}
		}))
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	// One restart credit per restart-enabled kill fault, per rank.
	restarts := make(map[int]int)
	for _, f := range s.Faults {
		if (f.Kind == FaultKillOp || f.Kind == FaultKillAfter) && f.Restart {
			restarts[f.Rank]++
		}
	}

	finalCode := make(map[int]int)
	deadline := time.After(s.Timeout())
	for len(finalCode) < s.Ranks {
		select {
		case e := <-exitc:
			rank := e.proc.rank
			if e.code == -1 && restarts[rank] > 0 {
				// Killed by signal with a restart credit: spawn the
				// replacement once a surviving supervisor has logged the
				// failed attempt (or after the backstop delay).
				restarts[rank]--
				tr.Restarts++
				base := watch.Count()
				fmt.Fprintf(opt.log(), "soak: %s trial %d rank %d killed; waiting to admit replacement\n",
					s.Name, trial, rank)
				watch.WaitAbove(base, restartWait)
				generation[rank]++
				p, err := spawn(rank, false, generation[rank])
				if err != nil {
					return tr, err
				}
				spawnMu.Lock()
				live[rank] = p
				spawnMu.Unlock()
				continue
			}
			finalCode[rank] = e.code
			spawnMu.Lock()
			delete(live, rank)
			spawnMu.Unlock()
			if e.code != 0 {
				fmt.Fprintf(opt.log(), "soak: %s trial %d rank %d exited %d\nstderr:\n%s\n",
					s.Name, trial, rank, e.code, tail(e.proc.errBuf.String(), 2000))
			}
			// Keep the stdout for result parsing below.
			tr.Workers = append(tr.Workers, parseWorkerResult(e.proc, e.code))
		case <-deadline:
			tr.OK = false
			tr.Error = fmt.Sprintf("trial timed out after %v with %d/%d ranks unfinished",
				s.Timeout(), s.Ranks-len(finalCode), s.Ranks)
			killAll(live)
			if probe != nil {
				fleet := probe.stop()
				tr.Fleet = &fleet
			}
			tr.WallMS = float64(time.Since(start)) / 1e6
			return tr, nil
		}
	}
	tr.WallMS = float64(time.Since(start)) / 1e6
	tr.finish(finalCode)
	if probe != nil {
		fleet := probe.stop()
		tr.Fleet = &fleet
		fmt.Fprintf(opt.log(), "soak: %s trial %d fleet view: %d/%d scrapes saw every rank fresh (%s)\n",
			s.Name, trial, fleet.Good, fleet.Samples, fleet.Bottleneck)
		if fleet.Good == 0 && tr.OK {
			// The job passed but the fleet was never fully visible: a
			// telemetry regression, and exactly what this assertion is for.
			tr.OK = false
			tr.Error = fmt.Sprintf("telemetry: no fleet scrape ever showed every rank reporting fresh (%d scrapes, last diagnosis %q)",
				fleet.Samples, fleet.Diagnosis)
		}
	}
	return tr, nil
}

// fleetProbe scrapes rank 0's fleet view for the duration of one trial. It
// first watches rank 0's stdout for the TelemetryPrefix line naming the
// server address, then polls /cluster/status.json. A scrape is good when
// every rank has reported, fresh, and none is declared dead — kill windows
// and restarts naturally produce bad scrapes, so the trial assertion is
// "at least one good scrape", not "all good".
type fleetProbe struct {
	ranks int
	out   *markWatch
	stopc chan struct{}
	done  chan struct{}
	once  sync.Once

	mu  sync.Mutex
	rep FleetReport
}

func startFleetProbe(s Scenario, rank0Stdout *markWatch) *fleetProbe {
	p := &fleetProbe{
		ranks: s.Ranks,
		out:   rank0Stdout,
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *fleetProbe) run() {
	defer close(p.done)
	var addr string
	for addr == "" {
		select {
		case <-p.stopc:
			return
		case <-time.After(50 * time.Millisecond):
		}
		addr = telemetryAddr(p.out.String())
	}
	p.mu.Lock()
	p.rep.Addr = addr
	p.mu.Unlock()
	client := &http.Client{Timeout: time.Second}
	for {
		select {
		case <-p.stopc:
			return
		case <-time.After(100 * time.Millisecond):
		}
		st, err := scrapeFleet(client, addr)
		if err != nil {
			continue // between attempts, or before the first cluster: 503s
		}
		good := len(st.Ranks) == p.ranks
		for _, rs := range st.Ranks {
			if !rs.Reported || rs.Stale || rs.Dead {
				good = false
			}
		}
		p.mu.Lock()
		p.rep.Samples++
		if good {
			p.rep.Good++
			p.rep.Bottleneck = st.Bottleneck.String()
		}
		p.rep.Diagnosis = st.Diagnosis
		p.mu.Unlock()
	}
}

// stop ends the probe and returns the accumulated report; idempotent.
func (p *fleetProbe) stop() FleetReport {
	p.once.Do(func() { close(p.stopc) })
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rep
}

// telemetryAddr extracts the fleet-view address from rank 0's stdout, once
// the full marker line (newline included) has streamed in.
func telemetryAddr(out string) string {
	i := strings.Index(out, TelemetryPrefix)
	if i < 0 {
		return ""
	}
	rest := out[i+len(TelemetryPrefix):]
	j := strings.IndexByte(rest, '\n')
	if j < 0 {
		return ""
	}
	return strings.TrimSpace(rest[:j])
}

func scrapeFleet(client *http.Client, addr string) (cluster.ClusterStatus, error) {
	var st cluster.ClusterStatus
	resp, err := client.Get("http://" + addr + "/cluster/status.json")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("fleet view answered %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// parseWorkerResult extracts the FGSOAK_RESULT line from a finished
// worker's stdout; a missing line on a zero exit is itself a failure.
func parseWorkerResult(p *workerProc, code int) WorkerResult {
	for _, line := range strings.Split(p.stdout.String(), "\n") {
		if !strings.HasPrefix(line, ResultPrefix) {
			continue
		}
		var res WorkerResult
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, ResultPrefix)), &res); err == nil {
			return res
		}
	}
	return WorkerResult{
		Rank:  p.rank,
		OK:    false,
		Error: fmt.Sprintf("no %s line on stdout (exit %d)", ResultPrefix, code),
	}
}

// finish derives the trial verdict and rollups from the per-rank results.
func (tr *TrialReport) finish(codes map[int]int) {
	tr.OK = true
	for rank, code := range codes {
		if code != 0 {
			tr.OK = false
			if tr.Error == "" {
				tr.Error = fmt.Sprintf("rank %d exited %d", rank, code)
			}
		}
	}
	for _, w := range tr.Workers {
		if !w.OK || w.LeakedGoroutines > 0 {
			tr.OK = false
			if tr.Error == "" {
				tr.Error = fmt.Sprintf("rank %d: %s", w.Rank, w.Error)
			}
		}
		if w.Attempts > 1 {
			tr.Retries += w.Attempts - 1
		}
		tr.Reconnects += w.Reconnects
		tr.Deaths += len(w.DeadRanks)
		if w.DeathDetectMS > tr.DeathDetectMS {
			tr.DeathDetectMS = w.DeathDetectMS
		}
		if w.Rank == 0 {
			tr.Bottleneck = w.Bottleneck
			tr.Resumed = w.Resumed
			tr.SortMS = w.TotalMS
		}
	}
}

func killAll(live map[int]*workerProc) {
	for _, p := range live {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
	}
}

// reservePorts allocates one loopback address per rank by binding and
// releasing ephemeral listeners — the same reserve-then-race pattern the
// chaos tests use; the window between Close and the worker's bind is
// microscopic on loopback.
func reservePorts(n int) ([]string, error) {
	peers := make([]string, n)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("reserve port: %w", err)
		}
		peers[i] = ln.Addr().String()
		ln.Close()
	}
	return peers, nil
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n:]
}

// markWatch is an io.Writer that accumulates output and counts occurrences
// of a marker substring as they stream in, waking waiters — the driver's
// window into a worker's supervisor progress.
type markWatch struct {
	mu      sync.Mutex
	b       bytes.Buffer
	marker  string
	scanned int // bytes of b already counted
	count   int
	bump    chan struct{} // closed and replaced on every count change
}

func newMarkWatch(marker string) *markWatch {
	return &markWatch{marker: marker, bump: make(chan struct{})}
}

func (w *markWatch) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.b.Write(p)
	if w.marker == "" {
		return len(p), nil
	}
	s := w.b.String()
	for {
		i := strings.Index(s[w.scanned:], w.marker)
		if i < 0 {
			break
		}
		w.scanned += i + len(w.marker)
		w.count++
		close(w.bump)
		w.bump = make(chan struct{})
	}
	return len(p), nil
}

func (w *markWatch) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// Count returns how many times the marker has appeared.
func (w *markWatch) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// WaitAbove blocks until the marker count exceeds base or the timeout
// elapses; it reports whether the count moved.
func (w *markWatch) WaitAbove(base int, timeout time.Duration) bool {
	deadline := time.After(timeout)
	for {
		w.mu.Lock()
		c, bump := w.count, w.bump
		w.mu.Unlock()
		if c > base {
			return true
		}
		select {
		case <-bump:
		case <-deadline:
			return false
		}
	}
}
