// Package soak is the cluster-scale stress harness: it spawns N real FG
// sort processes over the TCP transport, drives them with concurrent
// workloads from package workload, applies declarative fault and churn
// plans compiled onto internal/faultinject hooks (plus real SIGKILL and
// process restart at the driver), verifies every run collectively with
// check.DistributedOutput, and emits a structured per-run report whose
// benchmark-shaped lines feed the same BENCH_history.jsonl curve the
// kernel benchmarks accumulate. The paper's claim — that pipeline-visible
// structure lets FG overlap I/O, communication, and computation under real
// cluster conditions — is only testable under real cluster conditions:
// many processes, real sockets, and scheduled misfortune. This package is
// that proof system; cmd/fgsoak is its driver.
package soak

import (
	"embed"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"time"

	"github.com/fg-go/fg/workload"
)

//go:embed scenarios/*.json
var builtinFS embed.FS

// A Scenario is one declarative soak plan: the cluster shape, the workload,
// the resilience configuration, and the scheduled faults. Scenarios are
// checked into soak/scenarios/ as JSON and decoded strictly — an unknown
// field or an inconsistent plan is an error at load time, never a silent
// misconfiguration discovered mid-soak.
type Scenario struct {
	// Name labels the scenario in reports and history entries.
	Name string `json:"name"`
	// Description says what the scenario proves.
	Description string `json:"description,omitempty"`

	// Ranks is the cluster size; each rank runs as its own OS process.
	Ranks int `json:"ranks"`
	// Program is the sorting program every rank runs: "dsort", "csort",
	// "csort4", or "dsort-linear".
	Program string `json:"program"`
	// Records is the cluster-wide record count N.
	Records int64 `json:"records"`
	// RecordSize is bytes per record (>= 16). Zero defaults to 16.
	RecordSize int `json:"record_size,omitempty"`
	// ColumnsPerNode fixes the csort geometry and the PDM block. Zero
	// defaults to 1.
	ColumnsPerNode int `json:"columns_per_node,omitempty"`
	// Distribution names the key distribution (workload.ParseDistribution
	// spelling: "uniform", "poisson", "skew-zipf", ...). Empty defaults to
	// "uniform".
	Distribution string `json:"distribution,omitempty"`
	// Seed makes the workload deterministic. Zero defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// Parallelism is the intra-buffer kernel worker knob (0 = all cores).
	Parallelism int `json:"parallelism,omitempty"`
	// Buffers overrides each pipeline's circulating buffer pool (0 keeps
	// the program default).
	Buffers int `json:"buffers,omitempty"`

	// Trials repeats the whole run (fresh processes each time) and reports
	// every trial; zero means one.
	Trials int `json:"trials,omitempty"`
	// TimeoutSec bounds one trial's wall clock; past it the driver kills
	// the fleet and fails the trial. Zero defaults to 120.
	TimeoutSec int `json:"timeout_sec,omitempty"`

	// Checkpoint enables pass-level checkpointing in a shared per-trial
	// directory, the substrate a killed rank's replacement resumes from.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// MaxAttempts is each rank's supervised attempt budget (1 = run once,
	// no supervisor). Scenarios that kill ranks need more than 1.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Heartbeat configures the failure detector; required by scenarios
	// that kill ranks, optional otherwise.
	Heartbeat *HeartbeatSpec `json:"heartbeat,omitempty"`
	// Disk overrides the simulated per-node disk model.
	Disk *DiskSpec `json:"disk,omitempty"`
	// Telemetry arms the cluster telemetry plane: every rank publishes its
	// record each interval toward rank 0, whose process serves the fleet
	// view the driver scrapes and asserts on (every live rank must show up
	// fresh at least once per trial).
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`

	// Faults is the scheduled misfortune, applied in addition to the
	// clean workload.
	Faults []Fault `json:"faults,omitempty"`
}

// HeartbeatSpec mirrors cluster.HealthConfig in milliseconds.
type HeartbeatSpec struct {
	IntervalMS     int `json:"interval_ms"`
	SuspectAfterMS int `json:"suspect_after_ms,omitempty"`
	DeadAfterMS    int `json:"dead_after_ms,omitempty"`
	StartupGraceMS int `json:"startup_grace_ms,omitempty"`
}

// TelemetrySpec mirrors cluster.TelemetryConfig in milliseconds. Rank 0 is
// always the aggregator: it is the rank the driver watches and the one rank
// a scenario may not kill.
type TelemetrySpec struct {
	IntervalMS   int `json:"interval_ms"`
	StaleAfterMS int `json:"stale_after_ms,omitempty"`
}

// DiskSpec mirrors pdm.DiskModel.
type DiskSpec struct {
	SeekLatencyUS  int     `json:"seek_latency_us"`
	BytesPerSecond float64 `json:"bytes_per_second"`
}

// Fault kinds. Each kind compiles onto a different layer of the fault
// machinery; see Compile in plan.go for the mapping.
const (
	// FaultKillOp SIGKILLs rank Rank from inside, on the OpCount-th disk
	// operation touching File ("output", "input", or empty for any) —
	// deterministic mid-pass death, the internal/faultinject KillOn hook.
	FaultKillOp = "kill-op"
	// FaultKillAfter SIGKILLs rank Rank from outside (the driver) after
	// AfterMS of wall clock — asynchronous death, nothing in the victim
	// cooperates.
	FaultKillAfter = "kill-after"
	// FaultPartition simulates a flapping link to rank Rank: every process
	// drops frames to and from it for DownMS, heals for UpMS, Cycles
	// times, starting after AfterMS. DownMS below the dead threshold
	// proves churn does not kill; above it proves sustained partitions do.
	FaultPartition = "partition"
	// FaultDiskSlow adds LatencyUS to every disk operation on rank Rank
	// (-1 for all ranks), optionally scoped to File.
	FaultDiskSlow = "disk-slow"
	// FaultNetDrop drops the first DropN outgoing data frames of at least
	// MinBytes payload from rank Rank; the resulting CommError fails the
	// attempt and the supervisor's retry must absorb it.
	FaultNetDrop = "net-drop"
)

// A Fault is one scheduled misfortune in a scenario plan.
type Fault struct {
	// Kind selects the fault mechanism (the Fault* constants).
	Kind string `json:"kind"`
	// Rank is the afflicted rank; -1 means every rank where the kind
	// supports it (disk-slow only).
	Rank int `json:"rank"`

	// OpCount is the 1-based disk-operation index a kill-op dies on.
	OpCount int64 `json:"op_count,omitempty"`
	// File scopes kill-op and disk-slow to one job file name ("output",
	// "input"); empty means any file.
	File string `json:"file,omitempty"`

	// AfterMS delays kill-after and partition faults from trial start.
	AfterMS int `json:"after_ms,omitempty"`

	// Restart makes the driver spawn a replacement process for a killed
	// rank; RestartDelayMS bounds how long it waits for a surviving
	// supervisor to report the failed attempt before spawning anyway.
	Restart        bool `json:"restart,omitempty"`
	RestartDelayMS int  `json:"restart_delay_ms,omitempty"`

	// DownMS, UpMS, Cycles shape a partition fault's churn.
	DownMS int `json:"down_ms,omitempty"`
	UpMS   int `json:"up_ms,omitempty"`
	Cycles int `json:"cycles,omitempty"`

	// LatencyUS is disk-slow's added per-operation latency.
	LatencyUS int `json:"latency_us,omitempty"`

	// DropN and MinBytes shape a net-drop fault.
	DropN    int `json:"drop_n,omitempty"`
	MinBytes int `json:"min_bytes,omitempty"`
}

var validPrograms = map[string]bool{
	"dsort": true, "csort": true, "csort4": true, "dsort-linear": true,
}

// DecodeScenario reads one scenario from JSON, strictly: unknown fields,
// trailing garbage, and semantically inconsistent plans are all errors. It
// never panics, whatever the bytes — the property FuzzScenarioPlan holds it
// to, because scenario files cross the trust boundary between a repo and
// its CI.
func DecodeScenario(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("soak: decode scenario: %w", err)
	}
	if dec.More() {
		return Scenario{}, errors.New("soak: trailing data after scenario document")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Validate checks the plan's internal consistency.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return errors.New("soak: scenario needs a name")
	}
	if strings.ContainsAny(s.Name, "/ \t\n") {
		return fmt.Errorf("soak: scenario name %q may not contain slashes or spaces", s.Name)
	}
	if s.Ranks < 2 {
		return fmt.Errorf("soak: scenario %s: need at least 2 ranks, got %d", s.Name, s.Ranks)
	}
	if s.Ranks > 64 {
		return fmt.Errorf("soak: scenario %s: %d ranks is past the loopback port budget", s.Name, s.Ranks)
	}
	if !validPrograms[s.Program] {
		return fmt.Errorf("soak: scenario %s: unknown program %q", s.Name, s.Program)
	}
	if s.Records <= 0 {
		return fmt.Errorf("soak: scenario %s: non-positive record count %d", s.Name, s.Records)
	}
	if s.RecordSize != 0 && s.RecordSize < 16 {
		return fmt.Errorf("soak: scenario %s: record size %d below minimum 16", s.Name, s.RecordSize)
	}
	cols := int64(s.Ranks) * int64(s.columnsPerNode())
	if s.Records%cols != 0 {
		return fmt.Errorf("soak: scenario %s: %d records do not divide into %d columns", s.Name, s.Records, cols)
	}
	if s.Distribution != "" {
		if _, err := workload.ParseDistribution(s.Distribution); err != nil {
			return fmt.Errorf("soak: scenario %s: %w", s.Name, err)
		}
	}
	if s.Trials < 0 || s.TimeoutSec < 0 || s.MaxAttempts < 0 ||
		s.Parallelism < 0 || s.Buffers < 0 || s.Seed < 0 {
		return fmt.Errorf("soak: scenario %s: negative scalar in plan", s.Name)
	}
	if h := s.Heartbeat; h != nil {
		if h.IntervalMS <= 0 {
			return fmt.Errorf("soak: scenario %s: heartbeat interval must be positive", s.Name)
		}
		if h.SuspectAfterMS < 0 || h.DeadAfterMS < 0 || h.StartupGraceMS < 0 {
			return fmt.Errorf("soak: scenario %s: negative heartbeat threshold", s.Name)
		}
	}
	if d := s.Disk; d != nil {
		if d.SeekLatencyUS < 0 || d.BytesPerSecond < 0 {
			return fmt.Errorf("soak: scenario %s: negative disk model field", s.Name)
		}
	}
	if tl := s.Telemetry; tl != nil {
		if tl.IntervalMS <= 0 {
			return fmt.Errorf("soak: scenario %s: telemetry interval must be positive", s.Name)
		}
		if tl.StaleAfterMS < 0 {
			return fmt.Errorf("soak: scenario %s: negative telemetry stale_after_ms", s.Name)
		}
	}
	for i, f := range s.Faults {
		if err := s.validateFault(i, f); err != nil {
			return err
		}
	}
	return nil
}

func (s Scenario) validateFault(i int, f Fault) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("soak: scenario %s fault %d (%s): %s", s.Name, i, f.Kind, fmt.Sprintf(format, args...))
	}
	rankInRange := f.Rank >= 0 && f.Rank < s.Ranks
	switch f.Kind {
	case FaultKillOp:
		if !rankInRange {
			return bad("rank %d outside [0, %d)", f.Rank, s.Ranks)
		}
		if f.OpCount <= 0 {
			return bad("op_count must be >= 1")
		}
	case FaultKillAfter:
		if !rankInRange {
			return bad("rank %d outside [0, %d)", f.Rank, s.Ranks)
		}
		if f.AfterMS <= 0 {
			return bad("after_ms must be >= 1")
		}
	case FaultPartition:
		if !rankInRange {
			return bad("rank %d outside [0, %d)", f.Rank, s.Ranks)
		}
		if f.DownMS <= 0 || f.UpMS <= 0 || f.Cycles <= 0 {
			return bad("down_ms, up_ms, and cycles must all be >= 1")
		}
	case FaultDiskSlow:
		if !rankInRange && f.Rank != -1 {
			return bad("rank %d is neither -1 (all) nor in [0, %d)", f.Rank, s.Ranks)
		}
		if f.LatencyUS <= 0 {
			return bad("latency_us must be >= 1")
		}
	case FaultNetDrop:
		if !rankInRange {
			return bad("rank %d outside [0, %d)", f.Rank, s.Ranks)
		}
		if f.DropN <= 0 {
			return bad("drop_n must be >= 1")
		}
		if f.MinBytes < 0 {
			return bad("min_bytes must be >= 0")
		}
	default:
		return bad("unknown fault kind")
	}
	if kills := f.Kind == FaultKillOp || f.Kind == FaultKillAfter; kills {
		if f.Rank == 0 {
			return bad("rank 0 is the driver's supervisor observer and may not be killed")
		}
		if s.MaxAttempts <= 1 {
			return bad("a kill fault needs max_attempts > 1 so survivors retry")
		}
		if s.Heartbeat == nil {
			return bad("a kill fault needs a heartbeat config so the death is detected")
		}
		if f.Restart && !s.Checkpoint {
			return bad("a restarted rank needs checkpoint: true to resume")
		}
	}
	if (f.Kind == FaultNetDrop) && s.MaxAttempts <= 1 {
		return fmt.Errorf("soak: scenario %s fault %d (%s): net-drop fails the attempt; max_attempts > 1 is required to absorb it", s.Name, i, f.Kind)
	}
	return nil
}

// Defaulted accessors: zero values in the JSON mean "the usual".

func (s Scenario) recordSize() int     { return defaulted(s.RecordSize, 16) }
func (s Scenario) columnsPerNode() int { return defaulted(s.ColumnsPerNode, 1) }
func (s Scenario) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}
func (s Scenario) trials() int      { return defaulted(s.Trials, 1) }
func (s Scenario) maxAttempts() int { return defaulted(s.MaxAttempts, 1) }

// Timeout returns the per-trial wall-clock bound.
func (s Scenario) Timeout() time.Duration {
	return time.Duration(defaulted(s.TimeoutSec, 120)) * time.Second
}

func defaulted(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// LoadScenario reads a scenario from a file on disk.
func LoadScenario(p string) (Scenario, error) {
	f, err := os.Open(p)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	s, err := DecodeScenario(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", p, err)
	}
	return s, nil
}

// Builtin returns the checked-in scenario with the given name.
func Builtin(name string) (Scenario, error) {
	f, err := builtinFS.Open(path.Join("scenarios", name+".json"))
	if err != nil {
		return Scenario{}, fmt.Errorf("soak: no builtin scenario %q (have %s)", name, strings.Join(BuiltinNames(), ", "))
	}
	defer f.Close()
	s, err := DecodeScenario(f)
	if err != nil {
		return Scenario{}, fmt.Errorf("builtin %s: %w", name, err)
	}
	if s.Name != name {
		return Scenario{}, fmt.Errorf("soak: builtin file %s.json declares name %q", name, s.Name)
	}
	return s, nil
}

// BuiltinNames lists the checked-in scenarios, sorted.
func BuiltinNames() []string {
	entries, err := fs.ReadDir(builtinFS, "scenarios")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}
