package soak

// Report shapes: one TrialReport per spawned fleet, one RunReport per
// scenario invocation. The run report is written as indented JSON for
// humans and artifacts, and distilled into benchmark-shaped entries
// (BenchmarkSoak/<scenario>) appended to BENCH_history.jsonl — the same
// curve the kernel benchmarks accumulate, so cmd/benchgate's trend mode
// reads soak wall clocks and kernel ns/op from one file.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"github.com/fg-go/fg/internal/benchfmt"
)

// A TrialReport is one fleet's outcome.
type TrialReport struct {
	Trial int    `json:"trial"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// WallMS is driver wall clock, spawn to last exit; SortMS is rank 0's
	// in-job total (excludes process startup and teardown).
	WallMS float64 `json:"wall_ms"`
	SortMS float64 `json:"sort_ms"`

	// Retries sums supervisor retries across ranks; Restarts counts
	// replacement processes the driver admitted; Deaths counts peer-death
	// declarations observed; DeathDetectMS is the slowest detection.
	Retries       int     `json:"retries"`
	Restarts      int     `json:"restarts"`
	Deaths        int     `json:"deaths"`
	DeathDetectMS float64 `json:"death_detect_ms,omitempty"`
	Reconnects    int64   `json:"reconnects"`

	// Bottleneck is rank 0's longest pass; Resumed the passes it restored
	// from checkpoints instead of recomputing.
	Bottleneck string   `json:"bottleneck,omitempty"`
	Resumed    []string `json:"resumed,omitempty"`

	// Fleet summarizes the driver's scrapes of rank 0's fleet view, present
	// when the scenario arms telemetry.
	Fleet *FleetReport `json:"fleet,omitempty"`

	Workers []WorkerResult `json:"workers"`
}

// A FleetReport is the driver-side summary of one trial's fleet-view
// scrapes: how many scrapes answered, how many showed every rank reporting
// fresh, and the last cluster bottleneck and diagnosis observed.
type FleetReport struct {
	Addr       string   `json:"addr,omitempty"`
	Samples    int      `json:"samples"`
	Good       int      `json:"good"`
	Bottleneck string   `json:"bottleneck,omitempty"`
	Diagnosis  []string `json:"diagnosis,omitempty"`
}

// A RunReport is one scenario's full outcome.
type RunReport struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	Program     string `json:"program"`
	Ranks       int    `json:"ranks"`
	Records     int64  `json:"records"`
	RecordSize  int    `json:"record_size"`

	OK     bool          `json:"ok"`
	Trials []TrialReport `json:"trials"`
}

// BytesSorted is the cluster-wide dataset size one trial sorts.
func (r RunReport) BytesSorted() int64 { return r.Records * int64(r.RecordSize) }

// best returns the fastest passing trial, or nil if none passed.
func (r RunReport) best() *TrialReport {
	var best *TrialReport
	for i := range r.Trials {
		t := &r.Trials[i]
		if !t.OK {
			continue
		}
		if best == nil || t.WallMS < best.WallMS {
			best = t
		}
	}
	return best
}

// BenchResult distills the run into one benchmark-shaped entry: ns/op is
// the best passing trial's wall clock (best-of-N, as go test reports), with
// the resilience counters as custom metrics. Returns ok=false when no trial
// passed — a failed soak must not pollute the perf curve.
func (r RunReport) BenchResult() (benchfmt.Result, bool) {
	best := r.best()
	if best == nil {
		return benchfmt.Result{}, false
	}
	ns := best.WallMS * 1e6
	res := benchfmt.Result{
		Name:       "BenchmarkSoak/" + r.Scenario,
		Iterations: int64(len(r.Trials)),
		Metrics: map[string]float64{
			"ns/op":      ns,
			"MB/s":       float64(r.BytesSorted()) / 1e6 / (best.WallMS / 1e3),
			"retries":    float64(best.Retries),
			"restarts":   float64(best.Restarts),
			"reconnects": float64(best.Reconnects),
		},
	}
	if best.DeathDetectMS > 0 {
		res.Metrics["death-ms"] = best.DeathDetectMS
	}
	return res, true
}

// BenchLine renders the entry in `go test -bench` text format, so the soak
// row pipes through cmd/benchjson like any benchmark output.
func (r RunReport) BenchLine() string {
	res, ok := r.BenchResult()
	if !ok {
		return ""
	}
	// ns/op first, then the rest in stable order.
	parts := []string{res.Name, strconv.FormatInt(res.Iterations, 10)}
	emit := func(unit string) {
		parts = append(parts, strconv.FormatFloat(res.Metrics[unit], 'f', 2, 64), unit)
	}
	emit("ns/op")
	for _, unit := range []string{"MB/s", "retries", "restarts", "reconnects", "death-ms"} {
		if _, ok := res.Metrics[unit]; ok {
			emit(unit)
		}
	}
	return strings.Join(parts, " ")
}

// AppendHistory appends the run's benchmark entry to the history file under
// the given label. A run with no passing trial appends nothing and reports
// false.
func (r RunReport) AppendHistory(path, label string) (bool, error) {
	res, ok := r.BenchResult()
	if !ok {
		return false, nil
	}
	rep := benchfmt.Report{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Packages:   []string{"github.com/fg-go/fg/soak"},
		Benchmarks: []benchfmt.Result{res},
	}
	return true, benchfmt.AppendHistory(path, rep, label)
}

// WriteJSON writes the run report, indented, to path ("" or "-" = stdout).
func (r RunReport) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// Summary renders a short human verdict for the driver's log.
func (r RunReport) Summary() string {
	passed := 0
	for _, t := range r.Trials {
		if t.OK {
			passed++
		}
	}
	verdict := "PASSED"
	if !r.OK {
		verdict = "FAILED"
	}
	line := fmt.Sprintf("soak %s: %s (%d/%d trials passed", r.Scenario, verdict, passed, len(r.Trials))
	if best := r.best(); best != nil {
		line += fmt.Sprintf(", best %.1fs, retries=%d restarts=%d reconnects=%d",
			best.WallMS/1e3, best.Retries, best.Restarts, best.Reconnects)
		if best.DeathDetectMS > 0 {
			line += fmt.Sprintf(", death detected in %.0fms", best.DeathDetectMS)
		}
		if best.Bottleneck != "" {
			line += ", bottleneck " + best.Bottleneck
		}
	}
	return line + ")"
}
