package soak

// The worker is one rank of a soak run: a process the driver spawned with
// FGSOAK_WORKER_CONFIG pointing at a per-rank config file. It builds a
// harness.Params for the scenario, installs the faults the plan assigns to
// its rank, runs the program under the supervisor, polices its own goroutine
// shutdown, and prints one machine-readable FGSOAK_RESULT line on stdout for
// the driver to collect. Both cmd/fgsoak and the soak test binary route
// through WorkerMain before doing anything else, so the re-exec'd image is
// whatever image the driver itself runs from — the same trick the harness's
// chaos tests play with go test's binary.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/internal/faultinject"
	"github.com/fg-go/fg/internal/harness"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/pdm"
	"github.com/fg-go/fg/supervise"
	"github.com/fg-go/fg/workload"
)

// WorkerEnv is the environment variable that routes a process into
// WorkerMain: its value is the path to a WorkerConfig JSON file.
const WorkerEnv = "FGSOAK_WORKER_CONFIG"

// ResultPrefix tags the one stdout line a worker prints for the driver.
const ResultPrefix = "FGSOAK_RESULT:"

// TelemetryPrefix tags the stdout line rank 0 prints, as soon as its
// fleet-view HTTP server is listening, with that server's address — the
// driver scrapes /cluster/status.json there for the whole trial.
const TelemetryPrefix = "FGSOAK_TELEMETRY:"

// Worker exit codes, distinct from go test's own.
const (
	ExitConfigError = 2 // bad or unreadable worker config
	ExitRunError    = 4 // the job failed after all attempts
	ExitLeak        = 5 // the job succeeded but goroutines leaked
)

// WorkerConfig is everything one rank's process needs, written by the
// driver, read by WorkerMain.
type WorkerConfig struct {
	// Scenario is the full plan, inlined so a worker needs no second file.
	Scenario Scenario `json:"scenario"`
	// Rank is this process's rank.
	Rank int `json:"rank"`
	// Peers maps rank to listen address.
	Peers []string `json:"peers"`
	// CheckpointDir is the job's shared checkpoint directory ("" = off).
	CheckpointDir string `json:"checkpoint_dir,omitempty"`
	// EnableKills arms this process's kill-op faults. The driver sets it
	// on initial spawns and clears it on replacements, so a resurrected
	// rank does not die the same death forever.
	EnableKills bool `json:"enable_kills"`
}

// WorkerResult is the structured outcome a worker prints after ResultPrefix.
type WorkerResult struct {
	Rank     int      `json:"rank"`
	OK       bool     `json:"ok"`
	Error    string   `json:"error,omitempty"`
	Attempts int      `json:"attempts"`
	Resumed  []string `json:"resumed,omitempty"`

	Passes  []PassReport `json:"passes,omitempty"`
	TotalMS float64      `json:"total_ms"`
	// Bottleneck names the longest pass — where the run spent its time.
	Bottleneck string `json:"bottleneck,omitempty"`

	// DeadRanks lists peers this process's failure detector declared dead;
	// DeathDetectMS is the longest silence that preceded a declaration —
	// the detection latency the heartbeat configuration bought.
	DeadRanks     []int   `json:"dead_ranks,omitempty"`
	DeathDetectMS float64 `json:"death_detect_ms,omitempty"`

	DiskReadBytes    int64 `json:"disk_read_bytes"`
	DiskWriteBytes   int64 `json:"disk_write_bytes"`
	CommBytesSent    int64 `json:"comm_bytes_sent"`
	CommMessagesSent int64 `json:"comm_messages_sent"`
	Reconnects       int64 `json:"reconnects"`

	LeakedGoroutines int `json:"leaked_goroutines"`
}

// PassReport is one pass's wall clock in milliseconds.
type PassReport struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// IsWorker reports whether this process was spawned as a soak worker.
func IsWorker() bool { return os.Getenv(WorkerEnv) != "" }

// WorkerMain runs this process as its configured rank and returns the
// process exit code. Call it from main (or TestMain) before anything else
// when IsWorker() is true.
func WorkerMain() int {
	cfg, err := loadWorkerConfig(os.Getenv(WorkerEnv))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fgsoak worker: %v\n", err)
		return ExitConfigError
	}
	if dir := os.Getenv(CaptureEnv); dir != "" {
		defer captureFrames(dir)()
	}
	return runWorker(cfg)
}

func loadWorkerConfig(path string) (WorkerConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return WorkerConfig{}, err
	}
	var cfg WorkerConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return WorkerConfig{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := cfg.Scenario.Validate(); err != nil {
		return WorkerConfig{}, err
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Scenario.Ranks || len(cfg.Peers) != cfg.Scenario.Ranks {
		return WorkerConfig{}, fmt.Errorf("%s: rank %d / %d peers inconsistent with %d ranks",
			path, cfg.Rank, len(cfg.Peers), cfg.Scenario.Ranks)
	}
	return cfg, nil
}

func runWorker(cfg WorkerConfig) int {
	s := cfg.Scenario
	pr := harness.Params{
		Nodes:          s.Ranks,
		TotalRecords:   s.Records,
		RecordSize:     s.recordSize(),
		ColumnsPerNode: s.columnsPerNode(),
		Seed:           s.seed(),
		Verify:         true,
		Parallelism:    s.Parallelism,
		Transport: cluster.TransportConfig{
			Kind:        cluster.TransportTCP,
			Peers:       cfg.Peers,
			Rank:        cfg.Rank,
			DialTimeout: 30 * time.Second,
		},
		CheckpointDir: cfg.CheckpointDir,
	}
	if d := s.Disk; d != nil {
		pr.Disk = pdm.DiskModel{
			SeekLatency:    time.Duration(d.SeekLatencyUS) * time.Microsecond,
			BytesPerSecond: d.BytesPerSecond,
		}
	}
	if h := s.Heartbeat; h != nil {
		pr.Health = cluster.HealthConfig{
			Interval:     time.Duration(h.IntervalMS) * time.Millisecond,
			SuspectAfter: time.Duration(h.SuspectAfterMS) * time.Millisecond,
			DeadAfter:    time.Duration(h.DeadAfterMS) * time.Millisecond,
			StartupGrace: time.Duration(h.StartupGraceMS) * time.Millisecond,
		}
	}
	var ct *harness.ClusterTelemetry
	if tl := s.Telemetry; tl != nil {
		// Every rank publishes; the registry gives the records their stage
		// taxonomy. Rank 0 — the aggregator, the one rank no scenario may
		// kill — additionally serves the fleet view and tells the driver
		// where to scrape it.
		pr.Observe = &fg.Observe{Metrics: fg.NewMetricsRegistry()}
		pr.Telemetry = cluster.TelemetryConfig{
			Interval:   time.Duration(tl.IntervalMS) * time.Millisecond,
			StaleAfter: time.Duration(tl.StaleAfterMS) * time.Millisecond,
		}
		if cfg.Rank == 0 {
			served, err := harness.ServeClusterTelemetry("127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "fgsoak worker: fleet view server: %v\n", err)
				return ExitConfigError
			}
			ct = served
			pr.OnTelemetry = ct.SetPlane
			fmt.Printf("%s%s\n", TelemetryPrefix, ct.Addr())
		}
	}

	res := WorkerResult{Rank: cfg.Rank, Attempts: 1}
	var rmu sync.Mutex // guards res fields the death hook touches

	// The supervisor's report carries attempt counts and per-attempt errors;
	// the driver reads them from the result line instead of scraping logs.
	if s.maxAttempts() > 1 {
		pr.Supervise = s.maxAttempts()
		pr.SuperviseLog = os.Stderr
		pr.OnSuperviseReport = func(rep supervise.Report) {
			rmu.Lock()
			res.Attempts = len(rep.Attempts)
			rmu.Unlock()
		}
	}

	spec, err := pr.Spec(workload.Uniform) // distribution irrelevant to the names
	if err != nil {
		fmt.Fprintf(os.Stderr, "fgsoak worker: %v\n", err)
		return ExitConfigError
	}
	faults := newFaultSet(s, cfg, spec)
	defer faults.stop()

	pr.OnCluster = func(c *cluster.Cluster) {
		c.OnPeerDeath(func(rank int, err error) {
			rmu.Lock()
			defer rmu.Unlock()
			res.DeadRanks = append(res.DeadRanks, rank)
			var pde *cluster.PeerDeathError
			if errors.As(err, &pde) {
				if ms := float64(pde.Silence) / 1e6; ms > res.DeathDetectMS {
					res.DeathDetectMS = ms
				}
			}
		})
		faults.install(c)
	}

	dist := workload.Uniform
	if s.Distribution != "" {
		dist, _ = workload.ParseDistribution(s.Distribution) // validated already
	}
	run, err := pr.Run(harness.Program(s.Program), dist, s.Buffers)
	faults.stop() // churn goroutines must be joined before the leak check
	ct.Close()    // and so must the fleet-view server's accept loop

	rmu.Lock()
	res.OK = err == nil
	if err != nil {
		res.Error = err.Error()
	}
	fillResult(&res, run)
	if leaked := check.LeakedGoroutines(5 * time.Second); len(leaked) > 0 {
		res.LeakedGoroutines = len(leaked)
		fmt.Fprintf(os.Stderr, "fgsoak worker rank %d leaked %d goroutine(s):\n%s\n",
			cfg.Rank, len(leaked), strings.Join(leaked, "\n\n"))
	}
	line, merr := json.Marshal(res)
	rmu.Unlock()
	if merr == nil {
		fmt.Printf("%s%s\n", ResultPrefix, line)
	}
	switch {
	case err != nil:
		fmt.Fprintf(os.Stderr, "fgsoak worker rank %d: %v\n", cfg.Rank, err)
		return ExitRunError
	case res.LeakedGoroutines > 0:
		return ExitLeak
	}
	return 0
}

func fillResult(res *WorkerResult, run oocsort.Result) {
	var longest time.Duration
	for _, p := range run.Passes {
		res.Passes = append(res.Passes, PassReport{Name: p.Name, MS: float64(p.Duration) / 1e6})
		if p.Duration > longest {
			longest = p.Duration
			res.Bottleneck = p.Name
		}
	}
	res.TotalMS = float64(run.Total()) / 1e6
	res.Resumed = run.Resumed
	res.DiskReadBytes = run.Disk.BytesRead
	res.DiskWriteBytes = run.Disk.BytesWritten
	res.CommBytesSent = run.Comm.BytesSent
	res.CommMessagesSent = run.Comm.MessagesSent
	res.Reconnects = run.Comm.Reconnects
}

// faultSet compiles a scenario's faults for one rank onto the injection
// seams. Injectors are created once per process — not per attempt — so a
// fail-N budget spans the supervisor's retries: the drop that failed
// attempt 1 is spent, and attempt 2 runs clean, which is the point.
type faultSet struct {
	s       Scenario
	rank    int
	attempt int

	// diskHooks are per-fault candidate filters on this rank's disk ops.
	diskHooks []func(op, name string, off int64) error
	// netHook is the wire-level fault hook, nil if no net fault targets us.
	netHook cluster.NetFaultHook
	// partitions are churn plans every process applies (each process
	// decides its own receiver view, as a real partition would).
	partitions []Fault

	mu    sync.Mutex
	stops []func()
}

func newFaultSet(s Scenario, cfg WorkerConfig, spec oocsort.Spec) *faultSet {
	fs := &faultSet{s: s, rank: cfg.Rank}
	scoped := func(f Fault) []string {
		if f.File != "" {
			// Scenario files name job files by role; resolve through the
			// spec so a renamed job file cannot silently unscope a fault.
			switch f.File {
			case "input":
				return []string{spec.InputName}
			case "output":
				return []string{spec.OutputName}
			}
			return []string{f.File}
		}
		return nil
	}
	for _, f := range s.Faults {
		switch f.Kind {
		case FaultKillOp:
			if f.Rank != cfg.Rank || !cfg.EnableKills {
				continue
			}
			inj := faultinject.New(faultinject.Config{KillOn: f.OpCount})
			fs.diskHooks = append(fs.diskHooks, inj.DiskHook(scoped(f)...))
		case FaultDiskSlow:
			if f.Rank != cfg.Rank && f.Rank != -1 {
				continue
			}
			inj := faultinject.New(faultinject.Config{
				Latency: time.Duration(f.LatencyUS) * time.Microsecond,
			})
			fs.diskHooks = append(fs.diskHooks, inj.DiskHook(scoped(f)...))
		case FaultNetDrop:
			if f.Rank != cfg.Rank {
				continue
			}
			inj := faultinject.New(faultinject.Config{FailN: f.DropN, Seed: s.seed()})
			fs.netHook = inj.NetHook(cluster.NetFaultDrop, f.MinBytes)
		case FaultPartition:
			fs.partitions = append(fs.partitions, f)
		}
	}
	return fs
}

// install wires the compiled faults into a freshly built cluster. Called
// once per attempt; scheduled faults (partition churn) fire only on the
// first attempt — the retry is supposed to find better weather.
func (fs *faultSet) install(c *cluster.Cluster) {
	fs.attempt++
	if len(fs.diskHooks) > 0 {
		hooks := fs.diskHooks
		combined := func(op, name string, off int64) error {
			for _, h := range hooks {
				if err := h(op, name, off); err != nil {
					return err
				}
			}
			return nil
		}
		for _, n := range c.Local() {
			n.Disk.SetFault(combined)
		}
	}
	if fs.netHook != nil {
		c.SetNetFault(fs.netHook)
	}
	if fs.attempt == 1 {
		for _, f := range fs.partitions {
			f := f
			timer := time.AfterFunc(time.Duration(f.AfterMS)*time.Millisecond, func() {
				stop := faultinject.PartitionChurn(c,
					f.Rank,
					time.Duration(f.DownMS)*time.Millisecond,
					time.Duration(f.UpMS)*time.Millisecond,
					f.Cycles)
				fs.mu.Lock()
				fs.stops = append(fs.stops, stop)
				fs.mu.Unlock()
			})
			fs.mu.Lock()
			fs.stops = append(fs.stops, func() { timer.Stop() })
			fs.mu.Unlock()
		}
	}
}

// stop cancels pending fault timers and joins churn goroutines. Idempotent.
func (fs *faultSet) stop() {
	fs.mu.Lock()
	stops := fs.stops
	fs.stops = nil
	fs.mu.Unlock()
	for _, stop := range stops {
		stop()
	}
}
