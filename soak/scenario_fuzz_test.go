package soak

import (
	"io/fs"
	"strings"
	"testing"
)

// FuzzScenarioPlan holds the scenario decoder to its contract: whatever the
// bytes — truncated JSON, wrong types, hostile numbers — DecodeScenario
// must return an error or a valid scenario, never panic. Scenario files
// cross the trust boundary between a repo and its CI; a plan that crashes
// the driver is a denial of the very service that proves resilience. Seeds
// are every checked-in plan plus the malformations the strict decoder is
// documented to reject.
func FuzzScenarioPlan(f *testing.F) {
	entries, err := fs.ReadDir(builtinFS, "scenarios")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		raw, err := fs.ReadFile(builtinFS, "scenarios/"+e.Name())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(raw))
	}
	f.Add(`{"name": "x", "ranks": 2, "program": "dsort", "records": 4096}`)
	f.Add(`{"name": "x", "ranks": 1e9, "program": "dsort", "records": -1}`)
	f.Add(`{"name": "x", "unknown": {"deeply": ["nested"]}}`)
	f.Add(`{"faults": [{"kind": "kill-op", "rank": 99999999999999999999}]}`)
	f.Add(`{} {}`)
	f.Add(`[`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, doc string) {
		s, err := DecodeScenario(strings.NewReader(doc))
		if err != nil {
			return
		}
		// A decoded plan must be internally consistent: Validate already ran
		// inside DecodeScenario, so spot-check the invariants the driver
		// leans on hardest.
		if s.Ranks < 2 || s.Ranks > 64 {
			t.Fatalf("decoded scenario with %d ranks", s.Ranks)
		}
		if s.Records <= 0 {
			t.Fatalf("decoded scenario with %d records", s.Records)
		}
		for _, fl := range s.Faults {
			if fl.Rank >= s.Ranks {
				t.Fatalf("fault rank %d outside %d-rank cluster", fl.Rank, s.Ranks)
			}
		}
	})
}
