package soak

import (
	"strings"
	"testing"
)

// TestBuiltinScenariosDecodeAndValidate: every checked-in plan must load,
// validate, and carry the name its file claims.
func TestBuiltinScenariosDecodeAndValidate(t *testing.T) {
	names := BuiltinNames()
	if len(names) < 6 {
		t.Fatalf("expected at least 6 builtin scenarios, have %v", names)
	}
	for _, want := range []string{"smoke", "clean-run", "slow-disk", "partition-heal", "rank-death-midpass", "cascading-churn"} {
		s, err := Builtin(want)
		if err != nil {
			t.Fatalf("builtin %s: %v", want, err)
		}
		if s.Name != want {
			t.Errorf("builtin %s declares name %q", want, s.Name)
		}
		if s.Description == "" {
			t.Errorf("builtin %s has no description", want)
		}
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Error("unknown builtin did not error")
	}
}

// TestDecodeScenarioRejects: the strict decoder must reject the plans that
// would otherwise be discovered mid-soak.
func TestDecodeScenarioRejects(t *testing.T) {
	base := `"ranks": 2, "program": "dsort", "records": 4096`
	hb := `"heartbeat": {"interval_ms": 25}`
	cases := []struct {
		name, json, wantErr string
	}{
		{"unknown field", `{"name": "x", ` + base + `, "rnaks": 3}`, "unknown field"},
		{"trailing garbage", `{"name": "x", ` + base + `} {"again": true}`, "trailing data"},
		{"no name", `{` + base + `}`, "needs a name"},
		{"name with slash", `{"name": "a/b", ` + base + `}`, "slashes"},
		{"one rank", `{"name": "x", "ranks": 1, "program": "dsort", "records": 4096}`, "at least 2 ranks"},
		{"bad program", `{"name": "x", "ranks": 2, "program": "qsort", "records": 4096}`, "unknown program"},
		{"indivisible records", `{"name": "x", "ranks": 2, "program": "dsort", "records": 4097}`, "divide"},
		{"bad distribution", `{"name": "x", ` + base + `, "distribution": "bimodal"}`, "unknown distribution"},
		{"tiny records", `{"name": "x", ` + base + `, "record_size": 8}`, "below minimum"},
		{"negative seed", `{"name": "x", ` + base + `, "seed": -1}`, "negative scalar"},
		{"fault kind", `{"name": "x", ` + base + `, "faults": [{"kind": "meteor", "rank": 1}]}`, "unknown fault kind"},
		{"fault rank range", `{"name": "x", ` + base + `, "max_attempts": 2, ` + hb + `, "faults": [{"kind": "kill-op", "rank": 2, "op_count": 1}]}`, "outside"},
		{"kill rank 0", `{"name": "x", ` + base + `, "max_attempts": 2, ` + hb + `, "faults": [{"kind": "kill-op", "rank": 0, "op_count": 1}]}`, "may not be killed"},
		{"kill without attempts", `{"name": "x", ` + base + `, ` + hb + `, "faults": [{"kind": "kill-op", "rank": 1, "op_count": 1}]}`, "max_attempts"},
		{"kill without heartbeat", `{"name": "x", ` + base + `, "max_attempts": 2, "faults": [{"kind": "kill-op", "rank": 1, "op_count": 1}]}`, "heartbeat"},
		{"restart without checkpoint", `{"name": "x", ` + base + `, "max_attempts": 2, ` + hb + `, "faults": [{"kind": "kill-op", "rank": 1, "op_count": 1, "restart": true}]}`, "checkpoint"},
		{"partition shape", `{"name": "x", ` + base + `, "faults": [{"kind": "partition", "rank": 1, "down_ms": 100}]}`, "cycles"},
		{"net-drop unabsorbed", `{"name": "x", ` + base + `, "faults": [{"kind": "net-drop", "rank": 1, "drop_n": 1}]}`, "max_attempts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeScenario(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("decoded without error, want %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestScenarioDefaults: zero-valued knobs mean "the usual".
func TestScenarioDefaults(t *testing.T) {
	s, err := DecodeScenario(strings.NewReader(
		`{"name": "d", "ranks": 2, "program": "dsort", "records": 4096}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.recordSize(); got != 16 {
		t.Errorf("record size default %d", got)
	}
	if got := s.trials(); got != 1 {
		t.Errorf("trials default %d", got)
	}
	if got := s.maxAttempts(); got != 1 {
		t.Errorf("max attempts default %d", got)
	}
	if got := s.Timeout().Seconds(); got != 120 {
		t.Errorf("timeout default %vs", got)
	}
	if got := s.seed(); got != 1 {
		t.Errorf("seed default %d", got)
	}
}
