package soak

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/fg-go/fg/internal/benchfmt"
)

// TestMain routes re-exec'd worker processes into WorkerMain before any
// test runs — the same trick the harness's chaos tests play, so `go test
// ./soak` alone exercises a real multi-process soak.
func TestMain(m *testing.M) {
	if IsWorker() {
		os.Exit(WorkerMain())
	}
	os.Exit(m.Run())
}

// testOptions spawn workers from this test binary with its test runner
// disarmed.
func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		RunDir:     t.TempDir(),
		KeepRunDir: true, // the TempDir cleanup owns removal
		WorkerArgs: []string{"-test.run=^$"},
		Log:        testWriter{t},
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// TestSoakSmoke is the acceptance test of the tentpole: the builtin smoke
// scenario — 2 ranks over real TCP, rank 1 SIGKILLed mid-pass-2, a
// replacement admitted and resumed from checkpoint — must pass end to end
// under this test binary, and its report must carry the resilience story:
// a retry, a restart, a sub-threshold death detection, a resumed pass, and
// a history line the bench tooling can parse.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	s, err := Builtin("smoke")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || len(rep.Trials) != 1 {
		t.Fatalf("smoke run not OK: %+v", rep)
	}
	tr := rep.Trials[0]
	if tr.Restarts != 1 {
		t.Errorf("restarts = %d, want 1 (the replacement rank)", tr.Restarts)
	}
	if tr.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 (the survivor's second attempt)", tr.Retries)
	}
	if tr.Deaths < 1 {
		t.Errorf("deaths = %d, want >= 1 (the heartbeat declaration)", tr.Deaths)
	}
	// The victim was heard from before dying, so detection ages against
	// DeadAfter (600ms), not the 30s startup grace: latency lands near the
	// threshold, nowhere near the grace.
	if tr.DeathDetectMS < 500 || tr.DeathDetectMS > 5000 {
		t.Errorf("death detected in %.0fms, want roughly the 600ms dead threshold", tr.DeathDetectMS)
	}
	if !contains(tr.Resumed, "pass1") {
		t.Errorf("rank 0 resumed %v, want pass1 from the checkpoint", tr.Resumed)
	}
	for _, w := range tr.Workers {
		if w.LeakedGoroutines != 0 {
			t.Errorf("rank %d leaked %d goroutines", w.Rank, w.LeakedGoroutines)
		}
	}

	// The distilled benchmark entry must round-trip through the bench
	// tooling's own parser and land in a history file.
	line := rep.BenchLine()
	res, ok := benchfmt.ParseLine(line)
	if !ok {
		t.Fatalf("BenchLine %q does not parse as a benchmark line", line)
	}
	if res.Name != "BenchmarkSoak/smoke" || res.Metrics["ns/op"] <= 0 {
		t.Errorf("parsed bench line %+v", res)
	}
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	if appended, err := rep.AppendHistory(hist, "test"); err != nil || !appended {
		t.Fatalf("append history: appended=%v err=%v", appended, err)
	}
	entries, skipped, err := benchfmt.ReadHistory(hist)
	if err != nil || skipped != 0 || len(entries) != 1 {
		t.Fatalf("history readback: %d entries, %d skipped, err=%v", len(entries), skipped, err)
	}
	if entries[0].Label != "test" || len(entries[0].Benchmarks) != 1 {
		t.Errorf("history entry %+v", entries[0])
	}
}

// TestSoakCleanRunNoFaults: the control scenario must pass with zero
// resilience machinery engaged — no retries, no restarts, no deaths.
func TestSoakCleanRunNoFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	s, err := Builtin("clean-run")
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions(t)
	opt.Trials = 1 // one trial is proof enough under go test
	rep, err := Run(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("clean run failed: %+v", rep)
	}
	tr := rep.Trials[0]
	if tr.Retries != 0 || tr.Restarts != 0 || tr.Deaths != 0 {
		t.Errorf("clean run engaged resilience machinery: retries=%d restarts=%d deaths=%d",
			tr.Retries, tr.Restarts, tr.Deaths)
	}
	if len(tr.Workers) != s.Ranks {
		t.Errorf("collected %d worker results, want %d", len(tr.Workers), s.Ranks)
	}
}

// TestRunReportFailedTrialsStayOffTheCurve: a run with no passing trial
// must not emit a benchmark entry — a broken soak polluting the perf
// history would defeat the trend gate.
func TestRunReportFailedTrialsStayOffTheCurve(t *testing.T) {
	rep := RunReport{
		Scenario: "x", Records: 1 << 20, RecordSize: 16,
		Trials: []TrialReport{{Trial: 1, OK: false, WallMS: 1000}},
	}
	if _, ok := rep.BenchResult(); ok {
		t.Error("failed run produced a bench entry")
	}
	if line := rep.BenchLine(); line != "" {
		t.Errorf("failed run produced bench line %q", line)
	}
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	appended, err := rep.AppendHistory(hist, "x")
	if err != nil || appended {
		t.Errorf("failed run appended to history: appended=%v err=%v", appended, err)
	}
	if _, statErr := os.Stat(hist); !os.IsNotExist(statErr) {
		t.Error("failed run created a history file")
	}
}

// TestMarkWatch: the supervisor watcher must count markers across write
// boundaries and wake waiters promptly.
func TestMarkWatch(t *testing.T) {
	w := newMarkWatch(": failed")
	w.Write([]byte("supervise: job x attempt 1: fai"))
	if w.Count() != 0 {
		t.Fatal("counted a split marker early")
	}
	done := make(chan bool, 1)
	go func() { done <- w.WaitAbove(0, 5*time.Second) }()
	w.Write([]byte("led: boom\nattempt 2: failed: again\n"))
	if !<-done {
		t.Fatal("waiter never woke")
	}
	if got := w.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if !w.WaitAbove(1, time.Millisecond) {
		t.Error("WaitAbove(1) should already be satisfied")
	}
	if w.WaitAbove(2, 10*time.Millisecond) {
		t.Error("WaitAbove(2) satisfied with only 2 markers")
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
