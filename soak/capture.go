package soak

// Corpus capture: a worker started with FGSOAK_CAPTURE_FRAMES=<dir> in its
// environment installs the cluster's inbound-frame observer and writes
// every distinct wire frame it receives as a `go test fuzz v1` seed file.
// The driver inherits the variable to every worker it spawns, so pointing
// the capture test at a live smoke run harvests real frames — heartbeats,
// bulk column data, whatever the run produced — into the frame codec's
// fuzz corpus (cluster/testdata/fuzz/FuzzFrameCodec). Fuzzing from frames
// that actually crossed a socket keeps the corpus honest about what
// "well-formed" means on the wire.

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/fg-go/fg/cluster"
)

// CaptureEnv names the directory that frame-corpus seeds are written to;
// empty disables capture.
const CaptureEnv = "FGSOAK_CAPTURE_FRAMES"

const (
	// captureMaxFrame skips bulk payloads too large to be useful seeds.
	captureMaxFrame = 2 << 10
	// captureMaxFiles bounds one process's harvest.
	captureMaxFiles = 24
)

// captureFrames installs the observer; the returned stop removes it.
// Seed files are content-addressed, so concurrent workers sharing one
// directory collide only on identical frames.
func captureFrames(dir string) (stop func()) {
	var mu sync.Mutex
	seen := make(map[[sha256.Size]byte]bool)
	cluster.SetFrameObserver(func(frame []byte) {
		if len(frame) > captureMaxFrame {
			return
		}
		sum := sha256.Sum256(frame)
		mu.Lock()
		defer mu.Unlock()
		if seen[sum] || len(seen) >= captureMaxFiles {
			return
		}
		seen[sum] = true
		seed := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", frame)
		path := filepath.Join(dir, fmt.Sprintf("soak-%x", sum[:8]))
		if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fgsoak: frame capture: %v\n", err)
		}
	})
	return func() { cluster.SetFrameObserver(nil) }
}
