package supervise_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/supervise"
)

func fastPolicy() supervise.Policy {
	return supervise.Policy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

func TestRunFirstAttemptSucceeds(t *testing.T) {
	calls := 0
	rep := supervise.Run(supervise.Job{Name: "ok", Run: func(attempt int) ([]string, error) {
		calls++
		return nil, nil
	}}, fastPolicy())
	if rep.Err != nil || calls != 1 || len(rep.Attempts) != 1 {
		t.Fatalf("first-try success: err=%v calls=%d attempts=%d", rep.Err, calls, len(rep.Attempts))
	}
}

func TestRunRetriesPeerDeathThenSucceeds(t *testing.T) {
	var log bytes.Buffer
	calls := 0
	rep := supervise.Run(supervise.Job{Name: "flaky", Run: func(attempt int) ([]string, error) {
		calls++
		if attempt < 3 {
			return nil, &cluster.CommError{Op: "recv", Rank: 0, Peer: 1,
				Err: &cluster.PeerDeathError{Rank: 1, Silence: time.Second}}
		}
		return []string{"pass1"}, nil
	}}, supervise.Policy{MaxAttempts: 5, BaseBackoff: time.Millisecond, Jitter: 0.5, Log: &log})
	if rep.Err != nil {
		t.Fatalf("supervised job failed: %v", rep.Err)
	}
	if calls != 3 {
		t.Errorf("made %d attempts, want 3", calls)
	}
	last := rep.Attempts[len(rep.Attempts)-1]
	if len(last.Resumed) != 1 || last.Resumed[0] != "pass1" {
		t.Errorf("resumed passes not reported: %+v", last)
	}
	s := rep.String()
	for _, want := range []string{`job "flaky" succeeded after 3 attempt(s)`, "attempt 1: failed", "declared dead", "resumed pass1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(log.String(), "retrying in") {
		t.Errorf("log missing backoff line:\n%s", log.String())
	}
}

func TestRunStopsOnPermanentError(t *testing.T) {
	boom := errors.New("records malformed")
	calls := 0
	rep := supervise.Run(supervise.Job{Name: "doomed", Run: func(int) ([]string, error) {
		calls++
		return nil, boom
	}}, fastPolicy())
	if calls != 1 {
		t.Errorf("non-retryable error was attempted %d times, want 1", calls)
	}
	if !errors.Is(rep.Err, boom) {
		t.Errorf("Report.Err = %v, want wrapped %v", rep.Err, boom)
	}
}

func TestRunExhaustsBudget(t *testing.T) {
	calls := 0
	rep := supervise.Run(supervise.Job{Name: "cursed", Run: func(int) ([]string, error) {
		calls++
		return nil, cluster.ErrAborted
	}}, supervise.Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	if calls != 3 {
		t.Errorf("made %d attempts, want 3", calls)
	}
	if rep.Err == nil || !errors.Is(rep.Err, cluster.ErrAborted) {
		t.Errorf("Report.Err = %v, want wrapped ErrAborted", rep.Err)
	}
	if !strings.Contains(rep.Err.Error(), "3 attempt(s)") {
		t.Errorf("error does not report the attempt count: %v", rep.Err)
	}
}

func TestDefaultRetryable(t *testing.T) {
	peerDeath := &cluster.PeerDeathError{Rank: 1, Silence: time.Second}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("x"), false},
		{"permanent", fg.Permanent(errors.New("x")), false},
		{"aborted", cluster.ErrAborted, true},
		{"peer-death", peerDeath, true},
		{"comm-error", &cluster.CommError{Op: "send", Err: errors.New("broken pipe")}, true},
		{"comm-wrapping-death", &cluster.CommError{Op: "recv", Err: peerDeath}, true},
	}
	for _, c := range cases {
		if got := supervise.DefaultRetryable(c.err); got != c.want {
			t.Errorf("DefaultRetryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRunRegistersAttemptMetrics(t *testing.T) {
	reg := fg.NewMetricsRegistry()
	obs := &fg.Observe{Metrics: reg}
	rep := supervise.Run(supervise.Job{Name: "metered", Run: func(attempt int) ([]string, error) {
		if attempt == 1 {
			return nil, cluster.ErrAborted
		}
		return nil, nil
	}}, supervise.Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Observe: obs})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	got := map[string]float64{}
	for _, s := range reg.Samples() {
		if strings.HasPrefix(s.Name, "supervise_") {
			if s.Labels["job"] != "metered" {
				t.Errorf("sample %s has labels %v, want job=metered", s.Name, s.Labels)
			}
			got[s.Name] = s.Value
		}
	}
	want := map[string]float64{
		"supervise_attempts_total": 2,
		"supervise_retries_total":  1,
		"supervise_failures_total": 1,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v (all: %v)", name, got[name], v, got)
		}
	}
}
