// Package supervise drives a distributed FG job through failures. The
// layers below it each solve one piece: heartbeats turn a silently-dead
// peer into a prompt PeerDeathError (cluster/health.go), the abort
// machinery spreads that error to every blocked operation, and pass-level
// checkpoints (fg/checkpoint.go) preserve completed work across a restart.
// The supervisor composes them into the loop ROADMAP item 2 asks for:
// attempt the job; if it fails retryably, tear everything down, wait out a
// jittered backoff, rebuild the cluster with surviving plus restarted
// ranks, and resume from the checkpoints — up to a bounded number of
// attempts, with a structured per-attempt report at the end.
//
// The supervisor does not know how to build a cluster; the Job's Run
// closure does (the harness's is NewCluster + sort + verify + Close; the
// fgsort CLI's is the same with flags). Keeping attempts opaque makes the
// policy reusable for any job shape, including multi-process ones where
// "restart" means a replacement OS process rejoining at the same rank.
package supervise

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
)

// A Job is one supervised workload.
type Job struct {
	// Name labels the job in reports and metrics.
	Name string
	// Run executes one attempt end-to-end — build the cluster, run the
	// program, verify, tear down — and returns the names of any passes the
	// attempt resumed from checkpoints (surfaced in the report) plus the
	// attempt's error. attempt counts from 1. Run must leave no state
	// behind on failure that would poison the next attempt: cluster closed,
	// goroutines joined; checkpoints, of course, stay.
	Run func(attempt int) (resumed []string, err error)
}

// Policy bounds the supervisor's persistence.
type Policy struct {
	// MaxAttempts is the total attempt budget, first try included. Values
	// below 1 default to 3.
	MaxAttempts int
	// BaseBackoff is the pause before the second attempt; each further
	// attempt doubles it. Zero defaults to 250ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Zero defaults to 10s.
	MaxBackoff time.Duration
	// Jitter randomizes each backoff within ±Jitter fraction of its value,
	// so the processes of one job do not retry in lockstep. Zero means no
	// jitter.
	Jitter float64
	// Seed makes the jitter deterministic for tests; zero seeds a default.
	Seed int64
	// Retryable decides whether an attempt's error is worth another
	// attempt. Nil means DefaultRetryable.
	Retryable func(error) bool
	// Observe, if non-nil, gets the supervisor's attempt counters
	// registered on its metrics registry, next to the job's own metrics.
	Observe *fg.Observe
	// Log, if non-nil, receives one human-readable line per attempt as it
	// concludes — the live view of the Report.
	Log io.Writer
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 250 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 10 * time.Second
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Retryable == nil {
		p.Retryable = DefaultRetryable
	}
	if p.Seed == 0 {
		p.Seed = 0x5afe
	}
	return p
}

// DefaultRetryable is the supervisor's default triage: cluster-level
// failures — a peer declared dead, an abort, any communication error — are
// retryable, because rebuilding membership and resuming from checkpoints is
// exactly the cure for them. Everything else (validation errors, logic
// bugs, errors marked fg.Permanent) fails the job on the spot. The
// cluster-level checks run first: a peer death often surfaces as a
// CommError panic, which fg wraps in a PanicError that would otherwise
// read as permanent.
func DefaultRetryable(err error) bool {
	if err == nil {
		return false
	}
	var ce *cluster.CommError
	if errors.Is(err, cluster.ErrPeerDead) || errors.Is(err, cluster.ErrAborted) || errors.As(err, &ce) {
		return true
	}
	return false
}

// An Attempt is one entry of the report.
type Attempt struct {
	// N counts from 1.
	N int
	// Duration is the attempt's wall-clock time.
	Duration time.Duration
	// Resumed names the passes the attempt skipped via checkpoints.
	Resumed []string
	// Err is nil for the successful attempt.
	Err error
}

// A Report is the structured outcome of a supervised run: every attempt,
// in order, plus the final verdict.
type Report struct {
	// Job is the job's name.
	Job string
	// Attempts holds one entry per attempt made.
	Attempts []Attempt
	// Err is nil if some attempt succeeded; otherwise the last attempt's
	// error (wrapped with the attempt count), or the first non-retryable
	// error.
	Err error
}

// String renders the report in the style of the watchdog's stall reports:
// a verdict line, then one line per attempt.
func (r Report) String() string {
	var b strings.Builder
	verdict := "succeeded"
	if r.Err != nil {
		verdict = "FAILED"
	}
	fmt.Fprintf(&b, "supervise: job %q %s after %d attempt(s)\n", r.Job, verdict, len(r.Attempts))
	for _, a := range r.Attempts {
		fmt.Fprintf(&b, "  %s\n", a.line())
	}
	if r.Err != nil {
		fmt.Fprintf(&b, "  error: %v\n", r.Err)
	}
	return b.String()
}

func (a Attempt) line() string {
	outcome := "ok"
	if a.Err != nil {
		outcome = fmt.Sprintf("failed: %v", a.Err)
	}
	resumed := ""
	if len(a.Resumed) > 0 {
		resumed = fmt.Sprintf(" (resumed %s)", strings.Join(a.Resumed, ", "))
	}
	return fmt.Sprintf("attempt %d: %s in %v%s", a.N, outcome, a.Duration.Round(time.Millisecond), resumed)
}

// Run drives the job under the policy until an attempt succeeds, the
// attempt budget runs out, or an error is not retryable. It always returns
// a complete report; Report.Err is the job's overall outcome.
func Run(job Job, p Policy) Report {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	rep := Report{Job: job.Name}
	var retries, failures int
	if p.Observe != nil && p.Observe.Metrics != nil {
		name := job.Name
		p.Observe.Metrics.RegisterFunc(func(emit fg.EmitFunc) {
			labels := map[string]string{"job": name}
			emit("supervise_attempts_total", labels, float64(len(rep.Attempts)))
			emit("supervise_retries_total", labels, float64(retries))
			emit("supervise_failures_total", labels, float64(failures))
		})
	}
	backoff := p.BaseBackoff
	for n := 1; ; n++ {
		start := time.Now()
		resumed, err := job.Run(n)
		a := Attempt{N: n, Duration: time.Since(start), Resumed: resumed, Err: err}
		rep.Attempts = append(rep.Attempts, a)
		if p.Log != nil {
			fmt.Fprintf(p.Log, "supervise: job %q %s\n", job.Name, a.line())
		}
		if err == nil {
			return rep
		}
		failures++
		if !p.Retryable(err) {
			rep.Err = fmt.Errorf("supervise: attempt %d failed permanently: %w", n, err)
			return rep
		}
		if n >= p.MaxAttempts {
			rep.Err = fmt.Errorf("supervise: %d attempt(s) failed, last: %w", n, err)
			return rep
		}
		retries++
		d := backoff
		if p.Jitter > 0 {
			d = time.Duration(float64(d) * (1 + p.Jitter*(2*rng.Float64()-1)))
		}
		if p.Log != nil {
			fmt.Fprintf(p.Log, "supervise: job %q retrying in %v\n", job.Name, d.Round(time.Millisecond))
		}
		time.Sleep(d)
		backoff *= 2
		if backoff > p.MaxBackoff {
			backoff = p.MaxBackoff
		}
	}
}
