package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"github.com/fg-go/fg/fg"
)

// The daemon's own metric families. Everything per-network below them
// comes from each running job's fg.MetricsRegistry, re-labeled with the
// job ID so one scrape distinguishes tenants.
var daemonHelp = []struct{ name, help string }{
	{"fgd_up", "1 while the daemon serves, 0 once draining"},
	{"fgd_uptime_seconds", "daemon uptime"},
	{"fgd_jobs_submitted_total", "job submissions received, accepted or not"},
	{"fgd_jobs_accepted_total", "job submissions admitted to the queue"},
	{"fgd_jobs_rejected_total", "job submissions rejected, by reason"},
	{"fgd_jobs_done_total", "jobs finished successfully"},
	{"fgd_jobs_failed_total", "jobs finished with an error"},
	{"fgd_jobs_cancelled_total", "jobs cancelled by clients or a drain"},
	{"fgd_jobs_running", "jobs currently running networks"},
	{"fgd_jobs_running_max", "high-water mark of concurrently running jobs"},
	{"fgd_queue_depth", "jobs waiting in the admission queue"},
	{"fgd_queue_cap", "admission queue capacity"},
	{"fgd_pool_workers", "size of the shared kernel worker pool"},
}

// handleMetrics serves the Prometheus text exposition: the daemon ledger
// first, then every running job's registry samples with a job label
// spliced in. Settled jobs drop out of the scrape — their registries
// belong to finished clusters — which keeps the exposition bounded however
// many jobs the daemon has retired.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Status(false)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	up := 1
	if st.State != "serving" {
		up = 0
	}
	gauges := []struct {
		name  string
		value float64
	}{
		{"fgd_up", float64(up)},
		{"fgd_uptime_seconds", st.UptimeSeconds},
		{"fgd_jobs_submitted_total", float64(st.Submitted)},
		{"fgd_jobs_accepted_total", float64(st.Accepted)},
		{"fgd_jobs_done_total", float64(st.Done)},
		{"fgd_jobs_failed_total", float64(st.Failed)},
		{"fgd_jobs_cancelled_total", float64(st.Cancelled)},
		{"fgd_jobs_running", float64(st.Running)},
		{"fgd_jobs_running_max", float64(st.MaxRunningObserved)},
		{"fgd_queue_depth", float64(st.QueueDepth)},
		{"fgd_queue_cap", float64(st.QueueCap)},
		{"fgd_pool_workers", float64(st.PoolWorkers)},
	}
	help := map[string]string{}
	for _, h := range daemonHelp {
		help[h.name] = h.help
	}
	for _, g := range gauges {
		writeFamily(w, g.name, help[g.name], []sample{{value: g.value}})
	}
	writeFamily(w, "fgd_jobs_rejected_total", help["fgd_jobs_rejected_total"], []sample{
		{labels: `{reason="queue_full"}`, value: float64(st.RejectedFull)},
		{labels: `{reason="quota"}`, value: float64(st.RejectedQuota)},
		{labels: `{reason="invalid"}`, value: float64(st.RejectedInvalid)},
		{labels: `{reason="draining"}`, value: float64(st.RejectedDraining)},
	})

	// Per-job network series: every running job's registry, re-labeled.
	type labeled struct {
		fg.Sample
		job string
	}
	byName := map[string][]labeled{}
	var names []string
	for _, j := range s.Jobs() {
		if j.State() != StateRunning {
			continue
		}
		obs := j.observeBundle()
		if obs == nil || obs.Metrics == nil {
			continue
		}
		for _, sm := range obs.Metrics.Samples() {
			if _, ok := byName[sm.Name]; !ok {
				names = append(names, sm.Name)
			}
			byName[sm.Name] = append(byName[sm.Name], labeled{Sample: sm, job: j.ID})
		}
	}
	sort.Strings(names)
	for _, name := range names {
		typ := "gauge"
		if strings.HasSuffix(name, "_total") {
			typ = "counter"
		}
		fmt.Fprintf(w, "# HELP %s per-job network metric\n# TYPE %s %s\n", name, name, typ)
		group := byName[name]
		sort.SliceStable(group, func(i, j int) bool {
			if group[i].job != group[j].job {
				return group[i].job < group[j].job
			}
			return jobLabelString(group[i].job, group[i].Labels) <
				jobLabelString(group[j].job, group[j].Labels)
		})
		for _, sm := range group {
			fmt.Fprintf(w, "%s%s %g\n", name, jobLabelString(sm.job, sm.Labels), sm.Value)
		}
	}
}

type sample struct {
	labels string
	value  float64
}

func writeFamily(w http.ResponseWriter, name, help string, samples []sample) {
	typ := "gauge"
	if strings.HasSuffix(name, "_total") {
		typ = "counter"
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		fmt.Fprintf(w, "%s%s %g\n", name, s.labels, s.value)
	}
}

// jobLabelString renders a sample's labels with job="id" spliced in, keys
// sorted, %q-escaped like the fg exposition.
func jobLabelString(job string, labels map[string]string) string {
	keys := make([]string, 0, len(labels)+1)
	for k := range labels {
		if k != "job" {
			keys = append(keys, k)
		}
	}
	keys = append(keys, "job")
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[k]
		if k == "job" {
			v = job
		}
		fmt.Fprintf(&b, "%s=%q", k, v)
	}
	b.WriteByte('}')
	return b.String()
}
