package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzJobSpec holds the job-spec decoder to its contract: whatever the
// bytes — truncated JSON, wrong types, hostile numbers — DecodeJobSpec
// must return an error or a valid spec, never panic. Specs cross the trust
// boundary between a client and the daemon; a spec that crashes fgd is a
// denial of service for every tenant, which is exactly what the service
// layer exists to prevent. Seeds are the checked-in examples plus the
// malformations the strict decoder is documented to reject (mirroring
// soak's FuzzScenarioPlan).
func FuzzJobSpec(f *testing.F) {
	dir := filepath.Join("..", "examples", "jobspecs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(raw))
	}
	f.Add(`{"program": "dsort", "nodes": 2, "records": 4096}`)
	f.Add(`{"program": "dsort", "nodes": 1e9, "records": -1}`)
	f.Add(`{"program": "dsort", "unknown": {"deeply": ["nested"]}}`)
	f.Add(`{"fault": {"kind": "panic-op", "rank": 99999999999999999999}}`)
	f.Add(`{"disk": {"seek_latency_us": -9e99}}`)
	f.Add(`{} {}`)
	f.Add(`[`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, doc string) {
		s, err := DecodeJobSpec(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Validate already ran inside DecodeJobSpec; spot-check the
		// invariants the daemon leans on hardest.
		if s.Nodes < 2 || s.Nodes > 64 {
			t.Fatalf("decoded spec with %d nodes", s.Nodes)
		}
		if s.Records <= 0 {
			t.Fatalf("decoded spec with %d records", s.Records)
		}
		if s.Records%int64(s.Nodes*s.columnsPerNode()) != 0 {
			t.Fatalf("decoded spec with indivisible records")
		}
		if f := s.Fault; f != nil && (f.Rank < 0 || f.Rank >= s.Nodes) {
			t.Fatalf("decoded fault rank %d outside %d-node job", f.Rank, s.Nodes)
		}
		if s.Bytes() <= 0 {
			t.Fatalf("decoded spec with non-positive byte volume %d", s.Bytes())
		}
	})
}
