package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/internal/check"
	"github.com/fg-go/fg/internal/harness"
	"github.com/fg-go/fg/oocsort"
)

// fastSpec is a small, quick job: 2 nodes, 4096 records, near-free disk.
func fastSpec(name, program string) string {
	return fmt.Sprintf(`{"name":%q,"program":%q,"nodes":2,"records":4096,
		"disk":{"seek_latency_us":1,"bytes_per_second":1e9}}`, name, program)
}

// slowSpec is a job that takes seconds: enough data over a slow enough
// simulated disk that tests can act mid-run.
func slowSpec(name string) string {
	return fmt.Sprintf(`{"name":%q,"program":"dsort","nodes":2,"records":262144,
		"disk":{"seek_latency_us":100,"bytes_per_second":2e6}}`, name)
}

type testDaemon struct {
	srv *Server
	ts  *httptest.Server
}

func startDaemon(t *testing.T, cfg Config) *testDaemon {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})
	return &testDaemon{srv: srv, ts: ts}
}

func (d *testDaemon) post(t *testing.T, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(d.ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("POST %s: non-JSON response %q", path, raw)
		}
	}
	return resp.StatusCode, doc
}

func (d *testDaemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(d.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

func (d *testDaemon) submit(t *testing.T, spec string) string {
	t.Helper()
	code, doc := d.post(t, "/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", code, doc)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("submit: no id in %v", doc)
	}
	return id
}

func (d *testDaemon) jobStatus(t *testing.T, id string) JobStatus {
	t.Helper()
	code, raw := d.get(t, "/jobs/"+id)
	if code != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d, body %s", id, code, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("GET /jobs/%s: %v in %s", id, err, raw)
	}
	return st
}

func (d *testDaemon) waitTerminal(t *testing.T, id string, within time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := d.jobStatus(t, id)
		if JobState(st.State).Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAPISubmitPollResult drives the whole happy path a client sees:
// submit over a real listener, poll to done, fetch the verified result,
// the flight-recorder black box, the metrics scrape, and the daemon
// status document.
func TestAPISubmitPollResult(t *testing.T) {
	check.NoLeakedGoroutines(t)
	d := startDaemon(t, Config{MaxConcurrent: 2, Log: io.Discard})
	id := d.submit(t, fastSpec("happy", "dsort"))

	st := d.waitTerminal(t, id, 30*time.Second)
	if st.State != string(StateDone) {
		t.Fatalf("job %s finished %s (err %q), want done", id, st.State, st.Error)
	}
	if st.Result == nil || len(st.Result.Passes) == 0 {
		t.Fatalf("done job carries no pass timings: %+v", st.Result)
	}
	if st.Result.WriteOps == 0 {
		t.Fatal("done job reports zero disk writes")
	}

	code, raw := d.get(t, "/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d, body %s", code, raw)
	}
	var rv ResultView
	if err := json.Unmarshal(raw, &rv); err != nil {
		t.Fatal(err)
	}
	if rv.Program != "dsort" {
		t.Fatalf("result program %q, want dsort", rv.Program)
	}

	code, raw = d.get(t, "/jobs/"+id+"/blackbox")
	if code != http.StatusOK {
		t.Fatalf("blackbox: status %d", code)
	}
	if !bytes.Contains(raw, []byte("traceEvents")) {
		t.Fatalf("blackbox is not a Chrome trace: %.80s", raw)
	}

	code, raw = d.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{"fgd_up 1", "fgd_jobs_done_total 1", "fgd_jobs_submitted_total 1", "fgd_pool_workers"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("metrics scrape missing %q:\n%s", want, raw)
		}
	}

	code, raw = d.get(t, "/status.json")
	if code != http.StatusOK {
		t.Fatalf("status.json: status %d", code)
	}
	var ss ServerStatus
	if err := json.Unmarshal(raw, &ss); err != nil {
		t.Fatal(err)
	}
	if ss.Done != 1 || ss.Accepted != 1 || len(ss.Jobs) != 1 {
		t.Fatalf("daemon status inconsistent after one job: %+v", ss)
	}

	// Unknown job and premature result respond with the right codes.
	if code, _ := d.get(t, "/jobs/j-999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
}

// TestConcurrentMixedJobsWithFaultIsolation is the acceptance criterion in
// one test: the daemon sustains 8 provably-concurrent mixed jobs under the
// race detector, with a ninth job carrying an injected mid-sort panic that
// fails alone — every other job still finishes byte-correct (Verify is on),
// and the daemon keeps serving afterwards.
func TestConcurrentMixedJobsWithFaultIsolation(t *testing.T) {
	check.NoLeakedGoroutines(t)
	const lanes = 8
	// Barrier: no good job's cluster proceeds until all 8 exist at once —
	// concurrency is proven, not hoped for.
	var (
		mu      sync.Mutex
		arrived int
		release = make(chan struct{})
	)
	d := startDaemon(t, Config{
		MaxConcurrent: lanes,
		QueueDepth:    lanes * 2,
		EnableFaults:  true,
		Log:           io.Discard,
		OnJobParams: func(id string, pr *harness.Params) {
			orig := pr.OnCluster
			pr.OnCluster = func(c *cluster.Cluster) {
				if orig != nil {
					orig(c)
				}
				mu.Lock()
				arrived++
				if arrived == lanes {
					close(release)
				}
				mu.Unlock()
				select {
				case <-release:
				case <-time.After(30 * time.Second):
				}
			}
		},
	})

	programs := []string{"dsort", "csort", "csort4", "dsort-linear"}
	ids := make([]string, lanes)
	for i := range ids {
		ids[i] = d.submit(t, fastSpec(fmt.Sprintf("lane-%d", i), programs[i%len(programs)]))
	}
	// The saboteur: panics on its own rank-1 disk during the sort phase
	// (scoped to the runs file so it fires on a stage goroutine mid-pass).
	faultID := d.submit(t, `{"name":"saboteur","program":"dsort","nodes":2,"records":4096,
		"disk":{"seek_latency_us":1,"bytes_per_second":1e9},
		"fault":{"kind":"panic-op","rank":1,"op_count":1,"file":"dsort.runs"}}`)

	for _, id := range ids {
		st := d.waitTerminal(t, id, 60*time.Second)
		if st.State != string(StateDone) {
			t.Errorf("job %s (%s) finished %s: %s", id, st.Name, st.State, st.Error)
		}
	}
	st := d.waitTerminal(t, faultID, 60*time.Second)
	if st.State != string(StateFailed) {
		t.Fatalf("saboteur finished %s (err %q), want failed", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "injected fault") {
		t.Fatalf("saboteur error %q does not name the injected fault", st.Error)
	}

	if ds := d.srv.Status(false); ds.MaxRunningObserved < lanes {
		t.Fatalf("max concurrent running = %d, want >= %d", ds.MaxRunningObserved, lanes)
	}
	// One panicking tenant must not cost the daemon anything: it still
	// accepts and completes work.
	after := d.submit(t, fastSpec("after-the-panic", "dsort"))
	if st := d.waitTerminal(t, after, 30*time.Second); st.State != string(StateDone) {
		t.Fatalf("post-panic job finished %s: %s", st.State, st.Error)
	}
}

// TestCancelMidRun cancels a deliberately slow job once it is provably
// running; the abort machinery must settle it as cancelled promptly and —
// the part that matters for a multi-tenant daemon — leak nothing.
func TestCancelMidRun(t *testing.T) {
	check.NoLeakedGoroutines(t)
	d := startDaemon(t, Config{MaxConcurrent: 2, Log: io.Discard})
	id := d.submit(t, slowSpec("doomed"))

	deadline := time.Now().Add(20 * time.Second)
	for d.jobStatus(t, id).State != string(StateRunning) {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let it get some I/O in flight

	code, _ := d.post(t, "/jobs/"+id+"/cancel", "")
	if code != http.StatusAccepted {
		t.Fatalf("cancel: status %d", code)
	}
	st := d.waitTerminal(t, id, 20*time.Second)
	if st.State != string(StateCancelled) {
		t.Fatalf("job finished %s, want cancelled", st.State)
	}
	// A second cancel of a settled job is a conflict, not a crash.
	if code, _ := d.post(t, "/jobs/"+id+"/cancel", ""); code != http.StatusConflict {
		t.Fatalf("re-cancel: status %d, want 409", code)
	}
	if ds := d.srv.Status(false); ds.Cancelled != 1 {
		t.Fatalf("cancelled counter = %d, want 1", ds.Cancelled)
	}
	// Close before the leak check so daemon goroutines don't count.
	_ = d.srv.Close()
	if leaked := check.LeakedGoroutines(10 * time.Second); len(leaked) > 0 {
		t.Fatalf("cancel leaked %d goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// TestQueueBackpressure fills the bounded queue and expects 429 with a
// Retry-After, then verifies the rejection is counted.
func TestQueueBackpressure(t *testing.T) {
	check.NoLeakedGoroutines(t)
	d := startDaemon(t, Config{MaxConcurrent: 1, QueueDepth: 1, Log: io.Discard})
	running := d.submit(t, slowSpec("hog"))
	deadline := time.Now().Add(20 * time.Second)
	for d.jobStatus(t, running).State != string(StateRunning) {
		if time.Now().After(deadline) {
			t.Fatal("hog never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.submit(t, fastSpec("queued", "dsort")) // fills the queue

	resp, err := http.Post(d.ts.URL+"/jobs", "application/json",
		strings.NewReader(fastSpec("overflow", "dsort")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if ds := d.srv.Status(false); ds.RejectedFull != 1 {
		t.Fatalf("rejected_full = %d, want 1", ds.RejectedFull)
	}
	if !d.srv.Cancel(running) {
		t.Fatal("could not cancel the hog")
	}
}

// TestGracefulDrain is the SIGTERM contract: during a drain the running
// job completes (and verifies), queued jobs are rejected as cancelled, new
// submissions get 503, and after Close not a single goroutine remains.
func TestGracefulDrain(t *testing.T) {
	check.NoLeakedGoroutines(t)
	d := startDaemon(t, Config{MaxConcurrent: 1, QueueDepth: 4, Log: io.Discard})
	running := d.submit(t, slowSpec("finisher"))
	deadline := time.Now().Add(20 * time.Second)
	for d.jobStatus(t, running).State != string(StateRunning) {
		if time.Now().After(deadline) {
			t.Fatal("finisher never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	q1 := d.submit(t, fastSpec("queued-1", "dsort"))
	q2 := d.submit(t, fastSpec("queued-2", "dsort"))

	drained := make(chan error, 1)
	go func() { drained <- d.srv.Drain(context.Background()) }()

	// Submissions during the drain are refused with 503.
	dlWait := time.Now().Add(5 * time.Second)
	for !d.srv.Draining() && time.Now().Before(dlWait) {
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(d.ts.URL+"/jobs", "application/json",
		strings.NewReader(fastSpec("too-late", "dsort")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", resp.StatusCode)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := d.jobStatus(t, running); st.State != string(StateDone) {
		t.Fatalf("running job finished %s during drain, want done: %s", st.State, st.Error)
	}
	for _, id := range []string{q1, q2} {
		if st := d.jobStatus(t, id); st.State != string(StateCancelled) {
			t.Fatalf("queued job %s finished %s during drain, want cancelled", id, st.State)
		}
	}
	if code, _ := d.get(t, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", code)
	}
	_ = d.srv.Close()
	if leaked := check.LeakedGoroutines(10 * time.Second); len(leaked) > 0 {
		t.Fatalf("drain leaked %d goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// registerAcceptedJob mimics Submit's bookkeeping for a hand-built job so
// settle-path tests can drive Server.settle without a runner in the way.
func registerAcceptedJob(s *Server, j *Job) {
	s.mu.Lock()
	s.ctr.submitted++
	s.ctr.accepted++
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
	s.active.Add(1)
}

// TestConcurrentSettleCountsOnce drives the double-settle race: a client
// Cancel of a queued job and the runner that just dequeued it both reach
// Server.settle, and exactly one may update the ledger and release the
// job's active-WaitGroup slot (a double release is an immediate
// negative-WaitGroup panic, and a double count corrupts Drain accounting).
//
// The first job forces the precise losing schedule deterministically: the
// cancel path enters settle first, and the runner's entire settle —
// transition, count, release — is interleaved before the cancel's own
// settle method runs. A settle that decides "did I transition?" by
// comparing the job state before and after (rather than from under j.mu,
// inside the transition) sees non-terminal → terminal on both paths and
// releases twice. The storm rounds then shake the same invariant under
// the race detector with unconstrained schedules.
func TestConcurrentSettleCountsOnce(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Log: io.Discard})
	defer s.Close()

	j := newJob("j-race-det", JobSpec{Program: "dsort", Nodes: 2, Records: 4096}, time.Now())
	registerAcceptedJob(s, j)
	cancelEntered := make(chan struct{})
	runnerSettled := make(chan struct{})
	cancelReturned := make(chan struct{})
	go func() {
		defer close(cancelReturned)
		// The cancel path: by the time its settle method runs, the runner
		// has already settled, counted, and released the job.
		s.settle(j, func() bool {
			close(cancelEntered)
			<-runnerSettled
			return j.settleCancelled("cancelled by client", time.Now())
		})
	}()
	<-cancelEntered
	s.settle(j, func() bool { return j.finish(oocsort.Result{}, nil, time.Now()) })
	close(runnerSettled)
	<-cancelReturned
	if st := s.Status(false); st.Done != 1 || st.Cancelled != 0 {
		t.Fatalf("racing settles counted done=%d cancelled=%d, want exactly one done", st.Done, st.Cancelled)
	}

	const rounds = 200
	for round := 0; round < rounds; round++ {
		j := newJob(fmt.Sprintf("j-race-%03d", round),
			JobSpec{Program: "dsort", Nodes: 2, Records: 4096}, time.Now())
		registerAcceptedJob(s, j)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				if i%2 == 0 {
					s.settle(j, func() bool { return j.settleCancelled("cancelled by client", time.Now()) })
				} else {
					s.settle(j, func() bool { return j.finish(oocsort.Result{}, nil, time.Now()) })
				}
			}(i)
		}
		close(start)
		wg.Wait()
		if st := j.State(); !st.Terminal() {
			t.Fatalf("round %d: job settled to non-terminal %s", round, st)
		}
	}

	st := s.Status(false)
	if total := st.Done + st.Cancelled; total != rounds+1 {
		t.Fatalf("ledger counted %d done + %d cancelled = %d terminal jobs, want exactly %d",
			st.Done, st.Cancelled, total, rounds+1)
	}
	// Close (via the deferred call) would hang or panic if active were
	// over- or under-released; draining here makes that failure eager.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after settle storm: %v", err)
	}
}

// TestTimeoutNotRetried holds the wall-clock quota across supervised
// attempts: the job timer is a one-shot spanning every attempt, so a
// timed-out job with attempt budget left must fail with the timeout
// rather than retry — a retry would run with the timer already spent and
// no wall-clock bound at all.
func TestTimeoutNotRetried(t *testing.T) {
	check.NoLeakedGoroutines(t)
	d := startDaemon(t, Config{MaxConcurrent: 1, Log: io.Discard})
	// Several seconds of simulated I/O against a 1-second timeout, with an
	// attempt budget the supervisor must refuse to spend.
	id := d.submit(t, `{"name":"laggard","program":"dsort","nodes":2,"records":262144,
		"disk":{"seek_latency_us":100,"bytes_per_second":2e6},
		"timeout_sec":1,"max_attempts":3}`)

	st := d.waitTerminal(t, id, 30*time.Second)
	if st.State != string(StateFailed) {
		t.Fatalf("timed-out job finished %s (err %q), want failed", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "timed out") {
		t.Fatalf("error %q does not name the timeout", st.Error)
	}
	if len(st.Attempts) != 1 {
		t.Fatalf("timed-out job ran %d attempts, want 1: the spent timer must not be outlived by a retry", len(st.Attempts))
	}
}

// TestFaultsRejectedWhenDisabled: a production daemon refuses fault blocks
// outright.
func TestFaultsRejectedWhenDisabled(t *testing.T) {
	d := startDaemon(t, Config{MaxConcurrent: 1, Log: io.Discard})
	_, err := d.srv.Submit(JobSpec{
		Program: "dsort", Nodes: 2, Records: 4096,
		Fault: &FaultSpec{Kind: FaultPanicOp, Rank: 0, OpCount: 1},
	})
	if !errors.Is(err, ErrFaultsDisabled) {
		t.Fatalf("got %v, want ErrFaultsDisabled", err)
	}
}

// TestQuotaRejectionOverHTTP maps quota errors to 403.
func TestQuotaRejectionOverHTTP(t *testing.T) {
	d := startDaemon(t, Config{
		MaxConcurrent: 1,
		Limits:        Limits{MaxNodes: 4},
		Log:           io.Discard,
	})
	code, doc := d.post(t, "/jobs", `{"program":"dsort","nodes":8,"records":4096}`)
	if code != http.StatusForbidden {
		t.Fatalf("over-quota submit: status %d (%v), want 403", code, doc)
	}
	code, _ = d.post(t, "/jobs", `{"program":"dsort","nodes":2,"records":4096,"wat":1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid submit: status %d, want 400", code)
	}
}
