package service

import (
	"io"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"github.com/fg-go/fg/internal/harness"
)

// TestAdmissionControlProperty is the quota law under random interleavings:
// for any sequence of submits and cancels thrown at a daemon with
// concurrency quota N and queue depth Q, (1) never do more than N jobs run
// at once — measured independently of the daemon's own bookkeeping — and
// (2) the admission ledger reconciles exactly: every submission is
// accounted one way, and every accepted job ends in exactly one terminal
// state.
func TestAdmissionControlProperty(t *testing.T) {
	const quota = 2
	spec := JobSpec{
		Program: "dsort", Nodes: 2, Records: 512,
		Disk: &DiskSpec{SeekLatencyUS: 1, BytesPerSecond: 1e9},
	}

	prop := func(ops []byte) bool {
		if len(ops) > 16 {
			ops = ops[:16] // bound each iteration's wall clock
		}
		// Independent concurrency meter: every time a job enters its run,
		// census how many jobs are in StateRunning at that instant. The
		// census reads job state (maintained by the job lifecycle, not the
		// server's ledger), so a server bug that ran jobs outside its
		// runner crew — inline in Submit, an extra goroutine — would show
		// up here no matter what the counters claim.
		var (
			meterMu  sync.Mutex
			handles  []*Job
			maxSeen  int
			accepted []*Job
		)
		srv := New(Config{
			MaxConcurrent: quota,
			QueueDepth:    3,
			Log:           io.Discard,
			OnJobParams: func(id string, pr *harness.Params) {
				meterMu.Lock()
				running := 0
				for _, j := range handles {
					if j.State() == StateRunning {
						running++
					}
				}
				if running > maxSeen {
					maxSeen = running
				}
				meterMu.Unlock()
			},
		})

		var wg sync.WaitGroup
		for _, op := range ops {
			j, err := srv.Submit(spec)
			if err != nil {
				continue // rejected: the ledger must still account for it
			}
			meterMu.Lock()
			handles = append(handles, j)
			meterMu.Unlock()
			accepted = append(accepted, j)
			wg.Add(1)
			go func(j *Job) {
				defer wg.Done()
				j.Wait()
			}(j)
			if op&1 == 1 {
				srv.Cancel(j.ID)
			}
		}
		wg.Wait()
		_ = srv.Close()

		if maxSeen > quota {
			t.Logf("observed %d concurrent running jobs, quota %d", maxSeen, quota)
			return false
		}
		st := srv.Status(false)
		rejected := st.RejectedFull + st.RejectedQuota + st.RejectedInvalid + st.RejectedDraining
		if st.Submitted != st.Accepted+rejected {
			t.Logf("ledger: submitted %d != accepted %d + rejected %d", st.Submitted, st.Accepted, rejected)
			return false
		}
		if st.Accepted != int64(len(accepted)) {
			t.Logf("ledger: accepted %d, handed out %d job handles", st.Accepted, len(accepted))
			return false
		}
		settled := st.Done + st.Failed + st.Cancelled
		if settled != st.Accepted {
			t.Logf("ledger: %d settled (done %d failed %d cancelled %d) != accepted %d",
				settled, st.Done, st.Failed, st.Cancelled, st.Accepted)
			return false
		}
		if st.Failed != 0 {
			// Nothing in this workload should fail; a failure is a bug
			// worth seeing, not quietly reconciling.
			for _, j := range accepted {
				if j.State() == StateFailed {
					t.Logf("job %s failed: %v", j.ID, j.Err())
				}
			}
			return false
		}
		for _, j := range accepted {
			if !j.State().Terminal() {
				t.Logf("job %s left %s after close", j.ID, j.State())
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCancelWinsRaces pins the classification rule: a job cancelled at any
// point — before running, mid-run, racing its own completion — never reads
// as failed, and a cancel-caused abort error never escapes as a plain
// error. Rapid-fire edition: many tiny jobs, cancelled at random delays.
func TestCancelWinsRaces(t *testing.T) {
	srv := New(Config{MaxConcurrent: 4, QueueDepth: 8, Log: io.Discard})
	defer srv.Close()
	spec := JobSpec{
		Program: "dsort", Nodes: 2, Records: 512,
		Disk: &DiskSpec{SeekLatencyUS: 1, BytesPerSecond: 1e9},
	}
	for i := 0; i < 24; i++ {
		j, err := srv.Submit(spec)
		if err != nil {
			continue
		}
		if i%3 != 0 {
			go srv.Cancel(j.ID)
		}
		j.Wait()
		switch j.State() {
		case StateDone, StateCancelled:
		case StateFailed:
			t.Fatalf("job %s classified failed: %v", j.ID, j.Err())
		default:
			t.Fatalf("job %s settled in %s", j.ID, j.State())
		}
		if j.State() == StateCancelled {
			if err := j.Err(); err == nil || !strings.Contains(err.Error(), "cancelled") {
				t.Fatalf("cancelled job %s carries error %v", j.ID, err)
			}
		}
	}
}
