package service

import (
	"errors"
	"sync"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/supervise"
)

// A JobState is one station of the job lifecycle. The machine is strictly
// forward: queued → running → one of the three terminal states, with the
// queued → cancelled shortcut for jobs cancelled (or drained) before a
// worker picked them up.
type JobState string

const (
	// StateQueued: accepted, sitting in the FIFO queue.
	StateQueued JobState = "queued"
	// StateRunning: a worker is driving the job's networks.
	StateRunning JobState = "running"
	// StateDone: finished; the result is available (verified unless the
	// spec skipped verification).
	StateDone JobState = "done"
	// StateFailed: finished with an error (panic, fault, verification
	// mismatch, exhausted attempts, timeout).
	StateFailed JobState = "failed"
	// StateCancelled: cancelled by the client or rejected by a drain
	// before completion.
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// errCancelled is the abort cause a cancelled job's cluster dies with; it
// also tags the job error when cancellation won the race against a clean
// finish.
var errCancelled = errors.New("service: job cancelled")

// errTimeout is the abort cause of a job that outran its timeout.
var errTimeout = errors.New("service: job timed out")

// A Job is one submitted dataflow job and everything the daemon knows
// about it. All mutable state is behind mu; Status takes a consistent
// snapshot for the API.
type Job struct {
	// ID is the daemon-assigned identifier ("j-000042").
	ID string
	// Spec is the submitted spec, as validated and admitted.
	Spec JobSpec

	mu          sync.Mutex
	state       JobState
	submitted   time.Time
	started     time.Time
	finished    time.Time
	cancelAsked bool
	cancelWhy   string
	timedOut    bool // the wall-clock timer fired; never retried past it
	cluster     *cluster.Cluster // current attempt's cluster, while running
	observe     *fg.Observe      // per-job metrics registry + flight recorder
	result      oocsort.Result
	err         error
	attempts    []supervise.Attempt
	bottlenecks []string // one line per finished network, node 0 only

	// done is closed exactly once, on entering a terminal state; Wait and
	// the drain path block on it.
	done chan struct{}
}

func newJob(id string, spec JobSpec, now time.Time) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		state:     StateQueued,
		submitted: now,
		done:      make(chan struct{}),
	}
}

// Wait blocks until the job reaches a terminal state.
func (j *Job) Wait() { <-j.done }

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the terminal error (nil while running or when done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the sort result and whether the job finished successfully.
func (j *Job) Result() (oocsort.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// cancel requests cancellation with a reason. A queued job settles
// immediately; a running one has its current cluster aborted (releasing
// every blocked stage and comm operation) and settles when its runner
// observes the abort. Idempotent; returns false once the job is terminal.
func (j *Job) cancel(why string) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	first := !j.cancelAsked
	j.cancelAsked = true
	if first {
		j.cancelWhy = why
	}
	c := j.cluster
	j.mu.Unlock()
	if c != nil {
		c.AbortWith(errCancelled)
	}
	return true
}

// cancelRequested reports whether cancellation has been asked for.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelAsked
}

// markRunning moves queued → running. Returns false if the job was
// cancelled first (the caller settles it instead of running it).
func (j *Job) markRunning(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelAsked || j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	return true
}

// attachCluster publishes the current attempt's cluster for cancellation
// and timeout aborts. If either already arrived — between attempts, or
// before the first cluster existed — it returns the abort cause; the
// runner then aborts the fresh cluster itself rather than sorting on it.
func (j *Job) attachCluster(c *cluster.Cluster) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cluster = c
	switch {
	case j.cancelAsked:
		return errCancelled
	case j.timedOut:
		return errTimeout
	}
	return nil
}

// timeoutAbort marks the job timed out and aborts the current cluster with
// the timeout cause; the run fails with a CommError wrapping errTimeout,
// which finish classifies. The flag outlives the one-shot timer: the
// supervisor refuses to retry a timed-out job (the timer is not re-armed,
// so a retry would run with no wall-clock bound), and a firing that lands
// between attempts (no live cluster) still kills the next attempt via
// attachCluster.
func (j *Job) timeoutAbort() {
	j.mu.Lock()
	j.timedOut = true
	c := j.cluster
	j.mu.Unlock()
	if c != nil {
		c.AbortWith(errTimeout)
	}
}

// hitTimeout reports whether the job's wall-clock timer has fired.
func (j *Job) hitTimeout() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.timedOut
}

// finish settles the job from its run outcome, classifying cancellation
// ahead of everything else: a cancel that raced a failure (the abort it
// caused) still reads as cancelled. It reports, from under j.mu, whether
// this call performed the non-terminal → terminal transition — false means
// a racing settle path got there first and the caller must not account for
// the job again.
func (j *Job) finish(res oocsort.Result, err error, now time.Time) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cluster = nil
	j.finished = now
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
	case j.cancelAsked:
		j.state = StateCancelled
		j.err = errCancelled
	default:
		j.state = StateFailed
		j.err = err
	}
	j.mu.Unlock()
	close(j.done)
	return true
}

// settleCancelled settles a job that never ran: cancelled while queued, or
// rejected by a drain. Like finish, it reports whether this call performed
// the terminal transition.
func (j *Job) settleCancelled(why string, now time.Time) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelAsked = true
	if j.cancelWhy == "" {
		j.cancelWhy = why
	}
	j.state = StateCancelled
	j.err = errCancelled
	j.finished = now
	j.mu.Unlock()
	close(j.done)
	return true
}

// setObserve publishes the job's observability bundle (metrics registry +
// flight recorder) for the status and blackbox endpoints.
func (j *Job) setObserve(o *fg.Observe) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.observe = o
}

// observeBundle returns the job's bundle, nil before the run starts.
func (j *Job) observeBundle() *fg.Observe {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.observe
}

// addBottleneck records one finished network's bottleneck line (node 0
// only; barriers make it representative — the same filter ObserveCLI
// applies).
func (j *Job) addBottleneck(line string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.bottlenecks = append(j.bottlenecks, line)
}

// setAttempts stores the supervisor's per-attempt history.
func (j *Job) setAttempts(as []supervise.Attempt) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts = as
}
