// Package service turns the FG reproduction from a one-shot binary into a
// long-running, multi-tenant dataflow daemon: many FG networks from many
// submitted jobs run concurrently against shared resources — the
// internal/parallel kernel pool, simulated pdm disks, per-job temp dirs —
// behind admission control, per-job quotas, a bounded FIFO job queue with
// backpressure, per-job cancellation via the cluster abort machinery, and
// graceful drain. One failed (even panicking) job never takes the daemon
// down: fg's stage-level panic isolation surfaces the failure as a
// *fg.PanicError on that job alone, and the supervise triage decides
// whether an attempt is worth retrying.
//
// The package is the library behind cmd/fgd; everything the daemon can do
// is also available programmatically (Submit, Cancel, Drain, Close), which
// is how the integration and property tests drive it.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/fg-go/fg/cluster"
	"github.com/fg-go/fg/fg"
	"github.com/fg-go/fg/internal/harness"
	"github.com/fg-go/fg/internal/parallel"
	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/supervise"
	"github.com/fg-go/fg/workload"
)

// ErrQueueFull is returned by Submit when the bounded job queue is at
// capacity; the HTTP layer maps it to 429 with a Retry-After.
var ErrQueueFull = errors.New("service: job queue full")

// ErrDraining is returned by Submit once a drain or close has begun; the
// HTTP layer maps it to 503.
var ErrDraining = errors.New("service: daemon draining, not accepting jobs")

// ErrFaultsDisabled rejects a spec carrying a fault block on a daemon that
// does not run with fault injection enabled.
var ErrFaultsDisabled = errors.New("service: spec carries a fault block but fault injection is disabled")

// Config parameterizes a daemon.
type Config struct {
	// MaxConcurrent is the admission quota: at most this many jobs run
	// their networks at once. Values below 1 default to 2.
	MaxConcurrent int
	// QueueDepth bounds the FIFO of accepted-but-not-yet-running jobs;
	// a submit past it gets backpressure (ErrQueueFull / HTTP 429).
	// Values below 1 default to 4 * MaxConcurrent.
	QueueDepth int
	// Limits are the per-job admission quotas.
	Limits Limits
	// DataDir roots per-job temp dirs (checkpoints). Empty uses the OS
	// temp dir.
	DataDir string
	// RetainJobs bounds how many settled jobs stay queryable; the oldest
	// are pruned past it. Values below 1 default to 1024.
	RetainJobs int
	// EnableFaults allows specs carrying a fault block — the seam the
	// isolation tests drive. Off, such specs are rejected at admission.
	EnableFaults bool
	// Log, if non-nil, receives one line per job state transition.
	Log io.Writer
	// OnJobParams, if non-nil, is called with each job's compiled
	// harness.Params just before the run — a test/chaos seam for
	// installing extra hooks (fault injectors, cluster observers).
	OnJobParams func(jobID string, pr *harness.Params)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4 * c.MaxConcurrent
	}
	if c.RetainJobs < 1 {
		c.RetainJobs = 1024
	}
	if c.DataDir == "" {
		c.DataDir = os.TempDir()
	}
	return c
}

// counters is the daemon's admission/outcome ledger. All fields are
// guarded by Server.mu; the reconciliation invariant the property test
// holds is:
//
//	submitted == accepted + rejectedFull + rejectedQuota + rejectedInvalid + rejectedDraining
//	accepted  == done + failed + cancelled + (still queued or running)
type counters struct {
	submitted        int64
	accepted         int64
	rejectedFull     int64
	rejectedQuota    int64
	rejectedInvalid  int64
	rejectedDraining int64
	done             int64
	failed           int64
	cancelled        int64
}

// A Server is one multi-tenant dataflow daemon: a bounded queue, a fixed
// crew of runner goroutines (the admission quota), and the job registry.
// Create with New, serve its Handler, and Close it when done.
type Server struct {
	cfg   Config
	start time.Time

	mu       sync.Mutex
	draining bool
	closed   bool
	nextID   int64
	jobs     map[string]*Job
	order    []*Job // submission order, for list views and pruning
	ctr      counters
	running  int // jobs currently inside runJob's admitted section
	maxRun   int // high-water mark of running

	queue   chan *Job
	workers sync.WaitGroup // runner goroutines
	active  sync.WaitGroup // accepted jobs not yet settled
}

// New builds a daemon and starts its runner crew.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		start: time.Now(),
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "fgd: "+format+"\n", args...)
	}
}

// Submit validates and admits a spec, assigns an ID, and enqueues the job.
// The error is nil (job accepted), a validation error, a *QuotaError,
// ErrFaultsDisabled, ErrQueueFull, or ErrDraining.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	s.mu.Lock()
	s.ctr.submitted++
	if s.draining || s.closed {
		s.ctr.rejectedDraining++
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if err := spec.Validate(); err != nil {
		s.ctr.rejectedInvalid++
		s.mu.Unlock()
		return nil, err
	}
	if spec.Fault != nil && !s.cfg.EnableFaults {
		s.ctr.rejectedQuota++
		s.mu.Unlock()
		return nil, ErrFaultsDisabled
	}
	if err := s.cfg.Limits.Admit(spec); err != nil {
		s.ctr.rejectedQuota++
		s.mu.Unlock()
		return nil, err
	}
	id := fmt.Sprintf("j-%06d", s.nextID+1)
	j := newJob(id, spec, time.Now())
	select {
	case s.queue <- j:
		s.nextID++
		s.ctr.accepted++
		s.jobs[id] = j
		s.order = append(s.order, j)
		s.active.Add(1)
		s.pruneLocked()
		s.mu.Unlock()
		s.logf("job %s (%s, %s N=%d P=%d) accepted", id, spec.Program, spec.Name, spec.Records, spec.Nodes)
		return j, nil
	default:
		s.ctr.rejectedFull++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns the retained jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Cancel requests cancellation of a job: a queued job settles immediately,
// a running one has its cluster aborted and settles when the runner
// observes the abort. Returns false if the job is unknown or already
// terminal.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	if !j.cancel("cancelled by client") {
		return false
	}
	s.logf("job %s cancel requested", id)
	// A queued job has no cluster to abort and no runner watching it yet;
	// settle it here so cancellation is prompt, not queue-position-bound.
	// (The runner skips settled jobs when it eventually dequeues them.)
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		s.settle(j, func() bool { return j.settleCancelled("cancelled by client", time.Now()) })
	}
	return true
}

// settle runs one of the job's settle paths and, if that call performed
// the non-terminal → terminal transition, updates the ledger and releases
// the job's slot in the active WaitGroup. The settle methods report the
// transition from under j.mu, so of the racing settle paths — client
// cancel vs. drain vs. runner — exactly one observes true and the ledger
// count and active.Done() happen exactly once per accepted job. (Comparing
// j.State() before and after here instead would let two racers both see
// the transition: double counts and a negative-WaitGroup panic.)
func (s *Server) settle(j *Job, doSettle func() bool) {
	if !doSettle() {
		return
	}
	now := j.State() // terminal states are immutable; safe to read after
	s.mu.Lock()
	switch now {
	case StateDone:
		s.ctr.done++
	case StateFailed:
		s.ctr.failed++
	case StateCancelled:
		s.ctr.cancelled++
	}
	s.mu.Unlock()
	s.logf("job %s %s", j.ID, now)
	s.active.Done()
}

// pruneLocked evicts the oldest settled jobs past the retention cap.
func (s *Server) pruneLocked() {
	for len(s.order) > s.cfg.RetainJobs {
		evicted := false
		for i, j := range s.order {
			if j.State().Terminal() {
				delete(s.jobs, j.ID)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; never evict an unsettled job
		}
	}
}

// runJob is one runner's handling of one dequeued job: drain and
// cancellation checks, the admitted-section bookkeeping the concurrency
// quota is audited by, and the (possibly supervised) run itself.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.settle(j, func() bool { return j.settleCancelled("daemon draining", time.Now()) })
		return
	}
	if !j.markRunning(time.Now()) {
		s.settle(j, func() bool { return j.settleCancelled("cancelled before start", time.Now()) })
		return
	}

	s.mu.Lock()
	s.running++
	if s.running > s.maxRun {
		s.maxRun = s.running
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}()

	// Belt and braces under fg's stage-level isolation: a panic escaping
	// the harness itself (a hook, a config bug) fails this job, not the
	// daemon.
	var res oocsort.Result
	var err error
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: job runner panicked: %v", r)
		}
		s.settle(j, func() bool { return j.finish(res, err, time.Now()) })
	}()

	pr, cleanup, perr := s.params(j)
	if perr != nil {
		err = perr
		return
	}
	defer cleanup()

	timer := time.AfterFunc(j.Spec.timeout(s.cfg.Limits), j.timeoutAbort)
	defer timer.Stop()

	prog := harness.Program(j.Spec.Program)
	dist := workload.Uniform
	if j.Spec.Distribution != "" {
		dist, _ = workload.ParseDistribution(j.Spec.Distribution) // validated at admission
	}
	run := func(int) ([]string, error) {
		r, rerr := pr.Run(prog, dist, j.Spec.Buffers)
		if rerr == nil {
			res = r
		}
		return r.Resumed, rerr
	}
	if attempts := j.Spec.maxAttempts(); attempts <= 1 {
		_, err = run(1)
	} else {
		// The supervisor composes the same triage the CLI uses, made
		// cancel-aware: a cancelled job's abort must not be "cured" by a
		// retry.
		rep := supervise.Run(supervise.Job{Name: j.ID, Run: run}, supervise.Policy{
			MaxAttempts: attempts,
			Retryable: func(e error) bool {
				// A cancelled job's abort must not be "cured" by a retry, and
				// neither may a timeout's: the one-shot timer spans every
				// attempt and is never re-armed, so retrying past it would
				// run with no wall-clock bound at all.
				return !j.cancelRequested() && !j.hitTimeout() && supervise.DefaultRetryable(e)
			},
			Log: s.cfg.Log,
		})
		j.setAttempts(rep.Attempts)
		err = rep.Err
	}
}

// params compiles a job's spec onto the experiment harness: the same
// dsort/colsort config seams every binary uses, plus the service's
// observability bundle, cancellation hook, fault hook, and per-job temp
// dir. The returned cleanup removes the temp dir.
func (s *Server) params(j *Job) (harness.Params, func(), error) {
	sp := j.Spec
	pr := harness.DefaultParams()
	pr.Nodes = sp.Nodes
	pr.TotalRecords = sp.Records
	pr.RecordSize = sp.recordSize()
	pr.ColumnsPerNode = sp.columnsPerNode()
	pr.Seed = sp.seed()
	pr.Verify = !sp.SkipVerify
	pr.Parallelism = s.effectiveWorkers(sp.Parallelism)
	if sp.AutoTune {
		at := fg.DefaultAutoTune()
		if mw := s.cfg.Limits.MaxWorkers; mw > 0 && at.Max > mw {
			at.Max = mw
		}
		pr.AutoTune = at
	}
	if sp.Disk != nil {
		pr.Disk = sp.Disk.Model()
	}

	obs := &fg.Observe{
		Metrics: fg.NewMetricsRegistry(),
		Flight:  fg.NewFlightRecorder(0),
		OnStats: func(st fg.NetworkStats) {
			// One line per network of node 0; barriers make it
			// cluster-representative (the ObserveCLI convention).
			if strings.HasSuffix(st.Name, "@0") {
				j.addBottleneck(fmt.Sprintf("%s: %s", st.Name, st.Bottleneck()))
			}
		},
	}
	pr.Observe = obs
	j.setObserve(obs)

	fault := faultHook(sp.Fault)
	pr.OnCluster = func(c *cluster.Cluster) {
		if fault != nil {
			fault(c)
		}
		if cause := j.attachCluster(c); cause != nil {
			// Cancellation or the timeout arrived between attempts (or
			// before the first cluster existed); kill this attempt before
			// it sorts.
			c.AbortWith(cause)
		}
	}

	cleanup := func() {}
	if sp.Checkpoint {
		dir, err := os.MkdirTemp(s.cfg.DataDir, "fgd-"+j.ID+"-")
		if err != nil {
			return pr, cleanup, fmt.Errorf("service: job temp dir: %w", err)
		}
		pr.CheckpointDir = dir
		cleanup = func() { os.RemoveAll(dir) }
	}
	if s.cfg.OnJobParams != nil {
		s.cfg.OnJobParams(j.ID, &pr)
	}
	return pr, cleanup, nil
}

// effectiveWorkers applies the worker quota to the spec's parallelism
// knob: explicit asks were bounded at admission; the "all cores" default
// is clamped here so one tenant cannot monopolize the kernel pool.
func (s *Server) effectiveWorkers(asked int) int {
	mw := s.cfg.Limits.MaxWorkers
	if mw <= 0 {
		return asked
	}
	if asked == 0 || asked > mw {
		return mw
	}
	return asked
}

// faultHook compiles a fault spec onto a fresh cluster's disk seam: the
// op_count-th matching disk operation on the target rank panics (panic-op)
// or fails (disk-err) on the stage goroutine that issued it. Note the
// count starts at cluster creation, so an unscoped fault can fire during
// input generation; scope with "file" to hit a specific pass.
func faultHook(f *FaultSpec) func(*cluster.Cluster) {
	if f == nil {
		return nil
	}
	return func(c *cluster.Cluster) {
		var mu sync.Mutex
		var ops int64
		d := c.Node(f.Rank).Disk
		if d == nil {
			return
		}
		kind, want, file := f.Kind, f.OpCount, f.File
		rank := f.Rank
		d.SetFault(func(op, name string, off int64) error {
			if file != "" && name != file {
				return nil
			}
			mu.Lock()
			ops++
			fire := ops == want
			mu.Unlock()
			if !fire {
				return nil
			}
			if kind == FaultPanicOp {
				panic(fmt.Errorf("service: injected fault: panic on rank %d %s %q op %d", rank, op, name, want))
			}
			return fmt.Errorf("service: injected fault: disk error on rank %d %s %q op %d", rank, op, name, want)
		})
	}
}

// Draining reports whether a drain or close has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admissions, rejects every still-queued job, lets running
// jobs finish, and returns when every accepted job has settled (or ctx
// expires). The graceful-shutdown contract: SIGTERM with jobs in flight
// means queued jobs are rejected, running jobs complete, and the daemon
// exits clean.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.logf("draining: admissions stopped, rejecting queued jobs, waiting for running jobs")
	}
	// Reject whatever is still queued. Runners racing this loop apply the
	// same policy (they check draining before running), so whoever wins a
	// job settles it identically.
	for {
		var j *Job
		select {
		case j = <-s.queue:
		default:
		}
		if j == nil {
			// Empty — or already closed by a prior Close, which only
			// happens after a completed drain.
			break
		}
		s.settle(j, func() bool { return j.settleCancelled("daemon draining", time.Now()) })
	}
	settled := make(chan struct{})
	go func() {
		s.active.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		if !already {
			s.logf("drained: all jobs settled")
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// Close drains (with no deadline for running jobs' settle bookkeeping),
// stops the runner crew, and returns once every daemon goroutine has
// unwound. Safe to call after Drain.
func (s *Server) Close() error {
	_ = s.Drain(context.Background())
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.workers.Wait()
	return nil
}

// ServerStatus is the daemon's own status document, served at
// /status.json.
type ServerStatus struct {
	State              string  `json:"state"` // "serving" or "draining"
	UptimeSeconds      float64 `json:"uptime_seconds"`
	MaxConcurrent      int     `json:"max_concurrent"`
	QueueCap           int     `json:"queue_cap"`
	QueueDepth         int     `json:"queue_depth"`
	Running            int     `json:"running"`
	MaxRunningObserved int     `json:"max_running_observed"`
	PoolWorkers        int     `json:"pool_workers"`

	Submitted        int64 `json:"submitted"`
	Accepted         int64 `json:"accepted"`
	RejectedFull     int64 `json:"rejected_full"`
	RejectedQuota    int64 `json:"rejected_quota"`
	RejectedInvalid  int64 `json:"rejected_invalid"`
	RejectedDraining int64 `json:"rejected_draining"`
	Done             int64 `json:"done"`
	Failed           int64 `json:"failed"`
	Cancelled        int64 `json:"cancelled"`

	Jobs []JobStatus `json:"jobs,omitempty"`
}

// Status snapshots the daemon ledger; withJobs includes per-job statuses.
func (s *Server) Status(withJobs bool) ServerStatus {
	s.mu.Lock()
	st := ServerStatus{
		State:              "serving",
		UptimeSeconds:      time.Since(s.start).Seconds(),
		MaxConcurrent:      s.cfg.MaxConcurrent,
		QueueCap:           s.cfg.QueueDepth,
		QueueDepth:         len(s.queue),
		Running:            s.running,
		MaxRunningObserved: s.maxRun,
		PoolWorkers:        poolWorkers(),
		Submitted:          s.ctr.submitted,
		Accepted:           s.ctr.accepted,
		RejectedFull:       s.ctr.rejectedFull,
		RejectedQuota:      s.ctr.rejectedQuota,
		RejectedInvalid:    s.ctr.rejectedInvalid,
		RejectedDraining:   s.ctr.rejectedDraining,
		Done:               s.ctr.done,
		Failed:             s.ctr.failed,
		Cancelled:          s.ctr.cancelled,
	}
	if s.draining {
		st.State = "draining"
	}
	order := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	if withJobs {
		st.Jobs = make([]JobStatus, 0, len(order))
		for _, j := range order {
			st.Jobs = append(st.Jobs, j.Status())
		}
	}
	return st
}

// poolWorkers reports the shared kernel pool's current size, for status
// and metrics views: one pool serves every job's kernels, so its size is
// daemon-level, not per-job.
func poolWorkers() int { return parallel.Workers() }
