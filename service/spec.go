package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/fg-go/fg/pdm"
	"github.com/fg-go/fg/workload"
)

// A JobSpec is one dataflow job as submitted over the daemon's API: the
// program, the workload shape, and the per-job resilience and tuning
// options. Specs are decoded strictly — an unknown field or an
// inconsistent spec is a 400 at submit time, never a silent
// misconfiguration discovered mid-sort — exactly the discipline the soak
// harness applies to its scenario plans, because job specs cross the trust
// boundary between a client and the daemon.
type JobSpec struct {
	// Name is an optional client label, echoed in status and list views.
	Name string `json:"name,omitempty"`

	// Program is the sorting program to run: "dsort", "csort", "csort4",
	// or "dsort-linear".
	Program string `json:"program"`
	// Nodes is the simulated cluster size the job runs on.
	Nodes int `json:"nodes"`
	// Records is the cluster-wide record count N.
	Records int64 `json:"records"`
	// RecordSize is bytes per record (>= 16). Zero defaults to 16.
	RecordSize int `json:"record_size,omitempty"`
	// ColumnsPerNode fixes the csort geometry and the PDM block. Zero
	// defaults to 1.
	ColumnsPerNode int `json:"columns_per_node,omitempty"`
	// Distribution names the key distribution (workload.ParseDistribution
	// spelling). Empty defaults to "uniform".
	Distribution string `json:"distribution,omitempty"`
	// Seed makes the workload deterministic. Zero defaults to 1.
	Seed int64 `json:"seed,omitempty"`

	// Parallelism is the intra-buffer kernel worker knob (0 = all cores,
	// clamped to the daemon's per-job worker quota).
	Parallelism int `json:"parallelism,omitempty"`
	// Buffers overrides each pipeline's circulating buffer pool (0 keeps
	// the program default; explicit values above the daemon's buffer quota
	// are rejected at admission).
	Buffers int `json:"buffers,omitempty"`
	// AutoTune lets a run-time tuner adjust kernel workers and circulating
	// buffers, within the daemon's quotas.
	AutoTune bool `json:"autotune,omitempty"`

	// SkipVerify skips the output verification pass. The default verifies:
	// a service result that says "done" means "sorted, striped, and a
	// permutation of the input", not just "the passes ran".
	SkipVerify bool `json:"skip_verify,omitempty"`
	// TimeoutSec bounds the job's running wall clock; past it the daemon
	// aborts the job. Zero defaults to 120, clamped to the daemon's
	// per-job runtime quota.
	TimeoutSec int `json:"timeout_sec,omitempty"`

	// Checkpoint enables pass-level checkpointing in a per-job temp dir,
	// so a supervised retry resumes at the last pass boundary instead of
	// starting over.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// MaxAttempts is the job's supervised attempt budget (0 or 1 = run
	// once). Retryable failures — aborts, comm errors — are retried up to
	// this many total attempts; panics and verification failures are not.
	MaxAttempts int `json:"max_attempts,omitempty"`

	// Disk overrides the simulated per-node disk model.
	Disk *DiskSpec `json:"disk,omitempty"`

	// Fault schedules one deliberate misfortune inside the job — the seam
	// the isolation tests drive. Submitting a faulted spec requires the
	// daemon to run with fault injection enabled; production daemons
	// reject it at admission.
	Fault *FaultSpec `json:"fault,omitempty"`
}

// DiskSpec mirrors pdm.DiskModel, in the soak harness's spelling.
type DiskSpec struct {
	SeekLatencyUS  int     `json:"seek_latency_us"`
	BytesPerSecond float64 `json:"bytes_per_second"`
}

// Model converts the spec to the simulator's disk model.
func (d DiskSpec) Model() pdm.DiskModel {
	return pdm.DiskModel{
		SeekLatency:    time.Duration(d.SeekLatencyUS) * time.Microsecond,
		BytesPerSecond: d.BytesPerSecond,
	}
}

// Fault kinds a job spec may schedule.
const (
	// FaultPanicOp panics on rank Rank's OpCount-th disk operation
	// (optionally scoped to File: "input", "output", ...). The panic is
	// raised on a stage goroutine, so it must surface as a *fg.PanicError
	// naming the stage and fail only that job — the isolation property the
	// integration suite asserts.
	FaultPanicOp = "panic-op"
	// FaultDiskErr fails rank Rank's OpCount-th disk operation with an
	// injected error instead of panicking.
	FaultDiskErr = "disk-err"
)

// A FaultSpec is one scheduled in-job misfortune.
type FaultSpec struct {
	// Kind selects the fault (the Fault* constants).
	Kind string `json:"kind"`
	// Rank is the afflicted simulated node.
	Rank int `json:"rank"`
	// OpCount is the 1-based disk-operation index the fault fires on.
	OpCount int64 `json:"op_count"`
	// File scopes the fault to one job file name; empty means any file.
	File string `json:"file,omitempty"`
}

var validPrograms = map[string]bool{
	"dsort": true, "csort": true, "csort4": true, "dsort-linear": true,
}

// DecodeJobSpec reads one job spec from JSON, strictly: unknown fields,
// trailing garbage, and semantically inconsistent specs are all errors. It
// never panics, whatever the bytes — the property FuzzJobSpec holds it to.
func DecodeJobSpec(r io.Reader) (JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("service: decode job spec: %w", err)
	}
	if dec.More() {
		return JobSpec{}, errors.New("service: trailing data after job spec document")
	}
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}

// Validate checks the spec's internal consistency. Quota checks live
// separately (Limits.Admit): a spec can be perfectly well-formed and still
// be too big for this daemon.
func (s JobSpec) Validate() error {
	if !validPrograms[s.Program] {
		return fmt.Errorf("service: unknown program %q", s.Program)
	}
	if s.Nodes < 2 {
		return fmt.Errorf("service: need at least 2 nodes, got %d", s.Nodes)
	}
	if s.Nodes > 64 {
		return fmt.Errorf("service: %d nodes is past the simulated-cluster bound of 64", s.Nodes)
	}
	if s.Records <= 0 {
		return fmt.Errorf("service: non-positive record count %d", s.Records)
	}
	if s.Records > 1<<40 {
		return fmt.Errorf("service: %d records is past the sanity bound of 2^40", s.Records)
	}
	if s.RecordSize != 0 && s.RecordSize < 16 {
		return fmt.Errorf("service: record size %d below minimum 16", s.RecordSize)
	}
	if s.RecordSize > 1<<20 {
		return fmt.Errorf("service: record size %d is past the sanity bound of 1 MiB", s.RecordSize)
	}
	cols := int64(s.Nodes) * int64(s.columnsPerNode())
	if s.Records%cols != 0 {
		return fmt.Errorf("service: %d records do not divide into %d columns", s.Records, cols)
	}
	if s.Distribution != "" {
		if _, err := workload.ParseDistribution(s.Distribution); err != nil {
			return fmt.Errorf("service: %w", err)
		}
	}
	if s.Parallelism < 0 || s.Buffers < 0 || s.Seed < 0 ||
		s.TimeoutSec < 0 || s.MaxAttempts < 0 || s.ColumnsPerNode < 0 {
		return errors.New("service: negative scalar in job spec")
	}
	if d := s.Disk; d != nil {
		if d.SeekLatencyUS < 0 || d.BytesPerSecond < 0 {
			return errors.New("service: negative disk model field")
		}
	}
	if f := s.Fault; f != nil {
		switch f.Kind {
		case FaultPanicOp, FaultDiskErr:
		default:
			return fmt.Errorf("service: unknown fault kind %q", f.Kind)
		}
		if f.Rank < 0 || f.Rank >= s.Nodes {
			return fmt.Errorf("service: fault rank %d outside [0, %d)", f.Rank, s.Nodes)
		}
		if f.OpCount <= 0 {
			return errors.New("service: fault op_count must be >= 1")
		}
	}
	return nil
}

// Defaulted accessors: zero values in the JSON mean "the usual".

func (s JobSpec) recordSize() int     { return defaulted(s.RecordSize, 16) }
func (s JobSpec) columnsPerNode() int { return defaulted(s.ColumnsPerNode, 1) }
func (s JobSpec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}
func (s JobSpec) maxAttempts() int { return defaulted(s.MaxAttempts, 1) }

// timeout returns the job's effective running-time bound under the
// daemon's per-job runtime quota.
func (s JobSpec) timeout(l Limits) time.Duration {
	sec := defaulted(s.TimeoutSec, 120)
	if l.MaxRunSeconds > 0 && sec > l.MaxRunSeconds {
		sec = l.MaxRunSeconds
	}
	return time.Duration(sec) * time.Second
}

func defaulted(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// Bytes is the job's data volume — the quantity the disk quota bounds.
func (s JobSpec) Bytes() int64 { return s.Records * int64(s.recordSize()) }

// Limits are the daemon's per-job admission quotas. Zero fields mean
// "unlimited"; a spec exceeding any set limit is rejected at submit time
// with a quota error (HTTP 403), so an over-ask fails loudly instead of
// starving its neighbors.
type Limits struct {
	// MaxNodes bounds a job's simulated cluster size.
	MaxNodes int `json:"max_nodes,omitempty"`
	// MaxBytes bounds a job's data volume (records × record size) — the
	// per-job disk quota, since every simulated disk lives in the daemon's
	// memory.
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// MaxWorkers bounds a job's intra-buffer kernel parallelism: an
	// explicit ask above it is rejected, and the "all cores" default (and
	// the auto-tuner's upper bound) is clamped to it.
	MaxWorkers int `json:"max_workers,omitempty"`
	// MaxBuffers bounds a job's explicit per-pipeline buffer pool.
	MaxBuffers int `json:"max_buffers,omitempty"`
	// MaxAttempts bounds a job's supervised attempt budget.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// MaxRunSeconds caps every job's running wall clock, whatever its spec
	// asks for.
	MaxRunSeconds int `json:"max_run_seconds,omitempty"`
}

// A QuotaError reports which limit a spec exceeded; the HTTP layer maps it
// to 403.
type QuotaError struct{ msg string }

func (e *QuotaError) Error() string { return e.msg }

func quotaErrf(format string, args ...any) error {
	return &QuotaError{msg: fmt.Sprintf("service: quota: "+format, args...)}
}

// Admit checks a valid spec against the quotas.
func (l Limits) Admit(s JobSpec) error {
	if l.MaxNodes > 0 && s.Nodes > l.MaxNodes {
		return quotaErrf("%d nodes exceeds the per-job limit of %d", s.Nodes, l.MaxNodes)
	}
	if l.MaxBytes > 0 && s.Bytes() > l.MaxBytes {
		return quotaErrf("%d bytes of data exceeds the per-job limit of %d", s.Bytes(), l.MaxBytes)
	}
	if l.MaxWorkers > 0 && s.Parallelism > l.MaxWorkers {
		return quotaErrf("parallelism %d exceeds the per-job limit of %d", s.Parallelism, l.MaxWorkers)
	}
	if l.MaxBuffers > 0 && s.Buffers > l.MaxBuffers {
		return quotaErrf("%d buffers exceeds the per-job limit of %d", s.Buffers, l.MaxBuffers)
	}
	if l.MaxAttempts > 0 && s.maxAttempts() > l.MaxAttempts {
		return quotaErrf("%d attempts exceeds the per-job limit of %d", s.maxAttempts(), l.MaxAttempts)
	}
	return nil
}
