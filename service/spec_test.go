package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExampleSpecsDecode holds the checked-in examples to the strict
// decoder: every spec under examples/jobspecs must decode and validate,
// so the documentation can never drift from the API.
func TestExampleSpecsDecode(t *testing.T) {
	dir := filepath.Join("..", "examples", "jobspecs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no example job specs checked in")
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		s, err := DecodeJobSpec(strings.NewReader(string(raw)))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if s.Program == "" {
			t.Errorf("%s: decoded to empty program", e.Name())
		}
	}
}

func TestDecodeJobSpecRejects(t *testing.T) {
	cases := []struct{ name, doc, wantSub string }{
		{"unknown field", `{"program":"dsort","nodes":4,"records":4096,"surprise":1}`, "surprise"},
		{"trailing data", `{"program":"dsort","nodes":4,"records":4096} {}`, "trailing"},
		{"bad program", `{"program":"qsort","nodes":4,"records":4096}`, "unknown program"},
		{"one node", `{"program":"dsort","nodes":1,"records":4096}`, "at least 2"},
		{"too many nodes", `{"program":"dsort","nodes":65,"records":4160}`, "bound of 64"},
		{"no records", `{"program":"dsort","nodes":4,"records":0}`, "record count"},
		{"tiny records", `{"program":"dsort","nodes":4,"records":4096,"record_size":8}`, "below minimum"},
		{"indivisible", `{"program":"dsort","nodes":4,"records":4097}`, "divide"},
		{"bad distribution", `{"program":"dsort","nodes":4,"records":4096,"distribution":"bogus"}`, "distribution"},
		{"negative seed", `{"program":"dsort","nodes":4,"records":4096,"seed":-1}`, "negative"},
		{"negative disk", `{"program":"dsort","nodes":4,"records":4096,"disk":{"seek_latency_us":-1,"bytes_per_second":1}}`, "disk"},
		{"bad fault kind", `{"program":"dsort","nodes":4,"records":4096,"fault":{"kind":"meteor","rank":0,"op_count":1}}`, "fault kind"},
		{"fault rank out of range", `{"program":"dsort","nodes":4,"records":4096,"fault":{"kind":"panic-op","rank":4,"op_count":1}}`, "rank"},
		{"fault op zero", `{"program":"dsort","nodes":4,"records":4096,"fault":{"kind":"panic-op","rank":0,"op_count":0}}`, "op_count"},
		{"not json", `[`, "decode"},
		{"empty", ``, "decode"},
	}
	for _, c := range cases {
		if _, err := DecodeJobSpec(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestLimitsAdmit(t *testing.T) {
	l := Limits{MaxNodes: 8, MaxBytes: 1 << 20, MaxWorkers: 4, MaxBuffers: 8, MaxAttempts: 3}
	ok := JobSpec{Program: "dsort", Nodes: 4, Records: 4096}
	if err := l.Admit(ok); err != nil {
		t.Fatalf("in-quota spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"nodes", JobSpec{Program: "dsort", Nodes: 16, Records: 4096}},
		{"bytes", JobSpec{Program: "dsort", Nodes: 4, Records: 1 << 20}},
		{"workers", JobSpec{Program: "dsort", Nodes: 4, Records: 4096, Parallelism: 9}},
		{"buffers", JobSpec{Program: "dsort", Nodes: 4, Records: 4096, Buffers: 99}},
		{"attempts", JobSpec{Program: "dsort", Nodes: 4, Records: 4096, MaxAttempts: 4}},
	}
	for _, c := range cases {
		err := l.Admit(c.spec)
		if err == nil {
			t.Errorf("%s: over-quota spec admitted", c.name)
			continue
		}
		if _, isQuota := err.(*QuotaError); !isQuota {
			t.Errorf("%s: got %T, want *QuotaError", c.name, err)
		}
	}
	// Zero limits admit anything well-formed.
	if err := (Limits{}).Admit(JobSpec{Program: "dsort", Nodes: 64, Records: 1 << 30}); err != nil {
		t.Errorf("unlimited daemon rejected a spec: %v", err)
	}
}

func TestTimeoutClamp(t *testing.T) {
	s := JobSpec{TimeoutSec: 900}
	if got := s.timeout(Limits{MaxRunSeconds: 300}); got != 300*time.Second {
		t.Fatalf("timeout = %v, want clamp to 300s", got)
	}
	if got := (JobSpec{}).timeout(Limits{}); got != 120*time.Second {
		t.Fatalf("default timeout = %v, want 120s", got)
	}
	if got := (JobSpec{TimeoutSec: 30}).timeout(Limits{MaxRunSeconds: 300}); got != 30*time.Second {
		t.Fatalf("explicit timeout = %v, want 30s", got)
	}
}
