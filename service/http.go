package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/fg-go/fg/oocsort"
	"github.com/fg-go/fg/supervise"
)

// JobStatus is one job's status document, served by GET /jobs/{id} and
// embedded in list and daemon-status views.
type JobStatus struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Program string `json:"program"`
	State   string `json:"state"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`

	Error       string          `json:"error,omitempty"`
	CancelWhy   string          `json:"cancel_reason,omitempty"`
	Attempts    []AttemptStatus `json:"attempts,omitempty"`
	Bottlenecks []string        `json:"bottlenecks,omitempty"`
	Result      *ResultView     `json:"result,omitempty"`
}

// AttemptStatus is one supervised attempt, flattened for JSON.
type AttemptStatus struct {
	N          int      `json:"n"`
	DurationMS float64  `json:"duration_ms"`
	Resumed    []string `json:"resumed,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// ResultView is the sort result a done job serves at /jobs/{id}/result.
type ResultView struct {
	Program      string     `json:"program"`
	TotalMS      float64    `json:"total_ms"`
	Passes       []PassView `json:"passes"`
	Resumed      []string   `json:"resumed,omitempty"`
	ReadOps      int64      `json:"disk_read_ops"`
	WriteOps     int64      `json:"disk_write_ops"`
	BytesRead    int64      `json:"disk_bytes_read"`
	BytesWritten int64      `json:"disk_bytes_written"`
	MessagesSent int64      `json:"comm_messages_sent"`
	BytesSent    int64      `json:"comm_bytes_sent"`
}

// PassView is one pass timing.
type PassView struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

func resultView(r oocsort.Result) *ResultView {
	v := &ResultView{
		Program:      string(r.Program),
		TotalMS:      float64(r.Total()) / float64(time.Millisecond),
		Resumed:      r.Resumed,
		ReadOps:      r.Disk.ReadOps,
		WriteOps:     r.Disk.WriteOps,
		BytesRead:    r.Disk.BytesRead,
		BytesWritten: r.Disk.BytesWritten,
		MessagesSent: r.Comm.MessagesSent,
		BytesSent:    r.Comm.BytesSent,
	}
	for _, p := range r.Passes {
		v.Passes = append(v.Passes, PassView{
			Name:       p.Name,
			DurationMS: float64(p.Duration) / float64(time.Millisecond),
		})
	}
	return v
}

func attemptViews(as []supervise.Attempt) []AttemptStatus {
	out := make([]AttemptStatus, 0, len(as))
	for _, a := range as {
		st := AttemptStatus{
			N:          a.N,
			DurationMS: float64(a.Duration) / float64(time.Millisecond),
			Resumed:    a.Resumed,
		}
		if a.Err != nil {
			st.Error = a.Err.Error()
		}
		out = append(out, st)
	}
	return out
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		Name:        j.Spec.Name,
		Program:     j.Spec.Program,
		State:       string(j.state),
		Submitted:   j.submitted,
		CancelWhy:   j.cancelWhy,
		Attempts:    attemptViews(j.attempts),
		Bottlenecks: append([]string(nil), j.bottlenecks...),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == StateDone {
		st.Result = resultView(j.result)
	}
	return st
}

// Handler returns the daemon's HTTP API:
//
//	POST /jobs              submit a JobSpec, returns {"id": ...} (202)
//	GET  /jobs              list retained jobs
//	GET  /jobs/{id}         one job's status
//	GET  /jobs/{id}/result  the sort result (409 until done)
//	POST /jobs/{id}/cancel  request cancellation
//	GET  /jobs/{id}/blackbox  the job's flight-recorder Chrome trace
//	GET  /metrics           Prometheus text: daemon series + per-job series
//	GET  /status.json       daemon ledger + per-job statuses
//	GET  /healthz           200 "ok" (or 503 "draining")
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/blackbox", s.handleBlackbox)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /status.json", s.handleStatus)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeJobSpec(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]string{
			"id":    j.ID,
			"state": string(j.State()),
		})
	case errors.Is(err, ErrQueueFull):
		// Backpressure, not failure: the queue is bounded by design, and
		// the client should come back.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		var qe *QuotaError
		if errors.As(err, &qe) || errors.Is(err, ErrFaultsDisabled) {
			writeErr(w, http.StatusForbidden, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("service: no job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	res, done := j.Result()
	if !done {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("service: job %s is %s, no result", j.ID, j.State()))
		return
	}
	writeJSON(w, http.StatusOK, resultView(res))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if !s.Cancel(j.ID) {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("service: job %s already %s", j.ID, j.State()))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":    j.ID,
		"state": string(j.State()),
	})
}

func (s *Server) handleBlackbox(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	obs := j.observeBundle()
	if obs == nil || obs.Flight == nil {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("service: job %s has not started, no black box", j.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.Flight.WriteChromeTrace(w)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status(true))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
