package fg

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Retryable stages. FG exists to hide the latency of disk I/O and
// interprocessor communication — operations that fail transiently as well
// as slowly. Retry wraps a round stage so that transient failures are
// absorbed by exponential backoff instead of aborting the network, which
// matters when the network is hours into an out-of-core sort. Only wrap
// stages whose work is idempotent per buffer (re-reading a block,
// re-writing the same bytes at the same offset); a send stage, whose
// messages cannot be unsent, should not be retried.

// ErrAttemptTimeout is the error recorded when one attempt of a
// Retry-wrapped stage exceeds RetryPolicy.AttemptTimeout. The attempt
// counts as failed and is retried like any other transient error.
var ErrAttemptTimeout = errors.New("fg: retry attempt timed out")

// A RetryPolicy configures Retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, first try included.
	// Values below 2 mean a single attempt: no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it. Zero defaults to 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the doubled backoff. Zero means no cap.
	MaxDelay time.Duration
	// Jitter randomizes each backoff within ±Jitter fraction of its value
	// (0.2 = ±20%), decorrelating retries of stages that failed together.
	// Zero means no jitter.
	Jitter float64
	// AttemptTimeout bounds one attempt's wall-clock time. When it
	// expires, the attempt is abandoned and retried. To keep an abandoned
	// attempt from racing its successor, attempts run against a private
	// copy of the buffer, adopted back only on success; an AttemptTimeout
	// of zero disables both the timeout and the copy.
	AttemptTimeout time.Duration
	// Seed makes the jitter sequence deterministic for tests. Zero seeds
	// from a fixed default.
	Seed int64
}

// enabled reports whether the policy asks for any retries.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// Retry wraps a round stage function with the policy: transient errors are
// retried with exponential backoff until an attempt succeeds, the attempts
// are exhausted, the error is marked Permanent (panics count as
// permanent), or the network shuts down. The wrapped function is handed to
// AddStage like any other round function.
func Retry(fn RoundFunc, p RetryPolicy) RoundFunc {
	if fn == nil {
		panic("fg: Retry with nil function")
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	seed := p.Seed
	if seed == 0 {
		seed = 0xf9f9f9
	}
	var mu sync.Mutex // replicated stages share the wrapper
	rng := rand.New(rand.NewSource(seed))
	jittered := func(d time.Duration) time.Duration {
		if p.Jitter == 0 {
			return d
		}
		mu.Lock()
		u := rng.Float64()
		mu.Unlock()
		return time.Duration(float64(d) * (1 + p.Jitter*(2*u-1)))
	}
	return func(ctx *Ctx, b *Buffer) error {
		delay := p.BaseDelay
		for attempt := 1; ; attempt++ {
			select {
			case <-ctx.nw.done:
				// The network is already failing or canceled; starting
				// another attempt would only burn the budget against a
				// pipeline that cannot accept the result.
				return retryAbandoned(ctx.nw)
			default:
			}
			t0 := time.Now()
			err := p.attempt(ctx, fn, b)
			if errors.Is(err, errShutdown) {
				return retryAbandoned(ctx.nw)
			}
			if err == nil || IsPermanent(err) {
				return err
			}
			if attempt >= p.MaxAttempts {
				ctx.nw.traceRetry(ctx.stage, b.pipe, b.Round, t0)
				return fmt.Errorf("fg: retry: %d attempts failed, last: %w", attempt, err)
			}
			t := time.NewTimer(jittered(delay))
			select {
			case <-t.C:
			case <-ctx.nw.done:
				t.Stop()
				return retryAbandoned(ctx.nw)
			}
			// One retry event spans the failed attempt and its backoff.
			ctx.nw.traceRetry(ctx.stage, b.pipe, b.Round, t0)
			delay *= 2
			if p.MaxDelay > 0 && delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
	}
}

// retryAbandoned is what a Retry-wrapped stage returns when the network
// shuts down under it: the network's own failure (the context error when a
// RunContext was canceled), marked permanent so no layer above retries an
// attempt the pipeline can no longer accept.
func retryAbandoned(nw *Network) error {
	err := nw.Err()
	if err == nil {
		err = errShutdown
	}
	return Permanent(fmt.Errorf("fg: retry abandoned: %w", err))
}

// attempt runs one attempt of fn, bounded by AttemptTimeout if set. A
// timed-out attempt's goroutine is left to finish against its private copy
// of the buffer; it can no longer affect the pipeline.
func (p RetryPolicy) attempt(ctx *Ctx, fn RoundFunc, b *Buffer) error {
	if p.AttemptTimeout <= 0 {
		return fn(ctx, b)
	}
	private := b.cloneForAttempt()
	done := make(chan error, 1)
	go func() {
		defer func() {
			if pe := capturePanic(ctx.stage.name, recover()); pe != nil {
				done <- pe
			}
		}()
		done <- fn(ctx, private)
	}()
	t := time.NewTimer(p.AttemptTimeout)
	defer t.Stop()
	select {
	case err := <-done:
		if err == nil {
			b.adoptAttempt(private)
		}
		return err
	case <-t.C:
		return ErrAttemptTimeout
	case <-ctx.nw.done:
		return errShutdown
	}
}

// cloneForAttempt copies the buffer's user-visible state so one attempt
// cannot race another (or the pipeline) through shared storage.
func (b *Buffer) cloneForAttempt() *Buffer {
	c := &Buffer{
		Data:  make([]byte, len(b.Data), cap(b.Data)),
		N:     b.N,
		Round: b.Round,
		Meta:  b.Meta,
		pipe:  b.pipe,
	}
	copy(c.Data, b.Data)
	return c
}

// adoptAttempt publishes a successful attempt's result back into the real
// buffer.
func (b *Buffer) adoptAttempt(c *Buffer) {
	b.Data = b.Data[:cap(b.Data)]
	n := copy(b.Data, c.Data)
	b.Data = b.Data[:n]
	b.N = c.N
	b.Meta = c.Meta
}
