package fg

import (
	"fmt"
	"time"
)

// Fork-join pipelines. Section VII of the paper notes that <stxxl>'s
// pipelining "allows constructs that resemble FG's fork-join and
// intersecting pipelines" — fork-join is part of FG's repertoire, and this
// file provides it: a pipeline may split into parallel branches at a fork
// stage, which routes each buffer down exactly one branch, and the branches
// rejoin before the pipeline continues. Buffers remain tied to their
// pipeline and its pool; only their path varies.
//
// A typical use is a classify-then-treat pipeline: cheap buffers take a
// bypass branch while expensive ones take a branch with heavy stages, and
// the two kinds overlap instead of queueing behind one another.
//
// Restrictions (checked when the network starts): fork-join regions may not
// nest, may only appear in ordinary (non-virtual) pipelines, and branch
// stages are round stages private to their branch. Buffer order downstream
// of the join is not defined across branches; stages that care can reorder
// by Buffer.Round.

// A RouteFunc examines (and may transform) a buffer at a fork and returns
// the index of the branch it should travel.
type RouteFunc func(ctx *Ctx, b *Buffer) (int, error)

// A Fork is a fork-join region under construction.
type Fork struct {
	name     string
	pipe     *Pipeline
	route    RouteFunc
	stage    *Stage     // the fork stage on the spine
	joiner   *Stage     // the implicit join stage on the spine
	branches [][]*Stage // per-branch chains
	joined   bool
}

// AddFork appends a fork stage that splits the pipeline into the given
// number of branches. route picks a branch for each buffer. Populate each
// branch with Fork.Branch().AddStage, then close the region with Join
// before appending further spine stages.
func (p *Pipeline) AddFork(name string, branches int, route RouteFunc) *Fork {
	p.nw.mustNotBeStarted()
	if branches < 1 {
		panic(fmt.Sprintf("fg: fork %q needs at least one branch", name))
	}
	if route == nil {
		panic(fmt.Sprintf("fg: fork %q needs a route function", name))
	}
	if p.openFork != nil {
		panic(fmt.Sprintf("fg: fork %q opened while fork %q is still open (forks do not nest)",
			name, p.openFork.name))
	}
	f := &Fork{
		name:     name,
		pipe:     p,
		route:    route,
		branches: make([][]*Stage, branches),
	}
	f.stage = &Stage{name: name, fork: f}
	f.stage.slots = append(f.stage.slots, slotRef{pipe: p, pos: len(p.stages)})
	p.stages = append(p.stages, f.stage)

	f.joiner = &Stage{name: name + ".join", join: f}
	f.joiner.slots = append(f.joiner.slots, slotRef{pipe: p, pos: len(p.stages)})
	p.stages = append(p.stages, f.joiner)

	p.openFork = f
	p.forks = append(p.forks, f)
	return f
}

// Branches returns the number of branches.
func (f *Fork) Branches() int { return len(f.branches) }

// Branch returns a builder for branch i.
func (f *Fork) Branch(i int) *Branch {
	if i < 0 || i >= len(f.branches) {
		panic(fmt.Sprintf("fg: fork %q has no branch %d", f.name, i))
	}
	return &Branch{fork: f, index: i}
}

// Join closes the fork region; the pipeline continues with the stages
// appended after it. A branch left empty is a bypass: its buffers go
// straight to the join.
func (f *Fork) Join() {
	f.pipe.nw.mustNotBeStarted()
	if f.joined {
		panic(fmt.Sprintf("fg: fork %q joined twice", f.name))
	}
	f.joined = true
	f.pipe.openFork = nil
}

// A Branch builds one branch of a fork.
type Branch struct {
	fork  *Fork
	index int
}

// AddStage appends a round stage to the branch.
func (b *Branch) AddStage(name string, fn RoundFunc) *Stage {
	b.fork.pipe.nw.mustNotBeStarted()
	if fn == nil {
		panic("fg: AddStage with nil function")
	}
	if b.fork.joined {
		panic(fmt.Sprintf("fg: stage %q added to branch of fork %q after Join", name, b.fork.name))
	}
	s := &Stage{name: name, round: fn}
	// Branch stages record their pipeline membership with a negative
	// position marker; they are not on the spine and are only reachable
	// through their branch queues.
	s.slots = append(s.slots, slotRef{pipe: b.fork.pipe, pos: -1})
	b.fork.branches[b.index] = append(b.fork.branches[b.index], s)
	return s
}

// forkRuntime holds the queues of one fork region, built at start.
type forkRuntime struct {
	f *Fork
	// branchQ[i][j] feeds branch i's stage j; the final queue of each
	// branch is the join stage's spine input queue.
	branchQ [][]queue
}

// buildForkRuntimes validates and wires a pipeline's fork regions. The
// spine queues already exist (one per spine position); this adds the branch
// queues.
func (g *group) buildForkRuntimes() ([]*forkRuntime, error) {
	p := g.pipes[0]
	if len(p.forks) == 0 {
		return nil, nil
	}
	if len(g.pipes) > 1 {
		return nil, fmt.Errorf("fg: pipeline %q: fork-join is not supported in virtual groups", p.name)
	}
	if p.openFork != nil {
		return nil, fmt.Errorf("fg: pipeline %q: fork %q was never joined", p.name, p.openFork.name)
	}
	var rts []*forkRuntime
	for _, f := range p.forks {
		rt := &forkRuntime{f: f, branchQ: make([][]queue, len(f.branches))}
		for i, chain := range f.branches {
			qs := make([]queue, len(chain))
			for j := range chain {
				// Branch queues always have one producer (the fork stage or
				// the previous branch stage) and one consumer (the branch
				// stage), so they are always ring-eligible.
				qs[j] = newQueue(p.nBuffers+1, true)
			}
			rt.branchQ[i] = qs
		}
		rts = append(rts, rt)
	}
	return rts, nil
}

// branchEntry returns the queue feeding the first stage of branch i, which
// is the join input queue when the branch is empty (a bypass).
func (rt *forkRuntime) branchEntry(i int, g *group) queue {
	if len(rt.branchQ[i]) > 0 {
		return rt.branchQ[i][0]
	}
	return g.queues[rt.f.joiner.posIn(rt.f.pipe)]
}

// runFork executes the fork stage: route each buffer down a branch; at the
// caboose, seal every branch with its own caboose.
func runFork(nw *Network, g *group, rt *forkRuntime) {
	defer nw.wg.Done()
	f := rt.f
	defer nw.recoverPanic(f.stage.name)
	pos := f.stage.posIn(f.pipe)
	in := g.queues[pos]
	ctx := newCtx(nw, f.stage)
	ctx.restricted = true
	f.stage.stats.setPark(StageAccepting, time.Now())
	for {
		b, err := in.pop(nw.done)
		if err != nil {
			return
		}
		if b.caboose {
			f.stage.stats.setPark(StageDone, time.Now())
			for i := range f.branches {
				cb := b
				if i > 0 {
					cb = &Buffer{caboose: true, pipe: b.pipe}
				}
				_ = rt.branchEntry(i, g).push(cb, nw.done)
			}
			return
		}
		branch, ferr := f.route(ctx, b)
		f.stage.stats.rounds.Add(1)
		if ferr != nil {
			nw.fail(fmt.Errorf("fg: fork %q: %w", f.name, ferr))
			return
		}
		if branch < 0 || branch >= len(f.branches) {
			nw.fail(fmt.Errorf("fg: fork %q routed a buffer to branch %d of %d",
				f.name, branch, len(f.branches)))
			return
		}
		if err := rt.branchEntry(branch, g).push(b, nw.done); err != nil {
			return
		}
	}
}

// runBranchStage executes one branch stage: a round stage whose output is
// the next branch queue, or the join queue at the branch tail.
func runBranchStage(nw *Network, g *group, rt *forkRuntime, branch, idx int) {
	defer nw.wg.Done()
	s := rt.f.branches[branch][idx]
	defer nw.recoverPanic(s.name)
	in := rt.branchQ[branch][idx]
	var out queue
	if idx+1 < len(rt.branchQ[branch]) {
		out = rt.branchQ[branch][idx+1]
	} else {
		out = g.queues[rt.f.joiner.posIn(rt.f.pipe)]
	}
	ctx := newCtx(nw, s)
	ctx.restricted = true
	s.stats.setPark(StageAccepting, time.Now())
	for {
		start := time.Now()
		b, err := in.pop(nw.done)
		if err != nil {
			return
		}
		s.stats.acceptWait.Add(int64(time.Since(start)))
		if b.caboose {
			s.stats.setPark(StageDone, time.Now())
			_ = out.push(b, nw.done)
			return
		}
		t0 := time.Now()
		s.stats.setPark(StageWorking, t0)
		ferr := s.round(ctx, b)
		t1 := time.Now()
		s.stats.work.Add(int64(t1.Sub(t0)))
		s.stats.rounds.Add(1)
		s.stats.setPark(StageAccepting, t1)
		nw.traceWork(s, b.pipe, b.Round, t0)
		if ferr != nil {
			nw.fail(fmt.Errorf("fg: stage %q: %w", s.name, ferr))
			return
		}
		if err := out.push(b, nw.done); err != nil {
			return
		}
	}
}

// runJoin executes the implicit join: pass buffers through, and collapse
// the branches' cabooses into one for the rest of the pipeline.
func runJoin(nw *Network, g *group, rt *forkRuntime) {
	defer nw.wg.Done()
	defer nw.recoverPanic(rt.f.joiner.name)
	pos := rt.f.joiner.posIn(rt.f.pipe)
	in := g.queues[pos]
	out := g.queues[pos+1]
	remaining := len(rt.f.branches)
	rt.f.joiner.stats.setPark(StageAccepting, time.Now())
	for {
		b, err := in.pop(nw.done)
		if err != nil {
			return
		}
		if b.caboose {
			remaining--
			if remaining == 0 {
				rt.f.joiner.stats.setPark(StageDone, time.Now())
				_ = out.push(b, nw.done)
				return
			}
			continue
		}
		if err := out.push(b, nw.done); err != nil {
			return
		}
	}
}
