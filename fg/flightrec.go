package fg

import (
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Flight recorder: a bounded, lock-free ring of the most recent trace
// events. Where a Tracer keeps a whole run's timeline (and is therefore
// opt-in and sized generously), the flight recorder is the always-on cheap
// mode: it retains only the last few thousand events, overwriting the
// oldest, so a run that hangs or crashes leaves a readable "black box" of
// its final moments even when full tracing was off. StallReport handling
// and *PanicError paths snapshot it into a Chrome-trace dump.

// A FlightRecorder records recent events into a fixed ring. Create with
// NewFlightRecorder and attach with Network.SetFlightRecorder (or via
// Observe.Flight); several networks may share one recorder, putting their
// final moments on one timeline. All methods are safe for concurrent use.
type FlightRecorder struct {
	epoch time.Time
	mask  uint64
	head  atomic.Uint64 // next slot sequence number (monotonic)
	slots []flightSlot
}

// flightSlot holds one ring entry. seq is the 1-based sequence number of
// the event stored (0 = never written); lock is a per-slot CAS spinlock so
// a writer lapping the ring and a concurrent snapshot never see a torn
// event. The critical section is a struct copy, so the spin is bounded and
// the ring stays allocation- and mutex-free on the hot path.
type flightSlot struct {
	lock atomic.Int32
	seq  uint64
	ev   Event
}

func (s *flightSlot) acquire() {
	for !s.lock.CompareAndSwap(0, 1) {
	}
}

func (s *flightSlot) release() { s.lock.Store(0) }

// NewFlightRecorder creates a recorder retaining the last n events (rounded
// up to a power of two; n <= 0 selects a default of 4096).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 4096
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &FlightRecorder{
		epoch: time.Now(),
		mask:  uint64(size - 1),
		slots: make([]flightSlot, size),
	}
}

// Epoch returns the recorder's time origin; Event Start/End are relative to
// it.
func (fr *FlightRecorder) Epoch() time.Time { return fr.epoch }

// Span converts a wall-clock interval into the recorder's epoch-relative
// form, for building Events outside the framework (the harness's comm
// observer, say).
func (fr *FlightRecorder) Span(start, end time.Time) (s, e time.Duration) {
	return start.Sub(fr.epoch), end.Sub(fr.epoch)
}

// Record adds an event, overwriting the oldest once the ring is full. It
// never blocks on other recorders beyond a bounded per-slot spin.
func (fr *FlightRecorder) Record(e Event) {
	seq := fr.head.Add(1) // 1-based
	s := &fr.slots[(seq-1)&fr.mask]
	s.acquire()
	s.ev = e
	s.seq = seq
	s.release()
}

// Len returns how many events the ring currently holds.
func (fr *FlightRecorder) Len() int {
	n := fr.head.Load()
	if n > uint64(len(fr.slots)) {
		return len(fr.slots)
	}
	return int(n)
}

// Overwritten returns how many events have been discarded to make room —
// the black box's analogue of Tracer.Dropped.
func (fr *FlightRecorder) Overwritten() int64 {
	n := fr.head.Load()
	if n <= uint64(len(fr.slots)) {
		return 0
	}
	return int64(n - uint64(len(fr.slots)))
}

// Snapshot copies the ring's current contents in chronological start order.
// It may be taken at any time, including while stages are recording.
func (fr *FlightRecorder) Snapshot() []Event {
	out := make([]Event, 0, len(fr.slots))
	for i := range fr.slots {
		s := &fr.slots[i]
		s.acquire()
		seq, ev := s.seq, s.ev
		s.release()
		if seq == 0 {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// WriteChromeTrace dumps the ring as Chrome trace-event JSON — the black
// box. The output has the same shape as Tracer.WriteChromeTrace, including
// the fg_trace_meta metadata event, so it is loadable in chrome://tracing
// or Perfetto and mergeable with MergeChromeTraces.
func (fr *FlightRecorder) WriteChromeTrace(w io.Writer) error {
	return writeChromeJSON(w, fr.Snapshot(), fr.epoch, fr.Overwritten())
}

// SetFlightRecorder attaches a flight recorder to the network: every
// interval the network would offer a tracer (work, wait, retry) is also
// recorded into the ring. Attach before Run. A nil Network tracer and a
// flight recorder may coexist; they record independently, each against its
// own epoch.
func (nw *Network) SetFlightRecorder(fr *FlightRecorder) {
	nw.mustNotBeStarted()
	nw.flight = fr
}
