package fg_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/fg-go/fg/fg"
)

func TestDirCheckpointRoundTrip(t *testing.T) {
	ck, err := fg.NewDirCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ck.Completed(0, "pass1") {
		t.Fatal("empty store reports pass1 complete")
	}
	state := []byte(`{"runLens":[3,2]}`)
	files := map[string][]byte{
		"dsort.runs": bytes.Repeat([]byte("r"), 1<<12),
		"empty":      {},
	}
	if err := ck.Save(0, "pass1", state, files); err != nil {
		t.Fatal(err)
	}
	if !ck.Completed(0, "pass1") {
		t.Fatal("saved pass1 not reported complete")
	}
	if ck.Completed(1, "pass1") || ck.Completed(0, "pass2") {
		t.Fatal("completion leaked across rank or pass")
	}
	gotState, gotFiles, err := ck.Restore(0, "pass1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotState, state) {
		t.Errorf("state round-trip: got %q, want %q", gotState, state)
	}
	if len(gotFiles) != len(files) {
		t.Fatalf("restored %d files, want %d", len(gotFiles), len(files))
	}
	for name, data := range files {
		if !bytes.Equal(gotFiles[name], data) {
			t.Errorf("file %q did not round-trip", name)
		}
	}
}

func TestDirCheckpointSaveReplacesAndClearRemoves(t *testing.T) {
	ck, err := fg.NewDirCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(2, "pass1", []byte("v1"), map[string][]byte{"a": []byte("old"), "gone": []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(2, "pass1", []byte("v2"), map[string][]byte{"a": []byte("new")}); err != nil {
		t.Fatal(err)
	}
	state, files, err := ck.Restore(2, "pass1")
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != "v2" || string(files["a"]) != "new" {
		t.Errorf("re-save did not replace: state=%q files=%v", state, files)
	}
	if _, ok := files["gone"]; ok {
		t.Error("stale file from the replaced checkpoint survived")
	}
	if err := ck.Clear(2); err != nil {
		t.Fatal(err)
	}
	if ck.Completed(2, "pass1") {
		t.Error("cleared rank still reports a complete pass")
	}
}

func TestDirCheckpointRejectsPathEscapes(t *testing.T) {
	ck, err := fg.NewDirCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, pass := range []string{"", "..", "a/b", ".hidden"} {
		if err := ck.Save(0, pass, nil, nil); err == nil {
			t.Errorf("Save accepted pass name %q", pass)
		}
	}
	if err := ck.Save(0, "ok", nil, map[string][]byte{"../escape": []byte("x")}); err == nil {
		t.Error("Save accepted a file name with a path separator")
	}
}

// The chaos cases: every way a kill -9 or a flaky disk can tear a
// checkpoint must read as "no checkpoint", never as a valid one. The commit
// protocol (files, then manifest via atomic rename) means the observable
// torn states are: tmp manifest only, manifest with a missing file, a file
// with the wrong bytes, or a truncated/garbled manifest.
func TestDirCheckpointTornSavesNeverValidate(t *testing.T) {
	newSaved := func(t *testing.T) (*fg.DirCheckpoint, string) {
		dir := t.TempDir()
		ck, err := fg.NewDirCheckpoint(dir)
		if err != nil {
			t.Fatal(err)
		}
		err = ck.Save(1, "pass1", []byte("state"), map[string][]byte{"runs": []byte("sorted run bytes")})
		if err != nil {
			t.Fatal(err)
		}
		return ck, filepath.Join(dir, "rank1")
	}
	mustInvalid := func(t *testing.T, ck *fg.DirCheckpoint, why string) {
		t.Helper()
		if ck.Completed(1, "pass1") {
			t.Errorf("%s: Completed = true", why)
		}
		if _, _, err := ck.Restore(1, "pass1"); err == nil {
			t.Errorf("%s: Restore validated", why)
		}
	}

	t.Run("KilledBeforeCommit", func(t *testing.T) {
		// Data files written, manifest only at its temporary name: the
		// rename never happened.
		ck, rd := newSaved(t)
		if err := os.Rename(filepath.Join(rd, "pass1.json"), filepath.Join(rd, "pass1.json.tmp")); err != nil {
			t.Fatal(err)
		}
		mustInvalid(t, ck, "uncommitted manifest")
	})
	t.Run("DataFileMissing", func(t *testing.T) {
		ck, rd := newSaved(t)
		if err := os.Remove(filepath.Join(rd, "pass1.d", "runs")); err != nil {
			t.Fatal(err)
		}
		mustInvalid(t, ck, "missing data file")
	})
	t.Run("DataFileTruncated", func(t *testing.T) {
		ck, rd := newSaved(t)
		if err := os.Truncate(filepath.Join(rd, "pass1.d", "runs"), 4); err != nil {
			t.Fatal(err)
		}
		mustInvalid(t, ck, "truncated data file")
	})
	t.Run("DataFileCorrupt", func(t *testing.T) {
		// Same size, different bytes: only the digest catches it.
		ck, rd := newSaved(t)
		p := filepath.Join(rd, "pass1.d", "runs")
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mustInvalid(t, ck, "corrupt data file")
	})
	t.Run("ManifestTruncated", func(t *testing.T) {
		ck, rd := newSaved(t)
		if err := os.Truncate(filepath.Join(rd, "pass1.json"), 10); err != nil {
			t.Fatal(err)
		}
		mustInvalid(t, ck, "truncated manifest")
	})
	t.Run("ManifestForWrongPass", func(t *testing.T) {
		// A manifest copied or renamed across passes must not validate.
		ck, rd := newSaved(t)
		body, err := os.ReadFile(filepath.Join(rd, "pass1.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(rd, "pass2.json"), body, 0o644); err != nil {
			t.Fatal(err)
		}
		if ck.Completed(1, "pass2") {
			t.Error("manifest renamed across passes validated")
		}
	})
}
