package fg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderRing fills a small ring past capacity and checks that
// only the most recent events survive, in chronological order.
func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(16)
	for i := 0; i < 100; i++ {
		fr.Record(Event{Stage: "s", Pipeline: "p", Kind: EventWork, Round: i,
			Start: time.Duration(i) * time.Millisecond, End: time.Duration(i+1) * time.Millisecond})
	}
	if got := fr.Len(); got != 16 {
		t.Errorf("Len = %d, want 16", got)
	}
	if got := fr.Overwritten(); got != 84 {
		t.Errorf("Overwritten = %d, want 84", got)
	}
	snap := fr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot has %d events, want 16", len(snap))
	}
	for i, e := range snap {
		if e.Round != 84+i {
			t.Errorf("snapshot[%d].Round = %d, want %d (oldest events must be overwritten first)", i, e.Round, 84+i)
		}
	}
}

// TestFlightRecorderDefaultsAndPartialFill checks the zero-size default and
// that a partially filled ring reports only what it holds.
func TestFlightRecorderDefaultsAndPartialFill(t *testing.T) {
	fr := NewFlightRecorder(0)
	if fr.Len() != 0 || fr.Overwritten() != 0 {
		t.Errorf("fresh recorder: Len=%d Overwritten=%d", fr.Len(), fr.Overwritten())
	}
	fr.Record(Event{Stage: "only", Kind: EventWork})
	if fr.Len() != 1 {
		t.Errorf("Len = %d after one record", fr.Len())
	}
	if snap := fr.Snapshot(); len(snap) != 1 || snap[0].Stage != "only" {
		t.Errorf("snapshot = %+v", snap)
	}
}

// TestFlightRecorderConcurrent hammers Record from many goroutines while
// another goroutine snapshots continuously; under -race this proves the
// per-slot locking, and the head counter must account for every record.
func TestFlightRecorderConcurrent(t *testing.T) {
	const writers, per = 8, 2000
	fr := NewFlightRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() {
		defer snapWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, e := range fr.Snapshot() {
					// A torn event would mix fields of different records;
					// every writer keeps Round == int(Start in ms).
					if int(e.Start/time.Millisecond) != e.Round {
						t.Errorf("torn event: %+v", e)
						return
					}
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := w*per + i
				fr.Record(Event{Stage: "s", Kind: EventWork, Round: r,
					Start: time.Duration(r) * time.Millisecond})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWg.Wait()
	if total := int64(fr.Len()) + fr.Overwritten(); total != writers*per {
		t.Errorf("Len+Overwritten = %d, want %d", total, writers*per)
	}
}

// TestFlightRecorderChromeTrace dumps the ring and checks the black box has
// the same shape as a full trace: the fg_trace_meta metadata event carrying
// the overwrite count, and one X event per retained ring entry.
func TestFlightRecorderChromeTrace(t *testing.T) {
	fr := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		fr.Record(Event{Stage: fmt.Sprintf("s%d", i%2), Pipeline: "p", Kind: EventWork, Round: i,
			Start: time.Duration(i) * time.Millisecond, End: time.Duration(i+1) * time.Millisecond})
	}
	var buf bytes.Buffer
	if err := fr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("black box is not valid JSON: %v", err)
	}
	xEvents, metaSeen := 0, false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
		case "M":
			if ev.Name == "fg_trace_meta" {
				metaSeen = true
				if d, _ := ev.Args["dropped"].(float64); int64(d) != fr.Overwritten() {
					t.Errorf("meta dropped = %v, want %d", ev.Args["dropped"], fr.Overwritten())
				}
				if e, _ := ev.Args["epoch_unix_nano"].(float64); e == 0 {
					t.Error("meta has no epoch")
				}
			}
		}
	}
	if !metaSeen {
		t.Error("black box has no fg_trace_meta event; MergeChromeTraces cannot align it")
	}
	if xEvents != fr.Len() {
		t.Errorf("black box has %d X events, ring holds %d", xEvents, fr.Len())
	}
}

// TestFlightRecorderOnNetwork runs a network with only a flight recorder
// attached (no tracer) and checks the ring saw its work.
func TestFlightRecorderOnNetwork(t *testing.T) {
	fr := NewFlightRecorder(256)
	nw := NewNetwork("boxed")
	nw.SetFlightRecorder(fr)
	p := nw.AddPipeline("main", Buffers(2), Rounds(5))
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	work := 0
	for _, e := range fr.Snapshot() {
		if e.Kind == EventWork && e.Stage == "work" {
			work++
		}
	}
	if work != 5 {
		t.Errorf("flight recorder saw %d work events, want 5", work)
	}
}

// TestSetFlightRecorderAfterRunPanics mirrors the tracer's contract.
func TestSetFlightRecorderAfterRunPanics(t *testing.T) {
	nw := NewNetwork("lateflight")
	p := nw.AddPipeline("main", Rounds(1))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetFlightRecorder after Run did not panic")
		}
	}()
	nw.SetFlightRecorder(NewFlightRecorder(0))
}
