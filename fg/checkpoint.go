package fg

// Pass-level checkpoints. The multi-pass structure of an out-of-core
// computation hands us recovery points for free: every pass ends at a
// materialized boundary (run files on disk, a transposed matrix), so a
// restarted rank can re-enter at the last completed pass instead of
// recomputing from scratch. A Checkpoint stores, per (rank, pass), a small
// opaque state blob plus the files that pass materialized, committed
// atomically so a rank killed mid-save never leaves a checkpoint that
// validates.
//
// The interface is deliberately tiny — Completed / Save / Restore — so node
// programs can wire it in at pass boundaries without caring where the bytes
// live. DirCheckpoint is the filesystem implementation the supervisor uses;
// tests substitute in-memory fakes.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// A Checkpoint persists pass results so a restarted rank can skip completed
// passes. Implementations must commit atomically: a Save interrupted at any
// point (including kill -9 mid-write) must leave Completed reporting false
// and Restore failing validation, never a half-written checkpoint that
// reads as complete.
type Checkpoint interface {
	// Completed reports whether a valid checkpoint exists for the pass:
	// committed by Save and passing whatever integrity validation the
	// implementation performs on the manifest.
	Completed(rank int, pass string) bool
	// Save records a completed pass: an opaque state blob (the program's
	// own bookkeeping — run lengths, sample splitters) and the files the
	// pass materialized, keyed by name. Save replaces any previous
	// checkpoint for the same (rank, pass).
	Save(rank int, pass string, state []byte, files map[string][]byte) error
	// Restore returns the state and files Save recorded, after validating
	// integrity. It fails if the checkpoint is absent, torn, or corrupt.
	Restore(rank int, pass string) (state []byte, files map[string][]byte, err error)
}

// DirCheckpoint is the filesystem Checkpoint: one directory per rank, one
// manifest per pass. The layout under the root is
//
//	rank<r>/<pass>.json     manifest: pass, rank, state, file digests
//	rank<r>/<pass>.d/<f>    the pass's materialized files
//
// Save writes the data files first, then the manifest to a temporary name,
// fsyncs, and commits with an atomic rename — the manifest's existence is
// the commit point, and its SHA-256 digests are checked against the data
// files on every Completed and Restore, so a torn or tampered checkpoint
// reads as absent rather than as truth.
type DirCheckpoint struct {
	dir string
}

// NewDirCheckpoint opens (creating if needed) a checkpoint store rooted at
// dir. The directory is shared by all ranks of one job; concurrent Saves by
// different ranks are safe, concurrent Saves of the same (rank, pass) are
// the caller's race to lose.
func NewDirCheckpoint(dir string) (*DirCheckpoint, error) {
	if dir == "" {
		return nil, fmt.Errorf("fg: checkpoint directory is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fg: checkpoint dir: %w", err)
	}
	return &DirCheckpoint{dir: dir}, nil
}

// Dir returns the store's root directory.
func (c *DirCheckpoint) Dir() string { return c.dir }

// ckptManifest is the JSON body of the <pass>.json commit record.
type ckptManifest struct {
	Pass  string     `json:"pass"`
	Rank  int        `json:"rank"`
	State []byte     `json:"state,omitempty"`
	Files []ckptFile `json:"files"`
}

type ckptFile struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// ckptName rejects names that would escape the checkpoint tree.
func ckptName(kind, name string) error {
	if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return fmt.Errorf("fg: checkpoint %s name %q is not a plain file name", kind, name)
	}
	return nil
}

func (c *DirCheckpoint) rankDir(rank int) string {
	return filepath.Join(c.dir, "rank"+strconv.Itoa(rank))
}

func (c *DirCheckpoint) manifestPath(rank int, pass string) string {
	return filepath.Join(c.rankDir(rank), pass+".json")
}

func (c *DirCheckpoint) filesDir(rank int, pass string) string {
	return filepath.Join(c.rankDir(rank), pass+".d")
}

func (c *DirCheckpoint) Completed(rank int, pass string) bool {
	_, _, err := c.Restore(rank, pass)
	return err == nil
}

func (c *DirCheckpoint) Save(rank int, pass string, state []byte, files map[string][]byte) error {
	if err := ckptName("pass", pass); err != nil {
		return err
	}
	rd := c.rankDir(rank)
	if err := os.MkdirAll(rd, 0o755); err != nil {
		return fmt.Errorf("fg: checkpoint save: %w", err)
	}
	// Stale data from a previous attempt of this pass must not survive
	// under the new manifest's nose.
	fd := c.filesDir(rank, pass)
	if err := os.RemoveAll(fd); err != nil {
		return fmt.Errorf("fg: checkpoint save: %w", err)
	}
	if err := os.Remove(c.manifestPath(rank, pass)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("fg: checkpoint save: %w", err)
	}
	m := ckptManifest{Pass: pass, Rank: rank, State: state}
	if len(files) > 0 {
		if err := os.MkdirAll(fd, 0o755); err != nil {
			return fmt.Errorf("fg: checkpoint save: %w", err)
		}
	}
	for name, data := range files {
		if err := ckptName("file", name); err != nil {
			return err
		}
		if err := writeFileSync(filepath.Join(fd, name), data); err != nil {
			return fmt.Errorf("fg: checkpoint save %q: %w", name, err)
		}
		sum := sha256.Sum256(data)
		m.Files = append(m.Files, ckptFile{
			Name:   name,
			Size:   int64(len(data)),
			SHA256: hex.EncodeToString(sum[:]),
		})
	}
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("fg: checkpoint save: %w", err)
	}
	// The commit point: data files are all durable, so renaming the
	// manifest into place flips the checkpoint from absent to complete in
	// one atomic step.
	final := c.manifestPath(rank, pass)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, body); err != nil {
		return fmt.Errorf("fg: checkpoint save: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("fg: checkpoint save: %w", err)
	}
	return syncDir(rd)
}

func (c *DirCheckpoint) Restore(rank int, pass string) ([]byte, map[string][]byte, error) {
	if err := ckptName("pass", pass); err != nil {
		return nil, nil, err
	}
	body, err := os.ReadFile(c.manifestPath(rank, pass))
	if err != nil {
		return nil, nil, fmt.Errorf("fg: checkpoint restore: %w", err)
	}
	var m ckptManifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, nil, fmt.Errorf("fg: checkpoint restore: manifest corrupt: %w", err)
	}
	if m.Pass != pass || m.Rank != rank {
		return nil, nil, fmt.Errorf("fg: checkpoint restore: manifest names (rank %d, pass %q), want (rank %d, pass %q)",
			m.Rank, m.Pass, rank, pass)
	}
	files := make(map[string][]byte, len(m.Files))
	for _, mf := range m.Files {
		if err := ckptName("file", mf.Name); err != nil {
			return nil, nil, err
		}
		data, err := os.ReadFile(filepath.Join(c.filesDir(rank, pass), mf.Name))
		if err != nil {
			return nil, nil, fmt.Errorf("fg: checkpoint restore: %w", err)
		}
		if int64(len(data)) != mf.Size {
			return nil, nil, fmt.Errorf("fg: checkpoint restore: %q is %d bytes, manifest says %d",
				mf.Name, len(data), mf.Size)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != mf.SHA256 {
			return nil, nil, fmt.Errorf("fg: checkpoint restore: %q fails digest validation", mf.Name)
		}
		files[mf.Name] = data
	}
	return m.State, files, nil
}

// Clear removes every checkpoint for the rank, so a supervisor can force a
// from-scratch attempt.
func (c *DirCheckpoint) Clear(rank int) error {
	return os.RemoveAll(c.rankDir(rank))
}

// writeFileSync writes data and fsyncs before closing: a checkpoint that
// claims durability must not evaporate with the page cache.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-committed rename survives a crash.
// Filesystems that refuse to sync directories (some CI sandboxes) are
// forgiven: the rename itself is still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
