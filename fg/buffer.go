package fg

import "fmt"

// A Buffer is the unit of data that flows through a pipeline. Its capacity
// is fixed at the pipeline's buffer size; Data[:N] holds the bytes currently
// valid. Buffers correspond to the blocks in which out-of-core programs
// move data, so the buffer size typically equals the block size for disk
// I/O or communication.
//
// Every buffer is tied to the pipeline that injected it and is recycled to
// that pipeline's source by its sink; buffers never jump between pipelines.
type Buffer struct {
	// Data is the buffer's storage. Stages may read and write Data freely
	// but must not reslice it beyond its original capacity.
	Data []byte
	// N is the number of valid bytes at the front of Data. The source
	// resets N to 0 each round; stages producing data set it.
	N int
	// Round is the round in which the source emitted this buffer: 0 for the
	// pipeline's first buffer, 1 for the second, and so on. Stages commonly
	// use it to address the block of the underlying file this buffer
	// carries.
	Round int
	// Meta is free for stages to attach per-buffer information that
	// downstream stages of the same pipeline need.
	Meta any

	pipe    *Pipeline
	aux     []byte
	caboose bool
}

// Pipeline returns the pipeline this buffer belongs to.
func (b *Buffer) Pipeline() *Pipeline { return b.pipe }

// Cap returns the buffer's fixed capacity in bytes.
func (b *Buffer) Cap() int { return cap(b.Data) }

// Bytes returns the valid prefix Data[:N].
func (b *Buffer) Bytes() []byte { return b.Data[:b.N] }

// Aux returns the buffer's auxiliary storage, a second region of the same
// capacity, allocated on first use and retained across rounds. FG provides
// auxiliary buffers so that stages such as dsort's permute can rearrange
// records out of place; pair it with SwapAux to publish the rearranged
// contents.
func (b *Buffer) Aux() []byte {
	if b.aux == nil {
		b.aux = make([]byte, cap(b.Data))
	}
	return b.aux
}

// SwapAux exchanges Data with the auxiliary storage. N is preserved: the
// first N bytes of the former auxiliary region become the buffer's valid
// contents.
func (b *Buffer) SwapAux() {
	aux := b.Aux()
	b.Data, b.aux = aux[:cap(aux)], b.Data
}

// reset prepares a recycled buffer for a new round.
func (b *Buffer) reset(round int) {
	b.Data = b.Data[:cap(b.Data)]
	b.N = 0
	b.Round = round
	b.Meta = nil
}

func (b *Buffer) String() string {
	if b.caboose {
		return fmt.Sprintf("caboose(%s)", b.pipe.name)
	}
	return fmt.Sprintf("buffer(%s, round %d, %d/%d bytes)", b.pipe.name, b.Round, b.N, cap(b.Data))
}
