package fg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collector accumulates byte snapshots conveyed by the last stage.
type collector struct {
	mu   sync.Mutex
	data [][]byte
}

func (c *collector) add(b []byte) {
	cp := make([]byte, len(b))
	copy(cp, b)
	c.mu.Lock()
	c.data = append(c.data, cp)
	c.mu.Unlock()
}

func (c *collector) rounds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}

func TestSingleLinearPipeline(t *testing.T) {
	const rounds = 50
	nw := NewNetwork("linear")
	p := nw.AddPipeline("main", Buffers(3), BufferBytes(8), Rounds(rounds))
	var col collector
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error {
		binary.BigEndian.PutUint64(b.Data, uint64(b.Round))
		b.N = 8
		return nil
	})
	p.AddStage("double", func(ctx *Ctx, b *Buffer) error {
		v := binary.BigEndian.Uint64(b.Bytes())
		binary.BigEndian.PutUint64(b.Data, 2*v)
		return nil
	})
	p.AddStage("consume", func(ctx *Ctx, b *Buffer) error {
		col.add(b.Bytes())
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if col.rounds() != rounds {
		t.Fatalf("consumed %d rounds, want %d", col.rounds(), rounds)
	}
	for i, d := range col.data {
		if got := binary.BigEndian.Uint64(d); got != uint64(2*i) {
			t.Errorf("round %d delivered %d, want %d (in order)", i, got, 2*i)
		}
	}
}

func TestBufferPoolIsRecycled(t *testing.T) {
	// 100 rounds through a pool of 2: the same buffer objects must recycle.
	const rounds = 100
	nw := NewNetwork("recycle")
	p := nw.AddPipeline("main", Buffers(2), BufferBytes(4), Rounds(rounds))
	seen := map[*Buffer]bool{}
	var mu sync.Mutex
	var count int64
	p.AddStage("observe", func(ctx *Ctx, b *Buffer) error {
		mu.Lock()
		seen[b] = true
		mu.Unlock()
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if count != rounds {
		t.Fatalf("stage ran %d times, want %d", count, rounds)
	}
	if len(seen) != 2 {
		t.Errorf("%d distinct buffers circulated, want exactly the pool of 2", len(seen))
	}
}

func TestRoundNumbersAreSequential(t *testing.T) {
	const rounds = 40
	nw := NewNetwork("rounds")
	p := nw.AddPipeline("main", Buffers(4), Rounds(rounds))
	var got []int
	var mu sync.Mutex
	p.AddStage("note", func(ctx *Ctx, b *Buffer) error {
		mu.Lock()
		got = append(got, b.Round)
		mu.Unlock()
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r != i {
			t.Fatalf("buffer %d carries round %d", i, r)
		}
	}
}

func TestZeroRoundsCompletesImmediately(t *testing.T) {
	nw := NewNetwork("zero")
	p := nw.AddPipeline("main", Rounds(0))
	p.AddStage("never", func(ctx *Ctx, b *Buffer) error {
		return errors.New("stage ran with zero rounds")
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeStageConveysPartialAtEOF(t *testing.T) {
	// An accumulator stage packs three 1-byte inputs per output and must
	// flush the final partial buffer when the caboose arrives.
	nw := NewNetwork("partial")
	in := nw.AddPipeline("in", Buffers(3), BufferBytes(1), Rounds(7))
	out := nw.AddPipeline("out", Buffers(2), BufferBytes(3))
	in.AddStage("gen", func(ctx *Ctx, b *Buffer) error {
		b.Data[0] = byte('a' + b.Round)
		b.N = 1
		return nil
	})
	pack := NewStage("pack", func(ctx *Ctx) error {
		ob, ok := ctx.AcceptFrom(out)
		if !ok {
			return errors.New("no output buffer")
		}
		flush := func() bool {
			if ob.N == 0 {
				return true
			}
			ctx.Convey(ob)
			ob, ok = ctx.AcceptFrom(out)
			return ok
		}
		for {
			ib, ok := ctx.AcceptFrom(in)
			if !ok {
				break
			}
			ob.Data[ob.N] = ib.Data[0]
			ob.N++
			ctx.Convey(ib)
			if ob.N == ob.Cap() && !flush() {
				return errors.New("output pipeline dried up")
			}
		}
		flush()
		return nil
	})
	in.Add(pack)
	out.Add(pack)
	var col collector
	out.AddStage("sinklike", func(ctx *Ctx, b *Buffer) error {
		col.add(b.Bytes())
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, d := range col.data {
		all = append(all, d...)
	}
	if string(all) != "abcdefg" {
		t.Fatalf("packed output %q, want %q", all, "abcdefg")
	}
	if len(col.data) != 3 || len(col.data[2]) != 1 {
		t.Errorf("expected 3+3+1 packing, got lengths %v", lengths(col.data))
	}
}

func lengths(bs [][]byte) []int {
	out := make([]int, len(bs))
	for i, b := range bs {
		out[i] = len(b)
	}
	return out
}

func TestFreeStageEarlyReturnOnUnlimitedPipeline(t *testing.T) {
	// Models a receive stage: the pipeline is Unlimited, and the first
	// stage decides when the stream ends. The framework must convey the
	// caboose so downstream stages and the sink finish.
	nw := NewNetwork("early")
	p := nw.AddPipeline("recv", Buffers(2), BufferBytes(8), Unlimited())
	const msgs = 9
	p.AddFreeStage("receive", func(ctx *Ctx) error {
		for i := 0; i < msgs; i++ {
			b, ok := ctx.Accept()
			if !ok {
				return errors.New("source dried up early")
			}
			binary.BigEndian.PutUint64(b.Data, uint64(i))
			b.N = 8
			ctx.Convey(b)
		}
		return nil // early return: received everything we were promised
	})
	var col collector
	p.AddStage("save", func(ctx *Ctx, b *Buffer) error {
		col.add(b.Bytes())
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if col.rounds() != msgs {
		t.Fatalf("saved %d messages, want %d", col.rounds(), msgs)
	}
}

func TestStopEndsUnlimitedPipeline(t *testing.T) {
	nw := NewNetwork("stop")
	p := nw.AddPipeline("main", Buffers(2), BufferBytes(1), Unlimited())
	var processed int64
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error {
		if atomic.AddInt64(&processed, 1) == 5 {
			p.Stop()
		}
		return nil
	})
	done := make(chan error, 1)
	go func() { done <- nw.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("network did not stop within 5s of Stop()")
	}
	if atomic.LoadInt64(&processed) < 5 {
		t.Errorf("processed %d rounds before stop", processed)
	}
}

func TestDisjointPipelinesRunConcurrently(t *testing.T) {
	// A send pipeline and a receive pipeline exchange through a Go channel
	// standing in for the interconnect; rates are unbalanced (2 sends per
	// receive buffer). Mirrors Figure 4.
	nw := NewNetwork("disjoint")
	send := nw.AddPipeline("send", Buffers(3), BufferBytes(4), Rounds(10))
	recv := nw.AddPipeline("recv", Buffers(3), BufferBytes(8), Unlimited())
	wire := make(chan uint32, 100)

	send.AddStage("acquire", func(ctx *Ctx, b *Buffer) error {
		binary.BigEndian.PutUint32(b.Data, uint32(b.Round))
		b.N = 4
		return nil
	})
	send.AddStage("send", func(ctx *Ctx, b *Buffer) error {
		wire <- binary.BigEndian.Uint32(b.Bytes())
		if b.Round == send.Rounds()-1 {
			close(wire)
		}
		return nil
	})

	recv.AddFreeStage("receive", func(ctx *Ctx) error {
		b, ok := ctx.Accept()
		if !ok {
			return errors.New("no receive buffer")
		}
		for v := range wire {
			binary.BigEndian.PutUint32(b.Data[b.N:], v)
			b.N += 4
			if b.N == b.Cap() {
				ctx.Convey(b)
				if b, ok = ctx.Accept(); !ok {
					return errors.New("receive pipeline dried up")
				}
			}
		}
		if b.N > 0 {
			ctx.Convey(b)
		}
		return nil
	})
	var col collector
	recv.AddStage("save", func(ctx *Ctx, b *Buffer) error {
		col.add(b.Bytes())
		return nil
	})

	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	var vals []uint32
	for _, d := range col.data {
		for o := 0; o < len(d); o += 4 {
			vals = append(vals, binary.BigEndian.Uint32(d[o:]))
		}
	}
	if len(vals) != 10 {
		t.Fatalf("received %d values, want 10", len(vals))
	}
	for i, v := range vals {
		if v != uint32(i) {
			t.Errorf("value %d = %d", i, v)
		}
	}
}

// buildMergeTest assembles the Figure 5 structure: k vertical pipelines
// (virtual if asked) carrying sorted runs intersect at a merge stage that
// fills buffers of a horizontal pipeline.
func buildMergeTest(t *testing.T, virtual bool, runs [][]uint64, hBufVals int) []uint64 {
	t.Helper()
	nw := NewNetwork("merge")

	totalVals := 0
	verticals := make([]*Pipeline, len(runs))
	const vBufVals = 3 // values per vertical buffer
	var vg *VirtualGroup
	if virtual {
		vg = nw.AddVirtualGroup("verticals")
	}
	for i, run := range runs {
		totalVals += len(run)
		rounds := (len(run) + vBufVals - 1) / vBufVals
		name := fmt.Sprintf("run%d", i)
		opts := []Option{Buffers(2), BufferBytes(8 * vBufVals), Rounds(rounds)}
		if virtual {
			verticals[i] = vg.AddPipeline(name, opts...)
		} else {
			verticals[i] = nw.AddPipeline(name, opts...)
		}
		run := run
		verticals[i].AddStage("read", func(ctx *Ctx, b *Buffer) error {
			off := b.Round * vBufVals
			n := min(vBufVals, len(run)-off)
			for j := 0; j < n; j++ {
				binary.BigEndian.PutUint64(b.Data[8*j:], run[off+j])
			}
			b.N = 8 * n
			return nil
		})
	}

	horiz := nw.AddPipeline("horizontal", Buffers(2), BufferBytes(8*hBufVals), Unlimited())

	merge := NewStage("merge", func(ctx *Ctx) error {
		// current head buffer and cursor per vertical
		heads := make([]*Buffer, len(verticals))
		idx := make([]int, len(verticals))
		for i, v := range verticals {
			if b, ok := ctx.AcceptFrom(v); ok {
				heads[i] = b
			}
		}
		ob, ok := ctx.AcceptFrom(horiz)
		if !ok {
			return errors.New("no horizontal buffer")
		}
		for {
			best := -1
			var bestVal uint64
			for i, h := range heads {
				if h == nil {
					continue
				}
				v := binary.BigEndian.Uint64(h.Data[8*idx[i]:])
				if best < 0 || v < bestVal {
					best, bestVal = i, v
				}
			}
			if best < 0 {
				break
			}
			binary.BigEndian.PutUint64(ob.Data[ob.N:], bestVal)
			ob.N += 8
			if ob.N == ob.Cap() {
				ctx.Convey(ob)
				if ob, ok = ctx.AcceptFrom(horiz); !ok {
					return errors.New("horizontal pipeline dried up")
				}
			}
			idx[best]++
			if 8*idx[best] == heads[best].N {
				ctx.Convey(heads[best]) // spent input buffer to its sink
				idx[best] = 0
				if b, ok := ctx.AcceptFrom(verticals[best]); ok {
					heads[best] = b
				} else {
					heads[best] = nil
				}
			}
		}
		if ob.N > 0 {
			ctx.Convey(ob)
		}
		return nil
	})
	for _, v := range verticals {
		v.Add(merge)
	}
	horiz.Add(merge)

	var col collector
	horiz.AddStage("save", func(ctx *Ctx, b *Buffer) error {
		col.add(b.Bytes())
		return nil
	})

	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	var out []uint64
	for _, d := range col.data {
		for o := 0; o < len(d); o += 8 {
			out = append(out, binary.BigEndian.Uint64(d[o:]))
		}
	}
	if len(out) != totalVals {
		t.Fatalf("merged %d values, want %d", len(out), totalVals)
	}
	return out
}

func runsForMerge() [][]uint64 {
	return [][]uint64{
		{1, 4, 7, 10, 13, 16, 19},
		{2, 5, 8, 11},
		{3, 6, 9, 12, 15, 18, 21, 24, 27, 30},
		{0, 14, 17, 20},
		{22, 23, 25, 26, 28},
	}
}

func TestIntersectingPipelinesMerge(t *testing.T) {
	out := buildMergeTest(t, false, runsForMerge(), 4)
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("merge output out of order at %d: %d < %d", i, out[i], out[i-1])
		}
	}
}

func TestVirtualPipelinesMerge(t *testing.T) {
	out := buildMergeTest(t, true, runsForMerge(), 4)
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("virtual merge output out of order at %d: %d < %d", i, out[i], out[i-1])
		}
	}
}

func TestVirtualMergeManyRuns(t *testing.T) {
	// Hundreds of virtual pipelines — the scenario that motivated virtual
	// stages, where one thread per stage would explode.
	const k = 200
	runs := make([][]uint64, k)
	for i := range runs {
		for j := 0; j < 5; j++ {
			runs[i] = append(runs[i], uint64(j*k+i))
		}
	}
	out := buildMergeTest(t, true, runs, 16)
	for i := range out {
		if out[i] != uint64(i) {
			t.Fatalf("value %d = %d; merged stream should be 0..%d", i, out[i], k*5-1)
		}
	}
}

func TestStageErrorAbortsRun(t *testing.T) {
	nw := NewNetwork("err")
	p := nw.AddPipeline("main", Buffers(2), Rounds(100))
	boom := errors.New("boom")
	p.AddStage("fail", func(ctx *Ctx, b *Buffer) error {
		if b.Round == 3 {
			return boom
		}
		return nil
	})
	p.AddStage("after", func(ctx *Ctx, b *Buffer) error { return nil })
	err := nw.Run()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want wrapped boom", err)
	}
	if nw.Err() == nil {
		t.Error("Err() is nil after failure")
	}
}

func TestFreeStageErrorAbortsRun(t *testing.T) {
	nw := NewNetwork("err2")
	p := nw.AddPipeline("main", Buffers(2), Unlimited())
	boom := errors.New("free boom")
	p.AddFreeStage("fail", func(ctx *Ctx) error {
		ctx.Accept()
		return boom
	})
	p.AddStage("after", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want wrapped boom", err)
	}
}

func TestAuxSwap(t *testing.T) {
	nw := NewNetwork("aux")
	p := nw.AddPipeline("main", Buffers(1), BufferBytes(4), Rounds(3))
	var col collector
	p.AddStage("fill", func(ctx *Ctx, b *Buffer) error {
		copy(b.Data, "abcd")
		b.N = 4
		return nil
	})
	p.AddStage("reverse", func(ctx *Ctx, b *Buffer) error {
		aux := b.Aux()
		for i, c := range b.Bytes() {
			aux[b.N-1-i] = c
		}
		b.SwapAux()
		return nil
	})
	p.AddStage("check", func(ctx *Ctx, b *Buffer) error {
		col.add(b.Bytes())
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	for _, d := range col.data {
		if string(d) != "dcba" {
			t.Fatalf("after SwapAux got %q, want dcba", d)
		}
	}
}

func TestSharedRoundStagePanics(t *testing.T) {
	nw := NewNetwork("bad")
	a := nw.AddPipeline("a")
	b := nw.AddPipeline("b")
	s := a.AddStage("round", func(ctx *Ctx, b *Buffer) error { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("sharing a round stage did not panic")
		}
	}()
	b.Add(s)
}

func TestAddingStageTwicePanics(t *testing.T) {
	nw := NewNetwork("bad2")
	p := nw.AddPipeline("p")
	s := p.AddFreeStage("s", func(ctx *Ctx) error { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("re-adding a stage to the same pipeline did not panic")
		}
	}()
	p.Add(s)
}

func TestAcceptFromForeignPipelinePanics(t *testing.T) {
	nw := NewNetwork("bad3")
	p := nw.AddPipeline("p", Rounds(1), Buffers(1))
	q := nw.AddPipeline("q", Rounds(1), Buffers(1))
	q.AddStage("noop", func(ctx *Ctx, b *Buffer) error { return nil })
	p.AddFreeStage("thief", func(ctx *Ctx) error {
		defer func() { recover() }()
		ctx.AcceptFrom(q)
		return errors.New("AcceptFrom on foreign pipeline did not panic")
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRestrictedCtxPanics(t *testing.T) {
	nw := NewNetwork("bad4")
	p := nw.AddPipeline("p", Rounds(1), Buffers(1))
	p.AddStage("round", func(ctx *Ctx, b *Buffer) error {
		defer func() { recover() }()
		ctx.Convey(b)
		return errors.New("Convey from a round stage did not panic")
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkReuseForbidden(t *testing.T) {
	nw := NewNetwork("once")
	p := nw.AddPipeline("p", Rounds(1), Buffers(1))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	nw.Run()
}

func TestEmptyNetworkErrors(t *testing.T) {
	if err := NewNetwork("empty").Run(); err == nil {
		t.Fatal("empty network ran successfully")
	}
	nw := NewNetwork("nostages")
	nw.AddPipeline("p")
	if err := nw.Run(); err == nil {
		t.Fatal("pipeline without stages ran successfully")
	}
}

func TestVirtualGroupStructuralValidation(t *testing.T) {
	nw := NewNetwork("badgroup")
	vg := nw.AddVirtualGroup("g")
	a := vg.AddPipeline("a", Rounds(1))
	b := vg.AddPipeline("b", Rounds(1))
	a.AddStage("s1", func(ctx *Ctx, b *Buffer) error { return nil })
	a.AddStage("s2", func(ctx *Ctx, b *Buffer) error { return nil })
	b.AddStage("s1", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err == nil {
		t.Fatal("mismatched virtual group ran successfully")
	}
}

func TestStatsReportActivity(t *testing.T) {
	nw := NewNetwork("stats")
	p := nw.AddPipeline("main", Buffers(2), Rounds(10))
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if len(st.Pipelines) != 1 || len(st.Stages) != 1 {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.Pipelines[0].Rounds != 10 {
		t.Errorf("pipeline rounds = %d, want 10", st.Pipelines[0].Rounds)
	}
	sg := st.Stages[0]
	if sg.Rounds != 10 {
		t.Errorf("stage rounds = %d, want 10", sg.Rounds)
	}
	if sg.Work < 8*time.Millisecond {
		t.Errorf("stage work = %v, want >= ~10ms", sg.Work)
	}
	if st.String() == "" {
		t.Error("Stats.String is empty")
	}
}

func TestPipeliningOverlapsLatency(t *testing.T) {
	// Three stages each sleeping 2 ms for 12 rounds: serialized that is
	// ~72 ms; with 3 buffers the pipeline should approach ~24 ms + ramp.
	// This is FG's raison d'etre, so we assert a conservative 2x speedup.
	run := func(buffers int) time.Duration {
		nw := NewNetwork("overlap")
		p := nw.AddPipeline("main", Buffers(buffers), BufferBytes(1), Rounds(12))
		stage := func(ctx *Ctx, b *Buffer) error {
			time.Sleep(2 * time.Millisecond)
			return nil
		}
		p.AddStage("a", stage)
		p.AddStage("b", stage)
		p.AddStage("c", stage)
		start := time.Now()
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := run(1)
	pipelined := run(3)
	if pipelined*2 >= serial {
		t.Errorf("pipelined %v vs serial %v; expected at least 2x overlap", pipelined, serial)
	}
}

func TestManyDisjointPipelines(t *testing.T) {
	// A network with many independent pipelines completes them all.
	nw := NewNetwork("many")
	var total int64
	for i := 0; i < 20; i++ {
		p := nw.AddPipeline(fmt.Sprintf("p%d", i), Buffers(2), Rounds(5))
		p.AddStage("count", func(ctx *Ctx, b *Buffer) error {
			atomic.AddInt64(&total, 1)
			return nil
		})
	}
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Fatalf("processed %d rounds, want 100", total)
	}
}

func TestBufferMetaTravelsWithBuffer(t *testing.T) {
	nw := NewNetwork("meta")
	p := nw.AddPipeline("main", Buffers(2), Rounds(6))
	p.AddStage("tag", func(ctx *Ctx, b *Buffer) error {
		b.Meta = fmt.Sprintf("round-%d", b.Round)
		return nil
	})
	var bad int64
	p.AddStage("check", func(ctx *Ctx, b *Buffer) error {
		if b.Meta != fmt.Sprintf("round-%d", b.Round) {
			atomic.AddInt64(&bad, 1)
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("%d buffers lost their Meta", bad)
	}
	// Meta must be cleared on recycle: with 2 buffers and 6 rounds the tag
	// stage sees recycled buffers; if Meta leaked, check above would pass
	// but a fresh buffer should start nil.
	nw2 := NewNetwork("meta2")
	p2 := nw2.AddPipeline("main", Buffers(1), Rounds(2))
	var leaked int64
	p2.AddStage("observe", func(ctx *Ctx, b *Buffer) error {
		if b.Meta != nil {
			atomic.AddInt64(&leaked, 1)
		}
		b.Meta = "junk"
		return nil
	})
	if err := nw2.Run(); err != nil {
		t.Fatal(err)
	}
	if leaked != 0 {
		t.Error("Meta survived recycling")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPipelineAccessors(t *testing.T) {
	nw := NewNetwork("acc")
	p := nw.AddPipeline("named", Buffers(5), BufferBytes(123), Rounds(7))
	if p.Name() != "named" || p.NumBuffers() != 5 || p.BufferBytes() != 123 || p.Rounds() != 7 {
		t.Errorf("accessors: %q %d %d %d", p.Name(), p.NumBuffers(), p.BufferBytes(), p.Rounds())
	}
	if p.Network() != nw {
		t.Error("Network accessor wrong")
	}
	u := nw.AddPipeline("unlimited", Unlimited())
	if u.Rounds() != -1 {
		t.Errorf("unlimited Rounds = %d", u.Rounds())
	}
	if nw.Name() != "acc" {
		t.Errorf("network Name = %q", nw.Name())
	}
}

func TestVirtualGroupPipelinesAccessor(t *testing.T) {
	nw := NewNetwork("vga")
	vg := nw.AddVirtualGroup("g")
	a := vg.AddPipeline("a", Rounds(1))
	b := vg.AddPipeline("b", Rounds(1))
	got := vg.Pipelines()
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Error("Pipelines accessor wrong")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	nw := NewNetwork("stop2")
	p := nw.AddPipeline("main", Buffers(2), Unlimited())
	var n int64
	p.AddStage("count", func(ctx *Ctx, b *Buffer) error {
		if atomic.AddInt64(&n, 1) == 3 {
			p.Stop()
			p.Stop() // double stop must be harmless
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStageNameAccessor(t *testing.T) {
	nw := NewNetwork("sn")
	p := nw.AddPipeline("p", Rounds(0))
	s := p.AddStage("reader", func(ctx *Ctx, b *Buffer) error { return nil })
	if s.Name() != "reader" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestOptionValidationPanics(t *testing.T) {
	nw := NewNetwork("opts")
	for _, opt := range []Option{Buffers(0), BufferBytes(0), Rounds(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid option did not panic")
				}
			}()
			nw.AddPipeline("bad", opt)
		}()
	}
}

func TestNoGoroutineLeakAfterRun(t *testing.T) {
	// Every framework goroutine must exit by the time Run returns.
	before := runtime.NumGoroutine()
	for trial := 0; trial < 5; trial++ {
		nw := NewNetwork("leak")
		p := nw.AddPipeline("a", Buffers(3), Rounds(20))
		p.AddStage("s1", func(ctx *Ctx, b *Buffer) error { return nil })
		p.AddStage("s2", func(ctx *Ctx, b *Buffer) error { return nil })
		q := nw.AddPipeline("b", Buffers(2), Unlimited())
		q.AddFreeStage("early", func(ctx *Ctx) error {
			for i := 0; i < 3; i++ {
				b, ok := ctx.Accept()
				if !ok {
					return nil
				}
				ctx.Convey(b)
			}
			return nil
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after 5 network runs", before, runtime.NumGoroutine())
}
