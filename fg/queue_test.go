package fg

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/fg-go/fg/internal/spsc"
)

// TestQueueSelectionStraightLine: every queue of a plain linear pipeline has
// one producing and one consuming goroutine, so the build must select the
// lock-free SPSC ring for all of them.
func TestQueueSelectionStraightLine(t *testing.T) {
	nw := NewNetwork("sel")
	p := nw.AddPipeline("main", Buffers(2), BufferBytes(8), Rounds(5))
	p.AddStage("a", func(ctx *Ctx, b *Buffer) error { return nil })
	p.AddStage("b", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	for i, q := range p.group.queues {
		if _, ok := q.(*ringQueue); !ok {
			t.Errorf("queue %d is %T, want *ringQueue on a straight-line edge", i, q)
		}
	}
}

// TestQueueSelectionReplicated: a replicated stage's workers share its input
// and output queues (and push the circulating caboose back into the input),
// so both edges must fall back to channels; edges not touching the
// replicated slot stay rings.
func TestQueueSelectionReplicated(t *testing.T) {
	nw := NewNetwork("sel")
	p := nw.AddPipeline("main", Buffers(4), BufferBytes(8), Rounds(20))
	p.AddStage("pre", func(ctx *Ctx, b *Buffer) error { return nil })
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error { return nil }).Replicate(3)
	p.AddStage("post", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	qs := p.group.queues // [0]->pre [1]->work [2]->post [3]->sink
	for i, wantRing := range []bool{true, false, false, true} {
		_, isRing := qs[i].(*ringQueue)
		if isRing != wantRing {
			t.Errorf("queue %d is %T, want ring=%v around a replicated slot", i, qs[i], wantRing)
		}
	}
}

// TestQueueSelectionJoin: a join's input queue is fed by every branch tail
// plus the fork's bypass — multiple producers — so it must be a channel,
// while the fork's own input edge stays a ring.
func TestQueueSelectionJoin(t *testing.T) {
	nw := NewNetwork("sel")
	p := nw.AddPipeline("main", Buffers(4), BufferBytes(8), Rounds(20))
	p.AddStage("produce", func(ctx *Ctx, b *Buffer) error { return nil })
	fork := p.AddFork("route", 2, func(ctx *Ctx, b *Buffer) (int, error) { return b.Round & 1, nil })
	fork.Branch(0).AddStage("a", func(ctx *Ctx, b *Buffer) error { return nil })
	fork.Branch(1).AddStage("b", func(ctx *Ctx, b *Buffer) error { return nil })
	fork.Join()
	p.AddStage("post", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	qs := p.group.queues
	joinPos := -1
	for i, s := range p.stages {
		if s.join != nil {
			joinPos = i
		}
	}
	if joinPos < 0 {
		t.Fatal("no join stage on the spine")
	}
	if _, ok := qs[joinPos].(*chanQueue); !ok {
		t.Errorf("join input queue is %T, want *chanQueue (many producers)", qs[joinPos])
	}
	if _, ok := qs[0].(*ringQueue); !ok {
		t.Errorf("source edge is %T, want *ringQueue", qs[0])
	}
	if _, ok := qs[len(qs)-1].(*ringQueue); !ok {
		t.Errorf("sink edge is %T, want *ringQueue", qs[len(qs)-1])
	}
}

// TestUseChannelQueuesForcesChannels: the A/B escape hatch must force
// channel queues everywhere and report the previous setting.
func TestUseChannelQueuesForcesChannels(t *testing.T) {
	prev := UseChannelQueues(true)
	defer UseChannelQueues(prev)
	if again := UseChannelQueues(true); !again {
		t.Error("UseChannelQueues(true) twice reported previous=false")
	}
	nw := NewNetwork("forced")
	p := nw.AddPipeline("main", Buffers(2), BufferBytes(8), Rounds(5))
	p.AddStage("a", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	for i, q := range p.group.queues {
		if _, ok := q.(*chanQueue); !ok {
			t.Errorf("queue %d is %T under UseChannelQueues(true), want *chanQueue", i, q)
		}
	}
}

// TestSlowPushCountsAndHook drives both queue implementations through a
// deliberately undersized queue: the push that misses the fast path must
// bump slowPushes and fire the build-time hook, and FIFO order must hold
// across the slow path.
func TestSlowPushCountsAndHook(t *testing.T) {
	impls := []struct {
		name string
		q    queue
	}{
		{"chan", &chanQueue{ch: make(chan *Buffer, 1)}},
		{"ring", &ringQueue{r: spsc.New[*Buffer](1)}},
	}
	for _, tc := range impls {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.q
			done := make(chan struct{})
			var fired atomic.Int64
			q.onSlowPush(func() { fired.Add(1) })
			b1, b2 := &Buffer{Round: 1}, &Buffer{Round: 2}
			if err := q.push(b1, done); err != nil {
				t.Fatal(err)
			}
			if n := q.slowPushes(); n != 0 {
				t.Fatalf("fast push counted as slow (%d)", n)
			}
			pushed := make(chan error, 1)
			go func() { pushed <- q.push(b2, done) }()
			deadline := time.Now().Add(5 * time.Second)
			for q.slowPushes() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("blocked push never counted as slow")
				}
				time.Sleep(time.Millisecond)
			}
			for _, want := range []*Buffer{b1, b2} {
				got, err := q.pop(done)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("popped round %d, want %d (FIFO across slow path)", got.Round, want.Round)
				}
			}
			if err := <-pushed; err != nil {
				t.Fatal(err)
			}
			if n := q.slowPushes(); n != 1 {
				t.Errorf("slowPushes = %d, want 1", n)
			}
			if n := fired.Load(); n != 1 {
				t.Errorf("hook fired %d times, want 1", n)
			}
		})
	}
}

// TestSlowPushNOnRing: a batched push whose batch does not fit counts the
// stall and still delivers the whole batch in order.
func TestSlowPushNOnRing(t *testing.T) {
	q := &ringQueue{r: spsc.New[*Buffer](2)}
	done := make(chan struct{})
	batch := []*Buffer{{Round: 0}, {Round: 1}, {Round: 2}, {Round: 3}}
	pushed := make(chan error, 1)
	go func() { pushed <- q.pushN(batch, done) }()
	deadline := time.Now().Add(5 * time.Second)
	for q.slowPushes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("overfull pushN never counted as slow")
		}
		time.Sleep(time.Millisecond)
	}
	for i := range batch {
		b, err := q.pop(done)
		if err != nil {
			t.Fatal(err)
		}
		if b.Round != i {
			t.Fatalf("popped round %d at position %d", b.Round, i)
		}
	}
	if err := <-pushed; err != nil {
		t.Fatal(err)
	}
}

// TestSlowPushReachesFlightRecorder: the hook wired at build time must land
// an EventSlowPush in the network's flight recorder, tagged with the edge's
// consumer.
func TestSlowPushReachesFlightRecorder(t *testing.T) {
	nw := NewNetwork("breach")
	fr := NewFlightRecorder(16)
	nw.SetFlightRecorder(fr)
	p := nw.AddPipeline("main", Buffers(2), BufferBytes(8), Rounds(3))
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	// The run leaves the queues empty. Overfill the stage's input queue by
	// hand: the fast path absorbs cap() pushes, and one more trips the slow
	// path, which fires the hook before blocking (and then bails out on the
	// closed done channel rather than blocking the test).
	q := p.group.queues[0]
	for i := 0; i < q.cap(); i++ {
		if err := q.push(&Buffer{}, nw.done); err != nil {
			t.Fatal(err)
		}
	}
	_ = q.push(&Buffer{}, nw.done)
	if n := q.slowPushes(); n != 1 {
		t.Fatalf("slowPushes = %d, want 1", n)
	}
	var events int
	for _, e := range fr.Snapshot() {
		if e.Kind == EventSlowPush {
			events++
			if e.Stage != "work" || e.Pipeline != "main" {
				t.Errorf("slow-push event tagged %s/%s, want main/work", e.Pipeline, e.Stage)
			}
		}
	}
	if events != 1 {
		t.Errorf("flight recorder holds %d slow-push events, want 1", events)
	}
}

// TestSlowPushesSurfaceInStats: the per-queue counter must flow into
// StageStats alongside the queue's occupancy and capacity.
func TestSlowPushesSurfaceInStats(t *testing.T) {
	nw := NewNetwork("stats")
	p := nw.AddPipeline("main", Buffers(2), BufferBytes(8), Rounds(3))
	p.AddStage("work", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	q := p.group.queues[0]
	for i := 0; i <= q.cap(); i++ {
		_ = q.push(&Buffer{}, nw.done)
	}
	st := nw.Stats()
	var found bool
	for _, s := range st.Stages {
		if s.Stage != "work" {
			continue
		}
		found = true
		if s.QueueCap != q.cap() {
			t.Errorf("QueueCap = %d, want %d", s.QueueCap, q.cap())
		}
		if s.QueueLen != q.cap() {
			t.Errorf("QueueLen = %d, want %d (queue left brim full)", s.QueueLen, q.cap())
		}
		if s.SlowPushes != 1 {
			t.Errorf("SlowPushes = %d, want 1", s.SlowPushes)
		}
	}
	if !found {
		t.Fatal("stage \"work\" missing from stats")
	}
}

// TestEffectiveBuffersClamp exercises the clamping contract of
// SetEffectiveBuffers without running the network.
func TestEffectiveBuffersClamp(t *testing.T) {
	nw := NewNetwork("clamp")
	p := nw.AddPipeline("main", Buffers(4), Rounds(1))
	if got := p.EffectiveBuffers(); got != 4 {
		t.Errorf("default EffectiveBuffers = %d, want NumBuffers = 4", got)
	}
	p.SetEffectiveBuffers(99)
	if got := p.EffectiveBuffers(); got != 4 {
		t.Errorf("EffectiveBuffers after Set(99) = %d, want 4", got)
	}
	p.SetEffectiveBuffers(0)
	if got := p.EffectiveBuffers(); got != 1 {
		t.Errorf("EffectiveBuffers after Set(0) = %d, want 1", got)
	}
	p.SetEffectiveBuffers(2)
	if got := p.EffectiveBuffers(); got != 2 {
		t.Errorf("EffectiveBuffers after Set(2) = %d, want 2", got)
	}
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEffectiveBuffersLimitCirculation: with the effective count lowered
// before the run, the source must circulate only that many distinct buffer
// objects while still completing every round.
func TestEffectiveBuffersLimitCirculation(t *testing.T) {
	const rounds = 60
	nw := NewNetwork("park")
	p := nw.AddPipeline("main", Buffers(4), BufferBytes(8), Rounds(rounds))
	p.SetEffectiveBuffers(1)
	seen := map[*Buffer]bool{}
	var count int
	p.AddStage("observe", func(ctx *Ctx, b *Buffer) error {
		seen[b] = true // single goroutine: no lock needed
		count++
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if count != rounds {
		t.Fatalf("ran %d rounds, want %d", count, rounds)
	}
	if len(seen) != 1 {
		t.Errorf("%d distinct buffers circulated, want 1 (rest parked)", len(seen))
	}
}

// TestEffectiveBuffersRaiseMidRun: raising the effective count mid-run must
// re-inject parked buffers so more objects enter circulation, and the run
// must complete all its rounds.
func TestEffectiveBuffersRaiseMidRun(t *testing.T) {
	const rounds = 200
	nw := NewNetwork("reinject")
	p := nw.AddPipeline("main", Buffers(4), BufferBytes(8), Rounds(rounds))
	p.SetEffectiveBuffers(1)
	seen := map[*Buffer]bool{}
	var count int
	p.AddStage("observe", func(ctx *Ctx, b *Buffer) error {
		seen[b] = true
		count++
		if count == 10 {
			p.SetEffectiveBuffers(4)
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if count != rounds {
		t.Fatalf("ran %d rounds, want %d", count, rounds)
	}
	if len(seen) != 4 {
		t.Errorf("%d distinct buffers circulated after the raise, want all 4", len(seen))
	}
}
