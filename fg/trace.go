package fg

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event tracing. A Tracer attached to a network records, for every stage,
// when it was working on a buffer and when it was waiting for one. The
// resulting timeline makes FG's latency hiding visible: a well-overlapped
// network shows the stages' work intervals interleaved in time rather than
// stacked end to end. cmd/fgdemo renders traces as an ASCII Gantt chart;
// WriteChromeTrace exports the same timeline as Chrome trace-event JSON for
// chrome://tracing and Perfetto.

// An Event records one stage activity interval.
type Event struct {
	Stage    string
	Pipeline string
	Kind     EventKind
	// Round is the round of the buffer involved: the buffer worked on, the
	// buffer whose arrival ended a wait, or the buffer a retried attempt
	// held. -1 when no buffer is attached (end-of-stream waits, comm events
	// recorded from outside the network).
	Round int
	// Bytes is the payload size for comm events; 0 otherwise.
	Bytes int64
	// Xfer is the cluster-assigned transfer ID for comm events (0 = none).
	// The same ID appears on the sender's and the receiver's event, so
	// WriteChromeTrace can emit flow arrows linking the two — across trace
	// files, once merged with MergeChromeTraces.
	Xfer  int64
	Start time.Duration // since the tracer's epoch
	End   time.Duration
}

// EventKind distinguishes the activities a tracer records.
type EventKind int

const (
	// EventWork covers a stage function invocation for one buffer.
	EventWork EventKind = iota
	// EventWait covers a blocked accept.
	EventWait
	// EventRetry covers one failed attempt of a Retry-wrapped stage,
	// including the backoff that follows it.
	EventRetry
	// EventComm covers one communication operation (a cluster send or
	// receive), recorded through Record by code outside the network.
	EventComm
	// EventSlowPush marks an inter-stage queue push that missed its
	// non-blocking fast path — a violation of the queues' sized-to-never-
	// fill invariant, recorded (zero-length, into the flight recorder) so
	// capacity-sizing bugs surface instead of hiding as latency. Stage
	// names the edge's consumer.
	EventSlowPush
)

func (k EventKind) String() string {
	switch k {
	case EventWork:
		return "work"
	case EventWait:
		return "wait"
	case EventRetry:
		return "retry"
	case EventComm:
		return "comm"
	case EventSlowPush:
		return "slow-push"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// A Tracer collects events from one or more network runs (dsort attaches
// one tracer to every pass's network, so the passes share a timeline). The
// zero value is unused; create with NewTracer and attach with
// Network.SetTracer before Run.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	events  []Event
	limit   int
	dropped atomic.Int64
}

// NewTracer creates a tracer retaining at most limit events (0 means a
// generous default). Events past the limit are dropped — counted by
// Dropped — keeping tracing safe for long runs.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 1 << 16
	}
	return &Tracer{epoch: time.Now(), limit: limit}
}

// Record adds an event. The framework calls it for work, wait, and retry
// intervals; external recorders (the cluster's communication observer, say)
// may call it directly with intervals converted through Span. Events past
// the tracer's limit are dropped and counted.
func (tr *Tracer) Record(e Event) {
	tr.mu.Lock()
	if len(tr.events) < tr.limit {
		tr.events = append(tr.events, e)
		tr.mu.Unlock()
		return
	}
	tr.mu.Unlock()
	tr.dropped.Add(1)
}

// Dropped returns how many events were discarded because the tracer was
// full. A non-zero count means the timeline is truncated; raise the limit
// passed to NewTracer to capture the whole run.
func (tr *Tracer) Dropped() int64 { return tr.dropped.Load() }

// Span converts a wall-clock interval into the tracer's epoch-relative
// form, for building Events outside the framework.
func (tr *Tracer) Span(start, end time.Time) (s, e time.Duration) {
	return start.Sub(tr.epoch), end.Sub(tr.epoch)
}

// Events returns the recorded events in chronological start order.
func (tr *Tracer) Events() []Event {
	tr.mu.Lock()
	out := append([]Event(nil), tr.events...)
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// SetTracer attaches a tracer to the network; every round stage's work and
// wait intervals are recorded, as are free stages' accept waits and retried
// attempts of Retry-wrapped stages. Attach before Run. Several networks may
// share one tracer.
func (nw *Network) SetTracer(tr *Tracer) {
	nw.mustNotBeStarted()
	nw.tracer = tr
}

// emitTrace records one interval into the attached tracer and flight
// recorder, each against its own epoch. The callers have already checked
// that at least one sink is attached, so an unobserved network never
// reaches this path.
func (nw *Network) emitTrace(kind EventKind, s *Stage, p *Pipeline, round int, start, now time.Time) {
	e := Event{Stage: s.name, Pipeline: p.name, Kind: kind, Round: round}
	if tr := nw.tracer; tr != nil {
		e.Start, e.End = start.Sub(tr.epoch), now.Sub(tr.epoch)
		tr.Record(e)
	}
	if fr := nw.flight; fr != nil {
		e.Start, e.End = start.Sub(fr.epoch), now.Sub(fr.epoch)
		fr.Record(e)
	}
}

// traceWork records a work interval if tracing or flight recording is on.
func (nw *Network) traceWork(s *Stage, p *Pipeline, round int, start time.Time) {
	if nw.tracer == nil && nw.flight == nil {
		return
	}
	nw.emitTrace(EventWork, s, p, round, start, time.Now())
}

// traceWait records a wait interval if tracing or flight recording is on
// and it is long enough to matter (sub-10us waits are queue handoffs, not
// stalls). round is the round of the buffer whose arrival ended the wait,
// or -1 when the wait ended in end-of-stream or shutdown.
func (nw *Network) traceWait(s *Stage, p *Pipeline, round int, start time.Time) {
	if nw.tracer == nil && nw.flight == nil {
		return
	}
	now := time.Now()
	if now.Sub(start) < 10*time.Microsecond {
		return
	}
	nw.emitTrace(EventWait, s, p, round, start, now)
}

// traceRetry records one failed attempt of a Retry-wrapped stage.
func (nw *Network) traceRetry(s *Stage, p *Pipeline, round int, start time.Time) {
	if nw.tracer == nil && nw.flight == nil {
		return
	}
	nw.emitTrace(EventRetry, s, p, round, start, time.Now())
}

// noteSlowPush records a queue invariant violation — a push that missed
// its non-blocking fast path — into the flight recorder, as a zero-length
// event naming the group and the edge's consuming stage. Installed on
// every queue at build time; the per-queue counter feeds Stats regardless,
// so the breach is visible even without a flight recorder attached.
func (nw *Network) noteSlowPush(group, consumer string) {
	fr := nw.flight
	if fr == nil {
		return
	}
	now := time.Now()
	s, e := fr.Span(now, now)
	fr.Record(Event{Stage: consumer, Pipeline: group, Kind: EventSlowPush, Round: -1, Start: s, End: e})
}

// Gantt renders the trace as an ASCII chart: one row per stage, time
// flowing right, '#' for work, '.' for waiting, 'r' for retried attempts,
// and '~' for communication. width is the chart width in characters.
func (tr *Tracer) Gantt(width int) string {
	events := tr.Events()
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width <= 0 {
		width = 80
	}
	var maxEnd time.Duration
	rows := map[string][]Event{}
	var order []string
	for _, e := range events {
		key := e.Pipeline + "/" + e.Stage
		if _, seen := rows[key]; !seen {
			order = append(order, key)
		}
		rows[key] = append(rows[key], e)
		if e.End > maxEnd {
			maxEnd = e.End
		}
	}
	if maxEnd == 0 {
		maxEnd = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %v total, %d events", maxEnd.Round(time.Millisecond), len(events))
	if d := tr.Dropped(); d > 0 {
		fmt.Fprintf(&b, " (%d dropped: timeline truncated)", d)
	}
	fmt.Fprintf(&b, " ('#'=work, '.'=wait, 'r'=retry, '~'=comm)\n")
	for _, key := range order {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for _, e := range rows[key] {
			from := int(int64(e.Start) * int64(width) / int64(maxEnd))
			to := int(int64(e.End) * int64(width) / int64(maxEnd))
			if from < 0 {
				from = 0
			}
			if to >= width {
				to = width - 1
			}
			var mark byte
			switch e.Kind {
			case EventWork:
				mark = '#'
			case EventWait:
				mark = '.'
			case EventRetry:
				mark = 'r'
			default:
				mark = '~'
			}
			for i := from; i <= to; i++ {
				if mark == '#' || line[i] == ' ' {
					line[i] = mark
				}
			}
		}
		fmt.Fprintf(&b, "%-28s |%s|\n", key, line)
	}
	return b.String()
}

// chromeEvent is one entry of the Chrome trace-event format. The fields and
// their one-letter names are fixed by the format: ph "X" is a complete
// event with a ts/dur pair in microseconds, ph "M" is metadata (used to
// name the rows), ph "s"/"f" are flow start/finish events bound by ID.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container variant of the format, which
// both chrome://tracing and Perfetto load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// traceMetaName is the metadata event WriteChromeTrace plants in every
// trace: its args carry the recording epoch (Unix nanoseconds) so
// MergeChromeTraces can align timelines recorded against different epochs,
// and the dropped/overwritten count so consumers learn the timeline is
// incomplete without parsing a Gantt header.
const traceMetaName = "fg_trace_meta"

// WriteChromeTrace exports the recorded events as Chrome trace-event JSON,
// loadable in chrome://tracing or Perfetto. Each pipeline/stage row becomes
// one named thread; work, wait, retry, and comm intervals become complete
// ("X") events categorized by kind, carrying the round (and byte count for
// comm) in their args. A comm event carrying a transfer ID additionally
// emits a flow event — "s" on a "...send" stage, "f" on a "...recv" stage —
// so the sender's and receiver's slices are linked by an arrow, across
// files once merged with MergeChromeTraces. Events are emitted in
// chronological start order with timestamps in microseconds since the
// tracer's epoch; an fg_trace_meta metadata event records the epoch and the
// dropped-event count.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	return writeChromeJSON(w, tr.Events(), tr.epoch, tr.Dropped())
}

// writeChromeJSON renders events (already in start order) as one
// Chrome-trace document; shared by Tracer and FlightRecorder.
func writeChromeJSON(w io.Writer, events []Event, epoch time.Time, dropped int64) error {
	const pid = 1
	tidOf := map[string]int{}
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	out.TraceEvents = []chromeEvent{{
		Name: traceMetaName,
		Ph:   "M",
		Pid:  pid,
		Args: map[string]any{
			"epoch_unix_nano": epoch.UnixNano(),
			"dropped":         dropped,
		},
	}}
	for _, e := range events {
		key := e.Pipeline + "/" + e.Stage
		tid, ok := tidOf[key]
		if !ok {
			tid = len(tidOf)
			tidOf[key] = tid
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name",
				Ph:   "M",
				Pid:  pid,
				Tid:  tid,
				Args: map[string]any{"name": key},
			})
		}
	}
	for _, e := range events {
		args := map[string]any{"round": e.Round, "pipeline": e.Pipeline}
		if e.Bytes > 0 {
			args["bytes"] = e.Bytes
		}
		if e.Xfer != 0 {
			args["xfer"] = e.Xfer
		}
		ts := float64(e.Start) / float64(time.Microsecond)
		dur := float64(e.End-e.Start) / float64(time.Microsecond)
		tid := tidOf[e.Pipeline+"/"+e.Stage]
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Stage,
			Cat:  e.Kind.String(),
			Ph:   "X",
			Ts:   ts,
			Dur:  dur,
			Pid:  pid,
			Tid:  tid,
			Args: args,
		})
		if e.Kind == EventComm && e.Xfer != 0 {
			flow := chromeEvent{
				Name: "xfer",
				Cat:  "comm",
				Ts:   ts + dur,
				Pid:  pid,
				Tid:  tid,
				ID:   strconv.FormatInt(e.Xfer, 10),
			}
			switch {
			case strings.HasSuffix(e.Stage, "send"):
				flow.Ph = "s"
			case strings.HasSuffix(e.Stage, "recv"):
				flow.Ph = "f"
				flow.Bp = "e"
			default:
				continue
			}
			out.TraceEvents = append(out.TraceEvents, flow)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// MergeChromeTraces merges per-node Chrome trace files (as written by
// WriteChromeTrace or FlightRecorder.WriteChromeTrace) into one document on
// a single aligned timeline: each input becomes one named process, and
// every input's timestamps are shifted by the difference between its
// recording epoch (read from its fg_trace_meta event) and the earliest
// epoch among the inputs. Transfer-ID flow events recorded on different
// nodes keep their IDs, so a send on one node links to its receive on
// another — a dsort run reads as one cluster-wide Gantt.
func MergeChromeTraces(w io.Writer, inputs ...io.Reader) error {
	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	out.TraceEvents = []chromeEvent{}
	type parsed struct {
		trace chromeTrace
		epoch int64 // UnixNano; 0 when the input has no fg_trace_meta
	}
	var traces []parsed
	minEpoch := int64(0)
	for i, in := range inputs {
		var t chromeTrace
		if err := json.NewDecoder(in).Decode(&t); err != nil {
			return fmt.Errorf("fg: merge traces: input %d: %w", i, err)
		}
		p := parsed{trace: t}
		for _, e := range t.TraceEvents {
			if e.Ph == "M" && e.Name == traceMetaName {
				if v, ok := e.Args["epoch_unix_nano"].(float64); ok {
					p.epoch = int64(v)
				}
				break
			}
		}
		if p.epoch != 0 && (minEpoch == 0 || p.epoch < minEpoch) {
			minEpoch = p.epoch
		}
		traces = append(traces, p)
	}
	for i, p := range traces {
		pid := i + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]any{"name": fmt.Sprintf("node %d", i)},
		})
		var shift float64 // microseconds to add to this input's timestamps
		if p.epoch != 0 && minEpoch != 0 {
			shift = float64(p.epoch-minEpoch) / float64(time.Microsecond)
		}
		for _, e := range p.trace.TraceEvents {
			e.Pid = pid
			if e.Ph != "M" {
				e.Ts += shift
			}
			out.TraceEvents = append(out.TraceEvents, e)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
