package fg

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event tracing. A Tracer attached to a network records, for every stage,
// when it was working on a buffer and when it was waiting for one. The
// resulting timeline makes FG's latency hiding visible: a well-overlapped
// network shows the stages' work intervals interleaved in time rather than
// stacked end to end. cmd/fgdemo renders traces as an ASCII Gantt chart.

// An Event records one stage activity interval.
type Event struct {
	Stage    string
	Pipeline string
	Kind     EventKind
	Round    int
	Start    time.Duration // since the network's trace epoch
	End      time.Duration
}

// EventKind distinguishes working intervals from waiting intervals.
type EventKind int

const (
	// EventWork covers a stage function invocation for one buffer.
	EventWork EventKind = iota
	// EventWait covers a blocked accept.
	EventWait
)

func (k EventKind) String() string {
	if k == EventWork {
		return "work"
	}
	return "wait"
}

// A Tracer collects events from one network run. The zero value is unused;
// create with NewTracer and attach with Network.SetTracer before Run.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []Event
	limit  int
}

// NewTracer creates a tracer retaining at most limit events (0 means a
// generous default). Events past the limit are dropped, keeping tracing
// safe for long runs.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 1 << 16
	}
	return &Tracer{epoch: time.Now(), limit: limit}
}

// record appends an event unless the tracer is full.
func (tr *Tracer) record(e Event) {
	tr.mu.Lock()
	if len(tr.events) < tr.limit {
		tr.events = append(tr.events, e)
	}
	tr.mu.Unlock()
}

// Events returns the recorded events in chronological start order.
func (tr *Tracer) Events() []Event {
	tr.mu.Lock()
	out := append([]Event(nil), tr.events...)
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// SetTracer attaches a tracer to the network; every round stage's work and
// wait intervals are recorded. Attach before Run.
func (nw *Network) SetTracer(tr *Tracer) {
	nw.mustNotBeStarted()
	nw.tracer = tr
}

// traceWork records a work interval if tracing is on.
func (nw *Network) traceWork(s *Stage, p *Pipeline, round int, start time.Time) {
	if nw.tracer == nil {
		return
	}
	now := time.Now()
	nw.tracer.record(Event{
		Stage:    s.name,
		Pipeline: p.name,
		Kind:     EventWork,
		Round:    round,
		Start:    start.Sub(nw.tracer.epoch),
		End:      now.Sub(nw.tracer.epoch),
	})
}

// traceWait records a wait interval if tracing is on and it is long enough
// to matter (sub-10us waits are queue handoffs, not stalls).
func (nw *Network) traceWait(s *Stage, p *Pipeline, start time.Time) {
	if nw.tracer == nil {
		return
	}
	now := time.Now()
	if now.Sub(start) < 10*time.Microsecond {
		return
	}
	nw.tracer.record(Event{
		Stage:    s.name,
		Pipeline: p.name,
		Kind:     EventWait,
		Start:    start.Sub(nw.tracer.epoch),
		End:      now.Sub(nw.tracer.epoch),
	})
}

// Gantt renders the trace as an ASCII chart: one row per stage, time
// flowing right, '#' for work and '.' for waiting. width is the chart width
// in characters.
func (tr *Tracer) Gantt(width int) string {
	events := tr.Events()
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width <= 0 {
		width = 80
	}
	var maxEnd time.Duration
	rows := map[string][]Event{}
	var order []string
	for _, e := range events {
		key := e.Pipeline + "/" + e.Stage
		if _, seen := rows[key]; !seen {
			order = append(order, key)
		}
		rows[key] = append(rows[key], e)
		if e.End > maxEnd {
			maxEnd = e.End
		}
	}
	if maxEnd == 0 {
		maxEnd = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %v total, %d events ('#'=work, '.'=wait)\n", maxEnd.Round(time.Millisecond), len(events))
	for _, key := range order {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for _, e := range rows[key] {
			from := int(int64(e.Start) * int64(width) / int64(maxEnd))
			to := int(int64(e.End) * int64(width) / int64(maxEnd))
			if to >= width {
				to = width - 1
			}
			mark := byte('#')
			if e.Kind == EventWait {
				mark = '.'
			}
			for i := from; i <= to; i++ {
				if mark == '#' || line[i] == ' ' {
					line[i] = mark
				}
			}
		}
		fmt.Fprintf(&b, "%-28s |%s|\n", key, line)
	}
	return b.String()
}
