package fg

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// A Network is a set of pipelines that are launched and complete together:
// the unit FG instantiates on each node of a cluster. A typical FG program
// builds one Network per node per pass — a single pipeline for a balanced
// pass, disjoint send and receive pipelines for unbalanced communication,
// or vertical virtual pipelines intersecting a merge stage for multiway
// merging — and calls Run.
type Network struct {
	name   string
	groups []*group

	started bool
	done    chan struct{}
	stop    sync.Once
	failMu  sync.Mutex
	err     error
	onFail  func(error)

	wg         sync.WaitGroup // every framework goroutine
	completion sync.WaitGroup // one Done per pipeline, by the sinks

	tracer *Tracer
	flight *FlightRecorder

	// Wall-clock run state, readable mid-run by Stats. runStart is written
	// before runState stores runStateRunning and runNanos before it stores
	// runStateDone, so a reader that observes the state also observes the
	// matching time (atomic store/load give the happens-before edge).
	runStart time.Time
	runNanos atomic.Int64
	runState atomic.Int32
}

const (
	runStateIdle int32 = iota
	runStateRunning
	runStateDone
)

// NewNetwork creates an empty network.
func NewNetwork(name string) *Network {
	return &Network{name: name, done: make(chan struct{})}
}

// Name returns the network's display name.
func (nw *Network) Name() string { return nw.name }

// AddPipeline creates a pipeline in the network. The returned pipeline is
// configured by the options and populated with AddStage / AddFreeStage /
// Add before Run.
func (nw *Network) AddPipeline(name string, opts ...Option) *Pipeline {
	nw.mustNotBeStarted()
	g := newGroup(nw, name, false)
	nw.groups = append(nw.groups, g)
	return newPipeline(nw, g, name, opts)
}

// AddVirtualGroup creates a group of virtual pipelines: structurally
// identical pipelines whose stages at each position share one goroutine and
// one input queue, as FG's virtual stages share one thread. Sources and
// sinks of the group's members are virtualized automatically.
func (nw *Network) AddVirtualGroup(name string) *VirtualGroup {
	nw.mustNotBeStarted()
	g := newGroup(nw, name, true)
	nw.groups = append(nw.groups, g)
	return &VirtualGroup{g: g}
}

// A VirtualGroup declares a family of virtual pipelines. Add members with
// AddPipeline; every member must have the same number of stages, with each
// position holding either a per-member round stage (a virtual stage) or one
// stage object shared by all members (an intersecting stage).
type VirtualGroup struct {
	g *group
}

// AddPipeline adds a member pipeline to the group.
func (vg *VirtualGroup) AddPipeline(name string, opts ...Option) *Pipeline {
	vg.g.nw.mustNotBeStarted()
	return newPipeline(vg.g.nw, vg.g, name, opts)
}

// Pipelines returns the group's member pipelines in creation order.
func (vg *VirtualGroup) Pipelines() []*Pipeline {
	return append([]*Pipeline(nil), vg.g.pipes...)
}

func (nw *Network) mustNotBeStarted() {
	if nw.started {
		panic(fmt.Sprintf("fg: network %q modified after Run", nw.name))
	}
}

// OnFail registers a callback invoked once, with the winning error, at the
// moment the network first fails — before the network's goroutines have
// unwound. A stage of a failing network may be blocked in an operation
// outside the framework's control (a message receive on a cluster whose
// sender just died); Run cannot return until that stage exits, so the
// escape hatch must fire earlier. Node programs use OnFail to trigger
// cluster-wide teardown (cluster.Abort) that releases such stages. The
// callback runs on the failing stage's goroutine and must not block.
// OnFail must be called before Run; a nil fn clears it.
func (nw *Network) OnFail(fn func(error)) {
	nw.mustNotBeStarted()
	nw.onFail = fn
}

// fail records the first error and begins shutdown.
func (nw *Network) fail(err error) {
	nw.failMu.Lock()
	first := nw.err == nil
	if first {
		nw.err = err
	}
	cb := nw.onFail
	nw.failMu.Unlock()
	if first && cb != nil {
		cb(err)
	}
	nw.shutdown()
}

func (nw *Network) shutdown() {
	nw.stop.Do(func() { close(nw.done) })
}

// Err returns the first error a stage reported, if any.
func (nw *Network) Err() error {
	nw.failMu.Lock()
	defer nw.failMu.Unlock()
	return nw.err
}

// Run launches every pipeline and blocks until each one's caboose has
// reached its sink, or until a stage returns an error. A network runs once;
// build a new one for the next pass.
func (nw *Network) Run() error {
	return nw.RunContext(context.Background())
}

// RunContext is Run with deadline and cancellation: when ctx is cancelled
// or its deadline passes, the network shuts down exactly as if a stage had
// failed — in-flight buffers are dropped — and RunContext returns ctx.Err()
// (unless a stage failed first, whose error wins). A ctx that is already
// expired returns its error immediately, before any goroutine is launched.
func (nw *Network) RunContext(ctx context.Context) error {
	nw.mustNotBeStarted()
	nw.started = true
	if err := ctx.Err(); err != nil {
		return err
	}

	pipelines := 0
	for _, g := range nw.groups {
		if err := g.build(); err != nil {
			return err
		}
		pipelines += len(g.pipes)
	}
	if pipelines == 0 {
		return fmt.Errorf("fg: network %q has no pipelines", nw.name)
	}
	nw.completion.Add(pipelines)

	// Validate and wire every fork region before launching any goroutine,
	// so a bad group cannot leave an earlier group's runners stranded.
	forkRTsOf := make(map[*group][]*forkRuntime)
	for _, g := range nw.groups {
		rts, err := g.buildForkRuntimes()
		if err != nil {
			return err
		}
		forkRTsOf[g] = rts
	}

	// From here on goroutines launch; build errors above return with none.
	// The context watcher turns cancellation into a network failure and is
	// itself released by shutdown, so it cannot outlive Run.
	nw.runStart = time.Now()
	nw.runState.Store(runStateRunning)
	defer func() {
		nw.runNanos.Store(int64(time.Since(nw.runStart)))
		nw.runState.Store(runStateDone)
	}()
	if ctx.Done() != nil {
		nw.wg.Add(1)
		go func() {
			defer nw.wg.Done()
			select {
			case <-ctx.Done():
				nw.fail(ctx.Err())
			case <-nw.done:
			}
		}()
	}

	// One goroutine per unique stage or slot, plus each group's source and
	// sink — FG's thread economy, including virtual sharing, made literal.
	for _, g := range nw.groups {
		forkRTs := forkRTsOf[g]
		nw.wg.Add(2)
		go nw.labeled(g.name, "source", g.runSource)
		go nw.labeled(g.name, "sink", g.runSink)
		rtOf := map[*Fork]*forkRuntime{}
		for _, rt := range forkRTs {
			rtOf[rt.f] = rt
		}
		for pos := range g.pipes[0].stages {
			s := g.pipes[0].stages[pos]
			switch {
			case s.isFree():
				// shared (intersecting) stage: launched once below
			case s.fork != nil:
				rt := rtOf[s.fork]
				nw.wg.Add(1)
				go nw.labeled(g.name, s.name, func() { runFork(nw, g, rt) })
				for bi, chain := range s.fork.branches {
					for j := range chain {
						bs := chain[j]
						nw.wg.Add(1)
						go nw.labeled(g.name, bs.name, func() { runBranchStage(nw, g, rt, bi, j) })
					}
				}
			case s.join != nil:
				rt := rtOf[s.join]
				nw.wg.Add(1)
				go nw.labeled(g.name, s.name, func() { runJoin(nw, g, rt) })
			case s.replicas > 1:
				runReplicated(nw, g, pos) // adds its workers to the WaitGroup itself
			default:
				nw.wg.Add(1)
				go nw.labeled(g.name, s.name, func() { runSlot(nw, g, pos) })
			}
		}
	}
	launched := map[*Stage]bool{}
	for _, g := range nw.groups {
		for _, p := range g.pipes {
			for _, s := range p.stages {
				if s.isFree() && !launched[s] {
					launched[s] = true
					nw.wg.Add(1)
					go nw.labeled(s.primary().name, s.name, func() { runFree(nw, s) })
				}
			}
		}
	}

	completed := make(chan struct{})
	go func() {
		nw.completion.Wait()
		close(completed)
	}()
	select {
	case <-completed:
	case <-nw.done: // a stage failed
	}
	nw.shutdown()
	nw.wg.Wait()
	return nw.Err()
}

// labeled runs fn on the current goroutine under pprof labels naming the
// network, pipeline (or group), and stage, so CPU profiles attribute
// samples to stage=...,pipeline=... instead of an undifferentiated pile of
// runSlot frames. The labels ride the goroutine for its lifetime; stage
// functions inherit them.
func (nw *Network) labeled(pipeline, stage string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels(
		"network", nw.name, "pipeline", pipeline, "stage", stage,
	), func(context.Context) { fn() })
}
