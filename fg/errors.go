package fg

import (
	"errors"
	"fmt"
	"runtime"
)

// Error semantics. A network fails as a unit: the first error any stage
// reports (or any panic a stage raises) wins, shutdown begins immediately,
// and every other framework goroutine exits as soon as it next touches a
// queue. In-flight buffers are dropped, not flushed — a failed pass is
// rerun from its inputs, the natural unit of recovery for out-of-core
// programs. Run returns the winning error.

// A PanicError is the error a Network reports when a stage function (or a
// fork's route function) panics. The framework recovers the panic on the
// stage's goroutine, so the process survives: the network shuts down and
// Run returns the PanicError instead.
type PanicError struct {
	// Stage is the display name of the stage that panicked.
	Stage string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("fg: stage %q panicked: %v\n%s", e.Stage, e.Value, e.Stack)
}

// Unwrap exposes the panic value to errors.Is/As when it was itself an
// error — a substrate that signals failure by panicking (the cluster's
// aborted receives, say) stays matchable through the PanicError.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoverPanic converts a panic on a framework goroutine into a network
// failure. Every goroutine the framework spawns defers it (after the
// WaitGroup Done, so the failure is recorded before the goroutine is
// counted out), naming the stage it serves.
func (nw *Network) recoverPanic(stage string) {
	if r := recover(); r != nil {
		buf := make([]byte, 64<<10)
		buf = buf[:runtime.Stack(buf, false)]
		nw.fail(&PanicError{Stage: stage, Value: r, Stack: buf})
	}
}

// capturePanic is recoverPanic's form for goroutines that must hand the
// failure to another goroutine instead of failing the network directly
// (retry attempt runners). It returns the PanicError, or nil.
func capturePanic(stage string, r any) *PanicError {
	if r == nil {
		return nil
	}
	buf := make([]byte, 64<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &PanicError{Stage: stage, Value: r, Stack: buf}
}

// permanentError marks an error that Retry must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as permanent: a Retry-wrapped stage returning it
// fails immediately instead of backing off and retrying. Use it for errors
// that more attempts cannot fix — a malformed record, a missing file — as
// opposed to transient disk or communication faults. Permanent(nil)
// returns nil. The marked error still matches the original with errors.Is
// and errors.As.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or an error it wraps) was marked with
// Permanent. Panics inside a retried attempt are also permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	if errors.As(err, &pe) {
		return true
	}
	var panicked *PanicError
	return errors.As(err, &panicked)
}
