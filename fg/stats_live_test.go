package fg

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// These tests hammer Network.Stats from other goroutines while Run is in
// flight; under -race they prove the snapshot path is safe against the
// runners' counter writes and the source's pool traffic, for each network
// shape (plain, intersecting, virtual).

// hammerStats calls run() while a second goroutine snapshots stats until
// run returns; every snapshot must be internally sane.
func hammerStats(t *testing.T, nw *Network, run func() error) {
	t.Helper()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sawRunning := false
		for {
			select {
			case <-done:
				return
			default:
			}
			st := nw.Stats()
			if st.Running {
				sawRunning = true
			}
			for _, s := range st.Stages {
				if s.Rounds < 0 || s.QueueLen < 0 {
					t.Errorf("nonsense snapshot: %+v", s)
				}
			}
			for _, p := range st.Pipelines {
				if p.PoolIdle > p.PoolCap {
					t.Errorf("pool idle %d exceeds cap %d", p.PoolIdle, p.PoolCap)
				}
			}
			_ = sawRunning
		}
	}()
	if err := run(); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	final := nw.Stats()
	if final.Running {
		t.Error("finished network still reports Running")
	}
	if final.Wall <= 0 {
		t.Error("finished network reports zero wall time")
	}
}

func busyStage(d time.Duration) RoundFunc {
	return func(ctx *Ctx, b *Buffer) error {
		time.Sleep(d)
		return nil
	}
}

func TestConcurrentStatsPlain(t *testing.T) {
	nw := NewNetwork("live-plain")
	p := nw.AddPipeline("main", Buffers(3), Rounds(40))
	p.AddStage("a", busyStage(100*time.Microsecond))
	p.AddStage("b", busyStage(200*time.Microsecond))
	p.AddStage("c", busyStage(50*time.Microsecond))
	hammerStats(t, nw, nw.Run)

	st := nw.Stats()
	for _, s := range st.Stages {
		if s.Rounds != 40 {
			t.Errorf("stage %s rounds = %d, want 40", s.Stage, s.Rounds)
		}
	}
}

func TestConcurrentStatsIntersecting(t *testing.T) {
	nw := NewNetwork("live-intersect")
	a := nw.AddPipeline("a", Buffers(2), Rounds(25))
	b := nw.AddPipeline("b", Buffers(2), Rounds(25))
	a.AddStage("gen-a", busyStage(50*time.Microsecond))
	b.AddStage("gen-b", busyStage(80*time.Microsecond))
	merge := NewStage("merge", func(ctx *Ctx) error {
		aOpen, bOpen := true, true
		for aOpen || bOpen {
			if aOpen {
				if buf, ok := ctx.AcceptFrom(a); ok {
					ctx.Convey(buf)
				} else {
					aOpen = false
				}
			}
			if bOpen {
				if buf, ok := ctx.AcceptFrom(b); ok {
					ctx.Convey(buf)
				} else {
					bOpen = false
				}
			}
		}
		return nil
	})
	a.Add(merge)
	b.Add(merge)
	hammerStats(t, nw, nw.Run)

	for _, s := range nw.Stats().Stages {
		if s.Stage == "merge" {
			if !s.Shared {
				t.Error("merge stage not marked shared")
			}
			if s.Rounds != 50 {
				t.Errorf("merge rounds = %d, want 50", s.Rounds)
			}
		}
	}
}

func TestConcurrentStatsVirtual(t *testing.T) {
	nw := NewNetwork("live-virtual")
	vg := nw.AddVirtualGroup("verts")
	for i := 0; i < 3; i++ {
		p := vg.AddPipeline(fmt.Sprintf("m%d", i), Buffers(2), Rounds(15))
		p.AddStage(fmt.Sprintf("work%d", i), busyStage(60*time.Microsecond))
	}
	hammerStats(t, nw, nw.Run)

	st := nw.Stats()
	var virtual int
	for _, s := range st.Stages {
		if s.Virtual {
			virtual++
			if s.Rounds != 15 {
				t.Errorf("virtual stage %s rounds = %d, want 15", s.Stage, s.Rounds)
			}
		}
	}
	if virtual != 3 {
		t.Errorf("%d virtual stages in snapshot, want 3", virtual)
	}
}
