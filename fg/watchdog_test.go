package fg

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchdogSlowStageDoesNotFire is the false-positive boundary: a stage
// that is merely slow — every round well under StallAfter — must never
// trigger the watchdog, because rounds keep completing and global progress
// never pauses for StallAfter.
func TestWatchdogSlowStageDoesNotFire(t *testing.T) {
	nw := NewNetwork("slowpoke")
	p := nw.AddPipeline("main", Buffers(2), Rounds(10))
	p.AddStage("slow", func(ctx *Ctx, b *Buffer) error {
		time.Sleep(10 * time.Millisecond)
		return nil
	})
	dog := nw.Watch(WatchdogConfig{
		Interval:   5 * time.Millisecond,
		StallAfter: 2 * time.Second, // far above any single round
		OnStall: func(r StallReport) {
			t.Errorf("watchdog fired on a slow but progressing network:\n%s", r)
		},
	})
	defer dog.Stop()
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got := dog.Fired(); got != 0 {
		t.Errorf("watchdog fired %d times on a healthy run", got)
	}
}

// TestWatchdogDetectsHangAndNamesCulprit is the true-positive boundary: a
// stage that blocks forever inside its function must be reported promptly
// (StallAfter plus a couple of sampling intervals) as the blocked-on-put
// culprit, and the watchdog must fire exactly once for the episode.
func TestWatchdogDetectsHangAndNamesCulprit(t *testing.T) {
	const (
		interval   = 25 * time.Millisecond
		stallAfter = 150 * time.Millisecond
	)
	release := make(chan struct{})
	var hungAt atomic.Int64 // UnixNano; written by the stage, read after the report
	nw := NewNetwork("hangnet")
	p := nw.AddPipeline("main", Buffers(2), Rounds(4))
	p.AddStage("up", func(ctx *Ctx, b *Buffer) error { return nil })
	p.AddStage("stuck", func(ctx *Ctx, b *Buffer) error {
		if b.Round == 1 {
			hungAt.Store(time.Now().UnixNano())
			<-release
		}
		return nil
	})
	reports := make(chan StallReport, 8)
	dog := nw.Watch(WatchdogConfig{
		Interval:   interval,
		StallAfter: stallAfter,
		OnStall: func(r StallReport) {
			select {
			case reports <- r:
			default:
			}
		},
	})
	defer dog.Stop()

	done := make(chan error, 1)
	go func() { done <- nw.Run() }()

	var rep StallReport
	select {
	case rep = <-reports:
	case <-time.After(10 * time.Second):
		close(release)
		t.Fatal("watchdog never reported the hung network")
	}
	detected := time.Since(time.Unix(0, hungAt.Load()))
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("run failed after release: %v", err)
	}

	if rep.Network != "hangnet" {
		t.Errorf("report names network %q, want hangnet", rep.Network)
	}
	if rep.Culprit != "stuck" || rep.CulpritPipeline != "main" {
		t.Errorf("culprit = %q on %q, want stuck on main\n%s", rep.Culprit, rep.CulpritPipeline, rep)
	}
	if rep.Reason == "" {
		t.Error("report has no reason")
	}
	if rep.Stalled < stallAfter {
		t.Errorf("reported stall %v is under StallAfter %v", rep.Stalled, stallAfter)
	}
	var stuck *StageHealth
	for i := range rep.Stages {
		if rep.Stages[i].Stage == "stuck" {
			stuck = &rep.Stages[i]
		}
	}
	if stuck == nil {
		t.Fatalf("report has no entry for the hung stage: %+v", rep.Stages)
	}
	if stuck.State != HealthBlockedOnPut {
		t.Errorf("hung stage classified %q, want %q", stuck.State, HealthBlockedOnPut)
	}
	// The design bound is StallAfter + 2*Interval; allow generous scheduler
	// slack so a loaded CI box does not flake, while still catching a
	// watchdog that is an order of magnitude late.
	if bound := stallAfter + 2*interval + 2*time.Second; detected > bound {
		t.Errorf("stall detected after %v, want within %v", detected, bound)
	}
	if got := dog.Fired(); got != 1 {
		t.Errorf("watchdog fired %d times for one stall episode, want 1", got)
	}
	if !strings.Contains(rep.String(), "stuck") {
		t.Errorf("rendered report does not mention the culprit:\n%s", rep)
	}
}

// TestWatchdogGoroutineExcerptIsLabelFiltered checks that the report's
// goroutine dump carries this network's labeled stage goroutines and not
// unrelated ones.
func TestWatchdogGoroutineExcerptIsLabelFiltered(t *testing.T) {
	release := make(chan struct{})
	nw := NewNetwork("dumped")
	p := nw.AddPipeline("main", Buffers(1), Rounds(2))
	p.AddStage("wedge", func(ctx *Ctx, b *Buffer) error {
		<-release
		return nil
	})
	reports := make(chan StallReport, 1)
	dog := nw.Watch(WatchdogConfig{
		Interval:   10 * time.Millisecond,
		StallAfter: 50 * time.Millisecond,
		OnStall: func(r StallReport) {
			select {
			case reports <- r:
			default:
			}
		},
	})
	defer dog.Stop()
	done := make(chan error, 1)
	go func() { done <- nw.Run() }()
	var rep StallReport
	select {
	case rep = <-reports:
	case <-time.After(10 * time.Second):
		close(release)
		t.Fatal("no stall report")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if rep.Goroutines == "" {
		t.Fatal("report carries no goroutine excerpt")
	}
	if !strings.Contains(rep.Goroutines, "dumped") {
		t.Errorf("excerpt does not mention the network's label:\n%s", rep.Goroutines)
	}
}

// TestClassifyStages exercises the state taxonomy on a synthetic snapshot:
// parks longer than the threshold are blocked, shorter ones are running,
// and idle/done pass through.
func TestClassifyStages(t *testing.T) {
	st := NetworkStats{Stages: []StageStats{
		{Stage: "a", Pipeline: "p", State: StageWorking, InState: 2 * time.Second},
		{Stage: "b", Pipeline: "p", State: StageWorking, InState: 10 * time.Millisecond},
		{Stage: "c", Pipeline: "p", State: StageAccepting, InState: 2 * time.Second},
		{Stage: "d", Pipeline: "p", State: StageAccepting, InState: time.Millisecond},
		{Stage: "e", Pipeline: "p", State: StageDone},
		{Stage: "f", Pipeline: "p", State: StageIdle},
	}}
	hs := classifyStages(st, time.Second)
	want := []string{HealthBlockedOnPut, HealthRunning, HealthBlockedOnGet, HealthRunning, HealthDone, HealthIdle}
	for i, w := range want {
		if hs[i].State != w {
			t.Errorf("stage %s classified %q, want %q", hs[i].Stage, hs[i].State, w)
		}
	}
}

// TestDiagnose checks culprit selection and the starved refinement: the
// furthest-upstream blocked-on-put stage wins, and blocked-on-get stages
// downstream of it on the same pipeline become starved.
func TestDiagnose(t *testing.T) {
	hs := []StageHealth{
		{Stage: "src", Pipeline: "p", State: HealthBlockedOnGet},
		{Stage: "mid", Pipeline: "p", State: HealthBlockedOnPut},
		{Stage: "down", Pipeline: "p", State: HealthBlockedOnGet},
		{Stage: "other", Pipeline: "q", State: HealthBlockedOnGet},
	}
	i, reason := diagnose(hs)
	if i != 1 || hs[i].Stage != "mid" {
		t.Fatalf("culprit index %d (%+v), want the blocked-on-put stage", i, hs)
	}
	if reason == "" {
		t.Error("no reason given")
	}
	if hs[2].State != HealthStarved {
		t.Errorf("downstream same-pipeline stage is %q, want starved", hs[2].State)
	}
	if hs[3].State != HealthBlockedOnGet {
		t.Errorf("other pipeline's stage was refined to %q; starved only applies within the culprit's pipeline", hs[3].State)
	}
	if hs[0].State != HealthBlockedOnGet {
		t.Errorf("upstream stage was refined to %q; starved only applies downstream", hs[0].State)
	}

	// With nothing blocked-on-put, the first blocked-on-get is the suspect
	// (its input stopped arriving).
	hs2 := []StageHealth{
		{Stage: "a", Pipeline: "p", State: HealthRunning},
		{Stage: "b", Pipeline: "p", State: HealthBlockedOnGet},
	}
	if i, _ := diagnose(hs2); i != 1 {
		t.Errorf("fallback culprit index %d, want 1", i)
	}

	// All healthy: no culprit.
	hs3 := []StageHealth{{Stage: "a", Pipeline: "p", State: HealthRunning}}
	if i, _ := diagnose(hs3); i != -1 {
		t.Errorf("healthy snapshot produced culprit index %d", i)
	}
}

// TestWatchdogStopIsIdempotent double-stops and stops after the run ended.
func TestWatchdogStopIsIdempotent(t *testing.T) {
	nw := NewNetwork("stopped")
	p := nw.AddPipeline("main", Rounds(1))
	p.AddStage("s", func(ctx *Ctx, b *Buffer) error { return nil })
	dog := nw.Watch(WatchdogConfig{Interval: 5 * time.Millisecond, StallAfter: time.Hour})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	dog.Stop()
	dog.Stop()
	if dog.Fired() != 0 {
		t.Error("watchdog fired on a healthy run")
	}
}
