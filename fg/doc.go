// Package fg is a Go implementation of the FG programming environment
// ("ABCDEFG": Asynchronous Buffered Computation Design and Engineering
// Framework Generator), a framework for mitigating the latency of disk I/O
// and interprocessor communication by assembling programmer-written,
// synchronous stage functions into coarse-grained software pipelines.
//
// # Model
//
// A Pipeline is a linear sequence of stages. The framework adds a source
// stage at the front and a sink stage at the end. The source injects
// fixed-size buffers into the pipeline, beginning a new round with each
// buffer; the sink recycles buffers back to the source, so a small fixed
// pool of buffers serves an unbounded number of rounds and the memory
// consumed by buffers stays within RAM — the heart of out-of-core
// processing. A queue sits between each pair of consecutive stages. Each
// stage runs in its own goroutine (FG's "one thread per stage"), so a stage
// blocked in a high-latency operation — a disk read, a message receive —
// yields while other stages work on other buffers: I/O, communication and
// computation overlap.
//
// A stage is written as an ordinary synchronous function. Most stages are
// round stages (AddStage): the framework accepts a buffer from the stage's
// predecessor, passes it to the function, and conveys it to the successor.
// Stages that accept and convey at different rates — a merge stage, a
// receive stage filling buffers from the network — are free stages
// (AddFreeStage or NewStage) that call Accept, AcceptFrom and Convey
// explicitly on their Ctx.
//
// # Multiple pipelines
//
// A Network holds any number of pipelines that start and finish together.
// Pipelines may be disjoint — e.g. a send pipeline and a receive pipeline
// with independent buffer pools and sizes, for unbalanced communication —
// or they may intersect at a common stage: adding the same *Stage object to
// more than one pipeline makes those pipelines intersect there. The common
// stage runs in a single goroutine and accepts buffers from any of its
// pipelines with AcceptFrom; every buffer remains tied to the pipeline it
// was injected into and conveys along that pipeline only.
//
// # Virtual pipelines
//
// When many structurally identical pipelines are needed — one per sorted
// run being merged, say — creating one thread per stage per pipeline would
// explode. A VirtualGroup declares k pipelines whose stages at each
// position share a single goroutine and a single input queue, exactly as
// FG's virtual stages share one thread. The group's sources and sinks are
// virtualized automatically.
//
// # Shutdown
//
// A source emits its configured number of rounds (or runs until Stop) and
// then emits a caboose, a sentinel that sweeps through the pipeline behind
// the last data buffer. A round stage simply stops being called; a free
// stage sees Accept return ok=false, may convey any partial output it still
// holds, and returns. A free stage may also return early — when it has,
// say, received everything it was promised — and the framework conveys the
// caboose downstream on its behalf. A pipeline is complete when its sink
// has seen the caboose; Network.Run returns when every pipeline completes
// or any stage fails.
package fg
