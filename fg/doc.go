// Package fg is a Go implementation of the FG programming environment
// ("ABCDEFG": Asynchronous Buffered Computation Design and Engineering
// Framework Generator), a framework for mitigating the latency of disk I/O
// and interprocessor communication by assembling programmer-written,
// synchronous stage functions into coarse-grained software pipelines.
//
// # Model
//
// A Pipeline is a linear sequence of stages. The framework adds a source
// stage at the front and a sink stage at the end. The source injects
// fixed-size buffers into the pipeline, beginning a new round with each
// buffer; the sink recycles buffers back to the source, so a small fixed
// pool of buffers serves an unbounded number of rounds and the memory
// consumed by buffers stays within RAM — the heart of out-of-core
// processing. A queue sits between each pair of consecutive stages. Each
// stage runs in its own goroutine (FG's "one thread per stage"), so a stage
// blocked in a high-latency operation — a disk read, a message receive —
// yields while other stages work on other buffers: I/O, communication and
// computation overlap.
//
// A stage is written as an ordinary synchronous function. Most stages are
// round stages (AddStage): the framework accepts a buffer from the stage's
// predecessor, passes it to the function, and conveys it to the successor.
// Stages that accept and convey at different rates — a merge stage, a
// receive stage filling buffers from the network — are free stages
// (AddFreeStage or NewStage) that call Accept, AcceptFrom and Convey
// explicitly on their Ctx.
//
// # Multiple pipelines
//
// A Network holds any number of pipelines that start and finish together.
// Pipelines may be disjoint — e.g. a send pipeline and a receive pipeline
// with independent buffer pools and sizes, for unbalanced communication —
// or they may intersect at a common stage: adding the same *Stage object to
// more than one pipeline makes those pipelines intersect there. The common
// stage runs in a single goroutine and accepts buffers from any of its
// pipelines with AcceptFrom; every buffer remains tied to the pipeline it
// was injected into and conveys along that pipeline only.
//
// # Virtual pipelines
//
// When many structurally identical pipelines are needed — one per sorted
// run being merged, say — creating one thread per stage per pipeline would
// explode. A VirtualGroup declares k pipelines whose stages at each
// position share a single goroutine and a single input queue, exactly as
// FG's virtual stages share one thread. The group's sources and sinks are
// virtualized automatically.
//
// # Shutdown
//
// A source emits its configured number of rounds (or runs until Stop) and
// then emits a caboose, a sentinel that sweeps through the pipeline behind
// the last data buffer. A round stage simply stops being called; a free
// stage sees Accept return ok=false, may convey any partial output it still
// holds, and returns. A free stage may also return early — when it has,
// say, received everything it was promised — and the framework conveys the
// caboose downstream on its behalf. A pipeline is complete when its sink
// has seen the caboose; Network.Run returns when every pipeline completes
// or any stage fails.
//
// # Error semantics and fault tolerance
//
// The first error any stage returns wins: it is recorded, every pipeline of
// the network shuts down (in-flight buffers are dropped, not flushed), and
// Run returns that error once all framework goroutines have unwound. Later
// errors from other stages during the unwind are discarded.
//
// A panic in a stage function does not crash the process. Every
// framework-spawned goroutine recovers panics into a *PanicError naming the
// stage and carrying the panic value and stack, and fails the network with
// it. If the panic value is itself an error, PanicError.Unwrap exposes it,
// so errors.Is and errors.As see through panics.
//
// RunContext adds deadlines and cancellation: when the context is done the
// network shuts down exactly as if a stage had failed and RunContext
// returns ctx.Err(). A context that is already expired returns before any
// goroutine is launched.
//
// Retry wraps a round stage with exponential backoff for transient faults;
// Permanent marks an error as not worth retrying. Only wrap stages whose
// round is idempotent — rereads and same-offset rewrites, never sends.
//
// A failing stage may leave a peer network (on another cluster node)
// blocked in an operation this network cannot unblock. OnFail registers a
// callback that fires at the instant of the first error, before the unwind,
// so node programs can trigger cluster-wide teardown (cluster.Abort) that
// releases such peers.
//
// # Multicore parallelism
//
// FG offers two complementary ways to put multiple cores behind compute
// stages. Stage.Replicate serves one stage position with n workers that
// share its queues: throughput scales, but buffers may leave the stage out
// of order and n buffers are in flight in the stage at once. Intra-buffer
// parallelism — the multicore sort/merge/partition kernels the sorting
// programs enable through their Parallelism knobs — instead splits the
// work on each single buffer across a process-wide bounded worker pool:
// buffer order is preserved and no extra buffers are consumed. Both draw
// on the same shared pool, so enabling both at once divides the machine
// between them rather than oversubscribing it. See Replicate's
// documentation for how to choose.
package fg
