package fg_test

import (
	"fmt"

	"github.com/fg-go/fg/fg"
)

// A minimal linear pipeline: three stages, three buffers, five rounds. The
// produce stage numbers each buffer, square computes, and report prints —
// all three overlap at runtime, but buffers arrive in round order.
func Example() {
	nw := fg.NewNetwork("example")
	p := nw.AddPipeline("main", fg.Buffers(3), fg.BufferBytes(8), fg.Rounds(5))

	p.AddStage("produce", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.Data[0] = byte(b.Round)
		b.N = 1
		return nil
	})
	p.AddStage("square", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.Data[0] = b.Data[0] * b.Data[0]
		return nil
	})
	p.AddStage("report", func(ctx *fg.Ctx, b *fg.Buffer) error {
		fmt.Println(b.Data[0])
		return nil
	})

	if err := nw.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// 0
	// 1
	// 4
	// 9
	// 16
}

// A free stage accepts and conveys at its own pace: here it packs two input
// rounds into each output it forwards, halving the downstream rate — the
// kind of rate mismatch FG's free stages exist for.
func Example_freeStage() {
	nw := fg.NewNetwork("pack")
	p := nw.AddPipeline("main", fg.Buffers(3), fg.BufferBytes(8), fg.Rounds(6))
	p.AddStage("number", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.Data[0] = byte(b.Round)
		b.N = 1
		return nil
	})
	p.AddFreeStage("pair", func(ctx *fg.Ctx) error {
		for {
			first, ok := ctx.Accept()
			if !ok {
				return nil
			}
			second, ok := ctx.Accept()
			if !ok {
				ctx.Convey(first) // odd one out
				return nil
			}
			first.Data[1] = second.Data[0]
			first.N = 2
			second.N = 0 // spent; set before conveying — never touch a buffer after Convey
			ctx.Convey(first)
			ctx.Convey(second)
		}
	})
	p.AddStage("print", func(ctx *fg.Ctx, b *fg.Buffer) error {
		if b.N == 2 {
			fmt.Println(b.Data[0], b.Data[1])
		}
		return nil
	})
	if err := nw.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// 0 1
	// 2 3
	// 4 5
}

// A fork-join region routes each buffer down one branch; the pipeline
// continues after the join. Here even rounds bypass the expensive branch.
func ExamplePipeline_AddFork() {
	nw := fg.NewNetwork("forked")
	p := nw.AddPipeline("main", fg.Buffers(2), fg.BufferBytes(8), fg.Rounds(4))
	p.AddStage("number", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.Data[0] = byte(b.Round)
		b.N = 1
		return nil
	})
	fork := p.AddFork("route", 2, func(ctx *fg.Ctx, b *fg.Buffer) (int, error) {
		return b.Round % 2, nil
	})
	// Branch 0 is an empty bypass; branch 1 decorates.
	fork.Branch(1).AddStage("mark", func(ctx *fg.Ctx, b *fg.Buffer) error {
		b.Data[0] += 100
		return nil
	})
	fork.Join()
	total := 0
	p.AddStage("sum", func(ctx *fg.Ctx, b *fg.Buffer) error {
		total += int(b.Data[0])
		return nil
	})
	if err := nw.Run(); err != nil {
		fmt.Println("error:", err)
	}
	fmt.Println(total) // 0 + 101 + 2 + 103
	// Output:
	// 206
}
