package fg

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress watchdog. The failure mode that matters for a pipeline built to
// overlap high-latency operations is not a crash but a silent stall: one
// stage stops making progress and the whole network quietly serializes or
// deadlocks behind it. The watchdog samples every stage's round counter and
// queue occupancy on an interval; when no stage anywhere has completed a
// round for StallAfter, it assembles a StallReport — per-stage states,
// queue occupancies, the suspected culprit, and goroutine-dump excerpts
// filtered to this network's pprof labels — and fires OnStall.

// WatchdogConfig configures a network's progress watchdog (see
// Network.Watch and Observe.Watchdog).
type WatchdogConfig struct {
	// Interval is the sampling period; default 250ms. A stall is reported
	// within Interval of StallAfter elapsing.
	Interval time.Duration
	// StallAfter is how long the network may go with zero global progress
	// (no stage completing a round) before OnStall fires; default 10s. It
	// must comfortably exceed the longest legitimate single round — a slow
	// stage under StallAfter must not trigger.
	StallAfter time.Duration
	// OnStall receives the report, once per stall episode (the watchdog
	// re-arms if progress resumes). It runs on the watchdog goroutine; a
	// callback that blocks delays further sampling but nothing else.
	OnStall func(StallReport)
}

// Stage health classifications, the watchdog's refinement of StageState
// with round progress and position.
const (
	// HealthRunning: making progress, or parked shorter than the threshold.
	HealthRunning = "running"
	// HealthBlockedOnGet: parked in an accept, waiting for a buffer that is
	// not arriving.
	HealthBlockedOnGet = "blocked-on-get"
	// HealthBlockedOnPut: parked inside the stage function. Queues never
	// fill by construction (they are sized to the pool), so a stage stuck
	// "putting" is in truth stuck in the blocking operation its function
	// performs — a communication send into a full mailbox, a disk op, or a
	// deadlock — which is exactly the culprit shape.
	HealthBlockedOnPut = "blocked-on-put"
	// HealthStarved: blocked-on-get downstream of the culprit; idle only
	// because the culprit starves it.
	HealthStarved = "starved"
	// HealthDone: the stage consumed its caboose.
	HealthDone = "done"
	// HealthIdle: the network (or this stage) has not started.
	HealthIdle = "idle"
)

// StageHealth is one stage's classified state in a StallReport or status
// snapshot.
type StageHealth struct {
	Stage    string `json:"stage"`
	Pipeline string `json:"pipeline"`
	State    string `json:"state"` // one of the Health... constants
	Rounds   int64  `json:"rounds"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	// SlowPushes counts fast-path misses on the stage's input queue — each
	// one a breach of the sized-to-never-fill invariant.
	SlowPushes int64         `json:"slow_pushes,omitempty"`
	InState    time.Duration `json:"in_state_ns"` // time since the last state transition
	// Utilization is Work/Wall, filled by the status endpoint (zero in
	// watchdog reports, where wall time is beside the point).
	Utilization float64 `json:"utilization,omitempty"`
}

// A StallReport describes a network that has made no progress for a while.
type StallReport struct {
	Network string `json:"network"`
	// Stalled is how long the network has gone with zero global progress.
	Stalled time.Duration `json:"stalled_ns"`
	// Culprit names the suspected stage: the blocked-on-put stage furthest
	// upstream (stuck inside a comm/disk op or deadlocked), or, when every
	// stage is blocked-on-get, the furthest-upstream one of those (its
	// input stopped arriving). Empty if nothing conclusive.
	Culprit         string `json:"culprit"`
	CulpritPipeline string `json:"culprit_pipeline,omitempty"`
	// Reason is a one-line explanation of why the culprit is suspected.
	Reason string        `json:"reason"`
	Stages []StageHealth `json:"stages"`
	// Goroutines holds the goroutine-dump stacks whose pprof labels name
	// this network — the stage goroutines' actual park sites.
	Goroutines string `json:"goroutines,omitempty"`
}

// String renders the report as a multi-line log message.
func (r StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fg: network %q stalled for %v (no stage completed a round)\n",
		r.Network, r.Stalled.Round(time.Millisecond))
	if r.Culprit != "" {
		fmt.Fprintf(&b, "  suspected culprit: stage %q on %q — %s\n", r.Culprit, r.CulpritPipeline, r.Reason)
	} else if r.Reason != "" {
		fmt.Fprintf(&b, "  %s\n", r.Reason)
	}
	for _, s := range r.Stages {
		fill := fmt.Sprintf("%d", s.QueueLen)
		if s.QueueCap > 0 {
			fill = fmt.Sprintf("%d/%d", s.QueueLen, s.QueueCap)
		}
		fmt.Fprintf(&b, "  stage %-20s on %-20s %-14s rounds=%-6d queue=%-7s for %v",
			s.Stage, s.Pipeline, s.State, s.Rounds, fill, s.InState.Round(time.Millisecond))
		if s.SlowPushes > 0 {
			fmt.Fprintf(&b, " slow-pushes=%d", s.SlowPushes)
		}
		b.WriteString("\n")
	}
	if r.Goroutines != "" {
		fmt.Fprintf(&b, "  goroutines:\n%s\n", indent(r.Goroutines, "    "))
	}
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

// classifyStages maps a snapshot onto the health taxonomy: a stage parked
// longer than stuckFor is blocked (on-get in an accept, on-put inside its
// function); shorter parks are normal flow and count as running.
func classifyStages(st NetworkStats, stuckFor time.Duration) []StageHealth {
	out := make([]StageHealth, len(st.Stages))
	for i, s := range st.Stages {
		h := StageHealth{
			Stage:      s.Stage,
			Pipeline:   s.Pipeline,
			Rounds:     s.Rounds,
			QueueLen:   s.QueueLen,
			QueueCap:   s.QueueCap,
			SlowPushes: s.SlowPushes,
			InState:    s.InState,
		}
		switch s.State {
		case StageIdle:
			h.State = HealthIdle
		case StageDone:
			h.State = HealthDone
		case StageWorking:
			if s.InState >= stuckFor {
				h.State = HealthBlockedOnPut
			} else {
				h.State = HealthRunning
			}
		case StageAccepting:
			if s.InState >= stuckFor {
				h.State = HealthBlockedOnGet
			} else {
				h.State = HealthRunning
			}
		default:
			h.State = HealthRunning
		}
		out[i] = h
	}
	return out
}

// Classify maps the snapshot onto the watchdog's health taxonomy: a stage
// parked longer than stuckFor reads blocked (on-get in an accept, on-put
// inside its function), shorter parks read running. It is the exported
// seam the cluster-telemetry collector uses to ship each stage's state.
func (s NetworkStats) Classify(stuckFor time.Duration) []StageHealth {
	return classifyStages(s, stuckFor)
}

// diagnose picks the culprit among classified stages (which are in
// upstream-to-downstream order within each pipeline) and refines
// blocked-on-get stages downstream of it to starved. It returns the
// culprit's index, or -1.
func diagnose(hs []StageHealth) (int, string) {
	culprit := -1
	reason := ""
	for i, h := range hs {
		if h.State == HealthBlockedOnPut {
			culprit = i
			reason = "parked inside its stage function — a blocking communication or disk operation that is not completing, or a deadlock"
			// Refine with queue occupancy: if the stage's downstream queue on
			// the same pipeline is brim full, the stage is in truth stuck in
			// the convey — a breach of the sized-to-never-fill invariant —
			// not in its own I/O.
			for j := i + 1; j < len(hs); j++ {
				if hs[j].Pipeline != h.Pipeline {
					continue
				}
				if hs[j].QueueCap > 0 && hs[j].QueueLen >= hs[j].QueueCap {
					reason = fmt.Sprintf(
						"blocked conveying into stage %q, whose input queue is full (%d/%d) — the sized-to-never-fill invariant is breached",
						hs[j].Stage, hs[j].QueueLen, hs[j].QueueCap)
				}
				break
			}
			break
		}
	}
	if culprit < 0 {
		for i, h := range hs {
			if h.State == HealthBlockedOnGet {
				culprit = i
				reason = "waiting for input that never arrives; its upstream (or source) stopped producing"
				break
			}
		}
	}
	if culprit >= 0 {
		for i := culprit + 1; i < len(hs); i++ {
			if hs[i].State == HealthBlockedOnGet && hs[i].Pipeline == hs[culprit].Pipeline {
				hs[i].State = HealthStarved
			}
		}
	}
	return culprit, reason
}

// goroutineExcerpt returns the paragraphs of the process's goroutine
// profile (debug=1: aggregated stacks with their pprof labels) whose labels
// name the given network — the stage goroutines Network.RunContext labels —
// capped at maxBytes.
func goroutineExcerpt(network string, maxBytes int) string {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	needle := fmt.Sprintf("%q:%q", "network", network)
	var out strings.Builder
	for _, block := range strings.Split(buf.String(), "\n\n") {
		// The labels line renders as: # labels: {"k":"v", ...}; tolerate a
		// space after the colon across Go versions.
		if !strings.Contains(block, needle) &&
			!strings.Contains(block, fmt.Sprintf("%q: %q", "network", network)) {
			continue
		}
		if out.Len()+len(block) > maxBytes {
			out.WriteString("(truncated)\n")
			break
		}
		out.WriteString(block)
		out.WriteString("\n\n")
	}
	return strings.TrimRight(out.String(), "\n")
}

// buildStallReport assembles the full report from a snapshot.
func buildStallReport(st NetworkStats, stalled time.Duration) StallReport {
	rep := StallReport{Network: st.Name, Stalled: stalled}
	// Any park older than the stall span predates the last progress; use
	// half the span so transitions racing the snapshot still classify.
	rep.Stages = classifyStages(st, stalled/2)
	if i, reason := diagnose(rep.Stages); i >= 0 {
		rep.Culprit = rep.Stages[i].Stage
		rep.CulpritPipeline = rep.Stages[i].Pipeline
		rep.Reason = reason
	} else {
		rep.Reason = "no stage is conclusively blocked; the network may be between rounds"
	}
	rep.Goroutines = goroutineExcerpt(st.Name, 16<<10)
	return rep
}

// A Watchdog is a running progress monitor; see Network.Watch.
type Watchdog struct {
	stop chan struct{}
	once sync.Once
	// fired counts OnStall deliveries, for tests and status displays.
	fired atomic.Int64
}

// Stop halts the watchdog. Idempotent; the watchdog also stops by itself
// once the network's Run has returned.
func (w *Watchdog) Stop() { w.once.Do(func() { close(w.stop) }) }

// Fired returns how many stall reports the watchdog has delivered.
func (w *Watchdog) Fired() int64 { return w.fired.Load() }

// Watch starts a progress watchdog on the network. It may be called before
// Run (the watchdog idles until the run starts) and stops by itself when
// Run returns; call Stop to halt it earlier. The watchdog costs one
// goroutine sampling lock-free counters at cfg.Interval — nothing on the
// stage hot paths.
func (nw *Network) Watch(cfg WatchdogConfig) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = 10 * time.Second
	}
	w := &Watchdog{stop: make(chan struct{})}
	go w.run(nw, cfg)
	return w
}

func (w *Watchdog) run(nw *Network, cfg WatchdogConfig) {
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	var lastRounds int64 = -1
	var lastProgress time.Time
	reported := false
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		switch nw.runState.Load() {
		case runStateIdle:
			continue
		case runStateDone:
			return
		}
		now := time.Now()
		st := nw.Stats()
		var total int64
		for _, s := range st.Stages {
			total += s.Rounds
		}
		for _, p := range st.Pipelines {
			total += p.Rounds // a producing source is progress too
		}
		if total != lastRounds || lastProgress.IsZero() {
			lastRounds = total
			lastProgress = now
			reported = false
			continue
		}
		stalled := now.Sub(lastProgress)
		if stalled < cfg.StallAfter || reported {
			continue
		}
		reported = true
		w.fired.Add(1)
		if cfg.OnStall != nil {
			cfg.OnStall(buildStallReport(st, stalled))
		}
	}
}
