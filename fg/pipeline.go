package fg

import (
	"fmt"
	"sync/atomic"
)

// A Pipeline is a linear sequence of stages with its own buffer pool,
// buffer size, and round count. The framework supplies the source and sink;
// user stages sit between them.
type Pipeline struct {
	nw    *Network
	group *group
	name  string

	bufBytes int
	nBuffers int
	rounds   int // -1 = unlimited, until Stop or downstream completion

	stages  []*Stage
	slotCtx []*Ctx // restricted contexts for round stages, by position

	forks    []*Fork
	openFork *Fork

	batch int // buffers conveyed per hand-off by this pipeline's round stages

	stop    atomic.Bool
	emitted atomic.Int64

	// effBuffers is the number of buffers the source keeps circulating,
	// adjustable mid-run (see SetEffectiveBuffers); <= 0 means all nBuffers.
	effBuffers atomic.Int32
}

// An Option configures a pipeline at creation.
type Option func(*Pipeline)

// Buffers sets how many buffers circulate in the pipeline. FG allocates a
// small fixed pool and recycles it, so this (times the buffer size) bounds
// the pipeline's memory no matter how many rounds run. The default is 3:
// enough for three stages to work concurrently.
func Buffers(n int) Option {
	return func(p *Pipeline) {
		if n < 1 {
			panic(fmt.Sprintf("fg: pipeline %q: need at least 1 buffer, got %d", p.name, n))
		}
		p.nBuffers = n
	}
}

// BufferBytes sets the capacity of each buffer, which typically equals the
// block size of the underlying I/O or communication. The default is 64 KiB.
func BufferBytes(n int) Option {
	return func(p *Pipeline) {
		if n < 1 {
			panic(fmt.Sprintf("fg: pipeline %q: invalid buffer size %d", p.name, n))
		}
		p.bufBytes = n
	}
}

// Rounds sets how many buffers the source emits before sending the caboose.
// The default is Unlimited: the source keeps recycling buffers until the
// pipeline is stopped or a stage finishes the stream itself.
func Rounds(n int) Option {
	return func(p *Pipeline) {
		if n < 0 {
			panic(fmt.Sprintf("fg: pipeline %q: negative round count %d", p.name, n))
		}
		p.rounds = n
	}
}

// Unlimited configures a pipeline whose source never stops on its own.
func Unlimited() Option {
	return func(p *Pipeline) { p.rounds = -1 }
}

// Batch asks the pipeline's round stages to convey up to k processed
// buffers per queue hand-off instead of one, amortizing the per-message
// cost on pipelines whose rounds are small (many small buffers, cheap
// stage functions). Batching is opportunistic and never delays data: a
// stage accumulates a batch only while more input is already queued, and
// flushes the moment its input runs dry, its batch fills, or the stream
// ends — so ordering, caboose placement, and overlap are exactly those of
// the unbatched build. It applies to spine round stages (the runSlot
// runner); free, fork, and replicated stages hand off singly. The default
// is 1 (no batching).
func Batch(k int) Option {
	return func(p *Pipeline) {
		if k < 1 {
			panic(fmt.Sprintf("fg: pipeline %q: batch must be at least 1, got %d", p.name, k))
		}
		p.batch = k
	}
}

const (
	defaultBuffers  = 3
	defaultBufBytes = 64 << 10
)

func newPipeline(nw *Network, g *group, name string, opts []Option) *Pipeline {
	p := &Pipeline{
		nw:       nw,
		group:    g,
		name:     name,
		bufBytes: defaultBufBytes,
		nBuffers: defaultBuffers,
		rounds:   -1,
		batch:    1,
	}
	for _, o := range opts {
		o(p)
	}
	g.pipes = append(g.pipes, p)
	return p
}

// Name returns the pipeline's display name.
func (p *Pipeline) Name() string { return p.name }

// Network returns the network this pipeline belongs to.
func (p *Pipeline) Network() *Network { return p.nw }

// BufferBytes returns the pipeline's buffer capacity.
func (p *Pipeline) BufferBytes() int { return p.bufBytes }

// NumBuffers returns the pipeline's pool size.
func (p *Pipeline) NumBuffers() int { return p.nBuffers }

// Rounds returns the configured round count, or -1 if unlimited.
func (p *Pipeline) Rounds() int { return p.rounds }

// EffectiveBuffers returns how many of the pipeline's buffers the source
// currently keeps circulating (see SetEffectiveBuffers); NumBuffers unless
// lowered.
func (p *Pipeline) EffectiveBuffers() int {
	n := int(p.effBuffers.Load())
	if n < 1 || n > p.nBuffers {
		return p.nBuffers
	}
	return n
}

// SetEffectiveBuffers asks the source to keep only n of the pipeline's
// NumBuffers circulating, parking the rest; raising it re-injects parked
// buffers. n is clamped to [1, NumBuffers]. It is safe to call at any
// time, including mid-run from another goroutine — the auto-tuner uses it
// to trim pool slack a pipeline is not using and to give it back the
// moment the pool runs dry. The pipeline's memory bound stays NumBuffers ×
// BufferBytes; only the circulating count changes.
func (p *Pipeline) SetEffectiveBuffers(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.nBuffers {
		n = p.nBuffers
	}
	p.effBuffers.Store(int32(n))
	select {
	case p.group.wake <- struct{}{}:
	default:
	}
}

// AddStage appends a round stage: fn is called once per buffer, and the
// framework accepts the buffer beforehand and conveys it afterward.
func (p *Pipeline) AddStage(name string, fn RoundFunc) *Stage {
	if fn == nil {
		panic("fg: AddStage with nil function")
	}
	s := &Stage{name: name, round: fn}
	p.Add(s)
	return s
}

// AddFreeStage appends a free stage: fn runs once and drives its own
// accepts and conveys through its Ctx.
func (p *Pipeline) AddFreeStage(name string, fn StageFunc) *Stage {
	s := NewStage(name, fn)
	p.Add(s)
	return s
}

// Add appends an existing stage to this pipeline. Adding a stage that
// already belongs to another pipeline makes the pipelines intersect at it:
// the stage keeps its single goroutine and chooses which pipeline to accept
// from with AcceptFrom. A stage shared between pipelines must be a free
// stage.
func (p *Pipeline) Add(s *Stage) {
	p.nw.mustNotBeStarted()
	if p.openFork != nil {
		panic(fmt.Sprintf("fg: pipeline %q: close fork %q with Join before appending spine stages",
			p.name, p.openFork.name))
	}
	if len(s.slots) > 0 && !s.isFree() {
		panic(fmt.Sprintf("fg: round stage %q cannot be shared between pipelines; use NewStage", s.name))
	}
	if s.posIn(p) >= 0 {
		panic(fmt.Sprintf("fg: stage %q added to pipeline %q twice", s.name, p.name))
	}
	s.slots = append(s.slots, slotRef{pipe: p, pos: len(p.stages)})
	p.stages = append(p.stages, s)
}

// Stop asks the pipeline's source to emit its caboose and stop injecting
// buffers. It is the way to end an Unlimited pipeline from outside; stages
// inside the pipeline end the stream simply by returning.
func (p *Pipeline) Stop() {
	p.stop.Store(true)
	select {
	case p.group.wake <- struct{}{}:
	default:
	}
}

// stopped reports whether Stop has been called.
func (p *Pipeline) stopped() bool { return p.stop.Load() }

// A group is the runtime unit holding one or more pipelines that share
// their slot queues, buffer pool, source, and sink. A plain pipeline is a
// group of one; a VirtualGroup has many members, which is how FG runs k
// identical virtual pipelines on one set of threads.
type group struct {
	nw      *Network
	name    string
	pipes   []*Pipeline
	virtual bool

	queues []queue      // queues[i] feeds stage i; queues[len(stages)] feeds the sink
	pool   chan *Buffer // recycled buffers, all members mixed
	wake   chan struct{}

	batch int // max member batch size, applied by the slot runners

	// built is stored true once queues and pool exist, so a concurrent
	// Stats snapshot knows it may read their occupancy (the atomic store
	// publishes the preceding writes).
	built atomic.Bool
}

// newGroup creates an empty group. The wake channel exists from birth so
// that Pipeline.Stop is safe at any time — before Run, twice, or racing the
// network's natural completion.
func newGroup(nw *Network, name string, virtual bool) *group {
	return &group{nw: nw, name: name, virtual: virtual, wake: make(chan struct{}, 1)}
}

// build validates the group and allocates its queues and pool.
func (g *group) build() error {
	if len(g.pipes) == 0 {
		return fmt.Errorf("fg: group %q has no pipelines", g.name)
	}
	nStages := len(g.pipes[0].stages)
	if nStages == 0 {
		return fmt.Errorf("fg: pipeline %q has no stages", g.pipes[0].name)
	}
	totalBufs := 0
	for _, p := range g.pipes {
		if len(p.stages) != nStages {
			return fmt.Errorf("fg: virtual group %q: pipeline %q has %d stages, %q has %d; members must be structurally identical",
				g.name, p.name, len(p.stages), g.pipes[0].name, nStages)
		}
		totalBufs += p.nBuffers
	}
	// Each slot must be either one stage object shared by every member
	// (an intersecting stage) or a distinct round stage per member (a
	// virtual stage served by the slot runner).
	for pos := 0; pos < nStages; pos++ {
		shared := g.pipes[0].stages[pos]
		allShared := true
		for _, p := range g.pipes {
			if p.stages[pos] != shared {
				allShared = false
				break
			}
		}
		if allShared {
			continue
		}
		for _, p := range g.pipes {
			s := p.stages[pos]
			if s.isFree() {
				return fmt.Errorf("fg: virtual group %q: stage %q is a free stage; virtual slots need round stages or one shared stage",
					g.name, s.name)
			}
			if len(s.slots) != 1 {
				return fmt.Errorf("fg: virtual group %q: stage %q is shared by only some members of the slot",
					g.name, s.name)
			}
		}
	}
	// Join queues additionally carry one caboose per branch of their fork.
	maxBranches := 0
	for _, p := range g.pipes {
		for _, f := range p.forks {
			if len(f.branches) > maxBranches {
				maxBranches = len(f.branches)
			}
		}
	}
	// Queue selection: a lock-free SPSC ring wherever exactly one goroutine
	// produces and one consumes, a channel otherwise. The producer of
	// queues[0] is the single source goroutine and the consumer of the last
	// queue is the single sink goroutine; the goroutine serving position i
	// is single (runSlot, runFree, runFork, runJoin) unless the stage is
	// replicated (n workers share the queues, and they push the circulating
	// caboose back into their input queue) — and a join's input queue is
	// fed by every branch tail plus the fork's bypass. So queues[i] is SPSC
	// unless the stage at i is replicated or a join, or the stage at i-1 is
	// replicated.
	spscAt := func(i int) bool {
		for _, p := range g.pipes {
			if i < nStages {
				s := p.stages[i]
				if s.replicas > 1 || s.join != nil {
					return false
				}
			}
			if i > 0 {
				if p.stages[i-1].replicas > 1 {
					return false
				}
			}
		}
		return true
	}
	g.queues = make([]queue, nStages+1)
	for i := range g.queues {
		g.queues[i] = newQueue(totalBufs+len(g.pipes)+maxBranches, spscAt(i))
	}
	// A push that misses the fast path is an invariant violation; surface
	// it in the flight recorder, tagged with the edge's consumer.
	for i := range g.queues {
		consumer := "sink"
		if i < nStages {
			consumer = g.pipes[0].stages[i].name
		}
		name := consumer
		g.queues[i].onSlowPush(func() { g.nw.noteSlowPush(g.name, name) })
	}
	g.batch = 1
	for _, p := range g.pipes {
		if p.batch > g.batch {
			g.batch = p.batch
		}
	}
	if err := g.validateReplicas(); err != nil {
		return err
	}
	g.pool = make(chan *Buffer, totalBufs)
	for _, p := range g.pipes {
		p.slotCtx = make([]*Ctx, nStages)
		for pos, s := range p.stages {
			if !s.isFree() {
				ctx := newCtx(g.nw, s)
				ctx.restricted = true
				p.slotCtx[pos] = ctx
			}
		}
	}
	g.built.Store(true)
	return nil
}

// runSource is the group's (virtual) source: it injects each member
// pipeline's buffers round by round, recycles returned buffers, and emits
// each member's caboose after its last round (or on Stop). One goroutine
// serves all members, as FG's automatic virtualization of sources does.
func (g *group) runSource() {
	defer g.nw.wg.Done()
	defer g.nw.recoverPanic(g.name + ".source")
	type state struct {
		emitted int
		caboose bool
		// circulating counts this pipeline's buffers currently in flight;
		// parked holds allocated buffers withheld from circulation because
		// the pipeline's effective buffer count is below its pool size.
		circulating int
		parked      []*Buffer
	}
	states := make(map[*Pipeline]*state, len(g.pipes))

	emit := func(p *Pipeline, b *Buffer) bool {
		st := states[p]
		b.reset(st.emitted)
		st.emitted++
		p.emitted.Store(int64(st.emitted))
		return g.queues[0].push(b, g.nw.done) == nil
	}
	sendCaboose := func(p *Pipeline) {
		st := states[p]
		if !st.caboose {
			st.caboose = true
			_ = g.queues[0].push(&Buffer{caboose: true, pipe: p}, g.nw.done)
		}
	}
	wantsMore := func(p *Pipeline) bool {
		st := states[p]
		if p.stopped() || st.caboose {
			return false
		}
		return p.rounds < 0 || st.emitted < p.rounds
	}
	// closeout sends the caboose for members that have emitted all their
	// rounds or have been stopped.
	closeout := func(p *Pipeline) {
		st := states[p]
		if st.caboose {
			return
		}
		if p.stopped() || (p.rounds >= 0 && st.emitted >= p.rounds) {
			sendCaboose(p)
		}
	}

	// Initial injection: each member's whole pool, capped at its rounds.
	// Buffers beyond the pipeline's effective count are allocated (the
	// memory bound is the configured pool size) but parked, entering
	// circulation only if the effective count is raised.
	live := 0
	for _, p := range g.pipes {
		states[p] = &state{}
		st := states[p]
		for i := 0; i < p.nBuffers; i++ {
			if !wantsMore(p) {
				break
			}
			b := &Buffer{Data: make([]byte, p.bufBytes), pipe: p}
			if st.circulating >= p.EffectiveBuffers() {
				st.parked = append(st.parked, b)
				continue
			}
			if !emit(p, b) {
				return
			}
			st.circulating++
		}
		closeout(p)
		if !st.caboose {
			live++
		}
	}
	// topUp re-injects parked buffers while the pipeline is below its
	// effective count; the wake channel fires after SetEffectiveBuffers.
	topUp := func(p *Pipeline) bool {
		st := states[p]
		for st.circulating < p.EffectiveBuffers() && len(st.parked) > 0 && wantsMore(p) {
			b := st.parked[len(st.parked)-1]
			st.parked = st.parked[:len(st.parked)-1]
			if !emit(p, b) {
				return false
			}
			st.circulating++
		}
		return true
	}

	for live > 0 {
		select {
		case b := <-g.pool:
			p := b.pipe
			st := states[p]
			if st.caboose {
				continue // late recycle after caboose; retire the buffer
			}
			if wantsMore(p) {
				if st.circulating > p.EffectiveBuffers() {
					// The effective count dropped; park the recycled buffer
					// instead of re-injecting it.
					st.circulating--
					st.parked = append(st.parked, b)
				} else if !emit(p, b) {
					return
				}
			}
			closeout(p)
			if st.caboose {
				live--
			}
		case <-g.wake:
			for _, p := range g.pipes {
				if states[p].caboose {
					continue
				}
				if !topUp(p) {
					return
				}
				closeout(p)
				if states[p].caboose {
					live--
				}
			}
		case <-g.nw.done:
			return
		}
	}
}

// runSink is the group's (virtual) sink: it recycles data buffers to the
// source's pool and retires each member pipeline when its caboose arrives.
func (g *group) runSink() {
	defer g.nw.wg.Done()
	remaining := len(g.pipes)
	defer g.nw.recoverPanic(g.name + ".sink")
	// On shutdown, release the completion count for pipelines that never
	// finished so Run's completion watcher does not leak.
	defer func() {
		for ; remaining > 0; remaining-- {
			g.nw.completion.Done()
		}
	}()
	last := g.queues[len(g.queues)-1]
	for remaining > 0 {
		b, err := last.pop(g.nw.done)
		if err != nil {
			return
		}
		if b.caboose {
			remaining--
			g.nw.completion.Done()
			continue
		}
		select {
		case g.pool <- b:
		case <-g.nw.done:
			return
		}
	}
}
