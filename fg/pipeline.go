package fg

import (
	"fmt"
	"sync/atomic"
)

// A Pipeline is a linear sequence of stages with its own buffer pool,
// buffer size, and round count. The framework supplies the source and sink;
// user stages sit between them.
type Pipeline struct {
	nw    *Network
	group *group
	name  string

	bufBytes int
	nBuffers int
	rounds   int // -1 = unlimited, until Stop or downstream completion

	stages  []*Stage
	slotCtx []*Ctx // restricted contexts for round stages, by position

	forks    []*Fork
	openFork *Fork

	stop    atomic.Bool
	emitted atomic.Int64
}

// An Option configures a pipeline at creation.
type Option func(*Pipeline)

// Buffers sets how many buffers circulate in the pipeline. FG allocates a
// small fixed pool and recycles it, so this (times the buffer size) bounds
// the pipeline's memory no matter how many rounds run. The default is 3:
// enough for three stages to work concurrently.
func Buffers(n int) Option {
	return func(p *Pipeline) {
		if n < 1 {
			panic(fmt.Sprintf("fg: pipeline %q: need at least 1 buffer, got %d", p.name, n))
		}
		p.nBuffers = n
	}
}

// BufferBytes sets the capacity of each buffer, which typically equals the
// block size of the underlying I/O or communication. The default is 64 KiB.
func BufferBytes(n int) Option {
	return func(p *Pipeline) {
		if n < 1 {
			panic(fmt.Sprintf("fg: pipeline %q: invalid buffer size %d", p.name, n))
		}
		p.bufBytes = n
	}
}

// Rounds sets how many buffers the source emits before sending the caboose.
// The default is Unlimited: the source keeps recycling buffers until the
// pipeline is stopped or a stage finishes the stream itself.
func Rounds(n int) Option {
	return func(p *Pipeline) {
		if n < 0 {
			panic(fmt.Sprintf("fg: pipeline %q: negative round count %d", p.name, n))
		}
		p.rounds = n
	}
}

// Unlimited configures a pipeline whose source never stops on its own.
func Unlimited() Option {
	return func(p *Pipeline) { p.rounds = -1 }
}

const (
	defaultBuffers  = 3
	defaultBufBytes = 64 << 10
)

func newPipeline(nw *Network, g *group, name string, opts []Option) *Pipeline {
	p := &Pipeline{
		nw:       nw,
		group:    g,
		name:     name,
		bufBytes: defaultBufBytes,
		nBuffers: defaultBuffers,
		rounds:   -1,
	}
	for _, o := range opts {
		o(p)
	}
	g.pipes = append(g.pipes, p)
	return p
}

// Name returns the pipeline's display name.
func (p *Pipeline) Name() string { return p.name }

// Network returns the network this pipeline belongs to.
func (p *Pipeline) Network() *Network { return p.nw }

// BufferBytes returns the pipeline's buffer capacity.
func (p *Pipeline) BufferBytes() int { return p.bufBytes }

// NumBuffers returns the pipeline's pool size.
func (p *Pipeline) NumBuffers() int { return p.nBuffers }

// Rounds returns the configured round count, or -1 if unlimited.
func (p *Pipeline) Rounds() int { return p.rounds }

// AddStage appends a round stage: fn is called once per buffer, and the
// framework accepts the buffer beforehand and conveys it afterward.
func (p *Pipeline) AddStage(name string, fn RoundFunc) *Stage {
	if fn == nil {
		panic("fg: AddStage with nil function")
	}
	s := &Stage{name: name, round: fn}
	p.Add(s)
	return s
}

// AddFreeStage appends a free stage: fn runs once and drives its own
// accepts and conveys through its Ctx.
func (p *Pipeline) AddFreeStage(name string, fn StageFunc) *Stage {
	s := NewStage(name, fn)
	p.Add(s)
	return s
}

// Add appends an existing stage to this pipeline. Adding a stage that
// already belongs to another pipeline makes the pipelines intersect at it:
// the stage keeps its single goroutine and chooses which pipeline to accept
// from with AcceptFrom. A stage shared between pipelines must be a free
// stage.
func (p *Pipeline) Add(s *Stage) {
	p.nw.mustNotBeStarted()
	if p.openFork != nil {
		panic(fmt.Sprintf("fg: pipeline %q: close fork %q with Join before appending spine stages",
			p.name, p.openFork.name))
	}
	if len(s.slots) > 0 && !s.isFree() {
		panic(fmt.Sprintf("fg: round stage %q cannot be shared between pipelines; use NewStage", s.name))
	}
	if s.posIn(p) >= 0 {
		panic(fmt.Sprintf("fg: stage %q added to pipeline %q twice", s.name, p.name))
	}
	s.slots = append(s.slots, slotRef{pipe: p, pos: len(p.stages)})
	p.stages = append(p.stages, s)
}

// Stop asks the pipeline's source to emit its caboose and stop injecting
// buffers. It is the way to end an Unlimited pipeline from outside; stages
// inside the pipeline end the stream simply by returning.
func (p *Pipeline) Stop() {
	p.stop.Store(true)
	select {
	case p.group.wake <- struct{}{}:
	default:
	}
}

// stopped reports whether Stop has been called.
func (p *Pipeline) stopped() bool { return p.stop.Load() }

// A group is the runtime unit holding one or more pipelines that share
// their slot queues, buffer pool, source, and sink. A plain pipeline is a
// group of one; a VirtualGroup has many members, which is how FG runs k
// identical virtual pipelines on one set of threads.
type group struct {
	nw      *Network
	name    string
	pipes   []*Pipeline
	virtual bool

	queues []*queue     // queues[i] feeds stage i; queues[len(stages)] feeds the sink
	pool   chan *Buffer // recycled buffers, all members mixed
	wake   chan struct{}

	// built is stored true once queues and pool exist, so a concurrent
	// Stats snapshot knows it may read their occupancy (the atomic store
	// publishes the preceding writes).
	built atomic.Bool
}

// newGroup creates an empty group. The wake channel exists from birth so
// that Pipeline.Stop is safe at any time — before Run, twice, or racing the
// network's natural completion.
func newGroup(nw *Network, name string, virtual bool) *group {
	return &group{nw: nw, name: name, virtual: virtual, wake: make(chan struct{}, 1)}
}

// build validates the group and allocates its queues and pool.
func (g *group) build() error {
	if len(g.pipes) == 0 {
		return fmt.Errorf("fg: group %q has no pipelines", g.name)
	}
	nStages := len(g.pipes[0].stages)
	if nStages == 0 {
		return fmt.Errorf("fg: pipeline %q has no stages", g.pipes[0].name)
	}
	totalBufs := 0
	for _, p := range g.pipes {
		if len(p.stages) != nStages {
			return fmt.Errorf("fg: virtual group %q: pipeline %q has %d stages, %q has %d; members must be structurally identical",
				g.name, p.name, len(p.stages), g.pipes[0].name, nStages)
		}
		totalBufs += p.nBuffers
	}
	// Each slot must be either one stage object shared by every member
	// (an intersecting stage) or a distinct round stage per member (a
	// virtual stage served by the slot runner).
	for pos := 0; pos < nStages; pos++ {
		shared := g.pipes[0].stages[pos]
		allShared := true
		for _, p := range g.pipes {
			if p.stages[pos] != shared {
				allShared = false
				break
			}
		}
		if allShared {
			continue
		}
		for _, p := range g.pipes {
			s := p.stages[pos]
			if s.isFree() {
				return fmt.Errorf("fg: virtual group %q: stage %q is a free stage; virtual slots need round stages or one shared stage",
					g.name, s.name)
			}
			if len(s.slots) != 1 {
				return fmt.Errorf("fg: virtual group %q: stage %q is shared by only some members of the slot",
					g.name, s.name)
			}
		}
	}
	// Join queues additionally carry one caboose per branch of their fork.
	maxBranches := 0
	for _, p := range g.pipes {
		for _, f := range p.forks {
			if len(f.branches) > maxBranches {
				maxBranches = len(f.branches)
			}
		}
	}
	g.queues = make([]*queue, nStages+1)
	for i := range g.queues {
		g.queues[i] = newQueue(totalBufs + len(g.pipes) + maxBranches)
	}
	if err := g.validateReplicas(); err != nil {
		return err
	}
	g.pool = make(chan *Buffer, totalBufs)
	for _, p := range g.pipes {
		p.slotCtx = make([]*Ctx, nStages)
		for pos, s := range p.stages {
			if !s.isFree() {
				ctx := newCtx(g.nw, s)
				ctx.restricted = true
				p.slotCtx[pos] = ctx
			}
		}
	}
	g.built.Store(true)
	return nil
}

// runSource is the group's (virtual) source: it injects each member
// pipeline's buffers round by round, recycles returned buffers, and emits
// each member's caboose after its last round (or on Stop). One goroutine
// serves all members, as FG's automatic virtualization of sources does.
func (g *group) runSource() {
	defer g.nw.wg.Done()
	defer g.nw.recoverPanic(g.name + ".source")
	type state struct {
		emitted int
		caboose bool
	}
	states := make(map[*Pipeline]*state, len(g.pipes))

	emit := func(p *Pipeline, b *Buffer) bool {
		st := states[p]
		b.reset(st.emitted)
		st.emitted++
		p.emitted.Store(int64(st.emitted))
		return g.queues[0].push(b, g.nw.done) == nil
	}
	sendCaboose := func(p *Pipeline) {
		st := states[p]
		if !st.caboose {
			st.caboose = true
			_ = g.queues[0].push(&Buffer{caboose: true, pipe: p}, g.nw.done)
		}
	}
	wantsMore := func(p *Pipeline) bool {
		st := states[p]
		if p.stopped() || st.caboose {
			return false
		}
		return p.rounds < 0 || st.emitted < p.rounds
	}
	// closeout sends the caboose for members that have emitted all their
	// rounds or have been stopped.
	closeout := func(p *Pipeline) {
		st := states[p]
		if st.caboose {
			return
		}
		if p.stopped() || (p.rounds >= 0 && st.emitted >= p.rounds) {
			sendCaboose(p)
		}
	}

	// Initial injection: each member's whole pool, capped at its rounds.
	live := 0
	for _, p := range g.pipes {
		states[p] = &state{}
		for i := 0; i < p.nBuffers; i++ {
			if !wantsMore(p) {
				break
			}
			if !emit(p, &Buffer{Data: make([]byte, p.bufBytes), pipe: p}) {
				return
			}
		}
		closeout(p)
		if !states[p].caboose {
			live++
		}
	}

	for live > 0 {
		select {
		case b := <-g.pool:
			p := b.pipe
			if states[p].caboose {
				continue // late recycle after caboose; retire the buffer
			}
			if wantsMore(p) {
				if !emit(p, b) {
					return
				}
			}
			closeout(p)
			if states[p].caboose {
				live--
			}
		case <-g.wake:
			for _, p := range g.pipes {
				if !states[p].caboose {
					closeout(p)
					if states[p].caboose {
						live--
					}
				}
			}
		case <-g.nw.done:
			return
		}
	}
}

// runSink is the group's (virtual) sink: it recycles data buffers to the
// source's pool and retires each member pipeline when its caboose arrives.
func (g *group) runSink() {
	defer g.nw.wg.Done()
	remaining := len(g.pipes)
	defer g.nw.recoverPanic(g.name + ".sink")
	// On shutdown, release the completion count for pipelines that never
	// finished so Run's completion watcher does not leak.
	defer func() {
		for ; remaining > 0; remaining-- {
			g.nw.completion.Done()
		}
	}()
	last := g.queues[len(g.queues)-1]
	for remaining > 0 {
		b, err := last.pop(g.nw.done)
		if err != nil {
			return
		}
		if b.caboose {
			remaining--
			g.nw.completion.Done()
			continue
		}
		select {
		case g.pool <- b:
		case <-g.nw.done:
			return
		}
	}
}
